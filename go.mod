module aedbmls

go 1.24
