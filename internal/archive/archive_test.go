package archive

import (
	"sync"
	"testing"

	"aedbmls/internal/moo"
	"aedbmls/internal/rng"
)

func sol(f ...float64) *moo.Solution {
	return &moo.Solution{X: []float64{0}, F: f}
}

func randomSol(r *rng.Rand, m int) *moo.Solution {
	f := make([]float64, m)
	for i := range f {
		f[i] = r.Range(0, 1)
	}
	return &moo.Solution{X: []float64{r.Float64()}, F: f}
}

// checkInvariants asserts the universal archive properties: mutual
// non-dominance and capacity.
func checkInvariants(t *testing.T, ar Interface, capacity int) {
	t.Helper()
	contents := ar.Contents()
	if capacity > 0 && len(contents) > capacity {
		t.Fatalf("archive size %d exceeds capacity %d", len(contents), capacity)
	}
	for i, a := range contents {
		for j, b := range contents {
			if i != j && moo.Dominates(a, b) {
				t.Fatalf("archive holds dominated pair: %v dominates %v", a.F, b.F)
			}
		}
	}
}

func TestAGARejectsDominatedAndDuplicates(t *testing.T) {
	ar := NewAGA(10, 8)
	if !ar.Add(sol(1, 1)) {
		t.Fatal("first solution rejected")
	}
	if ar.Add(sol(2, 2)) {
		t.Fatal("dominated solution accepted")
	}
	if ar.Add(sol(1, 1)) {
		t.Fatal("duplicate accepted")
	}
	if !ar.Add(sol(0.5, 2)) {
		t.Fatal("non-dominated solution rejected")
	}
	checkInvariants(t, ar, 10)
}

func TestAGAEvictsDominatedMembers(t *testing.T) {
	ar := NewAGA(10, 8)
	ar.Add(sol(2, 2))
	ar.Add(sol(3, 1))
	if !ar.Add(sol(1, 1)) {
		t.Fatal("dominating solution rejected")
	}
	if ar.Len() != 1 {
		t.Fatalf("len = %d after global dominator, want 1", ar.Len())
	}
}

func TestAGACapacityAndInvariants(t *testing.T) {
	r := rng.New(5)
	ar := NewAGA(20, 8)
	for i := 0; i < 2000; i++ {
		// Sample near a trade-off curve so many are mutually non-dominated.
		x := r.Range(0, 1)
		ar.Add(sol(x, 1-x+r.Range(0, 0.05)))
	}
	checkInvariants(t, ar, 20)
	if ar.Len() < 15 {
		t.Fatalf("archive suspiciously small: %d", ar.Len())
	}
}

func TestAGAKeepsExtremes(t *testing.T) {
	r := rng.New(6)
	ar := NewAGA(10, 4)
	// Extremes first.
	ar.Add(sol(0, 1))
	ar.Add(sol(1, 0))
	for i := 0; i < 500; i++ {
		x := r.Range(0.3, 0.7)
		ar.Add(sol(x, 1-x))
	}
	hasLowF0, hasLowF1 := false, false
	for _, s := range ar.Contents() {
		if s.F[0] == 0 {
			hasLowF0 = true
		}
		if s.F[1] == 0 {
			hasLowF1 = true
		}
	}
	if !hasLowF0 || !hasLowF1 {
		t.Fatalf("AGA lost extreme solutions (f0=%v f1=%v)", hasLowF0, hasLowF1)
	}
}

func TestAGABalancesDensity(t *testing.T) {
	// Feed a heavily clustered front plus a sparse region; the archive
	// must retain sparse-region members.
	ar := NewAGA(10, 4)
	for i := 0; i < 200; i++ {
		x := 0.01 * float64(i%20) / 20 // tight cluster near x=0
		ar.Add(sol(x, 1-x))
	}
	ar.Add(sol(0.9, 0.05))
	found := false
	for _, s := range ar.Contents() {
		if s.F[0] == 0.9 {
			found = true
		}
	}
	if !found {
		t.Fatal("sparse-region solution rejected while a cluster fills the archive")
	}
	checkInvariants(t, ar, 10)
}

func TestAGAThreeObjectives(t *testing.T) {
	r := rng.New(7)
	ar := NewAGA(25, 6)
	for i := 0; i < 3000; i++ {
		a, b := r.Range(0, 1), r.Range(0, 1)
		ar.Add(sol(a, b, 2-a-b+r.Range(0, 0.02)))
	}
	checkInvariants(t, ar, 25)
}

func TestCrowdingArchive(t *testing.T) {
	r := rng.New(8)
	ar := NewCrowding(15)
	for i := 0; i < 1000; i++ {
		x := r.Range(0, 1)
		ar.Add(sol(x, 1-x))
	}
	checkInvariants(t, ar, 15)
	// Extremes survive crowding truncation.
	lo0, lo1 := 1.0, 1.0
	for _, s := range ar.Contents() {
		if s.F[0] < lo0 {
			lo0 = s.F[0]
		}
		if s.F[1] < lo1 {
			lo1 = s.F[1]
		}
	}
	if lo0 > 0.05 || lo1 > 0.05 {
		t.Fatalf("crowding archive lost front extremes: min f0=%v min f1=%v", lo0, lo1)
	}
}

func TestCrowdingAddReportsRejection(t *testing.T) {
	ar := NewCrowding(3)
	ar.Add(sol(0, 1))
	ar.Add(sol(1, 0))
	ar.Add(sol(0.5, 0.5))
	// A middle point in the most crowded region should be rejected (it is
	// the one removed).
	accepted := ar.Add(sol(0.51, 0.49))
	_ = accepted // either way, invariants must hold
	checkInvariants(t, ar, 3)
}

func TestUnboundedKeepsWholeFront(t *testing.T) {
	ar := NewUnbounded()
	n := 0
	for i := 0; i < 100; i++ {
		x := float64(i) / 100
		if ar.Add(sol(x, 1-x)) {
			n++
		}
	}
	if ar.Len() != 100 || n != 100 {
		t.Fatalf("unbounded archive dropped members: %d", ar.Len())
	}
	if ar.Add(sol(0.5, 0.6)) { // dominated by (0.5, 0.5)
		t.Fatal("unbounded archive accepted dominated solution")
	}
	checkInvariants(t, ar, 0)
}

func TestAddAll(t *testing.T) {
	ar := NewUnbounded()
	n := AddAll(ar, []*moo.Solution{sol(1, 1), sol(2, 2), sol(0, 3)})
	if n != 2 {
		t.Fatalf("AddAll accepted %d, want 2", n)
	}
}

func TestSortByObjective(t *testing.T) {
	sols := []*moo.Solution{sol(3, 0), sol(1, 2), sol(2, 1)}
	SortByObjective(sols, 0)
	if sols[0].F[0] != 1 || sols[1].F[0] != 2 || sols[2].F[0] != 3 {
		t.Fatalf("sorted order wrong: %v %v %v", sols[0].F, sols[1].F, sols[2].F)
	}
}

func TestServerConcurrentAccess(t *testing.T) {
	srv := NewServer(NewAGA(50, 8), rng.New(9))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(uint64(w) + 100)
			for i := 0; i < 200; i++ {
				srv.AddAsync(randomSol(r, 2))
				if i%10 == 0 {
					srv.Sample()
				}
			}
		}(w)
	}
	wg.Wait()
	snap := srv.Snapshot()
	srv.Close()
	if len(snap) == 0 || len(snap) > 50 {
		t.Fatalf("server snapshot size = %d", len(snap))
	}
	for i, a := range snap {
		for j, b := range snap {
			if i != j && moo.Dominates(a, b) {
				t.Fatal("server archive holds dominated pair")
			}
		}
	}
}

func TestServerSampleEmpty(t *testing.T) {
	srv := NewServer(NewAGA(10, 4), rng.New(10))
	defer srv.Close()
	if srv.Sample() != nil {
		t.Fatal("sample from empty archive should be nil")
	}
}

func TestServerSyncAdd(t *testing.T) {
	srv := NewServer(NewAGA(10, 4), rng.New(11))
	defer srv.Close()
	if !srv.Add(sol(1, 1)) {
		t.Fatal("sync add rejected")
	}
	if srv.Add(sol(2, 2)) {
		t.Fatal("sync add accepted dominated")
	}
}

func TestNewAGAPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewAGA(0) did not panic")
		}
	}()
	NewAGA(0, 4)
}
