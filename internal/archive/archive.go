// Package archive provides bounded non-dominated solution archives.
//
// The paper's AEDB-MLS stores elite solutions in an Adaptive Grid
// Archiving (AGA) archive, the density estimator introduced with PAES
// (Knowles & Corne 2000): the objective space is divided into hypercubes
// whose geometry adapts to the current front, and when the archive
// overflows a member of the most crowded hypercube makes room — which (i)
// preserves objective-wise extreme solutions, (ii) keeps every occupied
// Pareto region populated and (iii) evens the density across regions.
//
// A crowding-distance archive (as used by CellDE) and an unbounded archive
// (for building reference fronts) complete the set, plus a channel-served
// wrapper giving the message-passing collaboration pattern AEDB-MLS uses
// between its distributed populations and the elite archive.
package archive

import (
	"fmt"
	"sort"

	"aedbmls/internal/moo"
	"aedbmls/internal/rng"
)

// Interface is a non-dominated archive. Add reports whether the candidate
// entered the archive (i.e. it was non-dominated and survived crowding).
type Interface interface {
	Add(s *moo.Solution) bool
	Contents() []*moo.Solution
	Len() int
}

// AGA is the Adaptive Grid Archiving archive. Not safe for concurrent use;
// wrap it in a Server for shared access.
type AGA struct {
	capacity  int
	divisions int // grid cells per objective axis
	sols      []*moo.Solution
	lo, hi    []float64 // current grid bounds
	cells     []int     // cell index per solution
	counts    map[int]int
	dirty     bool
}

// NewAGA creates an AGA archive with the given capacity. divisions is the
// number of grid cells per objective (PAES uses 2^l cells after l
// bisections; the paper-scale experiments use 2^5 = 32).
func NewAGA(capacity, divisions int) *AGA {
	if capacity <= 0 {
		panic("archive: non-positive AGA capacity")
	}
	if divisions < 2 {
		divisions = 2
	}
	return &AGA{capacity: capacity, divisions: divisions, counts: make(map[int]int)}
}

// Len implements Interface.
func (a *AGA) Len() int { return len(a.sols) }

// Contents implements Interface; the returned slice is a copy.
func (a *AGA) Contents() []*moo.Solution {
	return append([]*moo.Solution(nil), a.sols...)
}

// Add implements Interface. The candidate is rejected if any member
// dominates it or duplicates its objectives; members it dominates are
// evicted; grid crowding resolves capacity overflow.
func (a *AGA) Add(s *moo.Solution) bool {
	// Dominance screening.
	keep := a.sols[:0]
	for _, t := range a.sols {
		if moo.Dominates(t, s) || moo.EqualF(t, s) {
			return false
		}
		if !moo.Dominates(s, t) {
			keep = append(keep, t)
		} else {
			a.dirty = true
		}
	}
	a.sols = keep

	if len(a.sols) < a.capacity {
		a.sols = append(a.sols, s)
		a.dirty = true
		return true
	}

	// Full: admit only if the candidate does not land in (one of) the most
	// crowded regions; evict from the most crowded region.
	a.refreshGrid()
	cell, inBounds := a.cellOf(s)
	if !inBounds {
		// The candidate extends the objective ranges: it is an extreme
		// point, which AGA always keeps. Rebuild the grid around it.
		a.evictFromMostCrowded(s)
		a.sols = append(a.sols, s)
		a.dirty = true
		return true
	}
	maxCount := 0
	for _, c := range a.counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if a.counts[cell] >= maxCount {
		return false // candidate belongs to the most crowded region
	}
	a.evictFromMostCrowded(s)
	a.sols = append(a.sols, s)
	a.dirty = true
	return true
}

// evictFromMostCrowded removes one member of a most crowded cell,
// preferring members that are not objective-wise extremes.
func (a *AGA) evictFromMostCrowded(incoming *moo.Solution) {
	a.refreshGrid()
	maxCount, maxCell := 0, -1
	for cell, c := range a.counts {
		if c > maxCount || (c == maxCount && cell < maxCell) {
			maxCount, maxCell = c, cell
		}
	}
	extreme := a.extremeSet()
	victim := -1
	for i, c := range a.cells {
		if c != maxCell {
			continue
		}
		if !extreme[i] {
			victim = i
			break
		}
		if victim < 0 {
			victim = i
		}
	}
	if victim < 0 { // cannot happen with a non-empty archive
		victim = 0
	}
	a.sols[victim] = a.sols[len(a.sols)-1]
	a.sols = a.sols[:len(a.sols)-1]
	a.dirty = true
	_ = incoming
}

// extremeSet marks solutions achieving the best value of some objective.
func (a *AGA) extremeSet() []bool {
	out := make([]bool, len(a.sols))
	if len(a.sols) == 0 {
		return out
	}
	m := len(a.sols[0].F)
	for k := 0; k < m; k++ {
		best := 0
		for i, s := range a.sols {
			if s.F[k] < a.sols[best].F[k] {
				best = i
			}
		}
		out[best] = true
	}
	return out
}

// refreshGrid recomputes bounds, cell assignments and occupancy counts.
func (a *AGA) refreshGrid() {
	if !a.dirty {
		return
	}
	a.dirty = false
	clear(a.counts)
	a.cells = a.cells[:0]
	if len(a.sols) == 0 {
		return
	}
	a.lo = moo.Ideal(a.sols)
	a.hi = moo.Nadir(a.sols)
	for _, s := range a.sols {
		cell, _ := a.cellOf(s)
		a.cells = append(a.cells, cell)
		a.counts[cell]++
	}
}

// cellOf maps a solution to its hypercube index under the current grid.
// inBounds is false when the solution lies outside the grid ranges.
func (a *AGA) cellOf(s *moo.Solution) (cell int, inBounds bool) {
	inBounds = true
	for k, v := range s.F {
		span := a.hi[k] - a.lo[k]
		var bin int
		if span <= 0 {
			bin = 0
		} else {
			if v < a.lo[k] || v > a.hi[k] {
				inBounds = false
			}
			bin = int(float64(a.divisions) * (v - a.lo[k]) / span)
			if bin < 0 {
				bin = 0
			}
			if bin >= a.divisions {
				bin = a.divisions - 1
			}
		}
		cell = cell*a.divisions + bin
	}
	return cell, inBounds
}

// Crowding is a bounded non-dominated archive that, when full, evicts the
// member with the smallest crowding distance (jMetal's CrowdingArchive, as
// used by CellDE). Not safe for concurrent use.
type Crowding struct {
	capacity int
	sols     []*moo.Solution
}

// NewCrowding creates a crowding-distance archive.
func NewCrowding(capacity int) *Crowding {
	if capacity <= 0 {
		panic("archive: non-positive Crowding capacity")
	}
	return &Crowding{capacity: capacity}
}

// Len implements Interface.
func (c *Crowding) Len() int { return len(c.sols) }

// Contents implements Interface; the returned slice is a copy.
func (c *Crowding) Contents() []*moo.Solution {
	return append([]*moo.Solution(nil), c.sols...)
}

// Add implements Interface.
func (c *Crowding) Add(s *moo.Solution) bool {
	keep := c.sols[:0]
	for _, t := range c.sols {
		if moo.Dominates(t, s) || moo.EqualF(t, s) {
			return false
		}
		if !moo.Dominates(s, t) {
			keep = append(keep, t)
		}
	}
	c.sols = append(keep, s)
	if len(c.sols) > c.capacity {
		d := moo.CrowdingDistances(c.sols)
		worst := 0
		for i := 1; i < len(d); i++ {
			if d[i] < d[worst] {
				worst = i
			}
		}
		removed := c.sols[worst] == s
		c.sols[worst] = c.sols[len(c.sols)-1]
		c.sols = c.sols[:len(c.sols)-1]
		if removed {
			return false
		}
	}
	return true
}

// Unbounded keeps every non-dominated solution; it is used to build the
// reference fronts the paper's indicators are computed against.
type Unbounded struct {
	sols []*moo.Solution
}

// NewUnbounded creates an empty unbounded archive.
func NewUnbounded() *Unbounded { return &Unbounded{} }

// Len implements Interface.
func (u *Unbounded) Len() int { return len(u.sols) }

// Contents implements Interface; the returned slice is a copy.
func (u *Unbounded) Contents() []*moo.Solution {
	return append([]*moo.Solution(nil), u.sols...)
}

// Add implements Interface.
func (u *Unbounded) Add(s *moo.Solution) bool {
	keep := u.sols[:0]
	for _, t := range u.sols {
		if moo.Dominates(t, s) || moo.EqualF(t, s) {
			return false
		}
		if !moo.Dominates(s, t) {
			keep = append(keep, t)
		}
	}
	u.sols = append(keep, s)
	return true
}

// AddAll inserts a batch of solutions into ar and returns how many were
// accepted.
func AddAll(ar Interface, sols []*moo.Solution) int {
	n := 0
	for _, s := range sols {
		if ar.Add(s) {
			n++
		}
	}
	return n
}

// SortByObjective orders solutions in place by objective k (ascending),
// breaking ties with subsequent objectives; convenient for stable report
// output.
func SortByObjective(sols []*moo.Solution, k int) {
	sort.Slice(sols, func(i, j int) bool {
		a, b := sols[i].F, sols[j].F
		if a[k] != b[k] {
			return a[k] < b[k]
		}
		for m := range a {
			if a[m] != b[m] {
				return a[m] < b[m]
			}
		}
		return false
	})
}

// Archive kind labels used by State.
const (
	KindAGA       = "aga"
	KindCrowding  = "crowding"
	KindUnbounded = "unbounded"
)

// State is a serializable description of an archive's complete behavioural
// state: its kind, its capacity parameters, and its members in internal
// order. Every archive in this package is a deterministic function of its
// member slice plus those parameters — AGA's grid (bounds, cell
// assignments, occupancy counts) is lazily recomputed from the members, and
// the recomputation is iteration-order independent — so capturing exactly
// these fields is sufficient for a bit-identical resume: an archive
// restored from a State answers every future Add/Contents/Len exactly as
// the original would have. The checkpoint layer (internal/study) persists
// States across process boundaries.
type State struct {
	Kind      string
	Capacity  int
	Divisions int // AGA only
	Solutions []*moo.Solution
}

// CaptureState snapshots an archive into a State. It fails on archive
// implementations outside this package, whose internal state it cannot
// see — checkpointing a study requires one of the stock archives.
func CaptureState(ar Interface) (*State, error) {
	switch a := ar.(type) {
	case *AGA:
		return &State{Kind: KindAGA, Capacity: a.capacity, Divisions: a.divisions, Solutions: a.Contents()}, nil
	case *Crowding:
		return &State{Kind: KindCrowding, Capacity: a.capacity, Solutions: a.Contents()}, nil
	case *Unbounded:
		return &State{Kind: KindUnbounded, Solutions: a.Contents()}, nil
	default:
		return nil, fmt.Errorf("archive: cannot capture state of %T (not a stock archive)", ar)
	}
}

// RestoreState reconstructs the archive a State describes, with members in
// the captured internal order (NOT re-inserted through Add, which could
// evict differently). The member slice is copied.
func RestoreState(st *State) (Interface, error) {
	if st == nil {
		return nil, fmt.Errorf("archive: nil state")
	}
	sols := append([]*moo.Solution(nil), st.Solutions...)
	switch st.Kind {
	case KindAGA:
		if st.Capacity <= 0 {
			return nil, fmt.Errorf("archive: AGA state with capacity %d", st.Capacity)
		}
		if len(sols) > st.Capacity {
			return nil, fmt.Errorf("archive: AGA state holds %d members over capacity %d", len(sols), st.Capacity)
		}
		a := NewAGA(st.Capacity, st.Divisions)
		a.sols = sols
		a.dirty = true
		return a, nil
	case KindCrowding:
		if st.Capacity <= 0 {
			return nil, fmt.Errorf("archive: Crowding state with capacity %d", st.Capacity)
		}
		if len(sols) > st.Capacity {
			return nil, fmt.Errorf("archive: Crowding state holds %d members over capacity %d", len(sols), st.Capacity)
		}
		c := NewCrowding(st.Capacity)
		c.sols = sols
		return c, nil
	case KindUnbounded:
		u := NewUnbounded()
		u.sols = sols
		return u, nil
	default:
		return nil, fmt.Errorf("archive: unknown archive kind %q", st.Kind)
	}
}

// Server wraps an archive behind a goroutine and a request channel,
// giving the message-passing collaboration model of the paper's hybrid
// design: worker threads in distributed populations only ever exchange
// messages (add / sample / snapshot) with the elite archive.
type Server struct {
	req  chan request
	done chan struct{}
}

type request struct {
	add      *moo.Solution
	sample   bool
	snapshot bool
	replyOK  chan bool
	replySol chan *moo.Solution
	replyAll chan []*moo.Solution
}

// NewServer starts the archive goroutine. The server owns ar afterwards;
// the rng stream drives Sample.
func NewServer(ar Interface, r *rng.Rand) *Server {
	s := &Server{req: make(chan request, 64), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		for q := range s.req {
			switch {
			case q.add != nil:
				ok := ar.Add(q.add)
				if q.replyOK != nil {
					q.replyOK <- ok
				}
			case q.sample:
				var sol *moo.Solution
				if n := ar.Len(); n > 0 {
					sol = ar.Contents()[r.Intn(n)]
				}
				q.replySol <- sol
			case q.snapshot:
				q.replyAll <- ar.Contents()
			}
		}
	}()
	return s
}

// Add submits a solution and reports acceptance.
func (s *Server) Add(sol *moo.Solution) bool {
	reply := make(chan bool, 1)
	s.req <- request{add: sol, replyOK: reply}
	return <-reply
}

// AddAsync submits a solution without waiting for the verdict.
func (s *Server) AddAsync(sol *moo.Solution) {
	s.req <- request{add: sol}
}

// Sample returns a uniformly random archive member (nil if empty).
func (s *Server) Sample() *moo.Solution {
	reply := make(chan *moo.Solution, 1)
	s.req <- request{sample: true, replySol: reply}
	return <-reply
}

// Snapshot returns a copy of the archive contents.
func (s *Server) Snapshot() []*moo.Solution {
	reply := make(chan []*moo.Solution, 1)
	s.req <- request{snapshot: true, replyAll: reply}
	return <-reply
}

// Close stops the server goroutine; pending requests are served first.
func (s *Server) Close() {
	close(s.req)
	<-s.done
}

// statically assert the archive implementations.
var (
	_ Interface = (*AGA)(nil)
	_ Interface = (*Crowding)(nil)
	_ Interface = (*Unbounded)(nil)
)
