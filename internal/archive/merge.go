package archive

import "aedbmls/internal/moo"

// Merger is the concurrent merge path of the tuning service: any number
// of producer goroutines offer id-tagged solution batches (one batch per
// completed trial), and a single reducer goroutine folds them into the
// wrapped archive strictly in ascending id order, buffering batches that
// arrive early. Because exactly one goroutine ever touches the archive
// and all communication is channels, the merge is mutex-free, and the
// final archive contents are a pure function of the batches — not of the
// producer schedule. An 8-worker study therefore merges to bits the
// 1-worker study merges to.
//
// The optional onMerge hook runs on the reducer goroutine immediately
// after each batch is folded in, with the archive quiescent — the tuning
// service checkpoints there, so every checkpoint captures a completed
// merge boundary.
type Merger struct {
	req  chan mergeReq
	done chan struct{}
}

// mergeReq is one message to the reducer: exactly one of the request
// kinds is set.
type mergeReq struct {
	offer *mergeOffer
	flush chan struct{}
	snap  chan []*moo.Solution
	state chan MergerState
}

// mergeOffer is one id-tagged batch.
type mergeOffer struct {
	id   int
	sols []*moo.Solution
	aux  any
}

// MergerState is a point-in-time view of the reducer's progress.
type MergerState struct {
	// Next is the id the reducer will merge next: every id below it has
	// been folded into the archive.
	Next int
	// Pending counts batches that arrived out of order and are buffered
	// until the ids before them complete.
	Pending int
}

// NewMerger starts the reducer goroutine over ar, which the merger owns
// from here on. next is the first batch id to merge (0 for a fresh
// study, the checkpointed boundary for a resumed one); offers below it
// are discarded as stale. onMerge may be nil.
func NewMerger(ar Interface, next int, onMerge func(id int, ar Interface, aux any)) *Merger {
	m := &Merger{req: make(chan mergeReq, 16), done: make(chan struct{})}
	go func() {
		defer close(m.done)
		pending := make(map[int]*mergeOffer)
		for q := range m.req {
			switch {
			case q.offer != nil:
				if q.offer.id < next || pending[q.offer.id] != nil {
					continue // stale or duplicate: already merged/queued
				}
				pending[q.offer.id] = q.offer
				for {
					o := pending[next]
					if o == nil {
						break
					}
					delete(pending, next)
					AddAll(ar, o.sols)
					id := next
					next++
					if onMerge != nil {
						onMerge(id, ar, o.aux)
					}
				}
			case q.flush != nil:
				close(q.flush)
			case q.snap != nil:
				q.snap <- ar.Contents()
			case q.state != nil:
				q.state <- MergerState{Next: next, Pending: len(pending)}
			}
		}
	}()
	return m
}

// Offer submits batch id for merging. It returns once the reducer has
// queued the request; the merge itself happens asynchronously, in id
// order (use Flush for a completion barrier).
func (m *Merger) Offer(id int, sols []*moo.Solution, aux any) {
	m.req <- mergeReq{offer: &mergeOffer{id: id, sols: sols, aux: aux}}
}

// Flush blocks until every request submitted before it — offers
// included — has been processed. Producers that have all returned plus a
// Flush therefore guarantee the archive holds every contiguous batch.
func (m *Merger) Flush() {
	ch := make(chan struct{})
	m.req <- mergeReq{flush: ch}
	<-ch
}

// Snapshot returns a copy of the merged archive contents, in the
// archive's internal order.
func (m *Merger) Snapshot() []*moo.Solution {
	ch := make(chan []*moo.Solution, 1)
	m.req <- mergeReq{snap: ch}
	return <-ch
}

// State reports the reducer's progress.
func (m *Merger) State() MergerState {
	ch := make(chan MergerState, 1)
	m.req <- mergeReq{state: ch}
	return <-ch
}

// Close stops the reducer after draining queued requests. No method may
// be called after Close.
func (m *Merger) Close() {
	close(m.req)
	<-m.done
}
