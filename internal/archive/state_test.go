package archive

import (
	"math"
	"testing"

	"aedbmls/internal/moo"
	"aedbmls/internal/rng"
)

// fillRandom feeds n random solutions into ar from r.
func fillRandom(ar Interface, r *rng.Rand, n, m int) {
	for i := 0; i < n; i++ {
		ar.Add(randomSol(r, m))
	}
}

// assertSameContents asserts two archives hold bit-identical members in
// identical internal order.
func assertSameContents(t *testing.T, want, got Interface) {
	t.Helper()
	ws, gs := want.Contents(), got.Contents()
	if len(ws) != len(gs) {
		t.Fatalf("archive sizes differ: want %d, got %d", len(ws), len(gs))
	}
	for i := range ws {
		for k := range ws[i].F {
			if math.Float64bits(ws[i].F[k]) != math.Float64bits(gs[i].F[k]) {
				t.Fatalf("member %d objective %d differs: %v vs %v", i, k, ws[i].F, gs[i].F)
			}
		}
		for k := range ws[i].X {
			if math.Float64bits(ws[i].X[k]) != math.Float64bits(gs[i].X[k]) {
				t.Fatalf("member %d variable %d differs: %v vs %v", i, k, ws[i].X, gs[i].X)
			}
		}
	}
}

// TestStateRoundTripContinuation is the property the checkpoint layer
// leans on: capture an archive mid-stream, restore it, then feed original
// and restored the same remaining stream — every subsequent Add decision
// and the final contents must be bit-identical.
func TestStateRoundTripContinuation(t *testing.T) {
	archives := []struct {
		name     string
		capacity int
		mk       func() Interface
	}{
		{"aga", 20, func() Interface { return NewAGA(20, 5) }},
		{"crowding", 20, func() Interface { return NewCrowding(20) }},
		{"unbounded", 0, func() Interface { return NewUnbounded() }},
	}
	for _, tc := range archives {
		t.Run(tc.name, func(t *testing.T) {
			orig := tc.mk()
			fillRandom(orig, rng.New(7), 300, 3)

			st, err := CaptureState(orig)
			if err != nil {
				t.Fatal(err)
			}
			restored, err := RestoreState(st)
			if err != nil {
				t.Fatal(err)
			}
			assertSameContents(t, orig, restored)

			// Continue both with an identical stream; decisions must agree.
			ra, rb := rng.New(99), rng.New(99)
			for i := 0; i < 300; i++ {
				sa, sb := randomSol(ra, 3), randomSol(rb, 3)
				ina, inb := orig.Add(sa), restored.Add(sb)
				if ina != inb {
					t.Fatalf("add %d: original accepted=%v, restored accepted=%v", i, ina, inb)
				}
			}
			assertSameContents(t, orig, restored)
			checkInvariants(t, restored, tc.capacity)
		})
	}
}

// TestStateRoundTripPreservesParameters verifies capacity and divisions
// survive the trip (a restored AGA must evict with the same grid).
func TestStateRoundTripPreservesParameters(t *testing.T) {
	a := NewAGA(10, 8)
	fillRandom(a, rng.New(3), 50, 2)
	st, err := CaptureState(a)
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != KindAGA || st.Capacity != 10 || st.Divisions != 8 {
		t.Fatalf("captured state %+v lost parameters", st)
	}
	got, err := RestoreState(st)
	if err != nil {
		t.Fatal(err)
	}
	b := got.(*AGA)
	if b.capacity != 10 || b.divisions != 8 {
		t.Fatalf("restored AGA has capacity=%d divisions=%d", b.capacity, b.divisions)
	}

	c := NewCrowding(15)
	fillRandom(c, rng.New(4), 50, 2)
	stc, err := CaptureState(c)
	if err != nil {
		t.Fatal(err)
	}
	gotc, err := RestoreState(stc)
	if err != nil {
		t.Fatal(err)
	}
	if gotc.(*Crowding).capacity != 15 {
		t.Fatalf("restored Crowding has capacity=%d", gotc.(*Crowding).capacity)
	}
}

// TestStateRejectsMalformed checks the decoder-side validation RestoreState
// gives the checkpoint loader.
func TestStateRejectsMalformed(t *testing.T) {
	sols := []*moo.Solution{sol(1, 2), sol(2, 1)}
	bad := []*State{
		nil,
		{Kind: "martian"},
		{Kind: KindAGA, Capacity: 0, Divisions: 5},
		{Kind: KindAGA, Capacity: 1, Divisions: 5, Solutions: sols},
		{Kind: KindCrowding, Capacity: 0},
		{Kind: KindCrowding, Capacity: 1, Solutions: sols},
	}
	for i, st := range bad {
		if _, err := RestoreState(st); err == nil {
			t.Errorf("case %d: RestoreState accepted malformed state %+v", i, st)
		}
	}
}

// TestCaptureStateRejectsForeignArchive ensures archives this package does
// not know how to serialize are refused, not half-captured.
func TestCaptureStateRejectsForeignArchive(t *testing.T) {
	if _, err := CaptureState(foreignArchive{}); err == nil {
		t.Fatal("CaptureState accepted an unknown archive implementation")
	}
}

type foreignArchive struct{}

func (foreignArchive) Add(*moo.Solution) bool    { return false }
func (foreignArchive) Contents() []*moo.Solution { return nil }
func (foreignArchive) Len() int                  { return 0 }
