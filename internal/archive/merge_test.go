package archive

import (
	"math"
	"sync"
	"testing"

	"aedbmls/internal/moo"
	"aedbmls/internal/rng"
)

// mergeSol builds a deterministic two-objective solution from a stream.
func mergeSol(r *rng.Rand) *moo.Solution {
	a := r.Float64()
	return &moo.Solution{X: []float64{a}, F: []float64{a, 1 - a}}
}

// trialBatches builds n deterministic batches of k solutions each.
func trialBatches(n, k int) [][]*moo.Solution {
	out := make([][]*moo.Solution, n)
	for i := range out {
		r := rng.New(uint64(1000 + i))
		for j := 0; j < k; j++ {
			out[i] = append(out[i], mergeSol(r))
		}
	}
	return out
}

func frontBits(sols []*moo.Solution) []uint64 {
	var out []uint64
	for _, s := range sols {
		for _, x := range s.X {
			out = append(out, math.Float64bits(x))
		}
		for _, f := range s.F {
			out = append(out, math.Float64bits(f))
		}
	}
	return out
}

// TestMergerOrderIndependence is the merger's core property: whatever
// order (and from however many goroutines) the batches arrive in, the
// merged archive is bit-identical to a serial in-order AddAll.
func TestMergerOrderIndependence(t *testing.T) {
	const n = 32
	batches := trialBatches(n, 5)

	want := NewAGA(10, 4)
	for _, b := range batches {
		AddAll(want, b)
	}

	offerOrders := [][]int{
		rng.New(7).Perm(n),  // shuffled, single producer
		rng.New(11).Perm(n), // another shuffle
	}
	for _, order := range offerOrders {
		m := NewMerger(NewAGA(10, 4), 0, nil)
		for _, id := range order {
			m.Offer(id, batches[id], nil)
		}
		m.Flush()
		got := m.Snapshot()
		if st := m.State(); st.Next != n || st.Pending != 0 {
			t.Fatalf("merger state after flush: %+v", st)
		}
		if a, b := frontBits(want.Contents()), frontBits(got); len(a) != len(b) {
			t.Fatalf("merged archive size differs: %d vs %d values", len(a), len(b))
		} else {
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("merged archive diverges at value %d", i)
				}
			}
		}
		m.Close()
	}

	// Many concurrent producers (exercised under -race by CI).
	m := NewMerger(NewAGA(10, 4), 0, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for id := w; id < n; id += 8 {
				m.Offer(id, batches[id], nil)
			}
		}(w)
	}
	wg.Wait()
	m.Flush()
	got := m.Snapshot()
	a, b := frontBits(want.Contents()), frontBits(got)
	if len(a) != len(b) {
		t.Fatalf("concurrent merge size differs: %d vs %d values", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("concurrent merge diverges at value %d", i)
		}
	}
	m.Close()
}

// TestMergerOnMergeOrder asserts the hook fires exactly once per batch,
// in ascending id order, with the aux payload of that batch — the
// contract the tuning service's checkpoint cadence hangs off.
func TestMergerOnMergeOrder(t *testing.T) {
	const n = 10
	batches := trialBatches(n, 3)
	var ids []int
	var auxs []int
	m := NewMerger(NewUnbounded(), 0, func(id int, ar Interface, aux any) {
		ids = append(ids, id)
		auxs = append(auxs, aux.(int))
		if ar.Len() == 0 {
			t.Error("onMerge saw an empty archive")
		}
	})
	for _, id := range rng.New(3).Perm(n) {
		m.Offer(id, batches[id], 100+id)
	}
	m.Flush()
	m.Close()
	if len(ids) != n {
		t.Fatalf("onMerge fired %d times, want %d", len(ids), n)
	}
	for i := range ids {
		if ids[i] != i || auxs[i] != 100+i {
			t.Fatalf("merge %d: id=%d aux=%d, want id=%d aux=%d", i, ids[i], auxs[i], i, 100+i)
		}
	}
}

// TestMergerStaleAndResume verifies the resume contract: a merger
// started at boundary k discards offers below k (already merged in a
// previous life) and merges k onward normally.
func TestMergerStaleAndResume(t *testing.T) {
	batches := trialBatches(6, 3)
	var ids []int
	m := NewMerger(NewUnbounded(), 3, func(id int, ar Interface, aux any) { ids = append(ids, id) })
	for id := 5; id >= 0; id-- { // stale ids 0-2 interleaved with live 3-5
		m.Offer(id, batches[id], nil)
	}
	m.Offer(4, batches[4], nil) // duplicate of a buffered id
	m.Flush()
	m.Close()
	if len(ids) != 3 || ids[0] != 3 || ids[1] != 4 || ids[2] != 5 {
		t.Fatalf("resumed merger merged %v, want [3 4 5]", ids)
	}
}
