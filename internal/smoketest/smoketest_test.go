package smoketest

import (
	"fmt"
	"os"
	"testing"
)

func TestRunSubstitutesArgsAndRestores(t *testing.T) {
	oldArgs, oldStdout, oldStderr := os.Args, os.Stdout, os.Stderr
	var seen []string
	Run(t, []string{"prog", "-x", "1"}, func() {
		seen = append([]string(nil), os.Args...)
		fmt.Println("silenced")
	})
	if len(seen) != 3 || seen[0] != "prog" || seen[2] != "1" {
		t.Fatalf("argv inside main = %v", seen)
	}
	if len(os.Args) != len(oldArgs) || os.Stdout != oldStdout || os.Stderr != oldStderr {
		t.Fatal("Run did not restore process state")
	}
}
