// Package smoketest runs a command's main function inside a test: argv is
// substituted, stdout/stderr are silenced (or captured), and panics become
// test failures. It exists so the cmd/ and examples/ packages can exercise
// their real entry points instead of being compile-only blind spots.
//
// Each call swaps flag.CommandLine for a fresh FlagSet, so mains that
// register global flags can run any number of times per test binary.
//
// An os.Exit path inside main (log.Fatal) aborts the whole test binary;
// the test run reports that as a package failure, which is exactly what a
// smoke test should do.
package smoketest

import (
	"flag"
	"io"
	"os"
	"sync"
	"syscall"
	"testing"
)

// Run executes mainFn with os.Args set to argv and the standard streams
// redirected to the null device, restoring everything afterwards.
func Run(t *testing.T, argv []string, mainFn func()) {
	t.Helper()
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	execute(t, argv, devnull, devnull, mainFn)
}

// Capture is Run but returns everything mainFn printed to stdout, for
// bit-identity assertions on CLI output. Stderr still goes to the null
// device.
func Capture(t *testing.T, argv []string, mainFn func()) string {
	t.Helper()
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan []byte)
	go func() {
		b, _ := io.ReadAll(r)
		r.Close()
		done <- b
	}()
	func() {
		defer w.Close()
		execute(t, argv, w, devnull, mainFn)
	}()
	return string(<-done)
}

// Serve runs a blocking server main (one that exits on SIGINT/SIGTERM
// via cliutil.StopOnSignals) in a background goroutine with the usual
// argv/stream/FlagSet swap, and returns a stop function that delivers
// SIGINT to the test process and waits for the main to return before
// restoring the globals. Because the globals stay swapped while the
// server runs, Serve cannot be combined with concurrent Run/Capture
// calls in the same test binary.
func Serve(t *testing.T, argv []string, mainFn func()) (stop func()) {
	t.Helper()
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	oldArgs, oldStdout, oldStderr, oldFlags := os.Args, os.Stdout, os.Stderr, flag.CommandLine
	os.Args, os.Stdout, os.Stderr = argv, devnull, devnull
	flag.CommandLine = flag.NewFlagSet(argv[0], flag.ExitOnError)
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		mainFn()
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			syscall.Kill(syscall.Getpid(), syscall.SIGINT)
			r := <-done
			os.Args, os.Stdout, os.Stderr, flag.CommandLine = oldArgs, oldStdout, oldStderr, oldFlags
			devnull.Close()
			if r != nil {
				t.Fatalf("server main panicked: %v", r)
			}
		})
	}
}

// execute runs mainFn with os.Args, the standard streams and
// flag.CommandLine swapped out, restoring them afterwards and converting
// panics to test failures. The fresh FlagSet is what lets one test binary
// invoke several mains (or the same main twice) without duplicate-flag
// panics.
func execute(t *testing.T, argv []string, stdout, stderr *os.File, mainFn func()) {
	t.Helper()
	oldArgs, oldStdout, oldStderr, oldFlags := os.Args, os.Stdout, os.Stderr, flag.CommandLine
	os.Args, os.Stdout, os.Stderr = argv, stdout, stderr
	flag.CommandLine = flag.NewFlagSet(argv[0], flag.ExitOnError)
	defer func() {
		os.Args, os.Stdout, os.Stderr, flag.CommandLine = oldArgs, oldStdout, oldStderr, oldFlags
		if r := recover(); r != nil {
			t.Fatalf("main panicked: %v", r)
		}
	}()
	mainFn()
}
