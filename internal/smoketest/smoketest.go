// Package smoketest runs a command's main function inside a test: argv is
// substituted, stdout/stderr are silenced so `go test ./...` output stays
// readable, and panics become test failures. It exists so the cmd/ and
// examples/ packages can exercise their real entry points instead of
// being compile-only blind spots.
//
// An os.Exit path inside main (log.Fatal) aborts the whole test binary;
// the test run reports that as a package failure, which is exactly what a
// smoke test should do.
package smoketest

import (
	"os"
	"testing"
)

// Run executes mainFn with os.Args set to argv and the standard streams
// redirected to the null device, restoring everything afterwards. Call it
// at most once per test binary: main functions register their flags on
// the global FlagSet, and a second registration panics.
func Run(t *testing.T, argv []string, mainFn func()) {
	t.Helper()
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	oldArgs, oldStdout, oldStderr := os.Args, os.Stdout, os.Stderr
	os.Args, os.Stdout, os.Stderr = argv, devnull, devnull
	defer func() {
		os.Args, os.Stdout, os.Stderr = oldArgs, oldStdout, oldStderr
		devnull.Close()
		if r := recover(); r != nil {
			t.Fatalf("main panicked: %v", r)
		}
	}()
	mainFn()
}
