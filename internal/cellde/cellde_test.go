package cellde

import (
	"testing"

	"aedbmls/internal/benchproblems"
	"aedbmls/internal/core"
	"aedbmls/internal/indicators"
	"aedbmls/internal/moo"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.PopSize = 4
	if bad.Validate() == nil {
		t.Error("pop below 9 accepted")
	}
	bad = DefaultConfig()
	bad.CR = 2
	if bad.Validate() == nil {
		t.Error("CR out of range accepted")
	}
	bad = DefaultConfig()
	bad.F = 0
	if bad.Validate() == nil {
		t.Error("zero F accepted")
	}
}

func TestMooreNeighbors(t *testing.T) {
	for _, side := range []int{3, 4, 5, 10} {
		nbrs := mooreNeighbors(side)
		n := side * side
		if len(nbrs) != n {
			t.Fatalf("side %d: %d neighborhoods", side, len(nbrs))
		}
		for i, ns := range nbrs {
			if len(ns) != 8 {
				t.Fatalf("cell %d has %d neighbors, want 8", i, len(ns))
			}
			seen := map[int]bool{}
			for _, j := range ns {
				if j == i && side > 2 {
					t.Fatalf("cell %d is its own neighbor", i)
				}
				if j < 0 || j >= n {
					t.Fatalf("neighbor %d out of grid", j)
				}
				if seen[j] && side > 2 {
					t.Fatalf("duplicate neighbor %d of cell %d", j, i)
				}
				seen[j] = true
			}
		}
		// Torus symmetry: i in neighbors(j) <=> j in neighbors(i).
		for i, ns := range nbrs {
			for _, j := range ns {
				found := false
				for _, k := range nbrs[j] {
					if k == i {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("asymmetric neighborhood: %d -> %d", i, j)
				}
			}
		}
	}
}

func TestOptimizeZDT1Converges(t *testing.T) {
	p := benchproblems.ZDT1(6)
	cfg := Config{PopSize: 36, Evaluations: 4000, CR: 0.1, F: 0.5, ArchiveCapacity: 100, Feedback: 8, Seed: 1}
	res, err := Optimize(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	var pts [][]float64
	for _, s := range res.Front {
		pts = append(pts, s.F)
	}
	igd := indicators.IGD(pts, benchproblems.ZDT1Front(101))
	if igd > 0.08 {
		t.Fatalf("IGD = %v, want < 0.08 after 4000 evaluations", igd)
	}
}

func TestOptimizeBudgetAndArchiveBounds(t *testing.T) {
	p := benchproblems.Fonseca(3)
	cfg := TestConfig()
	cfg.Seed = 2
	res, err := Optimize(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations > int64(cfg.Evaluations)+int64(cfg.PopSize) {
		t.Fatalf("overspent: %d", res.Evaluations)
	}
	if len(res.Front) > cfg.ArchiveCapacity {
		t.Fatalf("front %d exceeds archive capacity %d", len(res.Front), cfg.ArchiveCapacity)
	}
	// Front members mutually non-dominated.
	for i, a := range res.Front {
		for j, b := range res.Front {
			if i != j && moo.Dominates(a, b) {
				t.Fatal("front contains dominated member")
			}
		}
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	p := benchproblems.Schaffer()
	cfg := TestConfig()
	cfg.Seed = 3
	r1, _ := Optimize(p, cfg)
	r2, _ := Optimize(p, cfg)
	if len(r1.Front) != len(r2.Front) {
		t.Fatalf("front sizes differ: %d vs %d", len(r1.Front), len(r2.Front))
	}
	for i := range r1.Front {
		if !moo.EqualF(r1.Front[i], r2.Front[i]) {
			t.Fatal("same-seed runs diverged")
		}
	}
}

func TestConstrainedFrontFeasible(t *testing.T) {
	p := benchproblems.ConstrainedSchaffer()
	cfg := TestConfig()
	cfg.Evaluations = 600
	cfg.Seed = 4
	res, err := Optimize(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Front {
		if !s.Feasible() {
			t.Fatalf("infeasible archive member %v", s)
		}
	}
}

func TestGridRoundedToSquare(t *testing.T) {
	p := benchproblems.Schaffer()
	cfg := TestConfig()
	cfg.PopSize = 20 // rounded down to 16
	cfg.Seed = 5
	res, err := Optimize(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Population) != 16 {
		t.Fatalf("grid size = %d, want 16", len(res.Population))
	}
}

func TestMemeticConfig(t *testing.T) {
	cfg := Memetic(DefaultConfig(), 3, 0, core.DefaultAEDBCriteria())
	if cfg.LocalSearchIters != 3 {
		t.Fatalf("iters = %d", cfg.LocalSearchIters)
	}
	if cfg.LocalSearchAlpha != 0.2 {
		t.Fatalf("alpha defaulting failed: %v", cfg.LocalSearchAlpha)
	}
	if len(cfg.Criteria) != 3 {
		t.Fatalf("criteria not carried: %d", len(cfg.Criteria))
	}
}

func TestMemeticRunsAndRespectsBudget(t *testing.T) {
	p := benchproblems.ZDT1(4)
	cfg := Memetic(TestConfig(), 2, 0.2, nil)
	cfg.Seed = 6
	res, err := Optimize(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations > int64(cfg.Evaluations)+int64(cfg.PopSize)+2 {
		t.Fatalf("memetic overspent: %d of %d", res.Evaluations, cfg.Evaluations)
	}
	if len(res.Front) == 0 {
		t.Fatal("memetic produced an empty front")
	}
}

func TestFeedbackInjectsArchiveSolutions(t *testing.T) {
	// With aggressive feedback, grid members should include clones of
	// archive solutions after a few sweeps — checked indirectly: the run
	// completes and the final grid contains at least one solution whose F
	// equals an archive member's F.
	p := benchproblems.Schaffer()
	cfg := TestConfig()
	cfg.Feedback = 8
	cfg.Seed = 7
	res, err := Optimize(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	match := false
	for _, g := range res.Population {
		for _, a := range res.Front {
			if moo.EqualF(g, a) {
				match = true
				break
			}
		}
	}
	if !match {
		t.Fatal("no archive solution present in the grid despite feedback")
	}
}
