package cellde

import (
	"testing"

	"aedbmls/internal/benchproblems"
	"aedbmls/internal/moo"
)

// batchCapable upgrades a problem to moo.BatchProblem by delegation.
type batchCapable struct {
	moo.Problem
	batches int
}

func (b *batchCapable) EvaluateBatch(xs [][]float64) []moo.BatchResult {
	b.batches++
	out := make([]moo.BatchResult, len(xs))
	for i, x := range xs {
		f, v, aux := b.Evaluate(x)
		out[i] = moo.BatchResult{F: f, Violation: v, Aux: aux}
	}
	return out
}

// TestBatchEvaluationEquivalence: the batched initial grid must be
// behaviour-neutral for a full CellDE run (the asynchronous sweeps are
// sequential by design and shared between both runs).
func TestBatchEvaluationEquivalence(t *testing.T) {
	cfg := TestConfig()
	cfg.Seed = 3
	plain, err := Optimize(benchproblems.ZDT1(6), cfg)
	if err != nil {
		t.Fatal(err)
	}
	wrapped := &batchCapable{Problem: benchproblems.ZDT1(6)}
	batched, err := Optimize(wrapped, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Evaluations != batched.Evaluations || plain.Sweeps != batched.Sweeps {
		t.Fatalf("budgets diverge: %d/%d sweeps vs %d/%d", plain.Evaluations, plain.Sweeps, batched.Evaluations, batched.Sweeps)
	}
	for i := range plain.Population {
		if !moo.EqualF(plain.Population[i], batched.Population[i]) {
			t.Fatalf("grid cell %d differs", i)
		}
	}
	if wrapped.batches != 1 {
		t.Fatalf("batch calls = %d, want exactly 1 (the initial grid)", wrapped.batches)
	}
}

// TestMemeticLocalSearchBatch: the memetic hybrid with batched local
// search spends the same budget shape and still returns a feasible,
// sorted front.
func TestMemeticLocalSearchBatch(t *testing.T) {
	cfg := Memetic(TestConfig(), 4, 0.2, nil)
	cfg.LocalSearchBatch = 4
	cfg.Seed = 11
	res, err := Optimize(&batchCapable{Problem: benchproblems.ZDT1(5)}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations < int64(cfg.PopSize) {
		t.Fatalf("suspicious evaluation count %d", res.Evaluations)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	for _, s := range res.Front {
		if !s.Feasible() {
			t.Fatal("infeasible front member")
		}
	}
}
