// Package cellde implements CellDE (Durillo, Nebro, Luna, Alba — PPSN X,
// 2008), the second reference MOEA of the paper: a cellular genetic
// algorithm whose variation operator is differential evolution.
//
// Individuals live on a toroidal grid; each one recombines with parents
// drawn from its Moore (C9) neighbourhood using the DE rand/1/bin
// operator, offspring replace their parent when not dominated by it, and
// an external crowding-distance archive collects every non-dominated
// offspring. After each sweep a feedback step re-injects random archive
// members into random cells, steering the grid towards the elite front —
// the design of the original CellDE.
//
// The package also contains Memetic, the paper's stated future work: the
// same algorithm with the AEDB-MLS local search (internal/core.Improve)
// applied to offspring.
package cellde

import (
	"fmt"
	"math"
	"time"

	"aedbmls/internal/archive"
	"aedbmls/internal/core"
	"aedbmls/internal/moo"
	"aedbmls/internal/operators"
	"aedbmls/internal/rng"
	"aedbmls/internal/study"
)

// AlgorithmName identifies CellDE checkpoints.
const AlgorithmName = "cellde"

// Config parameterises CellDE.
type Config struct {
	// PopSize is the grid population; it is rounded down to a perfect
	// square (jMetal uses 10x10 = 100).
	PopSize     int
	Evaluations int
	// CR and F are the DE crossover rate and differential weight
	// (CellDE's published study uses CR = 0.1, F = 0.5).
	CR, F float64
	// ArchiveCapacity bounds the external crowding archive (100).
	ArchiveCapacity int
	// Feedback is the number of archive solutions re-injected into the
	// grid after each sweep (CellDE uses 20).
	Feedback int
	Seed     uint64

	// Memetic options (zero-valued in plain CellDE): every offspring
	// accepted into the grid receives LocalSearchIters improvement steps
	// with the AEDB-MLS operator. LocalSearchBatch > 1 groups those steps
	// into batched neighborhoods (core.ImproveBatch), one committee wave
	// per round on batch-capable problems.
	LocalSearchIters int
	LocalSearchBatch int
	LocalSearchAlpha float64
	Criteria         []core.Criterion

	// Checkpoint enables crash-safe checkpointing at sweep boundaries;
	// Resume restores a matching checkpoint instead of initialising; Stop
	// requests cooperative interruption. See internal/study for the shared
	// protocol; resuming an interrupted run reproduces the uninterrupted
	// result bit for bit.
	Checkpoint *study.Controller
	Resume     *study.Checkpoint
	Stop       <-chan struct{}
}

// fingerprint identifies the study this config defines on problem p.
func (c Config) fingerprint(p moo.Problem) string {
	crit := ""
	for _, cr := range c.Criteria {
		crit += fmt.Sprintf("%s:%v;", cr.Name, cr.Params)
	}
	return study.Fingerprint(
		"cellde-v1",
		fmt.Sprintf("pop=%d evals=%d cr=%x f=%x cap=%d fb=%d seed=%d ls=%d lsb=%d lsa=%x",
			c.PopSize, c.Evaluations, math.Float64bits(c.CR), math.Float64bits(c.F),
			c.ArchiveCapacity, c.Feedback, c.Seed,
			c.LocalSearchIters, c.LocalSearchBatch, math.Float64bits(c.LocalSearchAlpha)),
		crit,
		study.ProblemFingerprint(p),
	)
}

// DefaultConfig returns the reference configuration used for the paper's
// comparison (pop 100, 10 000 evaluations).
func DefaultConfig() Config {
	return Config{
		PopSize: 100, Evaluations: 10000,
		CR: 0.1, F: 0.5,
		ArchiveCapacity: 100, Feedback: 20,
		Seed: 1,
	}
}

// TestConfig returns a reduced configuration for tests and benchmarks.
func TestConfig() Config {
	cfg := DefaultConfig()
	cfg.PopSize = 16
	cfg.Evaluations = 200
	cfg.Feedback = 4
	return cfg
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.PopSize < 9:
		return fmt.Errorf("cellde: PopSize must be >= 9, got %d", c.PopSize)
	case c.Evaluations < c.PopSize:
		return fmt.Errorf("cellde: Evaluations %d below PopSize %d", c.Evaluations, c.PopSize)
	case c.CR < 0 || c.CR > 1:
		return fmt.Errorf("cellde: CR out of [0,1]")
	case c.F <= 0:
		return fmt.Errorf("cellde: F must be positive")
	case c.ArchiveCapacity <= 0:
		return fmt.Errorf("cellde: ArchiveCapacity must be positive")
	}
	return nil
}

// Result is the outcome of one CellDE run.
type Result struct {
	// Front is the external archive (feasible non-dominated solutions).
	Front []*moo.Solution
	// Population is the final grid.
	Population  []*moo.Solution
	Evaluations int64
	Duration    time.Duration
	Sweeps      int
	// Interrupted is true when the run exited early because Config.Stop
	// was closed.
	Interrupted bool
}

// Optimize runs CellDE (or its memetic variant when the config enables
// local search) on p. Execution is sequential, as in the paper.
func Optimize(p moo.Problem, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	side := int(math.Sqrt(float64(cfg.PopSize)))
	n := side * side
	lo, hi := p.Bounds()
	start := time.Now()
	loop := &study.Loop{Ctrl: cfg.Checkpoint, Stop: cfg.Stop}
	interrupted := false
	var (
		r      *rng.Rand
		grid   []*moo.Solution
		arch   archive.Interface
		evals  int64
		sweeps int
		done   bool // resumed from a Final checkpoint
	)

	if cp := cfg.Resume; cp != nil {
		if err := cp.Check(AlgorithmName, cfg.fingerprint(p)); err != nil {
			return nil, err
		}
		var err error
		if grid, err = study.DecodeSolutions(cp.Grid, p.Dim(), p.NumObjectives()); err != nil {
			return nil, err
		}
		if len(grid) != n {
			return nil, fmt.Errorf("cellde: checkpoint grid has %d cells, config wants %d", len(grid), n)
		}
		if arch, err = study.DecodeArchive(cp.Archive, p.Dim(), p.NumObjectives()); err != nil {
			return nil, err
		}
		r = cp.RNG.Rand()
		evals = cp.Evaluations
		sweeps = int(cp.Iteration)
		done = cp.Final
	} else {
		r = rng.New(cfg.Seed)
		arch = archive.NewCrowding(cfg.ArchiveCapacity)

		// The initial grid is one batched evaluation; the sweeps below
		// stay sequential by design — CellDE is an asynchronous cellular
		// GA, so each cell's variation depends on offspring already placed
		// this sweep, which admits no batching without changing the
		// algorithm.
		xs := make([][]float64, n)
		for i := range xs {
			xs[i] = operators.RandomVector(lo, hi, r)
		}
		grid = moo.EvaluateAll(p, xs)
		evals += int64(n)
		for i := range grid {
			// Grid cells are long-lived parents, so a ladder-screened cell
			// is re-evaluated serially at full fidelity — the grid (and the
			// checkpoints that encode it) never holds a screening estimate.
			if grid[i].Screened {
				grid[i] = moo.NewSolution(p, xs[i])
				evals++
			}
			// Stop-abandoned cells stay in the grid (the run exits at the
			// first boundary) but must never seed the archive.
			if grid[i].Admissible() && grid[i].Feasible() {
				arch.Add(grid[i])
			}
		}
	}

	evaluate := func(x []float64) *moo.Solution {
		evals++
		return moo.NewSolution(p, x)
	}

	// encode snapshots the sweep boundary state.
	encode := func() *study.Checkpoint {
		ast, _ := study.EncodeArchive(arch)
		return &study.Checkpoint{
			Algorithm:   AlgorithmName,
			Fingerprint: cfg.fingerprint(p),
			Evaluations: evals,
			Iteration:   int64(sweeps),
			RNG:         study.StateOf(r),
			Grid:        study.EncodeSolutions(grid),
			Archive:     ast,
		}
	}

	neighbors := mooreNeighbors(side)
	budget := int64(cfg.Evaluations)
	for !done && evals < budget {
		if stopped, err := loop.Boundary(encode); err != nil {
			return nil, err
		} else if stopped {
			interrupted = true
			break
		}
		sweeps++
		for i := 0; i < n && evals < budget; i++ {
			cur := grid[i]
			nbrs := neighbors[i]
			// Two distinct neighbourhood parents by binary tournament.
			p1 := tournamentFrom(grid, nbrs, r)
			p2 := tournamentFrom(grid, nbrs, r)
			for tries := 0; tries < 4 && p2 == p1; tries++ {
				p2 = tournamentFrom(grid, nbrs, r)
			}
			trial := operators.DERand1Bin(cur.X, cur.X, p1.X, p2.X, cfg.CR, cfg.F, lo, hi, r)
			child := evaluate(trial)
			if cfg.LocalSearchIters > 0 && evals < budget {
				improved, spent := core.ImproveBatch(p, child, solutionsAt(grid, nbrs), cfg.LocalSearchIters,
					cfg.LocalSearchBatch, cfg.LocalSearchAlpha, cfg.Criteria, r)
				evals += int64(spent)
				child = improved
			}
			// Replacement: the offspring takes the cell unless the parent
			// dominates it.
			if !moo.Dominates(cur, child) {
				grid[i] = child
			}
			if child.Feasible() {
				arch.Add(child)
			}
		}
		// Feedback: archive members re-enter the grid at random cells.
		contents := arch.Contents()
		for k := 0; k < cfg.Feedback && len(contents) > 0; k++ {
			grid[r.Intn(n)] = contents[r.Intn(len(contents))].Clone()
		}
	}
	if !done && !interrupted {
		if err := loop.Finish(encode); err != nil {
			return nil, err
		}
	}

	res := &Result{
		Population:  grid,
		Evaluations: evals,
		Duration:    time.Since(start),
		Sweeps:      sweeps,
		Interrupted: interrupted,
	}
	res.Front = arch.Contents()
	if len(res.Front) == 0 {
		// No feasible solution was ever found: report the least-violating
		// non-dominated subset of the grid instead of an empty front.
		res.Front = moo.ParetoFilter(grid)
	}
	archive.SortByObjective(res.Front, 0)
	return res, nil
}

// Memetic returns a config with the AEDB-MLS local search enabled — the
// hybrid the paper proposes as future work ("include AEDB-MLS in it as a
// local search for fine tuning the solutions generated by CellDE").
func Memetic(base Config, iters int, alpha float64, criteria []core.Criterion) Config {
	base.LocalSearchIters = iters
	base.LocalSearchAlpha = alpha
	base.Criteria = criteria
	if base.LocalSearchAlpha <= 0 {
		base.LocalSearchAlpha = 0.2
	}
	return base
}

// mooreNeighbors precomputes the toroidal C9 neighbourhood (the 8
// surrounding cells) for each position of a side x side grid.
func mooreNeighbors(side int) [][]int {
	n := side * side
	out := make([][]int, n)
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			var nbrs []int
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if dx == 0 && dy == 0 {
						continue
					}
					nx := (x + dx + side) % side
					ny := (y + dy + side) % side
					nbrs = append(nbrs, ny*side+nx)
				}
			}
			out[y*side+x] = nbrs
		}
	}
	return out
}

// tournamentFrom runs a binary dominance tournament over the
// neighbourhood indices.
func tournamentFrom(grid []*moo.Solution, nbrs []int, r *rng.Rand) *moo.Solution {
	a := grid[nbrs[r.Intn(len(nbrs))]]
	b := grid[nbrs[r.Intn(len(nbrs))]]
	switch {
	case moo.Dominates(a, b):
		return a
	case moo.Dominates(b, a):
		return b
	case r.Bool(0.5):
		return a
	default:
		return b
	}
}

func solutionsAt(grid []*moo.Solution, idx []int) []*moo.Solution {
	out := make([]*moo.Solution, len(idx))
	for i, j := range idx {
		out[i] = grid[j]
	}
	return out
}
