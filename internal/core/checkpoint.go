package core

import (
	"fmt"
	"math"
	"strings"

	"aedbmls/internal/moo"
	"aedbmls/internal/study"
)

// fingerprint identifies the study this config defines on problem p:
// every knob that changes the search trajectory, plus the problem's own
// identity. Perf-only settings stay out so a resume may, e.g., change
// evaluation parallelism.
func (c Config) fingerprint(p moo.Problem) string {
	criteria := c.Criteria
	if len(criteria) == 0 {
		criteria = PerDimensionCriteria(p.Dim())
	}
	crit := make([]string, len(criteria))
	for i, cr := range criteria {
		crit[i] = fmt.Sprintf("%s:%v", cr.Name, cr.Params)
	}
	return study.Fingerprint(
		"aedb-mls-v1",
		fmt.Sprintf("pops=%d workers=%d epw=%d reset=%d alpha=%x cap=%d div=%d hood=%d seed=%d",
			c.Populations, c.Workers, c.EvalsPerWorker, c.ResetPeriod,
			math.Float64bits(c.Alpha), c.ArchiveCapacity, c.GridDivisions,
			c.neighborhood(), c.Seed),
		strings.Join(crit, ";"),
		study.ProblemFingerprint(p),
	)
}
