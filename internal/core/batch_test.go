package core

import (
	"sync/atomic"
	"testing"

	"aedbmls/internal/benchproblems"
	"aedbmls/internal/moo"
	"aedbmls/internal/rng"
)

// batchCapable upgrades any problem to a moo.BatchProblem whose batch
// path trivially delegates to Evaluate, plus a call counter — enough to
// verify that routing through the batch API never changes results. The
// counters are atomic because threaded Optimize workers batch
// concurrently.
type batchCapable struct {
	moo.Problem
	batches atomic.Int64
	vectors atomic.Int64
}

func (b *batchCapable) EvaluateBatch(xs [][]float64) []moo.BatchResult {
	b.batches.Add(1)
	b.vectors.Add(int64(len(xs)))
	out := make([]moo.BatchResult, len(xs))
	for i, x := range xs {
		f, v, aux := b.Evaluate(x)
		out[i] = moo.BatchResult{F: f, Violation: v, Aux: aux}
	}
	return out
}

func assertFrontsEqual(t *testing.T, name string, a, b *Result) {
	t.Helper()
	if len(a.Front) != len(b.Front) {
		t.Fatalf("%s: front sizes %d vs %d", name, len(a.Front), len(b.Front))
	}
	for i := range a.Front {
		if !moo.EqualF(a.Front[i], b.Front[i]) {
			t.Fatalf("%s: front member %d differs", name, i)
		}
	}
	if a.Evaluations != b.Evaluations {
		t.Fatalf("%s: evaluation counts %d vs %d", name, a.Evaluations, b.Evaluations)
	}
}

// TestSequentialMatchesParallelSingleWorkerBatched extends the
// single-worker equivalence to the batched neighborhood step: with one
// population and one worker, the threaded and round-robin executions must
// agree exactly for any NeighborhoodSize, on a batch-capable problem.
func TestSequentialMatchesParallelSingleWorkerBatched(t *testing.T) {
	for _, k := range []int{2, 4, 7} {
		p := &batchCapable{Problem: benchproblems.ZDT1(4)}
		cfg := TestConfig()
		cfg.Populations = 1
		cfg.Workers = 1
		cfg.EvalsPerWorker = 90
		cfg.NeighborhoodSize = k
		cfg.Seed = 21
		seq, err := OptimizeSequential(p, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		par, err := Optimize(p, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		assertFrontsEqual(t, "seq-vs-par", seq, par)
		if p.batches.Load() == 0 {
			t.Fatal("neighborhood step never used the batch path")
		}
	}
}

// TestBatchRoutingDoesNotChangeResults: the same configuration optimised
// on a plain problem and on its batch-capable twin must produce identical
// fronts — EvaluateAll routing is behaviour-neutral.
func TestBatchRoutingDoesNotChangeResults(t *testing.T) {
	cfg := TestConfig()
	cfg.NeighborhoodSize = 3
	cfg.EvalsPerWorker = 30
	cfg.Seed = 77
	plain, err := OptimizeSequential(benchproblems.ZDT1(5), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := OptimizeSequential(&batchCapable{Problem: benchproblems.ZDT1(5)}, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertFrontsEqual(t, "plain-vs-batched", plain, batched)
}

// TestNeighborhoodBudgetRespected: the batched step clamps its last
// neighborhood so the per-worker budget is met exactly, never exceeded.
func TestNeighborhoodBudgetRespected(t *testing.T) {
	cfg := TestConfig()
	cfg.NeighborhoodSize = 7 // does not divide the budget
	cfg.EvalsPerWorker = 25
	cfg.Seed = 5
	res, err := Optimize(&batchCapable{Problem: benchproblems.ZDT1(4)}, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	budget := int64(cfg.Populations * cfg.Workers * cfg.EvalsPerWorker)
	if res.Evaluations != budget {
		t.Fatalf("evaluations = %d, want exactly %d", res.Evaluations, budget)
	}
}

// TestNeighborhoodSizeValidation: negative sizes are rejected, zero and
// one behave like the paper's single-candidate step.
func TestNeighborhoodSizeValidation(t *testing.T) {
	cfg := TestConfig()
	cfg.NeighborhoodSize = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative NeighborhoodSize accepted")
	}
	for _, k := range []int{0, 1} {
		cfg := TestConfig()
		cfg.NeighborhoodSize = k
		cfg.Seed = 31
		a, err := OptimizeSequential(benchproblems.ZDT1(4), cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		base := TestConfig()
		base.Seed = 31
		b, err := OptimizeSequential(benchproblems.ZDT1(4), base, nil)
		if err != nil {
			t.Fatal(err)
		}
		assertFrontsEqual(t, "degenerate-neighborhood", a, b)
	}
}

// TestImproveBatchMatchesImprove: batch size one is exactly Improve (same
// draws, same acceptance), and larger batches still spend the same budget
// and only ever return feasible improvements.
func TestImproveBatchMatchesImprove(t *testing.T) {
	p := benchproblems.ZDT1(4)
	lo, _ := p.Bounds()
	start := moo.NewSolution(p, []float64{0.5, 0.5, 0.5, 0.5})
	pop := []*moo.Solution{moo.NewSolution(p, append([]float64(nil), lo...))}

	a, spentA := Improve(p, start, pop, 12, 0.2, nil, rng.New(3))
	b, spentB := ImproveBatch(p, start, pop, 12, 1, 0.2, nil, rng.New(3))
	if spentA != spentB {
		t.Fatalf("spent %d vs %d", spentA, spentB)
	}
	if !moo.EqualF(a, b) {
		t.Fatalf("batch=1 diverged from Improve: %v vs %v", a, b)
	}

	c, spentC := ImproveBatch(&batchCapable{Problem: p}, start, pop, 12, 5, 0.2, nil, rng.New(3))
	if spentC != 12 {
		t.Fatalf("batched spend = %d, want 12", spentC)
	}
	if moo.Dominates(start, c) {
		t.Fatal("ImproveBatch returned a solution dominated by its start")
	}
}
