package core

import (
	"testing"

	"aedbmls/internal/archive"
	"aedbmls/internal/benchproblems"
	"aedbmls/internal/moo"
)

func TestSequentialDeterministic(t *testing.T) {
	// The whole point of the sequential mode: identical seeds give
	// identical fronts even with multiple (virtual) populations/workers.
	p := benchproblems.ZDT1(5)
	cfg := TestConfig()
	cfg.Populations = 3
	cfg.Workers = 4
	cfg.EvalsPerWorker = 40
	cfg.Seed = 17
	r1, err := OptimizeSequential(p, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := OptimizeSequential(p, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Evaluations != r2.Evaluations || r1.Accepted != r2.Accepted || r1.Resets != r2.Resets {
		t.Fatalf("counters diverged: (%d %d %d) vs (%d %d %d)",
			r1.Evaluations, r1.Accepted, r1.Resets, r2.Evaluations, r2.Accepted, r2.Resets)
	}
	if len(r1.Front) != len(r2.Front) {
		t.Fatalf("front sizes differ: %d vs %d", len(r1.Front), len(r2.Front))
	}
	for i := range r1.Front {
		if !moo.EqualF(r1.Front[i], r2.Front[i]) {
			t.Fatalf("front member %d differs", i)
		}
	}
}

func TestSequentialBudget(t *testing.T) {
	p := benchproblems.Schaffer()
	cfg := TestConfig()
	cfg.Seed = 18
	res, err := OptimizeSequential(p, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	budget := int64(cfg.Populations * cfg.Workers * cfg.EvalsPerWorker)
	if res.Evaluations > budget {
		t.Fatalf("spent %d of %d", res.Evaluations, budget)
	}
	if res.Evaluations < budget/2 {
		t.Fatalf("underspent: %d of %d", res.Evaluations, budget)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
}

func TestSequentialFrontQuality(t *testing.T) {
	p := benchproblems.ConstrainedSchaffer()
	cfg := TestConfig()
	cfg.EvalsPerWorker = 100
	cfg.Seed = 19
	res, err := OptimizeSequential(p, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Front {
		if !s.Feasible() {
			t.Fatalf("infeasible front member %v", s)
		}
	}
	// Mutually non-dominated.
	for i, a := range res.Front {
		for j, b := range res.Front {
			if i != j && moo.Dominates(a, b) {
				t.Fatal("front contains dominated member")
			}
		}
	}
}

func TestSequentialMatchesParallelSingleWorker(t *testing.T) {
	// With one population and one worker, the sequential and threaded
	// executions follow the same code path order and must agree exactly.
	p := benchproblems.ZDT1(4)
	cfg := TestConfig()
	cfg.Populations = 1
	cfg.Workers = 1
	cfg.EvalsPerWorker = 120
	cfg.Seed = 20
	seq, err := OptimizeSequential(p, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := Optimize(p, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Front) != len(par.Front) {
		t.Fatalf("front sizes: sequential %d, parallel %d", len(seq.Front), len(par.Front))
	}
	for i := range seq.Front {
		if !moo.EqualF(seq.Front[i], par.Front[i]) {
			t.Fatalf("front member %d differs between execution modes", i)
		}
	}
	if seq.Evaluations != par.Evaluations {
		t.Fatalf("evaluation counts differ: %d vs %d", seq.Evaluations, par.Evaluations)
	}
}

func TestSequentialCustomArchive(t *testing.T) {
	p := benchproblems.Schaffer()
	cfg := TestConfig()
	cfg.Seed = 21
	res, err := OptimizeSequential(p, cfg, archive.NewCrowding(15))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 || len(res.Front) > 15 {
		t.Fatalf("front size = %d with capacity 15", len(res.Front))
	}
}

func TestSequentialRejectsBadConfig(t *testing.T) {
	p := benchproblems.Schaffer()
	cfg := TestConfig()
	cfg.Alpha = 0
	if _, err := OptimizeSequential(p, cfg, nil); err == nil {
		t.Fatal("invalid config accepted")
	}
}
