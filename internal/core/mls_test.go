package core

import (
	"math"
	"sync"
	"testing"
	"time"

	"aedbmls/internal/archive"
	"aedbmls/internal/benchproblems"
	"aedbmls/internal/moo"
	"aedbmls/internal/rng"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.Populations = 0
	if bad.Validate() == nil {
		t.Error("zero populations accepted")
	}
	bad = DefaultConfig()
	bad.Alpha = 1.5
	if bad.Validate() == nil {
		t.Error("alpha > 1 accepted")
	}
	bad = DefaultConfig()
	bad.ResetPeriod = 0
	if bad.Validate() == nil {
		t.Error("zero reset period accepted")
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Populations != 8 || cfg.Workers != 12 || cfg.EvalsPerWorker != 250 {
		t.Fatalf("paper layout wrong: %+v", cfg)
	}
	if cfg.Populations*cfg.Workers*cfg.EvalsPerWorker != 24000 {
		t.Fatal("total budget is not 24000")
	}
	if cfg.Alpha != 0.2 || cfg.ResetPeriod != 50 {
		t.Fatalf("tuned parameters wrong: alpha=%v reset=%d", cfg.Alpha, cfg.ResetPeriod)
	}
}

func TestDefaultAEDBCriteria(t *testing.T) {
	crit := DefaultAEDBCriteria()
	if len(crit) != 3 {
		t.Fatalf("criteria count = %d, want 3", len(crit))
	}
	// Criterion (i): border + neighbors thresholds.
	if len(crit[0].Params) != 2 || crit[0].Params[0] != 2 || crit[0].Params[1] != 4 {
		t.Fatalf("energy criterion params = %v", crit[0].Params)
	}
	// Criterion (ii): neighbors threshold only.
	if len(crit[1].Params) != 1 || crit[1].Params[0] != 4 {
		t.Fatalf("coverage criterion params = %v", crit[1].Params)
	}
	// Criterion (iii): the two delays.
	if len(crit[2].Params) != 2 || crit[2].Params[0] != 0 || crit[2].Params[1] != 1 {
		t.Fatalf("broadcast-time criterion params = %v", crit[2].Params)
	}
}

func TestOptimizeOnConstrainedProblem(t *testing.T) {
	p := benchproblems.ConstrainedSchaffer()
	cfg := TestConfig()
	cfg.EvalsPerWorker = 100
	cfg.Seed = 7
	res, err := Optimize(p, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	for _, s := range res.Front {
		if !s.Feasible() {
			t.Fatalf("infeasible archive member: %v", s)
		}
		if s.X[0] < 0.5-1e-9 {
			t.Fatalf("front member violates x >= 0.5: %v", s.X[0])
		}
	}
	// Mutually non-dominated.
	for i, a := range res.Front {
		for j, b := range res.Front {
			if i != j && moo.Dominates(a, b) {
				t.Fatal("front contains dominated member")
			}
		}
	}
	// The known Pareto set is x in [0.5, 2]; the search should find
	// points across that range.
	var minX, maxX = 4.0, -4.0
	for _, s := range res.Front {
		if s.X[0] < minX {
			minX = s.X[0]
		}
		if s.X[0] > maxX {
			maxX = s.X[0]
		}
	}
	if minX > 0.8 || maxX < 1.7 {
		t.Fatalf("front poorly spread over [0.5, 2]: [%v, %v]", minX, maxX)
	}
}

func TestOptimizeBudgetRespected(t *testing.T) {
	p := benchproblems.ZDT1(5)
	cfg := TestConfig()
	cfg.Seed = 8
	res, err := Optimize(p, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	budget := int64(cfg.Populations * cfg.Workers * cfg.EvalsPerWorker)
	if res.Evaluations > budget {
		t.Fatalf("spent %d evaluations, budget %d", res.Evaluations, budget)
	}
	if res.Evaluations < budget/2 {
		t.Fatalf("spent only %d of %d evaluations", res.Evaluations, budget)
	}
}

func TestOptimizeSingleWorkerDeterministic(t *testing.T) {
	// With one population and one worker there is no scheduling
	// nondeterminism: identical seeds must give identical fronts.
	p := benchproblems.ZDT1(4)
	cfg := TestConfig()
	cfg.Populations = 1
	cfg.Workers = 1
	cfg.EvalsPerWorker = 150
	cfg.Seed = 99
	r1, err := Optimize(p, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Optimize(p, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Front) != len(r2.Front) {
		t.Fatalf("front sizes differ: %d vs %d", len(r1.Front), len(r2.Front))
	}
	for i := range r1.Front {
		if !moo.EqualF(r1.Front[i], r2.Front[i]) {
			t.Fatalf("front member %d differs", i)
		}
	}
}

func TestOptimizeConvergesOnSchaffer(t *testing.T) {
	// On Schaffer's problem the Pareto set is x in [0, 2]; every archived
	// solution must lie there (anything else is dominated), and a modest
	// budget should cover the front densely enough for a small IGD
	// against the analytic front.
	p := benchproblems.Schaffer()
	cfg := TestConfig()
	cfg.Populations = 2
	cfg.Workers = 2
	cfg.EvalsPerWorker = 150
	cfg.Seed = 11
	res, err := Optimize(p, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) < 20 {
		t.Fatalf("front size = %d, want a well-populated archive", len(res.Front))
	}
	// Archive-level non-dominance can keep points marginally outside the
	// Pareto set; in objective space they must still hug the analytic
	// front f2 = (sqrt(f1) - 2)^2.
	for _, s := range res.Front {
		x := s.X[0]
		cx := math.Min(math.Max(x, 0), 2)
		d0 := s.F[0] - cx*cx
		d1 := s.F[1] - (cx-2)*(cx-2)
		if math.Sqrt(d0*d0+d1*d1) > 0.75 {
			t.Fatalf("archived far-from-front point x=%v f=%v", x, s.F)
		}
	}
	// IGD against the analytic front (101 points), in raw objective units
	// (f ranges over [0, 4]).
	var worst float64
	for i := 0; i <= 100; i++ {
		x := 2 * float64(i) / 100
		rf := []float64{x * x, (x - 2) * (x - 2)}
		best := 1e18
		for _, s := range res.Front {
			d := (s.F[0]-rf[0])*(s.F[0]-rf[0]) + (s.F[1]-rf[1])*(s.F[1]-rf[1])
			if d < best {
				best = d
			}
		}
		if best > worst {
			worst = best
		}
	}
	// The parallel run is scheduling-dependent, so allow generous slack:
	// no hole larger than 1 objective unit (the front spans 4 units).
	if worst > 1.0 {
		t.Fatalf("front has a coverage hole: max squared gap %v", worst)
	}
}

func TestOptimizeWithCustomArchive(t *testing.T) {
	p := benchproblems.Schaffer()
	cfg := TestConfig()
	cfg.Seed = 12
	ar := archive.NewCrowding(20)
	res, err := Optimize(p, cfg, ar)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 || len(res.Front) > 20 {
		t.Fatalf("crowding-archive front size = %d", len(res.Front))
	}
}

func TestOptimizeRejectsBadCriteria(t *testing.T) {
	p := benchproblems.Schaffer()
	cfg := TestConfig()
	cfg.Criteria = []Criterion{{Name: "bad", Params: []int{7}}}
	if _, err := Optimize(p, cfg, nil); err == nil {
		t.Fatal("criterion outside dim accepted")
	}
}

func TestPerDimensionCriteria(t *testing.T) {
	crit := PerDimensionCriteria(3)
	if len(crit) != 3 {
		t.Fatalf("got %d criteria", len(crit))
	}
	for i, c := range crit {
		if len(c.Params) != 1 || c.Params[0] != i {
			t.Fatalf("criterion %d = %v", i, c.Params)
		}
	}
}

func TestImprove(t *testing.T) {
	p := benchproblems.Schaffer()
	r := rng.New(13)
	start := moo.NewSolution(p, []float64{3.5}) // poor solution
	pop := []*moo.Solution{
		moo.NewSolution(p, []float64{1}),
		moo.NewSolution(p, []float64{2}),
	}
	improved, spent := Improve(p, start, pop, 40, 0.3, nil, r)
	if spent != 40 {
		t.Fatalf("spent = %d, want 40", spent)
	}
	if moo.Dominates(start, improved) {
		t.Fatal("Improve returned a solution dominated by its input")
	}
}

func TestImproveEmptyPopulation(t *testing.T) {
	p := benchproblems.Schaffer()
	r := rng.New(14)
	start := moo.NewSolution(p, []float64{3})
	improved, _ := Improve(p, start, nil, 10, 0.2, nil, r)
	if improved == nil {
		t.Fatal("Improve with empty population returned nil")
	}
}

func TestBarrier(t *testing.T) {
	const n = 8
	b := newBarrier(n)
	var mu sync.Mutex
	phase := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for round := 0; round < 5; round++ {
				mu.Lock()
				phase[i] = round
				// No goroutine may be more than one round ahead.
				for j := range phase {
					if phase[j] < round-1 || phase[j] > round+1 {
						mu.Unlock()
						t.Errorf("barrier desync: %v", phase)
						return
					}
				}
				mu.Unlock()
				b.Arrive()
			}
			b.Leave()
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("barrier deadlocked")
	}
}

func TestBarrierLeaveReleasesWaiters(t *testing.T) {
	b := newBarrier(2)
	done := make(chan struct{})
	go func() {
		b.Arrive() // waits for the second party
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	b.Leave() // the other party quits instead of arriving
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Leave did not release the waiting party")
	}
}

func TestPopulationSample(t *testing.T) {
	pop := newPopulation(3)
	r := rng.New(15)
	if pop.sample(r) != nil {
		t.Fatal("empty population sampled non-nil")
	}
	s := &moo.Solution{F: []float64{1}}
	pop.set(1, s)
	for i := 0; i < 10; i++ {
		if pop.sample(r) != s {
			t.Fatal("sample missed the only live slot")
		}
	}
	s2 := &moo.Solution{F: []float64{2}}
	pop.set(2, s2)
	saw := map[*moo.Solution]bool{}
	for i := 0; i < 200; i++ {
		saw[pop.sample(r)] = true
	}
	if !saw[s] || !saw[s2] {
		t.Fatal("sample not covering all live slots")
	}
}
