package core

import (
	"math"
	"path/filepath"
	"testing"

	"aedbmls/internal/benchproblems"
	"aedbmls/internal/moo"
	"aedbmls/internal/study"
)

// sameFronts asserts two fronts are bit-identical (order included: both
// runs sort by objective 0 and any residual tie order must also match,
// since the resumed run claims to BE the uninterrupted run).
func sameFronts(t *testing.T, want, got []*moo.Solution) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("front sizes differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		for j := range want[i].X {
			if math.Float64bits(want[i].X[j]) != math.Float64bits(got[i].X[j]) {
				t.Fatalf("solution %d: X[%d] = %v vs %v", i, j, want[i].X[j], got[i].X[j])
			}
		}
		for j := range want[i].F {
			if math.Float64bits(want[i].F[j]) != math.Float64bits(got[i].F[j]) {
				t.Fatalf("solution %d: F[%d] = %v vs %v", i, j, want[i].F[j], got[i].F[j])
			}
		}
	}
}

// interruptAfterFirstDueSave builds a controller that saves on cadence and
// asks the optimizer to stop right after the first non-final save lands.
func interruptAfterFirstDueSave(path string, every int64) *study.Controller {
	return &study.Controller{Path: path, Every: every, AfterSave: func(cp *study.Checkpoint) error {
		if cp.Final {
			return nil
		}
		return study.ErrStop
	}}
}

// TestCheckpointResumeEquivalence is the tentpole property for AEDB-MLS:
// interrupt a checkpointed run mid-flight, resume it from the file, and
// the final front (and every counter) is bit-identical to the
// uninterrupted golden run.
func TestCheckpointResumeEquivalence(t *testing.T) {
	p := benchproblems.ZDT1(6)
	cfg := TestConfig()
	cfg.Seed = 99

	golden, err := OptimizeSequential(p, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "mls.ckpt")
	icfg := cfg
	icfg.Checkpoint = interruptAfterFirstDueSave(path, 40)
	ires, err := OptimizeSequential(p, icfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ires.Interrupted {
		t.Fatal("run with stop-requesting hook did not report Interrupted")
	}
	if ires.Evaluations >= golden.Evaluations {
		t.Fatalf("interrupted run spent the whole budget (%d)", ires.Evaluations)
	}

	cp, err := study.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := cfg
	rcfg.Resume = cp
	rres, err := OptimizeSequential(p, rcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameFronts(t, golden.Front, rres.Front)
	if rres.Evaluations != golden.Evaluations || rres.Accepted != golden.Accepted || rres.Resets != golden.Resets {
		t.Fatalf("counters diverged: resumed {%d %d %d}, golden {%d %d %d}",
			rres.Evaluations, rres.Accepted, rres.Resets,
			golden.Evaluations, golden.Accepted, golden.Resets)
	}
}

// TestCheckpointFinalShortCircuit: resuming a completed study does not
// re-run anything — it reassembles the same result from the Final
// checkpoint.
func TestCheckpointFinalShortCircuit(t *testing.T) {
	p := benchproblems.ZDT1(6)
	cfg := TestConfig()
	cfg.Seed = 7

	path := filepath.Join(t.TempDir(), "mls.ckpt")
	ccfg := cfg
	ccfg.Checkpoint = &study.Controller{Path: path} // Every=0: Final save only
	golden, err := OptimizeSequential(p, ccfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := study.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.Final {
		t.Fatal("completed run did not mark its checkpoint Final")
	}
	rcfg := cfg
	rcfg.Resume = cp
	rres, err := OptimizeSequential(p, rcfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameFronts(t, golden.Front, rres.Front)
	if rres.Evaluations != golden.Evaluations {
		t.Fatalf("final resume re-spent budget: %d vs %d", rres.Evaluations, golden.Evaluations)
	}
}

// TestOptimizeDelegatesWhenCheckpointed: the parallel entry point routes
// checkpointed runs through the sequential engine, so its result matches
// the sequential golden bit for bit.
func TestOptimizeDelegatesWhenCheckpointed(t *testing.T) {
	p := benchproblems.ZDT1(6)
	cfg := TestConfig()
	cfg.Seed = 13

	golden, err := OptimizeSequential(p, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ccfg := cfg
	ccfg.Checkpoint = &study.Controller{Path: filepath.Join(t.TempDir(), "mls.ckpt")}
	got, err := Optimize(p, ccfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameFronts(t, golden.Front, got.Front)
}

// TestResumeRefusesMismatchedStudy: a checkpoint from one study must not
// seed a different one.
func TestResumeRefusesMismatchedStudy(t *testing.T) {
	p := benchproblems.ZDT1(6)
	cfg := TestConfig()
	cfg.Seed = 5
	path := filepath.Join(t.TempDir(), "mls.ckpt")
	ccfg := cfg
	ccfg.Checkpoint = interruptAfterFirstDueSave(path, 40)
	if _, err := OptimizeSequential(p, ccfg, nil); err != nil {
		t.Fatal(err)
	}
	cp, err := study.Load(path)
	if err != nil {
		t.Fatal(err)
	}

	other := cfg
	other.Seed = 6 // different study
	other.Resume = cp
	if _, err := OptimizeSequential(p, other, nil); err == nil {
		t.Fatal("resume accepted a checkpoint with a foreign fingerprint")
	}
	wrongProblem := cfg
	wrongProblem.Resume = cp
	if _, err := OptimizeSequential(benchproblems.ZDT2(6), wrongProblem, nil); err == nil {
		t.Fatal("resume accepted a checkpoint from a different problem")
	}
}

// TestStopWithoutCheckpointInterrupts: a closed Stop channel alone (no
// controller) exits cleanly at a boundary with Interrupted set, in both
// engines.
func TestStopWithoutCheckpointInterrupts(t *testing.T) {
	p := benchproblems.ZDT1(6)
	cfg := TestConfig()
	stop := make(chan struct{})
	close(stop)
	cfg.Stop = stop
	res, err := OptimizeSequential(p, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Interrupted {
		t.Fatal("sequential: closed stop channel not reported as Interrupted")
	}
	pres, err := Optimize(p, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !pres.Interrupted {
		t.Fatal("parallel: closed stop channel not reported as Interrupted")
	}
}
