// Package core implements AEDB-MLS, the paper's contribution: a massively
// parallel multi-start multi-objective local search (Sect. IV).
//
// The algorithm maintains several distributed populations; every solution
// of every population is improved simultaneously by its own local-search
// worker (Fig. 3). A worker perturbs its current solution with a BLX-α
// move (Eq. 2) along one of three sensitivity-derived search criteria,
// using a random peer from its population as the reference that scales
// the perturbation; feasible moves are always accepted and offered to a
// shared elite archive (Adaptive Grid Archiving). Every resetPeriod
// iterations a population synchronises, discards itself and restarts from
// random archive members — the collaboration mechanism between
// populations.
//
// The parallel model mirrors the paper's hybrid design: workers within a
// population share memory (the population slots, under a mutex), while
// populations collaborate with the external archive only through message
// passing (a channel-served archive goroutine).
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aedbmls/internal/archive"
	"aedbmls/internal/moo"
	"aedbmls/internal/operators"
	"aedbmls/internal/rng"
	"aedbmls/internal/study"
)

// Criterion is one search criterion: the subset of decision variables a
// perturbation touches. The AEDB criteria come from the sensitivity
// analysis (Sect. IV-B).
type Criterion struct {
	Name   string
	Params []int
}

// DefaultAEDBCriteria returns the paper's three search criteria, expressed
// over the canonical AEDB parameter order (aedb.Idx* constants):
//
//	(i)   energy / forwardings — border threshold (2) and neighbors
//	      threshold (4);
//	(ii)  coverage             — neighbors threshold (4);
//	(iii) broadcast-time       — min delay (0) and max delay (1).
func DefaultAEDBCriteria() []Criterion {
	return []Criterion{
		{Name: "energy+forwardings", Params: []int{2, 4}},
		{Name: "coverage", Params: []int{4}},
		{Name: "broadcast-time", Params: []int{0, 1}},
	}
}

// PerDimensionCriteria returns one single-variable criterion per decision
// dimension — the generic fallback when AEDB-MLS is applied to arbitrary
// problems.
func PerDimensionCriteria(dim int) []Criterion {
	out := make([]Criterion, dim)
	for i := range out {
		out[i] = Criterion{Name: fmt.Sprintf("x%d", i), Params: []int{i}}
	}
	return out
}

// Config parameterises AEDB-MLS. The zero value is unusable; start from
// DefaultConfig (paper values) or TestConfig (reduced budgets).
type Config struct {
	// Populations is the number of distributed populations (paper: 8).
	Populations int
	// Workers is the number of local-search threads per population
	// (paper: 12, the cores of one computing node).
	Workers int
	// EvalsPerWorker is the per-thread evaluation budget (paper: 250;
	// 8 x 12 x 250 = 24 000 evaluations per execution).
	EvalsPerWorker int
	// ResetPeriod is the number of iterations between population
	// re-initialisations from the archive (paper: 50 after tuning).
	ResetPeriod int
	// Alpha is the BLX-α perturbation magnitude (paper: 0.2 after tuning).
	Alpha float64
	// ArchiveCapacity bounds the elite archive (100, as the MOEAs' fronts).
	ArchiveCapacity int
	// GridDivisions is the AGA grid resolution per objective.
	GridDivisions int
	// Criteria are the search criteria; nil selects PerDimensionCriteria,
	// and AEDB runs should pass DefaultAEDBCriteria().
	Criteria []Criterion
	// NeighborhoodSize is the number of candidate perturbations each
	// local-search iteration generates and evaluates together — routed
	// through moo.BatchProblem (one batched committee evaluation) when the
	// problem supports it. All candidates of an iteration perturb the same
	// current solution; every feasible one is offered to the archive and
	// the last feasible one becomes the worker's new current solution.
	// 0 or 1 reproduces the paper's single-candidate step exactly (and,
	// since the fast evaluation engine became eval's serial default,
	// single-candidate steps pay the same per-evaluation cost as batched
	// ones — batching now buys wave-level amortisation, not a different
	// engine).
	NeighborhoodSize int
	// Seed drives all randomness.
	Seed uint64
	// Checkpoint, when non-nil with a Path, enables crash-safe periodic
	// checkpointing. Checkpointing (and Resume) force the deterministic
	// sequential engine: Optimize delegates to OptimizeSequential, because
	// the threaded schedule is not replayable. The archive must be one of
	// the stock implementations (AGA, crowding, unbounded).
	Checkpoint *study.Controller
	// Resume, when non-nil, restores a previous run's state instead of
	// initialising: the checkpoint's fingerprint must match this config
	// and problem, and any caller-supplied archive is ignored in favour of
	// the checkpointed one. Resuming an interrupted run and letting it
	// finish produces the same final front, bit for bit, as the
	// uninterrupted run.
	Resume *study.Checkpoint
	// Stop, when non-nil, requests cooperative interruption: close it and
	// the optimizer exits at the next iteration boundary after writing a
	// consistent checkpoint (when Checkpoint is enabled), marking the
	// result Interrupted.
	Stop <-chan struct{}
}

// DefaultConfig returns the paper-scale configuration.
func DefaultConfig() Config {
	return Config{
		Populations:     8,
		Workers:         12,
		EvalsPerWorker:  250,
		ResetPeriod:     50,
		Alpha:           0.2,
		ArchiveCapacity: 100,
		GridDivisions:   8,
		Seed:            1,
	}
}

// TestConfig returns a reduced configuration for tests and benchmarks.
func TestConfig() Config {
	cfg := DefaultConfig()
	cfg.Populations = 2
	cfg.Workers = 3
	cfg.EvalsPerWorker = 20
	cfg.ResetPeriod = 8
	return cfg
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Populations <= 0:
		return fmt.Errorf("core: Populations must be positive")
	case c.Workers <= 0:
		return fmt.Errorf("core: Workers must be positive")
	case c.EvalsPerWorker <= 0:
		return fmt.Errorf("core: EvalsPerWorker must be positive")
	case c.ResetPeriod <= 0:
		return fmt.Errorf("core: ResetPeriod must be positive")
	case c.Alpha <= 0 || c.Alpha >= 1:
		return fmt.Errorf("core: Alpha must be in (0,1), got %g", c.Alpha)
	case c.ArchiveCapacity <= 0:
		return fmt.Errorf("core: ArchiveCapacity must be positive")
	case c.NeighborhoodSize < 0:
		return fmt.Errorf("core: negative NeighborhoodSize")
	}
	return nil
}

// neighborhood returns the effective per-iteration candidate count.
func (c Config) neighborhood() int {
	if c.NeighborhoodSize < 1 {
		return 1
	}
	return c.NeighborhoodSize
}

// Result is the outcome of one AEDB-MLS execution.
type Result struct {
	// Front is the final elite archive: feasible, mutually non-dominated.
	Front []*moo.Solution
	// Evaluations counts problem evaluations across all workers.
	Evaluations int64
	// Accepted counts feasible perturbations that replaced a current
	// solution.
	Accepted int64
	// Resets counts population re-initialisations.
	Resets int64
	// Duration is the wall-clock optimisation time.
	Duration time.Duration
	// Interrupted is true when the run exited early because Config.Stop
	// was closed (the front then reflects the last completed boundary).
	Interrupted bool
}

// Optimize runs AEDB-MLS on problem p. The archive may be overridden (for
// the archive-policy ablation) via the optional arch; pass nil for the
// paper's AGA.
func Optimize(p moo.Problem, cfg Config, arch archive.Interface) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Checkpoint.Enabled() || cfg.Resume != nil {
		// Checkpoint state must be replayable; the threaded schedule is
		// not. The sequential engine runs the identical algorithm.
		return OptimizeSequential(p, cfg, arch)
	}
	criteria := cfg.Criteria
	if len(criteria) == 0 {
		criteria = PerDimensionCriteria(p.Dim())
	}
	for _, c := range criteria {
		for _, idx := range c.Params {
			if idx < 0 || idx >= p.Dim() {
				return nil, fmt.Errorf("core: criterion %q touches variable %d outside dim %d", c.Name, idx, p.Dim())
			}
		}
	}
	if arch == nil {
		arch = archive.NewAGA(cfg.ArchiveCapacity, cfg.GridDivisions)
	}
	master := rng.New(cfg.Seed)
	server := archive.NewServer(arch, master.Split())

	lo, hi := p.Bounds()
	res := &Result{}
	var evals, accepted, resets atomic.Int64

	start := time.Now()
	var wg sync.WaitGroup
	pops := make([]*population, 0, cfg.Populations)
	for pi := 0; pi < cfg.Populations; pi++ {
		pop := newPopulation(cfg.Workers)
		pops = append(pops, pop)
		bar := newBarrier(cfg.Workers)
		for wi := 0; wi < cfg.Workers; wi++ {
			wg.Add(1)
			w := &worker{
				problem:  p,
				cfg:      cfg,
				criteria: criteria,
				lo:       lo, hi: hi,
				pop: pop, slot: wi,
				barrier: bar,
				archive: server,
				rng:     master.Split(),
				stop:    cfg.Stop,
				evals:   &evals, accepted: &accepted, resets: &resets,
			}
			go func() {
				defer wg.Done()
				w.run()
			}()
		}
	}
	wg.Wait()
	res.Front = server.Snapshot()
	if len(res.Front) == 0 {
		// No worker ever archived a feasible solution (possible only on
		// very tight budgets or infeasible-dominated problems): fall back
		// to the non-dominated subset of the final populations.
		var last []*moo.Solution
		for _, pop := range pops {
			pop.mu.RLock()
			for _, s := range pop.slots {
				if s != nil {
					last = append(last, s)
				}
			}
			pop.mu.RUnlock()
		}
		res.Front = moo.ParetoFilter(last)
	}
	server.Close()
	res.Evaluations = evals.Load()
	res.Accepted = accepted.Load()
	res.Resets = resets.Load()
	res.Interrupted = study.Stopped(cfg.Stop)
	res.Duration = time.Since(start)
	archive.SortByObjective(res.Front, 0)
	return res, nil
}

// worker is one local-search procedure (Fig. 3).
type worker struct {
	problem  moo.Problem
	cfg      Config
	criteria []Criterion
	lo, hi   []float64
	pop      *population
	slot     int
	barrier  *barrier
	archive  *archive.Server
	rng      *rng.Rand
	stop     <-chan struct{}

	evals, accepted, resets *atomic.Int64
	spent                   int
}

func (w *worker) evaluate(x []float64) *moo.Solution {
	w.spent++
	w.evals.Add(1)
	return moo.NewSolution(w.problem, x)
}

// evaluateAll spends budget on a whole neighborhood at once, batching the
// underlying committee evaluations when the problem supports it.
func (w *worker) evaluateAll(xs [][]float64) []*moo.Solution {
	w.spent += len(xs)
	w.evals.Add(int64(len(xs)))
	return moo.EvaluateAll(w.problem, xs)
}

// run executes the Fig. 3 pseudocode.
func (w *worker) run() {
	defer w.barrier.Leave()

	// Lines 1-3: random feasible initialisation, evaluated and archived.
	s := w.initialise()
	if s == nil {
		return // budget exhausted before finding a feasible start
	}
	w.archive.AddAsync(s)
	w.pop.set(w.slot, s)
	w.barrier.Arrive() // line 4: wait for the local population

	iter := 0
	for w.spent < w.cfg.EvalsPerWorker { // line 5: stopping condition
		if study.Stopped(w.stop) {
			return // deferred Leave keeps peers' barriers consistent
		}
		iter++
		// Line 6: random reference solution from the local population.
		t := w.pop.sample(w.rng)
		if t == nil {
			t = s
		}
		// Lines 7-8: perturb along random search criteria and evaluate.
		// With NeighborhoodSize > 1 the iteration generates several
		// candidate moves from the same base solution and evaluates them
		// as one batch (one committee wave on batch-capable problems).
		k := w.cfg.neighborhood()
		if rem := w.cfg.EvalsPerWorker - w.spent; k > rem {
			k = rem
		}
		xs := make([][]float64, k)
		for j := range xs {
			crit := w.criteria[w.rng.Intn(len(w.criteria))]
			xs[j] = operators.PerturbBLX(s.X, t.X, crit.Params, w.cfg.Alpha, w.lo, w.hi, w.rng)
		}
		// Lines 9-12: accept and archive feasible moves. Inadmissible
		// results — stop-abandoned cells, ladder-screened triage estimates
		// — are discarded here, before any incumbent, population slot or
		// archive can see them.
		for _, cand := range w.evaluateAll(xs) {
			if cand.Admissible() && cand.Feasible() {
				w.archive.AddAsync(cand)
				s = cand
				w.pop.set(w.slot, s)
				w.accepted.Add(1)
			}
		}
		// Lines 13-16: periodic re-initialisation from the archive.
		if iter%w.cfg.ResetPeriod == 0 && w.spent < w.cfg.EvalsPerWorker {
			if ns := w.archive.Sample(); ns != nil {
				s = ns.Clone()
				w.pop.set(w.slot, s)
			}
			w.resets.Add(1)
			w.barrier.Arrive()
		}
	}
}

// initialise draws uniform random vectors until one is feasible, spending
// budget on each try (the paper initialises populations with feasible
// random solutions).
func (w *worker) initialise() *moo.Solution {
	for w.spent < w.cfg.EvalsPerWorker {
		if study.Stopped(w.stop) {
			return nil
		}
		s := w.evaluate(operators.RandomVector(w.lo, w.hi, w.rng))
		if s.Feasible() {
			return s
		}
	}
	return nil
}

// Improve is the embeddable variant of the local search: it applies up to
// iters perturbation steps to s, drawing references from pop and keeping
// feasible moves, and returns the improved solution together with the
// number of evaluations spent. It is the hook the paper's future-work
// memetic MOEAs use (see internal/cellde.Memetic).
func Improve(p moo.Problem, s *moo.Solution, pop []*moo.Solution, iters int, alpha float64,
	criteria []Criterion, r *rng.Rand) (*moo.Solution, int) {
	return ImproveBatch(p, s, pop, iters, 1, alpha, criteria, r)
}

// ImproveBatch is Improve with a batched neighborhood: each round draws
// up to batch candidate perturbations (each with its own reference and
// criterion, exactly the draws Improve would make), evaluates them
// together — one committee wave on moo.BatchProblem implementations —
// and applies Improve's acceptance rule to the results in order. The
// difference from Improve is that a round's candidates all perturb the
// round's starting solution instead of chaining; batch <= 1 makes the
// rounds single-candidate and is exactly Improve.
func ImproveBatch(p moo.Problem, s *moo.Solution, pop []*moo.Solution, iters, batch int, alpha float64,
	criteria []Criterion, r *rng.Rand) (*moo.Solution, int) {
	if len(criteria) == 0 {
		criteria = PerDimensionCriteria(p.Dim())
	}
	if batch < 1 {
		batch = 1
	}
	lo, hi := p.Bounds()
	spent := 0
	for spent < iters {
		k := batch
		if rem := iters - spent; k > rem {
			k = rem
		}
		xs := make([][]float64, k)
		for j := range xs {
			t := s
			if len(pop) > 0 {
				t = pop[r.Intn(len(pop))]
			}
			crit := criteria[r.Intn(len(criteria))]
			xs[j] = operators.PerturbBLX(s.X, t.X, crit.Params, alpha, lo, hi, r)
		}
		spent += k
		// Inadmissible results (stop-abandoned, ladder-screened) never
		// replace the incumbent.
		for _, cand := range moo.EvaluateAll(p, xs) {
			if cand.Admissible() && cand.Feasible() && !moo.Dominates(s, cand) {
				s = cand
			}
		}
	}
	return s, spent
}

// population is the shared-memory half of the hybrid model: one slot per
// worker, readable by every peer in the same population.
type population struct {
	mu    sync.RWMutex
	slots []*moo.Solution
}

func newPopulation(n int) *population { return &population{slots: make([]*moo.Solution, n)} }

func (p *population) set(i int, s *moo.Solution) {
	p.mu.Lock()
	p.slots[i] = s
	p.mu.Unlock()
}

// sample returns a uniformly random non-nil slot (nil if all empty).
func (p *population) sample(r *rng.Rand) *moo.Solution {
	p.mu.RLock()
	defer p.mu.RUnlock()
	// Count live slots first so the draw is uniform over them.
	live := 0
	for _, s := range p.slots {
		if s != nil {
			live++
		}
	}
	if live == 0 {
		return nil
	}
	k := r.Intn(live)
	for _, s := range p.slots {
		if s == nil {
			continue
		}
		if k == 0 {
			return s
		}
		k--
	}
	return nil
}

// barrier is a cyclic barrier whose membership can shrink: a worker that
// exhausts its budget Leaves, and the remaining workers' synchronisations
// keep working. This implements the synchronise_threads() of Fig. 3
// without deadlocking on unequal budgets.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	arrived int
	gen     uint64
}

func newBarrier(parties int) *barrier {
	b := &barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Arrive blocks until every current member of the barrier has arrived.
func (b *barrier) Arrive() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.arrived++
	if b.arrived >= b.parties {
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	gen := b.gen
	for gen == b.gen {
		b.cond.Wait()
	}
}

// Leave permanently removes one member, releasing a waiting generation if
// this member was the last one outstanding.
func (b *barrier) Leave() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.parties--
	if b.parties > 0 && b.arrived >= b.parties {
		b.arrived = 0
		b.gen++
		b.cond.Broadcast()
	}
}
