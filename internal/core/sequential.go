package core

import (
	"time"

	"aedbmls/internal/archive"
	"aedbmls/internal/moo"
	"aedbmls/internal/operators"
	"aedbmls/internal/rng"
)

// OptimizeSequential executes the AEDB-MLS algorithm with the exact same
// structure as Optimize — populations, per-worker budgets, search
// criteria, archive interaction, reset protocol — but steps the virtual
// workers round-robin on the calling goroutine.
//
// The parallel execution is scheduling-dependent (workers race on the
// shared population and archive, as in the paper's implementation);
// this variant is bit-for-bit reproducible for a given seed regardless of
// GOMAXPROCS, which makes it the right tool for regression baselines and
// debugging. It is also the honest 1-core baseline for speedup
// measurements.
func OptimizeSequential(p moo.Problem, cfg Config, arch archive.Interface) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	criteria := cfg.Criteria
	if len(criteria) == 0 {
		criteria = PerDimensionCriteria(p.Dim())
	}
	if arch == nil {
		arch = archive.NewAGA(cfg.ArchiveCapacity, cfg.GridDivisions)
	}
	master := rng.New(cfg.Seed)
	archRng := master.Split() // mirrors the archive server's stream
	lo, hi := p.Bounds()

	res := &Result{}
	start := time.Now()

	evaluate := func(w *vworker, x []float64) *moo.Solution {
		w.spent++
		res.Evaluations++
		return moo.NewSolution(p, x)
	}
	evaluateAll := func(w *vworker, xs [][]float64) []*moo.Solution {
		w.spent += len(xs)
		res.Evaluations += int64(len(xs))
		return moo.EvaluateAll(p, xs)
	}
	sampleArchive := func() *moo.Solution {
		if n := arch.Len(); n > 0 {
			return arch.Contents()[archRng.Intn(n)]
		}
		return nil
	}

	pops := make([][]*vworker, cfg.Populations)
	for pi := range pops {
		pops[pi] = make([]*vworker, cfg.Workers)
		for wi := range pops[pi] {
			pops[pi][wi] = &vworker{rng: master.Split()}
		}
	}

	// Initialisation phase (lines 1-4 of Fig. 3): every worker draws
	// feasible random starts; the implicit barrier is the phase boundary.
	for _, pop := range pops {
		for _, w := range pop {
			for w.spent < cfg.EvalsPerWorker {
				s := evaluate(w, operators.RandomVector(lo, hi, w.rng))
				if s.Feasible() {
					w.s = s
					arch.Add(s)
					break
				}
			}
		}
	}

	// Main loop: one round steps every live worker once, which makes the
	// reset barriers line up exactly as in the threaded version.
	for {
		live := 0
		for _, pop := range pops {
			// Snapshot of the population slots for reference sampling.
			for _, w := range pop {
				if w.s == nil || w.spent >= cfg.EvalsPerWorker {
					continue
				}
				live++
				w.iter++
				t := sampleVWorkers(pop, w.rng)
				if t == nil {
					t = w.s
				}
				// Mirrors the worker's batched neighborhood step exactly
				// (same draws, same acceptance order).
				k := cfg.neighborhood()
				if rem := cfg.EvalsPerWorker - w.spent; k > rem {
					k = rem
				}
				xs := make([][]float64, k)
				for j := range xs {
					crit := criteria[w.rng.Intn(len(criteria))]
					xs[j] = operators.PerturbBLX(w.s.X, t.X, crit.Params, cfg.Alpha, lo, hi, w.rng)
				}
				for _, cand := range evaluateAll(w, xs) {
					if cand.Feasible() {
						arch.Add(cand)
						w.s = cand
						res.Accepted++
					}
				}
				if w.iter%cfg.ResetPeriod == 0 && w.spent < cfg.EvalsPerWorker {
					if ns := sampleArchive(); ns != nil {
						w.s = ns.Clone()
					}
					res.Resets++
				}
			}
		}
		if live == 0 {
			break
		}
	}

	res.Front = arch.Contents()
	if len(res.Front) == 0 {
		var last []*moo.Solution
		for _, pop := range pops {
			for _, w := range pop {
				if w.s != nil {
					last = append(last, w.s)
				}
			}
		}
		res.Front = moo.ParetoFilter(last)
	}
	res.Duration = time.Since(start)
	archive.SortByObjective(res.Front, 0)
	return res, nil
}

// vworker is the state of one virtual (sequentially stepped) worker.
type vworker struct {
	rng   *rng.Rand
	s     *moo.Solution
	spent int
	iter  int
}

// sampleVWorkers returns a uniformly random live solution among the
// virtual workers of one population.
func sampleVWorkers(pop []*vworker, r *rng.Rand) *moo.Solution {
	n := 0
	for _, w := range pop {
		if w.s != nil {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	k := r.Intn(n)
	for _, w := range pop {
		if w.s != nil {
			if k == 0 {
				return w.s
			}
			k--
		}
	}
	return nil
}
