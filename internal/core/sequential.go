package core

import (
	"fmt"
	"time"

	"aedbmls/internal/archive"
	"aedbmls/internal/moo"
	"aedbmls/internal/operators"
	"aedbmls/internal/rng"
	"aedbmls/internal/study"
)

// AlgorithmName identifies AEDB-MLS checkpoints.
const AlgorithmName = "aedb-mls"

// OptimizeSequential executes the AEDB-MLS algorithm with the exact same
// structure as Optimize — populations, per-worker budgets, search
// criteria, archive interaction, reset protocol — but steps the virtual
// workers round-robin on the calling goroutine.
//
// The parallel execution is scheduling-dependent (workers race on the
// shared population and archive, as in the paper's implementation);
// this variant is bit-for-bit reproducible for a given seed regardless of
// GOMAXPROCS, which makes it the right tool for regression baselines and
// debugging. It is also the honest 1-core baseline for speedup
// measurements, and — because every round boundary is a complete,
// replayable state — the engine behind checkpoint/resume (Config.
// Checkpoint / Config.Resume) and cooperative interruption (Config.Stop).
func OptimizeSequential(p moo.Problem, cfg Config, arch archive.Interface) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	criteria := cfg.Criteria
	if len(criteria) == 0 {
		criteria = PerDimensionCriteria(p.Dim())
	}

	res := &Result{}
	start := time.Now()
	loop := &study.Loop{Ctrl: cfg.Checkpoint, Stop: cfg.Stop}

	var (
		archRng *rng.Rand
		pops    [][]*vworker
		round   int64
		done    bool // resumed from a Final checkpoint: nothing left to run
	)
	if cp := cfg.Resume; cp != nil {
		if err := cp.Check(AlgorithmName, cfg.fingerprint(p)); err != nil {
			return nil, err
		}
		restored, err := study.DecodeArchive(cp.Archive, p.Dim(), p.NumObjectives())
		if err != nil {
			return nil, err
		}
		arch = restored
		archRng = cp.RNG.Rand()
		res.Evaluations = cp.Evaluations
		res.Accepted = cp.Counter("accepted")
		res.Resets = cp.Counter("resets")
		round = cp.Iteration
		done = cp.Final
		if want := cfg.Populations * cfg.Workers; len(cp.Workers) != want {
			return nil, fmt.Errorf("core: checkpoint holds %d workers, config wants %d", len(cp.Workers), want)
		}
		pops = make([][]*vworker, cfg.Populations)
		for pi := range pops {
			pops[pi] = make([]*vworker, cfg.Workers)
			for wi := range pops[pi] {
				ws := cp.Workers[pi*cfg.Workers+wi]
				w := &vworker{rng: ws.RNG.Rand(), spent: ws.Spent, iter: ws.Iter}
				if len(ws.Current.X) > 0 {
					s, err := ws.Current.Decode(p.Dim(), p.NumObjectives())
					if err != nil {
						return nil, fmt.Errorf("core: worker %d/%d: %v", pi, wi, err)
					}
					w.s = s
				}
				pops[pi][wi] = w
			}
		}
	} else {
		if arch == nil {
			arch = archive.NewAGA(cfg.ArchiveCapacity, cfg.GridDivisions)
		}
		master := rng.New(cfg.Seed)
		archRng = master.Split() // mirrors the archive server's stream
		pops = make([][]*vworker, cfg.Populations)
		for pi := range pops {
			pops[pi] = make([]*vworker, cfg.Workers)
			for wi := range pops[pi] {
				pops[pi][wi] = &vworker{rng: master.Split()}
			}
		}
	}
	if cfg.Checkpoint.Enabled() {
		// Fail before spending budget if the archive cannot be captured
		// (the error depends only on its concrete type).
		if _, err := study.EncodeArchive(arch); err != nil {
			return nil, fmt.Errorf("core: checkpointing needs a stock archive: %v", err)
		}
	}

	// encode snapshots the boundary state: everything the loop below reads.
	encode := func() *study.Checkpoint {
		ast, _ := study.EncodeArchive(arch)
		workers := make([]study.WorkerState, 0, cfg.Populations*cfg.Workers)
		for _, pop := range pops {
			for _, w := range pop {
				ws := study.WorkerState{RNG: study.StateOf(w.rng), Spent: w.spent, Iter: w.iter}
				if w.s != nil {
					ws.Current = study.EncodeSolution(w.s)
				}
				workers = append(workers, ws)
			}
		}
		return &study.Checkpoint{
			Algorithm:   AlgorithmName,
			Fingerprint: cfg.fingerprint(p),
			Evaluations: res.Evaluations,
			Iteration:   round,
			Counters:    map[string]int64{"accepted": res.Accepted, "resets": res.Resets},
			RNG:         study.StateOf(archRng),
			Archive:     ast,
			Workers:     workers,
		}
	}

	lo, hi := p.Bounds()
	evaluate := func(w *vworker, x []float64) *moo.Solution {
		w.spent++
		res.Evaluations++
		return moo.NewSolution(p, x)
	}
	evaluateAll := func(w *vworker, xs [][]float64) []*moo.Solution {
		w.spent += len(xs)
		res.Evaluations += int64(len(xs))
		return moo.EvaluateAll(p, xs)
	}
	sampleArchive := func() *moo.Solution {
		if n := arch.Len(); n > 0 {
			return arch.Contents()[archRng.Intn(n)]
		}
		return nil
	}

	if cfg.Resume == nil {
		// Initialisation phase (lines 1-4 of Fig. 3): every worker draws
		// feasible random starts; the implicit barrier is the phase
		// boundary. A resume never re-runs this — the restored workers
		// already carry their post-initialisation (or later) state.
		for _, pop := range pops {
			for _, w := range pop {
				for w.spent < cfg.EvalsPerWorker && !study.Stopped(cfg.Stop) {
					s := evaluate(w, operators.RandomVector(lo, hi, w.rng))
					if s.Feasible() {
						w.s = s
						arch.Add(s)
						break
					}
				}
			}
		}
	}

	// Main loop: one round steps every live worker once, which makes the
	// reset barriers line up exactly as in the threaded version. Each
	// round top is a checkpoint boundary (see study.Loop for the
	// stop-consistency protocol).
	for !done {
		if stopped, err := loop.Boundary(encode); err != nil {
			return nil, err
		} else if stopped {
			res.Interrupted = true
			break
		}
		round++
		live := 0
		for _, pop := range pops {
			// Snapshot of the population slots for reference sampling.
			for _, w := range pop {
				if w.s == nil || w.spent >= cfg.EvalsPerWorker {
					continue
				}
				live++
				w.iter++
				t := sampleVWorkers(pop, w.rng)
				if t == nil {
					t = w.s
				}
				// Mirrors the worker's batched neighborhood step exactly
				// (same draws, same acceptance order).
				k := cfg.neighborhood()
				if rem := cfg.EvalsPerWorker - w.spent; k > rem {
					k = rem
				}
				xs := make([][]float64, k)
				for j := range xs {
					crit := criteria[w.rng.Intn(len(criteria))]
					xs[j] = operators.PerturbBLX(w.s.X, t.X, crit.Params, cfg.Alpha, lo, hi, w.rng)
				}
				// Same acceptance as worker.run: inadmissible results are
				// discarded before the incumbent or archive can see them.
				for _, cand := range evaluateAll(w, xs) {
					if cand.Admissible() && cand.Feasible() {
						arch.Add(cand)
						w.s = cand
						res.Accepted++
					}
				}
				if w.iter%cfg.ResetPeriod == 0 && w.spent < cfg.EvalsPerWorker {
					if ns := sampleArchive(); ns != nil {
						w.s = ns.Clone()
					}
					res.Resets++
				}
			}
		}
		if live == 0 {
			break
		}
	}
	if !done && !res.Interrupted {
		if err := loop.Finish(encode); err != nil {
			return nil, err
		}
	}

	res.Front = arch.Contents()
	if len(res.Front) == 0 {
		var last []*moo.Solution
		for _, pop := range pops {
			for _, w := range pop {
				if w.s != nil {
					last = append(last, w.s)
				}
			}
		}
		res.Front = moo.ParetoFilter(last)
	}
	res.Duration = time.Since(start)
	archive.SortByObjective(res.Front, 0)
	return res, nil
}

// vworker is the state of one virtual (sequentially stepped) worker.
type vworker struct {
	rng   *rng.Rand
	s     *moo.Solution
	spent int
	iter  int
}

// sampleVWorkers returns a uniformly random live solution among the
// virtual workers of one population.
func sampleVWorkers(pop []*vworker, r *rng.Rand) *moo.Solution {
	n := 0
	for _, w := range pop {
		if w.s != nil {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	k := r.Intn(n)
	for _, w := range pop {
		if w.s != nil {
			if k == 0 {
				return w.s
			}
			k--
		}
	}
	return nil
}
