package indicators

import (
	"math"
	"testing"

	"aedbmls/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestHypervolume2DKnown(t *testing.T) {
	// Single point (0.5, 0.5) with ref (1,1): volume 0.25.
	hv := Hypervolume([]Point{{0.5, 0.5}}, Point{1, 1})
	if !almostEqual(hv, 0.25, 1e-12) {
		t.Fatalf("hv = %v, want 0.25", hv)
	}
	// Two staircase points.
	hv = Hypervolume([]Point{{0.25, 0.75}, {0.75, 0.25}}, Point{1, 1})
	want := 0.75*0.25 + 0.25*0.75 - 0.25*0.25
	// Union area: (1-0.25)*(1-0.75) + (1-0.75)*(1-0.25) - overlap (1-0.75)*(1-0.75)
	if !almostEqual(hv, want, 1e-12) {
		t.Fatalf("hv = %v, want %v", hv, want)
	}
}

func TestHypervolume2DDominatedPointAddsNothing(t *testing.T) {
	base := Hypervolume([]Point{{0.2, 0.2}}, Point{1, 1})
	withDominated := Hypervolume([]Point{{0.2, 0.2}, {0.5, 0.5}}, Point{1, 1})
	if !almostEqual(base, withDominated, 1e-12) {
		t.Fatalf("dominated point changed hv: %v vs %v", base, withDominated)
	}
}

func TestHypervolume3DKnown(t *testing.T) {
	// Single point at the origin, ref (1,1,1): the unit cube.
	hv := Hypervolume([]Point{{0, 0, 0}}, Point{1, 1, 1})
	if !almostEqual(hv, 1, 1e-12) {
		t.Fatalf("hv = %v, want 1", hv)
	}
	// Two disjoint-ish boxes.
	hv = Hypervolume([]Point{{0, 0.5, 0.5}, {0.5, 0, 0}}, Point{1, 1, 1})
	// Box1: 1*0.5*0.5 = 0.25; box2: 0.5*1*1 = 0.5; overlap: 0.5*0.5*0.5 = 0.125.
	if !almostEqual(hv, 0.625, 1e-12) {
		t.Fatalf("hv = %v, want 0.625", hv)
	}
}

func TestHypervolumeIgnoresPointsOutsideRef(t *testing.T) {
	hv := Hypervolume([]Point{{1.5, 0.1}, {2, 2}}, Point{1, 1})
	if hv != 0 {
		t.Fatalf("points at/beyond ref contributed %v", hv)
	}
}

func TestHypervolumeMonotone(t *testing.T) {
	r := rng.New(1)
	ref := Point{1, 1, 1}
	var pts []Point
	prev := 0.0
	for i := 0; i < 50; i++ {
		pts = append(pts, Point{r.Range(0, 1), r.Range(0, 1), r.Range(0, 1)})
		hv := Hypervolume(pts, ref)
		if hv+1e-12 < prev {
			t.Fatalf("hypervolume decreased when adding a point: %v -> %v", prev, hv)
		}
		prev = hv
	}
	if prev <= 0 || prev > 1 {
		t.Fatalf("final hv = %v, want in (0, 1]", prev)
	}
}

func TestHypervolume2DMatches3DWithSlack(t *testing.T) {
	// Embedding a 2-D front into 3-D with a constant third coordinate
	// scales the volume by the remaining depth.
	front2 := []Point{{0.2, 0.7}, {0.5, 0.4}, {0.8, 0.1}}
	var front3 []Point
	for _, p := range front2 {
		front3 = append(front3, Point{p[0], p[1], 0.5})
	}
	hv2 := Hypervolume(front2, Point{1, 1})
	hv3 := Hypervolume(front3, Point{1, 1, 1})
	if !almostEqual(hv3, hv2*0.5, 1e-12) {
		t.Fatalf("3-D embedding hv = %v, want %v", hv3, hv2*0.5)
	}
}

func TestIGDZeroOnCoveringFront(t *testing.T) {
	ref := []Point{{0, 1}, {0.5, 0.5}, {1, 0}}
	if got := IGD(ref, ref); got != 0 {
		t.Fatalf("IGD(ref, ref) = %v", got)
	}
}

func TestIGDDecreasesWithBetterCoverage(t *testing.T) {
	ref := []Point{{0, 1}, {0.25, 0.75}, {0.5, 0.5}, {0.75, 0.25}, {1, 0}}
	sparse := []Point{{0, 1}}
	denser := []Point{{0, 1}, {0.5, 0.5}, {1, 0}}
	if IGD(denser, ref) >= IGD(sparse, ref) {
		t.Fatal("IGD did not improve with a denser front")
	}
}

func TestGDZeroWhenOnRef(t *testing.T) {
	ref := []Point{{0, 1}, {0.5, 0.5}, {1, 0}}
	front := []Point{{0.5, 0.5}}
	if got := GD(front, ref); got != 0 {
		t.Fatalf("GD of on-reference front = %v", got)
	}
	off := []Point{{0.6, 0.6}}
	if GD(off, ref) <= 0 {
		t.Fatal("GD of off-reference front should be positive")
	}
}

func TestSpreadPerfectDistributionSmall(t *testing.T) {
	// Evenly spaced points covering the reference: near-ideal spread.
	var front []Point
	for i := 0; i <= 10; i++ {
		x := float64(i) / 10
		front = append(front, Point{x, 1 - x})
	}
	even := Spread(front, front)
	// Clustered: same extremes but interior bunched together.
	clustered := []Point{{0, 1}, {0.48, 0.52}, {0.5, 0.5}, {0.52, 0.48}, {1, 0}}
	clu := Spread(clustered, front)
	if even >= clu {
		t.Fatalf("even spread %v not better than clustered %v", even, clu)
	}
}

func TestSpreadSinglePoint(t *testing.T) {
	ref := []Point{{0, 1}, {1, 0}}
	if got := Spread([]Point{{0.5, 0.5}}, ref); got != 1 {
		t.Fatalf("single-point spread = %v, want 1", got)
	}
}

func TestEpsilonAdditive(t *testing.T) {
	ref := []Point{{0, 0}}
	front := []Point{{0.25, 0.1}}
	if got := EpsilonAdditive(front, ref); !almostEqual(got, 0.25, 1e-12) {
		t.Fatalf("epsilon = %v, want 0.25", got)
	}
	// A front covering the reference has epsilon <= 0.
	if got := EpsilonAdditive(ref, ref); got > 0 {
		t.Fatalf("self epsilon = %v, want <= 0", got)
	}
}

func TestNormalizerMapsRefToUnitBox(t *testing.T) {
	ref := []Point{{10, 100}, {20, 300}}
	n := NewNormalizer(ref)
	out := n.Apply(ref)
	if out[0][0] != 0 || out[0][1] != 0 || out[1][0] != 1 || out[1][1] != 1 {
		t.Fatalf("normalised ref = %v", out)
	}
	// Outside points map outside [0,1] without clipping.
	probe := n.Apply([]Point{{5, 500}})
	if probe[0][0] >= 0 || probe[0][1] <= 1 {
		t.Fatalf("outside point clipped: %v", probe)
	}
}

func TestNormalizerDegenerateAxis(t *testing.T) {
	ref := []Point{{1, 5}, {2, 5}}
	n := NewNormalizer(ref)
	out := n.Apply([]Point{{1.5, 5}})
	if out[0][1] != 0 {
		t.Fatalf("degenerate axis mapped to %v, want 0", out[0][1])
	}
}

func TestNormalizerPreservesDominance(t *testing.T) {
	r := rng.New(2)
	ref := []Point{{0, 0, 0}, {10, 5, 2}}
	n := NewNormalizer(ref)
	for trial := 0; trial < 500; trial++ {
		a := Point{r.Range(0, 10), r.Range(0, 5), r.Range(0, 2)}
		b := Point{r.Range(0, 10), r.Range(0, 5), r.Range(0, 2)}
		na := n.Apply([]Point{a})[0]
		nb := n.Apply([]Point{b})[0]
		if dominatesP(a, b) != dominatesP(na, nb) {
			t.Fatal("normalisation changed a dominance relation")
		}
	}
}

func dominatesP(a, b Point) bool {
	better := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			better = true
		}
	}
	return better
}

func TestHypervolumeNormalized(t *testing.T) {
	ref := []Point{{0, 0}, {10, 10}}
	front := []Point{{0, 0}}
	// Normalised front point (0,0) against ref point (1.1, 1.1): 1.21.
	if got := HypervolumeNormalized(front, ref); !almostEqual(got, 1.21, 1e-12) {
		t.Fatalf("normalised hv = %v, want 1.21", got)
	}
}

func TestEmptyInputs(t *testing.T) {
	if !math.IsNaN(IGD(nil, []Point{{1}})) || !math.IsNaN(IGD([]Point{{1}}, nil)) {
		t.Error("IGD with empty input should be NaN")
	}
	if !math.IsNaN(GD(nil, []Point{{1}})) {
		t.Error("GD with empty input should be NaN")
	}
	if !math.IsNaN(Spread(nil, []Point{{1}})) {
		t.Error("Spread with empty input should be NaN")
	}
	if Hypervolume(nil, Point{1, 1}) != 0 {
		t.Error("empty hv should be 0")
	}
}
