// Package indicators implements the Pareto-front quality indicators the
// paper compares the algorithms with (Sect. VI): hypervolume, inverted
// generational distance and spread, plus generational distance and the
// additive epsilon indicator as extras. A normalisation helper reproduces
// the paper's protocol of rescaling every front by the combined reference
// front before computing indicators.
//
// All indicators assume minimised objectives.
package indicators

import (
	"math"
	"sort"
)

// Point is an objective vector.
type Point = []float64

// Normalizer rescales objective vectors into [0,1]^m using the bounds of a
// reference front, as the paper does before computing any indicator
// ("all fronts were normalised ... using an approximation of the true
// Pareto front built from the best solutions found by the three
// algorithms").
type Normalizer struct {
	Lo, Hi []float64
}

// NewNormalizer computes bounds from the reference front.
func NewNormalizer(ref []Point) *Normalizer {
	if len(ref) == 0 {
		return &Normalizer{}
	}
	m := len(ref[0])
	n := &Normalizer{Lo: make([]float64, m), Hi: make([]float64, m)}
	copy(n.Lo, ref[0])
	copy(n.Hi, ref[0])
	for _, p := range ref[1:] {
		for i, v := range p {
			if v < n.Lo[i] {
				n.Lo[i] = v
			}
			if v > n.Hi[i] {
				n.Hi[i] = v
			}
		}
	}
	return n
}

// Apply rescales a front; coordinates outside the reference bounds map
// outside [0,1] (they are not clipped, preserving dominance relations).
func (n *Normalizer) Apply(front []Point) []Point {
	if len(n.Lo) == 0 {
		return clonePoints(front)
	}
	out := make([]Point, len(front))
	for i, p := range front {
		q := make(Point, len(p))
		for k, v := range p {
			span := n.Hi[k] - n.Lo[k]
			if span <= 0 {
				q[k] = 0
			} else {
				q[k] = (v - n.Lo[k]) / span
			}
		}
		out[i] = q
	}
	return out
}

func clonePoints(ps []Point) []Point {
	out := make([]Point, len(ps))
	for i, p := range ps {
		out[i] = append(Point(nil), p...)
	}
	return out
}

func dist(a, b Point) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func distToSet(p Point, set []Point) float64 {
	best := math.Inf(1)
	for _, q := range set {
		if d := dist(p, q); d < best {
			best = d
		}
	}
	return best
}

// GD is the generational distance: the RMS distance from each front point
// to its nearest reference point (Van Veldhuizen). Zero means the front
// lies on the reference.
func GD(front, ref []Point) float64 {
	if len(front) == 0 || len(ref) == 0 {
		return math.NaN()
	}
	var s float64
	for _, p := range front {
		d := distToSet(p, ref)
		s += d * d
	}
	return math.Sqrt(s) / float64(len(front))
}

// IGD is the inverted generational distance (Eq. 3 of the paper): the RMS
// distance from each reference point to the nearest front point, divided
// by the reference size. Small is better; zero means the front covers the
// reference.
func IGD(front, ref []Point) float64 {
	if len(front) == 0 || len(ref) == 0 {
		return math.NaN()
	}
	var s float64
	for _, r := range ref {
		d := distToSet(r, front)
		s += d * d
	}
	return math.Sqrt(s) / float64(len(ref))
}

// Spread is the generalized Delta diversity indicator (Eq. 4 of the
// paper, extended to any number of objectives as in jMetal's
// GeneralizedSpread): df and dl become the distances from the reference
// extremes to the front, and the consecutive-distance term becomes each
// point's nearest-neighbour distance within the front. Zero is a perfect
// distribution; larger is worse.
func Spread(front, ref []Point) float64 {
	if len(front) == 0 || len(ref) == 0 {
		return math.NaN()
	}
	m := len(front[0])
	if len(front) == 1 {
		return 1
	}
	// Distance from each objective-wise reference extreme to the front.
	var extSum float64
	for k := 0; k < m; k++ {
		best := 0
		for i, p := range ref {
			if p[k] < ref[best][k] {
				best = i
			}
		}
		extSum += distToSet(ref[best], front)
	}
	// Nearest-neighbour distances within the front.
	d := make([]float64, len(front))
	var mean float64
	for i, p := range front {
		best := math.Inf(1)
		for j, q := range front {
			if i == j {
				continue
			}
			if dd := dist(p, q); dd < best {
				best = dd
			}
		}
		d[i] = best
		mean += best
	}
	mean /= float64(len(front))
	var dev float64
	for _, v := range d {
		dev += math.Abs(v - mean)
	}
	den := extSum + float64(len(front))*mean
	if den <= 0 {
		return 0
	}
	return (extSum + dev) / den
}

// EpsilonAdditive is the unary additive epsilon indicator: the smallest
// shift by which the front weakly dominates the reference. Zero or
// negative means the front covers the reference.
func EpsilonAdditive(front, ref []Point) float64 {
	if len(front) == 0 || len(ref) == 0 {
		return math.NaN()
	}
	eps := math.Inf(-1)
	for _, r := range ref {
		best := math.Inf(1)
		for _, p := range front {
			worst := math.Inf(-1)
			for k := range p {
				if d := p[k] - r[k]; d > worst {
					worst = d
				}
			}
			if worst < best {
				best = worst
			}
		}
		if best > eps {
			eps = best
		}
	}
	return eps
}

// Hypervolume computes the volume dominated by the front and bounded by
// the reference point ref (Eq. 5; While et al.'s slicing scheme). Points
// not strictly dominating ref contribute nothing. Supports 1-3 objectives
// exactly; higher dimensions use a recursive slicing fallback.
func Hypervolume(front []Point, ref Point) float64 {
	var pts []Point
	for _, p := range front {
		ok := true
		for k := range ref {
			if p[k] >= ref[k] {
				ok = false
				break
			}
		}
		if ok {
			pts = append(pts, p)
		}
	}
	if len(pts) == 0 {
		return 0
	}
	return hv(pts, ref)
}

func hv(pts []Point, ref Point) float64 {
	switch len(ref) {
	case 1:
		best := math.Inf(1)
		for _, p := range pts {
			if p[0] < best {
				best = p[0]
			}
		}
		return ref[0] - best
	case 2:
		return hv2(pts, ref)
	default:
		return hvSlice(pts, ref)
	}
}

// hv2 computes the 2-D hypervolume by a sorted sweep.
func hv2(pts []Point, ref Point) float64 {
	sorted := clonePoints(pts)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i][0] != sorted[j][0] {
			return sorted[i][0] < sorted[j][0]
		}
		return sorted[i][1] < sorted[j][1]
	})
	var vol float64
	y := ref[1]
	for _, p := range sorted {
		if p[1] < y {
			vol += (ref[0] - p[0]) * (y - p[1])
			y = p[1]
		}
	}
	return vol
}

// hvSlice slices along the last objective and recurses: between two
// consecutive slice levels, the dominated area is that of the points at or
// below the lower level, projected one dimension down.
func hvSlice(pts []Point, ref Point) float64 {
	last := len(ref) - 1
	sorted := clonePoints(pts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i][last] < sorted[j][last] })
	var vol float64
	for i := 0; i < len(sorted); i++ {
		depth := ref[last] - sorted[i][last]
		if i+1 < len(sorted) {
			depth = sorted[i+1][last] - sorted[i][last]
		}
		if depth <= 0 {
			continue
		}
		proj := make([]Point, 0, i+1)
		for j := 0; j <= i; j++ {
			proj = append(proj, sorted[j][:last])
		}
		vol += depth * hv(proj, ref[:last])
	}
	return vol
}

// HypervolumeNormalized normalises both fronts by the reference and uses
// the customary (1.1, ..., 1.1) reference point, matching the paper's
// protocol of comparing hypervolumes of normalised fronts.
func HypervolumeNormalized(front, ref []Point) float64 {
	n := NewNormalizer(ref)
	nf := n.Apply(front)
	if len(ref) == 0 {
		return math.NaN()
	}
	m := len(ref[0])
	refPoint := make(Point, m)
	for i := range refPoint {
		refPoint[i] = 1.1
	}
	return Hypervolume(nf, refPoint)
}
