package spea2

import (
	"math"
	"testing"

	"aedbmls/internal/benchproblems"
	"aedbmls/internal/indicators"
	"aedbmls/internal/moo"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.PopSize = 2
	if bad.Validate() == nil {
		t.Error("tiny population accepted")
	}
	bad = DefaultConfig()
	bad.Evaluations = 10
	if bad.Validate() == nil {
		t.Error("budget below population accepted")
	}
}

func TestOptimizeZDT1Converges(t *testing.T) {
	p := benchproblems.ZDT1(6)
	cfg := Config{PopSize: 40, ArchiveSize: 40, Evaluations: 4000, Pc: 0.9, EtaC: 20, EtaM: 20, Seed: 1}
	res, err := Optimize(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	var pts [][]float64
	for _, s := range res.Front {
		pts = append(pts, s.F)
	}
	igd := indicators.IGD(pts, benchproblems.ZDT1Front(101))
	if igd > 0.08 {
		t.Fatalf("IGD = %v, want < 0.08 after 4000 evaluations", igd)
	}
}

func TestBudgetRespected(t *testing.T) {
	p := benchproblems.Fonseca(3)
	cfg := TestConfig()
	cfg.Seed = 2
	res, err := Optimize(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations > int64(cfg.Evaluations) {
		t.Fatalf("overspent: %d of %d", res.Evaluations, cfg.Evaluations)
	}
	if len(res.Archive) > cfg.ArchiveSize {
		t.Fatalf("archive %d exceeds cap %d", len(res.Archive), cfg.ArchiveSize)
	}
}

func TestDeterministic(t *testing.T) {
	p := benchproblems.Schaffer()
	cfg := TestConfig()
	cfg.Seed = 3
	r1, _ := Optimize(p, cfg)
	r2, _ := Optimize(p, cfg)
	if len(r1.Front) != len(r2.Front) {
		t.Fatalf("front sizes differ: %d vs %d", len(r1.Front), len(r2.Front))
	}
	for i := range r1.Front {
		if !moo.EqualF(r1.Front[i], r2.Front[i]) {
			t.Fatal("same-seed runs diverged")
		}
	}
}

func TestConstrainedFrontFeasible(t *testing.T) {
	p := benchproblems.ConstrainedSchaffer()
	cfg := TestConfig()
	cfg.Seed = 4
	res, err := Optimize(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Front {
		if !s.Feasible() {
			t.Fatalf("infeasible front member %v", s)
		}
		if s.X[0] < 0.5-1e-9 {
			t.Fatalf("constraint violated: x=%v", s.X[0])
		}
	}
}

func TestFitnessOfNonDominatedBelowOne(t *testing.T) {
	mk := func(f0, f1 float64) *moo.Solution { return &moo.Solution{F: []float64{f0, f1}} }
	sols := []*moo.Solution{
		mk(0, 1), mk(0.5, 0.5), mk(1, 0), // non-dominated
		mk(2, 2), // dominated by all three
	}
	fit := fitnessOf(sols)
	for i := 0; i < 3; i++ {
		if fit[i] >= 1 {
			t.Fatalf("non-dominated solution %d has fitness %v >= 1", i, fit[i])
		}
	}
	if fit[3] < 1 {
		t.Fatalf("dominated solution has fitness %v < 1", fit[3])
	}
	// The dominated one accumulates the strengths of its 3 dominators,
	// each dominating exactly 1 solution: raw fitness 3.
	if fit[3] < 3 || fit[3] >= 4 {
		t.Fatalf("raw fitness wrong: %v, want in [3, 4)", fit[3])
	}
}

func TestTruncationKeepsSpread(t *testing.T) {
	// A clustered group plus isolated extremes: truncation removes from
	// the cluster first.
	var sols []*moo.Solution
	sols = append(sols, &moo.Solution{F: []float64{0, 1}})
	sols = append(sols, &moo.Solution{F: []float64{1, 0}})
	for i := 0; i < 8; i++ {
		x := 0.5 + 0.001*float64(i)
		sols = append(sols, &moo.Solution{F: []float64{x, 1 - x}})
	}
	out := truncate(sols, 4)
	if len(out) != 4 {
		t.Fatalf("size = %d", len(out))
	}
	hasLeft, hasRight := false, false
	for _, s := range out {
		if s.F[0] == 0 {
			hasLeft = true
		}
		if s.F[1] == 0 {
			hasRight = true
		}
	}
	if !hasLeft || !hasRight {
		t.Fatal("truncation removed extreme solutions")
	}
}

func TestEnvironmentalSelectionTopUp(t *testing.T) {
	mk := func(f0, f1 float64) *moo.Solution { return &moo.Solution{F: []float64{f0, f1}} }
	union := []*moo.Solution{
		mk(0, 1), mk(1, 0), // non-dominated
		mk(2, 2), mk(3, 3), mk(4, 4), // chain of dominated
	}
	fit := fitnessOf(union)
	out := environmentalSelection(union, fit, 3)
	if len(out) != 3 {
		t.Fatalf("size = %d", len(out))
	}
	// The best dominated (2,2) fills the third slot.
	found := false
	for _, s := range out {
		if s.F[0] == 2 {
			found = true
		}
		if s.F[0] == 4 {
			t.Fatal("worst dominated solution selected")
		}
	}
	if !found {
		t.Fatal("top-up skipped the best dominated solution")
	}
}

func TestLexLess(t *testing.T) {
	if !lexLess([]float64{1, 5}, []float64{2, 0}) {
		t.Error("first-component comparison failed")
	}
	if !lexLess([]float64{1, 2}, []float64{1, 3}) {
		t.Error("tie-break comparison failed")
	}
	if lexLess([]float64{1, 3}, []float64{1, 2}) {
		t.Error("inverse tie-break wrong")
	}
	if !lexLess([]float64{1}, []float64{1, 0}) {
		t.Error("shorter vector should compare less")
	}
}

func TestFrontQualityVsDiversity(t *testing.T) {
	// SPEA2's k-NN density must keep the ZDT2 concave front covered.
	p := benchproblems.ZDT2(6)
	cfg := Config{PopSize: 40, ArchiveSize: 40, Evaluations: 4000, Pc: 0.9, EtaC: 20, EtaM: 20, Seed: 5}
	res, err := Optimize(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	minF0, maxF0 := math.Inf(1), math.Inf(-1)
	for _, s := range res.Front {
		minF0 = math.Min(minF0, s.F[0])
		maxF0 = math.Max(maxF0, s.F[0])
	}
	if maxF0-minF0 < 0.6 {
		t.Fatalf("front span = %v, want broad coverage", maxF0-minF0)
	}
}
