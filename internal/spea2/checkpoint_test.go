package spea2

import (
	"math"
	"path/filepath"
	"testing"

	"aedbmls/internal/benchproblems"
	"aedbmls/internal/moo"
	"aedbmls/internal/study"
)

func sameSolutions(t *testing.T, want, got []*moo.Solution) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("sizes differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		for j := range want[i].X {
			if math.Float64bits(want[i].X[j]) != math.Float64bits(got[i].X[j]) {
				t.Fatalf("solution %d: X[%d] = %v vs %v", i, j, want[i].X[j], got[i].X[j])
			}
		}
		for j := range want[i].F {
			if math.Float64bits(want[i].F[j]) != math.Float64bits(got[i].F[j]) {
				t.Fatalf("solution %d: F[%d] = %v vs %v", i, j, want[i].F[j], got[i].F[j])
			}
		}
	}
}

// TestCheckpointResumeEquivalence: a SPEA2 run interrupted at a generation
// boundary and resumed from the checkpoint reproduces the uninterrupted
// archive and front bit for bit. (The boundary sits before environmental
// selection, which the resume re-runs deterministically.)
func TestCheckpointResumeEquivalence(t *testing.T) {
	p := benchproblems.ZDT1(8)
	cfg := TestConfig()
	cfg.Seed = 41

	golden, err := Optimize(p, cfg)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "spea2.ckpt")
	icfg := cfg
	icfg.Checkpoint = &study.Controller{Path: path, Every: 60, AfterSave: func(cp *study.Checkpoint) error {
		if cp.Final {
			return nil
		}
		return study.ErrStop
	}}
	ires, err := Optimize(p, icfg)
	if err != nil {
		t.Fatal(err)
	}
	if !ires.Interrupted || ires.Evaluations >= golden.Evaluations {
		t.Fatalf("interruption did not happen mid-run: interrupted=%v evals=%d", ires.Interrupted, ires.Evaluations)
	}

	cp, err := study.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := cfg
	rcfg.Resume = cp
	rres, err := Optimize(p, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	sameSolutions(t, golden.Archive, rres.Archive)
	sameSolutions(t, golden.Front, rres.Front)
	if rres.Evaluations != golden.Evaluations || rres.Generations != golden.Generations {
		t.Fatalf("counters diverged: {%d %d} vs {%d %d}",
			rres.Evaluations, rres.Generations, golden.Evaluations, golden.Generations)
	}
}

// TestCheckpointFinalShortCircuit: the Final checkpoint is written after
// the last environmental selection, so resuming it must not re-select —
// it reassembles the archived result as-is.
func TestCheckpointFinalShortCircuit(t *testing.T) {
	p := benchproblems.ZDT1(8)
	cfg := TestConfig()
	cfg.Seed = 42

	path := filepath.Join(t.TempDir(), "spea2.ckpt")
	ccfg := cfg
	ccfg.Checkpoint = &study.Controller{Path: path}
	golden, err := Optimize(p, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := study.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.Final {
		t.Fatal("completed run did not write a Final checkpoint")
	}
	rcfg := cfg
	rcfg.Resume = cp
	rres, err := Optimize(p, rcfg)
	if err != nil {
		t.Fatal(err)
	}
	sameSolutions(t, golden.Archive, rres.Archive)
	sameSolutions(t, golden.Front, rres.Front)
}

// TestResumeRefusesMismatchedStudy: fingerprints gate the resume.
func TestResumeRefusesMismatchedStudy(t *testing.T) {
	p := benchproblems.ZDT1(8)
	cfg := TestConfig()
	path := filepath.Join(t.TempDir(), "spea2.ckpt")
	ccfg := cfg
	ccfg.Checkpoint = &study.Controller{Path: path}
	if _, err := Optimize(p, ccfg); err != nil {
		t.Fatal(err)
	}
	cp, err := study.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Seed++
	other.Resume = cp
	if _, err := Optimize(p, other); err == nil {
		t.Fatal("resume accepted a foreign checkpoint")
	}
}
