// Package spea2 implements the Strength Pareto Evolutionary Algorithm 2
// (Zitzler, Laumanns, Thiele 2001) as an additional reference MOEA beyond
// the two the paper compares against. SPEA2 is a contemporary of NSGA-II
// with a different selection pressure (strength-based fitness plus
// k-nearest-neighbour density) and a different elitism mechanism (a
// fixed-size environmental archive with iterative truncation); adding it
// to the comparison stresses that the reproduction's reference fronts are
// not an artifact of one particular MOEA design.
//
// Constraint handling follows the same constrained-dominance convention as
// the rest of the repository.
package spea2

import (
	"fmt"
	"math"
	"sort"
	"time"

	"aedbmls/internal/moo"
	"aedbmls/internal/operators"
	"aedbmls/internal/rng"
	"aedbmls/internal/study"
)

// AlgorithmName identifies SPEA2 checkpoints.
const AlgorithmName = "spea2"

// Config parameterises SPEA2.
type Config struct {
	PopSize     int // working population size
	ArchiveSize int // environmental archive size (0: same as PopSize)
	Evaluations int
	Pc          float64
	EtaC        float64
	Pm          float64 // <= 0 means 1/dim
	EtaM        float64
	Seed        uint64
	// Checkpoint enables crash-safe checkpointing at generation
	// boundaries; Resume restores a matching checkpoint instead of
	// initialising; Stop requests cooperative interruption. See
	// internal/study for the shared protocol; resuming an interrupted run
	// reproduces the uninterrupted result bit for bit.
	Checkpoint *study.Controller
	Resume     *study.Checkpoint
	Stop       <-chan struct{}
}

// fingerprint identifies the study this config defines on problem p.
// ArchiveSize is normalised first (Optimize defaults 0 to PopSize).
func (c Config) fingerprint(p moo.Problem) string {
	pm := c.Pm
	if pm <= 0 {
		pm = 1.0 / float64(p.Dim())
	}
	return study.Fingerprint(
		"spea2-v1",
		fmt.Sprintf("pop=%d arch=%d evals=%d pc=%x etac=%x pm=%x etam=%x seed=%d",
			c.PopSize, c.ArchiveSize, c.Evaluations, math.Float64bits(c.Pc),
			math.Float64bits(c.EtaC), math.Float64bits(pm), math.Float64bits(c.EtaM), c.Seed),
		study.ProblemFingerprint(p),
	)
}

// DefaultConfig mirrors the budgets used for the paper's MOEAs.
func DefaultConfig() Config {
	return Config{PopSize: 100, ArchiveSize: 100, Evaluations: 10000, Pc: 0.9, EtaC: 20, EtaM: 20, Seed: 1}
}

// TestConfig returns a reduced configuration for tests and benchmarks.
func TestConfig() Config {
	cfg := DefaultConfig()
	cfg.PopSize = 20
	cfg.ArchiveSize = 20
	cfg.Evaluations = 400
	return cfg
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.PopSize < 4:
		return fmt.Errorf("spea2: PopSize must be >= 4, got %d", c.PopSize)
	case c.Evaluations < c.PopSize:
		return fmt.Errorf("spea2: Evaluations %d below PopSize %d", c.Evaluations, c.PopSize)
	case c.Pc < 0 || c.Pc > 1:
		return fmt.Errorf("spea2: Pc out of [0,1]")
	case c.ArchiveSize < 0:
		return fmt.Errorf("spea2: negative ArchiveSize")
	}
	return nil
}

// Result is the outcome of one SPEA2 run.
type Result struct {
	// Front is the non-dominated subset of the final archive (see
	// nsga2.Result.Front for the constrained-front convention).
	Front []*moo.Solution
	// Archive is the full final environmental archive.
	Archive     []*moo.Solution
	Evaluations int64
	Duration    time.Duration
	Generations int
	// Interrupted is true when the run exited early because Config.Stop
	// was closed.
	Interrupted bool
}

// Optimize runs SPEA2 on p. Execution is sequential.
func Optimize(p moo.Problem, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.ArchiveSize == 0 {
		cfg.ArchiveSize = cfg.PopSize
	}
	lo, hi := p.Bounds()
	pm := cfg.Pm
	if pm <= 0 {
		pm = 1.0 / float64(p.Dim())
	}
	start := time.Now()
	loop := &study.Loop{Ctrl: cfg.Checkpoint, Stop: cfg.Stop}
	interrupted := false
	var (
		r     *rng.Rand
		pop   []*moo.Solution
		arch  []*moo.Solution
		evals int64
		gens  int
		done  bool // resumed from a Final checkpoint
	)

	// Whole generations are evaluated together; see the equivalent note
	// in nsga2.Optimize — batching is bit-identical because variation
	// never draws randomness from evaluation.
	evaluateAll := func(xs [][]float64) []*moo.Solution {
		evals += int64(len(xs))
		return moo.EvaluateAll(p, xs)
	}

	if cp := cfg.Resume; cp != nil {
		if err := cp.Check(AlgorithmName, cfg.fingerprint(p)); err != nil {
			return nil, err
		}
		var err error
		if pop, err = study.DecodeSolutions(cp.Population, p.Dim(), p.NumObjectives()); err != nil {
			return nil, err
		}
		if arch, err = study.DecodeSolutions(cp.Elite, p.Dim(), p.NumObjectives()); err != nil {
			return nil, err
		}
		if len(arch) == 0 {
			arch = nil // first-boundary checkpoints have no archive yet
		}
		r = cp.RNG.Rand()
		evals = cp.Evaluations
		gens = int(cp.Iteration)
		done = cp.Final
	} else {
		r = rng.New(cfg.Seed)
		xs := make([][]float64, cfg.PopSize)
		for i := range xs {
			xs[i] = operators.RandomVector(lo, hi, r)
		}
		pop = evaluateAll(xs)
		// Initial members are long-lived; ladder-screened cells are
		// re-evaluated serially at full fidelity instead of being dropped,
		// and stop-abandoned cells are dropped outright (see the
		// equivalent note in nsga2.Optimize).
		for i, s := range pop {
			if s.Screened {
				pop[i] = moo.NewSolution(p, xs[i])
				evals++
			}
		}
		pop = moo.Admissible(pop)
	}

	// encode snapshots the generation boundary. Non-final boundaries sit
	// BEFORE environmental selection (a pure function of pop+arch that a
	// resume re-runs); the Final checkpoint sits after the last selection,
	// so resuming a finished study must not re-select — it short-circuits
	// straight to result assembly.
	encode := func() *study.Checkpoint {
		return &study.Checkpoint{
			Algorithm:   AlgorithmName,
			Fingerprint: cfg.fingerprint(p),
			Evaluations: evals,
			Iteration:   int64(gens),
			RNG:         study.StateOf(r),
			Population:  study.EncodeSolutions(pop),
			Elite:       study.EncodeSolutions(arch),
		}
	}

	for !done {
		if stopped, err := loop.Boundary(encode); err != nil {
			return nil, err
		} else if stopped {
			interrupted = true
			break
		}
		// Environmental selection over the union.
		union := append(append([]*moo.Solution(nil), pop...), arch...)
		fitness := fitnessOf(union)
		arch = environmentalSelection(union, fitness, cfg.ArchiveSize)
		if evals+int64(cfg.PopSize) > int64(cfg.Evaluations) {
			break
		}
		gens++
		// Mating selection on the archive by binary fitness tournament.
		archFitness := fitnessOf(arch)
		xs := make([][]float64, 0, cfg.PopSize)
		for len(xs) < cfg.PopSize {
			p1 := tournament(arch, archFitness, r)
			p2 := tournament(arch, archFitness, r)
			c1, c2 := operators.SBX(p1.X, p2.X, cfg.Pc, cfg.EtaC, lo, hi, r)
			operators.PolynomialMutation(c1, pm, cfg.EtaM, lo, hi, r)
			operators.PolynomialMutation(c2, pm, cfg.EtaM, lo, hi, r)
			xs = append(xs, c1)
			if len(xs) < cfg.PopSize {
				xs = append(xs, c2)
			}
		}
		// Inadmissible offspring are dropped before they can join the
		// union (and through it the archive); the union never sees a
		// stop-abandoned penalty or a ladder screening estimate.
		pop = moo.Admissible(evaluateAll(xs))
	}
	if !done && !interrupted {
		if err := loop.Finish(encode); err != nil {
			return nil, err
		}
	}

	res := &Result{
		Archive:     arch,
		Evaluations: evals,
		Duration:    time.Since(start),
		Generations: gens,
		Interrupted: interrupted,
	}
	res.Front = moo.ParetoFilter(arch)
	return res, nil
}

// fitnessOf computes the SPEA2 fitness of every solution: raw fitness
// (the summed strength of all its dominators) plus the density term
// 1/(sigma_k + 2) with k = sqrt(n). Smaller is better; values below 1 mark
// non-dominated solutions.
func fitnessOf(sols []*moo.Solution) []float64 {
	n := len(sols)
	strength := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && moo.Dominates(sols[i], sols[j]) {
				strength[i]++
			}
		}
	}
	fitness := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && moo.Dominates(sols[j], sols[i]) {
				fitness[i] += strength[j]
			}
		}
	}
	d := distanceMatrix(sols)
	k := int(math.Sqrt(float64(n)))
	if k < 1 {
		k = 1
	}
	row := make([]float64, 0, n-1)
	for i := 0; i < n; i++ {
		row = row[:0]
		for j := 0; j < n; j++ {
			if i != j {
				row = append(row, d[i][j])
			}
		}
		sort.Float64s(row)
		sigma := 0.0
		if len(row) > 0 {
			idx := k - 1
			if idx >= len(row) {
				idx = len(row) - 1
			}
			sigma = row[idx]
		}
		fitness[i] += 1 / (sigma + 2)
	}
	return fitness
}

// distanceMatrix computes pairwise objective-space distances.
func distanceMatrix(sols []*moo.Solution) [][]float64 {
	n := len(sols)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var s float64
			for k := range sols[i].F {
				diff := sols[i].F[k] - sols[j].F[k]
				s += diff * diff
			}
			dist := math.Sqrt(s)
			d[i][j], d[j][i] = dist, dist
		}
	}
	return d
}

// ranked pairs a solution with its SPEA2 fitness.
type ranked struct {
	s *moo.Solution
	f float64
}

// environmentalSelection keeps size solutions: all with fitness < 1 if
// they fit (truncating by iterative nearest-neighbour removal when too
// many), topped up with the best-fitness dominated solutions otherwise.
func environmentalSelection(union []*moo.Solution, fitness []float64, size int) []*moo.Solution {
	var nondom, rest []ranked
	for i, s := range union {
		if fitness[i] < 1 {
			nondom = append(nondom, ranked{s, fitness[i]})
		} else {
			rest = append(rest, ranked{s, fitness[i]})
		}
	}
	if len(nondom) > size {
		return truncate(extract(nondom), size)
	}
	out := extract(nondom)
	sort.Slice(rest, func(i, j int) bool { return rest[i].f < rest[j].f })
	for _, r := range rest {
		if len(out) >= size {
			break
		}
		out = append(out, r.s)
	}
	return out
}

func extract(rs []ranked) []*moo.Solution {
	out := make([]*moo.Solution, len(rs))
	for i, r := range rs {
		out[i] = r.s
	}
	return out
}

// truncate iteratively removes the solution with the smallest
// nearest-neighbour distance (ties broken by the next distances — the
// SPEA2 truncation operator) until size remain.
func truncate(sols []*moo.Solution, size int) []*moo.Solution {
	alive := make([]bool, len(sols))
	for i := range alive {
		alive[i] = true
	}
	d := distanceMatrix(sols)
	remaining := len(sols)
	for remaining > size {
		victim := -1
		var victimDists []float64
		for i := range sols {
			if !alive[i] {
				continue
			}
			ds := sortedLiveDistances(d, alive, i)
			if victim < 0 || lexLess(ds, victimDists) {
				victim = i
				victimDists = ds
			}
		}
		alive[victim] = false
		remaining--
	}
	out := make([]*moo.Solution, 0, size)
	for i, ok := range alive {
		if ok {
			out = append(out, sols[i])
		}
	}
	return out
}

func sortedLiveDistances(d [][]float64, alive []bool, i int) []float64 {
	out := make([]float64, 0, len(alive)-1)
	for j := range alive {
		if j != i && alive[j] {
			out = append(out, d[i][j])
		}
	}
	sort.Float64s(out)
	return out
}

// lexLess compares distance vectors lexicographically (SPEA2's "closer
// than" relation for truncation).
func lexLess(a, b []float64) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// tournament is a binary tournament on SPEA2 fitness (smaller wins).
func tournament(pop []*moo.Solution, fitness []float64, r *rng.Rand) *moo.Solution {
	i, j := r.Intn(len(pop)), r.Intn(len(pop))
	if fitness[i] <= fitness[j] {
		return pop[i]
	}
	return pop[j]
}
