package spea2

import (
	"testing"

	"aedbmls/internal/benchproblems"
	"aedbmls/internal/moo"
)

// batchCapable upgrades a problem to moo.BatchProblem by delegation.
type batchCapable struct {
	moo.Problem
	batches int
}

func (b *batchCapable) EvaluateBatch(xs [][]float64) []moo.BatchResult {
	b.batches++
	out := make([]moo.BatchResult, len(xs))
	for i, x := range xs {
		f, v, aux := b.Evaluate(x)
		out[i] = moo.BatchResult{F: f, Violation: v, Aux: aux}
	}
	return out
}

// TestBatchEvaluationEquivalence: SPEA2 on a batch-capable problem must
// reproduce the plain run exactly.
func TestBatchEvaluationEquivalence(t *testing.T) {
	cfg := TestConfig()
	cfg.Seed = 13
	plain, err := Optimize(benchproblems.ZDT1(6), cfg)
	if err != nil {
		t.Fatal(err)
	}
	wrapped := &batchCapable{Problem: benchproblems.ZDT1(6)}
	batched, err := Optimize(wrapped, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Evaluations != batched.Evaluations {
		t.Fatalf("evaluation counts %d vs %d", plain.Evaluations, batched.Evaluations)
	}
	if len(plain.Archive) != len(batched.Archive) {
		t.Fatalf("archive sizes %d vs %d", len(plain.Archive), len(batched.Archive))
	}
	for i := range plain.Archive {
		if !moo.EqualF(plain.Archive[i], batched.Archive[i]) {
			t.Fatalf("archive member %d differs", i)
		}
	}
	if wrapped.batches == 0 {
		t.Fatal("batch path never used")
	}
}
