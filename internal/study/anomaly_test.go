package study

import (
	"strings"
	"testing"

	"aedbmls/internal/archive"
	"aedbmls/internal/moo"
)

func sol(f ...float64) *moo.Solution {
	return &moo.Solution{X: []float64{0}, F: f}
}

// TestAuditFrontCleanFront: a genuinely non-dominated set audits clean.
func TestAuditFrontCleanFront(t *testing.T) {
	front := []*moo.Solution{sol(1, 5), sol(2, 4), sol(3, 3)}
	if got := AuditFront(front); len(got) != 0 {
		t.Fatalf("clean front flagged: %v", got)
	}
}

// TestAuditFrontFlagsInjectedDominatedSurvivor is the acceptance test of
// the gate: deliberately inject a dominated point into a front and the
// audit must flag exactly it, with the dominating witness.
func TestAuditFrontFlagsInjectedDominatedSurvivor(t *testing.T) {
	front := []*moo.Solution{sol(1, 5), sol(2, 4), sol(3, 3)}
	front = append(front, sol(2.5, 4.5)) // dominated by (2, 4)
	got := AuditFront(front)
	if len(got) != 1 {
		t.Fatalf("want exactly the injected survivor flagged, got %v", got)
	}
	a := got[0]
	if a.Kind != AnomalyDominatedSurvivor || a.Index != 3 || a.Other != 1 {
		t.Fatalf("wrong finding: %+v", a)
	}
	if !strings.Contains(a.String(), "dominated") {
		t.Fatalf("unhelpful rendering: %q", a.String())
	}
}

// TestAuditFrontConstrainedDominance: an infeasible point that survived
// next to a feasible one is a dominated survivor under Deb's rule even
// when its objectives look better.
func TestAuditFrontConstrainedDominance(t *testing.T) {
	feasible := sol(5, 5)
	infeasible := sol(1, 1)
	infeasible.Violation = 0.5
	got := AuditFront([]*moo.Solution{feasible, infeasible})
	if len(got) != 1 || got[0].Index != 1 || got[0].Other != 0 {
		t.Fatalf("constrained dominance not applied: %v", got)
	}
}

// TestAuditFrontOnRealArchive: a stock AGA archive never yields
// dominated survivors by construction; corrupting its contents does.
func TestAuditFrontOnRealArchive(t *testing.T) {
	ar := archive.NewAGA(16, 4)
	for _, s := range []*moo.Solution{
		sol(1, 9), sol(3, 7), sol(5, 5), sol(7, 3), sol(9, 1), sol(4, 6), sol(2, 8),
	} {
		ar.Add(s)
	}
	front := ar.Contents()
	if got := AuditFront(front); len(got) != 0 {
		t.Fatalf("AGA front flagged: %v", got)
	}
	corrupted := append(append([]*moo.Solution(nil), front...), sol(6, 6))
	if got := AuditFront(corrupted); len(got) != 1 {
		t.Fatalf("corrupted AGA front not flagged exactly once: %v", got)
	}
}

// TestFrontGateOffFront: the energy/coverage projection check flags
// candidates strictly behind the known front and tolerates points within
// epsilon.
func TestFrontGateOffFront(t *testing.T) {
	known := []*moo.Solution{sol(1, 5), sol(3, 3)}
	gate := NewFrontGate(known, 0.5, 0, 1)

	// Clearly interior: behind (3,3) by 1 on both axes.
	got := gate.Audit([]*moo.Solution{sol(4, 4)})
	if len(got) != 1 || got[0].Kind != AnomalyOffFront || got[0].Other != 1 {
		t.Fatalf("interior point not flagged: %v", got)
	}
	if len(got[0].Gap) != 2 || got[0].Gap[0] != 1 || got[0].Gap[1] != 1 {
		t.Fatalf("wrong gap: %v", got[0].Gap)
	}

	// Within epsilon of the front: fine.
	if got := gate.Audit([]*moo.Solution{sol(1.2, 5.2)}); len(got) != 0 {
		t.Fatalf("near-front point flagged: %v", got)
	}
	// Behind on one axis only: a legitimate tradeoff, not an anomaly.
	if got := gate.Audit([]*moo.Solution{sol(0.5, 9)}); len(got) != 0 {
		t.Fatalf("tradeoff point flagged: %v", got)
	}
}

// TestFrontGateDefaultsToAllAxes: omitting axes audits the full
// objective vector.
func TestFrontGateDefaultsToAllAxes(t *testing.T) {
	gate := NewFrontGate([]*moo.Solution{sol(1, 1, 1)}, 0)
	if got := gate.Audit([]*moo.Solution{sol(2, 2, 2)}); len(got) != 1 {
		t.Fatalf("full-axis audit missed: %v", got)
	}
	if got := gate.Audit([]*moo.Solution{sol(2, 2, 0.5)}); len(got) != 0 {
		t.Fatalf("full-axis audit overfired: %v", got)
	}
}

// TestAuditCheckpoint: the load-time health check decodes the archive
// and finds an injected survivor; archive-free checkpoints audit clean.
func TestAuditCheckpoint(t *testing.T) {
	if got, err := AuditCheckpoint(&Checkpoint{}); err != nil || len(got) != 0 {
		t.Fatalf("archive-free checkpoint: %v, %v", got, err)
	}
	cp := &Checkpoint{Archive: &ArchiveState{
		Kind: "aga",
		Solutions: EncodeSolutions([]*moo.Solution{
			sol(1, 5), sol(2, 4), sol(2.5, 4.5),
		}),
	}}
	got, err := AuditCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Index != 2 || got[0].Other != 1 {
		t.Fatalf("checkpoint audit wrong: %v", got)
	}
}
