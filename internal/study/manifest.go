package study

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"aedbmls/internal/faultinject"
)

// ManifestSchema is the on-disk manifest format version. Bump on any
// incompatible change; LoadManifest refuses files from other versions.
const ManifestSchema = 1

// ManifestFile is the manifest's file name inside a checkpoint directory.
const ManifestFile = "studies.json"

// ManifestEntry records one study the tuning service has accepted: the
// spec needed to rebuild it on restart, and whether the user stopped it
// (a stopped study is restored as terminal rather than resumed).
type ManifestEntry struct {
	Spec    json.RawMessage `json:"spec"`
	Stopped bool            `json:"stopped,omitempty"`
}

// Manifest is the durable registry of every study in a checkpoint
// directory. The tuning service persists it before starting a study, so
// a server killed at any point restarts knowing the full study set even
// when some studies never reached their first checkpoint.
type Manifest struct {
	Schema   int                      `json:"schema"`
	Studies  map[string]ManifestEntry `json:"studies"`
	Checksum string                   `json:"checksum"`
}

// NewManifest returns an empty manifest.
func NewManifest() *Manifest {
	return &Manifest{Schema: ManifestSchema, Studies: make(map[string]ManifestEntry)}
}

// ManifestPath returns the manifest location for a checkpoint directory.
func ManifestPath(dir string) string { return filepath.Join(dir, ManifestFile) }

func manifestChecksum(m *Manifest) (string, error) {
	saved := m.Checksum
	m.Checksum = ""
	data, err := json.Marshal(m)
	m.Checksum = saved
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// SaveManifest writes the manifest atomically (same temp+fsync+rename
// sequence as checkpoint Save, with its own faultinject site so kill
// rules on study.save don't trip here).
func SaveManifest(path string, m *Manifest) error {
	m.Schema = ManifestSchema
	sum, err := manifestChecksum(m)
	if err != nil {
		return fmt.Errorf("study: encode manifest: %v", err)
	}
	m.Checksum = sum
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return fmt.Errorf("study: encode manifest: %v", err)
	}
	data = append(data, '\n')
	return atomicWrite(path, data, faultinject.SiteManifestSave, "manifest")
}

// LoadManifest reads and validates a manifest. A missing file is not an
// error — it returns an empty manifest, the correct state for a fresh
// checkpoint directory. A present-but-invalid file (truncated, unknown
// fields, checksum mismatch, other schema) is refused, like checkpoints.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return NewManifest(), nil
	}
	if err != nil {
		return nil, err
	}
	m := &Manifest{}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(m); err != nil {
		return nil, fmt.Errorf("study: corrupt manifest: %v", err)
	}
	var trailer json.RawMessage
	if err := dec.Decode(&trailer); err == nil || !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("study: corrupt manifest: trailing data")
	}
	if m.Schema != ManifestSchema {
		return nil, fmt.Errorf("study: manifest schema %d, this binary reads %d", m.Schema, ManifestSchema)
	}
	if m.Checksum == "" {
		return nil, fmt.Errorf("study: manifest missing checksum")
	}
	sum, err := manifestChecksum(m)
	if err != nil {
		return nil, err
	}
	if sum != m.Checksum {
		return nil, fmt.Errorf("study: manifest checksum mismatch (file corrupt or hand-edited)")
	}
	if m.Studies == nil {
		m.Studies = make(map[string]ManifestEntry)
	}
	return m, nil
}

// SanitizeName validates a study name that will become part of a
// checkpoint file path. Validation only, no mangling: a name either
// passes through unchanged or is refused, so the name a client created
// is exactly the name on disk and in every later request. Refused:
// empty, longer than 64 bytes, any character outside [a-zA-Z0-9._-],
// and a leading '.' or '-' (which would otherwise admit "..", dotfiles,
// and flag-lookalikes).
func SanitizeName(name string) error {
	if name == "" {
		return errors.New("study: empty study name")
	}
	if len(name) > 64 {
		return fmt.Errorf("study: study name longer than 64 bytes (%d)", len(name))
	}
	if name[0] == '.' || name[0] == '-' {
		return fmt.Errorf("study: study name %q may not start with %q", name, name[0:1])
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("study: study name %q contains %q (allowed: [a-zA-Z0-9._-])", name, name[i:i+1])
		}
	}
	return nil
}

// StudyPath maps a validated study name to its checkpoint file inside
// dir. The name is re-validated here — this is the last stop before the
// name reaches the filesystem, so path traversal is refused even if a
// caller skipped SanitizeName.
func StudyPath(dir, name string) (string, error) {
	if err := SanitizeName(name); err != nil {
		return "", err
	}
	return filepath.Join(dir, name+".study.ckpt"), nil
}
