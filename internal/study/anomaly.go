package study

import (
	"fmt"
	"strings"

	"aedbmls/internal/moo"
)

// AnomalyKind classifies one archive-health finding (see Anomaly).
type AnomalyKind uint8

const (
	// AnomalyDominatedSurvivor flags a member of a supposedly
	// non-dominated set that another member dominates under constrained
	// dominance — a point the archive should have evicted. Seeing one in
	// a live study means archive state was corrupted (bad resume, racy
	// merge, a broken custom archive), never normal operation.
	AnomalyDominatedSurvivor AnomalyKind = iota + 1
	// AnomalyOffFront flags a candidate whose objective point sits behind
	// a known-good reference front by more than epsilon on every audited
	// axis — e.g. an "optimal" energy/coverage tradeoff that a previous
	// study already strictly beat. It is the per-study health signal a
	// long-running tuning service raises when a run quietly degrades.
	AnomalyOffFront
)

// String implements fmt.Stringer.
func (k AnomalyKind) String() string {
	switch k {
	case AnomalyDominatedSurvivor:
		return "dominated-survivor"
	case AnomalyOffFront:
		return "off-front"
	default:
		return fmt.Sprintf("anomaly(%d)", uint8(k))
	}
}

// Anomaly is one flagged member of an audited front.
type Anomaly struct {
	Kind AnomalyKind
	// Index is the flagged member's position in the audited front.
	Index int
	// Other names the witness: the dominating member's index
	// (DominatedSurvivor) or the reference-front point's index
	// (OffFront).
	Other int
	// Gap, for OffFront, is the per-objective distance behind the
	// witness reference point on the audited axes (all > epsilon by
	// construction).
	Gap []float64
}

// String renders one finding for logs.
func (a Anomaly) String() string {
	switch a.Kind {
	case AnomalyDominatedSurvivor:
		return fmt.Sprintf("solution %d is dominated by archive member %d yet survived", a.Index, a.Other)
	case AnomalyOffFront:
		parts := make([]string, len(a.Gap))
		for i, g := range a.Gap {
			parts[i] = fmt.Sprintf("%+.4g", g)
		}
		return fmt.Sprintf("solution %d falls off the known front (behind reference point %d by [%s])",
			a.Index, a.Other, strings.Join(parts, " "))
	default:
		return fmt.Sprintf("solution %d: %v", a.Index, a.Kind)
	}
}

// AuditFront checks a supposedly non-dominated set for dominated
// survivors: every member dominated (under moo.Dominates, i.e. Deb's
// constrained rule) by another member is flagged once, with the first
// dominating witness. A healthy archive front yields nil.
func AuditFront(front []*moo.Solution) []Anomaly {
	var out []Anomaly
	for i, s := range front {
		for j, o := range front {
			if i != j && moo.Dominates(o, s) {
				out = append(out, Anomaly{Kind: AnomalyDominatedSurvivor, Index: i, Other: j})
				break
			}
		}
	}
	return out
}

// FrontGate audits candidate fronts against a known-good reference front
// on a fixed subset of objective axes. For the AEDB problem the natural
// gate is NewFrontGate(known, eps, 0, 1): the (energy, -coverage) plane
// of Fig. 5/6, flagging candidates whose energy/coverage point falls off
// the front a trusted run established.
type FrontGate struct {
	ref  [][]float64
	axes []int
	eps  float64
}

// NewFrontGate builds a gate from a trusted front. Epsilon is the slack
// (in objective units) a candidate may trail a reference point on every
// audited axis before it is flagged; it absorbs committee noise between
// runs. axes selects the objective indices to audit (defaults to all
// objectives of the first reference solution when empty).
func NewFrontGate(known []*moo.Solution, epsilon float64, axes ...int) *FrontGate {
	g := &FrontGate{eps: epsilon, axes: axes}
	for _, s := range known {
		g.ref = append(g.ref, append([]float64(nil), s.F...))
	}
	if len(g.axes) == 0 && len(g.ref) > 0 {
		for i := range g.ref[0] {
			g.axes = append(g.axes, i)
		}
	}
	return g
}

// Audit runs both checks on a candidate front: dominated survivors
// (AuditFront) plus the off-front test — a member is flagged when some
// reference point beats it by more than epsilon on every audited axis
// (objectives are minimized, so larger is worse).
func (g *FrontGate) Audit(front []*moo.Solution) []Anomaly {
	out := AuditFront(front)
	for i, s := range front {
		for j, r := range g.ref {
			if g.behind(s.F, r) {
				gap := make([]float64, 0, len(g.axes))
				for _, ax := range g.axes {
					gap = append(gap, s.F[ax]-r[ax])
				}
				out = append(out, Anomaly{Kind: AnomalyOffFront, Index: i, Other: j, Gap: gap})
				break
			}
		}
	}
	return out
}

// behind reports whether f trails ref by more than epsilon on every
// audited axis (NaN comparisons fail, so NaN objectives never flag).
func (g *FrontGate) behind(f, ref []float64) bool {
	if len(g.axes) == 0 {
		return false
	}
	for _, ax := range g.axes {
		if ax < 0 || ax >= len(f) || ax >= len(ref) || !(f[ax]-ref[ax] > g.eps) {
			return false
		}
	}
	return true
}

// AuditCheckpoint decodes a checkpoint's archive and audits it for
// dominated survivors — the load-time health check a tuning service runs
// before resuming a study from disk. Checkpoints without an archive
// audit clean.
func AuditCheckpoint(cp *Checkpoint) ([]Anomaly, error) {
	if cp.Archive == nil {
		return nil, nil
	}
	front, err := DecodeSolutions(cp.Archive.Solutions, 0, 0)
	if err != nil {
		return nil, fmt.Errorf("study: audit cannot decode archive: %w", err)
	}
	return AuditFront(front), nil
}
