// Package study provides the crash-safe checkpoint/resume layer shared by
// every optimizer in this repository (core MLS, NSGA-II, SPEA2, CellDE).
//
// A Checkpoint captures everything a bit-identical resume needs: the
// optimizer's RNG state(s), its iteration/evaluation counters, its
// population/grid/worker state, the elite archive contents in internal
// order, and a fingerprint of the algorithm + problem configuration so a
// resume can refuse to continue a different study (or one whose evaluation
// caches would be incompatible). Floats are serialized as hex strings
// (see F64), so a decode restores the exact bits the optimizer held.
//
// Save is atomic: the checkpoint is written to a temporary file in the
// destination directory, fsynced, renamed over the target, and the
// directory is fsynced. A crash at any point leaves either the previous
// checkpoint or the new one, never a torn file; Load additionally verifies
// a schema version and a SHA-256 payload checksum, so a torn or corrupted
// file is refused rather than half-loaded.
//
// Optimizers take a *Controller in their Config and call Due/Save at
// iteration boundaries chosen so that the saved state always equals a
// completed boundary — resuming replays the remaining iterations through
// the same RNG stream and produces the same final archive, bit for bit.
package study

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"aedbmls/internal/faultinject"
	"aedbmls/internal/moo"
)

// Schema is the checkpoint format version. Load refuses any other value;
// bump it when the Checkpoint layout changes incompatibly.
const Schema = 1

// ErrStop is returned by a Controller's AfterSave hook (or wrapped by
// Save) to request a clean interruption: the optimizer stops after the
// just-saved boundary and marks its result interrupted. CLIs use it for
// SIGINT/SIGTERM ("checkpoint, then exit"); tests use it to model a crash
// deterministically ("stop exactly after save #3").
var ErrStop = errors.New("study: stop requested")

// Checkpoint is the serialized state of one study. It is a union across
// the four optimizers: each populates the fields it needs (Workers for
// MLS, Population for the GAs, Grid for CellDE, Elite for SPEA2's
// environmental archive) and ignores the rest.
type Checkpoint struct {
	Schema      int    `json:"schema"`
	Algorithm   string `json:"algorithm"`
	Fingerprint string `json:"fingerprint"`
	// Final marks the checkpoint written at successful completion. Resuming
	// a Final checkpoint short-circuits straight to result assembly —
	// re-running even one loop head (e.g. SPEA2's environmental selection)
	// on final state would change it.
	Final       bool             `json:"final,omitempty"`
	Evaluations int64            `json:"evaluations"`
	Iteration   int64            `json:"iteration,omitempty"`
	Counters    map[string]int64 `json:"counters,omitempty"`
	RNG         RNGState         `json:"rng"`
	ExtraRNGs   []RNGState       `json:"extra_rngs,omitempty"`
	Archive     *ArchiveState    `json:"archive,omitempty"`
	Population  []Solution       `json:"population,omitempty"`
	Elite       []Solution       `json:"elite,omitempty"`
	Grid        []Solution       `json:"grid,omitempty"`
	Workers     []WorkerState    `json:"workers,omitempty"`
	Checksum    string           `json:"checksum"`
}

// Check validates that a loaded checkpoint belongs to this study: same
// algorithm, same config/problem fingerprint. An empty expected
// fingerprint skips that half of the check.
func (cp *Checkpoint) Check(algorithm, fingerprint string) error {
	if cp.Algorithm != algorithm {
		return fmt.Errorf("study: checkpoint is for algorithm %q, not %q", cp.Algorithm, algorithm)
	}
	if fingerprint != "" && cp.Fingerprint != fingerprint {
		return fmt.Errorf("study: checkpoint fingerprint %.12s… does not match study %.12s… (different config or problem)", cp.Fingerprint, fingerprint)
	}
	return nil
}

// Counter returns a named algorithm-specific counter (0 when absent).
func (cp *Checkpoint) Counter(name string) int64 { return cp.Counters[name] }

// checksum computes the SHA-256 of the checkpoint's canonical compact JSON
// with the Checksum field empty. Marshalling is deterministic: struct
// field order is fixed, F64 uses one canonical spelling per value, and
// encoding/json sorts map keys.
func checksum(cp *Checkpoint) (string, error) {
	saved := cp.Checksum
	cp.Checksum = ""
	data, err := json.Marshal(cp)
	cp.Checksum = saved
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// Save writes the checkpoint to path atomically: temp file in the same
// directory, fsync, rename, directory fsync. The checkpoint's Schema and
// Checksum fields are filled in. A crash anywhere in the sequence leaves
// the previous file intact (the faultinject site sits in the window
// between data write and rename, where the kill/resume tests crash it).
func Save(path string, cp *Checkpoint) error {
	cp.Schema = Schema
	sum, err := checksum(cp)
	if err != nil {
		return fmt.Errorf("study: encode checkpoint: %v", err)
	}
	cp.Checksum = sum
	data, err := json.MarshalIndent(cp, "", " ")
	if err != nil {
		return fmt.Errorf("study: encode checkpoint: %v", err)
	}
	data = append(data, '\n')
	return atomicWrite(path, data, faultinject.SiteStudySave, "checkpoint")
}

// atomicWrite is the shared crash-safe publication sequence used by
// checkpoint and manifest saves: temp file in the destination directory,
// fsync, rename over the target, directory fsync. site is planted in the
// window between data write and rename — the spot the kill/resume tests
// crash in — and what names the artifact in error messages.
func atomicWrite(path string, data []byte, site faultinject.Site, what string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-")
	if err != nil {
		return fmt.Errorf("study: %s temp file: %v", what, err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return fail(fmt.Errorf("study: write %s: %v", what, err))
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("study: sync %s: %v", what, err))
	}
	if err := tmp.Close(); err != nil {
		return fail(fmt.Errorf("study: close %s: %v", what, err))
	}
	if err := faultinject.Do(site); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("study: publish %s: %v", what, err)
	}
	// Persist the rename itself. Failure here is not fatal to atomicity
	// (the rename is already on disk or not as a unit); report it anyway.
	if d, err := os.Open(dir); err == nil {
		serr := d.Sync()
		d.Close()
		if serr != nil {
			return fmt.Errorf("study: sync %s directory: %v", what, serr)
		}
	}
	return nil
}

// Load reads and validates a checkpoint: strict JSON (unknown fields and
// trailing data refused), schema version match, checksum match. A
// truncated, torn, or hand-edited file fails here instead of resuming a
// half-loaded study.
func Load(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// Decode validates checkpoint bytes (see Load).
func Decode(data []byte) (*Checkpoint, error) {
	cp := &Checkpoint{}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(cp); err != nil {
		return nil, fmt.Errorf("study: corrupt checkpoint: %v", err)
	}
	var trailer json.RawMessage
	if err := dec.Decode(&trailer); err == nil || !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("study: corrupt checkpoint: trailing data")
	}
	if cp.Schema != Schema {
		return nil, fmt.Errorf("study: checkpoint schema %d, this binary reads %d", cp.Schema, Schema)
	}
	if cp.Checksum == "" {
		return nil, fmt.Errorf("study: checkpoint missing checksum")
	}
	sum, err := checksum(cp)
	if err != nil {
		return nil, err
	}
	if sum != cp.Checksum {
		return nil, fmt.Errorf("study: checkpoint checksum mismatch (file corrupt or hand-edited)")
	}
	return cp, nil
}

// Controller drives checkpointing from inside an optimizer loop. The
// optimizer calls Due at each boundary and Save when due (or when
// stopping); a nil *Controller disables checkpointing entirely.
type Controller struct {
	// Path is the checkpoint file.
	Path string
	// Every is the checkpoint cadence in evaluations; <= 0 saves only on
	// stop and completion.
	Every int64
	// AfterSave, when set, runs after each successful Save. Returning an
	// error (conventionally ErrStop) makes Save return it, which optimizers
	// treat as a stop request at the just-saved boundary. Tests use this to
	// interrupt a run at a deterministic point.
	AfterSave func(*Checkpoint) error

	lastSaved int64
	saves     int64
}

// Due reports whether the cadence calls for a checkpoint at evals.
func (c *Controller) Due(evals int64) bool {
	if c == nil || c.Path == "" {
		return false
	}
	return c.Every > 0 && evals-c.lastSaved >= c.Every
}

// Enabled reports whether the controller can save at all.
func (c *Controller) Enabled() bool { return c != nil && c.Path != "" }

// Save persists the checkpoint and runs AfterSave. The returned error is
// ErrStop (possibly wrapped) when the hook requested interruption.
func (c *Controller) Save(cp *Checkpoint) error {
	if !c.Enabled() {
		return nil
	}
	if err := Save(c.Path, cp); err != nil {
		return err
	}
	c.lastSaved = cp.Evaluations
	c.saves++
	if c.AfterSave != nil {
		return c.AfterSave(cp)
	}
	return nil
}

// Saves returns how many checkpoints this controller has written.
func (c *Controller) Saves() int64 {
	if c == nil {
		return 0
	}
	return c.saves
}

// Fingerprint hashes an ordered list of identity strings into a stable
// hex digest. Each part is length-prefixed so ("ab","c") and ("a","bc")
// differ. Optimizers combine their algorithm-config identity with the
// eval problem fingerprint; perf-only knobs (worker counts, cache
// sharing) are deliberately excluded so a resume may change parallelism.
func Fingerprint(parts ...string) string {
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(p)))
		h.Write(lenBuf[:])
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Stopped reports whether a stop channel has been closed (nil channel:
// never). Optimizers poll it at loop boundaries.
func Stopped(stop <-chan struct{}) bool {
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

// Loop drives the per-boundary checkpoint protocol every optimizer
// follows. The invariant it maintains: a checkpoint written on a STOP
// always describes a boundary whose iteration completed *before* the stop
// signal could have influenced any evaluation. At each boundary the
// optimizer offers an encoding of its current state; on a cadence save
// the current boundary is written (no stop has fired, so it is clean),
// but on a stop the *previous* boundary's pending encoding is written
// instead — if the stop channel is also threaded into the evaluation
// layer (eval.WithStop), the just-finished iteration may hold abandoned
// garbage evaluations, and resuming from the prior boundary replays that
// iteration deterministically instead of trusting it. Replaying a
// completed iteration is free, bit-wise: the engines are deterministic
// functions of their checkpointed state.
type Loop struct {
	Ctrl *Controller
	Stop <-chan struct{}

	pending *Checkpoint
}

// Boundary is called at the top of each optimizer iteration with an
// encoder of the current (just-completed-boundary) state. It returns
// stopped=true when the optimizer must mark its result interrupted and
// exit now; a non-nil error is a hard checkpoint failure.
func (l *Loop) Boundary(encode func() *Checkpoint) (stopped bool, err error) {
	if Stopped(l.Stop) {
		if l.Ctrl.Enabled() && l.pending != nil {
			if err := l.Ctrl.Save(l.pending); err != nil && !errors.Is(err, ErrStop) {
				return true, err
			}
		}
		return true, nil
	}
	if !l.Ctrl.Enabled() {
		return false, nil
	}
	l.pending = encode()
	if l.Ctrl.Due(l.pending.Evaluations) {
		if err := l.Ctrl.Save(l.pending); err != nil {
			if errors.Is(err, ErrStop) {
				return true, nil
			}
			return true, err
		}
	}
	return false, nil
}

// Finish writes the Final checkpoint at successful completion, marking
// the study done so a later resume short-circuits to result assembly.
func (l *Loop) Finish(encode func() *Checkpoint) error {
	if !l.Ctrl.Enabled() {
		return nil
	}
	cp := encode()
	cp.Final = true
	if err := l.Ctrl.Save(cp); err != nil && !errors.Is(err, ErrStop) {
		return err
	}
	return nil
}

// ProblemFingerprint derives the problem half of a study fingerprint:
// problems exposing their own Fingerprint (eval.Problem does) are asked;
// anything else is identified by name, dimensions and bounds.
func ProblemFingerprint(p moo.Problem) string {
	if fp, ok := p.(interface{ Fingerprint() string }); ok {
		return fp.Fingerprint()
	}
	lo, hi := p.Bounds()
	return fmt.Sprintf("problem=%s dim=%d obj=%d lo=%v hi=%v",
		p.Name(), p.Dim(), p.NumObjectives(), lo, hi)
}
