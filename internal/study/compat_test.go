package study

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the committed schema-compat checkpoint in testdata")

// compatCheckpoint is the reference state for the schema-compatibility
// test: every field of the version-1 checkpoint layout populated with
// fixed values, including hex-float edge cases (denormal, negative zero,
// infinities) that must survive the file round-trip bit for bit. NaN is
// deliberately absent — reflect.DeepEqual cannot compare it; the fuzz test
// covers NaN decoding.
func compatCheckpoint() *Checkpoint {
	sol := func(base float64) Solution {
		return Solution{
			X:         []F64{F64(base), F64(base / 3), F64(-base)},
			F:         []F64{F64(base * base), F64(1 / (base + 1))},
			Violation: F64(base / 7),
			Metrics: []F64{F64(base + 1), F64(base + 2), F64(base + 3),
				F64(base + 4), F64(base + 5), F64(base + 6)},
		}
	}
	edge := Solution{
		X: []F64{F64(math.SmallestNonzeroFloat64), F64(math.Copysign(0, -1)), F64(math.MaxFloat64)},
		F: []F64{F64(math.Inf(1)), F64(math.Inf(-1))},
	}
	return &Checkpoint{
		Algorithm:   "compat-test",
		Fingerprint: Fingerprint("compat-v1", "problem=reference"),
		Evaluations: 1234,
		Iteration:   56,
		Counters:    map[string]int64{"accepted": 78, "resets": 9},
		RNG:         RNGState{1, 2, 3, math.MaxUint64},
		ExtraRNGs:   []RNGState{{5, 6, 7, 8}},
		Archive: &ArchiveState{
			Kind:      "crowding",
			Capacity:  100,
			Divisions: 8,
			Solutions: []Solution{sol(0.25), sol(0.75), edge},
		},
		Population: []Solution{sol(0.5)},
		Elite:      []Solution{sol(0.125)},
		Grid:       []Solution{sol(0.625)},
		Workers: []WorkerState{
			{RNG: RNGState{9, 10, 11, 12}, Current: sol(0.375), Spent: 13, Iter: 14},
			{RNG: RNGState{15, 16, 17, 18}, Current: Solution{X: []F64{}, F: []F64{}}, Spent: 0, Iter: 0},
		},
	}
}

// TestSchemaCompat pins the on-disk checkpoint format: the committed
// testdata file was written by an earlier build, and this build must still
// load it to the exact same in-memory state. Any accidental change to the
// JSON layout, the F64 spelling, or the checksum canonicalization fails
// here (Load recomputes the checksum with the *current* marshaller, so a
// drifted encoder no longer matches the stored digest). After an
// intentional schema bump, regenerate with:
//
//	go test ./internal/study -run TestSchemaCompat -update
func TestSchemaCompat(t *testing.T) {
	path := filepath.Join("testdata", "schema-v1.ckpt")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := Save(path, compatCheckpoint()); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
	}

	got, err := Load(path)
	if err != nil {
		t.Fatalf("this build no longer reads the committed schema-v%d checkpoint: %v\n(if the format changed intentionally, bump Schema and regenerate with -update)", Schema, err)
	}
	want := compatCheckpoint()
	want.Schema = Schema
	if want.Checksum, err = checksum(want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("committed checkpoint decoded to a different state than this build produces:\ngot  %+v\nwant %+v", got, want)
	}
}
