package study_test

import (
	"errors"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"

	"aedbmls/internal/benchproblems"
	"aedbmls/internal/core"
	"aedbmls/internal/faultinject"
	"aedbmls/internal/moo"
	"aedbmls/internal/nsga2"
	"aedbmls/internal/study"
)

// The kill/resume equivalence tests are the honest version of the
// checkpoint property: instead of a cooperative AfterSave interruption,
// the checkpointed study runs in a subprocess that faultinject SIGKILLs
// inside study.Save's crash window (temp file written, rename not yet
// issued). The parent then verifies the process really died of SIGKILL,
// loads whatever checkpoint survived on disk, resumes it in-process, and
// requires the final front to be bit-identical to an uninterrupted golden
// run.

const (
	helperEnv = "AEDB_KILL_HELPER" // mls | nsga2
	ckptEnv   = "AEDB_KILL_CKPT"   // checkpoint path handed to the child
)

func mlsKillConfig() core.Config {
	cfg := core.TestConfig()
	cfg.Seed = 424242
	return cfg
}

func nsgaKillConfig() nsga2.Config {
	cfg := nsga2.TestConfig()
	cfg.Seed = 434343
	return cfg
}

// TestHelperKillRun is not a test of its own: it is the subprocess body
// for TestKillResumeEquivalence. Armed through AEDB_FAULTS, it runs a
// checkpointed study and is SIGKILLed mid-save; reaching the end means the
// kill never fired, which the parent detects through the clean exit.
func TestHelperKillRun(t *testing.T) {
	alg := os.Getenv(helperEnv)
	if alg == "" {
		t.Skip("subprocess helper for TestKillResumeEquivalence")
	}
	if _, err := faultinject.ConfigureFromEnv(); err != nil {
		t.Fatal(err)
	}
	p := benchproblems.ZDT1(6)
	switch alg {
	case "mls":
		cfg := mlsKillConfig()
		cfg.Checkpoint = &study.Controller{Path: os.Getenv(ckptEnv), Every: 40}
		if _, err := core.OptimizeSequential(p, cfg, nil); err != nil {
			t.Fatal(err)
		}
	case "nsga2":
		cfg := nsgaKillConfig()
		cfg.Checkpoint = &study.Controller{Path: os.Getenv(ckptEnv), Every: 60}
		if _, err := nsga2.Optimize(p, cfg); err != nil {
			t.Fatal(err)
		}
	default:
		t.Fatalf("unknown helper algorithm %q", alg)
	}
}

// killCheckpointedRun executes the helper subprocess with a kill rule
// armed on the second checkpoint save and asserts it died of SIGKILL.
func killCheckpointedRun(t *testing.T, alg, ckpt string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestHelperKillRun$")
	cmd.Env = append(os.Environ(),
		helperEnv+"="+alg,
		ckptEnv+"="+ckpt,
		faultinject.EnvVar+"=site=study.save,kind=kill,after=2")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("helper exited cleanly; the armed kill never fired:\n%s", out)
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("running helper: %v\n%s", err, out)
	}
	ws, ok := ee.Sys().(syscall.WaitStatus)
	if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("helper did not die of SIGKILL: %v\n%s", err, out)
	}
}

// loadSurvivor loads the checkpoint that survived the crash and asserts it
// is a mid-run (non-Final) boundary, so the resume below genuinely replays
// work rather than short-circuiting.
func loadSurvivor(t *testing.T, ckpt string) *study.Checkpoint {
	t.Helper()
	cp, err := study.Load(ckpt)
	if err != nil {
		t.Fatalf("no usable checkpoint survived the kill: %v", err)
	}
	if cp.Final {
		t.Fatal("surviving checkpoint is Final; the kill fired too late to exercise resume")
	}
	return cp
}

func sameFronts(t *testing.T, want, got []*moo.Solution) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("front sizes differ: %d vs %d", len(want), len(got))
	}
	for i := range want {
		for j := range want[i].X {
			if math.Float64bits(want[i].X[j]) != math.Float64bits(got[i].X[j]) {
				t.Fatalf("solution %d: X[%d] = %v vs %v", i, j, want[i].X[j], got[i].X[j])
			}
		}
		for j := range want[i].F {
			if math.Float64bits(want[i].F[j]) != math.Float64bits(got[i].F[j]) {
				t.Fatalf("solution %d: F[%d] = %v vs %v", i, j, want[i].F[j], got[i].F[j])
			}
		}
	}
}

// TestKillResumeEquivalence is the hard property of ISSUE.md: a study
// SIGKILLed mid-run and resumed from its surviving checkpoint produces a
// final archive bit-identical to the uninterrupted golden run — for the
// core MLS and for one MOEA.
func TestKillResumeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill/resume test")
	}
	p := benchproblems.ZDT1(6)

	t.Run("mls", func(t *testing.T) {
		golden, err := core.OptimizeSequential(p, mlsKillConfig(), nil)
		if err != nil {
			t.Fatal(err)
		}
		ckpt := filepath.Join(t.TempDir(), "mls.ckpt")
		killCheckpointedRun(t, "mls", ckpt)
		cfg := mlsKillConfig()
		cfg.Resume = loadSurvivor(t, ckpt)
		res, err := core.OptimizeSequential(p, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		sameFronts(t, golden.Front, res.Front)
		if res.Evaluations != golden.Evaluations || res.Accepted != golden.Accepted || res.Resets != golden.Resets {
			t.Fatalf("counters diverged: resumed {%d %d %d}, golden {%d %d %d}",
				res.Evaluations, res.Accepted, res.Resets,
				golden.Evaluations, golden.Accepted, golden.Resets)
		}
	})

	t.Run("nsga2", func(t *testing.T) {
		golden, err := nsga2.Optimize(p, nsgaKillConfig())
		if err != nil {
			t.Fatal(err)
		}
		ckpt := filepath.Join(t.TempDir(), "nsga2.ckpt")
		killCheckpointedRun(t, "nsga2", ckpt)
		cfg := nsgaKillConfig()
		cfg.Resume = loadSurvivor(t, ckpt)
		res, err := nsga2.Optimize(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sameFronts(t, golden.Front, res.Front)
		if res.Evaluations != golden.Evaluations {
			t.Fatalf("evaluations diverged: resumed %d, golden %d", res.Evaluations, golden.Evaluations)
		}
	})
}
