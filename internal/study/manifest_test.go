package study

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSanitizeName is the refusal wall for study names that become
// checkpoint file paths: traversal, separators, dotfiles and
// flag-lookalikes must never reach the filesystem.
func TestSanitizeName(t *testing.T) {
	bad := []string{
		"",
		"..",
		"../evil",
		"a/b",
		`a\b`,
		".hidden",
		"-flag",
		"sp ace",
		"semi;colon",
		"nul\x00byte",
		"uniécode",
		strings.Repeat("x", 65),
	}
	for _, name := range bad {
		if err := SanitizeName(name); err == nil {
			t.Errorf("SanitizeName(%q) accepted, want refusal", name)
		}
		if _, err := StudyPath(t.TempDir(), name); err == nil {
			t.Errorf("StudyPath(%q) accepted, want refusal", name)
		}
	}
	good := []string{"ok", "ok-name_1.2", "A", strings.Repeat("x", 64)}
	for _, name := range good {
		if err := SanitizeName(name); err != nil {
			t.Errorf("SanitizeName(%q): %v, want accept", name, err)
		}
	}
}

// TestStudyPathStaysInDir double-checks the property SanitizeName
// exists for: every accepted name maps inside the checkpoint dir.
func TestStudyPathStaysInDir(t *testing.T) {
	dir := t.TempDir()
	p, err := StudyPath(dir, "ok-name")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Dir(p) != dir {
		t.Fatalf("StudyPath escaped dir: %q", p)
	}
	if filepath.Base(p) != "ok-name.study.ckpt" {
		t.Fatalf("unexpected checkpoint file name %q", filepath.Base(p))
	}
}

// TestManifestRoundTrip saves and reloads a manifest, and checks a
// missing manifest loads as empty (the fresh-directory case).
func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := ManifestPath(dir)

	m, err := LoadManifest(path)
	if err != nil {
		t.Fatalf("missing manifest should load empty: %v", err)
	}
	if len(m.Studies) != 0 {
		t.Fatalf("fresh manifest has %d studies", len(m.Studies))
	}

	m.Studies["a"] = ManifestEntry{Spec: json.RawMessage(`{"name":"a"}`)}
	m.Studies["b"] = ManifestEntry{Spec: json.RawMessage(`{"name":"b"}`), Stopped: true}
	if err := SaveManifest(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Studies) != 2 || !got.Studies["b"].Stopped || got.Studies["a"].Stopped {
		t.Fatalf("reloaded manifest wrong: %+v", got.Studies)
	}
	var spec struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(got.Studies["a"].Spec, &spec); err != nil || spec.Name != "a" {
		t.Fatalf("spec not preserved: %s (%v)", got.Studies["a"].Spec, err)
	}
}

// TestLoadManifestRefusesCorruption mirrors the checkpoint corruption
// wall: a torn or edited manifest must refuse to load, not half-load.
func TestLoadManifestRefusesCorruption(t *testing.T) {
	dir := t.TempDir()
	path := ManifestPath(dir)
	m := NewManifest()
	m.Studies["a"] = ManifestEntry{Spec: json.RawMessage(`{"name":"a"}`)}
	if err := SaveManifest(path, m); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"truncated":     data[:len(data)/2],
		"bit flip":      append(append([]byte{}, data[:40]...), append([]byte{data[40] ^ 1}, data[41:]...)...),
		"trailing data": append(append([]byte{}, data...), []byte("{}")...),
		"unknown field": []byte(`{"schema":1,"studies":{},"checksum":"x","extra":1}`),
		"wrong schema":  []byte(`{"schema":99,"studies":{},"checksum":"x"}`),
	}
	for name, corrupt := range cases {
		if err := os.WriteFile(path, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadManifest(path); err == nil {
			t.Errorf("%s: corrupt manifest loaded without error", name)
		}
	}
}
