package study

import (
	"fmt"
	"math"
	"strconv"

	"aedbmls/internal/archive"
	"aedbmls/internal/eval"
	"aedbmls/internal/moo"
	"aedbmls/internal/rng"
)

// F64 is a float64 that marshals to a shortest-round-trip hexadecimal
// string ("0x1.91eb851eb851fp+01") instead of a decimal JSON number.
// Checkpoints must restore solutions and objectives to the exact bits the
// optimizer held — decimal shortest-form would survive a Go round-trip
// too, but hex floats make bit-exactness structural rather than a property
// of two parsers agreeing, and they diff cleanly against the golden-metrics
// corpus which uses the same convention. NaN and infinities are
// special-cased since IEEE 754 hex notation has no spelling for them.
type F64 float64

// MarshalJSON implements json.Marshaler.
func (f F64) MarshalJSON() ([]byte, error) {
	v := float64(f)
	var s string
	switch {
	case math.IsNaN(v):
		s = "NaN"
	case math.IsInf(v, 1):
		s = "+Inf"
	case math.IsInf(v, -1):
		s = "-Inf"
	default:
		s = strconv.FormatFloat(v, 'x', -1, 64)
	}
	return strconv.AppendQuote(nil, s), nil
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *F64) UnmarshalJSON(b []byte) error {
	s, err := strconv.Unquote(string(b))
	if err != nil {
		return fmt.Errorf("study: F64 must be a quoted hex-float string, got %s", b)
	}
	switch s {
	case "NaN":
		*f = F64(math.NaN())
		return nil
	case "+Inf":
		*f = F64(math.Inf(1))
		return nil
	case "-Inf":
		*f = F64(math.Inf(-1))
		return nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return fmt.Errorf("study: bad F64 %q: %v", s, err)
	}
	*f = F64(v)
	return nil
}

// RNGState is a serialized xoshiro256** state. uint64 survives JSON
// exactly when decoded into a typed field (precision is only lost through
// interface{}/float64 decoding, which typed fields never hit).
type RNGState [4]uint64

// StateOf captures a generator's state.
func StateOf(r *rng.Rand) RNGState { return RNGState(r.State()) }

// Rand reconstructs a generator that continues the captured stream exactly.
func (s RNGState) Rand() *rng.Rand { return rng.FromState([4]uint64(s)) }

// Solution is a serialized moo.Solution. Metrics carries the eval.Metrics
// Aux payload (in struct declaration order) when present, so reporting on
// a resumed archive prints the same numbers the uninterrupted run would.
type Solution struct {
	X         []F64 `json:"x"`
	F         []F64 `json:"f"`
	Violation F64   `json:"violation"`
	Metrics   []F64 `json:"metrics,omitempty"`
}

// metricsLen is the field count of eval.Metrics as serialized here.
const metricsLen = 6

// EncodeSolution serializes one solution.
func EncodeSolution(s *moo.Solution) Solution {
	out := Solution{
		X:         toF64s(s.X),
		F:         toF64s(s.F),
		Violation: F64(s.Violation),
	}
	if m, ok := eval.MetricsOf(s); ok {
		out.Metrics = []F64{
			F64(m.EnergyDBmSum), F64(m.Coverage), F64(m.Forwardings),
			F64(m.BroadcastTime), F64(m.EnergyMJ), F64(m.Collisions),
		}
	}
	return out
}

// Decode reconstructs the moo.Solution, validating dimensions against the
// problem (dim decision variables, nobj objectives; pass 0 to skip either
// check — e.g. for problems the caller cannot size).
func (s Solution) Decode(dim, nobj int) (*moo.Solution, error) {
	if dim > 0 && len(s.X) != dim {
		return nil, fmt.Errorf("study: solution has %d variables, problem has %d", len(s.X), dim)
	}
	if nobj > 0 && len(s.F) != nobj {
		return nil, fmt.Errorf("study: solution has %d objectives, problem has %d", len(s.F), nobj)
	}
	out := &moo.Solution{
		X:         fromF64s(s.X),
		F:         fromF64s(s.F),
		Violation: float64(s.Violation),
	}
	switch len(s.Metrics) {
	case 0:
	case metricsLen:
		out.Aux = eval.Metrics{
			EnergyDBmSum:  float64(s.Metrics[0]),
			Coverage:      float64(s.Metrics[1]),
			Forwardings:   float64(s.Metrics[2]),
			BroadcastTime: float64(s.Metrics[3]),
			EnergyMJ:      float64(s.Metrics[4]),
			Collisions:    float64(s.Metrics[5]),
		}
	default:
		return nil, fmt.Errorf("study: solution metrics have %d fields, want %d", len(s.Metrics), metricsLen)
	}
	return out, nil
}

// EncodeSolutions serializes a slice preserving order.
func EncodeSolutions(sols []*moo.Solution) []Solution {
	out := make([]Solution, len(sols))
	for i, s := range sols {
		out[i] = EncodeSolution(s)
	}
	return out
}

// DecodeSolutions reconstructs a slice, validating every member.
func DecodeSolutions(enc []Solution, dim, nobj int) ([]*moo.Solution, error) {
	out := make([]*moo.Solution, len(enc))
	for i, e := range enc {
		s, err := e.Decode(dim, nobj)
		if err != nil {
			return nil, fmt.Errorf("study: solution %d: %v", i, err)
		}
		out[i] = s
	}
	return out, nil
}

// ArchiveState is a serialized archive.State.
type ArchiveState struct {
	Kind      string     `json:"kind"`
	Capacity  int        `json:"capacity,omitempty"`
	Divisions int        `json:"divisions,omitempty"`
	Solutions []Solution `json:"solutions"`
}

// EncodeArchive captures an archive (must be one of the stock
// implementations in internal/archive).
func EncodeArchive(ar archive.Interface) (*ArchiveState, error) {
	st, err := archive.CaptureState(ar)
	if err != nil {
		return nil, err
	}
	return &ArchiveState{
		Kind:      st.Kind,
		Capacity:  st.Capacity,
		Divisions: st.Divisions,
		Solutions: EncodeSolutions(st.Solutions),
	}, nil
}

// DecodeArchive reconstructs the archive with members in captured order.
func DecodeArchive(st *ArchiveState, dim, nobj int) (archive.Interface, error) {
	if st == nil {
		return nil, fmt.Errorf("study: checkpoint has no archive")
	}
	sols, err := DecodeSolutions(st.Solutions, dim, nobj)
	if err != nil {
		return nil, err
	}
	return archive.RestoreState(&archive.State{
		Kind:      st.Kind,
		Capacity:  st.Capacity,
		Divisions: st.Divisions,
		Solutions: sols,
	})
}

// WorkerState is one MLS virtual worker's resumable state (see
// core.OptimizeSequential): its private RNG stream, its current solution,
// and its budget/iteration counters.
type WorkerState struct {
	RNG     RNGState `json:"rng"`
	Current Solution `json:"current"`
	Spent   int      `json:"spent"`
	Iter    int      `json:"iter"`
}

func toF64s(xs []float64) []F64 {
	out := make([]F64, len(xs))
	for i, x := range xs {
		out[i] = F64(x)
	}
	return out
}

func fromF64s(xs []F64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
