package study

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aedbmls/internal/archive"
	"aedbmls/internal/eval"
	"aedbmls/internal/moo"
	"aedbmls/internal/rng"
)

// awkwardFloats are the values decimal round-trips get wrong first.
var awkwardFloats = []float64{
	0, math.Copysign(0, -1), 1, -1, 0.1, 1.0 / 3.0,
	math.Pi, -math.E, 1e-300, -1e300, 5e-324, // smallest subnormal
	math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64,
	math.NaN(), math.Inf(1), math.Inf(-1),
	1e18, -1e18,
}

func TestF64RoundTripBits(t *testing.T) {
	r := rng.New(11)
	vals := append([]float64(nil), awkwardFloats...)
	for i := 0; i < 1000; i++ {
		vals = append(vals, math.Float64frombits(r.Uint64()))
	}
	for _, v := range vals {
		data, err := json.Marshal(F64(v))
		if err != nil {
			t.Fatal(err)
		}
		var got F64
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		want := math.Float64bits(v)
		have := math.Float64bits(float64(got))
		// All NaN payloads collapse to the one canonical NaN; that is fine
		// because no computation in this repo distinguishes NaN payloads.
		if math.IsNaN(v) && math.IsNaN(float64(got)) {
			continue
		}
		if want != have {
			t.Fatalf("F64 round trip changed bits: %x -> %s -> %x", want, data, have)
		}
	}
}

func TestF64RejectsGarbage(t *testing.T) {
	for _, in := range []string{`12.5`, `"0xzp+1"`, `"hello"`, `""`, `true`} {
		var f F64
		if err := json.Unmarshal([]byte(in), &f); err == nil {
			t.Errorf("F64 accepted %s", in)
		}
	}
}

func testSolution(r *rng.Rand, withMetrics bool) *moo.Solution {
	s := &moo.Solution{
		X:         []float64{r.Float64(), r.Float64(), r.Float64(), r.Float64(), r.Float64()},
		F:         []float64{r.Range(-400, 0), -r.Range(0, 100), r.Range(0, 5)},
		Violation: r.Range(0, 2),
	}
	if withMetrics {
		s.Aux = eval.Metrics{
			EnergyDBmSum: r.Range(0, 400), Coverage: r.Range(0, 100),
			Forwardings: r.Range(0, 50), BroadcastTime: r.Range(0, 5),
			EnergyMJ: r.Range(0, 1), Collisions: r.Range(0, 10),
		}
	}
	return s
}

func sameSolutionBits(t *testing.T, a, b *moo.Solution) {
	t.Helper()
	for i := range a.X {
		if math.Float64bits(a.X[i]) != math.Float64bits(b.X[i]) {
			t.Fatalf("X[%d] bits differ", i)
		}
	}
	for i := range a.F {
		if math.Float64bits(a.F[i]) != math.Float64bits(b.F[i]) {
			t.Fatalf("F[%d] bits differ", i)
		}
	}
	if math.Float64bits(a.Violation) != math.Float64bits(b.Violation) {
		t.Fatal("Violation bits differ")
	}
	am, aok := eval.MetricsOf(a)
	bm, bok := eval.MetricsOf(b)
	if aok != bok || am != bm {
		t.Fatalf("metrics differ: %v/%v vs %v/%v", am, aok, bm, bok)
	}
}

func TestSolutionRoundTrip(t *testing.T) {
	r := rng.New(5)
	for i := 0; i < 50; i++ {
		s := testSolution(r, i%2 == 0)
		enc := EncodeSolution(s)
		data, err := json.Marshal(enc)
		if err != nil {
			t.Fatal(err)
		}
		var dec Solution
		if err := json.Unmarshal(data, &dec); err != nil {
			t.Fatal(err)
		}
		got, err := dec.Decode(5, 3)
		if err != nil {
			t.Fatal(err)
		}
		sameSolutionBits(t, s, got)
	}
}

func TestSolutionDecodeValidates(t *testing.T) {
	s := EncodeSolution(testSolution(rng.New(1), true))
	if _, err := s.Decode(4, 3); err == nil {
		t.Error("accepted wrong dim")
	}
	if _, err := s.Decode(5, 2); err == nil {
		t.Error("accepted wrong objective count")
	}
	s.Metrics = s.Metrics[:3]
	if _, err := s.Decode(5, 3); err == nil {
		t.Error("accepted truncated metrics")
	}
}

func testCheckpoint(t *testing.T) *Checkpoint {
	t.Helper()
	r := rng.New(77)
	ar := archive.NewAGA(10, 4)
	for i := 0; i < 40; i++ {
		ar.Add(testSolution(r, true))
	}
	arch, err := EncodeArchive(ar)
	if err != nil {
		t.Fatal(err)
	}
	return &Checkpoint{
		Algorithm:   "mls",
		Fingerprint: Fingerprint("test", "fp"),
		Evaluations: 1234,
		Iteration:   7,
		Counters:    map[string]int64{"accepted": 99, "resets": 3},
		RNG:         StateOf(r),
		ExtraRNGs:   []RNGState{StateOf(rng.New(8))},
		Archive:     arch,
		Workers: []WorkerState{
			{RNG: StateOf(rng.New(9)), Current: EncodeSolution(testSolution(r, true)), Spent: 55, Iter: 6},
		},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	cp := testCheckpoint(t)
	if err := Save(path, cp); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Algorithm != cp.Algorithm || got.Evaluations != cp.Evaluations ||
		got.Iteration != cp.Iteration || got.Counter("accepted") != 99 {
		t.Fatalf("scalar fields lost: %+v", got)
	}
	if got.RNG != cp.RNG || got.ExtraRNGs[0] != cp.ExtraRNGs[0] || got.Workers[0].RNG != cp.Workers[0].RNG {
		t.Fatal("rng state lost")
	}
	// Archive contents round-trip bit-exactly, in order.
	origArch, err := DecodeArchive(cp.Archive, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	gotArch, err := DecodeArchive(got.Archive, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	os1, os2 := origArch.Contents(), gotArch.Contents()
	if len(os1) != len(os2) {
		t.Fatalf("archive sizes differ: %d vs %d", len(os1), len(os2))
	}
	for i := range os1 {
		sameSolutionBits(t, os1[i], os2[i])
	}
	// Saving the identical state twice produces identical bytes (canonical
	// encoding — nothing timestamped or map-order dependent).
	path2 := filepath.Join(dir, "ck2.json")
	if err := Save(path2, got); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(path)
	b2, _ := os.ReadFile(path2)
	if string(b1) != string(b2) {
		t.Fatal("identical checkpoints serialized differently")
	}
}

func TestSaveLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	if err := Save(path, testCheckpoint(t)); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "ck.json" {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("directory holds %v, want only ck.json", names)
	}
}

func TestLoadRefusesCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	if err := Save(path, testCheckpoint(t)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Every strict prefix must be refused — a torn write can stop anywhere.
	// (A prefix that only drops trailing whitespace is still the complete
	// document and rightly loads.)
	for n := 0; n < len(data); n++ {
		if strings.TrimSpace(string(data[n:])) == "" {
			continue
		}
		if _, err := Decode(data[:n]); err == nil {
			t.Fatalf("accepted %d-byte truncation of a %d-byte checkpoint", n, len(data))
		}
	}
	// Flipping any single byte of the payload must be caught by the
	// checksum or the JSON parser — or, in the one benign case (Go's JSON
	// key matching is case-insensitive, so flipping case inside a key name
	// leaves the document meaning unchanged), the decode must yield content
	// identical to the original. Sample positions to keep it fast.
	orig, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	origJSON, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n += 13 {
		mut := append([]byte(nil), data...)
		mut[n] ^= 0x20
		got, err := Decode(mut)
		if err != nil {
			continue
		}
		gotJSON, err := json.Marshal(got)
		if err != nil || string(gotJSON) != string(origJSON) {
			t.Fatalf("byte %d flipped: decode succeeded with DIFFERENT content", n)
		}
	}
	// Trailing garbage.
	if _, err := Decode(append(append([]byte(nil), data...), []byte("{}")...)); err == nil {
		t.Fatal("accepted checkpoint with trailing data")
	}
	// Unknown fields (a newer writer's file).
	withExtra := strings.Replace(string(data), `"schema":`, `"from_the_future": 1, "schema":`, 1)
	if _, err := Decode([]byte(withExtra)); err == nil {
		t.Fatal("accepted checkpoint with unknown fields")
	}
}

func TestLoadRefusesSchemaMismatch(t *testing.T) {
	cp := testCheckpoint(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	if err := Save(path, cp); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	// A schema bump alone (checksum recomputed to match) must still be
	// refused — version check is independent of integrity check.
	cp2, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	cp2.Schema = Schema + 1
	sum, err := checksum(cp2)
	if err != nil {
		t.Fatal(err)
	}
	cp2.Checksum = sum
	raw, _ := json.Marshal(cp2)
	if _, err := Decode(raw); err == nil {
		t.Fatal("accepted checkpoint with future schema")
	}
}

func TestCheckpointCheck(t *testing.T) {
	cp := &Checkpoint{Algorithm: "nsga2", Fingerprint: Fingerprint("a")}
	if err := cp.Check("nsga2", Fingerprint("a")); err != nil {
		t.Fatal(err)
	}
	if err := cp.Check("mls", Fingerprint("a")); err == nil {
		t.Error("accepted wrong algorithm")
	}
	if err := cp.Check("nsga2", Fingerprint("b")); err == nil {
		t.Error("accepted wrong fingerprint")
	}
	if err := cp.Check("nsga2", ""); err != nil {
		t.Error("empty expected fingerprint should skip the check")
	}
}

func TestFingerprintBoundaries(t *testing.T) {
	if Fingerprint("ab", "c") == Fingerprint("a", "bc") {
		t.Fatal("fingerprint ignores part boundaries")
	}
	if Fingerprint("x") != Fingerprint("x") {
		t.Fatal("fingerprint unstable")
	}
}

func TestControllerCadence(t *testing.T) {
	dir := t.TempDir()
	c := &Controller{Path: filepath.Join(dir, "ck.json"), Every: 100}
	if c.Due(50) {
		t.Fatal("due before cadence")
	}
	if !c.Due(100) {
		t.Fatal("not due at cadence")
	}
	cp := &Checkpoint{Algorithm: "t", Evaluations: 100}
	if err := c.Save(cp); err != nil {
		t.Fatal(err)
	}
	if c.Due(150) {
		t.Fatal("due again immediately after save")
	}
	if !c.Due(200) {
		t.Fatal("not due one cadence after save")
	}
	if c.Saves() != 1 {
		t.Fatalf("Saves = %d", c.Saves())
	}

	var nilC *Controller
	if nilC.Due(1000) || nilC.Saves() != 0 {
		t.Fatal("nil controller misbehaves")
	}
	if err := nilC.Save(cp); err != nil {
		t.Fatal("nil controller Save should be a no-op")
	}
}

func TestControllerAfterSaveStops(t *testing.T) {
	dir := t.TempDir()
	saves := 0
	c := &Controller{
		Path:  filepath.Join(dir, "ck.json"),
		Every: 1,
		AfterSave: func(cp *Checkpoint) error {
			saves++
			if saves >= 2 {
				return ErrStop
			}
			return nil
		},
	}
	cp := &Checkpoint{Algorithm: "t", Evaluations: 1}
	if err := c.Save(cp); err != nil {
		t.Fatal(err)
	}
	cp.Evaluations = 2
	if err := c.Save(cp); err != ErrStop {
		t.Fatalf("second save returned %v, want ErrStop", err)
	}
	// The checkpoint was still written before the hook fired.
	if _, err := Load(c.Path); err != nil {
		t.Fatal(err)
	}
}

func TestStopped(t *testing.T) {
	if Stopped(nil) {
		t.Fatal("nil channel reads as stopped")
	}
	ch := make(chan struct{})
	if Stopped(ch) {
		t.Fatal("open channel reads as stopped")
	}
	close(ch)
	if !Stopped(ch) {
		t.Fatal("closed channel not stopped")
	}
}

func FuzzCheckpointDecode(f *testing.F) {
	dir := f.TempDir()
	path := filepath.Join(dir, "ck.json")
	r := rng.New(77)
	ar := archive.NewAGA(10, 4)
	for i := 0; i < 40; i++ {
		ar.Add(testSolution(r, true))
	}
	arch, _ := EncodeArchive(ar)
	cp := &Checkpoint{Algorithm: "mls", Fingerprint: "fp", Evaluations: 10, RNG: StateOf(r), Archive: arch}
	if err := Save(path, cp); err != nil {
		f.Fatal(err)
	}
	valid, _ := os.ReadFile(path)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(`{"schema":1}`))
	f.Add([]byte(``))
	f.Add([]byte(`{}{}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; on success the checkpoint must be internally
		// consistent (schema + checksum verified).
		cp, err := Decode(data)
		if err != nil {
			return
		}
		if cp.Schema != Schema {
			t.Fatalf("Decode accepted schema %d", cp.Schema)
		}
		sum, err := checksum(cp)
		if err != nil || sum != cp.Checksum {
			t.Fatalf("Decode accepted checksum mismatch: %v", err)
		}
	})
}
