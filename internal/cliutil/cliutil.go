// Package cliutil carries the few helpers the cmd/ binaries share, so
// every CLI presents the same -h surface: a one-paragraph header naming
// the binary and the paper experiments it reproduces, followed by the
// standard flag listing (see cmd/README.md for the full binary/flag to
// experiment map).
package cliutil

import (
	"flag"
	"fmt"
)

// SetUsage installs a flag.Usage that prints a named header paragraph
// above the default flag listing. Call it before flag.Parse.
func SetUsage(name, description string) {
	out := flag.CommandLine.Output()
	flag.Usage = func() {
		fmt.Fprintf(out, "%s — %s\n\nusage: %s [flags]\n\nflags:\n", name, description, name)
		flag.PrintDefaults()
	}
}
