// Package cliutil carries the few helpers the cmd/ binaries share, so
// every CLI presents the same -h surface: a one-paragraph header naming
// the binary and the paper experiments it reproduces, followed by the
// standard flag listing (see cmd/README.md for the full binary/flag to
// experiment map).
package cliutil

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"aedbmls/internal/study"
)

// SetUsage installs a flag.Usage that prints a named header paragraph
// above the default flag listing. Call it before flag.Parse.
func SetUsage(name, description string) {
	out := flag.CommandLine.Output()
	flag.Usage = func() {
		fmt.Fprintf(out, "%s — %s\n\nusage: %s [flags]\n\nflags:\n", name, description, name)
		flag.PrintDefaults()
	}
}

// StopOnSignals returns a channel that is closed on the first SIGINT or
// SIGTERM — the optimizers then exit at their next iteration boundary,
// writing a consistent checkpoint first when one is configured. A second
// signal skips the graceful path and exits immediately with status 130.
func StopOnSignals() <-chan struct{} {
	stop := make(chan struct{})
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ch
		fmt.Fprintln(os.Stderr, "\nsignal received: stopping at the next boundary (checkpoint will be saved; signal again to exit immediately)")
		close(stop)
		<-ch
		os.Exit(130)
	}()
	return stop
}

// WriteReadyFile atomically publishes a small coordination file (for
// the server binaries' -port-file flag: the bound address appears only
// as a complete file, so a watcher never reads a torn write). The file
// is written next to its final path and renamed into place.
func WriteReadyFile(path, content string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(content), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// CheckpointFlags holds the shared -checkpoint/-resume/-checkpoint-every
// command-line surface.
type CheckpointFlags struct {
	Path   string
	Resume string
	Every  int64
}

// AddCheckpointFlags registers the three checkpoint flags on the default
// FlagSet. Call before flag.Parse.
func AddCheckpointFlags() *CheckpointFlags {
	cf := &CheckpointFlags{}
	flag.StringVar(&cf.Path, "checkpoint", "", "checkpoint file path; written atomically every -checkpoint-every evaluations and at completion")
	flag.StringVar(&cf.Resume, "resume", "", "resume from this checkpoint file (implies -checkpoint to the same path unless set)")
	flag.Int64Var(&cf.Every, "checkpoint-every", 500, "evaluations between checkpoint saves (0: only the final checkpoint)")
	return cf
}

// Build resolves the flags into a save controller and a loaded resume
// checkpoint (either may be nil). -resume with no -checkpoint continues
// checkpointing to the resumed file.
func (cf *CheckpointFlags) Build() (*study.Controller, *study.Checkpoint, error) {
	path := cf.Path
	var resume *study.Checkpoint
	if cf.Resume != "" {
		cp, err := study.Load(cf.Resume)
		if err != nil {
			return nil, nil, fmt.Errorf("cannot resume: %w", err)
		}
		resume = cp
		if path == "" {
			path = cf.Resume
		}
	}
	if path == "" {
		return nil, nil, nil
	}
	return &study.Controller{Path: path, Every: cf.Every}, resume, nil
}

// ExitOnInterrupt prints the standard interruption notice and exits with
// the conventional SIGINT status when the optimizer reported an
// interrupted run; it is a no-op otherwise.
func ExitOnInterrupt(interrupted bool, ctrl *study.Controller) {
	if !interrupted {
		return
	}
	if ctrl.Enabled() && ctrl.Saves() > 0 {
		fmt.Fprintf(os.Stderr, "interrupted: resumable checkpoint saved at %s (use -resume %s)\n", ctrl.Path, ctrl.Path)
	} else if ctrl.Enabled() {
		fmt.Fprintln(os.Stderr, "interrupted before the first checkpoint boundary: nothing saved")
	} else {
		fmt.Fprintln(os.Stderr, "interrupted: no checkpoint configured, progress discarded")
	}
	os.Exit(130)
}

// IsStop reports whether an error is (or wraps) the cooperative-stop
// sentinel shared by the optimizers and experiment drivers.
func IsStop(err error) bool { return errors.Is(err, study.ErrStop) }
