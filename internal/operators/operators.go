// Package operators implements the real-coded variation operators used by
// the three algorithms of the paper:
//
//   - the BLX-α-based perturbation of AEDB-MLS (Eq. 2 of the paper);
//   - simulated binary crossover (SBX) and polynomial mutation for
//     NSGA-II (Deb & Agrawal);
//   - the differential-evolution rand/1/bin operator for CellDE;
//   - classic blend crossover BLX-α (Eshelman & Schaffer) and binary
//     tournament selection as shared utilities.
//
// All operators clamp offspring into the problem bounds.
package operators

import (
	"math"

	"aedbmls/internal/moo"
	"aedbmls/internal/rng"
)

// PerturbBLX applies the paper's local-search perturbation (Eq. 2) to the
// parameters listed in idx:
//
//	x'[p] = x[p] + phi * (3*rho - 2),   phi = alpha * |x[p] - t[p]|
//
// where t is a reference solution from the population and rho ~ U[0,1).
// The factor (3*rho - 2) spans [-2, 1): the move is biased towards pulling
// x away from t's side, with magnitude proportional to their disagreement.
// Parameters not listed in idx are copied unchanged. The result is clamped
// into [lo, hi].
func PerturbBLX(x, t []float64, idx []int, alpha float64, lo, hi []float64, r *rng.Rand) []float64 {
	out := append([]float64(nil), x...)
	for _, p := range idx {
		phi := alpha * abs(x[p]-t[p])
		rho := r.Float64()
		out[p] = x[p] + phi*(3*rho-2)
	}
	return moo.Clamp(out, lo, hi)
}

// BlendBLX is the classic BLX-α recombination: each child coordinate is
// uniform over the parent interval extended by alpha on both sides.
func BlendBLX(a, b []float64, alpha float64, lo, hi []float64, r *rng.Rand) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		lo2, hi2 := a[i], b[i]
		if lo2 > hi2 {
			lo2, hi2 = hi2, lo2
		}
		ext := alpha * (hi2 - lo2)
		out[i] = r.Range(lo2-ext, hi2+ext+1e-300)
	}
	return moo.Clamp(out, lo, hi)
}

// SBX performs simulated binary crossover with distribution index etaC and
// per-variable crossover probability 0.5 (Deb's reference implementation),
// returning two children. pc is the whole-operator application
// probability; when skipped the parents are copied.
func SBX(a, b []float64, pc, etaC float64, lo, hi []float64, r *rng.Rand) (c1, c2 []float64) {
	c1 = append([]float64(nil), a...)
	c2 = append([]float64(nil), b...)
	if !r.Bool(pc) {
		return c1, c2
	}
	for i := range a {
		if !r.Bool(0.5) {
			continue
		}
		x1, x2 := a[i], b[i]
		if abs(x1-x2) < 1e-14 {
			continue
		}
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		yl, yu := lo[i], hi[i]
		// Bounded SBX: spread factors account for the distance to bounds.
		rand := r.Float64()
		beta := 1.0 + 2.0*(x1-yl)/(x2-x1)
		alpha := 2.0 - pow(beta, -(etaC+1))
		betaq := sbxBetaq(rand, alpha, etaC)
		child1 := 0.5 * ((x1 + x2) - betaq*(x2-x1))

		beta = 1.0 + 2.0*(yu-x2)/(x2-x1)
		alpha = 2.0 - pow(beta, -(etaC+1))
		betaq = sbxBetaq(rand, alpha, etaC)
		child2 := 0.5 * ((x1 + x2) + betaq*(x2-x1))

		if child1 < yl {
			child1 = yl
		}
		if child1 > yu {
			child1 = yu
		}
		if child2 < yl {
			child2 = yl
		}
		if child2 > yu {
			child2 = yu
		}
		if r.Bool(0.5) {
			c1[i], c2[i] = child2, child1
		} else {
			c1[i], c2[i] = child1, child2
		}
	}
	return c1, c2
}

func sbxBetaq(rand, alpha, etaC float64) float64 {
	if rand <= 1.0/alpha {
		return pow(rand*alpha, 1.0/(etaC+1))
	}
	return pow(1.0/(2.0-rand*alpha), 1.0/(etaC+1))
}

// PolynomialMutation applies Deb's bounded polynomial mutation in place:
// each variable mutates with probability pm using distribution index etaM.
func PolynomialMutation(x []float64, pm, etaM float64, lo, hi []float64, r *rng.Rand) {
	for i := range x {
		if !r.Bool(pm) {
			continue
		}
		yl, yu := lo[i], hi[i]
		span := yu - yl
		if span <= 0 {
			continue
		}
		y := x[i]
		delta1 := (y - yl) / span
		delta2 := (yu - y) / span
		rand := r.Float64()
		mutPow := 1.0 / (etaM + 1.0)
		var deltaq float64
		if rand < 0.5 {
			xy := 1.0 - delta1
			val := 2.0*rand + (1.0-2.0*rand)*pow(xy, etaM+1)
			deltaq = pow(val, mutPow) - 1.0
		} else {
			xy := 1.0 - delta2
			val := 2.0*(1.0-rand) + 2.0*(rand-0.5)*pow(xy, etaM+1)
			deltaq = 1.0 - pow(val, mutPow)
		}
		y += deltaq * span
		if y < yl {
			y = yl
		}
		if y > yu {
			y = yu
		}
		x[i] = y
	}
}

// DERand1Bin builds a differential-evolution trial vector from the base
// vector and two difference vectors (rand/1/bin): for each coordinate,
// with probability cr (and always at one random coordinate) the trial
// takes base + f*(d1-d2); otherwise it keeps current.
func DERand1Bin(current, base, d1, d2 []float64, cr, f float64, lo, hi []float64, r *rng.Rand) []float64 {
	n := len(current)
	out := append([]float64(nil), current...)
	jrand := r.Intn(n)
	for j := 0; j < n; j++ {
		if j == jrand || r.Bool(cr) {
			out[j] = base[j] + f*(d1[j]-d2[j])
		}
	}
	return moo.Clamp(out, lo, hi)
}

// TournamentCD picks the better of two random population members using
// constrained dominance, breaking non-dominated ties with the larger
// crowding distance cd (pass nil to break ties randomly).
func TournamentCD(pop []*moo.Solution, cd []float64, r *rng.Rand) *moo.Solution {
	i, j := r.Intn(len(pop)), r.Intn(len(pop))
	a, b := pop[i], pop[j]
	switch {
	case moo.Dominates(a, b):
		return a
	case moo.Dominates(b, a):
		return b
	case cd != nil && cd[i] > cd[j]:
		return a
	case cd != nil && cd[j] > cd[i]:
		return b
	case r.Bool(0.5):
		return a
	default:
		return b
	}
}

// RandomVector samples a uniform point in [lo, hi].
func RandomVector(lo, hi []float64, r *rng.Rand) []float64 {
	x := make([]float64, len(lo))
	for i := range x {
		x[i] = r.Range(lo[i], hi[i])
	}
	return x
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func pow(base, exp float64) float64 { return math.Pow(base, exp) }
