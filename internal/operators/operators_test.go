package operators

import (
	"math"
	"testing"

	"aedbmls/internal/moo"
	"aedbmls/internal/rng"
)

var (
	lo5 = []float64{0, 0, -95, 0, 0}
	hi5 = []float64{1, 5, -70, 3, 50}
)

func randVec(r *rng.Rand) []float64 {
	return RandomVector(lo5, hi5, r)
}

func inBounds(x, lo, hi []float64) bool {
	for i := range x {
		if x[i] < lo[i] || x[i] > hi[i] {
			return false
		}
	}
	return true
}

func TestRandomVectorInBounds(t *testing.T) {
	r := rng.New(1)
	for i := 0; i < 1000; i++ {
		if !inBounds(randVec(r), lo5, hi5) {
			t.Fatal("random vector out of bounds")
		}
	}
}

func TestPerturbBLXTouchesOnlySelectedParams(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 500; trial++ {
		x, tref := randVec(r), randVec(r)
		idx := []int{2, 4}
		out := PerturbBLX(x, tref, idx, 0.2, lo5, hi5, r)
		for i := range x {
			selected := i == 2 || i == 4
			if !selected && out[i] != x[i] {
				t.Fatalf("unselected parameter %d changed: %v -> %v", i, x[i], out[i])
			}
		}
		if !inBounds(out, lo5, hi5) {
			t.Fatal("perturbed vector out of bounds")
		}
	}
}

func TestPerturbBLXDoesNotMutateInputs(t *testing.T) {
	r := rng.New(3)
	x, tref := randVec(r), randVec(r)
	xc := append([]float64(nil), x...)
	tc := append([]float64(nil), tref...)
	PerturbBLX(x, tref, []int{0, 1, 2, 3, 4}, 0.3, lo5, hi5, r)
	for i := range x {
		if x[i] != xc[i] || tref[i] != tc[i] {
			t.Fatal("PerturbBLX mutated its inputs")
		}
	}
}

func TestPerturbBLXMagnitudeScalesWithDisagreement(t *testing.T) {
	// When s and t agree on a parameter, phi = 0 and the parameter is
	// unchanged (Eq. 2).
	r := rng.New(4)
	x := []float64{0.5, 2, -80, 1, 25}
	out := PerturbBLX(x, x, []int{0, 1, 2, 3, 4}, 0.2, lo5, hi5, r)
	for i := range x {
		if out[i] != x[i] {
			t.Fatalf("zero-disagreement perturbation moved parameter %d", i)
		}
	}
	// The move is bounded by 2*alpha*|s_p - t_p| (the factor spans [-2,1)).
	tref := []float64{0.5, 2, -70, 1, 45}
	for trial := 0; trial < 1000; trial++ {
		out := PerturbBLX(x, tref, []int{2, 4}, 0.2, lo5, hi5, r)
		if math.Abs(out[2]-x[2]) > 2*0.2*math.Abs(x[2]-tref[2])+1e-12 {
			t.Fatalf("border move too large: %v", out[2]-x[2])
		}
		if math.Abs(out[4]-x[4]) > 2*0.2*math.Abs(x[4]-tref[4])+1e-12 {
			t.Fatalf("neighbor move too large: %v", out[4]-x[4])
		}
	}
}

func TestBlendBLXWithinExtendedInterval(t *testing.T) {
	r := rng.New(5)
	lo, hi := []float64{-10}, []float64{10}
	for trial := 0; trial < 1000; trial++ {
		a, b := []float64{r.Range(-5, 5)}, []float64{r.Range(-5, 5)}
		child := BlendBLX(a, b, 0.5, lo, hi, r)
		loP, hiP := math.Min(a[0], b[0]), math.Max(a[0], b[0])
		ext := 0.5 * (hiP - loP)
		if child[0] < loP-ext-1e-9 || child[0] > hiP+ext+1e-9 {
			t.Fatalf("BLX child %v outside extended interval [%v, %v]", child[0], loP-ext, hiP+ext)
		}
	}
}

func TestSBXInBoundsAndSkip(t *testing.T) {
	r := rng.New(6)
	for trial := 0; trial < 500; trial++ {
		a, b := randVec(r), randVec(r)
		c1, c2 := SBX(a, b, 0.9, 20, lo5, hi5, r)
		if !inBounds(c1, lo5, hi5) || !inBounds(c2, lo5, hi5) {
			t.Fatal("SBX children out of bounds")
		}
	}
	// pc = 0: children are copies.
	a, b := randVec(r), randVec(r)
	c1, c2 := SBX(a, b, 0, 20, lo5, hi5, r)
	for i := range a {
		if c1[i] != a[i] || c2[i] != b[i] {
			t.Fatal("SBX with pc=0 modified parents")
		}
	}
}

func TestSBXChildrenCenteredOnParents(t *testing.T) {
	// SBX preserves the parent midpoint per crossed variable.
	r := rng.New(7)
	for trial := 0; trial < 200; trial++ {
		a, b := randVec(r), randVec(r)
		c1, c2 := SBX(a, b, 1.0, 20, lo5, hi5, r)
		for i := range a {
			mid := (a[i] + b[i]) / 2
			cmid := (c1[i] + c2[i]) / 2
			// Boundary clamping may shift the midpoint; allow slack.
			if math.Abs(cmid-mid) > 0.6*math.Abs(a[i]-b[i])+1e-9 {
				t.Fatalf("SBX midpoint drifted: parents %v/%v children %v/%v", a[i], b[i], c1[i], c2[i])
			}
		}
	}
}

func TestPolynomialMutationBoundsAndRate(t *testing.T) {
	r := rng.New(8)
	changed := 0
	const trials = 2000
	for trial := 0; trial < trials; trial++ {
		x := randVec(r)
		orig := append([]float64(nil), x...)
		PolynomialMutation(x, 0.2, 20, lo5, hi5, r)
		if !inBounds(x, lo5, hi5) {
			t.Fatal("mutated vector out of bounds")
		}
		for i := range x {
			if x[i] != orig[i] {
				changed++
			}
		}
	}
	rate := float64(changed) / float64(trials*len(lo5))
	if rate < 0.15 || rate > 0.25 {
		t.Fatalf("mutation rate = %.3f, want approx 0.2", rate)
	}
}

func TestPolynomialMutationZeroRateNoop(t *testing.T) {
	r := rng.New(9)
	x := randVec(r)
	orig := append([]float64(nil), x...)
	PolynomialMutation(x, 0, 20, lo5, hi5, r)
	for i := range x {
		if x[i] != orig[i] {
			t.Fatal("pm=0 mutated the vector")
		}
	}
}

func TestDERand1Bin(t *testing.T) {
	r := rng.New(10)
	for trial := 0; trial < 500; trial++ {
		cur, base, d1, d2 := randVec(r), randVec(r), randVec(r), randVec(r)
		out := DERand1Bin(cur, base, d1, d2, 0.5, 0.5, lo5, hi5, r)
		if !inBounds(out, lo5, hi5) {
			t.Fatal("DE trial out of bounds")
		}
		// At least one coordinate must come from the mutant (jrand).
		fromMutant := 0
		for j := range out {
			mutant := moo.Clamp([]float64{base[j] + 0.5*(d1[j]-d2[j])}, lo5[j:j+1], hi5[j:j+1])[0]
			if out[j] == mutant && out[j] != cur[j] {
				fromMutant++
			}
		}
		_ = fromMutant // with clamping, exact matching is fragile; bounds + CR test below suffice
	}
	// CR = 0: only the forced jrand coordinate differs from current.
	for trial := 0; trial < 200; trial++ {
		cur, base, d1, d2 := randVec(r), randVec(r), randVec(r), randVec(r)
		out := DERand1Bin(cur, base, d1, d2, 0, 0.5, lo5, hi5, r)
		diffs := 0
		for j := range out {
			if out[j] != cur[j] {
				diffs++
			}
		}
		if diffs > 1 {
			t.Fatalf("CR=0 changed %d coordinates, want <= 1", diffs)
		}
	}
}

func TestTournamentCDPrefersDominator(t *testing.T) {
	r := rng.New(11)
	better := &moo.Solution{F: []float64{0, 0}}
	worse := &moo.Solution{F: []float64{1, 1}}
	pop := []*moo.Solution{better, worse}
	wins := 0
	for i := 0; i < 200; i++ {
		if TournamentCD(pop, nil, r) == better {
			wins++
		}
	}
	// The dominator must win every tournament in which it appears; it can
	// lose only when both draws pick `worse` (probability 1/4).
	if wins < 130 {
		t.Fatalf("dominator won only %d of 200 tournaments", wins)
	}
}

func TestTournamentCDUsesCrowding(t *testing.T) {
	r := rng.New(12)
	a := &moo.Solution{F: []float64{0, 1}}
	b := &moo.Solution{F: []float64{1, 0}}
	pop := []*moo.Solution{a, b}
	cd := []float64{10, 0.1}
	winsA := 0
	for i := 0; i < 400; i++ {
		if TournamentCD(pop, cd, r) == a {
			winsA++
		}
	}
	// a wins all mixed pairings (crowding) plus the (a,a) draws: 3/4.
	if winsA < 250 {
		t.Fatalf("high-crowding solution won only %d of 400", winsA)
	}
}
