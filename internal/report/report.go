// Package report persists experiment artifacts: Pareto fronts and
// indicator samples as CSV for external plotting, and whole experiment
// result sets as JSON for archival and later re-rendering. A released
// reproduction needs machine-readable outputs next to the textual
// figures; this package provides them on the standard library only.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"aedbmls/internal/aedb"
	"aedbmls/internal/eval"
	"aedbmls/internal/moo"
)

// FrontRow is one solution of a front in paper units plus its decision
// variables.
type FrontRow struct {
	Energy        float64 `json:"energy_dbm_sum"`
	Coverage      float64 `json:"coverage"`
	Forwardings   float64 `json:"forwardings"`
	BroadcastTime float64 `json:"broadcast_time_s"`
	MinDelay      float64 `json:"min_delay_s"`
	MaxDelay      float64 `json:"max_delay_s"`
	Border        float64 `json:"border_threshold_dbm"`
	Margin        float64 `json:"margin_threshold_dbm"`
	Neighbors     float64 `json:"neighbors_threshold"`
}

// Rows converts solutions produced by the AEDB tuning problem into rows.
// Solutions from other problems yield rows with only the raw objectives
// mapped (energy, -coverage, forwardings).
func Rows(front []*moo.Solution) []FrontRow {
	rows := make([]FrontRow, 0, len(front))
	for _, s := range front {
		var row FrontRow
		if m, ok := eval.MetricsOf(s); ok {
			row.Energy = m.EnergyDBmSum
			row.Coverage = m.Coverage
			row.Forwardings = m.Forwardings
			row.BroadcastTime = m.BroadcastTime
		} else if len(s.F) >= 3 {
			row.Energy = s.F[0]
			row.Coverage = -s.F[1]
			row.Forwardings = s.F[2]
		}
		if len(s.X) == aedb.NumParams {
			p := aedb.FromVector(s.X)
			row.MinDelay = p.MinDelay
			row.MaxDelay = p.MaxDelay
			row.Border = p.BorderThresholdDBm
			row.Margin = p.MarginDBm
			row.Neighbors = p.NeighborsThreshold
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Energy < rows[j].Energy })
	return rows
}

// csvHeader is the column order of WriteFrontCSV.
var csvHeader = []string{
	"energy_dbm_sum", "coverage", "forwardings", "broadcast_time_s",
	"min_delay_s", "max_delay_s", "border_threshold_dbm", "margin_threshold_dbm", "neighbors_threshold",
}

// WriteFrontCSV writes a front to w as CSV with a header row.
func WriteFrontCSV(w io.Writer, front []*moo.Solution) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("report: write header: %w", err)
	}
	for _, row := range Rows(front) {
		rec := []string{
			formatF(row.Energy), formatF(row.Coverage), formatF(row.Forwardings), formatF(row.BroadcastTime),
			formatF(row.MinDelay), formatF(row.MaxDelay), formatF(row.Border), formatF(row.Margin), formatF(row.Neighbors),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("report: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatF(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }

// ReadFrontCSV parses a CSV written by WriteFrontCSV.
func ReadFrontCSV(r io.Reader) ([]FrontRow, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("report: read csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("report: empty csv")
	}
	if len(records[0]) != len(csvHeader) {
		return nil, fmt.Errorf("report: want %d columns, got %d", len(csvHeader), len(records[0]))
	}
	var rows []FrontRow
	for _, rec := range records[1:] {
		var vals [9]float64
		for i, cell := range rec {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("report: bad number %q: %w", cell, err)
			}
			vals[i] = v
		}
		rows = append(rows, FrontRow{
			Energy: vals[0], Coverage: vals[1], Forwardings: vals[2], BroadcastTime: vals[3],
			MinDelay: vals[4], MaxDelay: vals[5], Border: vals[6], Margin: vals[7], Neighbors: vals[8],
		})
	}
	return rows, nil
}

// Bundle is a machine-readable experiment record.
type Bundle struct {
	// Experiment identifies the artifact (e.g. "figure6-100dev").
	Experiment string `json:"experiment"`
	// Scale is the protocol scale that produced it.
	Scale string `json:"scale"`
	// Seed reproduces the run.
	Seed uint64 `json:"seed"`
	// Fronts maps a series label to its rows.
	Fronts map[string][]FrontRow `json:"fronts,omitempty"`
	// Samples maps metric -> algorithm -> per-run values.
	Samples map[string]map[string][]float64 `json:"samples,omitempty"`
	// Notes carries free-form measurements (timings, counts).
	Notes map[string]string `json:"notes,omitempty"`
}

// WriteJSON serialises the bundle with indentation.
func (b *Bundle) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadBundle parses a bundle written by WriteJSON.
func ReadBundle(r io.Reader) (*Bundle, error) {
	var b Bundle
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("report: decode bundle: %w", err)
	}
	return &b, nil
}

// SaveBundle writes the bundle to dir/<experiment>.json, creating dir.
func SaveBundle(dir string, b *Bundle) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("report: mkdir: %w", err)
	}
	path := filepath.Join(dir, b.Experiment+".json")
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("report: create: %w", err)
	}
	defer f.Close()
	if err := b.WriteJSON(f); err != nil {
		return "", err
	}
	return path, nil
}

// LoadBundle reads a bundle back from a path.
func LoadBundle(path string) (*Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("report: open: %w", err)
	}
	defer f.Close()
	return ReadBundle(f)
}
