package report

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aedbmls/internal/eval"
	"aedbmls/internal/moo"
)

func aedbSolution(energy, coverage, forwards, bt float64) *moo.Solution {
	return &moo.Solution{
		X: []float64{0.1, 0.5, -80, 1, 10},
		F: []float64{energy, -coverage, forwards},
		Aux: eval.Metrics{
			EnergyDBmSum: energy, Coverage: coverage, Forwardings: forwards, BroadcastTime: bt,
		},
	}
}

func TestRowsFromAEDBSolutions(t *testing.T) {
	front := []*moo.Solution{
		aedbSolution(50, 10, 3, 0.5),
		aedbSolution(20, 5, 1, 0.3),
	}
	rows := Rows(front)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Sorted by energy.
	if rows[0].Energy != 20 || rows[1].Energy != 50 {
		t.Fatalf("rows unsorted: %v", rows)
	}
	if rows[0].Coverage != 5 || rows[0].BroadcastTime != 0.3 {
		t.Fatalf("metrics not carried: %+v", rows[0])
	}
	if rows[0].Border != -80 || rows[0].Neighbors != 10 {
		t.Fatalf("decision variables not carried: %+v", rows[0])
	}
}

func TestRowsFromForeignSolutions(t *testing.T) {
	front := []*moo.Solution{{X: []float64{1, 2}, F: []float64{3, -7, 2}}}
	rows := Rows(front)
	if rows[0].Energy != 3 || rows[0].Coverage != 7 || rows[0].Forwardings != 2 {
		t.Fatalf("objective fallback wrong: %+v", rows[0])
	}
}

func TestFrontCSVRoundTrip(t *testing.T) {
	front := []*moo.Solution{
		aedbSolution(50.25, 10, 3, 0.5),
		aedbSolution(20.5, 5.5, 1, 0.25),
	}
	var buf bytes.Buffer
	if err := WriteFrontCSV(&buf, front); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "energy_dbm_sum,coverage") {
		t.Fatalf("header missing: %q", out[:40])
	}
	rows, err := ReadFrontCSV(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("round trip rows = %d", len(rows))
	}
	if math.Abs(rows[0].Energy-20.5) > 1e-9 || math.Abs(rows[1].Coverage-10) > 1e-9 {
		t.Fatalf("round trip values wrong: %+v", rows)
	}
}

func TestReadFrontCSVErrors(t *testing.T) {
	if _, err := ReadFrontCSV(strings.NewReader("")); err == nil {
		t.Error("empty csv accepted")
	}
	if _, err := ReadFrontCSV(strings.NewReader("a,b\n1,2\n")); err == nil {
		t.Error("wrong column count accepted")
	}
	bad := strings.Repeat("x,", len(csvHeader)-1) + "x\nnot,a,number,0,0,0,0,0,0\n"
	if _, err := ReadFrontCSV(strings.NewReader(bad)); err == nil {
		t.Error("non-numeric cell accepted")
	}
}

func TestBundleJSONRoundTrip(t *testing.T) {
	b := &Bundle{
		Experiment: "figure6-100dev",
		Scale:      "tiny",
		Seed:       42,
		Fronts: map[string][]FrontRow{
			"mls": {{Energy: 1, Coverage: 2}},
		},
		Samples: map[string]map[string][]float64{
			"hypervolume": {"AEDB-MLS": {0.5, 0.6}},
		},
		Notes: map[string]string{"speedup": "1.8x"},
	}
	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Experiment != b.Experiment || got.Seed != 42 {
		t.Fatalf("identity lost: %+v", got)
	}
	if got.Fronts["mls"][0].Coverage != 2 {
		t.Fatal("front rows lost")
	}
	if got.Samples["hypervolume"]["AEDB-MLS"][1] != 0.6 {
		t.Fatal("samples lost")
	}
	if got.Notes["speedup"] != "1.8x" {
		t.Fatal("notes lost")
	}
}

func TestSaveLoadBundle(t *testing.T) {
	dir := t.TempDir()
	b := &Bundle{Experiment: "test-exp", Scale: "tiny", Seed: 7}
	path, err := SaveBundle(dir, b)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "test-exp.json" {
		t.Fatalf("path = %q", path)
	}
	got, err := LoadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Experiment != "test-exp" || got.Seed != 7 {
		t.Fatalf("round trip: %+v", got)
	}
	// Nested directory creation.
	if _, err := SaveBundle(filepath.Join(dir, "a", "b"), b); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBundle(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	// Corrupt file rejected.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBundle(bad); err == nil {
		t.Fatal("corrupt bundle accepted")
	}
}
