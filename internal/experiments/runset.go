package experiments

import (
	"fmt"
	"time"

	"aedbmls/internal/cellde"
	"aedbmls/internal/core"
	"aedbmls/internal/eval"
	"aedbmls/internal/moo"
	"aedbmls/internal/nsga2"
)

// Algorithm labels in the paper's column order.
const (
	AlgCellDE = "CellDE"
	AlgNSGAII = "NSGAII"
	AlgMLS    = "AEDB-MLS"
)

// Algorithms is the canonical ordering used by every report.
var Algorithms = []string{AlgCellDE, AlgNSGAII, AlgMLS}

// RunSet holds the raw per-run outcomes of all three algorithms on one
// density; every downstream artifact (Fig. 6, Fig. 7, Table IV, timing) is
// derived from it.
type RunSet struct {
	Density int
	Nodes   int
	Runs    int
	// Fronts[alg][run] is the feasible non-dominated front of that run.
	Fronts map[string][][]*moo.Solution
	// Durations[alg][run] is the wall-clock time of that run.
	Durations map[string][]time.Duration
	// Evals[alg][run] is the number of problem evaluations spent.
	Evals map[string][]int64
}

// RunAll executes Runs independent executions of CellDE, NSGA-II and
// AEDB-MLS on the density's frozen problem. MLS runs use their internal
// parallelism; the MOEAs are sequential, matching the paper's setup.
func RunAll(sc Scale, density int, log Logf) (*RunSet, error) {
	problem := sc.Problem(density)
	rs := &RunSet{
		Density:   density,
		Nodes:     problem.Nodes(),
		Runs:      sc.Runs,
		Fronts:    make(map[string][][]*moo.Solution),
		Durations: make(map[string][]time.Duration),
		Evals:     make(map[string][]int64),
	}
	for run := 0; run < sc.Runs; run++ {
		seed := sc.Seed + 1000*uint64(run)

		cfg := sc.CellDE
		cfg.Seed = seed + 1
		cres, err := cellde.Optimize(problem, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: CellDE run %d: %w", run, err)
		}
		rs.record(AlgCellDE, cres.Front, cres.Duration, cres.Evaluations)

		ncfg := sc.NSGA
		ncfg.Seed = seed + 2
		nres, err := nsga2.Optimize(problem, ncfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: NSGA-II run %d: %w", run, err)
		}
		rs.record(AlgNSGAII, nres.Front, nres.Duration, nres.Evaluations)

		mcfg := sc.MLS
		mcfg.Seed = seed + 3
		if len(mcfg.Criteria) == 0 {
			mcfg.Criteria = core.DefaultAEDBCriteria()
		}
		mres, err := core.Optimize(problem, mcfg, nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: AEDB-MLS run %d: %w", run, err)
		}
		rs.record(AlgMLS, mres.Front, mres.Duration, mres.Evaluations)

		log.printf("density %d: run %d/%d done (fronts: cellde=%d nsga2=%d mls=%d)",
			density, run+1, sc.Runs, len(cres.Front), len(nres.Front), len(mres.Front))
	}
	return rs, nil
}

func (rs *RunSet) record(alg string, front []*moo.Solution, d time.Duration, evals int64) {
	rs.Fronts[alg] = append(rs.Fronts[alg], front)
	rs.Durations[alg] = append(rs.Durations[alg], d)
	rs.Evals[alg] = append(rs.Evals[alg], evals)
}

// FrontPoints converts solutions to objective vectors in paper units
// (energy, coverage, forwardings) — coverage un-negated for display.
func FrontPoints(front []*moo.Solution) [][]float64 {
	out := make([][]float64, len(front))
	for i, s := range front {
		m, ok := eval.MetricsOf(s)
		if ok {
			out[i] = []float64{m.EnergyDBmSum, m.Coverage, m.Forwardings}
		} else {
			out[i] = append([]float64(nil), s.F...)
		}
	}
	return out
}

// ObjectivePoints converts solutions to raw minimisation-space vectors
// (as used by the indicators).
func ObjectivePoints(front []*moo.Solution) [][]float64 {
	out := make([][]float64, len(front))
	for i, s := range front {
		out[i] = append([]float64(nil), s.F...)
	}
	return out
}
