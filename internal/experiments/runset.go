package experiments

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"aedbmls/internal/cellde"
	"aedbmls/internal/core"
	"aedbmls/internal/eval"
	"aedbmls/internal/moo"
	"aedbmls/internal/nsga2"
	"aedbmls/internal/study"
)

// Algorithm labels in the paper's column order.
const (
	AlgCellDE = "CellDE"
	AlgNSGAII = "NSGAII"
	AlgMLS    = "AEDB-MLS"
)

// Algorithms is the canonical ordering used by every report.
var Algorithms = []string{AlgCellDE, AlgNSGAII, AlgMLS}

// RunSet holds the raw per-run outcomes of all three algorithms on one
// density; every downstream artifact (Fig. 6, Fig. 7, Table IV, timing) is
// derived from it.
type RunSet struct {
	Density int
	Nodes   int
	Runs    int
	// Fronts[alg][run] is the feasible non-dominated front of that run.
	Fronts map[string][][]*moo.Solution
	// Durations[alg][run] is the wall-clock time of that run.
	Durations map[string][]time.Duration
	// Evals[alg][run] is the number of problem evaluations spent.
	Evals map[string][]int64
}

// RunAll executes Runs independent executions of CellDE, NSGA-II and
// AEDB-MLS on the density's frozen problem. MLS runs use their internal
// parallelism; the MOEAs are sequential, matching the paper's setup.
func RunAll(sc Scale, density int, log Logf) (*RunSet, error) {
	problem := sc.Problem(density)
	rs := &RunSet{
		Density:   density,
		Nodes:     problem.Nodes(),
		Runs:      sc.Runs,
		Fronts:    make(map[string][][]*moo.Solution),
		Durations: make(map[string][]time.Duration),
		Evals:     make(map[string][]int64),
	}
	for run := 0; run < sc.Runs; run++ {
		seed := sc.Seed + 1000*uint64(run)
		var err error

		cfg := sc.CellDE
		cfg.Seed = seed + 1
		cfg.Stop = sc.Stop
		if cfg.Checkpoint, cfg.Resume, err = sc.studyPair(AlgCellDE, density, run); err != nil {
			return nil, err
		}
		cres, err := cellde.Optimize(problem, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: CellDE run %d: %w", run, err)
		}
		if cres.Interrupted {
			return nil, interruptedErr(AlgCellDE, density, run)
		}
		rs.record(AlgCellDE, cres.Front, cres.Duration, cres.Evaluations)

		ncfg := sc.NSGA
		ncfg.Seed = seed + 2
		ncfg.Stop = sc.Stop
		if ncfg.Checkpoint, ncfg.Resume, err = sc.studyPair(AlgNSGAII, density, run); err != nil {
			return nil, err
		}
		nres, err := nsga2.Optimize(problem, ncfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: NSGA-II run %d: %w", run, err)
		}
		if nres.Interrupted {
			return nil, interruptedErr(AlgNSGAII, density, run)
		}
		rs.record(AlgNSGAII, nres.Front, nres.Duration, nres.Evaluations)

		mcfg := sc.MLS
		mcfg.Seed = seed + 3
		mcfg.Stop = sc.Stop
		if len(mcfg.Criteria) == 0 {
			mcfg.Criteria = core.DefaultAEDBCriteria()
		}
		if mcfg.Checkpoint, mcfg.Resume, err = sc.studyPair(AlgMLS, density, run); err != nil {
			return nil, err
		}
		mres, err := core.Optimize(problem, mcfg, nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: AEDB-MLS run %d: %w", run, err)
		}
		if mres.Interrupted {
			return nil, interruptedErr(AlgMLS, density, run)
		}
		rs.record(AlgMLS, mres.Front, mres.Duration, mres.Evaluations)

		log.printf("density %d: run %d/%d done (fronts: cellde=%d nsga2=%d mls=%d)",
			density, run+1, sc.Runs, len(cres.Front), len(nres.Front), len(mres.Front))
	}
	return rs, nil
}

// interruptedErr is the uniform cooperative-stop outcome of RunAll: the
// checkpoint (when configured) holds the interrupted run's state, and the
// suite can be re-invoked to resume.
func interruptedErr(alg string, density, run int) error {
	return fmt.Errorf("experiments: %s run %d (density %d) interrupted: %w", alg, run, density, study.ErrStop)
}

// studyPair resolves the checkpoint controller and resume state for one
// (algorithm, density, run). Without a CheckpointDir both are nil; with
// one, an existing file is loaded for resumption (Final files make the
// optimizer short-circuit, so completed runs cost nothing on a re-run).
func (s Scale) studyPair(alg string, density, run int) (*study.Controller, *study.Checkpoint, error) {
	if s.CheckpointDir == "" {
		return nil, nil, nil
	}
	path := filepath.Join(s.CheckpointDir,
		fmt.Sprintf("%s-d%d-r%d.ckpt", strings.ToLower(alg), density, run))
	every := s.CheckpointEvery
	if every <= 0 {
		every = 1000
	}
	ctrl := &study.Controller{Path: path, Every: every}
	cp, err := study.Load(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		return ctrl, nil, nil
	case err != nil:
		return nil, nil, fmt.Errorf("experiments: checkpoint %s: %w", path, err)
	}
	return ctrl, cp, nil
}

func (rs *RunSet) record(alg string, front []*moo.Solution, d time.Duration, evals int64) {
	rs.Fronts[alg] = append(rs.Fronts[alg], front)
	rs.Durations[alg] = append(rs.Durations[alg], d)
	rs.Evals[alg] = append(rs.Evals[alg], evals)
}

// FrontPoints converts solutions to objective vectors in paper units
// (energy, coverage, forwardings) — coverage un-negated for display.
func FrontPoints(front []*moo.Solution) [][]float64 {
	out := make([][]float64, len(front))
	for i, s := range front {
		m, ok := eval.MetricsOf(s)
		if ok {
			out[i] = []float64{m.EnergyDBmSum, m.Coverage, m.Forwardings}
		} else {
			out[i] = append([]float64(nil), s.F...)
		}
	}
	return out
}

// ObjectivePoints converts solutions to raw minimisation-space vectors
// (as used by the indicators).
func ObjectivePoints(front []*moo.Solution) [][]float64 {
	out := make([][]float64, len(front))
	for i, s := range front {
		out[i] = append([]float64(nil), s.F...)
	}
	return out
}
