package experiments

import (
	"fmt"
	"strings"

	"aedbmls/internal/aedb"
	"aedbmls/internal/archive"
	"aedbmls/internal/cellde"
	"aedbmls/internal/core"
	"aedbmls/internal/eval"
	"aedbmls/internal/indicators"
	"aedbmls/internal/manet"
	"aedbmls/internal/nsga2"
	"aedbmls/internal/spea2"
	"aedbmls/internal/stats"
	"aedbmls/internal/textplot"
)

// ExtendedBaselinesResult adds SPEA2 (not part of the paper) to the
// algorithm comparison, checking that the paper's reference front is not
// an artifact of the particular MOEAs chosen: a third, independently
// designed MOEA should land in the same front region.
type ExtendedBaselinesResult struct {
	Density int
	// MedianHV per algorithm, against the combined reference of all four.
	MedianHV map[string]float64
	// FrontSizes are mean front sizes.
	FrontSizes map[string]float64
}

// AlgSPEA2 labels the extension baseline.
const AlgSPEA2 = "SPEA2"

// ExtendedBaselines runs all four algorithms on one density.
func ExtendedBaselines(sc Scale, density int, log Logf) (*ExtendedBaselinesResult, error) {
	problem := sc.Problem(density)
	algs := append(append([]string(nil), Algorithms...), AlgSPEA2)
	fronts := make(map[string][][][]float64)
	sizes := make(map[string][]float64)
	all := archive.NewUnbounded()

	for run := 0; run < sc.Runs; run++ {
		seed := sc.Seed + 1000*uint64(run)

		ccfg := sc.CellDE
		ccfg.Seed = seed + 1
		cres, err := cellde.Optimize(problem, ccfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: extended: cellde: %w", err)
		}
		archive.AddAll(all, cres.Front)
		fronts[AlgCellDE] = append(fronts[AlgCellDE], ObjectivePoints(cres.Front))
		sizes[AlgCellDE] = append(sizes[AlgCellDE], float64(len(cres.Front)))

		ncfg := sc.NSGA
		ncfg.Seed = seed + 2
		nres, err := nsga2.Optimize(problem, ncfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: extended: nsga2: %w", err)
		}
		archive.AddAll(all, nres.Front)
		fronts[AlgNSGAII] = append(fronts[AlgNSGAII], ObjectivePoints(nres.Front))
		sizes[AlgNSGAII] = append(sizes[AlgNSGAII], float64(len(nres.Front)))

		mcfg := sc.MLS
		mcfg.Seed = seed + 3
		if len(mcfg.Criteria) == 0 {
			mcfg.Criteria = core.DefaultAEDBCriteria()
		}
		mres, err := core.Optimize(problem, mcfg, nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: extended: mls: %w", err)
		}
		archive.AddAll(all, mres.Front)
		fronts[AlgMLS] = append(fronts[AlgMLS], ObjectivePoints(mres.Front))
		sizes[AlgMLS] = append(sizes[AlgMLS], float64(len(mres.Front)))

		scfg := spea2.DefaultConfig()
		scfg.PopSize = sc.NSGA.PopSize
		scfg.ArchiveSize = sc.NSGA.PopSize
		scfg.Evaluations = sc.NSGA.Evaluations
		scfg.Seed = seed + 4
		sres, err := spea2.Optimize(problem, scfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: extended: spea2: %w", err)
		}
		archive.AddAll(all, sres.Front)
		fronts[AlgSPEA2] = append(fronts[AlgSPEA2], ObjectivePoints(sres.Front))
		sizes[AlgSPEA2] = append(sizes[AlgSPEA2], float64(len(sres.Front)))

		log.printf("extended baselines: run %d/%d done", run+1, sc.Runs)
	}

	norm := indicators.NewNormalizer(ObjectivePoints(all.Contents()))
	refPoint := []float64{1.1, 1.1, 1.1}
	res := &ExtendedBaselinesResult{
		Density:    density,
		MedianHV:   make(map[string]float64),
		FrontSizes: make(map[string]float64),
	}
	for _, alg := range algs {
		var hvs []float64
		for _, f := range fronts[alg] {
			hvs = append(hvs, indicators.Hypervolume(norm.Apply(f), refPoint))
		}
		res.MedianHV[alg] = stats.Median(hvs)
		res.FrontSizes[alg] = stats.Mean(sizes[alg])
	}
	return res, nil
}

// Render prints the four-way comparison.
func (r *ExtendedBaselinesResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension — SPEA2 as a fourth baseline, %d devices/km^2\n\n", r.Density)
	header := []string{"algorithm", "median HV", "mean front size"}
	var rows [][]string
	for _, alg := range []string{AlgCellDE, AlgNSGAII, AlgSPEA2, AlgMLS} {
		rows = append(rows, []string{
			alg, fmt.Sprintf("%.4f", r.MedianHV[alg]), fmt.Sprintf("%.1f", r.FrontSizes[alg]),
		})
	}
	b.WriteString(textplot.Table(header, rows))
	return b.String()
}

// BeaconFidelityResult compares the default instantaneous-beacon medium
// against full frame-level beacon contention (ablation of the simulator
// substitution documented in DESIGN.md): the AEDB metrics should be close,
// justifying the fast default.
type BeaconFidelityResult struct {
	Density            int
	Fast, Accurate     eval.Metrics
	CoverageDeltaPct   float64
	ForwardingDeltaPct float64
}

// BeaconFidelity runs the same configuration under both beacon models.
func BeaconFidelity(sc Scale, density int, params aedb.Params) (*BeaconFidelityResult, error) {
	nodes, ok := eval.DensityNodes[density]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown density %d", density)
	}
	fastCfg := manet.DefaultScenario(nodes)
	slowCfg := fastCfg
	slowCfg.FastBeacons = false

	fastProblem := eval.NewProblem(density, sc.Seed, append(sc.EvalOptions(), eval.WithConfig(fastCfg))...)
	slowProblem := eval.NewProblem(density, sc.Seed, append(sc.EvalOptions(), eval.WithConfig(slowCfg))...)

	res := &BeaconFidelityResult{Density: density}
	res.Fast = fastProblem.Simulate(params)
	res.Accurate = slowProblem.Simulate(params)
	if res.Accurate.Coverage > 0 {
		res.CoverageDeltaPct = 100 * (res.Fast.Coverage - res.Accurate.Coverage) / res.Accurate.Coverage
	}
	if res.Accurate.Forwardings > 0 {
		res.ForwardingDeltaPct = 100 * (res.Fast.Forwardings - res.Accurate.Forwardings) / res.Accurate.Forwardings
	}
	return res, nil
}

// Render prints the fidelity comparison.
func (r *BeaconFidelityResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A4 — beacon fidelity, %d devices/km^2\n\n", r.Density)
	header := []string{"medium", "coverage", "forwardings", "energy(dBm)", "bt(s)"}
	rows := [][]string{
		{"fast beacons", fmt.Sprintf("%.2f", r.Fast.Coverage), fmt.Sprintf("%.2f", r.Fast.Forwardings),
			fmt.Sprintf("%.2f", r.Fast.EnergyDBmSum), fmt.Sprintf("%.3f", r.Fast.BroadcastTime)},
		{"frame-level", fmt.Sprintf("%.2f", r.Accurate.Coverage), fmt.Sprintf("%.2f", r.Accurate.Forwardings),
			fmt.Sprintf("%.2f", r.Accurate.EnergyDBmSum), fmt.Sprintf("%.3f", r.Accurate.BroadcastTime)},
	}
	b.WriteString(textplot.Table(header, rows))
	fmt.Fprintf(&b, "\ncoverage delta %.1f%%, forwardings delta %.1f%%\n",
		r.CoverageDeltaPct, r.ForwardingDeltaPct)
	return b.String()
}
