package experiments

import (
	"fmt"
	"strings"

	"aedbmls/internal/aedb"
	"aedbmls/internal/eval"
	"aedbmls/internal/fast99"
	"aedbmls/internal/rng"
	"aedbmls/internal/textplot"
)

// SensitivityOutputs are the model outputs analysed in Fig. 2, in the
// paper's panel order.
var SensitivityOutputs = []string{"broadcast_time", "coverage", "forwardings", "energy"}

// SensitivityResult reproduces Fig. 2 (per-output main effects and
// interactions of the five parameters) and Table I (the summary with
// effect directions) for one density.
type SensitivityResult struct {
	Density     int
	Factors     []string
	Outputs     []string
	Indices     []fast99.Result // per output
	Directions  [][]int         // per output, per factor: -1/0/+1
	Evaluations int64
}

// Sensitivity runs the extended-FAST analysis of Sect. III-B on one
// density, over the wide sensitivity domain of the paper.
func Sensitivity(sc Scale, density int, log Logf) (*SensitivityResult, error) {
	problem := eval.NewProblem(density, sc.Seed,
		append(sc.EvalOptions(), eval.WithDomain(aedb.SensitivityDomain()))...)
	lo, hi := problem.Bounds()

	model := func(x []float64) []float64 {
		m := problem.Simulate(aedb.FromVector(x))
		return []float64{m.BroadcastTime, m.Coverage, m.Forwardings, m.EnergyDBmSum}
	}
	log.printf("sensitivity: density %d, N=%d per factor (%d evaluations total)",
		density, sc.SensitivityN, sc.SensitivityN*len(lo))
	indices, err := fast99.Analyze(model, lo, hi, fast99.Config{N: sc.SensitivityN, M: 4})
	if err != nil {
		return nil, fmt.Errorf("experiments: sensitivity: %w", err)
	}
	dirN := sc.SensitivityN
	if dirN > 200 {
		dirN = 200
	}
	directions := fast99.EffectDirection(model, lo, hi, dirN, rng.New(sc.Seed+7))

	return &SensitivityResult{
		Density:     density,
		Factors:     ParamLabels(),
		Outputs:     SensitivityOutputs,
		Indices:     indices,
		Directions:  directions,
		Evaluations: problem.Evaluations(),
	}, nil
}

// ParamLabels returns the five factor names in canonical order.
func ParamLabels() []string {
	return append([]string(nil), aedb.ParamNames[:]...)
}

// RenderFigure2 renders the four panels of Fig. 2 as stacked bar charts
// (main effect '#', interactions '+').
func (r *SensitivityResult) RenderFigure2() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 — parameter influence (Fast99), %d devices/km^2\n\n", r.Density)
	for o, out := range r.Outputs {
		fmt.Fprintf(&b, "(%c) Influence on %s\n", 'a'+o, out)
		b.WriteString(textplot.StackedBar(r.Factors, r.Indices[o].Main, r.Indices[o].Interactions(), 50))
		b.WriteByte('\n')
	}
	return b.String()
}

// magnitudeLabel maps a first-order (main-effect) index to the paper's
// qualitative vocabulary (Table I summarises the main effects of Fig. 2).
func magnitudeLabel(main float64) string {
	switch {
	case main >= 0.25:
		return "yes"
	case main >= 0.10:
		return "few"
	case main >= 0.02:
		return "very few"
	default:
		return "no"
	}
}

func directionSymbol(d int) string {
	switch {
	case d > 0:
		return "up"
	case d < 0:
		return "down"
	default:
		return "-"
	}
}

// RenderTableI renders the sensitivity summary in the shape of Table I:
// one row per parameter, one column per objective, cells carrying the
// effect direction (up = objective grows with the parameter) and the
// influence magnitude.
func (r *SensitivityResult) RenderTableI() string {
	header := append([]string{"parameter"}, "coverage", "forwardings", "energy used", "broadcast time")
	// Output order in the result: bt, coverage, forwardings, energy.
	order := []int{1, 2, 3, 0}
	rows := make([][]string, len(r.Factors))
	for f := range r.Factors {
		row := []string{r.Factors[f]}
		for _, o := range order {
			cell := fmt.Sprintf("%s %s", directionSymbol(r.Directions[o][f]),
				magnitudeLabel(r.Indices[o].Main[f]))
			row = append(row, cell)
		}
		rows[f] = row
	}
	return "Table I — summary of the parameter sensitivity analysis\n" +
		"(direction: effect of increasing the parameter on the metric; magnitude from total-order index)\n\n" +
		textplot.Table(header, rows)
}

// MostInfluential returns, for output o, the factor with the largest
// total-order index (used by tests asserting the paper's qualitative
// findings, e.g. that the delays dominate the broadcast time).
func (r *SensitivityResult) MostInfluential(output string) (string, float64) {
	for o, name := range r.Outputs {
		if name != output {
			continue
		}
		best, bestV := 0, -1.0
		for f, v := range r.Indices[o].Total {
			if v > bestV {
				best, bestV = f, v
			}
		}
		return r.Factors[best], bestV
	}
	return "", 0
}
