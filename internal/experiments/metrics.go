package experiments

import (
	"fmt"
	"strings"

	"aedbmls/internal/archive"
	"aedbmls/internal/indicators"
	"aedbmls/internal/stats"
	"aedbmls/internal/textplot"
)

// MetricNames are the three indicators of the paper, in Table IV order.
var MetricNames = []string{"spread", "igd", "hypervolume"}

// MetricsResult reproduces the indicator study for one density: for each
// algorithm, the 30-run samples of spread, IGD and hypervolume computed
// against the combined reference front after normalisation (the paper's
// protocol), feeding Table IV and Fig. 7.
type MetricsResult struct {
	Density int
	// Samples[metric][alg] is the per-run indicator sample.
	Samples map[string]map[string][]float64
	// RefSize is the size of the combined normalisation front.
	RefSize int
}

// ComputeMetrics derives the indicator samples from a RunSet. The
// reference front merges the best solutions of all three algorithms over
// all runs (the paper's "approximation of the true Pareto front").
func ComputeMetrics(rs *RunSet) *MetricsResult {
	ref := archive.NewUnbounded()
	for _, alg := range Algorithms {
		for _, front := range rs.Fronts[alg] {
			archive.AddAll(ref, front)
		}
	}
	refPts := ObjectivePoints(ref.Contents())
	norm := indicators.NewNormalizer(refPts)
	refN := norm.Apply(refPts)
	refPoint := make([]float64, 3)
	for i := range refPoint {
		refPoint[i] = 1.1
	}

	res := &MetricsResult{
		Density: rs.Density,
		Samples: make(map[string]map[string][]float64),
		RefSize: len(refPts),
	}
	for _, m := range MetricNames {
		res.Samples[m] = make(map[string][]float64)
	}
	for _, alg := range Algorithms {
		for _, front := range rs.Fronts[alg] {
			pts := norm.Apply(ObjectivePoints(front))
			res.Samples["spread"][alg] = append(res.Samples["spread"][alg], indicators.Spread(pts, refN))
			res.Samples["igd"][alg] = append(res.Samples["igd"][alg], indicators.IGD(pts, refN))
			res.Samples["hypervolume"][alg] = append(res.Samples["hypervolume"][alg], indicators.Hypervolume(pts, refPoint))
		}
	}
	return res
}

// betterIsLower reports the orientation of a metric (spread and IGD are
// minimised, hypervolume maximised).
func betterIsLower(metric string) bool { return metric != "hypervolume" }

// PairwiseCell compares algorithm a against b on a metric with the
// Wilcoxon rank-sum test at 95% confidence, returning the paper's
// triangle notation: "win" if a is significantly better, "loss" if worse,
// "-" otherwise.
func (m *MetricsResult) PairwiseCell(metric, a, b string) string {
	w := stats.Wilcoxon(m.Samples[metric][a], m.Samples[metric][b])
	if !w.Significant(0.05) {
		return "-"
	}
	aBetter := w.Direction < 0
	if !betterIsLower(metric) {
		aBetter = w.Direction > 0
	}
	if aBetter {
		return "win"
	}
	return "loss"
}

// RenderTableIV renders the pairwise Wilcoxon comparison across densities
// in the layout of Table IV: for each metric, rows CellDE and NSGAII
// against columns NSGAII and AEDB-MLS, each cell holding one symbol per
// density ('^' row wins, 'v' row loses, '-' not significant).
func RenderTableIV(results []*MetricsResult) string {
	symbol := func(cell string) string {
		switch cell {
		case "win":
			return "^"
		case "loss":
			return "v"
		default:
			return "-"
		}
	}
	var b strings.Builder
	b.WriteString("Table IV — pairwise Wilcoxon rank-sum comparison (95% confidence)\n")
	b.WriteString("(one symbol per density, in ascending density order; '^' row better than column, 'v' worse, '-' no significance)\n\n")
	for _, metric := range MetricNames {
		fmt.Fprintf(&b, "%s:\n", metric)
		header := []string{"", AlgNSGAII, AlgMLS}
		var rows [][]string
		for _, rowAlg := range []string{AlgCellDE, AlgNSGAII} {
			row := []string{rowAlg}
			for _, colAlg := range []string{AlgNSGAII, AlgMLS} {
				if rowAlg == colAlg {
					row = append(row, "")
					continue
				}
				var cell strings.Builder
				for _, r := range results {
					cell.WriteString(symbol(r.PairwiseCell(metric, rowAlg, colAlg)))
				}
				row = append(row, cell.String())
			}
			rows = append(rows, row)
		}
		b.WriteString(textplot.Table(header, rows))
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderFigure7 renders the boxplot panels of Fig. 7 for this density:
// one row per algorithm per metric.
func (m *MetricsResult) RenderFigure7() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 — indicator distributions, %d devices/km^2 (normalised against a %d-point reference)\n\n",
		m.Density, m.RefSize)
	for _, metric := range MetricNames {
		fmt.Fprintf(&b, "(%s)\n", metric)
		lo, hi := boxRange(m.Samples[metric])
		for _, alg := range Algorithms {
			bp := stats.NewBoxplot(m.Samples[metric][alg])
			b.WriteString(textplot.BoxRow(alg,
				[5]float64{bp.WhiskerLo, bp.Q1, bp.Median, bp.Q3, bp.WhiskerHi}, lo, hi, 48))
			b.WriteByte('\n')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func boxRange(samples map[string][]float64) (lo, hi float64) {
	first := true
	for _, xs := range samples {
		for _, v := range xs {
			if first || v < lo {
				lo = v
			}
			if first || v > hi {
				hi = v
			}
			first = false
		}
	}
	if first {
		return 0, 1
	}
	if hi == lo {
		hi = lo + 1
	}
	return lo, hi
}

// MedianOf returns the median indicator value for an algorithm (test
// helper for shape assertions).
func (m *MetricsResult) MedianOf(metric, alg string) float64 {
	return stats.Median(m.Samples[metric][alg])
}
