package experiments

import (
	"fmt"
	"strings"

	"aedbmls/internal/archive"
	"aedbmls/internal/moo"
	"aedbmls/internal/textplot"
)

// FrontsResult reproduces Fig. 6 for one density: the Reference Pareto
// front approximation (best CellDE + NSGA-II solutions over all runs,
// merged through AGA, as in the paper) against the AEDB-MLS approximation
// (best MLS solutions over all runs, AGA-merged), plus the
// mutual-domination counts reported in Sect. VI.
type FrontsResult struct {
	Density   int
	Reference []*moo.Solution
	MLS       []*moo.Solution
	// RefDominatedByMLS counts reference solutions dominated by at least
	// one MLS solution (paper: 13 / 11 / 15 for the three densities).
	RefDominatedByMLS int
	// RefDominatingMLS counts reference solutions that dominate at least
	// one MLS solution (paper: 54 / 40 / 17).
	RefDominatingMLS int
}

// BuildFronts derives the Fig. 6 artifact from a RunSet, merging run
// fronts with an AGA archive of the given capacity (the paper uses the
// same AGA method and a 100-solution limit).
func BuildFronts(rs *RunSet, capacity int) *FrontsResult {
	if capacity <= 0 {
		capacity = 100
	}
	ref := archive.NewAGA(capacity, 8)
	for _, alg := range []string{AlgCellDE, AlgNSGAII} {
		for _, front := range rs.Fronts[alg] {
			archive.AddAll(ref, front)
		}
	}
	mls := archive.NewAGA(capacity, 8)
	for _, front := range rs.Fronts[AlgMLS] {
		archive.AddAll(mls, front)
	}
	res := &FrontsResult{
		Density:   rs.Density,
		Reference: ref.Contents(),
		MLS:       mls.Contents(),
	}
	archive.SortByObjective(res.Reference, 0)
	archive.SortByObjective(res.MLS, 0)
	for _, r := range res.Reference {
		dominated, dominating := false, false
		for _, m := range res.MLS {
			if moo.Dominates(m, r) {
				dominated = true
			}
			if moo.Dominates(r, m) {
				dominating = true
			}
		}
		if dominated {
			res.RefDominatedByMLS++
		}
		if dominating {
			res.RefDominatingMLS++
		}
	}
	return res
}

// RenderFigure6 renders the three pairwise projections of the 3-D fronts
// ('o' reference, '*' AEDB-MLS), in paper units.
func (r *FrontsResult) RenderFigure6() string {
	refPts := FrontPoints(r.Reference)
	mlsPts := FrontPoints(r.MLS)
	proj := func(pts [][]float64, i, j int) [][2]float64 {
		out := make([][2]float64, len(pts))
		for k, p := range pts {
			out[k] = [2]float64{p[i], p[j]}
		}
		return out
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 — Pareto front approximations, %d devices/km^2\n", r.Density)
	fmt.Fprintf(&b, "reference ('o', CellDE+NSGA-II best of runs): %d solutions; AEDB-MLS ('*'): %d solutions\n\n",
		len(r.Reference), len(r.MLS))
	axes := [][3]any{
		{0, 1, "coverage vs energy"},
		{1, 2, "forwardings vs coverage"},
		{0, 2, "forwardings vs energy"},
	}
	names := []string{"energy", "coverage", "forwardings"}
	for _, ax := range axes {
		i, j := ax[0].(int), ax[1].(int)
		b.WriteString(textplot.Scatter(
			[][][2]float64{proj(refPts, i, j), proj(mlsPts, i, j)},
			[]rune{'o', '*'}, 64, 14, names[i], names[j]))
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "mutual domination: AEDB-MLS dominates %d reference solutions; %d reference solutions dominate MLS solutions\n",
		r.RefDominatedByMLS, r.RefDominatingMLS)
	return b.String()
}
