package experiments

import (
	"math"
	"strings"
	"testing"

	"aedbmls/internal/aedb"
)

func TestExtendedBaselinesTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("extended baselines in -short mode")
	}
	sc := TinyScale()
	sc.Runs = 2
	res, err := ExtendedBaselines(sc, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	algs := []string{AlgCellDE, AlgNSGAII, AlgMLS, AlgSPEA2}
	for _, alg := range algs {
		hv := res.MedianHV[alg]
		if math.IsNaN(hv) || hv < 0 {
			t.Fatalf("%s: median HV = %v", alg, hv)
		}
		if res.FrontSizes[alg] <= 0 {
			t.Fatalf("%s: empty fronts", alg)
		}
	}
	out := res.Render()
	if !strings.Contains(out, "SPEA2") || !strings.Contains(out, "AEDB-MLS") {
		t.Fatal("rendering incomplete")
	}
}

func TestBeaconFidelity(t *testing.T) {
	sc := TinyScale()
	sc.Committee = 3
	params := aedb.Params{MinDelay: 0.1, MaxDelay: 0.4, BorderThresholdDBm: -82, MarginDBm: 1, NeighborsThreshold: 12}
	res, err := BeaconFidelity(sc, 100, params)
	if err != nil {
		t.Fatal(err)
	}
	// Both media must produce live broadcasts...
	if res.Fast.Coverage <= 0 || res.Accurate.Coverage <= 0 {
		t.Fatalf("degenerate coverage: fast=%v accurate=%v", res.Fast.Coverage, res.Accurate.Coverage)
	}
	// ...and the fast approximation must stay in the same regime: the
	// substitution argument of DESIGN.md requires agreement within tens
	// of percent, not orders of magnitude.
	if math.Abs(res.CoverageDeltaPct) > 50 {
		t.Fatalf("beacon models diverge on coverage by %.1f%%", res.CoverageDeltaPct)
	}
	if !strings.Contains(res.Render(), "frame-level") {
		t.Fatal("rendering incomplete")
	}
}

func TestBeaconFidelityUnknownDensity(t *testing.T) {
	sc := TinyScale()
	if _, err := BeaconFidelity(sc, 123, aedb.Params{}); err == nil {
		t.Fatal("unknown density accepted")
	}
}

func TestMobilityAblation(t *testing.T) {
	sc := TinyScale()
	sc.Committee = 3
	params := aedb.Params{MinDelay: 0.1, MaxDelay: 0.4, BorderThresholdDBm: -82, MarginDBm: 1, NeighborsThreshold: 12}
	res, err := MobilityAblation(sc, 100, params)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 mobility models", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Metrics.Coverage <= 0 {
			t.Fatalf("%s: zero coverage", row.Model)
		}
		if row.Metrics.BroadcastTime < 0 {
			t.Fatalf("%s: negative broadcast time", row.Model)
		}
	}
	// All models stay in the same metric regime (within 3x of each other).
	base := res.Rows[0].Metrics.Coverage
	for _, row := range res.Rows[1:] {
		ratio := row.Metrics.Coverage / base
		if ratio < 1.0/3 || ratio > 3 {
			t.Fatalf("%s coverage regime differs wildly: %v vs %v", row.Model, row.Metrics.Coverage, base)
		}
	}
	if !strings.Contains(res.Render(), "gauss-markov") {
		t.Fatal("rendering incomplete")
	}
}

func TestMobilityAblationUnknownDensity(t *testing.T) {
	if _, err := MobilityAblation(TinyScale(), 777, aedb.Params{}); err == nil {
		t.Fatal("unknown density accepted")
	}
}
