package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"aedbmls/internal/stats"
	"aedbmls/internal/textplot"
)

// TimingResult reproduces the execution-time comparison of Sect. VI: the
// paper reports AEDB-MLS needing 48/188/417 minutes against the MOEAs'
// 32/123/264 hours — over 38x faster while performing 2.4x more
// evaluations, because the local search runs on 96 cores while the MOEAs
// are sequential.
//
// The shape reproduced here: AEDB-MLS sustains a per-core evaluation
// throughput comparable to the sequential MOEAs while spreading the work
// over all available cores, so its end-to-end speedup scales with the
// worker count (38x on the paper's 96-thread platform; bounded by
// GOMAXPROCS here).
type TimingResult struct {
	Density int
	// MeanDuration and MeanEvals per algorithm.
	MeanDuration map[string]time.Duration
	MeanEvals    map[string]float64
	// Throughput is evaluations per second.
	Throughput map[string]float64
	// EvalRatio is MLS evaluations / mean MOEA evaluations (paper: 2.4).
	EvalRatio float64
	// SpeedupVsSlowestMOEA is wall-clock MOEA/MLS (the paper's headline).
	SpeedupVsSlowestMOEA float64
	// ThroughputGain is MLS throughput over the best sequential MOEA —
	// the platform-independent form of the speedup.
	ThroughputGain float64
	// ProjectedPaperSpeedup extrapolates the end-to-end speedup to the
	// paper's 96 workers at 2.4x evaluations, assuming the measured
	// per-worker efficiency.
	ProjectedPaperSpeedup float64
	// WorkersUsed is the effective MLS parallelism (min of configured
	// workers and GOMAXPROCS).
	WorkersUsed int
}

// ComputeTiming derives the timing artifact from a RunSet and the scale
// that produced it.
func ComputeTiming(sc Scale, rs *RunSet) *TimingResult {
	res := &TimingResult{
		Density:      rs.Density,
		MeanDuration: make(map[string]time.Duration),
		MeanEvals:    make(map[string]float64),
		Throughput:   make(map[string]float64),
	}
	for _, alg := range Algorithms {
		var dsum time.Duration
		for _, d := range rs.Durations[alg] {
			dsum += d
		}
		n := len(rs.Durations[alg])
		if n == 0 {
			continue
		}
		res.MeanDuration[alg] = dsum / time.Duration(n)
		var es []float64
		for _, e := range rs.Evals[alg] {
			es = append(es, float64(e))
		}
		res.MeanEvals[alg] = stats.Mean(es)
		if res.MeanDuration[alg] > 0 {
			res.Throughput[alg] = res.MeanEvals[alg] / res.MeanDuration[alg].Seconds()
		}
	}
	moeaEvals := (res.MeanEvals[AlgCellDE] + res.MeanEvals[AlgNSGAII]) / 2
	if moeaEvals > 0 {
		res.EvalRatio = res.MeanEvals[AlgMLS] / moeaEvals
	}
	slowest := res.MeanDuration[AlgCellDE]
	if res.MeanDuration[AlgNSGAII] > slowest {
		slowest = res.MeanDuration[AlgNSGAII]
	}
	if res.MeanDuration[AlgMLS] > 0 {
		res.SpeedupVsSlowestMOEA = float64(slowest) / float64(res.MeanDuration[AlgMLS])
	}
	bestMOEA := res.Throughput[AlgCellDE]
	if res.Throughput[AlgNSGAII] > bestMOEA {
		bestMOEA = res.Throughput[AlgNSGAII]
	}
	if bestMOEA > 0 {
		res.ThroughputGain = res.Throughput[AlgMLS] / bestMOEA
	}
	res.WorkersUsed = sc.MLS.Populations * sc.MLS.Workers
	if gp := runtime.GOMAXPROCS(0); res.WorkersUsed > gp {
		res.WorkersUsed = gp
	}
	if res.WorkersUsed > 0 && res.ThroughputGain > 0 {
		perWorkerEfficiency := res.ThroughputGain / float64(res.WorkersUsed)
		// Paper platform: 96 workers, 2.4x the evaluations.
		res.ProjectedPaperSpeedup = perWorkerEfficiency * 96 / 2.4
	}
	return res
}

// Render prints the timing rows for one density.
func (t *TimingResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Execution time — %d devices/km^2\n\n", t.Density)
	header := []string{"algorithm", "mean wall-clock", "mean evals", "evals/s"}
	var rows [][]string
	for _, alg := range Algorithms {
		rows = append(rows, []string{
			alg,
			FormatDuration(t.MeanDuration[alg]),
			fmt.Sprintf("%.0f", t.MeanEvals[alg]),
			fmt.Sprintf("%.1f", t.Throughput[alg]),
		})
	}
	b.WriteString(textplot.Table(header, rows))
	fmt.Fprintf(&b, "\nMLS/MOEA evaluation ratio: %.2fx (paper: 2.4x)\n", t.EvalRatio)
	fmt.Fprintf(&b, "wall-clock speedup vs slowest MOEA: %.2fx on %d effective workers\n",
		t.SpeedupVsSlowestMOEA, t.WorkersUsed)
	fmt.Fprintf(&b, "evaluation-throughput gain: %.2fx; projected end-to-end speedup on the paper's 96-thread platform: %.0fx (paper: >38x)\n",
		t.ThroughputGain, t.ProjectedPaperSpeedup)
	return b.String()
}
