package experiments

import (
	"math"
	"strings"
	"testing"

	"aedbmls/internal/moo"
)

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"paper", "small", "tiny"} {
		sc, err := ScaleByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sc.Name != name {
			t.Fatalf("scale name %q != %q", sc.Name, name)
		}
	}
	if _, err := ScaleByName("bogus"); err == nil {
		t.Fatal("bogus scale accepted")
	}
}

func TestPaperScaleMatchesProtocol(t *testing.T) {
	sc := PaperScale()
	if sc.Runs != 30 || sc.Committee != 10 {
		t.Fatalf("runs/committee = %d/%d", sc.Runs, sc.Committee)
	}
	if got := sc.MLSEvaluations(); got != 24000 {
		t.Fatalf("MLS budget = %d, want 24000", got)
	}
	if sc.NSGA.Evaluations != 10000 || sc.CellDE.Evaluations != 10000 {
		t.Fatal("MOEA budgets differ from the paper's 10000")
	}
	// The 2.4x ratio the paper reports.
	ratio := float64(sc.MLSEvaluations()) / float64(sc.NSGA.Evaluations)
	if math.Abs(ratio-2.4) > 1e-9 {
		t.Fatalf("eval ratio = %v, want 2.4", ratio)
	}
	if len(sc.Densities) != 3 {
		t.Fatal("paper scale must cover the three densities")
	}
}

func TestSmallAndTinyKeepRatios(t *testing.T) {
	for _, sc := range []Scale{SmallScale(), TinyScale()} {
		ratio := float64(sc.MLSEvaluations()) / float64(sc.NSGA.Evaluations)
		if ratio < 2 || ratio > 3 {
			t.Fatalf("%s: eval ratio = %v, want near 2.4", sc.Name, ratio)
		}
	}
}

// runAllOnce caches the tiny RunSet across tests in this package.
var cachedRunSet *RunSet

func tinyRunSet(t *testing.T) *RunSet {
	t.Helper()
	if cachedRunSet != nil {
		return cachedRunSet
	}
	sc := TinyScale()
	rs, err := RunAll(sc, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	cachedRunSet = rs
	return rs
}

func TestRunAllProducesAllAlgorithms(t *testing.T) {
	rs := tinyRunSet(t)
	if rs.Nodes != 25 {
		t.Fatalf("nodes = %d", rs.Nodes)
	}
	for _, alg := range Algorithms {
		if len(rs.Fronts[alg]) != rs.Runs {
			t.Fatalf("%s: %d fronts, want %d", alg, len(rs.Fronts[alg]), rs.Runs)
		}
		for run, front := range rs.Fronts[alg] {
			if len(front) == 0 {
				t.Fatalf("%s run %d: empty front", alg, run)
			}
			// Constrained fronts are homogeneous: either all feasible, or
			// (when the run never found a feasible point) all infeasible.
			feasible := 0
			for _, s := range front {
				if s.Feasible() {
					feasible++
				}
			}
			if feasible != 0 && feasible != len(front) {
				t.Fatalf("%s run %d: mixed feasibility front (%d/%d)", alg, run, feasible, len(front))
			}
		}
		if len(rs.Durations[alg]) != rs.Runs || len(rs.Evals[alg]) != rs.Runs {
			t.Fatalf("%s: bookkeeping incomplete", alg)
		}
	}
}

func TestBuildFronts(t *testing.T) {
	rs := tinyRunSet(t)
	fr := BuildFronts(rs, 50)
	if len(fr.Reference) == 0 || len(fr.MLS) == 0 {
		t.Fatal("empty merged fronts")
	}
	if len(fr.Reference) > 50 || len(fr.MLS) > 50 {
		t.Fatal("AGA merge exceeded capacity")
	}
	// Merged fronts are mutually non-dominated internally.
	for i, a := range fr.MLS {
		for j, b := range fr.MLS {
			if i != j && moo.Dominates(a, b) {
				t.Fatal("MLS merged front contains dominated member")
			}
		}
	}
	if fr.RefDominatedByMLS < 0 || fr.RefDominatedByMLS > len(fr.Reference) {
		t.Fatalf("dominance count out of range: %d", fr.RefDominatedByMLS)
	}
	out := fr.RenderFigure6()
	for _, want := range []string{"Figure 6", "coverage vs energy", "mutual domination"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Figure 6 rendering missing %q", want)
		}
	}
}

func TestComputeMetrics(t *testing.T) {
	rs := tinyRunSet(t)
	mr := ComputeMetrics(rs)
	for _, metric := range MetricNames {
		for _, alg := range Algorithms {
			samples := mr.Samples[metric][alg]
			if len(samples) != rs.Runs {
				t.Fatalf("%s/%s: %d samples", metric, alg, len(samples))
			}
			for _, v := range samples {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("%s/%s: non-finite sample %v", metric, alg, v)
				}
				if metric == "hypervolume" && (v < 0 || v > 1.1*1.1*1.1+1e-9) {
					t.Fatalf("hypervolume out of range: %v", v)
				}
				if metric != "hypervolume" && v < 0 {
					t.Fatalf("%s negative: %v", metric, v)
				}
			}
		}
	}
	out := mr.RenderFigure7()
	if !strings.Contains(out, "Figure 7") || !strings.Contains(out, "AEDB-MLS") {
		t.Fatal("Figure 7 rendering incomplete")
	}
}

func TestRenderTableIV(t *testing.T) {
	rs := tinyRunSet(t)
	mr := ComputeMetrics(rs)
	out := RenderTableIV([]*MetricsResult{mr})
	for _, want := range []string{"Table IV", "spread", "igd", "hypervolume", "CellDE", "NSGAII"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table IV missing %q:\n%s", want, out)
		}
	}
}

func TestPairwiseCellSymmetry(t *testing.T) {
	rs := tinyRunSet(t)
	mr := ComputeMetrics(rs)
	for _, metric := range MetricNames {
		ab := mr.PairwiseCell(metric, AlgCellDE, AlgNSGAII)
		ba := mr.PairwiseCell(metric, AlgNSGAII, AlgCellDE)
		switch ab {
		case "win":
			if ba != "loss" {
				t.Fatalf("%s: asymmetric cells %s/%s", metric, ab, ba)
			}
		case "loss":
			if ba != "win" {
				t.Fatalf("%s: asymmetric cells %s/%s", metric, ab, ba)
			}
		default:
			if ba != "-" {
				t.Fatalf("%s: asymmetric cells %s/%s", metric, ab, ba)
			}
		}
	}
}

func TestComputeTiming(t *testing.T) {
	sc := TinyScale()
	rs := tinyRunSet(t)
	tr := ComputeTiming(sc, rs)
	if tr.EvalRatio < 1.5 || tr.EvalRatio > 3.5 {
		t.Fatalf("eval ratio = %v, want near 2.4", tr.EvalRatio)
	}
	for _, alg := range Algorithms {
		if tr.Throughput[alg] <= 0 {
			t.Fatalf("%s throughput = %v", alg, tr.Throughput[alg])
		}
	}
	out := tr.Render()
	if !strings.Contains(out, "Execution time") || !strings.Contains(out, "paper: 2.4x") {
		t.Fatal("timing rendering incomplete")
	}
}

func TestSensitivityTiny(t *testing.T) {
	sc := TinyScale()
	sc.Committee = 2
	res, err := Sensitivity(sc, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Factors) != 5 || len(res.Outputs) != 4 {
		t.Fatalf("dimensions: %d factors, %d outputs", len(res.Factors), len(res.Outputs))
	}
	for o := range res.Outputs {
		for f := range res.Factors {
			m, tot := res.Indices[o].Main[f], res.Indices[o].Total[f]
			if m < 0 || m > 1 || tot < 0 || tot > 1 {
				t.Fatalf("index out of [0,1]: main=%v total=%v", m, tot)
			}
		}
	}
	// Headline finding of the paper: the delays dominate the broadcast
	// time (Fig. 2a).
	factor, _ := res.MostInfluential("broadcast_time")
	if factor != "min_delay" && factor != "max_delay" {
		t.Fatalf("broadcast time driven by %q, want a delay parameter", factor)
	}
	fig := res.RenderFigure2()
	if !strings.Contains(fig, "Influence on broadcast_time") {
		t.Fatal("Figure 2 rendering incomplete")
	}
	tab := res.RenderTableI()
	if !strings.Contains(tab, "min_delay") || !strings.Contains(tab, "broadcast time") {
		t.Fatal("Table I rendering incomplete")
	}
}

func TestConfigAnalysisTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("config analysis sweep in -short mode")
	}
	sc := TinyScale()
	sc.Runs = 2
	res, err := ConfigAnalysis(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 9 {
		t.Fatalf("cells = %d, want 9 (3 alphas x 3 resets)", len(res.Cells))
	}
	if res.Best.MedianHV <= 0 {
		t.Fatalf("best median HV = %v", res.Best.MedianHV)
	}
	if !strings.Contains(res.Render(), "alpha") {
		t.Fatal("rendering incomplete")
	}
}

func TestArchiveAblationTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	sc := TinyScale()
	sc.Runs = 2
	res, err := ArchiveAblation(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.MedianHV <= 0 || row.FrontSize <= 0 {
			t.Fatalf("degenerate ablation row: %+v", row)
		}
	}
}

func TestParallelismAblationTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	sc := TinyScale()
	res, err := ParallelismAblation(sc, [][2]int{{1, 1}, {2, 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Throughput <= 0 {
			t.Fatalf("zero throughput: %+v", row)
		}
	}
}

func TestMemeticTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("memetic comparison in -short mode")
	}
	sc := TinyScale()
	sc.Runs = 2
	res, err := MemeticCellDE(sc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PlainHV) != 2 || len(res.MemeticHV) != 2 {
		t.Fatalf("sample sizes %d/%d", len(res.PlainHV), len(res.MemeticHV))
	}
	if !strings.Contains(res.Render(), "memetic") {
		t.Fatal("rendering incomplete")
	}
}

func TestFrontPointsUsesMetrics(t *testing.T) {
	rs := tinyRunSet(t)
	front := rs.Fronts[AlgMLS][0]
	pts := FrontPoints(front)
	if len(pts) != len(front) {
		t.Fatal("point count mismatch")
	}
	// Coverage column must be the un-negated metric (non-negative).
	for _, p := range pts {
		if p[1] < 0 {
			t.Fatalf("coverage negative in paper units: %v", p)
		}
	}
	// Objective points keep minimisation signs.
	ops := ObjectivePoints(front)
	for i := range ops {
		if ops[i][1] != -pts[i][1] {
			t.Fatal("objective/paper-unit mismatch")
		}
	}
}
