package experiments

import (
	"fmt"
	"strings"

	"aedbmls/internal/aedb"
	"aedbmls/internal/eval"
	"aedbmls/internal/geom"
	"aedbmls/internal/manet"
	"aedbmls/internal/mobility"
	"aedbmls/internal/rng"
	"aedbmls/internal/textplot"
)

// MobilityRow is one mobility model's averaged AEDB metrics.
type MobilityRow struct {
	Model   string
	Metrics eval.Metrics
}

// MobilityAblationResult compares the paper's random-walk mobility against
// smoother (Gauss-Markov) and static node placements under one fixed AEDB
// configuration (ablation A6). The broadcast metrics should be in the same
// regime across models — dissemination happens within a ~2 s window, far
// faster than node movement at <= 2 m/s — which justifies evaluating the
// tuned parameters beyond the exact mobility pattern of Table II.
type MobilityAblationResult struct {
	Density int
	Params  aedb.Params
	Rows    []MobilityRow
}

// MobilityAblation runs the committee under each mobility model.
func MobilityAblation(sc Scale, density int, params aedb.Params) (*MobilityAblationResult, error) {
	nodes, ok := eval.DensityNodes[density]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown density %d", density)
	}
	models := []struct {
		name string
		make func(id int, r *rng.Rand) mobility.Model
	}{
		{"random-walk (paper)", nil}, // nil keeps the manet default
		{"gauss-markov", func(_ int, r *rng.Rand) mobility.Model {
			return mobility.NewGaussMarkov(geom.Square(500), 0.75, 1.0, 1.0, r)
		}},
		{"random-waypoint", func(_ int, r *rng.Rand) mobility.Model {
			return mobility.NewRandomWaypoint(geom.Square(500), 0.1, 2.0, 2.0, r)
		}},
		{"static", func(_ int, r *rng.Rand) mobility.Model {
			return &mobility.Static{P: geom.Vec2{X: r.Range(0, 500), Y: r.Range(0, 500)}}
		}},
	}
	res := &MobilityAblationResult{Density: density, Params: params}
	for _, m := range models {
		cfg := manet.DefaultScenario(nodes)
		cfg.MakeMobility = m.make
		problem := eval.NewProblem(density, sc.Seed,
			append(sc.EvalOptions(), eval.WithConfig(cfg))...)
		res.Rows = append(res.Rows, MobilityRow{Model: m.name, Metrics: problem.Simulate(params)})
	}
	return res, nil
}

// Render prints the comparison.
func (r *MobilityAblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A6 — mobility model, %d devices/km^2\n\n", r.Density)
	header := []string{"mobility", "coverage", "forwardings", "energy(dBm)", "bt(s)"}
	var rows [][]string
	for _, row := range r.Rows {
		m := row.Metrics
		rows = append(rows, []string{
			row.Model, fmt.Sprintf("%.2f", m.Coverage), fmt.Sprintf("%.2f", m.Forwardings),
			fmt.Sprintf("%.2f", m.EnergyDBmSum), fmt.Sprintf("%.3f", m.BroadcastTime),
		})
	}
	b.WriteString(textplot.Table(header, rows))
	return b.String()
}
