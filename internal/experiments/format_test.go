package experiments

import (
	"testing"
	"time"
)

// TestFormatDuration pins the adaptive-precision rendering: millisecond
// rounding for long durations, progressively finer units below 100ms, and
// never "0s" for a non-zero duration (the bug this replaced: sub-millisecond
// ablation rows all printed "0s").
func TestFormatDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "0s"},
		{3 * time.Second, "3s"},
		{1234 * time.Millisecond, "1.234s"},
		{100 * time.Millisecond, "100ms"},
		// Below 100ms the unit drops to 100µs: three significant digits.
		{99*time.Millisecond + 950*time.Microsecond, "100ms"},
		{42*time.Millisecond + 360*time.Microsecond, "42.4ms"},
		// The old code printed "0s" for everything below 500µs.
		{740 * time.Microsecond, "740µs"},
		{499 * time.Microsecond, "499µs"},
		{12*time.Microsecond + 340*time.Nanosecond, "12.3µs"},
		{987 * time.Nanosecond, "987ns"},
		{1 * time.Nanosecond, "1ns"},
		{-740 * time.Microsecond, "-740µs"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.d); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}
