package experiments

import "time"

// FormatDuration renders a wall-clock duration with adaptive precision:
// durations at or above 100ms round to the millisecond as before, shorter
// ones keep enough sub-millisecond digits to stay meaningful (a 740µs
// optimizer run prints "740µs", not "1ms" — and never "0s"). The rounding
// unit is the largest power-of-ten divisor of a millisecond that keeps at
// least three significant digits.
func FormatDuration(d time.Duration) string {
	ad := d
	if ad < 0 {
		ad = -ad
	}
	unit := time.Millisecond
	for unit > time.Nanosecond && ad < 100*unit {
		unit /= 10
	}
	return d.Round(unit).String()
}
