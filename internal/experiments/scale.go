// Package experiments contains one driver per table and figure of the
// paper (see the per-experiment index in DESIGN.md): the Fast99
// sensitivity analysis (Fig. 2, Table I), the Pareto-front comparison
// (Fig. 6 and the dominance counts of Sect. VI), the quality-indicator
// study (Table IV, Fig. 7), the execution-time comparison, the Sect. V
// configuration analysis of alpha and the reset period, and the ablations
// called out in DESIGN.md.
//
// Every driver is parameterised by a Scale so the full paper protocol
// (30 runs, 24 000 evaluations per AEDB-MLS execution) and fast
// test/bench variants share one code path.
package experiments

import (
	"fmt"

	"aedbmls/internal/cellde"
	"aedbmls/internal/core"
	"aedbmls/internal/eval"
	"aedbmls/internal/nsga2"
)

// Scale bundles the experimental budgets.
type Scale struct {
	Name      string
	Densities []int
	// Runs is the number of independent executions per algorithm
	// (paper: 30).
	Runs int
	// Committee is the number of frozen networks per evaluation
	// (paper: 10).
	Committee int
	// MLS is the AEDB-MLS configuration template (seed overridden per
	// run).
	MLS core.Config
	// NSGA and CellDE are the MOEA templates. Their evaluation budgets
	// should be the MLS total divided by 2.4, the ratio reported in the
	// paper.
	NSGA   nsga2.Config
	CellDE cellde.Config
	// SensitivityN is the Fast99 sample count per factor.
	SensitivityN int
	// ScenarioWorkers fans every evaluation's committee across up to this
	// many goroutines (eval.WithScenarioWorkers); metrics are
	// bit-identical for any value. 0 or 1 evaluates serially.
	ScenarioWorkers int
	// ReferencePath runs every evaluation through the full-tail reference
	// engine instead of the default fast engine (eval.WithReferencePath).
	// Metrics are bit-identical; paper-reproduction runs may set it to
	// soak the equivalence contract at scale.
	ReferencePath bool
	// UnsharedTapes opts every problem of this scale out of the
	// process-wide beacon-tape cache (eval.WithSharedTapes): each
	// per-density problem then records its own committee tapes instead of
	// sharing one recording per scenario across the density sweep.
	// Metrics are bit-identical either way.
	UnsharedTapes bool
	// ExactPhysics evaluates every problem of this scale through the
	// reference per-call path-loss physics (eval.WithExactPhysics)
	// instead of the fused d2-space kernel: the choice for runs that must
	// extend previously recorded reference-physics artifacts bit-for-bit.
	ExactPhysics bool
	// Fidelity enables the multi-fidelity evaluation ladder on every
	// problem of this scale (eval.WithFidelity): batched evaluations are
	// screened on a cheap committee prefix and only candidates within
	// PromoteEps of the reference front are re-evaluated at full
	// fidelity. Archives and reported fronts only ever hold full-fidelity
	// metrics. The zero value keeps every evaluation at full fidelity.
	Fidelity eval.Fidelity
	// PromoteEps overrides the ladder's promotion slack
	// (eval.WithPromoteEpsilon); 0 keeps eval.DefaultPromoteEps.
	PromoteEps float64
	// Seed is the base seed; run r of algorithm a uses
	// Seed + 1000*r + a, and the network committee uses Seed directly.
	Seed uint64
	// CheckpointDir, when non-empty, gives every (algorithm, density, run)
	// of the comparison suite its own crash-safe checkpoint file in this
	// directory: a re-run after a crash or interruption skips completed
	// runs (their Final checkpoints short-circuit) and resumes interrupted
	// ones bit-exactly. Only RunAll-driven experiments checkpoint; the
	// cheap analyses re-run from scratch.
	CheckpointDir string
	// CheckpointEvery is the save cadence in evaluations (<= 0: a default
	// of 1000).
	CheckpointEvery int64
	// Stop, when non-nil, interrupts the suite cooperatively at the next
	// optimizer boundary; RunAll then returns an error wrapping
	// study.ErrStop after saving checkpoints.
	Stop <-chan struct{}
}

// MLSEvaluations returns the total AEDB-MLS budget for this scale.
func (s Scale) MLSEvaluations() int {
	return s.MLS.Populations * s.MLS.Workers * s.MLS.EvalsPerWorker
}

// PaperScale reproduces the paper's experimental protocol: 30 runs, AEDB-MLS
// with 8 populations x 12 threads x 250 evaluations (24 000), MOEAs with
// 10 000 evaluations, all three densities.
func PaperScale() Scale {
	mls := core.DefaultConfig()
	mls.Criteria = core.DefaultAEDBCriteria()
	return Scale{
		Name:         "paper",
		Densities:    []int{100, 200, 300},
		Runs:         30,
		Committee:    10,
		MLS:          mls,
		NSGA:         nsga2.DefaultConfig(),
		CellDE:       cellde.DefaultConfig(),
		SensitivityN: 1000,
		Seed:         20130520, // IPDPSW 2013
	}
}

// SmallScale is a laptop-scale protocol preserving all structural ratios
// (MLS evaluations = 2.4x the MOEAs'), used by the default CLI runs.
func SmallScale() Scale {
	s := PaperScale()
	s.Name = "small"
	s.Runs = 5
	s.MLS.Populations = 4
	s.MLS.Workers = 3
	s.MLS.EvalsPerWorker = 40 // 480 evaluations
	s.MLS.ResetPeriod = 15
	s.NSGA.PopSize = 20
	s.NSGA.Evaluations = 200 // 480 / 2.4
	s.CellDE.PopSize = 16
	s.CellDE.Evaluations = 200
	s.CellDE.Feedback = 4
	s.SensitivityN = 129
	return s
}

// TinyScale is the smallest structurally faithful protocol; tests and
// benchmarks use it.
func TinyScale() Scale {
	s := SmallScale()
	s.Name = "tiny"
	s.Densities = []int{100}
	s.Runs = 3
	s.Committee = 3
	s.MLS.Populations = 2
	s.MLS.Workers = 2
	s.MLS.EvalsPerWorker = 15 // 60 evaluations
	s.MLS.ResetPeriod = 6
	s.NSGA.PopSize = 8
	s.NSGA.Evaluations = 24
	s.CellDE.PopSize = 9
	s.CellDE.Evaluations = 27
	s.CellDE.Feedback = 2
	s.SensitivityN = 65
	return s
}

// ScaleByName resolves "paper", "small" or "tiny".
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "paper":
		return PaperScale(), nil
	case "small":
		return SmallScale(), nil
	case "tiny":
		return TinyScale(), nil
	}
	return Scale{}, fmt.Errorf("experiments: unknown scale %q (want paper, small or tiny)", name)
}

// EvalOptions returns the evaluation options every problem of this scale
// is built with.
func (s Scale) EvalOptions() []eval.Option {
	opts := []eval.Option{eval.WithCommittee(s.Committee)}
	if s.ScenarioWorkers > 1 {
		opts = append(opts, eval.WithScenarioWorkers(s.ScenarioWorkers))
	}
	if s.ReferencePath {
		opts = append(opts, eval.WithReferencePath(true))
	}
	if s.UnsharedTapes {
		opts = append(opts, eval.WithSharedTapes(false))
	}
	if s.ExactPhysics {
		opts = append(opts, eval.WithExactPhysics(true))
	}
	if s.Fidelity.Enabled() {
		opts = append(opts, eval.WithFidelity(s.Fidelity))
		if s.PromoteEps > 0 {
			opts = append(opts, eval.WithPromoteEpsilon(s.PromoteEps))
		}
	}
	return opts
}

// Problem builds the frozen tuning problem for a density under this scale.
func (s Scale) Problem(density int) *eval.Problem {
	return eval.NewProblem(density, s.Seed, s.EvalOptions()...)
}

// Logf is an optional progress sink; nil discards.
type Logf func(format string, args ...any)

func (l Logf) printf(format string, args ...any) {
	if l != nil {
		l(format, args...)
	}
}
