package experiments

import (
	"fmt"
	"strings"

	"aedbmls/internal/archive"
	"aedbmls/internal/core"
	"aedbmls/internal/indicators"
	"aedbmls/internal/stats"
	"aedbmls/internal/textplot"
)

// ConfigCell is one (alpha, reset) combination of the Sect. V parameter
// study, scored by median hypervolume over the repetitions.
type ConfigCell struct {
	Alpha    float64
	Reset    int
	MedianHV float64
	HVs      []float64
}

// ConfigAnalysisResult reproduces the Sect. V configuration analysis:
// alpha in {0.1, 0.2, 0.3} x reset in {15, 25, 50} on the sparsest
// network; the paper selects alpha = 0.2, reset = 50.
type ConfigAnalysisResult struct {
	Density int
	Cells   []ConfigCell
	Best    ConfigCell
}

// ConfigAnalysis sweeps the candidate values of the BLX-α magnitude and
// the reset period, running sc.Runs MLS executions per combination on the
// least dense network and comparing median hypervolume against the
// combined reference of the sweep.
func ConfigAnalysis(sc Scale, log Logf) (*ConfigAnalysisResult, error) {
	alphas := []float64{0.1, 0.2, 0.3}
	resets := []int{15, 25, 50}
	density := sc.Densities[0]
	problem := sc.Problem(density)

	type runFront struct {
		cell  int
		front [][]float64
	}
	var fronts []runFront
	var cells []ConfigCell
	all := archive.NewUnbounded()

	for _, alpha := range alphas {
		for _, reset := range resets {
			ci := len(cells)
			cells = append(cells, ConfigCell{Alpha: alpha, Reset: reset})
			for run := 0; run < sc.Runs; run++ {
				cfg := sc.MLS
				cfg.Alpha = alpha
				// The reset candidates are defined against the paper's
				// 250-iteration budget; scale proportionally so reduced
				// budgets still reset a comparable number of times.
				cfg.ResetPeriod = scaleReset(reset, cfg.EvalsPerWorker)
				cfg.Seed = sc.Seed + uint64(1000*run) + uint64(ci)
				if len(cfg.Criteria) == 0 {
					cfg.Criteria = core.DefaultAEDBCriteria()
				}
				res, err := core.Optimize(problem, cfg, nil)
				if err != nil {
					return nil, fmt.Errorf("experiments: config analysis: %w", err)
				}
				archive.AddAll(all, res.Front)
				fronts = append(fronts, runFront{cell: ci, front: ObjectivePoints(res.Front)})
			}
			log.printf("config analysis: alpha=%.1f reset=%d done", alpha, reset)
		}
	}

	refPts := ObjectivePoints(all.Contents())
	norm := indicators.NewNormalizer(refPts)
	refPoint := []float64{1.1, 1.1, 1.1}
	for _, rf := range fronts {
		hv := indicators.Hypervolume(norm.Apply(rf.front), refPoint)
		cells[rf.cell].HVs = append(cells[rf.cell].HVs, hv)
	}
	res := &ConfigAnalysisResult{Density: density, Cells: cells}
	for i := range cells {
		cells[i].MedianHV = stats.Median(cells[i].HVs)
		if cells[i].MedianHV > res.Best.MedianHV {
			res.Best = cells[i]
		}
	}
	res.Cells = cells
	return res, nil
}

// scaleReset maps a paper-scale reset period (out of 250 iterations per
// worker) onto the current per-worker budget, keeping at least 2.
func scaleReset(reset, evalsPerWorker int) int {
	scaled := reset * evalsPerWorker / 250
	if scaled < 2 {
		scaled = 2
	}
	return scaled
}

// Render prints the sweep as a table.
func (r *ConfigAnalysisResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section V configuration analysis — %d devices/km^2\n\n", r.Density)
	header := []string{"alpha", "reset", "median HV"}
	var rows [][]string
	for _, c := range r.Cells {
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", c.Alpha), fmt.Sprintf("%d", c.Reset), fmt.Sprintf("%.4f", c.MedianHV),
		})
	}
	b.WriteString(textplot.Table(header, rows))
	fmt.Fprintf(&b, "\nselected: alpha=%.1f, reset=%d (paper selected alpha=0.2, reset=50)\n",
		r.Best.Alpha, r.Best.Reset)
	return b.String()
}
