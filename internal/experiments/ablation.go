package experiments

import (
	"fmt"
	"strings"
	"time"

	"aedbmls/internal/archive"
	"aedbmls/internal/cellde"
	"aedbmls/internal/core"
	"aedbmls/internal/indicators"
	"aedbmls/internal/stats"
	"aedbmls/internal/textplot"
)

// ArchiveAblationRow is one archive policy scored inside AEDB-MLS.
type ArchiveAblationRow struct {
	Policy    string
	MedianHV  float64
	FrontSize float64
}

// ArchiveAblationResult compares the AGA archive the paper chose against
// a crowding-distance archive and an unbounded archive (DESIGN.md A1).
type ArchiveAblationResult struct {
	Density int
	Rows    []ArchiveAblationRow
}

// ArchiveAblation runs AEDB-MLS under each archive policy.
func ArchiveAblation(sc Scale, log Logf) (*ArchiveAblationResult, error) {
	density := sc.Densities[0]
	problem := sc.Problem(density)
	policies := []struct {
		name string
		make func() archive.Interface
	}{
		{"aga", func() archive.Interface { return archive.NewAGA(sc.MLS.ArchiveCapacity, sc.MLS.GridDivisions) }},
		{"crowding", func() archive.Interface { return archive.NewCrowding(sc.MLS.ArchiveCapacity) }},
		{"unbounded", func() archive.Interface { return archive.NewUnbounded() }},
	}
	type runFront struct {
		policy int
		front  [][]float64
		size   int
	}
	var fronts []runFront
	all := archive.NewUnbounded()
	for pi, pol := range policies {
		for run := 0; run < sc.Runs; run++ {
			cfg := sc.MLS
			cfg.Seed = sc.Seed + uint64(1000*run) + uint64(pi)
			if len(cfg.Criteria) == 0 {
				cfg.Criteria = core.DefaultAEDBCriteria()
			}
			res, err := core.Optimize(problem, cfg, pol.make())
			if err != nil {
				return nil, fmt.Errorf("experiments: archive ablation: %w", err)
			}
			archive.AddAll(all, res.Front)
			fronts = append(fronts, runFront{policy: pi, front: ObjectivePoints(res.Front), size: len(res.Front)})
		}
		log.printf("archive ablation: %s done", pol.name)
	}
	norm := indicators.NewNormalizer(ObjectivePoints(all.Contents()))
	refPoint := []float64{1.1, 1.1, 1.1}
	hvs := make([][]float64, len(policies))
	sizes := make([][]float64, len(policies))
	for _, rf := range fronts {
		hvs[rf.policy] = append(hvs[rf.policy], indicators.Hypervolume(norm.Apply(rf.front), refPoint))
		sizes[rf.policy] = append(sizes[rf.policy], float64(rf.size))
	}
	res := &ArchiveAblationResult{Density: density}
	for pi, pol := range policies {
		res.Rows = append(res.Rows, ArchiveAblationRow{
			Policy: pol.name, MedianHV: stats.Median(hvs[pi]), FrontSize: stats.Mean(sizes[pi]),
		})
	}
	return res, nil
}

// Render prints the archive ablation.
func (r *ArchiveAblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A1 — archive policy inside AEDB-MLS, %d devices/km^2\n\n", r.Density)
	header := []string{"policy", "median HV", "mean front size"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{row.Policy, fmt.Sprintf("%.4f", row.MedianHV), fmt.Sprintf("%.1f", row.FrontSize)})
	}
	b.WriteString(textplot.Table(header, rows))
	return b.String()
}

// ParallelismRow is one population/worker layout of ablation A2.
type ParallelismRow struct {
	Populations, Workers int
	Duration             time.Duration
	Evals                int64
	Throughput           float64
}

// ParallelismAblationResult sweeps the process layout at a fixed total
// budget, demonstrating the scaling behaviour behind the paper's speedup
// claim (DESIGN.md A2).
type ParallelismAblationResult struct {
	Density int
	Rows    []ParallelismRow
}

// ParallelismAblation runs AEDB-MLS under several layouts with the same
// total evaluation budget.
func ParallelismAblation(sc Scale, layouts [][2]int, log Logf) (*ParallelismAblationResult, error) {
	if len(layouts) == 0 {
		layouts = [][2]int{{1, 1}, {1, 2}, {2, 2}, {2, 4}, {4, 4}}
	}
	density := sc.Densities[0]
	problem := sc.Problem(density)
	total := sc.MLSEvaluations()
	res := &ParallelismAblationResult{Density: density}
	for _, layout := range layouts {
		pops, workers := layout[0], layout[1]
		cfg := sc.MLS
		cfg.Populations = pops
		cfg.Workers = workers
		cfg.EvalsPerWorker = total / (pops * workers)
		if cfg.EvalsPerWorker < 2 {
			cfg.EvalsPerWorker = 2
		}
		if len(cfg.Criteria) == 0 {
			cfg.Criteria = core.DefaultAEDBCriteria()
		}
		cfg.Seed = sc.Seed + uint64(pops*100+workers)
		out, err := core.Optimize(problem, cfg, nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: parallelism ablation: %w", err)
		}
		row := ParallelismRow{
			Populations: pops, Workers: workers,
			Duration: out.Duration, Evals: out.Evaluations,
		}
		if out.Duration > 0 {
			row.Throughput = float64(out.Evaluations) / out.Duration.Seconds()
		}
		res.Rows = append(res.Rows, row)
		log.printf("parallelism ablation: %dx%d done (%.1f evals/s)", pops, workers, row.Throughput)
	}
	return res, nil
}

// Render prints the parallelism ablation.
func (r *ParallelismAblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation A2 — parallel layout at fixed budget, %d devices/km^2\n\n", r.Density)
	header := []string{"populations", "workers/pop", "wall-clock", "evals", "evals/s"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Populations), fmt.Sprintf("%d", row.Workers),
			FormatDuration(row.Duration),
			fmt.Sprintf("%d", row.Evals), fmt.Sprintf("%.1f", row.Throughput),
		})
	}
	b.WriteString(textplot.Table(header, rows))
	return b.String()
}

// MemeticResult compares plain CellDE with the paper's future-work hybrid
// (CellDE + AEDB-MLS local search) at equal evaluation budgets
// (DESIGN.md A3).
type MemeticResult struct {
	Density                  int
	PlainHV, MemeticHV       []float64
	PlainMedian, MemeticHVMd float64
	Wilcoxon                 stats.WilcoxonResult
}

// MemeticCellDE runs the comparison.
func MemeticCellDE(sc Scale, log Logf) (*MemeticResult, error) {
	density := sc.Densities[0]
	problem := sc.Problem(density)
	all := archive.NewUnbounded()
	var plainFronts, memeticFronts [][][]float64
	for run := 0; run < sc.Runs; run++ {
		seed := sc.Seed + uint64(500*run)

		cfg := sc.CellDE
		cfg.Seed = seed
		plain, err := cellde.Optimize(problem, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: memetic: plain run %d: %w", run, err)
		}
		archive.AddAll(all, plain.Front)
		plainFronts = append(plainFronts, ObjectivePoints(plain.Front))

		mcfg := cellde.Memetic(sc.CellDE, 2, sc.MLS.Alpha, core.DefaultAEDBCriteria())
		mcfg.Seed = seed
		mem, err := cellde.Optimize(problem, mcfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: memetic: hybrid run %d: %w", run, err)
		}
		archive.AddAll(all, mem.Front)
		memeticFronts = append(memeticFronts, ObjectivePoints(mem.Front))
		log.printf("memetic: run %d/%d done", run+1, sc.Runs)
	}
	norm := indicators.NewNormalizer(ObjectivePoints(all.Contents()))
	refPoint := []float64{1.1, 1.1, 1.1}
	res := &MemeticResult{Density: density}
	for _, f := range plainFronts {
		res.PlainHV = append(res.PlainHV, indicators.Hypervolume(norm.Apply(f), refPoint))
	}
	for _, f := range memeticFronts {
		res.MemeticHV = append(res.MemeticHV, indicators.Hypervolume(norm.Apply(f), refPoint))
	}
	res.PlainMedian = stats.Median(res.PlainHV)
	res.MemeticHVMd = stats.Median(res.MemeticHV)
	res.Wilcoxon = stats.Wilcoxon(res.MemeticHV, res.PlainHV)
	return res, nil
}

// Render prints the memetic comparison.
func (r *MemeticResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Future work A3 — CellDE vs memetic CellDE+MLS, %d devices/km^2\n\n", r.Density)
	fmt.Fprintf(&b, "median HV: plain=%.4f memetic=%.4f (Wilcoxon p=%.4f)\n",
		r.PlainMedian, r.MemeticHVMd, r.Wilcoxon.P)
	return b.String()
}
