package textplot

import (
	"strings"
	"testing"
)

func TestBar(t *testing.T) {
	out := Bar([]string{"alpha", "beta"}, []float64{1, 0.5}, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], "alpha") || !strings.Contains(lines[1], "beta") {
		t.Fatal("labels missing")
	}
	// The max bar is full width, the half bar roughly half.
	full := strings.Count(lines[0], "#")
	half := strings.Count(lines[1], "#")
	if full != 20 || half != 10 {
		t.Fatalf("bar widths %d/%d, want 20/10", full, half)
	}
}

func TestBarZeroValues(t *testing.T) {
	out := Bar([]string{"x"}, []float64{0}, 10)
	if strings.Contains(out, "#") {
		t.Fatal("zero value drew a bar")
	}
}

func TestStackedBar(t *testing.T) {
	out := StackedBar([]string{"f1", "f2"}, []float64{0.5, 0.1}, []float64{0.2, 0.0}, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if strings.Count(lines[0], "#") != 10 || strings.Count(lines[0], "+") != 4 {
		t.Fatalf("stacked segments wrong: %q", lines[0])
	}
	if !strings.Contains(lines[0], "main=0.500") {
		t.Fatalf("values missing: %q", lines[0])
	}
}

func TestStackedBarOverflowClipped(t *testing.T) {
	out := StackedBar([]string{"x"}, []float64{0.9}, []float64{0.9}, 20)
	line := strings.Split(out, "\n")[0]
	if strings.Count(line, "#")+strings.Count(line, "+") > 20 {
		t.Fatalf("stacked bar overflowed: %q", line)
	}
}

func TestBoxRow(t *testing.T) {
	row := BoxRow("alg", [5]float64{0, 0.25, 0.5, 0.75, 1}, 0, 1, 41)
	if !strings.Contains(row, "alg") || !strings.Contains(row, "M") {
		t.Fatalf("box row malformed: %q", row)
	}
	mIdx := strings.Index(row, "M")
	if mIdx < 30 || mIdx > 42 {
		t.Fatalf("median marker misplaced at %d: %q", mIdx, row)
	}
	if !strings.Contains(row, "=") || !strings.Contains(row, "|") {
		t.Fatalf("box/whisker glyphs missing: %q", row)
	}
}

func TestBoxRowDegenerateRange(t *testing.T) {
	row := BoxRow("x", [5]float64{1, 1, 1, 1, 1}, 1, 1, 20)
	if row == "" {
		t.Fatal("empty row")
	}
}

func TestScatter(t *testing.T) {
	series := [][][2]float64{
		{{0, 0}, {1, 1}},
		{{0.5, 0.5}},
	}
	out := Scatter(series, []rune{'o', '*'}, 21, 11, "x", "y")
	if !strings.Contains(out, "o") || !strings.Contains(out, "*") {
		t.Fatalf("marks missing:\n%s", out)
	}
	if !strings.Contains(out, "y vs x") {
		t.Fatal("axis header missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 13 { // header + 11 rows + axis
		t.Fatalf("line count = %d", len(lines))
	}
}

func TestScatterEmpty(t *testing.T) {
	out := Scatter(nil, nil, 10, 5, "x", "y")
	if !strings.Contains(out, "no points") {
		t.Fatalf("empty scatter output: %q", out)
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"name", "v"}, [][]string{{"alpha", "1"}, {"b", "22"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("line count = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Fatalf("header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "----") {
		t.Fatalf("separator: %q", lines[1])
	}
	// Columns aligned: "v" column starts at the same offset everywhere.
	vCol := strings.Index(lines[0], "v")
	if lines[2][vCol:vCol+1] != "1" && lines[3][vCol:vCol+1] == "" {
		t.Fatalf("column misaligned:\n%s", out)
	}
}
