// Package textplot renders the paper's figures as plain-text graphics:
// grouped bar charts for the sensitivity analysis (Fig. 2), boxplot rows
// for the indicator distributions (Fig. 7) and scatter panels for the
// Pareto-front projections (Fig. 6).
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Bar renders a horizontal bar chart: one row per label, bars scaled to
// width characters at the maximum value.
func Bar(labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 40
	}
	maxV := 0.0
	maxLabel := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	var b strings.Builder
	for i, v := range values {
		n := 0
		if maxV > 0 {
			n = int(math.Round(v / maxV * float64(width)))
		}
		fmt.Fprintf(&b, "%-*s | %-*s %7.4f\n", maxLabel, labels[i], width, strings.Repeat("#", n), v)
	}
	return b.String()
}

// StackedBar renders one row per label with two stacked segments (used
// for Fig. 2: main effect '#' plus interactions '+'), scaled so the total
// of 1.0 spans width characters.
func StackedBar(labels []string, main, extra []float64, width int) string {
	if width <= 0 {
		width = 50
	}
	maxLabel := 0
	for _, l := range labels {
		if len(l) > maxLabel {
			maxLabel = len(l)
		}
	}
	var b strings.Builder
	for i := range labels {
		m := int(math.Round(main[i] * float64(width)))
		e := int(math.Round(extra[i] * float64(width)))
		if m+e > width {
			e = width - m
		}
		if e < 0 {
			e = 0
		}
		bar := strings.Repeat("#", m) + strings.Repeat("+", e)
		fmt.Fprintf(&b, "%-*s | %-*s main=%.3f inter=%.3f\n", maxLabel, labels[i], width, bar, main[i], extra[i])
	}
	return b.String()
}

// BoxRow renders one boxplot on a horizontal axis spanning [lo, hi]:
//
//	|----[==M==]------|
//
// with whiskers '-', box '=', median 'M'.
func BoxRow(label string, min5 [5]float64, lo, hi float64, width int) string {
	if width <= 0 {
		width = 50
	}
	span := hi - lo
	col := func(v float64) int {
		if span <= 0 {
			return 0
		}
		c := int(math.Round((v - lo) / span * float64(width-1)))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	row := []byte(strings.Repeat(" ", width))
	wl, q1, med, q3, wh := col(min5[0]), col(min5[1]), col(min5[2]), col(min5[3]), col(min5[4])
	for c := wl; c <= wh; c++ {
		row[c] = '-'
	}
	for c := q1; c <= q3; c++ {
		row[c] = '='
	}
	row[wl] = '|'
	row[wh] = '|'
	row[med] = 'M'
	return fmt.Sprintf("%-14s %s  med=%.4g", label, string(row), min5[2])
}

// Scatter renders points as a w x h character raster. Each point is a
// (x, y) pair; series are drawn with their rune, later series overwrite
// earlier ones. Axis ranges come from the data.
func Scatter(series [][][2]float64, marks []rune, w, h int, xlabel, ylabel string) string {
	if w <= 0 {
		w = 60
	}
	if h <= 0 {
		h = 16
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, p := range s {
			minX = math.Min(minX, p[0])
			maxX = math.Max(maxX, p[0])
			minY = math.Min(minY, p[1])
			maxY = math.Max(maxY, p[1])
		}
	}
	if math.IsInf(minX, 1) {
		return "(no points)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	rows := make([][]byte, h)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range series {
		mark := byte('*')
		if si < len(marks) {
			mark = byte(marks[si])
		}
		for _, p := range s {
			cx := int((p[0] - minX) / (maxX - minX) * float64(w-1))
			cy := int((p[1] - minY) / (maxY - minY) * float64(h-1))
			rows[h-1-cy][cx] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s vs %s  [x: %.4g..%.4g, y: %.4g..%.4g]\n", ylabel, xlabel, minX, maxX, minY, maxY)
	for _, r := range rows {
		b.WriteString("  |")
		b.Write(r)
		b.WriteByte('\n')
	}
	b.WriteString("  +" + strings.Repeat("-", w) + "\n")
	return b.String()
}

// Table renders rows with aligned columns separated by two spaces.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
