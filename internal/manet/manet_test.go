package manet

import (
	"math"
	"testing"

	"aedbmls/internal/geom"
	"aedbmls/internal/mobility"
	"aedbmls/internal/rng"
)

// staticConfig builds a small network with pinned node positions and no
// warm-up, for precise behavioural tests.
func staticConfig(positions []geom.Vec2) Config {
	cfg := DefaultScenario(len(positions))
	cfg.WarmupTime = 0
	cfg.EndTime = 10
	cfg.MakeMobility = func(id int, _ *rng.Rand) mobility.Model {
		return &mobility.Static{P: positions[id]}
	}
	return cfg
}

// recorder is a protocol that logs receptions and optionally reacts.
type recorder struct {
	node     *Node
	received []recordedRx
	onData   func(*recorder, *Message, int, float64)
}

type recordedRx struct {
	msgID, from int
	power       float64
	t           float64
}

func (r *recorder) Init(n *Node) { r.node = n }
func (r *recorder) Originate(msg *Message) {
	r.node.Network().TransmitData(r.node, msg, r.node.Network().Cfg.DefaultTxPowerDBm)
}
func (r *recorder) OnData(msg *Message, from int, p float64) {
	r.received = append(r.received, recordedRx{msg.ID, from, p, r.node.Network().Sim.Now()})
	if r.onData != nil {
		r.onData(r, msg, from, p)
	}
}
func (r *recorder) OnTimer(int32) {}

func buildRecorderNet(t *testing.T, positions []geom.Vec2, seed uint64) (*Network, []*recorder) {
	t.Helper()
	recs := make([]*recorder, len(positions))
	net, err := New(staticConfig(positions), seed, func(n *Node) Protocol {
		recs[n.ID] = &recorder{}
		return recs[n.ID]
	})
	if err != nil {
		t.Fatal(err)
	}
	return net, recs
}

func TestValidate(t *testing.T) {
	good := DefaultScenario(10)
	if err := good.Validate(); err != nil {
		t.Fatalf("default scenario invalid: %v", err)
	}
	bad := good
	bad.NumNodes = 0
	if bad.Validate() == nil {
		t.Error("zero nodes accepted")
	}
	bad = good
	bad.PathLoss = nil
	if bad.Validate() == nil {
		t.Error("nil path loss accepted")
	}
	bad = good
	bad.EndTime = bad.WarmupTime - 1
	if bad.Validate() == nil {
		t.Error("end before warmup accepted")
	}
	bad = good
	bad.BeaconInterval = 0
	if bad.Validate() == nil {
		t.Error("zero beacon interval accepted")
	}
}

func TestNodesForDensity(t *testing.T) {
	area := geom.Square(500) // 0.25 km^2
	for density, want := range map[float64]int{100: 25, 200: 50, 300: 75} {
		if got := NodesForDensity(area, density); got != want {
			t.Errorf("NodesForDensity(%v) = %d, want %d", density, got, want)
		}
	}
}

func TestBeaconNeighborDiscovery(t *testing.T) {
	// Two nodes 50 m apart (well in range), one 450 m away (out of range).
	net, _ := buildRecorderNet(t, []geom.Vec2{{X: 0, Y: 0}, {X: 50, Y: 0}, {X: 450, Y: 0}}, 1)
	net.Sim.RunUntil(3)
	n0 := net.Nodes[0].Neighbors()
	if len(n0) != 1 || n0[0].ID != 1 {
		t.Fatalf("node 0 neighbors = %+v, want exactly node 1", n0)
	}
	// Received beacon power matches the link budget.
	wantRx := net.Cfg.DefaultTxPowerDBm - net.Cfg.PathLoss.Loss(50)
	if math.Abs(n0[0].RxPowerDBm-wantRx) > 1e-9 {
		t.Fatalf("beacon rx = %v, want %v", n0[0].RxPowerDBm, wantRx)
	}
}

func TestNeighborSymmetry(t *testing.T) {
	net, _ := buildRecorderNet(t, []geom.Vec2{{X: 0, Y: 0}, {X: 80, Y: 0}}, 2)
	net.Sim.RunUntil(3)
	a := net.Nodes[0].Neighbors()
	b := net.Nodes[1].Neighbors()
	if len(a) != 1 || len(b) != 1 {
		t.Fatalf("neighbor counts %d, %d", len(a), len(b))
	}
	if math.Abs(a[0].RxPowerDBm-b[0].RxPowerDBm) > 1e-9 {
		t.Fatalf("static symmetric link has asymmetric powers: %v vs %v", a[0].RxPowerDBm, b[0].RxPowerDBm)
	}
}

func TestNeighborTimeout(t *testing.T) {
	positions := []geom.Vec2{{X: 0, Y: 0}, {X: 50, Y: 0}}
	cfg := staticConfig(positions)
	cfg.EndTime = 20
	var net *Network
	net, err := New(cfg, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	net.Sim.RunUntil(3)
	if len(net.Nodes[0].Neighbors()) != 1 {
		t.Fatal("neighbor not discovered")
	}
	// Silence node 1 by moving it out of range: swap its mobility via a
	// fresh network is cleaner — instead just stop time-advancing beacons
	// by running past EndTime (beacons stop) and expiring the table.
	net.Sim.RunUntil(20)      // last beacons at ~20
	net.Sim.At(30, func() {}) // idle event to advance the clock
	net.Sim.RunUntil(30)      // 10 s of silence > NeighborTimeout
	if got := net.Nodes[0].Neighbors(); len(got) != 0 {
		t.Fatalf("stale neighbor survived timeout: %+v", got)
	}
}

func TestBroadcastDeliveryAndStats(t *testing.T) {
	// Chain 0 -- 100m -- 1; node 1 re-broadcasts on reception via the
	// recorder callback, reaching node 2 at 200 m from node 0.
	net, recs := buildRecorderNet(t, []geom.Vec2{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 200, Y: 0}}, 4)
	forwarded := false
	recs[1].onData = func(r *recorder, msg *Message, _ int, _ float64) {
		if !forwarded {
			forwarded = true
			r.node.Network().TransmitData(r.node, msg, r.node.Network().Cfg.DefaultTxPowerDBm)
		}
	}
	st := net.StartBroadcast(0, 1.0)
	net.Run()
	if st.Coverage() != 2 {
		t.Fatalf("coverage = %d, want 2", st.Coverage())
	}
	if st.Forwards != 1 || st.SourceSends != 1 {
		t.Fatalf("forwards = %d sourceSends = %d", st.Forwards, st.SourceSends)
	}
	wantEnergy := 2 * net.Cfg.DefaultTxPowerDBm
	if math.Abs(st.TxPowerSumDBm-wantEnergy) > 1e-9 {
		t.Fatalf("energy sum = %v, want %v", st.TxPowerSumDBm, wantEnergy)
	}
	if bt := st.BroadcastTime(); bt <= 0 || bt > 0.1 {
		t.Fatalf("broadcast time = %v", bt)
	}
}

func TestOutOfRangeNotDelivered(t *testing.T) {
	net, recs := buildRecorderNet(t, []geom.Vec2{{X: 0, Y: 0}, {X: 400, Y: 0}}, 5)
	st := net.StartBroadcast(0, 1.0)
	net.Run()
	if len(recs[1].received) != 0 || st.Coverage() != 0 {
		t.Fatalf("out-of-range node received the message")
	}
	if st.BroadcastTime() != 0 {
		t.Fatalf("broadcast time with no receivers = %v, want 0", st.BroadcastTime())
	}
}

func TestReducedPowerShrinksRange(t *testing.T) {
	positions := []geom.Vec2{{X: 0, Y: 0}, {X: 100, Y: 0}}
	cfg := staticConfig(positions)
	cfg.FastBeacons = true
	recs := make([]*recorder, 2)
	net, err := New(cfg, 6, func(n *Node) Protocol {
		recs[n.ID] = &recorder{}
		return recs[n.ID]
	})
	if err != nil {
		t.Fatal(err)
	}
	// At -10 dBm the range is ~19 m: the 100 m neighbor must not hear it.
	msg := net.NewMessage(0)
	net.Sim.At(1, func() { net.transmitFrame(net.Nodes[0], msg, -10, cfg.DataBytes) })
	net.Run()
	if len(recs[1].received) != 0 {
		t.Fatal("reduced-power frame delivered beyond its range")
	}
}

func TestCollisionBetweenSimultaneousFrames(t *testing.T) {
	// Nodes 1 and 2 transmit simultaneously; node 0 sits between them at
	// equal distance, so neither frame captures and both are lost.
	net, recs := buildRecorderNet(t, []geom.Vec2{{X: 100, Y: 0}, {X: 0, Y: 0}, {X: 200, Y: 0}}, 7)
	m1 := net.NewMessage(1)
	m2 := net.NewMessage(2)
	net.Sim.At(1, func() { net.transmitFrame(net.Nodes[1], m1, net.Cfg.DefaultTxPowerDBm, net.Cfg.DataBytes) })
	net.Sim.At(1, func() { net.transmitFrame(net.Nodes[2], m2, net.Cfg.DefaultTxPowerDBm, net.Cfg.DataBytes) })
	net.Run()
	if len(recs[0].received) != 0 {
		t.Fatalf("equal-power overlapping frames were delivered: %+v", recs[0].received)
	}
	if net.Nodes[0].LostFrames != 2 {
		t.Fatalf("lost frames = %d, want 2", net.Nodes[0].LostFrames)
	}
}

func TestCaptureStrongFrameSurvives(t *testing.T) {
	// Node 1 is 20 m from the receiver, node 2 is 200 m away: the near
	// frame is >10 dB stronger and must capture the channel.
	net, recs := buildRecorderNet(t, []geom.Vec2{{X: 0, Y: 0}, {X: 20, Y: 0}, {X: 200, Y: 0}}, 8)
	m1 := net.NewMessage(1)
	m2 := net.NewMessage(2)
	net.Sim.At(1, func() { net.transmitFrame(net.Nodes[1], m1, net.Cfg.DefaultTxPowerDBm, net.Cfg.DataBytes) })
	net.Sim.At(1, func() { net.transmitFrame(net.Nodes[2], m2, net.Cfg.DefaultTxPowerDBm, net.Cfg.DataBytes) })
	net.Run()
	if len(recs[0].received) != 1 || recs[0].received[0].from != 1 {
		t.Fatalf("capture failed: received %+v", recs[0].received)
	}
}

func TestHalfDuplexSenderMissesOverlap(t *testing.T) {
	// Node 0 transmits; node 1's simultaneous frame must be lost at node 0
	// (half duplex) but node 2, in range of node 1 only, still receives it.
	net, recs := buildRecorderNet(t, []geom.Vec2{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 200, Y: 0}}, 9)
	m0 := net.NewMessage(0)
	m1 := net.NewMessage(1)
	net.Sim.At(1, func() { net.transmitFrame(net.Nodes[0], m0, net.Cfg.DefaultTxPowerDBm, net.Cfg.DataBytes) })
	net.Sim.At(1, func() { net.transmitFrame(net.Nodes[1], m1, net.Cfg.DefaultTxPowerDBm, net.Cfg.DataBytes) })
	net.Run()
	for _, rx := range recs[0].received {
		if rx.msgID == m1.ID {
			t.Fatal("transmitting node received an overlapping frame")
		}
	}
	// Node 2 is 100 m from node 1: node 0's frame does not reach it
	// (200 m), so no collision there.
	if len(recs[2].received) != 1 || recs[2].received[0].msgID != m1.ID {
		t.Fatalf("bystander reception wrong: %+v", recs[2].received)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int, float64, int) {
		cfg := DefaultScenario(25)
		net, err := New(cfg, 12345, func(n *Node) Protocol { return &recorder{} })
		if err != nil {
			t.Fatal(err)
		}
		st := net.StartBroadcast(3, cfg.WarmupTime)
		net.Run()
		return st.Coverage(), st.TxPowerSumDBm, int(net.Sim.Fired())
	}
	c1, e1, f1 := run()
	c2, e2, f2 := run()
	if c1 != c2 || e1 != e2 || f1 != f2 {
		t.Fatalf("same-seed runs diverged: (%d %v %d) vs (%d %v %d)", c1, e1, f1, c2, e2, f2)
	}
}

func TestSeedsDiffer(t *testing.T) {
	cov := func(seed uint64) int {
		cfg := DefaultScenario(25)
		net, err := New(cfg, seed, func(n *Node) Protocol { return &recorder{} })
		if err != nil {
			t.Fatal(err)
		}
		st := net.StartBroadcast(0, cfg.WarmupTime)
		net.Run()
		_ = st
		return int(net.Sim.Fired())
	}
	if cov(1) == cov(2) && cov(3) == cov(4) && cov(5) == cov(6) {
		t.Fatal("different seeds produced identical event counts thrice (suspicious)")
	}
}

func TestAccurateBeaconsDiscoverNeighborsToo(t *testing.T) {
	positions := []geom.Vec2{{X: 0, Y: 0}, {X: 60, Y: 0}, {X: 120, Y: 0}}
	cfg := staticConfig(positions)
	cfg.FastBeacons = false
	net, err := New(cfg, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	net.Sim.RunUntil(5)
	// With contention modelling on, the middle node should still have
	// discovered both neighbors after 5 beacon rounds.
	if got := len(net.Nodes[1].Neighbors()); got != 2 {
		t.Fatalf("accurate-beacon neighbor count = %d, want 2", got)
	}
}

func TestFirstRxRecordedOnce(t *testing.T) {
	net, recs := buildRecorderNet(t, []geom.Vec2{{X: 0, Y: 0}, {X: 100, Y: 0}}, 11)
	st := net.StartBroadcast(0, 1.0)
	// Source transmits again later; coverage must not double count.
	net.Sim.At(2, func() {
		net.TransmitData(net.Nodes[0], &Message{ID: st.MessageID, Origin: 0}, net.Cfg.DefaultTxPowerDBm)
	})
	net.Run()
	if st.Coverage() != 1 {
		t.Fatalf("coverage = %d, want 1", st.Coverage())
	}
	if len(recs[1].received) != 2 {
		t.Fatalf("receptions = %d, want 2 (duplicate still delivered to protocol)", len(recs[1].received))
	}
	first, ok := st.FirstRxAt(1)
	if !ok {
		t.Fatal("node 1 has no recorded first reception")
	}
	if first > 1.1 {
		t.Fatalf("first reception time %v not from the first transmission", first)
	}
}

func TestEnergyAccounting(t *testing.T) {
	net, _ := buildRecorderNet(t, []geom.Vec2{{X: 0, Y: 0}, {X: 100, Y: 0}}, 12)
	st := net.StartBroadcast(0, 1.0)
	net.Run()
	duration := float64(net.Cfg.DataBytes*8) / net.Cfg.BitRateBps
	wantMJ := math.Pow(10, net.Cfg.DefaultTxPowerDBm/10) * duration
	if math.Abs(st.TxEnergyMJ-wantMJ) > 1e-9 {
		t.Fatalf("TxEnergyMJ = %v, want %v", st.TxEnergyMJ, wantMJ)
	}
	// Node-level accounting includes beacons, so it must exceed the
	// broadcast-only figure.
	if net.Nodes[0].TxEnergyMJ <= wantMJ {
		t.Fatalf("node energy %v should exceed broadcast energy %v (beacons)", net.Nodes[0].TxEnergyMJ, wantMJ)
	}
}

func TestTraceHooks(t *testing.T) {
	positions := []geom.Vec2{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 200, Y: 0}}
	cfg := staticConfig(positions)
	var txs, rxs, losses int
	var txPowers []float64
	cfg.OnDataTx = func(node, msgID int, power, _ float64) {
		txs++
		txPowers = append(txPowers, power)
	}
	cfg.OnDataRx = func(node, from, msgID int, rxPower, _ float64) { rxs++ }
	cfg.OnDataLost = func(node, from, msgID int, _ float64) { losses++ }

	recs := make([]*recorder, len(positions))
	net, err := New(cfg, 21, func(n *Node) Protocol {
		recs[n.ID] = &recorder{}
		return recs[n.ID]
	})
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 re-broadcasts once on reception, reaching node 2.
	forwarded := false
	recs[1].onData = func(r *recorder, msg *Message, _ int, _ float64) {
		if !forwarded {
			forwarded = true
			net.TransmitData(r.node, msg, cfg.DefaultTxPowerDBm)
		}
	}
	st := net.StartBroadcast(0, 1.0)
	net.Run()

	if txs != st.Forwards+st.SourceSends {
		t.Fatalf("OnDataTx fired %d times, want %d", txs, st.Forwards+st.SourceSends)
	}
	// Receptions: node 1 hears source + (nothing from itself); node 0 and
	// node 2 hear node 1's forward -> 3 successful data receptions.
	if rxs != 3 {
		t.Fatalf("OnDataRx fired %d times, want 3", rxs)
	}
	if losses != 0 {
		t.Fatalf("OnDataLost fired %d times on a collision-free run", losses)
	}
	for _, p := range txPowers {
		if p != cfg.DefaultTxPowerDBm {
			t.Fatalf("traced power %v, want default", p)
		}
	}
}

func TestTraceLostHook(t *testing.T) {
	// Two simultaneous equal-power frames at a middle node collide; the
	// loss hook must fire for both.
	positions := []geom.Vec2{{X: 100, Y: 0}, {X: 0, Y: 0}, {X: 200, Y: 0}}
	cfg := staticConfig(positions)
	losses := 0
	cfg.OnDataLost = func(node, from, msgID int, _ float64) {
		if node != 0 {
			t.Errorf("loss at node %d, want 0", node)
		}
		losses++
	}
	net, err := New(cfg, 22, func(n *Node) Protocol { return &recorder{} })
	if err != nil {
		t.Fatal(err)
	}
	m1 := net.NewMessage(1)
	m2 := net.NewMessage(2)
	net.Sim.At(1, func() { net.transmitFrame(net.Nodes[1], m1, cfg.DefaultTxPowerDBm, cfg.DataBytes) })
	net.Sim.At(1, func() { net.transmitFrame(net.Nodes[2], m2, cfg.DefaultTxPowerDBm, cfg.DataBytes) })
	net.Run()
	if losses != 2 {
		t.Fatalf("OnDataLost fired %d times, want 2", losses)
	}
}
