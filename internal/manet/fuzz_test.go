package manet

import "testing"

// assertSameBroadcast requires two simulations of one scenario to agree
// bit-for-bit on every broadcast metric input: the stats collector fields
// and the collision counter. This is the equivalence the snapshot, mask
// and tape-replay paths all promise.
func assertSameBroadcast(t *testing.T, label string, wantSt *BroadcastStats, wantNet *Network, gotSt *BroadcastStats, gotNet *Network) {
	t.Helper()
	if gotSt.SentAt != wantSt.SentAt || gotSt.Forwards != wantSt.Forwards ||
		gotSt.SourceSends != wantSt.SourceSends ||
		gotSt.TxPowerSumDBm != wantSt.TxPowerSumDBm ||
		gotSt.TxEnergyMJ != wantSt.TxEnergyMJ || gotSt.LastRx != wantSt.LastRx {
		t.Fatalf("%s: stats diverged:\nwant %+v\ngot  %+v", label, wantSt, gotSt)
	}
	if gotSt.Coverage() != wantSt.Coverage() {
		t.Fatalf("%s: coverage %d != %d", label, gotSt.Coverage(), wantSt.Coverage())
	}
	wantSt.EachFirstRx(func(id int, at float64) {
		if got, ok := gotSt.FirstRxAt(id); !ok || got != at {
			t.Fatalf("%s: node %d first reception %v != %v", label, id, got, at)
		}
	})
	if gotNet.Collisions != wantNet.Collisions {
		t.Fatalf("%s: collisions %d != %d", label, gotNet.Collisions, wantNet.Collisions)
	}
}

// FuzzSnapshotRoundTrip drives the warm-start machinery over random
// (density, seed, cut-time) inputs and requires that every derived
// execution — snapshot instantiation, node-masked instantiation from a
// strictly larger parent, and beacon-tape replay with quiescence early
// stop — reproduces the from-scratch simulation bit-identically on every
// broadcast metric. It also exercises the refusal precondition: while a
// live closure event or data frame exists, the network must refuse to
// snapshot.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add(uint8(8), uint64(1), uint8(10), uint8(4))
	f.Add(uint8(20), uint64(42), uint8(30), uint8(0))
	f.Add(uint8(3), uint64(7), uint8(5), uint8(12))
	f.Add(uint8(14), uint64(99), uint8(59), uint8(7))
	f.Add(uint8(23), uint64(20130520), uint8(33), uint8(11))
	f.Fuzz(func(t *testing.T, nodesRaw uint8, seed uint64, cutRaw, extraRaw uint8) {
		nodes := 2 + int(nodesRaw%24)      // 2..25 nodes
		extra := int(extraRaw % 12)        // parent holds up to 11 masked nodes
		cut := 0.5 + float64(cutRaw%60)/10 // 0.5..6.4 s warm-up
		cfg := DefaultScenario(nodes)
		cfg.WarmupTime = cut
		cfg.EndTime = cut + 4
		source := int(seed % uint64(nodes))

		wantSt, wantNet := runScratch(t, cfg, seed, source)

		// Unmasked: snapshot at the cut, instantiate, run the full tail.
		snap, err := BuildSnapshot(cfg, seed, cut)
		if err != nil {
			t.Fatalf("BuildSnapshot: %v", err)
		}
		gotNet, gotSt := snap.Instantiate(newForwardOnce, source, cut)
		gotNet.Run()
		assertSameBroadcast(t, "warm", wantSt, wantNet, gotSt, gotNet)

		// Masked: the same scenario derived from a strictly larger parent
		// population by node masking.
		pcfg := cfg
		pcfg.NumNodes = nodes + extra
		parent, err := BuildSnapshot(pcfg, seed, cut)
		if err != nil {
			t.Fatalf("BuildSnapshot(parent): %v", err)
		}
		masked, err := parent.Mask(nodes)
		if err != nil {
			t.Fatalf("Mask(%d of %d): %v", nodes, pcfg.NumNodes, err)
		}
		mNet, mSt := masked.Instantiate(newForwardOnce, source, cut)
		mNet.Run()
		assertSameBroadcast(t, "masked", wantSt, wantNet, mSt, mNet)

		// Tape replay + quiescence from the masked snapshot: the full
		// default evaluation engine.
		tape, err := masked.RecordBeaconTape(cfg.EndTime)
		if err != nil {
			t.Fatalf("RecordBeaconTape: %v", err)
		}
		rNet, rSt := masked.InstantiateReplay(newForwardOnce, source, cut, tape)
		rNet.RunToQuiescence()
		assertSameBroadcast(t, "replay", wantSt, wantNet, rSt, rNet)

		// Refusal precondition: step a live broadcast and require Snapshot
		// to refuse at every instant a closure or data frame is live.
		refNet, err := New(cfg, seed, newForwardOnce)
		if err != nil {
			t.Fatal(err)
		}
		refNet.Sim.RunBefore(cut)
		// Warm-up holds no closures or data frames: snapshot legal here.
		if _, err := refNet.Snapshot(); err != nil {
			t.Fatalf("snapshot refused at the warm-up cut: %v", err)
		}
		// The scheduled origination is itself a live closure.
		refNet.StartBroadcast(source, cut)
		for checks := 0; checks < 25; checks++ {
			if refNet.Sim.PendingClosures() > 0 || refNet.liveTimers > 0 || refNet.dataInFlight > 0 {
				if _, err := refNet.Snapshot(); err == nil {
					t.Fatalf("snapshot succeeded with %d live closures, %d armed timers and %d data frames in flight",
						refNet.Sim.PendingClosures(), refNet.liveTimers, refNet.dataInFlight)
				}
			}
			if !refNet.Sim.StepUntil(cfg.EndTime) {
				break
			}
		}
	})
}
