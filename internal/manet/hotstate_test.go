package manet

import (
	"math"
	"testing"

	"aedbmls/internal/geom"
)

// TestArenaReuseInvalidatesPositionMemo is the regression wall for the
// structure-of-arrays position memo: the posX/posY/posAt columns live on
// the Network object, and an Arena recycles that object across
// instantiations, so a snapshot instantiated into a reused arena starts
// with the PREVIOUS simulation's memoised positions in the columns. The
// memo key is the exact instant (posAt[id] == now), and every arena
// instantiation rewinds the clock to the same warm-up cut the previous
// candidate used — so without the NaN invalidation in initHotState, a
// position read at the cut would be served from the previous snapshot's
// world. This test fails if that invalidation is removed.
func TestArenaReuseInvalidatesPositionMemo(t *testing.T) {
	cfg := DefaultScenario(12)
	cfg.WarmupTime = 2
	cfg.EndTime = 6
	const cut = 2.0

	snapA, err := BuildSnapshot(cfg, 1, cut)
	if err != nil {
		t.Fatalf("BuildSnapshot(A): %v", err)
	}
	snapB, err := BuildSnapshot(cfg, 2, cut)
	if err != nil {
		t.Fatalf("BuildSnapshot(B): %v", err)
	}
	// A snapshot's clock is its last warm-up event time, which is
	// seed-specific — but instants shared across scenarios ARE reachable
	// by construction (every committee scenario originates its broadcast
	// at the same cut, for one). Arrange the collision deterministically:
	// world A is advanced to exactly world B's starting clock, so every
	// memo stamp A leaves behind aliases the instant B starts at.
	if snapA.now < snapB.now {
		snapA, snapB = snapB, snapA
	}
	shared := snapA.now

	a := NewArena()
	netB1, _ := snapB.InstantiateInto(a, newForwardOnce, 0, cut)
	netB1.Sim.RunUntil(shared) // fires any pending events <= shared, then pins the clock
	// Memoise every node position at the shared instant — the state a
	// finished candidate simulation leaves in the arena's columns — and
	// record the values before the arena reuse invalidates netB1 (its
	// Node structs are the same arena block the next network occupies).
	posB := make([]geom.Vec2, len(netB1.Nodes))
	for i, n := range netB1.Nodes {
		posB[i] = n.Position()
	}

	// Reuse the arena for a different world whose clock starts at the
	// very instant every stamp above carries, and compare position reads
	// against an arena-free instantiation of the same snapshot.
	netA2, _ := snapA.InstantiateInto(a, newForwardOnce, 0, cut)
	fresh, _ := snapA.Instantiate(newForwardOnce, 0, cut)
	if netA2.Sim.Now() != shared {
		t.Fatalf("arena network clock %v, want the shared instant %v", netA2.Sim.Now(), shared)
	}
	differs := false
	for i := range netA2.Nodes {
		got := netA2.Nodes[i].Position()
		want := fresh.Nodes[i].Position()
		if got != want {
			t.Fatalf("node %d position after arena reuse: got %v, want %v (stale memo from the previous snapshot)", i, got, want)
		}
		if posB[i] != want {
			differs = true
		}
	}
	// Sanity: the two worlds must actually disagree somewhere, or this
	// test could never catch a stale read.
	if !differs {
		t.Fatal("seeds 1 and 2 produced identical node placements; regression test has no teeth")
	}
}

// TestSnapshotRefusesArmedTimers pins the timer half of the snapshot
// precondition: an armed protocol timer is live protocol state that the
// tagged-event schedule cannot carry (its slot/generation addressing is
// meaningless in a fresh network), so Snapshot must refuse while one is
// armed, accept again once it is cancelled, and filter the cancelled
// timer's stale heap event out of the captured schedule.
func TestSnapshotRefusesArmedTimers(t *testing.T) {
	cfg := DefaultScenario(8)
	cfg.WarmupTime = 2
	cfg.EndTime = 6
	net, err := New(cfg, 3, newForwardOnce)
	if err != nil {
		t.Fatal(err)
	}
	net.Sim.RunBefore(cfg.WarmupTime)
	if _, err := net.Snapshot(); err != nil {
		t.Fatalf("snapshot refused at a quiet warm-up cut: %v", err)
	}

	timer := net.Nodes[0].ScheduleTimer(0.5, 7)
	if _, err := net.Snapshot(); err == nil {
		t.Fatal("snapshot succeeded with an armed protocol timer")
	}

	timer.Cancel()
	snap, err := net.Snapshot()
	if err != nil {
		t.Fatalf("snapshot refused after the timer was cancelled: %v", err)
	}
	// The cancelled timer's tagged event still sits in the simulator's
	// event list; the captured schedule must not carry it.
	for _, ev := range snap.events {
		if ev.Kind == evProtoTimer {
			t.Fatalf("captured schedule carries a stale protocol-timer event: %+v", ev)
		}
	}
}

// TestPositionMemoStampStartsInvalid pins the initial state the
// invalidation relies on: a fresh network's posAt column is NaN
// everywhere (NaN compares unequal to every instant, including itself),
// so the first read at any time must recompute.
func TestPositionMemoStampStartsInvalid(t *testing.T) {
	net, err := New(DefaultScenario(5), 1, newForwardOnce)
	if err != nil {
		t.Fatal(err)
	}
	for i, at := range net.posAt {
		if !math.IsNaN(at) {
			t.Fatalf("posAt[%d] = %v at init, want NaN", i, at)
		}
	}
}
