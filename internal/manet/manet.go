// Package manet is the wireless mobile ad-hoc network substrate standing in
// for ns-3 in the paper's evaluation loop.
//
// It simulates, on top of the internal/sim event engine:
//
//   - node mobility (internal/mobility trajectories, re-drawn by events);
//   - a shared broadcast medium with log-distance attenuation, receiver
//     sensitivity, half-duplex radios and a capture-threshold collision
//     model;
//   - periodic hello beaconing at the default transmission power, feeding
//     per-node neighbor tables with the received signal strength of each
//     neighbor (the cross-layer information AEDB relies on);
//   - per-broadcast bookkeeping of exactly the four metrics the tuning
//     problem observes: coverage, forwardings, energy and broadcast time.
//
// One Network is one single-goroutine simulation; parallelism happens at a
// higher level by running many networks concurrently.
package manet

import (
	"fmt"
	"math"

	"aedbmls/internal/geom"
	"aedbmls/internal/mobility"
	"aedbmls/internal/radio"
	"aedbmls/internal/rng"
	"aedbmls/internal/sim"
)

// Config describes a simulation scenario. DefaultScenario reproduces the
// paper's Table II.
type Config struct {
	Area     geom.Rect
	NumNodes int

	// Mobility (random walk).
	SpeedMin, SpeedMax float64 // m/s
	ChangeInterval     float64 // s between direction/speed re-draws

	// Radio.
	PathLoss           radio.Model
	DefaultTxPowerDBm  float64
	SensitivityDBm     float64
	CaptureThresholdDB float64
	BitRateBps         float64
	PropagationSpeed   float64 // m/s; 0 disables propagation delay

	// Beaconing.
	BeaconInterval  float64 // s
	NeighborTimeout float64 // s without beacon before a neighbor is dropped
	BeaconBytes     int
	DataBytes       int

	// FastBeacons delivers beacons instantaneously without frame-level
	// collision modelling. Data frames always use the full collision
	// path. This cuts the event count by an order of magnitude and is the
	// default; accurate beacon contention is available for ablations.
	FastBeacons bool

	// Timeline.
	WarmupTime float64 // nodes move before the broadcast starts
	EndTime    float64 // absolute simulation end

	// MakeMobility overrides node trajectories (tests pin nodes with
	// mobility.Static). Nil uses the random-walk model of Table II.
	MakeMobility func(id int, r *rng.Rand) mobility.Model

	// Trace hooks, all optional (nil disables). They fire synchronously
	// from the simulation loop, in event order, for data frames only:
	// OnDataTx when a node transmits, OnDataRx on successful reception,
	// OnDataLost when a reception is destroyed by collision or
	// half-duplex conflict.
	OnDataTx   func(node, msgID int, powerDBm, time float64)
	OnDataRx   func(node, from, msgID int, rxPowerDBm, time float64)
	OnDataLost func(node, from, msgID int, time float64)
}

// DefaultScenario returns the paper's ns-3 configuration (Table II) for a
// network of numNodes devices: 500 m x 500 m arena, speeds in [0,2] m/s
// re-drawn every 20 s, default TX power 16.02 dBm, 30 s warm-up, 40 s end.
// Densities 100/200/300 devices/km^2 correspond to 25/50/75 nodes.
func DefaultScenario(numNodes int) Config {
	return Config{
		Area:               geom.Square(500),
		NumNodes:           numNodes,
		SpeedMin:           0,
		SpeedMax:           2,
		ChangeInterval:     20,
		PathLoss:           radio.NewLogDistanceDefault(),
		DefaultTxPowerDBm:  radio.DefaultTxPowerDBm,
		SensitivityDBm:     radio.DefaultSensitivityDBm,
		CaptureThresholdDB: radio.DefaultCaptureThresholdDB,
		BitRateBps:         1e6,
		PropagationSpeed:   3e8,
		BeaconInterval:     1.0,
		NeighborTimeout:    3.0,
		BeaconBytes:        32,
		DataBytes:          256,
		FastBeacons:        true,
		WarmupTime:         30,
		EndTime:            40,
	}
}

// NodesForDensity converts a density in devices/km^2 into a node count for
// the configured area (Table II uses a 0.25 km^2 arena).
func NodesForDensity(area geom.Rect, perKm2 float64) int {
	km2 := area.Width() * area.Height() / 1e6
	return int(math.Round(perKm2 * km2))
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.NumNodes <= 0:
		return fmt.Errorf("manet: NumNodes must be positive, got %d", c.NumNodes)
	case c.Area.Width() <= 0 || c.Area.Height() <= 0:
		return fmt.Errorf("manet: degenerate area %+v", c.Area)
	case c.PathLoss == nil:
		return fmt.Errorf("manet: PathLoss model is required")
	case c.BitRateBps <= 0:
		return fmt.Errorf("manet: BitRateBps must be positive")
	case c.BeaconInterval <= 0:
		return fmt.Errorf("manet: BeaconInterval must be positive")
	case c.EndTime < c.WarmupTime:
		return fmt.Errorf("manet: EndTime %.3f before WarmupTime %.3f", c.EndTime, c.WarmupTime)
	}
	return nil
}

// Message is a broadcast payload identified by ID; Origin is the source
// node.
type Message struct {
	ID     int
	Origin int
}

// Protocol is the interface a dissemination protocol implements per node.
type Protocol interface {
	// Init binds the protocol instance to its node; called once before
	// the simulation starts.
	Init(n *Node)
	// Originate is invoked on the source node to start disseminating msg.
	Originate(msg *Message)
	// OnData is invoked on every successful data-frame reception, with the
	// transmitting node's ID and the received signal strength.
	OnData(msg *Message, from int, rxPowerDBm float64)
}

// NeighborEntry is one row of a node's neighbor table, learned via
// beaconing: who the neighbor is, how strongly its last beacon was
// received, and when.
type NeighborEntry struct {
	ID         int
	RxPowerDBm float64
	LastHeard  float64
}

// reception tracks one in-flight frame at one receiver.
type reception struct {
	from      int
	powerDBm  float64
	start     float64
	end       float64
	msg       *Message // nil for beacons
	corrupted bool
}

// Node is one device: position (via mobility), radio state, neighbor table
// and its protocol instance.
type Node struct {
	ID  int
	net *Network
	mob mobility.Model
	// Rng is the node's private random stream (delays, jitter).
	Rng *rng.Rand

	proto     Protocol
	neighbors map[int]NeighborEntry
	active    []*reception
	txUntil   float64

	// Accounting.
	TxEnergyMJ  float64
	TxFrames    int
	RxFrames    int
	LostFrames  int
	nbrsScratch []NeighborEntry
}

// Network returns the owning network (for scheduling, transmitting).
func (n *Node) Network() *Network { return n.net }

// Position returns the node position at the current simulation time.
func (n *Node) Position() geom.Vec2 { return n.mob.Position(n.net.Sim.Now()) }

// Neighbors returns the live neighbor entries (beacons heard within the
// neighbor timeout). The returned slice is reused across calls; callers
// must not retain it.
func (n *Node) Neighbors() []NeighborEntry {
	now := n.net.Sim.Now()
	cutoff := now - n.net.Cfg.NeighborTimeout
	n.nbrsScratch = n.nbrsScratch[:0]
	for id, e := range n.neighbors {
		if e.LastHeard < cutoff {
			delete(n.neighbors, id)
			continue
		}
		n.nbrsScratch = append(n.nbrsScratch, e)
	}
	return n.nbrsScratch
}

// Schedule runs fn after delay seconds of simulated time on this node's
// network.
func (n *Node) Schedule(delay float64, fn func()) *sim.Event {
	return n.net.Sim.Schedule(delay, fn)
}

// Network is one simulation instance.
type Network struct {
	Sim   *sim.Simulator
	Cfg   Config
	Nodes []*Node
	Rng   *rng.Rand

	// positions caches every node position at posTime; transmissions
	// cluster on shared instants, and with <= a few hundred nodes a linear
	// scan over this slice beats any spatial index rebuild.
	positions []geom.Vec2
	posTime   float64
	maxRange  float64

	stats     map[int]*BroadcastStats
	nextMsgID int
	// Collisions counts data-frame receptions lost to interference or
	// half-duplex conflicts.
	Collisions int
}

// BroadcastStats aggregates the four paper metrics for one message.
type BroadcastStats struct {
	MessageID int
	Source    int
	SentAt    float64
	// FirstRx maps node ID to the first successful reception time.
	FirstRx map[int]float64
	// Forwards counts data transmissions by non-source nodes.
	Forwards int
	// SourceSends counts data transmissions by the source.
	SourceSends int
	// TxPowerSumDBm is the paper's energy objective: the sum of the
	// transmission power levels (in dBm) of every data transmission.
	TxPowerSumDBm float64
	// TxEnergyMJ is the physically integrated radiated energy.
	TxEnergyMJ float64
	// LastRx is the latest first-reception time (broadcast completion).
	LastRx float64
}

// Coverage returns the number of devices (excluding the source) that
// received the message.
func (b *BroadcastStats) Coverage() int { return len(b.FirstRx) }

// BroadcastTime returns the dissemination duration: last first-reception
// minus send time; zero if nobody received the message.
func (b *BroadcastStats) BroadcastTime() float64 {
	if len(b.FirstRx) == 0 {
		return 0
	}
	return b.LastRx - b.SentAt
}

// New builds a network of cfg.NumNodes random-walk nodes. Protocol
// instances are created per node by makeProto (may be nil for
// protocol-less networks, e.g. beaconing tests).
func New(cfg Config, seed uint64, makeProto func(*Node) Protocol) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	master := rng.New(seed)
	net := &Network{
		Sim:   sim.New(),
		Cfg:   cfg,
		Rng:   master.Split(),
		stats: make(map[int]*BroadcastStats),
	}
	net.maxRange = cfg.PathLoss.RangeFor(cfg.DefaultTxPowerDBm, cfg.SensitivityDBm)
	net.positions = make([]geom.Vec2, cfg.NumNodes)
	net.posTime = -1

	for i := 0; i < cfg.NumNodes; i++ {
		nodeRng := master.Split()
		var mob mobility.Model
		if cfg.MakeMobility != nil {
			mob = cfg.MakeMobility(i, nodeRng.Split())
		} else {
			mob = mobility.NewRandomWalk(cfg.Area, cfg.SpeedMin, cfg.SpeedMax, cfg.ChangeInterval, nodeRng.Split())
		}
		n := &Node{
			ID:        i,
			net:       net,
			mob:       mob,
			Rng:       nodeRng,
			neighbors: make(map[int]NeighborEntry),
		}
		net.Nodes = append(net.Nodes, n)
	}
	// Protocol instances after all nodes exist (they may inspect peers).
	if makeProto != nil {
		for _, n := range net.Nodes {
			n.proto = makeProto(n)
			n.proto.Init(n)
		}
	}
	// Mobility change events.
	for _, n := range net.Nodes {
		net.scheduleMobility(n)
	}
	// Beacons with an initial phase jitter.
	for _, n := range net.Nodes {
		phase := n.Rng.Range(0, cfg.BeaconInterval)
		node := n
		net.Sim.At(phase, func() { net.beacon(node) })
	}
	return net, nil
}

func (net *Network) scheduleMobility(n *Node) {
	next := n.mob.NextChange()
	if math.IsInf(next, 1) || next > net.Cfg.EndTime {
		return
	}
	net.Sim.At(next, func() {
		n.mob.Advance()
		net.invalidatePositions()
		net.scheduleMobility(n)
	})
}

func (net *Network) invalidatePositions() { net.posTime = -1 }

// refreshPositions recomputes the position cache for the current instant.
func (net *Network) refreshPositions() {
	now := net.Sim.Now()
	if net.posTime == now {
		return
	}
	for i, n := range net.Nodes {
		net.positions[i] = n.mob.Position(now)
	}
	net.posTime = now
}

// beacon transmits one hello frame and schedules the next.
func (net *Network) beacon(n *Node) {
	if net.Sim.Now() <= net.Cfg.EndTime {
		if net.Cfg.FastBeacons {
			net.fastBeacon(n)
		} else {
			net.transmitFrame(n, nil, net.Cfg.DefaultTxPowerDBm, net.Cfg.BeaconBytes)
		}
		net.Sim.Schedule(net.Cfg.BeaconInterval, func() { net.beacon(n) })
	}
}

// fastBeacon updates neighbor tables instantly, without contention.
func (net *Network) fastBeacon(n *Node) {
	cfg := &net.Cfg
	now := net.Sim.Now()
	duration := float64(cfg.BeaconBytes*8) / cfg.BitRateBps
	n.TxEnergyMJ += radio.TxEnergyMilliJoule(cfg.DefaultTxPowerDBm, duration)
	n.TxFrames++
	net.refreshPositions()
	pos := net.positions[n.ID]
	r2 := net.maxRange * net.maxRange
	for id, rxPos := range net.positions {
		d2 := pos.Dist2(rxPos)
		if id == n.ID || d2 > r2 {
			continue
		}
		rx := radio.RxPower(cfg.PathLoss, cfg.DefaultTxPowerDBm, math.Sqrt(d2))
		if rx < cfg.SensitivityDBm {
			continue
		}
		other := net.Nodes[id]
		other.neighbors[n.ID] = NeighborEntry{ID: n.ID, RxPowerDBm: rx, LastHeard: now}
		other.RxFrames++
	}
}

// NewMessage allocates a message originating at the source node.
func (net *Network) NewMessage(source int) *Message {
	id := net.nextMsgID
	net.nextMsgID++
	return &Message{ID: id, Origin: source}
}

// StartBroadcast schedules the dissemination of a fresh message from the
// source node at absolute time t and returns its stats collector.
func (net *Network) StartBroadcast(source int, t float64) *BroadcastStats {
	msg := net.NewMessage(source)
	st := &BroadcastStats{MessageID: msg.ID, Source: source, SentAt: t, FirstRx: make(map[int]float64)}
	net.stats[msg.ID] = st
	net.Sim.At(t, func() {
		n := net.Nodes[source]
		if n.proto != nil {
			n.proto.Originate(msg)
		}
	})
	return st
}

// Stats returns the collector for a message ID.
func (net *Network) Stats(msgID int) *BroadcastStats { return net.stats[msgID] }

// TransmitData broadcasts a data frame carrying msg from node n at the
// given power. Protocols call this; all metric accounting happens here.
func (net *Network) TransmitData(n *Node, msg *Message, txPowerDBm float64) {
	txPowerDBm = radio.ClampTxPower(txPowerDBm, net.Cfg.DefaultTxPowerDBm)
	duration := float64(net.Cfg.DataBytes*8) / net.Cfg.BitRateBps
	if st := net.stats[msg.ID]; st != nil {
		if n.ID == msg.Origin {
			st.SourceSends++
		} else {
			st.Forwards++
		}
		st.TxPowerSumDBm += txPowerDBm
		st.TxEnergyMJ += radio.TxEnergyMilliJoule(txPowerDBm, duration)
	}
	if net.Cfg.OnDataTx != nil {
		net.Cfg.OnDataTx(n.ID, msg.ID, txPowerDBm, net.Sim.Now())
	}
	net.transmitFrame(n, msg, txPowerDBm, net.Cfg.DataBytes)
}

// transmitFrame implements the shared medium: it finds every node within
// the feasible range of the chosen power and schedules frame start/end
// events that apply the half-duplex and capture-threshold rules.
func (net *Network) transmitFrame(n *Node, msg *Message, txPowerDBm float64, bytes int) {
	cfg := &net.Cfg
	now := net.Sim.Now()
	duration := float64(bytes*8) / cfg.BitRateBps
	n.TxEnergyMJ += radio.TxEnergyMilliJoule(txPowerDBm, duration)
	n.TxFrames++
	// Half duplex: the sender cannot receive while transmitting, and any
	// reception already in flight at the sender is lost.
	if n.txUntil < now+duration {
		n.txUntil = now + duration
	}
	for _, r := range n.active {
		r.corrupted = true
	}

	net.refreshPositions()
	pos := net.positions[n.ID]
	reach := cfg.PathLoss.RangeFor(txPowerDBm, cfg.SensitivityDBm)
	r2 := reach * reach
	for id, rxPos := range net.positions {
		d2 := pos.Dist2(rxPos)
		if id == n.ID || d2 > r2 {
			continue
		}
		other := net.Nodes[id]
		d := math.Sqrt(d2)
		rx := radio.RxPower(cfg.PathLoss, txPowerDBm, d)
		if rx < cfg.SensitivityDBm {
			continue
		}
		var prop float64
		if cfg.PropagationSpeed > 0 {
			prop = d / cfg.PropagationSpeed
		}
		rec := &reception{from: n.ID, powerDBm: rx, start: now + prop, end: now + prop + duration, msg: msg}
		receiver := other
		net.Sim.At(rec.start, func() { net.frameStart(receiver, rec) })
	}
}

// frameStart registers an in-flight frame at the receiver and applies the
// collision rules against every overlapping frame.
func (net *Network) frameStart(n *Node, rec *reception) {
	// Receiver mid-transmission loses the frame (half duplex).
	if net.Sim.Now() < n.txUntil {
		rec.corrupted = true
	}
	capture := net.Cfg.CaptureThresholdDB
	for _, o := range n.active {
		// Mutual capture check: a frame survives overlap only if it is at
		// least `capture` dB stronger than the other.
		if rec.powerDBm < o.powerDBm+capture {
			rec.corrupted = true
		}
		if o.powerDBm < rec.powerDBm+capture {
			o.corrupted = true
		}
	}
	n.active = append(n.active, rec)
	net.Sim.At(rec.end, func() { net.frameEnd(n, rec) })
}

// frameEnd finalises one reception: drop it from the active set and, if it
// survived, deliver it to the neighbor table (beacon) or protocol (data).
func (net *Network) frameEnd(n *Node, rec *reception) {
	for i, o := range n.active {
		if o == rec {
			n.active[i] = n.active[len(n.active)-1]
			n.active = n.active[:len(n.active)-1]
			break
		}
	}
	if rec.corrupted {
		n.LostFrames++
		if rec.msg != nil {
			net.Collisions++
			if net.Cfg.OnDataLost != nil {
				net.Cfg.OnDataLost(n.ID, rec.from, rec.msg.ID, net.Sim.Now())
			}
		}
		return
	}
	n.RxFrames++
	now := net.Sim.Now()
	if rec.msg == nil {
		n.neighbors[rec.from] = NeighborEntry{ID: rec.from, RxPowerDBm: rec.powerDBm, LastHeard: now}
		return
	}
	if st := net.stats[rec.msg.ID]; st != nil && n.ID != rec.msg.Origin {
		if _, seen := st.FirstRx[n.ID]; !seen {
			st.FirstRx[n.ID] = now
			if now > st.LastRx {
				st.LastRx = now
			}
		}
	}
	if net.Cfg.OnDataRx != nil {
		net.Cfg.OnDataRx(n.ID, rec.from, rec.msg.ID, rec.powerDBm, now)
	}
	if n.proto != nil {
		n.proto.OnData(rec.msg, rec.from, rec.powerDBm)
	}
}

// Run executes the simulation until cfg.EndTime.
func (net *Network) Run() { net.Sim.RunUntil(net.Cfg.EndTime) }

// MaxRange returns the radio range at the default transmission power.
func (net *Network) MaxRange() float64 { return net.maxRange }
