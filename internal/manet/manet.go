// Package manet is the wireless mobile ad-hoc network substrate standing in
// for ns-3 in the paper's evaluation loop.
//
// It simulates, on top of the internal/sim event engine:
//
//   - node mobility (internal/mobility trajectories, re-drawn by events);
//   - a shared broadcast medium with log-distance attenuation, receiver
//     sensitivity, half-duplex radios and a capture-threshold collision
//     model;
//   - periodic hello beaconing at the default transmission power, feeding
//     per-node neighbor tables with the received signal strength of each
//     neighbor (the cross-layer information AEDB relies on);
//   - per-broadcast bookkeeping of exactly the four metrics the tuning
//     problem observes: coverage, forwardings, energy and broadcast time.
//
// One Network is one single-goroutine simulation; parallelism happens at a
// higher level by running many networks concurrently.
//
// # Hot-path design
//
// The recurring simulation events (beacons, mobility changes, frame
// boundaries, protocol timers) are scheduled as tagged events — plain
// (kind, node, payload) triples dispatched through Network.dispatch — so
// the steady-state event loop allocates nothing: no closures, no per-event
// heap objects. Protocol timers are slots of a network-owned table (see
// protoTimer) armed through Node.ScheduleTimer and delivered as
// Protocol.OnTimer callbacks. In-flight frame receptions live in a
// free-list pool indexed by int32, neighbor tables are timeout-pruned
// slices instead of maps, per-node kernel-facing hot state (memoised
// positions, half-duplex deadlines) sits in structure-of-arrays columns on
// the Network, and the "who can hear this transmission" query runs against
// a uniform-grid spatial index
// (internal/geom.FlatGrid, cell size = max radio range) instead of scanning
// all N nodes. The index is rebuilt lazily: between rebuilds, queries are
// inflated by the maximum distance any node can have drifted (bounded by
// mobility.Model.MaxSpeed) and candidates re-filtered against exact current
// positions, so results are bit-identical to a full scan.
//
// Because the warm-up phase of a scenario (mobility + beaconing before the
// broadcast starts) depends only on the scenario seed — never on the
// protocol parameters being evaluated — a warmed-up Network can be captured
// once into a Snapshot and cheaply re-instantiated per evaluation; see
// snapshot.go.
package manet

import (
	"fmt"
	"math"
	"slices"

	"aedbmls/internal/geom"
	"aedbmls/internal/mobility"
	"aedbmls/internal/radio"
	"aedbmls/internal/rng"
	"aedbmls/internal/sim"
)

// Config describes a simulation scenario. DefaultScenario reproduces the
// paper's Table II.
type Config struct {
	Area     geom.Rect
	NumNodes int

	// Mobility (random walk).
	SpeedMin, SpeedMax float64 // m/s
	ChangeInterval     float64 // s between direction/speed re-draws

	// Radio.
	PathLoss           radio.Model
	DefaultTxPowerDBm  float64
	SensitivityDBm     float64
	CaptureThresholdDB float64
	BitRateBps         float64
	PropagationSpeed   float64 // m/s; 0 disables propagation delay

	// Beaconing.
	BeaconInterval  float64 // s
	NeighborTimeout float64 // s without beacon before a neighbor is dropped
	BeaconBytes     int
	DataBytes       int

	// FastBeacons delivers beacons instantaneously without frame-level
	// collision modelling. Data frames always use the full collision
	// path. This cuts the event count by an order of magnitude and is the
	// default; accurate beacon contention is available for ablations.
	FastBeacons bool

	// ExactPhysics selects the reference per-call path-loss evaluation
	// (radio.NewExactKernel: sqrt + Model.Loss per candidate) instead of
	// the default fused d2-space kernel (radio.NewKernel). The two agree
	// within a ULP-scaled bound on every reception power — and therefore
	// on every discrete metric in practice — but are not bit-identical;
	// paper-exact reproduction runs set this. See internal/radio/kernel.go.
	ExactPhysics bool

	// Timeline.
	WarmupTime float64 // nodes move before the broadcast starts
	EndTime    float64 // absolute simulation end

	// MakeMobility overrides node trajectories (tests pin nodes with
	// mobility.Static). Nil uses the random-walk model of Table II.
	MakeMobility func(id int, r *rng.Rand) mobility.Model

	// Trace hooks, all optional (nil disables). They fire synchronously
	// from the simulation loop, in event order, for data frames only:
	// OnDataTx when a node transmits, OnDataRx on successful reception,
	// OnDataLost when a reception is destroyed by collision or
	// half-duplex conflict.
	OnDataTx   func(node, msgID int, powerDBm, time float64)
	OnDataRx   func(node, from, msgID int, rxPowerDBm, time float64)
	OnDataLost func(node, from, msgID int, time float64)

	// OnDecision, when non-nil, receives one Decision per protocol
	// forwarding-decision site (AEDB's Fig. 1 gates: first-copy
	// admission against the border threshold, the delay draw, duplicate
	// bookkeeping, disqualification, timer expiry, power adaptation).
	// Protocols emit these themselves — see internal/aedb — but the hook
	// lives here, next to the frame hooks, so it rides the same
	// configuration plumbing and is nil-checked once at each emission
	// site: disabled tracing costs one load-and-branch per site.
	OnDecision func(d Decision)
}

// DecisionKind classifies one protocol forwarding decision (see
// Decision). The kinds follow the Fig. 1 pseudocode of the AEDB paper.
type DecisionKind uint8

const (
	// DecisionOriginate: the source transmitted the message at the
	// default power (it has no reception information to adapt with).
	DecisionOriginate DecisionKind = iota + 1
	// DecisionDropClose: the first copy arrived above the border
	// threshold — the node sits too close to the sender and drops out of
	// forwarding immediately (Fig. 1 lines 4-5).
	DecisionDropClose
	// DecisionArm: the first copy arrived at or below the border
	// threshold — the node became a forwarding candidate and armed its
	// delay timer with Delay drawn from the closed interval
	// [DelayLo, DelayHi] (Fig. 1 line 8).
	DecisionArm
	// DecisionDuplicate: another copy arrived while the candidate was
	// waiting; PBestDBm holds the strongest received power after the
	// update (Fig. 1 lines 10-14).
	DecisionDuplicate
	// DecisionCancel: a duplicate pushed the strongest received power
	// above the border threshold — the candidate is disqualified for
	// good and its timer cancelled early (observably identical to the
	// Fig. 1 re-check at expiry).
	DecisionCancel
	// DecisionForward: the delay timer fired with the node still
	// qualified — it forwarded at TxPowerDBm, chosen by Regime from the
	// beacon link budget plus the mobility margin (Fig. 1 lines 18-27).
	DecisionForward
	// DecisionExpireDrop: the timer fired but the strongest received
	// power exceeded the border threshold. Unreachable while early
	// cancellation (DecisionCancel) is in place; kept for Fig. 1
	// completeness.
	DecisionExpireDrop
)

// String returns the compact kind label used by trace renderers.
func (k DecisionKind) String() string {
	switch k {
	case DecisionOriginate:
		return "ORIGINATE"
	case DecisionDropClose:
		return "DROP-CLOSE"
	case DecisionArm:
		return "ARM"
	case DecisionDuplicate:
		return "DUP"
	case DecisionCancel:
		return "CANCEL"
	case DecisionForward:
		return "FORWARD"
	case DecisionExpireDrop:
		return "EXPIRE-DROP"
	default:
		return fmt.Sprintf("KIND(%d)", uint8(k))
	}
}

// Power-adaptation regimes of DecisionForward (AEDB Fig. 1 lines 19-24).
const (
	// RegimeDense: more than neighbors-threshold devices sit in the
	// forwarding area — target the forwarding-area neighbor closest to
	// the sender (the strongest beacon inside the area).
	RegimeDense uint8 = iota + 1
	// RegimeSparse: target the furthest neighbor (weakest beacon) after
	// discarding the nodes the message was already heard from.
	RegimeSparse
	// RegimeFallback: empty (or fully discarded) neighbor table — the
	// node transmits at the default power under total uncertainty.
	RegimeFallback
)

// RegimeName renders a DecisionForward regime for trace output.
func RegimeName(r uint8) string {
	switch r {
	case RegimeDense:
		return "dense"
	case RegimeSparse:
		return "sparse"
	case RegimeFallback:
		return "fallback"
	default:
		return fmt.Sprintf("regime(%d)", r)
	}
}

// Decision is one protocol forwarding decision, emitted through
// Config.OnDecision. It is a flat value struct so emission never
// allocates; fields that do not apply to a Kind are zero (From is -1
// where no triggering sender exists, and RxPowerDBm/BeaconRxDBm are NaN
// where no reception is involved).
type Decision struct {
	Kind   DecisionKind
	Regime uint8 // DecisionForward only (RegimeDense/Sparse/Fallback)

	Node      int32
	From      int32 // sender of the triggering copy; -1 when n/a
	MsgID     int32
	Potential int32 // forwarding-area neighbor count (DecisionForward)

	Time       float64
	RxPowerDBm float64 // power of the triggering copy (NaN when n/a)
	PBestDBm   float64 // strongest copy heard so far
	BorderDBm  float64 // border threshold the copy was judged against

	// Delay draw of DecisionArm: Delay sampled from [DelayLo, DelayHi]
	// via rng.RangeClosed.
	DelayLo, DelayHi, Delay float64

	// Power adaptation of DecisionForward.
	NeighborsThreshold float64 // dense-regime population threshold
	BeaconRxDBm        float64 // chosen link-budget beacon (NaN on fallback)
	TxPowerDBm         float64 // final clamped transmission power
}

// DefaultScenario returns the paper's ns-3 configuration (Table II) for a
// network of numNodes devices: 500 m x 500 m arena, speeds in [0,2] m/s
// re-drawn every 20 s, default TX power 16.02 dBm, 30 s warm-up, 40 s end.
// Densities 100/200/300 devices/km^2 correspond to 25/50/75 nodes.
func DefaultScenario(numNodes int) Config {
	return Config{
		Area:               geom.Square(500),
		NumNodes:           numNodes,
		SpeedMin:           0,
		SpeedMax:           2,
		ChangeInterval:     20,
		PathLoss:           radio.NewLogDistanceDefault(),
		DefaultTxPowerDBm:  radio.DefaultTxPowerDBm,
		SensitivityDBm:     radio.DefaultSensitivityDBm,
		CaptureThresholdDB: radio.DefaultCaptureThresholdDB,
		BitRateBps:         1e6,
		PropagationSpeed:   3e8,
		BeaconInterval:     1.0,
		NeighborTimeout:    3.0,
		BeaconBytes:        32,
		DataBytes:          256,
		FastBeacons:        true,
		WarmupTime:         30,
		EndTime:            40,
	}
}

// NodesForDensity converts a density in devices/km^2 into a node count for
// the configured area (Table II uses a 0.25 km^2 arena).
func NodesForDensity(area geom.Rect, perKm2 float64) int {
	km2 := area.Width() * area.Height() / 1e6
	return int(math.Round(perKm2 * km2))
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.NumNodes <= 0:
		return fmt.Errorf("manet: NumNodes must be positive, got %d", c.NumNodes)
	case c.Area.Width() <= 0 || c.Area.Height() <= 0:
		return fmt.Errorf("manet: degenerate area %+v", c.Area)
	case c.PathLoss == nil:
		return fmt.Errorf("manet: PathLoss model is required")
	case c.BitRateBps <= 0:
		return fmt.Errorf("manet: BitRateBps must be positive")
	case c.BeaconInterval <= 0:
		return fmt.Errorf("manet: BeaconInterval must be positive")
	case c.EndTime < c.WarmupTime:
		return fmt.Errorf("manet: EndTime %.3f before WarmupTime %.3f", c.EndTime, c.WarmupTime)
	}
	return nil
}

// Message is a broadcast payload identified by ID; Origin is the source
// node.
type Message struct {
	ID     int
	Origin int
}

// Protocol is the interface a dissemination protocol implements per node.
//
// When the warm-start snapshot path is in use (see Snapshot), protocol
// construction and Init run against an already-warmed network, so they
// must not schedule events or draw from the node RNG — both would diverge
// from a from-scratch run. Every protocol in this repository satisfies
// this: Init only binds the node.
type Protocol interface {
	// Init binds the protocol instance to its node; called once before
	// the simulation starts.
	Init(n *Node)
	// Originate is invoked on the source node to start disseminating msg.
	Originate(msg *Message)
	// OnData is invoked on every successful data-frame reception, with the
	// transmitting node's ID and the received signal strength.
	OnData(msg *Message, from int, rxPowerDBm float64)
	// OnTimer is invoked when a timer armed via Node.ScheduleTimer fires,
	// with the tag the protocol chose when arming it (cancelled timers
	// never fire). Protocols that arm no timers implement it as a no-op.
	OnTimer(tag int32)
}

// ProtoRecycler is an optional Protocol extension for the evaluation hot
// path. When an Arena re-instantiates a network, the previous
// simulation's protocol instances become unreachable at the exact moment
// the arena contract invalidates that network; instances implementing
// Recycle are handed back then instead of being dropped for the garbage
// collector, so a protocol package can pool them (see aedb.New). Recycle
// is only ever called on instances whose network has been invalidated —
// an abandoned simulation (panic, timeout) abandons its arena and its
// protocol instances with it, so a recycled instance is never still in
// use.
type ProtoRecycler interface {
	Recycle()
}

// NeighborEntry is one row of a node's neighbor table, learned via
// beaconing: who the neighbor is, how strongly its last beacon was
// received, and when.
type NeighborEntry struct {
	ID         int
	RxPowerDBm float64
	LastHeard  float64
}

// nbrRec is the internal neighbor-table row. Fast beacons store only the
// squared transmitter distance and defer the dBm conversion (a log10) to
// table reads, which protocols perform orders of magnitude less often
// than beacons fire; frame-level beacons already computed the received
// power for the collision model and store it directly. The deferred
// conversion runs through the network's active path-loss kernel — the
// same kernel every eager conversion uses, so read-time values are
// bit-identical to an eager evaluation under the same physics mode; once
// performed it is memoised in rx (rxValid), and beacon-tape recording
// pre-performs it so every replay simulation of the scenario shares one
// conversion per beacon instead of one per read.
type nbrRec struct {
	id        int32
	hasRx     bool
	rxValid   bool
	d2        float64 // squared distance at beacon time (when !hasRx)
	rx        float64 // received power in dBm (when hasRx or rxValid)
	lastHeard float64
}

// reception tracks one in-flight frame at one receiver. Receptions live in
// the Network's free-list pool and are referenced by index from tagged
// events and node active sets, so the steady state allocates none.
type reception struct {
	from      int32
	corrupted bool
	powerDBm  float64
	start     float64
	end       float64
	msg       *Message // nil for beacons
}

// nbrIndexMaxNodes bounds the per-node ID->row neighbor index: beyond
// this network size its O(NumNodes^2) total memory outweighs the O(1)
// upsert, and the small per-node tables are scanned linearly instead.
const nbrIndexMaxNodes = 512

// Tagged event kinds dispatched by Network.dispatch.
const (
	evBeacon     uint16 = iota + 1 // a = node ID
	evMobility                     // a = node ID
	evFrameStart                   // a = receiver ID, b = reception index
	evFrameEnd                     // a = receiver ID, b = reception index
	evProtoTimer                   // a = timer-table slot, b = generation
)

// Node is one device: position (via mobility), radio state, neighbor table
// and its protocol instance.
type Node struct {
	ID  int
	net *Network
	mob mobility.Model
	// Rng is the node's private random stream (delays, jitter).
	Rng *rng.Rand

	proto Protocol
	// neighbors is the timeout-pruned neighbor table in insertion order.
	// nbrPos, when non-nil, maps a node ID to its index+1 in neighbors
	// (0 = absent) for O(1) upserts; it costs O(NumNodes) per node, so
	// networks beyond nbrIndexMaxNodes skip it (see upsertNeighbor) to
	// avoid O(N^2) memory. nbrOut is the scratch Neighbors() renders
	// public entries into.
	neighbors []nbrRec
	nbrPos    []int32
	nbrOut    []NeighborEntry
	active    []int32 // in-flight reception pool indices

	// The remaining kernel-facing hot state — current position, memoised
	// per (node, instant), and the half-duplex transmission deadline —
	// lives in structure-of-arrays columns owned by the Network
	// (posX/posY/posAt, txUntil), so the d2 gather of a transmission and
	// the grid rebuild walk contiguous memory instead of chasing Node
	// pointers. See Network and positionOf.

	// Accounting.
	TxEnergyMJ float64
	TxFrames   int
	RxFrames   int
	LostFrames int
}

// Network returns the owning network (for scheduling, transmitting).
func (n *Node) Network() *Network { return n.net }

// Position returns the node position at the current simulation time.
func (n *Node) Position() geom.Vec2 { return n.net.positionOf(n) }

// Neighbors returns the live neighbor entries (beacons heard within the
// neighbor timeout), pruning expired ones in place. Entries whose
// deferred power conversion lands below the receiver sensitivity (a
// hair-thin band at the edge of the radio range) are dropped like
// expired ones. The returned slice is scratch reused across calls;
// callers must not retain or mutate it.
func (n *Node) Neighbors() []NeighborEntry {
	net := n.net
	if net.tape != nil {
		net.syncTape(n)
	}
	cfg := &net.Cfg
	cutoff := net.Sim.Now() - cfg.NeighborTimeout
	n.nbrOut = n.nbrOut[:0]
	w := 0
	for _, e := range n.neighbors {
		if e.lastHeard < cutoff {
			n.unindexNeighbor(e.id)
			continue
		}
		rx := e.rx
		if !e.hasRx {
			if !e.rxValid {
				// Deferred conversion through the active kernel: fused
				// d2-space evaluation, no square root (and memoised, so
				// each row converts at most once; tape rows arrive
				// pre-converted by the batched recording path).
				rx = net.kern.RxPower2(cfg.DefaultTxPowerDBm, e.d2)
				e.rx, e.rxValid = rx, true
			}
			if rx < cfg.SensitivityDBm {
				n.unindexNeighbor(e.id)
				continue
			}
		}
		n.neighbors[w] = e
		if n.nbrPos != nil {
			n.nbrPos[e.id] = int32(w + 1)
		}
		w++
		n.nbrOut = append(n.nbrOut, NeighborEntry{ID: int(e.id), RxPowerDBm: rx, LastHeard: e.lastHeard})
	}
	n.neighbors = n.neighbors[:w]
	return n.nbrOut
}

func (n *Node) unindexNeighbor(id int32) {
	if n.nbrPos != nil {
		n.nbrPos[id] = 0
	}
}

// upsertNeighbor inserts or refreshes a neighbor table row, via the
// per-ID index when present or a linear scan of the (small) table when
// the network is too large to afford one index per node.
func (n *Node) upsertNeighbor(e nbrRec) {
	if n.nbrPos != nil {
		if p := n.nbrPos[e.id]; p > 0 {
			n.neighbors[p-1] = e
			return
		}
		n.neighbors = append(n.neighbors, e)
		n.nbrPos[e.id] = int32(len(n.neighbors))
		return
	}
	for i := range n.neighbors {
		if n.neighbors[i].id == e.id {
			n.neighbors[i] = e
			return
		}
	}
	n.neighbors = append(n.neighbors, e)
}

// protoTimer is one slot of the network-owned protocol timer table. A
// slot is armed by Node.ScheduleTimer and carries only plain data (the
// owning node and the protocol's tag); the firing itself is an ordinary
// tagged event, so arming a timer performs zero heap allocations — the
// same move the beacon/mobility/frame machinery made in PR 1. gen is the
// slot's reuse generation: a pending evProtoTimer event addresses its
// slot as (index, generation), so an event left behind by a cancelled or
// already-fired timer can never fire a later occupant of the slot.
type protoTimer struct {
	node  int32
	tag   int32
	gen   uint32
	armed bool
}

// Timer is the cancellable handle of a protocol timer armed with
// Node.ScheduleTimer. It is a plain value (copyable, no heap state); the
// zero Timer is valid and Cancel on it is a no-op. Cancelling an
// already-fired or already-cancelled timer is also a no-op, so handles
// may be retained past the firing without bookkeeping.
type Timer struct {
	net  *Network
	slot int32
	gen  uint32
}

// Cancel disarms the timer: OnTimer will not be invoked. Like a
// cancelled closure event, a cancelled timer immediately stops counting
// towards quiescence — it can never run protocol code — even though its
// tagged event drains from the schedule only when its firing time passes.
func (t Timer) Cancel() {
	if t.net == nil {
		return
	}
	s := &t.net.timers[t.slot]
	if !s.armed || s.gen != t.gen {
		return
	}
	s.armed = false
	t.net.liveTimers--
	t.net.freeTimer(t.slot)
}

// Armed reports whether the timer is still pending: armed, not cancelled,
// not yet fired.
func (t Timer) Armed() bool {
	if t.net == nil {
		return false
	}
	s := &t.net.timers[t.slot]
	return s.armed && s.gen == t.gen
}

// ScheduleTimer arms a protocol timer on this node: after delay seconds
// of simulated time the node's protocol receives OnTimer(tag). The tag is
// the protocol's own correlation value (typically a message ID); the
// returned handle cancels the timer. No allocation occurs.
func (n *Node) ScheduleTimer(delay float64, tag int32) Timer {
	net := n.net
	slot := net.allocTimer()
	s := &net.timers[slot]
	s.node = int32(n.ID)
	s.tag = tag
	s.armed = true
	net.liveTimers++
	net.Sim.ScheduleTagged(delay, evProtoTimer, slot, int32(s.gen))
	return Timer{net: net, slot: slot, gen: s.gen}
}

// allocTimer takes a timer slot from the free list (or grows the table).
func (net *Network) allocTimer() int32 {
	if k := len(net.freeTimers); k > 0 {
		i := net.freeTimers[k-1]
		net.freeTimers = net.freeTimers[:k-1]
		return i
	}
	net.timers = append(net.timers, protoTimer{})
	return int32(len(net.timers) - 1)
}

// freeTimer returns a slot to the free list, bumping its generation so
// pending events addressed at the old occupancy are recognisably stale.
func (net *Network) freeTimer(i int32) {
	net.timers[i].gen++
	net.freeTimers = append(net.freeTimers, i)
}

// fireTimer handles an evProtoTimer event. Stale events — the slot was
// cancelled, already fired and possibly re-armed, or belongs to a
// previous instantiation through the same arena — fail the (bounds,
// armed, generation) checks and fall through silently.
func (net *Network) fireTimer(slot, gen int32) {
	if int(slot) >= len(net.timers) {
		return
	}
	s := &net.timers[slot]
	if !s.armed || s.gen != uint32(gen) {
		return
	}
	s.armed = false
	net.liveTimers--
	node, tag := s.node, s.tag
	net.freeTimer(slot)
	if p := net.Nodes[node].proto; p != nil {
		p.OnTimer(tag)
	}
}

// Network is one simulation instance.
type Network struct {
	Sim   *sim.Simulator
	Cfg   Config
	Nodes []*Node
	Rng   *rng.Rand

	// grid is the uniform spatial index over node positions, built at
	// gridTime. Between rebuilds queries are inflated by maxSpeed drift
	// (see candidates). maxSpeed is +Inf when any mobility model has no
	// known bound, forcing a rebuild whenever the clock has moved.
	grid      *geom.FlatGrid
	gridTime  float64
	gridBuilt bool
	maxSpeed  float64
	maxRange  float64
	scratch   []int32     // candidate buffer reused across queries
	posBuf    []geom.Vec2 // position buffer reused across grid rebuilds

	// kern is the active path-loss kernel, compiled from Cfg.PathLoss by
	// initKernel (fused d2-space form by default, reference per-call
	// physics under Cfg.ExactPhysics). physIDs/physD2/physRx are the
	// scratch buffers of its batched conversions: the admitted candidates
	// of a transmission, their squared distances, and the converted
	// powers.
	kern    radio.Kernel
	physIDs []int32
	physD2  []float64
	physRx  []float64
	// physSched is the admitted-reception scratch of transmitFrame,
	// sorted by arrival time so the reception batch can ride the
	// simulator's monotone FIFO lane instead of the event heap.
	physSched []rxSched

	// Structure-of-arrays per-node hot state, indexed by node ID. posX/
	// posY hold the position memoised at instant posAt (NaN = nothing
	// memoised: the stamp every (re)initialisation resets to, so a
	// recycled network can never serve a previous scenario's position —
	// see initHotState). txUntil is the half-duplex transmission deadline.
	// Keeping these in network-owned columns rather than Node fields lets
	// the d2 gather of transmitFrame/fastBeacon and the grid rebuild run
	// over contiguous memory.
	posX, posY, posAt []float64
	txUntil           []float64

	// timers is the protocol timer table (see protoTimer); freeTimers its
	// free list. liveTimers counts armed timers and feeds Quiescent: an
	// armed timer is pending protocol code exactly like a live closure.
	timers     []protoTimer
	freeTimers []int32
	liveTimers int

	// recs is the reception pool; freeRecs its free list.
	recs     []reception
	freeRecs []int32
	// dataInFlight counts pending data-frame events (scheduled frame
	// starts plus active receptions carrying a message); see Quiescent.
	dataInFlight int

	// tape/tapeCur serve neighbor tables from a recorded beacon tape
	// (replay mode, see tape.go); tapeRec collects one while recording.
	tape    *BeaconTape
	tapeCur []int32
	tapeRec *BeaconTape

	stats map[int]*BroadcastStats
	// firstRxPool recycles BroadcastStats first-reception buffers across
	// arena instantiations (harvested when the stats map is cleared).
	firstRxPool [][]float64
	nextMsgID   int
	// Collisions counts data-frame receptions lost to interference or
	// half-duplex conflicts.
	Collisions int
}

// BroadcastStats aggregates the four paper metrics for one message.
type BroadcastStats struct {
	MessageID int
	Source    int
	SentAt    float64
	// firstRx is the node-indexed first successful reception time (NaN =
	// never received); covered counts its non-NaN entries. A slice keyed
	// by the (known) network size replaces the map the data cascade used
	// to allocate per candidate: the buffer is recycled through the
	// owning network across arena instantiations.
	firstRx []float64
	covered int
	// Forwards counts data transmissions by non-source nodes.
	Forwards int
	// SourceSends counts data transmissions by the source.
	SourceSends int
	// TxPowerSumDBm is the paper's energy objective: the sum of the
	// transmission power levels (in dBm) of every data transmission.
	TxPowerSumDBm float64
	// TxEnergyMJ is the physically integrated radiated energy.
	TxEnergyMJ float64
	// LastRx is the latest first-reception time (broadcast completion).
	LastRx float64
}

// Coverage returns the number of devices (excluding the source) that
// received the message.
func (b *BroadcastStats) Coverage() int { return b.covered }

// FirstRxAt returns a node's first successful reception time and whether
// the node received the message at all.
func (b *BroadcastStats) FirstRxAt(node int) (float64, bool) {
	if node < 0 || node >= len(b.firstRx) {
		return 0, false
	}
	at := b.firstRx[node]
	if math.IsNaN(at) {
		return 0, false
	}
	return at, true
}

// EachFirstRx calls fn for every node that received the message, in
// ascending node-ID order with its first reception time.
func (b *BroadcastStats) EachFirstRx(fn func(node int, at float64)) {
	for id, at := range b.firstRx {
		if !math.IsNaN(at) {
			fn(id, at)
		}
	}
}

// BroadcastTime returns the dissemination duration: last first-reception
// minus send time; zero if nobody received the message.
func (b *BroadcastStats) BroadcastTime() float64 {
	if b.covered == 0 {
		return 0
	}
	return b.LastRx - b.SentAt
}

// New builds a network of cfg.NumNodes random-walk nodes. Protocol
// instances are created per node by makeProto (may be nil for
// protocol-less networks, e.g. beaconing tests).
func New(cfg Config, seed uint64, makeProto func(*Node) Protocol) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	master := rng.New(seed)
	net := &Network{
		Sim:   sim.New(),
		Cfg:   cfg,
		Rng:   master.Split(),
		stats: make(map[int]*BroadcastStats),
	}
	net.Sim.SetHandler(net.dispatch)
	net.maxRange = cfg.PathLoss.RangeFor(cfg.DefaultTxPowerDBm, cfg.SensitivityDBm)
	net.initKernel()
	net.initGrid()
	net.initHotState()

	for i := 0; i < cfg.NumNodes; i++ {
		nodeRng := master.Split()
		var mob mobility.Model
		if cfg.MakeMobility != nil {
			mob = cfg.MakeMobility(i, nodeRng.Split())
		} else {
			mob = mobility.NewRandomWalk(cfg.Area, cfg.SpeedMin, cfg.SpeedMax, cfg.ChangeInterval, nodeRng.Split())
		}
		n := &Node{
			ID:  i,
			net: net,
			mob: mob,
			Rng: nodeRng,
		}
		if cfg.NumNodes <= nbrIndexMaxNodes {
			n.nbrPos = make([]int32, cfg.NumNodes)
		}
		net.Nodes = append(net.Nodes, n)
	}
	net.computeMaxSpeed()
	// Protocol instances after all nodes exist (they may inspect peers).
	if makeProto != nil {
		for _, n := range net.Nodes {
			n.proto = makeProto(n)
			n.proto.Init(n)
		}
	}
	// Mobility change events.
	for _, n := range net.Nodes {
		net.scheduleMobility(n)
	}
	// Beacons with an initial phase jitter.
	for _, n := range net.Nodes {
		phase := n.Rng.Range(0, cfg.BeaconInterval)
		net.Sim.AtTagged(phase, evBeacon, int32(n.ID), 0)
	}
	return net, nil
}

// initKernel compiles the active path-loss kernel from the config: the
// fused d2-space kernel by default, reference per-call physics when
// Cfg.ExactPhysics is set (see radio.NewKernel / radio.NewExactKernel).
func (net *Network) initKernel() {
	if net.Cfg.ExactPhysics {
		net.kern = radio.NewExactKernel(net.Cfg.PathLoss)
	} else {
		net.kern = radio.NewKernel(net.Cfg.PathLoss)
	}
}

// initGrid sizes the spatial index: one cell per maximum radio range, so
// any feasible transmission query touches at most a 3x3 block (plus drift
// slop). A grid left behind by a previous instantiation through the same
// arena is reused when its shape still matches (Build fully re-indexes).
func (net *Network) initGrid() {
	cell := net.maxRange
	if cell <= 0 {
		cell = math.Max(net.Cfg.Area.Width(), net.Cfg.Area.Height())
		if cell <= 0 {
			cell = 1
		}
	}
	if net.grid == nil || net.grid.Len() != net.Cfg.NumNodes ||
		net.grid.CellSize() != cell || net.grid.Bounds() != net.Cfg.Area {
		net.grid = geom.NewFlatGrid(net.Cfg.Area, cell, net.Cfg.NumNodes)
	}
	net.gridBuilt = false
	net.gridTime = 0
	if cap(net.posBuf) < net.Cfg.NumNodes {
		net.posBuf = make([]geom.Vec2, net.Cfg.NumNodes)
	} else {
		net.posBuf = net.posBuf[:net.Cfg.NumNodes]
	}
}

// computeMaxSpeed derives the network-wide node speed bound from the
// mobility models (+Inf when any model has no bound).
func (net *Network) computeMaxSpeed() {
	net.maxSpeed = 0
	for _, n := range net.Nodes {
		if s := n.mob.MaxSpeed(); s > net.maxSpeed {
			net.maxSpeed = s
		}
	}
}

// dispatch routes tagged events to their handlers.
func (net *Network) dispatch(kind uint16, a, b int32) {
	switch kind {
	case evBeacon:
		if net.tape != nil {
			panic("manet: beacon event fired in tape-replay mode")
		}
		net.beacon(net.Nodes[a])
	case evMobility:
		n := net.Nodes[a]
		n.mob.Advance()
		net.scheduleMobility(n)
	case evFrameStart:
		net.frameStart(net.Nodes[a], b)
	case evFrameEnd:
		net.frameEnd(net.Nodes[a], b)
	case evProtoTimer:
		net.fireTimer(a, b)
	default:
		panic(fmt.Sprintf("manet: unknown event kind %d", kind))
	}
}

func (net *Network) scheduleMobility(n *Node) {
	next := n.mob.NextChange()
	if math.IsInf(next, 1) || next > net.Cfg.EndTime {
		return
	}
	net.Sim.AtTagged(next, evMobility, int32(n.ID), 0)
}

// positionOf returns a node's exact position at the current instant,
// memoised per (node, instant) in the network-owned position columns.
func (net *Network) positionOf(n *Node) geom.Vec2 {
	x, y := net.posOf(int32(n.ID), net.Sim.Now())
	return geom.Vec2{X: x, Y: y}
}

// posOf is positionOf by node ID, returning the coordinates directly from
// the position columns: posAt[id] stamps the instant the memoised value
// is valid for (NaN = invalid), so within one event instant each
// trajectory is evaluated at most once and every later read is two
// contiguous array loads.
func (net *Network) posOf(id int32, now float64) (x, y float64) {
	if net.posAt[id] != now {
		p := net.Nodes[id].mob.Position(now)
		net.posX[id], net.posY[id] = p.X, p.Y
		net.posAt[id] = now
	}
	return net.posX[id], net.posY[id]
}

// initHotState sizes the structure-of-arrays per-node columns and resets
// the protocol timer table. The NaN fill of posAt is the position-cache
// invalidation on (re)use: sim.Reset restarts every arena instantiation
// at the same warm-up cut, so without it a recycled network whose new
// scenario shares an instant with the old one would serve the previous
// scenario's memoised position.
func (net *Network) initHotState() {
	nn := net.Cfg.NumNodes
	if cap(net.posX) < nn {
		net.posX = make([]float64, nn)
		net.posY = make([]float64, nn)
		net.posAt = make([]float64, nn)
		net.txUntil = make([]float64, nn)
	} else {
		net.posX = net.posX[:nn]
		net.posY = net.posY[:nn]
		net.posAt = net.posAt[:nn]
		net.txUntil = net.txUntil[:nn]
	}
	nan := math.NaN()
	for i := 0; i < nn; i++ {
		net.posAt[i] = nan
		net.txUntil[i] = 0
	}
	net.timers = net.timers[:0]
	net.freeTimers = net.freeTimers[:0]
	net.liveTimers = 0
}

// candidates returns the IDs of every node whose current position may lie
// within radius of center. The set is a superset of the true in-range
// set: the grid holds positions from gridTime, so the query radius is
// inflated by how far any node can have drifted since; callers must
// re-filter with exact positions. The grid is rebuilt when the drift
// bound grows past a quarter cell (and always when no finite speed bound
// exists), keeping the inflation — and the candidate excess — small.
//
// With sorted true the IDs come back ascending, reproducing the iteration
// order of a linear scan; callers whose per-candidate effects are
// independent (beacon table updates) skip the sort.
func (net *Network) candidates(center geom.Vec2, radius float64, exclude int, sorted bool) []int32 {
	now := net.Sim.Now()
	slop := 0.0
	if !net.gridBuilt || now < net.gridTime {
		slop = math.Inf(1)
	} else if now > net.gridTime {
		slop = net.maxSpeed * (now - net.gridTime)
	}
	if slop > net.grid.CellSize()/4 {
		for i, n := range net.Nodes {
			net.posBuf[i] = net.positionOf(n)
		}
		net.grid.Build(net.posBuf)
		net.gridTime = now
		net.gridBuilt = true
		slop = 0
	}
	net.scratch = net.grid.Query(net.scratch[:0], center, radius+slop, exclude)
	if sorted {
		slices.Sort(net.scratch)
	}
	return net.scratch
}

// beacon transmits one hello frame and schedules the next.
func (net *Network) beacon(n *Node) {
	if net.Sim.Now() <= net.Cfg.EndTime {
		if net.Cfg.FastBeacons {
			net.fastBeacon(n)
		} else {
			net.transmitFrame(n, nil, net.Cfg.DefaultTxPowerDBm, net.Cfg.BeaconBytes)
		}
		net.Sim.ScheduleTagged(net.Cfg.BeaconInterval, evBeacon, int32(n.ID), 0)
	}
}

// fastBeacon updates neighbor tables instantly, without contention.
func (net *Network) fastBeacon(n *Node) {
	cfg := &net.Cfg
	now := net.Sim.Now()
	duration := float64(cfg.BeaconBytes*8) / cfg.BitRateBps
	n.TxEnergyMJ += radio.TxEnergyMilliJoule(cfg.DefaultTxPowerDBm, duration)
	n.TxFrames++
	pos := net.positionOf(n)
	px, py := pos.X, pos.Y
	r2 := net.maxRange * net.maxRange
	if net.tapeRec == nil {
		for _, id := range net.candidates(pos, net.maxRange, n.ID, false) {
			qx, qy := net.posOf(id, now)
			dx, dy := px-qx, py-qy
			d2 := dx*dx + dy*dy
			if d2 > r2 {
				continue
			}
			// The dBm conversion is deferred to table reads (see nbrRec).
			other := net.Nodes[id]
			other.upsertNeighbor(nbrRec{id: int32(n.ID), d2: d2, lastHeard: now})
			other.RxFrames++
		}
		return
	}
	// Recording: pre-perform the conversion — one batched kernel call for
	// the whole in-range slice — so every replay of the tape shares it
	// instead of converting per read per candidate.
	ids := net.physIDs[:0]
	d2s := net.physD2[:0]
	for _, id := range net.candidates(pos, net.maxRange, n.ID, false) {
		qx, qy := net.posOf(id, now)
		dx, dy := px-qx, py-qy
		d2 := dx*dx + dy*dy
		if d2 > r2 {
			continue
		}
		ids = append(ids, id)
		d2s = append(d2s, d2)
	}
	rxs := net.kern.RxPowerInto(net.physRx, cfg.DefaultTxPowerDBm, d2s)
	net.physIDs, net.physD2, net.physRx = ids, d2s, rxs
	for i, id := range ids {
		rec := nbrRec{id: int32(n.ID), d2: d2s[i], rx: rxs[i], rxValid: true, lastHeard: now}
		net.tapeRec.perNode[id] = append(net.tapeRec.perNode[id], rec)
		other := net.Nodes[id]
		other.upsertNeighbor(rec)
		other.RxFrames++
	}
}

// NewMessage allocates a message originating at the source node.
func (net *Network) NewMessage(source int) *Message {
	id := net.nextMsgID
	net.nextMsgID++
	return &Message{ID: id, Origin: source}
}

// StartBroadcast schedules the dissemination of a fresh message from the
// source node at absolute time t and returns its stats collector.
func (net *Network) StartBroadcast(source int, t float64) *BroadcastStats {
	return net.startBroadcast(source, t, false)
}

// startBroadcast is the shared body of StartBroadcast and the snapshot
// restore path, which differ only in whether the origination event is
// ordered ahead of same-time pending events (front).
func (net *Network) startBroadcast(source int, t float64, front bool) *BroadcastStats {
	msg := net.NewMessage(source)
	st := &BroadcastStats{MessageID: msg.ID, Source: source, SentAt: t, firstRx: net.newFirstRx()}
	net.stats[msg.ID] = st
	fn := func() { net.originate(source, msg) }
	if front {
		net.Sim.AtFront(t, fn)
	} else {
		net.Sim.At(t, fn)
	}
	return st
}

// newFirstRx takes a first-reception buffer from the network's recycling
// pool (or allocates one), sized to the current node count and reset to
// all-NaN.
func (net *Network) newFirstRx() []float64 {
	nn := len(net.Nodes)
	var buf []float64
	if k := len(net.firstRxPool); k > 0 {
		buf = net.firstRxPool[k-1]
		net.firstRxPool = net.firstRxPool[:k-1]
	}
	if cap(buf) < nn {
		buf = make([]float64, nn)
	}
	buf = buf[:nn]
	nan := math.NaN()
	for i := range buf {
		buf[i] = nan
	}
	return buf
}

// recycleStats harvests the first-reception buffers of every finished
// stats collector so the next instantiation through the same buffers
// reuses them; the collectors themselves are invalidated by the caller
// (which clears the stats map).
func (net *Network) recycleStats() {
	for _, st := range net.stats {
		if st.firstRx != nil {
			net.firstRxPool = append(net.firstRxPool, st.firstRx)
			st.firstRx = nil
			st.covered = 0
		}
	}
}

func (net *Network) originate(source int, msg *Message) {
	n := net.Nodes[source]
	if n.proto != nil {
		n.proto.Originate(msg)
	}
}

// Stats returns the collector for a message ID.
func (net *Network) Stats(msgID int) *BroadcastStats { return net.stats[msgID] }

// TransmitData broadcasts a data frame carrying msg from node n at the
// given power. Protocols call this; all metric accounting happens here.
func (net *Network) TransmitData(n *Node, msg *Message, txPowerDBm float64) {
	txPowerDBm = radio.ClampTxPower(txPowerDBm, net.Cfg.DefaultTxPowerDBm)
	duration := float64(net.Cfg.DataBytes*8) / net.Cfg.BitRateBps
	if st := net.stats[msg.ID]; st != nil {
		if n.ID == msg.Origin {
			st.SourceSends++
		} else {
			st.Forwards++
		}
		st.TxPowerSumDBm += txPowerDBm
		st.TxEnergyMJ += radio.TxEnergyMilliJoule(txPowerDBm, duration)
	}
	if net.Cfg.OnDataTx != nil {
		net.Cfg.OnDataTx(n.ID, msg.ID, txPowerDBm, net.Sim.Now())
	}
	net.transmitFrame(n, msg, txPowerDBm, net.Cfg.DataBytes)
}

// allocRec takes a reception slot from the pool.
func (net *Network) allocRec() int32 {
	if k := len(net.freeRecs); k > 0 {
		i := net.freeRecs[k-1]
		net.freeRecs = net.freeRecs[:k-1]
		return i
	}
	net.recs = append(net.recs, reception{})
	return int32(len(net.recs) - 1)
}

// freeRec returns a reception slot to the pool, clearing its message
// reference so pooled slots never pin a finished broadcast.
func (net *Network) freeRec(i int32) {
	net.recs[i].msg = nil
	net.freeRecs = append(net.freeRecs, i)
}

// transmitFrame implements the shared medium: it finds every node within
// the feasible range of the chosen power and schedules frame start/end
// events that apply the half-duplex and capture-threshold rules.
func (net *Network) transmitFrame(n *Node, msg *Message, txPowerDBm float64, bytes int) {
	cfg := &net.Cfg
	now := net.Sim.Now()
	duration := float64(bytes*8) / cfg.BitRateBps
	n.TxEnergyMJ += radio.TxEnergyMilliJoule(txPowerDBm, duration)
	n.TxFrames++
	// Half duplex: the sender cannot receive while transmitting, and any
	// reception already in flight at the sender is lost.
	if net.txUntil[n.ID] < now+duration {
		net.txUntil[n.ID] = now + duration
	}
	for _, ri := range n.active {
		net.recs[ri].corrupted = true
	}

	pos := net.positionOf(n)
	// The kernel precomputes the sensitivity cutoff as a d2-space
	// threshold: out-of-range candidates are rejected on their squared
	// distance alone and never touch a transcendental. Candidates under
	// the cutoff still pass the exact rx >= sensitivity check below, the
	// same structure the reference path uses with RangeFor squared.
	cut := net.kern.CutoffD2(txPowerDBm, cfg.SensitivityDBm)
	reach := math.Sqrt(cut)
	// Candidates gathered in ascending ID order; the admitted receptions
	// are then sorted by (arrival time, ID) below, which both preserves
	// the firing order of the historical schedule-in-ID-order scheme —
	// events fire in (time, seq) order, and among a transmission's
	// receptions that collapses to (time, ID) either way — and lets the
	// whole batch ride the simulator's monotone FIFO lane.
	ids := net.physIDs[:0]
	d2s := net.physD2[:0]
	px, py := pos.X, pos.Y
	for _, id := range net.candidates(pos, reach, n.ID, true) {
		qx, qy := net.posOf(id, now)
		dx, dy := px-qx, py-qy
		d2 := dx*dx + dy*dy
		if d2 > cut {
			continue
		}
		ids = append(ids, id)
		d2s = append(d2s, d2)
	}
	// One batched kernel call converts every admitted candidate's squared
	// distance to its reception power.
	rxs := net.kern.RxPowerInto(net.physRx, txPowerDBm, d2s)
	net.physIDs, net.physD2, net.physRx = ids, d2s, rxs
	sched := net.physSched[:0]
	for i, id := range ids {
		rx := rxs[i]
		if rx < cfg.SensitivityDBm {
			continue
		}
		var prop float64
		if cfg.PropagationSpeed > 0 {
			prop = math.Sqrt(d2s[i]) / cfg.PropagationSpeed
		}
		sched = append(sched, rxSched{t: now + prop, rx: rx, id: int32(id)})
	}
	// Insertion sort by (arrival time, receiver ID). The batch is small
	// (a node's in-range receivers) and nearly sorted when propagation
	// delay is off; the (t, id) key is a strict total order, so the
	// result — and with it every sequence-number assignment below — is
	// deterministic.
	for i := 1; i < len(sched); i++ {
		e := sched[i]
		j := i
		for j > 0 && (e.t < sched[j-1].t || (e.t == sched[j-1].t && e.id < sched[j-1].id)) {
			sched[j] = sched[j-1]
			j--
		}
		sched[j] = e
	}
	net.physSched = sched
	for _, e := range sched {
		ri := net.allocRec()
		net.recs[ri] = reception{from: int32(n.ID), powerDBm: e.rx, start: e.t, end: e.t + duration, msg: msg}
		if msg != nil {
			net.dataInFlight++
		}
		net.Sim.AtTaggedMonotone(e.t, evFrameStart, e.id, ri)
	}
}

// rxSched is one admitted reception of a transmission, staged for
// time-sorted scheduling (see transmitFrame).
type rxSched struct {
	t, rx float64
	id    int32
}

// frameStart registers an in-flight frame at the receiver and applies the
// collision rules against every overlapping frame.
func (net *Network) frameStart(n *Node, ri int32) {
	rec := &net.recs[ri]
	// Receiver mid-transmission loses the frame (half duplex).
	if net.Sim.Now() < net.txUntil[n.ID] {
		rec.corrupted = true
	}
	capture := net.Cfg.CaptureThresholdDB
	for _, oi := range n.active {
		o := &net.recs[oi]
		// Mutual capture check: a frame survives overlap only if it is at
		// least `capture` dB stronger than the other.
		if rec.powerDBm < o.powerDBm+capture {
			rec.corrupted = true
		}
		if o.powerDBm < rec.powerDBm+capture {
			o.corrupted = true
		}
	}
	n.active = append(n.active, ri)
	// Frame ends are enqueued at start time plus a constant per-class
	// duration, so within a transmission (and across non-overlapping
	// ones) they arrive in firing order: the monotone FIFO lane applies.
	net.Sim.AtTaggedMonotone(rec.end, evFrameEnd, int32(n.ID), ri)
}

// frameEnd finalises one reception: drop it from the active set and, if it
// survived, deliver it to the neighbor table (beacon) or protocol (data).
func (net *Network) frameEnd(n *Node, ri int32) {
	for i, oi := range n.active {
		if oi == ri {
			n.active[i] = n.active[len(n.active)-1]
			n.active = n.active[:len(n.active)-1]
			break
		}
	}
	rec := net.recs[ri]
	net.freeRec(ri)
	if rec.msg != nil {
		net.dataInFlight--
	}
	if rec.corrupted {
		n.LostFrames++
		if rec.msg != nil {
			net.Collisions++
			if net.Cfg.OnDataLost != nil {
				net.Cfg.OnDataLost(n.ID, int(rec.from), rec.msg.ID, net.Sim.Now())
			}
		}
		return
	}
	n.RxFrames++
	now := net.Sim.Now()
	if rec.msg == nil {
		n.upsertNeighbor(nbrRec{id: rec.from, hasRx: true, rx: rec.powerDBm, lastHeard: now})
		return
	}
	if st := net.stats[rec.msg.ID]; st != nil && n.ID != rec.msg.Origin {
		if math.IsNaN(st.firstRx[n.ID]) {
			st.firstRx[n.ID] = now
			st.covered++
			if now > st.LastRx {
				st.LastRx = now
			}
		}
	}
	if net.Cfg.OnDataRx != nil {
		net.Cfg.OnDataRx(n.ID, int(rec.from), rec.msg.ID, rec.powerDBm, now)
	}
	if n.proto != nil {
		n.proto.OnData(rec.msg, int(rec.from), rec.powerDBm)
	}
}

// Run executes the simulation until cfg.EndTime.
func (net *Network) Run() { net.Sim.RunUntil(net.Cfg.EndTime) }

// Quiescent reports whether the current broadcast activity is over: no
// closure event (broadcast origination) is pending, no protocol timer is
// armed, and no data frame is in flight. From a quiescent state no
// protocol code can ever run again — the remaining tagged events are
// beacons, mobility changes, beacon frame boundaries and stale (cancelled
// or fired) timer events, none of which invokes a protocol or touches a
// stats collector — so every BroadcastStats field and the Collisions
// counter are final.
func (net *Network) Quiescent() bool {
	return net.Sim.PendingClosures() == 0 && net.liveTimers == 0 && net.dataInFlight == 0
}

// RunToQuiescence executes the simulation until cfg.EndTime, stopping
// early as soon as the network is Quiescent. The broadcast metrics it
// leaves behind are bit-identical to a full Run — the skipped tail is
// protocol-independent beacon and mobility churn — but per-node frame and
// energy accounting stops where the simulation does. The batched
// evaluation engine uses this to avoid simulating the dead tail of every
// candidate configuration.
func (net *Network) RunToQuiescence() {
	for !net.Quiescent() {
		if !net.Sim.StepUntil(net.Cfg.EndTime) {
			return
		}
	}
}

// MaxRange returns the radio range at the default transmission power.
func (net *Network) MaxRange() float64 { return net.maxRange }
