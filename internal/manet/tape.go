// Beacon tapes: sharing the protocol-independent beacon evolution of a
// warmed scenario across many simulations.
//
// With fast beacons (the default medium), nothing a dissemination
// protocol does can influence beaconing: fast beacons never contend with
// data frames, draw no randomness, and read no protocol state. The
// complete neighbor-table evolution of a scenario after the warm-up cut —
// which beacon lands in which table, with what distance, at what time —
// is therefore a pure function of the scenario seed, exactly like the
// warm-up itself. A BeaconTape records that evolution once; every replay
// simulation of the same scenario then strips the beacon events from its
// schedule entirely and serves neighbor-table reads lazily from the tape.
//
// Equivalence argument. A node's neighbor table changes through exactly
// two operations: beacon upserts (at beacon instants) and read-time
// pruning (Node.Neighbors, the only read path). The tape replays the
// identical upsert sequence — same rows, same order, same timestamps —
// applied at read time instead of beacon time; since between a beacon
// instant and the next read nothing observes the table, applying the
// pending upserts immediately before the read yields bit-identical
// contents (values and row order) at every read instant. Protocol
// behaviour, and hence every broadcast metric, is unchanged. What replay
// mode does give up is per-node beacon accounting on the sender side
// (TxFrames/TxEnergyMJ no longer include beacon traffic), which no metric
// reads; receiver-side RxFrames accounting is applied with the upserts.
//
// The tie-break assumption: when a beacon and a table read share an exact
// instant, the beacon applies first. In the event loop the beacon wins
// the FIFO tie because it was scheduled a full interval earlier, and the
// tape's `lastHeard <= now` application rule reproduces that order.
package manet

import (
	"fmt"

	"aedbmls/internal/sim"
)

// BeaconTape is the recorded fast-beacon evolution of one warmed scenario
// in (snapshot cut, until]. It is immutable after RecordBeaconTape
// returns and safe to share across concurrent replay simulations.
type BeaconTape struct {
	until   float64
	events  []sim.TaggedEvent // snapshot schedule with beacon events stripped
	perNode [][]nbrRec        // upserts per receiver, in firing order
}

// Until returns the end of the recorded interval.
func (t *BeaconTape) Until() float64 { return t.until }

// NumNodes returns the network size the tape was recorded at. A tape can
// only replay into snapshots of exactly this size (see InstantiateReplay);
// smaller scenarios derive their tape with Mask.
func (t *BeaconTape) NumNodes() int { return len(t.perNode) }

// Upserts returns the total number of recorded neighbor-table updates.
func (t *BeaconTape) Upserts() int {
	n := 0
	for _, p := range t.perNode {
		n += len(p)
	}
	return n
}

// RecordBeaconTape replays the scenario's beacon schedule from the
// snapshot cut to until (normally cfg.EndTime) on a protocol-less clone
// and records every neighbor-table update. It requires the fast-beacon
// medium: frame-level beacons contend with data frames, so their
// evolution is not protocol-independent and cannot be shared.
func (s *Snapshot) RecordBeaconTape(until float64) (*BeaconTape, error) {
	if !s.cfg.FastBeacons {
		return nil, fmt.Errorf("manet: beacon tapes require the fast-beacon medium")
	}
	if until < s.now {
		until = s.now
	}
	tape := &BeaconTape{until: until, perNode: make([][]nbrRec, len(s.nodes))}
	for _, ev := range s.events {
		if ev.Kind == evBeacon {
			continue
		}
		tape.events = append(tape.events, ev)
	}
	rec, _ := s.instantiate(nil, 0, s.now, nil, nil)
	rec.tapeRec = tape
	rec.Sim.RunUntil(until)
	return tape, nil
}

// Mask derives the beacon tape of the k-node sub-network consisting of
// nodes [0, k) — the cross-density tape sharing primitive, mirroring
// Snapshot.Mask. By the same argument that makes a masked snapshot
// bit-identical to a direct small-network build (nodes [0, k) of the
// larger population ARE the k-node network of the same seed, and fast
// beacons neither contend nor read protocol state), dropping the masked
// senders' upserts from every surviving receiver's record (and the masked
// nodes' pending events from the stripped schedule) leaves exactly the
// tape RecordBeaconTape would produce from the k-node scenario: the same
// upserts, in the same order, with the same timestamps and pre-converted
// powers. FuzzTapeMask holds the two event-for-event identical.
//
// k must be in [1, NumNodes]; masking to the full size returns the tape
// itself. The derived tape shares no mutable state with the parent and is
// equally safe for concurrent replays.
func (t *BeaconTape) Mask(k int) (*BeaconTape, error) {
	if k < 1 || k > len(t.perNode) {
		return nil, fmt.Errorf("manet: tape mask size %d outside [1, %d]", k, len(t.perNode))
	}
	if k == len(t.perNode) {
		return t, nil
	}
	m := &BeaconTape{until: t.until, perNode: make([][]nbrRec, k)}
	for _, ev := range t.events {
		switch ev.Kind {
		case evMobility:
			if int(ev.A) < k {
				m.events = append(m.events, ev)
			}
		default:
			// A fast-beacon warm-up schedule holds only beacon (already
			// stripped) and mobility events; anything else means the tape
			// was recorded from a state this derivation cannot reason
			// about.
			return nil, fmt.Errorf("manet: cannot mask recorded event kind %d", ev.Kind)
		}
	}
	for i := 0; i < k; i++ {
		src := t.perNode[i]
		rows := make([]nbrRec, 0, len(src))
		for _, rec := range src {
			if int(rec.id) < k {
				rows = append(rows, rec)
			}
		}
		m.perNode[i] = rows
	}
	return m, nil
}

// InstantiateReplay builds a network from the snapshot like Instantiate,
// but strips every beacon event from the restored schedule and serves
// neighbor tables from the tape (recorded from the same snapshot, or
// derived for the snapshot's size with Mask — the two are bit-identical).
// Broadcast metrics are bit-identical to an Instantiate+Run of the same
// (protocol, source); per-node frame and energy accounting excludes
// beacon transmissions. The simulation must not run past the tape's
// recorded interval. A tape whose NumNodes does not match the snapshot
// records a different scenario — replaying it would serve foreign
// neighbor tables — so mismatched instantiation panics.
func (s *Snapshot) InstantiateReplay(makeProto func(*Node) Protocol, source int, startAt float64, tape *BeaconTape) (*Network, *BroadcastStats) {
	if tape == nil {
		panic("manet: InstantiateReplay needs a tape")
	}
	return s.instantiate(makeProto, source, startAt, tape, nil)
}

// InstantiateReplayInto is InstantiateReplay drawing every instantiation
// buffer from the arena; see Arena for the ownership contract.
func (s *Snapshot) InstantiateReplayInto(a *Arena, makeProto func(*Node) Protocol, source int, startAt float64, tape *BeaconTape) (*Network, *BroadcastStats) {
	if tape == nil {
		panic("manet: InstantiateReplay needs a tape")
	}
	return s.instantiate(makeProto, source, startAt, tape, a)
}

// syncTape applies every tape upsert for node n that is due at the
// current instant, bringing the table to exactly the state the eager
// beacon path would have produced before this read.
func (net *Network) syncTape(n *Node) {
	entries := net.tape.perNode[n.ID]
	cur := net.tapeCur[n.ID]
	now := net.Sim.Now()
	for int(cur) < len(entries) && entries[cur].lastHeard <= now {
		n.upsertNeighbor(entries[cur])
		n.RxFrames++
		cur++
	}
	net.tapeCur[n.ID] = cur
}
