// Warm-start scenario snapshots.
//
// The warm-up phase of a scenario — mobility walks plus hello beaconing
// from t=0 until the broadcast starts — depends only on the frozen
// scenario seed, never on the protocol parameters being evaluated. A
// Snapshot captures the complete simulation state at the warm-up cut
// (node positions via cloned mobility models, RNG streams, neighbor
// tables, in-flight beacon receptions and the pending beacon/mobility
// event schedule) so that each evaluation clones the warmed state and
// simulates only the broadcast phase.
//
// Determinism contract: a network instantiated from a snapshot produces
// BIT-IDENTICAL results — every metric, every event, every RNG draw — to
// a from-scratch simulation of the same (config, seed, protocol, source),
// provided the protocol's constructor and Init neither schedule events
// nor draw randomness (see Protocol). This holds because:
//
//   - the warm-up is protocol-independent: no protocol callback runs
//     before the origination event, and beacons never touch protocols;
//   - every stochastic stream (per-node RNG, per-mobility-model RNG, the
//     network RNG) is captured exactly and cloned per instantiation;
//   - the pending event schedule is tagged data, restored in firing
//     order, and the origination event is inserted AHEAD of same-time
//     pending events — exactly where a from-scratch run puts it, since
//     there it is scheduled before the simulation loop starts.
package manet

import (
	"fmt"
	"math"

	"aedbmls/internal/mobility"
	"aedbmls/internal/rng"
	"aedbmls/internal/sim"
)

// nodeState is the frozen per-node slice of a Snapshot.
type nodeState struct {
	mob        mobility.Model
	rng        *rng.Rand
	neighbors  []nbrRec
	active     []int32
	txUntil    float64
	txEnergyMJ float64
	txFrames   int
	rxFrames   int
	lostFrames int
}

// Snapshot is an immutable capture of a warmed-up Network. It is safe for
// concurrent Instantiate calls: instantiation only reads the snapshot.
type Snapshot struct {
	cfg       Config
	now       float64
	nextMsgID int
	collision int
	netRng    *rng.Rand
	events    []sim.TaggedEvent
	nodes     []nodeState
	recs      []reception
	freeRecs  []int32
}

// BuildSnapshot simulates cfg from t=0 under the given seed with no
// protocols attached, up to (but excluding) every event at or after
// cutTime, and captures the resulting state. cutTime is normally
// cfg.WarmupTime: the returned snapshot then stands exactly where a
// from-scratch run stands when its broadcast origination fires.
func BuildSnapshot(cfg Config, seed uint64, cutTime float64) (*Snapshot, error) {
	net, err := New(cfg, seed, nil)
	if err != nil {
		return nil, err
	}
	net.Sim.RunBefore(cutTime)
	return net.Snapshot()
}

// Snapshot captures the network's current state. It fails if the state is
// not serialisable: a pending closure event (protocol timer) or an
// in-flight data frame cannot be captured, only the protocol-independent
// warm-up machinery (beacons, mobility, beacon receptions) can.
func (net *Network) Snapshot() (*Snapshot, error) {
	events, ok := net.Sim.SnapshotEvents()
	if !ok {
		return nil, fmt.Errorf("manet: cannot snapshot with pending closure events")
	}
	free := make(map[int32]bool, len(net.freeRecs))
	for _, i := range net.freeRecs {
		free[i] = true
	}
	for i := range net.recs {
		if !free[int32(i)] && net.recs[i].msg != nil {
			return nil, fmt.Errorf("manet: cannot snapshot with data frames in flight")
		}
	}
	s := &Snapshot{
		cfg:       net.Cfg,
		now:       net.Sim.Now(),
		nextMsgID: net.nextMsgID,
		collision: net.Collisions,
		netRng:    net.Rng.Clone(),
		events:    events,
		nodes:     make([]nodeState, len(net.Nodes)),
		recs:      append([]reception(nil), net.recs...),
		freeRecs:  append([]int32(nil), net.freeRecs...),
	}
	for i, n := range net.Nodes {
		s.nodes[i] = nodeState{
			mob:        n.mob.Clone(),
			rng:        n.Rng.Clone(),
			neighbors:  append([]nbrRec(nil), n.neighbors...),
			active:     append([]int32(nil), n.active...),
			txUntil:    n.txUntil,
			txEnergyMJ: n.TxEnergyMJ,
			txFrames:   n.TxFrames,
			rxFrames:   n.RxFrames,
			lostFrames: n.LostFrames,
		}
	}
	return s, nil
}

// Now returns the simulation time at which the snapshot was taken.
func (s *Snapshot) Now() float64 { return s.now }

// NumNodes returns the network size of the snapshot.
func (s *Snapshot) NumNodes() int { return len(s.nodes) }

// PendingEvents returns the number of captured future events.
func (s *Snapshot) PendingEvents() int { return len(s.events) }

// Instantiate builds a fresh Network from the snapshot, attaches protocol
// instances, and schedules the dissemination of a new message from the
// source node at absolute time startAt (ordered before any captured event
// at the same instant, matching the from-scratch event order). The caller
// runs the returned network (net.Run()) and reads the stats collector.
//
// Each call yields an independent simulation; concurrent calls on one
// snapshot are safe.
func (s *Snapshot) Instantiate(makeProto func(*Node) Protocol, source int, startAt float64) (*Network, *BroadcastStats) {
	return s.instantiate(makeProto, source, startAt, nil)
}

// instantiate is the shared body of Instantiate and InstantiateReplay:
// with a tape, the restored schedule is the tape's beacon-stripped one
// and neighbor tables are served lazily from the tape (see tape.go).
func (s *Snapshot) instantiate(makeProto func(*Node) Protocol, source int, startAt float64, tape *BeaconTape) (*Network, *BroadcastStats) {
	events := s.events
	if tape != nil {
		events = tape.events
	}
	net := &Network{
		Sim:        sim.Restore(s.now, events),
		Cfg:        s.cfg,
		Rng:        s.netRng.Clone(),
		stats:      make(map[int]*BroadcastStats),
		nextMsgID:  s.nextMsgID,
		Collisions: s.collision,
		recs:       append([]reception(nil), s.recs...),
		freeRecs:   append([]int32(nil), s.freeRecs...),
	}
	net.Sim.SetHandler(net.dispatch)
	net.maxRange = s.cfg.PathLoss.RangeFor(s.cfg.DefaultTxPowerDBm, s.cfg.SensitivityDBm)
	net.initGrid()
	if tape != nil {
		net.tape = tape
		net.tapeCur = make([]int32, len(s.nodes))
	}
	// Nodes, their RNG states and (when the network is small enough to
	// afford them, see nbrIndexMaxNodes) ID-index tables come from block
	// allocations instead of 3N small ones; only mobility clones and
	// neighbor tables (which grow independently) stay per-node.
	nn := len(s.nodes)
	net.Nodes = make([]*Node, nn)
	nodeBlock := make([]Node, nn)
	rngBlock := make([]rng.Rand, nn)
	var posBlock []int32
	if nn <= nbrIndexMaxNodes {
		posBlock = make([]int32, nn*nn)
	}
	for i := range s.nodes {
		ns := &s.nodes[i]
		rngBlock[i] = *ns.rng
		n := &nodeBlock[i]
		*n = Node{
			ID:         i,
			net:        net,
			mob:        ns.mob.Clone(),
			Rng:        &rngBlock[i],
			neighbors:  append(make([]nbrRec, 0, len(ns.neighbors)+8), ns.neighbors...),
			active:     append([]int32(nil), ns.active...),
			txUntil:    ns.txUntil,
			cachedAt:   math.NaN(),
			TxEnergyMJ: ns.txEnergyMJ,
			TxFrames:   ns.txFrames,
			RxFrames:   ns.rxFrames,
			LostFrames: ns.lostFrames,
		}
		if posBlock != nil {
			n.nbrPos = posBlock[i*nn : (i+1)*nn : (i+1)*nn]
			for j, e := range n.neighbors {
				n.nbrPos[e.id] = int32(j + 1)
			}
		}
		net.Nodes[i] = n
	}
	net.computeMaxSpeed()
	if makeProto != nil {
		for _, n := range net.Nodes {
			n.proto = makeProto(n)
			n.proto.Init(n)
		}
	}
	st := net.startBroadcast(source, startAt, true)
	return net, st
}
