// Warm-start scenario snapshots.
//
// The warm-up phase of a scenario — mobility walks plus hello beaconing
// from t=0 until the broadcast starts — depends only on the frozen
// scenario seed, never on the protocol parameters being evaluated. A
// Snapshot captures the complete simulation state at the warm-up cut
// (node positions via cloned mobility models, RNG streams, neighbor
// tables, in-flight beacon receptions and the pending beacon/mobility
// event schedule) so that each evaluation clones the warmed state and
// simulates only the broadcast phase.
//
// Determinism contract: a network instantiated from a snapshot produces
// BIT-IDENTICAL results — every metric, every event, every RNG draw — to
// a from-scratch simulation of the same (config, seed, protocol, source),
// provided the protocol's constructor and Init neither schedule events
// nor draw randomness (see Protocol). This holds because:
//
//   - the warm-up is protocol-independent: no protocol callback runs
//     before the origination event, and beacons never touch protocols;
//   - every stochastic stream (per-node RNG, per-mobility-model RNG, the
//     network RNG) is captured exactly and cloned per instantiation;
//   - the pending event schedule is tagged data, restored in firing
//     order, and the origination event is inserted AHEAD of same-time
//     pending events — exactly where a from-scratch run puts it, since
//     there it is scheduled before the simulation loop starts.
package manet

import (
	"fmt"

	"aedbmls/internal/mobility"
	"aedbmls/internal/rng"
	"aedbmls/internal/sim"
)

// nodeState is the frozen per-node slice of a Snapshot.
type nodeState struct {
	mob        mobility.Model
	rng        *rng.Rand
	neighbors  []nbrRec
	active     []int32
	txUntil    float64
	txEnergyMJ float64
	txFrames   int
	rxFrames   int
	lostFrames int
}

// Snapshot is an immutable capture of a warmed-up Network. It is safe for
// concurrent Instantiate calls: instantiation only reads the snapshot.
type Snapshot struct {
	cfg       Config
	now       float64
	nextMsgID int
	collision int
	netRng    *rng.Rand
	events    []sim.TaggedEvent
	nodes     []nodeState
	recs      []reception
	freeRecs  []int32
}

// BuildSnapshot simulates cfg from t=0 under the given seed with no
// protocols attached, up to (but excluding) every event at or after
// cutTime, and captures the resulting state. cutTime is normally
// cfg.WarmupTime: the returned snapshot then stands exactly where a
// from-scratch run stands when its broadcast origination fires.
func BuildSnapshot(cfg Config, seed uint64, cutTime float64) (*Snapshot, error) {
	net, err := New(cfg, seed, nil)
	if err != nil {
		return nil, err
	}
	net.Sim.RunBefore(cutTime)
	return net.Snapshot()
}

// Snapshot captures the network's current state. It fails if the state is
// not serialisable: a pending closure event (broadcast origination), an
// armed protocol timer or an in-flight data frame cannot be captured,
// only the protocol-independent warm-up machinery (beacons, mobility,
// beacon receptions) can.
func (net *Network) Snapshot() (*Snapshot, error) {
	events, ok := net.Sim.SnapshotEvents()
	if !ok {
		return nil, fmt.Errorf("manet: cannot snapshot with pending closure events")
	}
	if net.liveTimers > 0 {
		return nil, fmt.Errorf("manet: cannot snapshot with armed protocol timers")
	}
	// Any timer events still in the schedule are stale (cancelled or
	// fired slots); they carry no state worth replaying, so drop them
	// rather than capturing references into a timer table that will not
	// exist on the other side.
	w := 0
	for _, ev := range events {
		if ev.Kind == evProtoTimer {
			continue
		}
		events[w] = ev
		w++
	}
	events = events[:w]
	free := make(map[int32]bool, len(net.freeRecs))
	for _, i := range net.freeRecs {
		free[i] = true
	}
	for i := range net.recs {
		if !free[int32(i)] && net.recs[i].msg != nil {
			return nil, fmt.Errorf("manet: cannot snapshot with data frames in flight")
		}
	}
	s := &Snapshot{
		cfg:       net.Cfg,
		now:       net.Sim.Now(),
		nextMsgID: net.nextMsgID,
		collision: net.Collisions,
		netRng:    net.Rng.Clone(),
		events:    events,
		nodes:     make([]nodeState, len(net.Nodes)),
		recs:      append([]reception(nil), net.recs...),
		freeRecs:  append([]int32(nil), net.freeRecs...),
	}
	for i, n := range net.Nodes {
		s.nodes[i] = nodeState{
			mob:        n.mob.Clone(),
			rng:        n.Rng.Clone(),
			neighbors:  append([]nbrRec(nil), n.neighbors...),
			active:     append([]int32(nil), n.active...),
			txUntil:    net.txUntil[i],
			txEnergyMJ: n.TxEnergyMJ,
			txFrames:   n.TxFrames,
			rxFrames:   n.RxFrames,
			lostFrames: n.LostFrames,
		}
	}
	return s, nil
}

// Now returns the simulation time at which the snapshot was taken.
func (s *Snapshot) Now() float64 { return s.now }

// NumNodes returns the network size of the snapshot.
func (s *Snapshot) NumNodes() int { return len(s.nodes) }

// PendingEvents returns the number of captured future events.
func (s *Snapshot) PendingEvents() int { return len(s.events) }

// Instantiate builds a fresh Network from the snapshot, attaches protocol
// instances, and schedules the dissemination of a new message from the
// source node at absolute time startAt (ordered before any captured event
// at the same instant, matching the from-scratch event order). The caller
// runs the returned network (net.Run()) and reads the stats collector.
//
// Each call yields an independent simulation; concurrent calls on one
// snapshot are safe.
func (s *Snapshot) Instantiate(makeProto func(*Node) Protocol, source int, startAt float64) (*Network, *BroadcastStats) {
	return s.instantiate(makeProto, source, startAt, nil, nil)
}

// InstantiateInto is Instantiate drawing every instantiation buffer (the
// node and RNG blocks, the O(N^2) neighbor index, the event heap, the
// spatial grid, neighbor tables, the reception pool) from the arena
// instead of the heap. The previously returned Network and stats of the
// same arena are invalidated; see Arena for the ownership contract.
func (s *Snapshot) InstantiateInto(a *Arena, makeProto func(*Node) Protocol, source int, startAt float64) (*Network, *BroadcastStats) {
	return s.instantiate(makeProto, source, startAt, nil, a)
}

// Arena is a reusable set of instantiation buffers for the evaluation hot
// path: one warmed scenario streaming many candidate simulations
// re-instantiates the same network shape over and over, and without reuse
// the node/RNG blocks, the O(N^2) per-node neighbor index, the restored
// event heap, the spatial grid and every neighbor table are reallocated
// per candidate.
//
// Ownership contract: an Arena belongs to exactly one goroutine at a
// time, and each InstantiateInto/InstantiateReplayInto call on it
// invalidates the Network and BroadcastStats returned by the previous
// call — extract whatever outlives the simulation (the metrics) before
// reusing the arena. Buffers grow to the largest network instantiated
// through them and are re-sized automatically when the snapshot shape
// changes, so one arena may serve snapshots of different node counts,
// just not concurrently. Results are bit-identical to the allocating
// Instantiate paths: every buffer is fully overwritten or cleared before
// use.
type Arena struct {
	net       *Network
	nodes     []*Node
	nodeBlock []Node
	rngBlock  []rng.Rand
	mobBlock  []mobility.Model
	posBlock  []int32
	netRng    rng.Rand
}

// NewArena returns an empty arena; buffers are allocated lazily at first
// use and reused afterwards.
func NewArena() *Arena { return &Arena{} }

// instantiate is the shared body of the Instantiate variants: with a
// tape, the restored schedule is the tape's beacon-stripped one and
// neighbor tables are served lazily from the tape (see tape.go); with an
// arena, all buffers come from (and return to) it. A nil arena acts as a
// fresh one-shot arena, which is exactly the allocating path.
func (s *Snapshot) instantiate(makeProto func(*Node) Protocol, source int, startAt float64, tape *BeaconTape, a *Arena) (*Network, *BroadcastStats) {
	if a == nil {
		a = &Arena{} // one-shot: freshly allocated buffers, owned by the returned network
	}
	events := s.events
	if tape != nil {
		if len(tape.perNode) != len(s.nodes) {
			panic(fmt.Sprintf("manet: tape recorded at %d nodes cannot replay into a %d-node snapshot (mask the tape to the snapshot size)",
				len(tape.perNode), len(s.nodes)))
		}
		events = tape.events
	}
	nn := len(s.nodes)
	net := a.net
	if net == nil {
		net = &Network{Sim: sim.New(), stats: make(map[int]*BroadcastStats, 1)}
		a.net = net
	}
	net.Sim.Reset(s.now, events)
	net.Sim.SetHandler(net.dispatch)
	net.Cfg = s.cfg
	a.netRng = *s.netRng
	net.Rng = &a.netRng
	net.recycleStats()
	clear(net.stats)
	net.nextMsgID = s.nextMsgID
	net.Collisions = s.collision
	net.recs = append(net.recs[:0], s.recs...)
	net.freeRecs = append(net.freeRecs[:0], s.freeRecs...)
	net.dataInFlight = 0
	net.tapeRec = nil
	net.maxRange = s.cfg.PathLoss.RangeFor(s.cfg.DefaultTxPowerDBm, s.cfg.SensitivityDBm)
	net.initKernel()
	net.initGrid()
	// Re-sizes the position/deadline columns, invalidates every memoised
	// position (the arena recycles this Network object, and sim.Reset has
	// just rewound the clock to the same warm-up cut every scenario uses)
	// and clears the timer table.
	net.initHotState()
	if tape != nil {
		net.tape = tape
		if cap(net.tapeCur) < nn {
			net.tapeCur = make([]int32, nn)
		} else {
			net.tapeCur = net.tapeCur[:nn]
			clear(net.tapeCur)
		}
	} else {
		net.tape = nil
		net.tapeCur = nil
	}
	// Nodes, their RNG states and (when the network is small enough to
	// afford them, see nbrIndexMaxNodes) ID-index tables come from block
	// allocations instead of 3N small ones; mobility models and neighbor
	// tables (which grow independently) stay per-node, but the arena
	// recycles even those across instantiations (CloneInto and the
	// harvested buffers below).
	if len(a.nodeBlock) != nn {
		a.nodes = make([]*Node, nn)
		a.nodeBlock = make([]Node, nn)
		a.rngBlock = make([]rng.Rand, nn)
		a.mobBlock = make([]mobility.Model, nn)
		a.posBlock = nil
		if nn <= nbrIndexMaxNodes {
			a.posBlock = make([]int32, nn*nn)
		}
	} else if a.posBlock != nil {
		// The index block carries entries from the previous instantiation;
		// a single memclr beats per-row unindexing.
		clear(a.posBlock)
	}
	net.Nodes = a.nodes
	for i := range s.nodes {
		ns := &s.nodes[i]
		a.rngBlock[i] = *ns.rng
		n := &a.nodeBlock[i]
		// Harvest the buffers the previous simulation grew before the
		// struct is overwritten, and release its protocol instance for
		// reuse — this is the instant the arena contract invalidates the
		// previous network, so the instance is guaranteed idle.
		if r, ok := n.proto.(ProtoRecycler); ok {
			r.Recycle()
		}
		nbrBuf := n.neighbors[:0]
		if cap(nbrBuf) < len(ns.neighbors) {
			nbrBuf = make([]nbrRec, 0, len(ns.neighbors)+8)
		}
		outBuf := n.nbrOut[:0]
		activeBuf := n.active[:0]
		// Mobility state is copied into the arena's recycled model (a
		// fresh clone on the first instantiation, or on a model-type
		// change) instead of allocating a clone per candidate.
		mob := ns.mob.CloneInto(a.mobBlock[i])
		a.mobBlock[i] = mob
		*n = Node{
			ID:         i,
			net:        net,
			mob:        mob,
			Rng:        &a.rngBlock[i],
			neighbors:  append(nbrBuf, ns.neighbors...),
			nbrOut:     outBuf,
			active:     append(activeBuf, ns.active...),
			TxEnergyMJ: ns.txEnergyMJ,
			TxFrames:   ns.txFrames,
			RxFrames:   ns.rxFrames,
			LostFrames: ns.lostFrames,
		}
		net.txUntil[i] = ns.txUntil
		if a.posBlock != nil {
			n.nbrPos = a.posBlock[i*nn : (i+1)*nn : (i+1)*nn]
			for j, e := range n.neighbors {
				n.nbrPos[e.id] = int32(j + 1)
			}
		}
		net.Nodes[i] = n
	}
	net.computeMaxSpeed()
	if makeProto != nil {
		for _, n := range net.Nodes {
			n.proto = makeProto(n)
			n.proto.Init(n)
		}
	}
	st := net.startBroadcast(source, startAt, true)
	return net, st
}

// Mask derives the snapshot of the k-node sub-network consisting of nodes
// [0, k) — the cross-density warm-up sharing primitive. Because node
// construction draws every stream from the master RNG in index order,
// nodes [0, k) of a larger network are EXACTLY the nodes of the k-node
// network built from the same scenario seed; and because fast beacons
// neither contend with anything nor touch protocol state, dropping the
// masked senders' beacon rows from the neighbor tables (and their pending
// events from the schedule) leaves precisely the warm-up state the k-node
// network reaches on its own. A masked snapshot is therefore bit-identical
// to BuildSnapshot of the k-node scenario on every broadcast metric, every
// RNG stream and every event; the one thing it inherits from the parent is
// per-node receive accounting of the warm-up beacons (RxFrames), which no
// metric reads.
//
// Mask requires the fast-beacon medium: frame-level beacons contend on the
// shared medium, so a masked node's transmissions would have influenced
// the survivors' tables and collision counters. k must be in [1, NumNodes];
// masking to the full size returns the snapshot itself.
func (s *Snapshot) Mask(k int) (*Snapshot, error) {
	if k < 1 || k > len(s.nodes) {
		return nil, fmt.Errorf("manet: mask size %d outside [1, %d]", k, len(s.nodes))
	}
	if k == len(s.nodes) {
		return s, nil
	}
	if !s.cfg.FastBeacons {
		return nil, fmt.Errorf("manet: masking requires the fast-beacon medium")
	}
	if len(s.recs) != 0 {
		return nil, fmt.Errorf("manet: cannot mask with receptions in flight")
	}
	cfg := s.cfg
	cfg.NumNodes = k
	m := &Snapshot{
		cfg:       cfg,
		now:       s.now,
		nextMsgID: s.nextMsgID,
		collision: s.collision,
		netRng:    s.netRng.Clone(),
		nodes:     make([]nodeState, k),
	}
	for _, ev := range s.events {
		switch ev.Kind {
		case evBeacon, evMobility:
			if int(ev.A) < k {
				m.events = append(m.events, ev)
			}
		default:
			return nil, fmt.Errorf("manet: cannot mask pending event kind %d", ev.Kind)
		}
	}
	for i := 0; i < k; i++ {
		ns := &s.nodes[i]
		nbrs := make([]nbrRec, 0, len(ns.neighbors))
		for _, e := range ns.neighbors {
			if int(e.id) < k {
				nbrs = append(nbrs, e)
			}
		}
		m.nodes[i] = nodeState{
			mob:        ns.mob.Clone(),
			rng:        ns.rng.Clone(),
			neighbors:  nbrs,
			active:     append([]int32(nil), ns.active...),
			txUntil:    ns.txUntil,
			txEnergyMJ: ns.txEnergyMJ,
			txFrames:   ns.txFrames,
			rxFrames:   ns.rxFrames,
			lostFrames: ns.lostFrames,
		}
	}
	return m, nil
}
