package manet

import "testing"

// FuzzTapeMask pins the cross-density tape-sharing contract: over random
// (density, seed, cut-time, parent-surplus) inputs, the tape derived from
// a strictly larger parent recording by BeaconTape.Mask must be
// EVENT-FOR-EVENT identical — same stripped schedule, same per-receiver
// upsert sequences with the same timestamps and pre-converted powers — to
// a tape recorded from scratch at the masked size, and replaying the
// masked tape must reproduce the from-scratch simulation bit-identically
// on every broadcast metric. It also exercises the refusal preconditions:
// mask sizes outside [1, NumNodes] are rejected, and replaying a tape into
// a snapshot of a different node count (a config mismatch: the tape
// records a different scenario) must refuse.
func FuzzTapeMask(f *testing.F) {
	f.Add(uint8(8), uint64(1), uint8(10), uint8(4))
	f.Add(uint8(20), uint64(42), uint8(30), uint8(1))
	f.Add(uint8(3), uint64(7), uint8(5), uint8(11))
	f.Add(uint8(14), uint64(99), uint8(59), uint8(7))
	f.Add(uint8(23), uint64(20130520), uint8(33), uint8(2))
	f.Fuzz(func(t *testing.T, nodesRaw uint8, seed uint64, cutRaw, extraRaw uint8) {
		nodes := 2 + int(nodesRaw%24)      // 2..25 nodes
		extra := 1 + int(extraRaw%12)      // parent strictly larger by 1..12
		cut := 0.5 + float64(cutRaw%60)/10 // 0.5..6.4 s warm-up
		cfg := DefaultScenario(nodes)
		cfg.WarmupTime = cut
		cfg.EndTime = cut + 4
		source := int(seed % uint64(nodes))

		pcfg := cfg
		pcfg.NumNodes = nodes + extra
		parent, err := BuildSnapshot(pcfg, seed, cut)
		if err != nil {
			t.Fatalf("BuildSnapshot(parent): %v", err)
		}
		parentTape, err := parent.RecordBeaconTape(cfg.EndTime)
		if err != nil {
			t.Fatalf("RecordBeaconTape(parent): %v", err)
		}
		masked, err := parentTape.Mask(nodes)
		if err != nil {
			t.Fatalf("Mask(%d of %d): %v", nodes, parentTape.NumNodes(), err)
		}

		child, err := BuildSnapshot(cfg, seed, cut)
		if err != nil {
			t.Fatalf("BuildSnapshot(child): %v", err)
		}
		direct, err := child.RecordBeaconTape(cfg.EndTime)
		if err != nil {
			t.Fatalf("RecordBeaconTape(child): %v", err)
		}

		// Event-for-event identity of the derived and the from-scratch
		// tape: the recorded interval, the beacon-stripped schedule, and
		// every receiver's upsert sequence.
		if masked.until != direct.until {
			t.Fatalf("until %v != %v", masked.until, direct.until)
		}
		if masked.NumNodes() != direct.NumNodes() {
			t.Fatalf("node count %d != %d", masked.NumNodes(), direct.NumNodes())
		}
		if len(masked.events) != len(direct.events) {
			t.Fatalf("schedule length %d != %d", len(masked.events), len(direct.events))
		}
		for i := range masked.events {
			if masked.events[i] != direct.events[i] {
				t.Fatalf("schedule event %d: %+v != %+v", i, masked.events[i], direct.events[i])
			}
		}
		for id := range masked.perNode {
			m, d := masked.perNode[id], direct.perNode[id]
			if len(m) != len(d) {
				t.Fatalf("node %d: %d upserts != %d", id, len(m), len(d))
			}
			for j := range m {
				if m[j] != d[j] {
					t.Fatalf("node %d upsert %d: %+v != %+v", id, j, m[j], d[j])
				}
			}
		}

		// Replay equivalence: the masked tape driving the full default
		// engine (replay + quiescence) against a from-scratch full run.
		wantSt, wantNet := runScratch(t, cfg, seed, source)
		rNet, rSt := child.InstantiateReplay(newForwardOnce, source, cut, masked)
		rNet.RunToQuiescence()
		assertSameBroadcast(t, "masked-replay", wantSt, wantNet, rSt, rNet)

		// Masking to the full recorded size is the identity.
		if same, err := parentTape.Mask(parentTape.NumNodes()); err != nil || same != parentTape {
			t.Fatalf("full-size mask: tape %p err %v, want identity", same, err)
		}
		// Refusal: mask sizes outside [1, NumNodes].
		if _, err := parentTape.Mask(0); err == nil {
			t.Fatal("Mask(0) succeeded")
		}
		if _, err := parentTape.Mask(parentTape.NumNodes() + 1); err == nil {
			t.Fatal("oversized mask succeeded")
		}
		// Refusal: a tape of the wrong node count records a different
		// scenario, so replaying it into this snapshot must refuse.
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("replaying a %d-node tape into a %d-node snapshot did not refuse",
						parentTape.NumNodes(), nodes)
				}
			}()
			child.InstantiateReplay(newForwardOnce, source, cut, parentTape)
		}()
	})
}
