package manet

import (
	"math"
	"testing"

	"aedbmls/internal/geom"
	"aedbmls/internal/mobility"
	"aedbmls/internal/radio"
	"aedbmls/internal/rng"
)

// forwardOnce is a minimal protocol: every node re-broadcasts the first
// copy it receives at a power derived from its neighbor table, after a
// node-RNG delay armed through the protocol timer table. It exercises
// every state a snapshot must reproduce: neighbor tables, node RNG
// streams, and event ordering.
type forwardOnce struct {
	node    *Node
	seen    map[int]bool
	pending map[int]pendingForward
}

type pendingForward struct {
	msg   *Message
	power float64
}

func (f *forwardOnce) Init(n *Node) { f.node = n }
func (f *forwardOnce) Originate(msg *Message) {
	f.seen[msg.ID] = true
	f.node.Network().TransmitData(f.node, msg, f.node.Network().Cfg.DefaultTxPowerDBm)
}
func (f *forwardOnce) OnData(msg *Message, _ int, _ float64) {
	if f.seen[msg.ID] {
		return
	}
	f.seen[msg.ID] = true
	power := f.node.Network().Cfg.DefaultTxPowerDBm
	// Consume the neighbor table so lazily-converted powers are observed.
	for _, e := range f.node.Neighbors() {
		if e.RxPowerDBm < power {
			power = e.RxPowerDBm + 60
		}
	}
	delay := f.node.Rng.Range(0, 0.2)
	f.pending[msg.ID] = pendingForward{msg: msg, power: power}
	f.node.ScheduleTimer(delay, int32(msg.ID))
}
func (f *forwardOnce) OnTimer(tag int32) {
	p := f.pending[int(tag)]
	f.node.Network().TransmitData(f.node, p.msg, p.power)
}

func newForwardOnce(*Node) Protocol {
	return &forwardOnce{seen: make(map[int]bool), pending: make(map[int]pendingForward)}
}

// runScratch simulates cfg from scratch and returns the stats plus the
// network (for Collisions).
func runScratch(t *testing.T, cfg Config, seed uint64, source int) (*BroadcastStats, *Network) {
	t.Helper()
	net, err := New(cfg, seed, newForwardOnce)
	if err != nil {
		t.Fatal(err)
	}
	st := net.StartBroadcast(source, cfg.WarmupTime)
	net.Run()
	return st, net
}

// runWarm simulates the same scenario through the snapshot path.
func runWarm(t *testing.T, cfg Config, seed uint64, source int) (*BroadcastStats, *Network) {
	t.Helper()
	snap, err := BuildSnapshot(cfg, seed, cfg.WarmupTime)
	if err != nil {
		t.Fatal(err)
	}
	net, st := snap.Instantiate(newForwardOnce, source, cfg.WarmupTime)
	net.Run()
	return st, net
}

// assertStatsIdentical requires bit-for-bit equality of every broadcast
// statistic, including the per-node first-reception map.
func assertStatsIdentical(t *testing.T, name string, a, b *BroadcastStats, an, bn *Network) {
	t.Helper()
	if a.Coverage() != b.Coverage() {
		t.Errorf("%s: coverage %d vs %d", name, a.Coverage(), b.Coverage())
	}
	if a.Forwards != b.Forwards || a.SourceSends != b.SourceSends {
		t.Errorf("%s: forwards %d/%d vs %d/%d", name, a.Forwards, a.SourceSends, b.Forwards, b.SourceSends)
	}
	if a.TxPowerSumDBm != b.TxPowerSumDBm {
		t.Errorf("%s: energy %v vs %v", name, a.TxPowerSumDBm, b.TxPowerSumDBm)
	}
	if a.TxEnergyMJ != b.TxEnergyMJ {
		t.Errorf("%s: energyMJ %v vs %v", name, a.TxEnergyMJ, b.TxEnergyMJ)
	}
	if a.BroadcastTime() != b.BroadcastTime() {
		t.Errorf("%s: bt %v vs %v", name, a.BroadcastTime(), b.BroadcastTime())
	}
	if a.Coverage() != b.Coverage() {
		t.Errorf("%s: FirstRx sizes %d vs %d", name, a.Coverage(), b.Coverage())
	}
	a.EachFirstRx(func(id int, ta float64) {
		if tb, ok := b.FirstRxAt(id); !ok || ta != tb {
			t.Errorf("%s: FirstRx[%d] %v vs %v (ok=%v)", name, id, ta, tb, ok)
		}
	})
	if an.Collisions != bn.Collisions {
		t.Errorf("%s: collisions %d vs %d", name, an.Collisions, bn.Collisions)
	}
}

func TestSnapshotBitIdenticalToScratch(t *testing.T) {
	for _, nodes := range []int{25, 50, 75} {
		for seed := uint64(1); seed <= 3; seed++ {
			cfg := DefaultScenario(nodes)
			source := int(seed) % nodes
			sa, na := runScratch(t, cfg, seed, source)
			sb, nb := runWarm(t, cfg, seed, source)
			assertStatsIdentical(t, "fast-beacons", sa, sb, na, nb)
		}
	}
}

func TestSnapshotBitIdenticalFrameLevelBeacons(t *testing.T) {
	// Frame-level beacons keep receptions in flight across the warm-up
	// cut; the snapshot must capture and replay them.
	cfg := DefaultScenario(25)
	cfg.FastBeacons = false
	cfg.EndTime = 35 // keep the slow path fast
	for seed := uint64(1); seed <= 2; seed++ {
		sa, na := runScratch(t, cfg, seed, 0)
		sb, nb := runWarm(t, cfg, seed, 0)
		assertStatsIdentical(t, "frame-beacons", sa, sb, na, nb)
	}
}

func TestSnapshotZeroWarmup(t *testing.T) {
	// With no warm-up the snapshot only caches network construction; the
	// pending initial events (beacon phases, mobility changes) must
	// replay exactly.
	cfg := DefaultScenario(25)
	cfg.WarmupTime = 0
	cfg.EndTime = 10
	sa, na := runScratch(t, cfg, 7, 3)
	sb, nb := runWarm(t, cfg, 7, 3)
	assertStatsIdentical(t, "zero-warmup", sa, sb, na, nb)
}

func TestSnapshotReusableAcrossInstantiations(t *testing.T) {
	cfg := DefaultScenario(25)
	snap, err := BuildSnapshot(cfg, 11, cfg.WarmupTime)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *BroadcastStats {
		net, st := snap.Instantiate(newForwardOnce, 5, cfg.WarmupTime)
		net.Run()
		return st
	}
	a, b := run(), run()
	if a.TxPowerSumDBm != b.TxPowerSumDBm || a.Coverage() != b.Coverage() || a.BroadcastTime() != b.BroadcastTime() {
		t.Fatalf("repeated instantiations diverged: %+v vs %+v", a, b)
	}
}

func TestSnapshotRejectsClosureEvents(t *testing.T) {
	cfg := DefaultScenario(5)
	net, err := New(cfg, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	net.Sim.Schedule(5, func() {})
	if _, err := net.Snapshot(); err == nil {
		t.Fatal("snapshot accepted a pending closure event")
	}
}

func TestSnapshotRejectsDataFramesInFlight(t *testing.T) {
	positions := []geom.Vec2{{X: 0, Y: 0}, {X: 50, Y: 0}}
	cfg := DefaultScenario(2)
	cfg.WarmupTime = 0
	cfg.EndTime = 10
	cfg.MakeMobility = func(id int, _ *rng.Rand) mobility.Model {
		return &mobility.Static{P: positions[id]}
	}
	net, err := New(cfg, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := net.NewMessage(0)
	net.Sim.At(1, func() { net.transmitFrame(net.Nodes[0], msg, cfg.DefaultTxPowerDBm, cfg.DataBytes) })
	// Stop mid-frame: the data frame's start has fired, its end has not.
	duration := float64(cfg.DataBytes*8) / cfg.BitRateBps
	net.Sim.RunBefore(1 + duration/2)
	if _, err := net.Snapshot(); err == nil {
		t.Fatal("snapshot accepted an in-flight data frame")
	}
}

// TestLargeScaleSpatialIndex drives a 1,000-node scenario in a 1.5 km
// arena through one broadcast and checks that the spatial index genuinely
// prunes: the grid has many cells, and a radio-range query returns a
// small fraction of the population rather than degenerating to an O(N)
// scan.
func TestLargeScaleSpatialIndex(t *testing.T) {
	cfg := DefaultScenario(1000)
	cfg.Area = geom.Square(1500)
	cfg.WarmupTime = 5 // keep runtime modest; warm-up length is irrelevant here
	cfg.EndTime = 10
	net, err := New(cfg, 42, newForwardOnce)
	if err != nil {
		t.Fatal(err)
	}
	st := net.StartBroadcast(0, cfg.WarmupTime)
	net.Run()
	if nx, ny := net.grid.Dims(); nx < 5 || ny < 5 {
		t.Fatalf("grid %dx%d too coarse to prune a 1.5 km arena", nx, ny)
	}
	// A query at the current clock must prune hard: the radio range disc
	// covers ~4%% of the arena, so candidates must be far below N.
	ids := net.candidates(net.positionOf(net.Nodes[0]), net.MaxRange(), 0, true)
	if len(ids) >= cfg.NumNodes/2 {
		t.Fatalf("spatial index degenerated: %d candidates of %d nodes", len(ids), cfg.NumNodes)
	}
	if st.Coverage() == 0 {
		t.Fatal("broadcast reached nobody in a dense 1,000-node network")
	}
}

// TestCandidatesMatchLinearScan cross-checks the grid path against a
// brute-force scan at several instants, including between grid rebuilds
// (stale positions + drift slop).
func TestCandidatesMatchLinearScan(t *testing.T) {
	cfg := DefaultScenario(60)
	net, err := New(cfg, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, until := range []float64{0.5, 3.7, 11.2, 29.9} {
		net.Sim.RunBefore(until)
		now := net.Sim.Now()
		for _, tx := range []int{0, 17, 59} {
			center := net.positionOf(net.Nodes[tx])
			got := append([]int32(nil), net.candidates(center, net.MaxRange(), tx, true)...)
			inRange := func(id int32) bool {
				d2 := center.Dist2(net.Nodes[id].mob.Position(now))
				return d2 <= net.MaxRange()*net.MaxRange()
			}
			seen := make(map[int32]bool, len(got))
			for _, id := range got {
				seen[id] = true
			}
			for id := 0; id < cfg.NumNodes; id++ {
				if id == tx {
					continue
				}
				if inRange(int32(id)) && !seen[int32(id)] {
					t.Fatalf("t=%v tx=%d: in-range node %d missing from candidates", now, tx, id)
				}
			}
		}
	}
}

func TestNeighborsLazyPowerMatchesLinkBudget(t *testing.T) {
	// The deferred dBm conversion must agree exactly with the eager
	// evaluation of the network's active path-loss kernel (this is the
	// fast-beacon read path): bit-identical to the reference link budget
	// under ExactPhysics, and to the fused kernel — itself within a
	// ULP-scaled bound of the reference — by default.
	for _, exact := range []bool{false, true} {
		positions := []geom.Vec2{{X: 0, Y: 0}, {X: 73, Y: 0}}
		cfg := DefaultScenario(2)
		cfg.WarmupTime = 0
		cfg.EndTime = 10
		cfg.ExactPhysics = exact
		cfg.MakeMobility = func(id int, _ *rng.Rand) mobility.Model {
			return &mobility.Static{P: positions[id]}
		}
		net, err := New(cfg, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		net.Sim.RunUntil(3)
		nbrs := net.Nodes[0].Neighbors()
		if len(nbrs) != 1 {
			t.Fatalf("exact=%v: neighbors = %d, want 1", exact, len(nbrs))
		}
		want := net.kern.RxPower2(cfg.DefaultTxPowerDBm, 73*73)
		if nbrs[0].RxPowerDBm != want {
			t.Fatalf("exact=%v: lazy rx = %v, want exactly %v", exact, nbrs[0].RxPowerDBm, want)
		}
		ref := radio.RxPower(cfg.PathLoss, cfg.DefaultTxPowerDBm, 73)
		if exact {
			if nbrs[0].RxPowerDBm != ref {
				t.Fatalf("exact physics rx = %v, want reference %v", nbrs[0].RxPowerDBm, ref)
			}
		} else if math.Abs(nbrs[0].RxPowerDBm-ref) > 1e-9 {
			t.Fatalf("fused rx = %v drifted from reference %v", nbrs[0].RxPowerDBm, ref)
		}
		if math.IsNaN(nbrs[0].RxPowerDBm) {
			t.Fatal("NaN rx power")
		}
	}
}

// TestNeighborTableWithAndWithoutIndex verifies the two upsert paths
// (O(1) per-ID index vs linear scan above nbrIndexMaxNodes) behave
// identically: refresh-in-place, timeout pruning, insertion order.
func TestNeighborTableWithAndWithoutIndex(t *testing.T) {
	drive := func(n *Node) []NeighborEntry {
		n.upsertNeighbor(nbrRec{id: 4, hasRx: true, rx: -70, lastHeard: 0.5})
		n.upsertNeighbor(nbrRec{id: 2, hasRx: true, rx: -80, lastHeard: 1.0})
		n.upsertNeighbor(nbrRec{id: 4, hasRx: true, rx: -60, lastHeard: 2.0}) // refresh
		n.upsertNeighbor(nbrRec{id: 9, hasRx: true, rx: -75, lastHeard: 2.5})
		return append([]NeighborEntry(nil), n.Neighbors()...)
	}
	cfg := DefaultScenario(16)
	net, err := New(cfg, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	net.Sim.RunUntil(4) // cutoff 1.0: entry 2 (lastHeard 1.0) survives, refreshed 4 survives
	indexed := drive(net.Nodes[0])
	if net.Nodes[0].nbrPos == nil {
		t.Fatal("small network should use the per-ID index")
	}
	net2, err := New(cfg, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	net2.Sim.RunUntil(4)
	n2 := net2.Nodes[0]
	n2.nbrPos = nil // force the linear-scan path
	n2.neighbors = n2.neighbors[:0]
	linear := drive(n2)
	if len(indexed) == 0 {
		t.Fatal("indexed path produced no entries")
	}
	// Compare only the driven entries (the indexed node also holds real
	// beacon-learned neighbors); the driven IDs are 2, 4, 9.
	pick := func(es []NeighborEntry) map[int]NeighborEntry {
		out := map[int]NeighborEntry{}
		for _, e := range es {
			if e.ID == 2 || e.ID == 4 || e.ID == 9 {
				out[e.ID] = e
			}
		}
		return out
	}
	a, b := pick(indexed), pick(linear)
	if len(a) != len(b) {
		t.Fatalf("entry sets differ: %v vs %v", a, b)
	}
	for id, ea := range a {
		if eb, ok := b[id]; !ok || ea != eb {
			t.Fatalf("entry %d differs: %+v vs %+v", id, ea, eb)
		}
	}
	if a[4].RxPowerDBm != -60 {
		t.Fatalf("refresh lost: %+v", a[4])
	}
}
