package manet

import "testing"

// TestRunToQuiescenceMetricsIdentical is the contract behind the batched
// evaluation engine: stopping at broadcast quiescence leaves every
// broadcast statistic (and the collision counter) bit-identical to a full
// run, for both beacon media.
func TestRunToQuiescenceMetricsIdentical(t *testing.T) {
	for _, fast := range []bool{true, false} {
		name := "fast-beacons"
		if !fast {
			name = "frame-beacons"
		}
		t.Run(name, func(t *testing.T) {
			for seed := uint64(1); seed <= 5; seed++ {
				cfg := DefaultScenario(30)
				cfg.FastBeacons = fast
				full, fullNet := runScratch(t, cfg, seed, 0)

				net, err := New(cfg, seed, newForwardOnce)
				if err != nil {
					t.Fatal(err)
				}
				early := net.StartBroadcast(0, cfg.WarmupTime)
				net.RunToQuiescence()
				if !net.Quiescent() && net.Sim.Pending() > 0 {
					t.Fatalf("seed %d: run stopped non-quiescent with events pending", seed)
				}
				assertStatsIdentical(t, name, full, early, fullNet, net)
				if fullNet.Collisions != net.Collisions {
					t.Errorf("seed %d: collisions %d vs %d", seed, fullNet.Collisions, net.Collisions)
				}
				if net.Sim.Fired() >= fullNet.Sim.Fired() {
					t.Errorf("seed %d: quiescent run fired %d events, full run %d — early stop never engaged",
						seed, net.Sim.Fired(), fullNet.Sim.Fired())
				}
			}
		})
	}
}

// TestRunToQuiescenceFromSnapshot covers the path the evaluation engine
// actually takes: instantiate from a warm snapshot, run to quiescence,
// compare against the full from-scratch run.
func TestRunToQuiescenceFromSnapshot(t *testing.T) {
	cfg := DefaultScenario(30)
	for seed := uint64(1); seed <= 3; seed++ {
		full, fullNet := runScratch(t, cfg, seed, 2)
		snap, err := BuildSnapshot(cfg, seed, cfg.WarmupTime)
		if err != nil {
			t.Fatal(err)
		}
		net, st := snap.Instantiate(newForwardOnce, 2, cfg.WarmupTime)
		net.RunToQuiescence()
		assertStatsIdentical(t, "snapshot-quiescent", full, st, fullNet, net)
		if fullNet.Collisions != net.Collisions {
			t.Errorf("seed %d: collisions %d vs %d", seed, fullNet.Collisions, net.Collisions)
		}
	}
}

// TestBeaconTapeReplayIdentical: a tape-replay simulation (beacon events
// stripped, tables served lazily from the recorded tape) must reproduce
// every broadcast statistic of the full from-scratch run bit-for-bit —
// with and without the quiescence early stop.
func TestBeaconTapeReplayIdentical(t *testing.T) {
	cfg := DefaultScenario(30)
	for seed := uint64(1); seed <= 5; seed++ {
		full, fullNet := runScratch(t, cfg, seed, 1)
		snap, err := BuildSnapshot(cfg, seed, cfg.WarmupTime)
		if err != nil {
			t.Fatal(err)
		}
		tape, err := snap.RecordBeaconTape(cfg.EndTime)
		if err != nil {
			t.Fatal(err)
		}
		if tape.Upserts() == 0 {
			t.Fatal("tape recorded no beacon upserts")
		}

		net, st := snap.InstantiateReplay(newForwardOnce, 1, cfg.WarmupTime, tape)
		net.Run()
		assertStatsIdentical(t, "tape-full", full, st, fullNet, net)

		qnet, qst := snap.InstantiateReplay(newForwardOnce, 1, cfg.WarmupTime, tape)
		qnet.RunToQuiescence()
		assertStatsIdentical(t, "tape-quiescent", full, qst, fullNet, qnet)
		if fullNet.Collisions != qnet.Collisions {
			t.Errorf("seed %d: collisions %d vs %d", seed, fullNet.Collisions, qnet.Collisions)
		}
	}
}

// TestBeaconTapeRequiresFastBeacons: the frame-level beacon medium
// contends with data frames, so tapes must refuse it.
func TestBeaconTapeRequiresFastBeacons(t *testing.T) {
	cfg := DefaultScenario(10)
	cfg.FastBeacons = false
	snap, err := BuildSnapshot(cfg, 3, cfg.WarmupTime)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snap.RecordBeaconTape(cfg.EndTime); err == nil {
		t.Fatal("RecordBeaconTape accepted frame-level beacons")
	}
}

// TestDataInFlightBalanced: after any complete run the in-flight data
// counter must return to zero, or quiescence detection would be unsound.
func TestDataInFlightBalanced(t *testing.T) {
	cfg := DefaultScenario(40)
	net, err := New(cfg, 9, newForwardOnce)
	if err != nil {
		t.Fatal(err)
	}
	net.StartBroadcast(0, cfg.WarmupTime)
	net.Run()
	if net.dataInFlight != 0 {
		t.Fatalf("dataInFlight = %d after a full run, want 0", net.dataInFlight)
	}
	if !net.Quiescent() {
		t.Fatal("fully-run network not quiescent")
	}
}
