package fast99

import (
	"math"
	"testing"

	"aedbmls/internal/rng"
)

func TestLinearModelVarianceShares(t *testing.T) {
	// y = 2*x1 + x2 over [-1,1]^2: Var = 4/3 + 1/3, so S1 = 0.8, S2 = 0.2,
	// no interactions.
	model := func(x []float64) []float64 { return []float64{2*x[0] + x[1]} }
	res, err := Analyze(model, []float64{-1, -1}, []float64{1, 1}, Config{N: 1001, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if math.Abs(r.Main[0]-0.8) > 0.05 {
		t.Fatalf("S1 = %v, want approx 0.8", r.Main[0])
	}
	if math.Abs(r.Main[1]-0.2) > 0.05 {
		t.Fatalf("S2 = %v, want approx 0.2", r.Main[1])
	}
	for i, inter := range r.Interactions() {
		if inter > 0.1 {
			t.Fatalf("linear model interaction[%d] = %v, want approx 0", i, inter)
		}
	}
}

func TestPureInteractionModel(t *testing.T) {
	// y = x1*x2 over [-1,1]^2 has zero main effects and all variance in
	// the interaction.
	model := func(x []float64) []float64 { return []float64{x[0] * x[1]} }
	res, err := Analyze(model, []float64{-1, -1}, []float64{1, 1}, Config{N: 1001, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	for i := 0; i < 2; i++ {
		if r.Main[i] > 0.1 {
			t.Fatalf("main[%d] = %v, want approx 0", i, r.Main[i])
		}
		if r.Total[i] < 0.5 {
			t.Fatalf("total[%d] = %v, want large (pure interaction)", i, r.Total[i])
		}
	}
}

func TestIrrelevantFactorScoresZero(t *testing.T) {
	// x2 does not appear in the model.
	model := func(x []float64) []float64 { return []float64{math.Sin(x[0])} }
	res, err := Analyze(model, []float64{-3, -3}, []float64{3, 3}, Config{N: 601, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if r.Main[1] > 0.02 || r.Total[1] > 0.1 {
		t.Fatalf("irrelevant factor scored main=%v total=%v", r.Main[1], r.Total[1])
	}
	if r.Main[0] < 0.8 {
		t.Fatalf("driving factor main = %v, want near 1", r.Main[0])
	}
}

func TestRankingOfUnequalFactors(t *testing.T) {
	// Ishigami-like weighting: x1 strongest, then x2, x3 negligible.
	model := func(x []float64) []float64 {
		return []float64{5*x[0] + 2*x[1] + 0.1*x[2]}
	}
	res, err := Analyze(model, []float64{-1, -1, -1}, []float64{1, 1, 1}, Config{N: 1001, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if !(r.Main[0] > r.Main[1] && r.Main[1] > r.Main[2]) {
		t.Fatalf("ranking wrong: %v", r.Main)
	}
}

func TestMultiOutputModel(t *testing.T) {
	// Output 0 depends on x1, output 1 on x2; indices must separate.
	model := func(x []float64) []float64 { return []float64{x[0], x[1] * x[1]} }
	res, err := Analyze(model, []float64{-1, -1}, []float64{1, 1}, Config{N: 501, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Main[0] < 0.8 || res[0].Main[1] > 0.05 {
		t.Fatalf("output 0 indices wrong: %v", res[0].Main)
	}
	if res[1].Main[1] < 0.8 || res[1].Main[0] > 0.05 {
		t.Fatalf("output 1 indices wrong: %v", res[1].Main)
	}
}

func TestConstantModel(t *testing.T) {
	model := func(x []float64) []float64 { return []float64{42} }
	res, err := Analyze(model, []float64{0, 0}, []float64{1, 1}, Config{N: 101, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if res[0].Main[i] != 0 || res[0].Total[i] != 0 {
			t.Fatalf("constant model scored non-zero: %+v", res[0])
		}
	}
}

func TestErrors(t *testing.T) {
	model := func(x []float64) []float64 { return []float64{x[0]} }
	if _, err := Analyze(model, []float64{0}, []float64{1}, Config{N: 10, M: 4}); err == nil {
		t.Error("tiny N accepted")
	}
	if _, err := Analyze(model, nil, nil, Config{N: 100}); err == nil {
		t.Error("empty bounds accepted")
	}
	if _, err := Analyze(model, []float64{0, 0}, []float64{1}, Config{N: 100}); err == nil {
		t.Error("mismatched bounds accepted")
	}
}

func TestSamplesStayInBounds(t *testing.T) {
	lo, hi := []float64{2, -5}, []float64{3, -1}
	ok := true
	model := func(x []float64) []float64 {
		for i := range x {
			if x[i] < lo[i]-1e-9 || x[i] > hi[i]+1e-9 {
				ok = false
			}
		}
		return []float64{x[0] + x[1]}
	}
	if _, err := Analyze(model, lo, hi, Config{N: 201, M: 4}); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("search curve left the bounds")
	}
}

func TestRandomPhasesStillCorrect(t *testing.T) {
	model := func(x []float64) []float64 { return []float64{3 * x[0]} }
	res, err := Analyze(model, []float64{-1, -1}, []float64{1, 1},
		Config{N: 601, M: 4, Rng: rng.New(7)})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Main[0] < 0.8 || res[0].Main[1] > 0.05 {
		t.Fatalf("random-phase indices wrong: %v", res[0].Main)
	}
}

func TestFiveFactorLayout(t *testing.T) {
	// Five factors (the AEDB case): the layout must produce valid
	// frequencies and a sensible decomposition.
	model := func(x []float64) []float64 {
		return []float64{x[0] + 0.5*x[1] + 0.25*x[2] + 0.1*x[3] + 0.05*x[4]}
	}
	lo := []float64{-1, -1, -1, -1, -1}
	hi := []float64{1, 1, 1, 1, 1}
	res, err := Analyze(model, lo, hi, Config{N: 401, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	for i := 0; i < 4; i++ {
		if r.Main[i] < r.Main[i+1] {
			t.Fatalf("five-factor ranking broken: %v", r.Main)
		}
	}
}

func TestEffectDirection(t *testing.T) {
	model := func(x []float64) []float64 {
		return []float64{2 * x[0], -3 * x[1], 0.0001 * x[0]}
	}
	dirs := EffectDirection(model, []float64{-1, -1}, []float64{1, 1}, 400, rng.New(3))
	if dirs[0][0] != 1 {
		t.Fatalf("output 0 factor 0 direction = %d, want +1", dirs[0][0])
	}
	if dirs[1][1] != -1 {
		t.Fatalf("output 1 factor 1 direction = %d, want -1", dirs[1][1])
	}
	if dirs[0][1] != 0 {
		t.Fatalf("irrelevant factor direction = %d, want 0", dirs[0][1])
	}
}

func TestInteractionsNonNegative(t *testing.T) {
	model := func(x []float64) []float64 { return []float64{x[0] * math.Sin(x[1])} }
	res, err := Analyze(model, []float64{-2, -2}, []float64{2, 2}, Config{N: 301, M: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res[0].Interactions() {
		if v < 0 {
			t.Fatalf("negative interaction %v", v)
		}
	}
}
