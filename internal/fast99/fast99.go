// Package fast99 implements the extended Fourier Amplitude Sensitivity
// Test (FAST) of Saltelli, Tarantola & Chan (Technometrics 1999), the
// method the paper uses for its parameter sensitivity analysis
// (Sect. III-B, Fig. 2, Table I).
//
// For each input factor i, the whole input space is explored along a
// space-filling search curve
//
//	x_k(s) = lo_k + (hi_k - lo_k) * (1/2 + asin(sin(w_k*s + phi_k))/pi)
//
// where factor i is driven at a high frequency w_i = omega1 and all other
// factors at low frequencies <= omega1/(2M). The first-order (main
// effect) index S_i is the share of output variance concentrated at
// omega1 and its first M harmonics; the total-order index ST_i is one
// minus the share in the low-frequency band (the complementary factors),
// and ST_i - S_i measures interactions. This mirrors R's
// sensitivity::fast99, which the original analysis plots were produced
// with.
package fast99

import (
	"fmt"
	"math"

	"aedbmls/internal/rng"
)

// Result holds the sensitivity indices for one model output.
type Result struct {
	// Main[i] is the first-order index S_i of factor i.
	Main []float64
	// Total[i] is the total-order index ST_i of factor i.
	Total []float64
}

// Interactions returns max(0, ST_i - S_i) per factor — the quantity the
// paper stacks on top of the main effect in Fig. 2.
func (r Result) Interactions() []float64 {
	out := make([]float64, len(r.Main))
	for i := range out {
		v := r.Total[i] - r.Main[i]
		if v < 0 {
			v = 0
		}
		out[i] = v
	}
	return out
}

// Config controls the analysis.
type Config struct {
	// N is the number of model evaluations per factor (>= 4*M*M+1 for a
	// valid frequency layout; Analyze enforces this).
	N int
	// M is the number of harmonics summed for the main effect
	// (conventionally 4).
	M int
	// Rng, when non-nil, draws a random phase shift per factor per curve,
	// decorrelating the search curves. Nil uses zero phases
	// (deterministic classic FAST).
	Rng *rng.Rand
}

// Analyze runs extended FAST on a multi-output model over the box
// [lo, hi]. The model receives one input vector and returns one value per
// output; results are indexed by output. The model is called
// len(lo)*cfg.N times.
func Analyze(model func(x []float64) []float64, lo, hi []float64, cfg Config) ([]Result, error) {
	k := len(lo)
	if k == 0 || len(hi) != k {
		return nil, fmt.Errorf("fast99: bad bounds (len lo=%d, hi=%d)", k, len(hi))
	}
	if cfg.M <= 0 {
		cfg.M = 4
	}
	minN := 4*cfg.M*cfg.M + 1
	if cfg.N < minN {
		return nil, fmt.Errorf("fast99: N=%d too small for M=%d (need >= %d)", cfg.N, cfg.M, minN)
	}
	n, m := cfg.N, cfg.M

	// Frequency layout (as in R's fast99): the driver frequency for the
	// factor of interest, and low complementary frequencies for the rest.
	omega1 := (n - 1) / (2 * m)
	maxComp := omega1 / (2 * m)
	if maxComp < 1 {
		maxComp = 1
	}
	comp := make([]int, k-1)
	if maxComp >= k-1 {
		// Evenly spread over [1, maxComp].
		for i := range comp {
			if k == 2 {
				comp[i] = 1
			} else {
				comp[i] = 1 + i*(maxComp-1)/(k-2)
			}
		}
	} else {
		for i := range comp {
			comp[i] = i%maxComp + 1
		}
	}

	s := make([]float64, n)
	for j := 0; j < n; j++ {
		s[j] = math.Pi * (2*float64(j) + 1 - float64(n)) / float64(n)
	}

	var numOutputs = -1
	var results []Result
	x := make([]float64, k)
	freqs := make([]int, k)
	phases := make([]float64, k)
	ys := make([][]float64, 0) // per output: n samples (reused per factor)

	for fi := 0; fi < k; fi++ {
		// Assign frequencies: driver to factor fi, complementary to rest.
		ci := 0
		for f := 0; f < k; f++ {
			if f == fi {
				freqs[f] = omega1
			} else {
				freqs[f] = comp[ci]
				ci++
			}
			if cfg.Rng != nil {
				phases[f] = cfg.Rng.Range(0, 2*math.Pi)
			} else {
				phases[f] = 0
			}
		}
		// Evaluate the model along the curve.
		for j := 0; j < n; j++ {
			for f := 0; f < k; f++ {
				g := 0.5 + math.Asin(math.Sin(float64(freqs[f])*s[j]+phases[f]))/math.Pi
				x[f] = lo[f] + (hi[f]-lo[f])*g
			}
			y := model(x)
			if numOutputs < 0 {
				numOutputs = len(y)
				results = make([]Result, numOutputs)
				for o := range results {
					results[o] = Result{Main: make([]float64, k), Total: make([]float64, k)}
				}
				ys = make([][]float64, numOutputs)
				for o := range ys {
					ys[o] = make([]float64, n)
				}
			} else if len(y) != numOutputs {
				return nil, fmt.Errorf("fast99: model output arity changed (%d -> %d)", numOutputs, len(y))
			}
			for o, v := range y {
				ys[o][j] = v
			}
		}
		// Spectral decomposition per output.
		for o := 0; o < numOutputs; o++ {
			v := variance(ys[o])
			if v <= 0 {
				results[o].Main[fi] = 0
				results[o].Total[fi] = 0
				continue
			}
			var d1 float64
			for h := 1; h <= m; h++ {
				d1 += spectrumAt(ys[o], s, h*omega1)
			}
			var dt float64
			for f := 1; f <= omega1/2; f++ {
				dt += spectrumAt(ys[o], s, f)
			}
			results[o].Main[fi] = clamp01(d1 / v)
			results[o].Total[fi] = clamp01(1 - dt/v)
		}
	}
	return results, nil
}

// spectrumAt returns the variance contribution of frequency w:
// 2*(A^2+B^2) with A, B the cosine/sine Fourier coefficients of y over the
// curve parameter s.
func spectrumAt(y, s []float64, w int) float64 {
	var a, b float64
	for j, v := range y {
		a += v * math.Cos(float64(w)*s[j])
		b += v * math.Sin(float64(w)*s[j])
	}
	n := float64(len(y))
	a /= n
	b /= n
	return 2 * (a*a + b*b)
}

func variance(y []float64) float64 {
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	var s float64
	for _, v := range y {
		d := v - mean
		s += d * d
	}
	return s / float64(len(y))
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// EffectDirection estimates the sign of each factor's effect on each
// output by ordinary least-squares slopes over a uniform sample of the
// box: +1 if increasing the factor increases the output, -1 if it
// decreases it, 0 if negligible relative to the output spread. This
// produces the up/down triangles of the paper's Table I.
func EffectDirection(model func(x []float64) []float64, lo, hi []float64, n int, r *rng.Rand) [][]int {
	k := len(lo)
	xs := make([][]float64, n)
	var ys [][]float64
	for j := 0; j < n; j++ {
		x := make([]float64, k)
		for f := 0; f < k; f++ {
			x[f] = r.Range(lo[f], hi[f])
		}
		xs[j] = x
		y := model(x)
		if ys == nil {
			ys = make([][]float64, len(y))
			for o := range ys {
				ys[o] = make([]float64, n)
			}
		}
		for o, v := range y {
			ys[o][j] = v
		}
	}
	out := make([][]int, len(ys))
	for o := range ys {
		out[o] = make([]int, k)
		sy := stddev(ys[o])
		for f := 0; f < k; f++ {
			slope := olsSlope(column(xs, f), ys[o])
			span := hi[f] - lo[f]
			// Effect of sweeping the factor across its whole range,
			// relative to the output's spread.
			if sy > 0 && math.Abs(slope*span) > 0.1*sy {
				if slope > 0 {
					out[o][f] = 1
				} else {
					out[o][f] = -1
				}
			}
		}
	}
	return out
}

func column(xs [][]float64, f int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x[f]
	}
	return out
}

func olsSlope(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

func stddev(y []float64) float64 {
	return math.Sqrt(variance(y))
}
