// Package moo holds the multi-objective optimisation vocabulary shared by
// every algorithm in this repository: solutions, constrained Pareto
// dominance, non-dominated filtering and sorting, and the Problem
// interface the optimisers work against.
//
// Objectives are always minimised; problems that maximise a quantity (such
// as AEDB's coverage) negate it. Constraints are expressed as a scalar
// violation: zero means feasible.
package moo

import (
	"fmt"
	"math"
)

// Solution is one evaluated point of a problem.
type Solution struct {
	// X is the decision vector.
	X []float64
	// F is the objective vector, all components minimised.
	F []float64
	// Violation is the constraint violation; <= 0 means feasible.
	Violation float64
	// Aux carries problem-specific evaluation detail (e.g. the raw AEDB
	// metrics) for reporting; algorithms must not interpret it.
	Aux any
	// Stopped marks an evaluation abandoned mid-batch because the
	// problem's stop signal fired; F and Violation carry no information
	// about the candidate. See BatchResult.Stopped.
	Stopped bool
	// Screened marks a low-fidelity triage estimate from a multi-fidelity
	// problem; F and Violation are cheap approximations, not a full
	// evaluation. See BatchResult.Screened.
	Screened bool
}

// Feasible reports whether the solution satisfies all constraints.
func (s *Solution) Feasible() bool { return s.Violation <= 0 }

// Admissible reports whether the solution is a completed full-fidelity
// evaluation — neither abandoned by a stop signal nor a low-fidelity
// screening estimate. Only admissible solutions may be accepted as
// incumbents, selected into populations, or archived; every optimizer in
// this repository discards inadmissible results at its evaluation
// boundary.
func (s *Solution) Admissible() bool { return !s.Stopped && !s.Screened }

// Clone returns a deep copy of the solution (Aux is shared).
func (s *Solution) Clone() *Solution {
	c := &Solution{Violation: s.Violation, Aux: s.Aux, Stopped: s.Stopped, Screened: s.Screened}
	c.X = append([]float64(nil), s.X...)
	c.F = append([]float64(nil), s.F...)
	return c
}

// String renders the solution compactly.
func (s *Solution) String() string {
	return fmt.Sprintf("x=%v f=%v viol=%.4g", s.X, s.F, s.Violation)
}

// Problem is a box-constrained multi-objective minimisation problem.
// Implementations must be safe for concurrent Evaluate calls.
type Problem interface {
	// Name identifies the problem in reports.
	Name() string
	// Dim returns the decision-space dimension.
	Dim() int
	// NumObjectives returns the number of (minimised) objectives.
	NumObjectives() int
	// Bounds returns the lower and upper decision bounds (length Dim).
	Bounds() (lo, hi []float64)
	// Evaluate computes objectives and constraint violation for x.
	// x must be within bounds; Evaluate must not retain or modify x.
	Evaluate(x []float64) (f []float64, violation float64, aux any)
}

// NewSolution evaluates x on p and wraps the result.
func NewSolution(p Problem, x []float64) *Solution {
	f, viol, aux := p.Evaluate(x)
	return &Solution{X: append([]float64(nil), x...), F: f, Violation: viol, Aux: aux}
}

// BatchResult is one element of a batched evaluation, mirroring the
// return values of Problem.Evaluate.
type BatchResult struct {
	F         []float64
	Violation float64
	Aux       any
	// Stopped marks a result abandoned mid-batch because the problem's
	// stop signal fired. F and Violation still hold the problem's penalty
	// outcome (belt and braces for callers that rank before checking), but
	// they carry no information about the candidate: a stopped result is
	// NOT a failure — the problem does not count it as one — and callers
	// must discard it rather than archive the penalty point.
	Stopped bool
	// Screened marks a low-fidelity triage outcome from a multi-fidelity
	// problem (e.g. eval's promotion ladder): F, Violation and Aux hold the
	// cheap screening estimate of a candidate the problem declined to
	// evaluate at full fidelity. Selection must not treat it as a real
	// evaluation and archives must never admit it.
	Screened bool
}

// BatchProblem is an optional extension implemented by problems that can
// evaluate many decision vectors together more efficiently than one at a
// time (e.g. by amortising per-scenario setup across the batch, or by
// fanning the batch across cores).
//
// The contract is equivalence: EvaluateBatch(xs)[i] must carry exactly
// the objectives, violation and aux that Evaluate(xs[i]) would return, in
// input order, and implementations must be safe for concurrent use like
// Evaluate. Algorithms therefore may route any group of independent
// evaluations through a batch without changing their results; EvaluateAll
// is the standard helper that does so.
type BatchProblem interface {
	Problem
	// EvaluateBatch evaluates every vector of xs and returns one result
	// per vector, in order. It must not retain or modify the vectors.
	EvaluateBatch(xs [][]float64) []BatchResult
}

// EvaluateAll evaluates every vector of xs on p and wraps the results,
// routing through EvaluateBatch when p implements BatchProblem and
// falling back to sequential NewSolution calls otherwise.
func EvaluateAll(p Problem, xs [][]float64) []*Solution {
	out := make([]*Solution, len(xs))
	if bp, ok := p.(BatchProblem); ok && len(xs) > 1 {
		for i, r := range bp.EvaluateBatch(xs) {
			out[i] = &Solution{
				X: append([]float64(nil), xs[i]...), F: r.F, Violation: r.Violation, Aux: r.Aux,
				Stopped: r.Stopped, Screened: r.Screened,
			}
		}
		return out
	}
	for i, x := range xs {
		out[i] = NewSolution(p, x)
	}
	return out
}

// Admissible returns the subset of sols that are completed full-fidelity
// evaluations (see Solution.Admissible), preserving order. The input is
// not modified; when nothing was filtered the input slice is returned
// as-is.
func Admissible(sols []*Solution) []*Solution {
	for i, s := range sols {
		if !s.Admissible() {
			out := make([]*Solution, i, len(sols))
			copy(out, sols[:i])
			for _, t := range sols[i+1:] {
				if t.Admissible() {
					out = append(out, t)
				}
			}
			return out
		}
	}
	return sols
}

// ParetoDominates reports strict Pareto dominance of objective vector a
// over b (a no worse everywhere, strictly better somewhere).
func ParetoDominates(a, b []float64) bool {
	better := false
	for i := range a {
		switch {
		case a[i] < b[i]:
			better = true
		case a[i] > b[i]:
			return false
		}
	}
	return better
}

// Dominates applies Deb's constrained-dominance rule: a feasible solution
// dominates an infeasible one; between two infeasible solutions the
// smaller violation dominates; between two feasible solutions plain Pareto
// dominance decides.
func Dominates(a, b *Solution) bool {
	af, bf := a.Feasible(), b.Feasible()
	switch {
	case af && !bf:
		return true
	case !af && bf:
		return false
	case !af && !bf:
		return a.Violation < b.Violation
	default:
		return ParetoDominates(a.F, b.F)
	}
}

// EqualF reports whether two solutions have identical objective vectors
// and violations (used by archives to reject duplicates).
func EqualF(a, b *Solution) bool {
	if a.Violation != b.Violation || len(a.F) != len(b.F) {
		return false
	}
	for i := range a.F {
		if a.F[i] != b.F[i] {
			return false
		}
	}
	return true
}

// ParetoFilter returns the non-dominated subset of sols (first occurrence
// wins among duplicates). The input slice is not modified.
func ParetoFilter(sols []*Solution) []*Solution {
	var out []*Solution
	for i, s := range sols {
		dominated := false
		for j, t := range sols {
			if i == j {
				continue
			}
			if Dominates(t, s) || (EqualF(t, s) && j < i) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, s)
		}
	}
	return out
}

// FastNonDominatedSort partitions sols into fronts (Deb's NSGA-II
// algorithm, O(M N^2)). It returns slices of indices into sols; front 0 is
// the non-dominated set under constrained dominance.
func FastNonDominatedSort(sols []*Solution) [][]int {
	n := len(sols)
	dominatesList := make([][]int, n)
	domCount := make([]int, n)
	var first []int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if Dominates(sols[i], sols[j]) {
				dominatesList[i] = append(dominatesList[i], j)
			} else if Dominates(sols[j], sols[i]) {
				domCount[i]++
			}
		}
		if domCount[i] == 0 {
			first = append(first, i)
		}
	}
	var fronts [][]int
	cur := first
	for len(cur) > 0 {
		fronts = append(fronts, cur)
		var next []int
		for _, i := range cur {
			for _, j := range dominatesList[i] {
				domCount[j]--
				if domCount[j] == 0 {
					next = append(next, j)
				}
			}
		}
		cur = next
	}
	return fronts
}

// CrowdingDistances returns Deb's crowding distance for each solution
// (boundary solutions get +Inf). Used by NSGA-II and the CellDE archive.
func CrowdingDistances(sols []*Solution) []float64 {
	n := len(sols)
	d := make([]float64, n)
	if n == 0 {
		return d
	}
	m := len(sols[0].F)
	if n <= 2 {
		for i := range d {
			d[i] = math.Inf(1)
		}
		return d
	}
	idx := make([]int, n)
	for k := 0; k < m; k++ {
		for i := range idx {
			idx[i] = i
		}
		// Insertion sort by objective k (fronts are small).
		for i := 1; i < n; i++ {
			j := i
			for j > 0 && sols[idx[j-1]].F[k] > sols[idx[j]].F[k] {
				idx[j-1], idx[j] = idx[j], idx[j-1]
				j--
			}
		}
		span := sols[idx[n-1]].F[k] - sols[idx[0]].F[k]
		d[idx[0]] = math.Inf(1)
		d[idx[n-1]] = math.Inf(1)
		if span <= 0 {
			continue
		}
		for i := 1; i < n-1; i++ {
			d[idx[i]] += (sols[idx[i+1]].F[k] - sols[idx[i-1]].F[k]) / span
		}
	}
	return d
}

// Clamp clips x (in place) into [lo, hi] component-wise and returns it.
func Clamp(x, lo, hi []float64) []float64 {
	for i := range x {
		if x[i] < lo[i] {
			x[i] = lo[i]
		}
		if x[i] > hi[i] {
			x[i] = hi[i]
		}
	}
	return x
}

// Ideal returns the component-wise minimum objective vector of the set.
func Ideal(sols []*Solution) []float64 {
	if len(sols) == 0 {
		return nil
	}
	out := append([]float64(nil), sols[0].F...)
	for _, s := range sols[1:] {
		for i, v := range s.F {
			if v < out[i] {
				out[i] = v
			}
		}
	}
	return out
}

// Nadir returns the component-wise maximum objective vector of the set.
func Nadir(sols []*Solution) []float64 {
	if len(sols) == 0 {
		return nil
	}
	out := append([]float64(nil), sols[0].F...)
	for _, s := range sols[1:] {
		for i, v := range s.F {
			if v > out[i] {
				out[i] = v
			}
		}
	}
	return out
}
