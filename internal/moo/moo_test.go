package moo

import (
	"math"
	"testing"
	"testing/quick"

	"aedbmls/internal/rng"
)

func sol(f []float64, viol float64) *Solution {
	return &Solution{X: []float64{0}, F: f, Violation: viol}
}

func TestParetoDominatesBasics(t *testing.T) {
	if !ParetoDominates([]float64{1, 1}, []float64{2, 2}) {
		t.Error("strictly better not dominating")
	}
	if !ParetoDominates([]float64{1, 2}, []float64{2, 2}) {
		t.Error("weakly better not dominating")
	}
	if ParetoDominates([]float64{1, 3}, []float64{2, 2}) {
		t.Error("incomparable dominating")
	}
	if ParetoDominates([]float64{2, 2}, []float64{2, 2}) {
		t.Error("equal vector dominating (must be strict)")
	}
}

func TestParetoDominanceIrreflexiveAsymmetric(t *testing.T) {
	r := rng.New(1)
	check := func() bool {
		a := []float64{r.Range(0, 1), r.Range(0, 1), r.Range(0, 1)}
		b := []float64{r.Range(0, 1), r.Range(0, 1), r.Range(0, 1)}
		if ParetoDominates(a, a) {
			return false
		}
		if ParetoDominates(a, b) && ParetoDominates(b, a) {
			return false
		}
		return true
	}
	for i := 0; i < 2000; i++ {
		if !check() {
			t.Fatal("dominance axioms violated")
		}
	}
}

func TestParetoDominanceTransitive(t *testing.T) {
	r := rng.New(2)
	for i := 0; i < 5000; i++ {
		a := []float64{r.Range(0, 1), r.Range(0, 1)}
		b := []float64{r.Range(0, 1), r.Range(0, 1)}
		c := []float64{r.Range(0, 1), r.Range(0, 1)}
		if ParetoDominates(a, b) && ParetoDominates(b, c) && !ParetoDominates(a, c) {
			t.Fatalf("transitivity violated: %v %v %v", a, b, c)
		}
	}
}

func TestConstrainedDominance(t *testing.T) {
	feasible := sol([]float64{5, 5}, 0)
	infeasible := sol([]float64{0, 0}, 1)
	if !Dominates(feasible, infeasible) {
		t.Error("feasible must dominate infeasible regardless of objectives")
	}
	if Dominates(infeasible, feasible) {
		t.Error("infeasible dominating feasible")
	}
	lessViolated := sol([]float64{9, 9}, 0.5)
	if !Dominates(lessViolated, infeasible) {
		t.Error("smaller violation must dominate larger")
	}
	a, b := sol([]float64{1, 2}, 0), sol([]float64{2, 1}, 0)
	if Dominates(a, b) || Dominates(b, a) {
		t.Error("incomparable feasible solutions dominating")
	}
}

func TestEqualF(t *testing.T) {
	if !EqualF(sol([]float64{1, 2}, 0), sol([]float64{1, 2}, 0)) {
		t.Error("identical not equal")
	}
	if EqualF(sol([]float64{1, 2}, 0), sol([]float64{1, 2}, 0.1)) {
		t.Error("different violation considered equal")
	}
	if EqualF(sol([]float64{1, 2}, 0), sol([]float64{1, 3}, 0)) {
		t.Error("different F considered equal")
	}
}

func TestParetoFilterProperties(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 50; trial++ {
		var sols []*Solution
		for i := 0; i < 40; i++ {
			sols = append(sols, sol([]float64{r.Range(0, 1), r.Range(0, 1)}, 0))
		}
		front := ParetoFilter(sols)
		if len(front) == 0 {
			t.Fatal("empty front from non-empty set")
		}
		// No member dominates another.
		for i, a := range front {
			for j, b := range front {
				if i != j && Dominates(a, b) {
					t.Fatal("front contains dominated member")
				}
			}
		}
		// Every excluded solution is dominated by (or duplicates) a member.
		inFront := map[*Solution]bool{}
		for _, s := range front {
			inFront[s] = true
		}
		for _, s := range sols {
			if inFront[s] {
				continue
			}
			covered := false
			for _, f := range front {
				if Dominates(f, s) || EqualF(f, s) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatal("excluded solution not dominated by any front member")
			}
		}
	}
}

func TestParetoFilterDeduplicates(t *testing.T) {
	a := sol([]float64{1, 1}, 0)
	b := sol([]float64{1, 1}, 0)
	front := ParetoFilter([]*Solution{a, b})
	if len(front) != 1 {
		t.Fatalf("duplicate objective vectors kept: %d", len(front))
	}
}

func TestFastNonDominatedSortMatchesBruteForce(t *testing.T) {
	r := rng.New(4)
	for trial := 0; trial < 30; trial++ {
		var sols []*Solution
		for i := 0; i < 30; i++ {
			viol := 0.0
			if r.Bool(0.2) {
				viol = r.Range(0, 1)
			}
			sols = append(sols, sol([]float64{r.Range(0, 1), r.Range(0, 1)}, viol))
		}
		fronts := FastNonDominatedSort(sols)
		// Every solution appears exactly once.
		seen := make([]bool, len(sols))
		total := 0
		for _, f := range fronts {
			total += len(f)
			for _, i := range f {
				if seen[i] {
					t.Fatal("solution in two fronts")
				}
				seen[i] = true
			}
		}
		if total != len(sols) {
			t.Fatalf("fronts cover %d of %d", total, len(sols))
		}
		// Rank property: no member of front k is dominated by a member of
		// front k or later; every member of front k>0 is dominated by
		// someone in front k-1.
		for k, f := range fronts {
			for _, i := range f {
				for kk := k; kk < len(fronts); kk++ {
					for _, j := range fronts[kk] {
						if i != j && Dominates(sols[j], sols[i]) && kk == k {
							t.Fatal("front member dominated within its front")
						}
					}
				}
				if k > 0 {
					dominated := false
					for _, j := range fronts[k-1] {
						if Dominates(sols[j], sols[i]) {
							dominated = true
							break
						}
					}
					if !dominated {
						t.Fatal("front-k member not dominated by front k-1")
					}
				}
			}
		}
	}
}

func TestCrowdingDistances(t *testing.T) {
	sols := []*Solution{
		sol([]float64{0, 4}, 0),
		sol([]float64{1, 2}, 0),
		sol([]float64{2, 1}, 0),
		sol([]float64{4, 0}, 0),
	}
	d := CrowdingDistances(sols)
	if !math.IsInf(d[0], 1) || !math.IsInf(d[3], 1) {
		t.Fatalf("boundary solutions not infinite: %v", d)
	}
	if math.IsInf(d[1], 1) || math.IsInf(d[2], 1) || d[1] <= 0 || d[2] <= 0 {
		t.Fatalf("interior distances wrong: %v", d)
	}
	// Two or fewer solutions: all infinite.
	d2 := CrowdingDistances(sols[:2])
	if !math.IsInf(d2[0], 1) || !math.IsInf(d2[1], 1) {
		t.Fatalf("small front distances: %v", d2)
	}
}

func TestClamp(t *testing.T) {
	lo, hi := []float64{0, -1}, []float64{1, 1}
	got := Clamp([]float64{2, -3}, lo, hi)
	if got[0] != 1 || got[1] != -1 {
		t.Fatalf("Clamp = %v", got)
	}
	check := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		v := Clamp([]float64{a, b}, lo, hi)
		return v[0] >= lo[0] && v[0] <= hi[0] && v[1] >= lo[1] && v[1] <= hi[1]
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIdealNadir(t *testing.T) {
	sols := []*Solution{
		sol([]float64{1, 5}, 0),
		sol([]float64{3, 2}, 0),
	}
	ideal, nadir := Ideal(sols), Nadir(sols)
	if ideal[0] != 1 || ideal[1] != 2 {
		t.Fatalf("Ideal = %v", ideal)
	}
	if nadir[0] != 3 || nadir[1] != 5 {
		t.Fatalf("Nadir = %v", nadir)
	}
	if Ideal(nil) != nil || Nadir(nil) != nil {
		t.Fatal("empty set should give nil")
	}
}

func TestSolutionCloneIndependent(t *testing.T) {
	s := &Solution{X: []float64{1, 2}, F: []float64{3}, Violation: 0.5}
	c := s.Clone()
	c.X[0] = 99
	c.F[0] = 99
	if s.X[0] != 1 || s.F[0] != 3 {
		t.Fatal("Clone shares slices with the original")
	}
	if c.Violation != 0.5 {
		t.Fatal("Clone lost violation")
	}
}

func TestFeasible(t *testing.T) {
	if !sol(nil, 0).Feasible() || sol(nil, 0.1).Feasible() {
		t.Fatal("Feasible threshold wrong")
	}
}
