package moo

import "testing"

// fakeProblem is a trivial single-objective-per-component problem whose
// batch path is instrumented, for routing tests.
type fakeProblem struct {
	batchCalls int
	evalCalls  int
}

func (p *fakeProblem) Name() string               { return "fake" }
func (p *fakeProblem) Dim() int                   { return 2 }
func (p *fakeProblem) NumObjectives() int         { return 2 }
func (p *fakeProblem) Bounds() (lo, hi []float64) { return []float64{0, 0}, []float64{1, 1} }
func (p *fakeProblem) eval(x []float64) ([]float64, float64, any) {
	return []float64{x[0], x[1]}, x[0] - 0.5, x[0] + x[1]
}
func (p *fakeProblem) Evaluate(x []float64) ([]float64, float64, any) {
	p.evalCalls++
	return p.eval(x)
}
func (p *fakeProblem) EvaluateBatch(xs [][]float64) []BatchResult {
	p.batchCalls++
	out := make([]BatchResult, len(xs))
	for i, x := range xs {
		f, v, aux := p.eval(x)
		out[i] = BatchResult{F: f, Violation: v, Aux: aux}
	}
	return out
}

// serialOnly hides a problem's batch capability; algorithms and tests use
// it to force the one-at-a-time path.
type serialOnly struct{ Problem }

func TestEvaluateAllRoutesThroughBatch(t *testing.T) {
	p := &fakeProblem{}
	xs := [][]float64{{0.1, 0.2}, {0.7, 0.4}, {0.9, 0.9}}
	sols := EvaluateAll(p, xs)
	if p.batchCalls != 1 || p.evalCalls != 0 {
		t.Fatalf("batch=%d eval=%d, want batch routing", p.batchCalls, p.evalCalls)
	}
	ref := EvaluateAll(serialOnly{p}, xs)
	if p.evalCalls != len(xs) {
		t.Fatalf("serialOnly shim did not force Evaluate calls (got %d)", p.evalCalls)
	}
	for i := range sols {
		if !EqualF(sols[i], ref[i]) || sols[i].Aux != ref[i].Aux {
			t.Fatalf("batch result %d diverges from serial: %v vs %v", i, sols[i], ref[i])
		}
		if &sols[i].X[0] == &xs[i][0] {
			t.Fatal("EvaluateAll retained the caller's vector")
		}
	}
}

func TestEvaluateAllSingleVectorStaysSerial(t *testing.T) {
	p := &fakeProblem{}
	EvaluateAll(p, [][]float64{{0.5, 0.5}})
	if p.batchCalls != 0 || p.evalCalls != 1 {
		t.Fatalf("single-vector call used the batch path (batch=%d eval=%d)", p.batchCalls, p.evalCalls)
	}
	if out := EvaluateAll(p, nil); len(out) != 0 {
		t.Fatalf("empty input produced %d solutions", len(out))
	}
}
