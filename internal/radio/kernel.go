// The fast path-loss kernel: reception powers computed directly from
// SQUARED distances.
//
// The simulation hot path (internal/manet) knows every candidate
// receiver's squared distance d2 — that is what the spatial index and the
// in-range pre-filter operate on — yet the classic call chain
//
//	d := math.Sqrt(d2)
//	rx := radio.RxPower(model, tx, d)   // interface call -> Loss(d) -> log10(d/d0)
//
// pays a square root, an interface dispatch and a division per candidate
// before reaching the one transcendental that matters. Every supported
// model is (piecewise) logarithmic in d, so its loss can be fused
// algebraically into d2-space: for log-distance,
//
//	PL(d) = RefLoss + 10·n·log10(d/d0) = RefLoss + 5·n·log10(d2/d0²)
//
// which removes the square root entirely and turns the division into a
// precomputed multiply. The same rewrite covers Friis (a log-distance
// model with exponent 2 around lambda/4pi), the two-ray ground model
// (free space below the crossover, slope-4 beyond) and the three-slope
// log-distance model — each becomes one to three (d2-breakpoint, base
// loss, d2-space slope) segments evaluated without interface dispatch.
//
// The kernel also precomputes the receiver-sensitivity cutoff as a
// d2-space threshold (CutoffD2), so out-of-range candidates are rejected
// by a single comparison and never touch a transcendental, and offers a
// batched entry point (RxPowerInto) that converts a whole candidate slice
// in one call.
//
// # Exactness
//
// The fused expressions are algebraically identical to the reference
// Model.Loss path but not bit-identical: log10(sqrt(x)) and ½·log10(x)
// round differently in the last units of the mantissa. FuzzKernelVsReference
// holds the two within a ULP-scaled bound across all four models, and the
// evaluation stack threads an exactness gate (manet.Config.ExactPhysics,
// eval.WithExactPhysics) that swaps in NewExactKernel — the reference
// per-call physics behind the same API — for paper-exact reproduction
// runs. The golden-metrics corpus in internal/eval records both arms.
package radio

import "math"

// kernel kinds: how RxPower2 evaluates the loss.
const (
	kernelExact   uint8 = iota // delegate to Model.Loss(sqrt(d2))
	kernelFused                // piecewise-log segments in d2-space
	kernelFusedE0              // fused, but a zero-budget link is unreachable (Friis/TwoRay RangeFor semantics)
)

// kernelMaxSegments bounds the piecewise representation: the largest
// supported model (ThreeLogDistance) has three log slopes.
const kernelMaxSegments = 3

// ln10 is the natural log of 10, used to turn 10^x into the cheaper
// exp(x·ln10) in CutoffD2.
const ln10 = 2.302585092994045684017991454684364208

// Kernel is a path-loss model compiled for the simulation hot path: it
// computes reception powers directly from squared distances, without
// square roots, divisions or interface dispatch (see the package comment
// of this file). Build one with NewKernel (the fused fast form) or
// NewExactKernel (reference per-call physics behind the same API); the
// zero Kernel is not valid.
//
// A Kernel is immutable after construction and safe for concurrent use.
type Kernel struct {
	model Model
	kind  uint8
	nseg  int8
	// Piecewise representation (kind != kernelExact): segment i covers
	// d2 in (break2[i], break2[i+1]] (the last segment is unbounded) with
	//
	//	loss2(d2) = base[i] + slope5[i] · log10(d2 · invRef2[i])
	//
	// where invRef2[i] = 1/break2[i], so base[i] is the loss at the
	// segment start. d2 <= break2[0] clamps to base[0] (the reference
	// region).
	break2  [kernelMaxSegments]float64
	base    [kernelMaxSegments]float64
	slope5  [kernelMaxSegments]float64
	invRef2 [kernelMaxSegments]float64
}

// NewKernel compiles m into its fused d2-space form. The four models of
// this package (LogDistance, Friis, TwoRayGround, ThreeLogDistance) fuse;
// any other Model falls back to exact per-call evaluation, so NewKernel
// is always safe to use.
func NewKernel(m Model) Kernel {
	switch pm := m.(type) {
	case LogDistance:
		k := Kernel{model: m, kind: kernelFused, nseg: 1}
		k.setSegment(0, pm.ReferenceDistance*pm.ReferenceDistance, pm.ReferenceLoss, 5*pm.Exponent)
		return k
	case Friis:
		// Free space is log-distance with exponent 2 around the 0 dB
		// reference distance lambda/(4 pi); RangeFor treats a zero budget
		// as unreachable, hence the E0 kind.
		d0 := pm.ReferenceDistance()
		k := Kernel{model: m, kind: kernelFusedE0, nseg: 1}
		k.setSegment(0, d0*d0, 0, 10)
		return k
	case TwoRayGround:
		if pm.HeightM <= 0 || pm.Crossover <= 0 {
			// Degenerate geometry collapses the model to clamped free
			// space (see TwoRayGround.Loss).
			k := NewKernel(pm.Friis)
			k.model = m
			return k
		}
		d0 := pm.Friis.ReferenceDistance()
		cross2 := pm.Crossover * pm.Crossover
		k := Kernel{model: m, kind: kernelFusedE0, nseg: 2}
		if pm.Crossover <= d0 {
			// The free-space region sits entirely inside the Friis clamp
			// (tiny antennas): flat 0 dB up to the crossover, then the
			// fourth-power law anchored at the reference's own value
			// there — the reference formula is discontinuous at such a
			// crossover, and the kernel mirrors it region for region.
			k.setSegment(0, cross2, 0, 0)
			k.setSegment(1, cross2, 40*math.Log10(pm.Crossover)-20*math.Log10(pm.HeightM*pm.HeightM), 20)
			return k
		}
		k.setSegment(0, d0*d0, 0, 10)
		// Beyond the crossover: PL = 40·log10(d) - 20·log10(h²)
		//                          = PL(crossover) + 20·log10(d2/crossover²).
		k.setSegment(1, cross2, pm.Friis.Loss(pm.Crossover), 20)
		return k
	case ThreeLogDistance:
		k := Kernel{model: m, kind: kernelFused, nseg: 3}
		k.setSegment(0, pm.Distance0*pm.Distance0, pm.ReferenceLoss, 5*pm.Exponent0)
		k.setSegment(1, pm.Distance1*pm.Distance1, pm.lossAt1(), 5*pm.Exponent1)
		k.setSegment(2, pm.Distance2*pm.Distance2, pm.lossAt2(), 5*pm.Exponent2)
		return k
	default:
		return NewExactKernel(m)
	}
}

// NewExactKernel wraps m behind the Kernel API with reference per-call
// physics: RxPower2(tx, d2) is exactly RxPower(m, tx, sqrt(d2)), bit for
// bit, and CutoffD2 is the square of m.RangeFor. It is the ExactPhysics
// arm of the evaluation stack's exactness gate.
func NewExactKernel(m Model) Kernel {
	return Kernel{model: m, kind: kernelExact}
}

// setSegment installs one piecewise-log segment (see Kernel).
func (k *Kernel) setSegment(i int, break2, base, slope5 float64) {
	k.break2[i] = break2
	k.base[i] = base
	k.slope5[i] = slope5
	if break2 > 0 {
		k.invRef2[i] = 1 / break2
	}
}

// Model returns the path-loss model the kernel was compiled from.
func (k *Kernel) Model() Model { return k.model }

// Exact reports whether the kernel evaluates the reference per-call
// physics (NewExactKernel, or a model NewKernel cannot fuse) rather than
// the fused d2-space form.
func (k *Kernel) Exact() bool { return k.kind == kernelExact }

// RxPower2 returns the reception power in dBm of a transmission at txDBm
// heard over SQUARED distance d2 (m²). For an exact kernel this is
// bit-identical to RxPower(model, txDBm, sqrt(d2)); for a fused kernel it
// is the same quantity within a ULP-scaled bound (FuzzKernelVsReference),
// computed without the square root.
func (k *Kernel) RxPower2(txDBm, d2 float64) float64 {
	if k.kind == kernelExact {
		return txDBm - k.model.Loss(math.Sqrt(d2))
	}
	return txDBm - k.loss2(d2)
}

// loss2 evaluates the fused piecewise-log loss at squared distance d2.
func (k *Kernel) loss2(d2 float64) float64 {
	if d2 <= k.break2[0] {
		return k.base[0]
	}
	i := 0
	for i+1 < int(k.nseg) && d2 > k.break2[i+1] {
		i++
	}
	return k.base[i] + k.slope5[i]*math.Log10(d2*k.invRef2[i])
}

// RxPowerInto converts a whole slice of squared distances in one call:
// it fills dst (reusing its backing array when large enough, allocating
// otherwise) with RxPower2(txDBm, d2) for every d2 of d2s and returns it.
// This is the batch entry point the manet data cascade uses to convert
// every candidate receiver of a transmission — and every deferred
// neighbor-table row — in one tight loop.
func (k *Kernel) RxPowerInto(dst []float64, txDBm float64, d2s []float64) []float64 {
	if cap(dst) < len(d2s) {
		dst = make([]float64, len(d2s))
	} else {
		dst = dst[:len(d2s)]
	}
	if k.kind == kernelExact {
		for i, d2 := range d2s {
			dst[i] = txDBm - k.model.Loss(math.Sqrt(d2))
		}
		return dst
	}
	if k.nseg == 1 {
		// The common case (LogDistance, Friis) with the segment constants
		// hoisted out of the loop, unrolled 4-wide: the Log10 evaluations
		// of the four lanes are independent, so the unroll exposes their
		// instruction-level parallelism and amortises the loop overhead
		// over a cache line of inputs. Each lane's expression shape must
		// match loss2 exactly so batched and per-call conversions are
		// bit-identical (the unroll only reorders independent elements,
		// never the operations within one element).
		b0, base0, slope, inv := k.break2[0], k.base[0], k.slope5[0], k.invRef2[0]
		flat := txDBm - base0
		n := len(d2s)
		i := 0
		for ; i+4 <= n; i += 4 {
			d2a, d2b, d2c, d2d := d2s[i], d2s[i+1], d2s[i+2], d2s[i+3]
			ra, rb, rc, rd := flat, flat, flat, flat
			if d2a > b0 {
				ra = txDBm - (base0 + slope*math.Log10(d2a*inv))
			}
			if d2b > b0 {
				rb = txDBm - (base0 + slope*math.Log10(d2b*inv))
			}
			if d2c > b0 {
				rc = txDBm - (base0 + slope*math.Log10(d2c*inv))
			}
			if d2d > b0 {
				rd = txDBm - (base0 + slope*math.Log10(d2d*inv))
			}
			dst[i], dst[i+1], dst[i+2], dst[i+3] = ra, rb, rc, rd
		}
		for ; i < n; i++ {
			if d2 := d2s[i]; d2 > b0 {
				dst[i] = txDBm - (base0 + slope*math.Log10(d2*inv))
			} else {
				dst[i] = flat
			}
		}
		return dst
	}
	for i, d2 := range d2s {
		dst[i] = txDBm - k.loss2(d2)
	}
	return dst
}

// CutoffD2 returns the squared-distance admission threshold for a
// transmission at txDBm against a receiver floor of rxDBm (typically the
// sensitivity): candidates with d2 above the threshold cannot reach the
// floor and can be rejected by one comparison, with no transcendental
// evaluated. The threshold matches the kernel's own RxPower2 within
// floating-point rounding of the boundary, so callers deciding admission
// must still apply the rx >= floor check to candidates under the cutoff —
// exactly the structure of the reference path, whose pre-filter is
// RangeFor squared. For an exact kernel the threshold IS RangeFor
// squared, bit for bit.
func (k *Kernel) CutoffD2(txDBm, rxDBm float64) float64 {
	budget := txDBm - rxDBm
	if k.kind == kernelExact {
		r := k.model.RangeFor(txDBm, rxDBm)
		return r * r
	}
	if k.kind == kernelFusedE0 {
		// Friis/TwoRay RangeFor semantics: a non-positive budget is
		// unreachable even though the clamped reference region has 0 loss.
		if budget <= k.base[0] {
			return 0
		}
	} else if budget < k.base[0] {
		return 0
	}
	i := int(k.nseg) - 1
	for i > 0 && budget < k.base[i] {
		i--
	}
	if k.slope5[i] <= 0 {
		// A flat segment either admits everything in it (budget >= base)
		// or nothing beyond; the next break bounds it.
		if i+1 < int(k.nseg) {
			return k.break2[i+1]
		}
		return math.Inf(1)
	}
	// Invert base[i] + slope5[i]·log10(d2/break2[i]) = budget, with 10^x
	// as exp(x·ln10) — cheaper than math.Pow and accurate to ~1 ulp.
	return k.break2[i] * math.Exp(ln10*(budget-k.base[i])/k.slope5[i])
}
