// Package radio models the physical-layer quantities the AEDB protocol
// reasons about: transmission powers in dBm, path-loss models, and link
// budgets.
//
// The paper evaluates AEDB with ns-3's 802.11 stack; the relevant defaults
// are reproduced here: a log-distance propagation-loss model with exponent
// 3.0 and 46.6777 dB reference loss at 1 m, a default transmission power of
// 16.02 dBm (Table II) and an energy-detection threshold (receiver
// sensitivity) of -96 dBm, which yields a maximum radio range of roughly
// 150 m — comfortably inside the 500 m x 500 m arena and consistent with
// the protocol's border-threshold domain of [-95, -70] dBm.
package radio

import "math"

// Physical constants and ns-3-compatible defaults.
const (
	// DefaultTxPowerDBm is the default transmission power (Table II).
	DefaultTxPowerDBm = 16.02
	// DefaultSensitivityDBm is the energy-detection threshold below which
	// a frame cannot be received (ns-3 802.11b default is approx -96 dBm).
	DefaultSensitivityDBm = -96.0
	// DefaultCaptureThresholdDB: a frame survives interference only if it
	// is at least this many dB stronger than every overlapping frame.
	DefaultCaptureThresholdDB = 10.0
	// MinTxPowerDBm is the lowest power a radio can be driven at when AEDB
	// reduces the transmission power.
	MinTxPowerDBm = -40.0
)

// DBmToMilliwatt converts a power level from dBm to milliwatts.
func DBmToMilliwatt(dbm float64) float64 { return math.Pow(10, dbm/10) }

// MilliwattToDBm converts a power level from milliwatts to dBm.
// It returns -Inf for non-positive inputs.
func MilliwattToDBm(mw float64) float64 {
	if mw <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(mw)
}

// Model is a deterministic path-loss model: Loss returns the attenuation
// in dB experienced over distance d (meters). Implementations must be
// monotonically non-decreasing in d.
type Model interface {
	// Loss returns the path loss in dB at distance d >= 0.
	Loss(d float64) float64
	// RangeFor returns the maximum distance at which a transmission at
	// txDBm is received at or above rxDBm.
	RangeFor(txDBm, rxDBm float64) float64
}

// LogDistance is the log-distance path-loss model
//
//	PL(d) = ReferenceLoss + 10 * Exponent * log10(d / ReferenceDistance)
//
// with PL(d) = ReferenceLoss for d <= ReferenceDistance. ns-3's
// LogDistancePropagationLossModel defaults (exponent 3, 46.6777 dB at 1 m)
// are provided by NewLogDistanceDefault.
type LogDistance struct {
	Exponent          float64
	ReferenceLoss     float64 // dB at ReferenceDistance
	ReferenceDistance float64 // meters
}

// NewLogDistanceDefault returns the ns-3 default log-distance model.
func NewLogDistanceDefault() LogDistance {
	return LogDistance{Exponent: 3.0, ReferenceLoss: 46.6777, ReferenceDistance: 1.0}
}

// Loss implements Model.
func (m LogDistance) Loss(d float64) float64 {
	if d <= m.ReferenceDistance {
		return m.ReferenceLoss
	}
	return m.ReferenceLoss + 10*m.Exponent*math.Log10(d/m.ReferenceDistance)
}

// RangeFor implements Model.
func (m LogDistance) RangeFor(txDBm, rxDBm float64) float64 {
	budget := txDBm - rxDBm // maximum tolerable loss
	if budget < m.ReferenceLoss {
		return 0
	}
	return m.ReferenceDistance * math.Pow(10, (budget-m.ReferenceLoss)/(10*m.Exponent))
}

// Friis is the free-space path-loss model PL(d) = 20 log10(4 pi d / lambda).
type Friis struct {
	WavelengthM float64
}

// NewFriis24GHz returns a Friis model at the 2.4 GHz WiFi wavelength.
func NewFriis24GHz() Friis { return Friis{WavelengthM: 0.125} }

// ReferenceDistance returns the distance lambda/(4 pi) at which the
// free-space loss is exactly 0 dB. Below it the raw Friis formula turns
// into a gain (negative loss, diverging to -Inf at d=0); Loss clamps
// there, the same way LogDistance clamps at its reference distance.
func (m Friis) ReferenceDistance() float64 { return m.WavelengthM / (4 * math.Pi) }

// Loss implements Model. The loss is clamped to 0 dB at and below
// ReferenceDistance, so d=0 (co-located transmitter and receiver) yields
// a finite received power of txDBm instead of +Inf.
func (m Friis) Loss(d float64) float64 {
	if d <= m.ReferenceDistance() {
		return 0
	}
	return 20 * math.Log10(4*math.Pi*d/m.WavelengthM)
}

// RangeFor implements Model.
func (m Friis) RangeFor(txDBm, rxDBm float64) float64 {
	budget := txDBm - rxDBm
	if budget <= 0 {
		return 0
	}
	return m.WavelengthM / (4 * math.Pi) * math.Pow(10, budget/20)
}

// TwoRayGround combines free-space loss below a crossover distance with a
// fourth-power law beyond it (flat-earth two-ray approximation with equal
// 1 m antenna heights).
type TwoRayGround struct {
	Friis     Friis
	Crossover float64 // meters
	HeightM   float64
}

// NewTwoRayGroundDefault returns a two-ray model with 1 m antennas at
// 2.4 GHz.
func NewTwoRayGroundDefault() TwoRayGround {
	f := NewFriis24GHz()
	h := 1.0
	return TwoRayGround{Friis: f, Crossover: 4 * math.Pi * h * h / f.WavelengthM, HeightM: h}
}

// Loss implements Model. Below the crossover distance the model is pure
// free space (with Friis's reference-distance clamp, so d=0 stays
// finite); beyond it the flat-earth fourth-power law applies. Degenerate
// geometry (HeightM <= 0 or Crossover <= 0) would make the fourth-power
// term -Inf/NaN, so the model falls back to the clamped free-space loss
// everywhere in that case.
func (m TwoRayGround) Loss(d float64) float64 {
	if d <= m.Crossover || m.HeightM <= 0 || m.Crossover <= 0 {
		return m.Friis.Loss(d)
	}
	// PL(d) = 40 log10(d) - 20 log10(ht*hr)
	return 40*math.Log10(d) - 20*math.Log10(m.HeightM*m.HeightM)
}

// RangeFor implements Model (numeric inversion by bisection).
func (m TwoRayGround) RangeFor(txDBm, rxDBm float64) float64 {
	budget := txDBm - rxDBm
	if budget <= 0 {
		return 0
	}
	lo, hi := 0.0, 1e6
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if m.Loss(mid) <= budget {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// ThreeLogDistance is the three-slope log-distance model (the shape of
// ns-3's ThreeLogDistancePropagationLossModel): piecewise log-distance
// attenuation with exponent Exponent0 on [Distance0, Distance1),
// Exponent1 on [Distance1, Distance2) and Exponent2 beyond Distance2,
// continuous at the breakpoints. Below Distance0 the loss clamps to
// ReferenceLoss, like LogDistance. Exponents must be non-negative and
// 0 < Distance0 < Distance1 < Distance2 for the model to be monotone.
type ThreeLogDistance struct {
	Exponent0, Exponent1, Exponent2 float64
	Distance0, Distance1, Distance2 float64 // meters
	ReferenceLoss                   float64 // dB at Distance0
}

// NewThreeLogDistanceDefault returns the ns-3 defaults: exponents
// 1.9/3.8/3.8 over breakpoints 1/200/500 m, with the same 46.6777 dB
// reference loss at 1 m the single-slope default uses.
func NewThreeLogDistanceDefault() ThreeLogDistance {
	return ThreeLogDistance{
		Exponent0: 1.9, Exponent1: 3.8, Exponent2: 3.8,
		Distance0: 1, Distance1: 200, Distance2: 500,
		ReferenceLoss: 46.6777,
	}
}

// lossAt1 returns the accumulated loss at Distance1 (the first breakpoint
// past the reference region).
func (m ThreeLogDistance) lossAt1() float64 {
	return m.ReferenceLoss + 10*m.Exponent0*math.Log10(m.Distance1/m.Distance0)
}

// lossAt2 returns the accumulated loss at Distance2.
func (m ThreeLogDistance) lossAt2() float64 {
	return m.lossAt1() + 10*m.Exponent1*math.Log10(m.Distance2/m.Distance1)
}

// Loss implements Model.
func (m ThreeLogDistance) Loss(d float64) float64 {
	switch {
	case d <= m.Distance0:
		return m.ReferenceLoss
	case d <= m.Distance1:
		return m.ReferenceLoss + 10*m.Exponent0*math.Log10(d/m.Distance0)
	case d <= m.Distance2:
		return m.lossAt1() + 10*m.Exponent1*math.Log10(d/m.Distance1)
	default:
		return m.lossAt2() + 10*m.Exponent2*math.Log10(d/m.Distance2)
	}
}

// RangeFor implements Model (piecewise analytic inversion).
func (m ThreeLogDistance) RangeFor(txDBm, rxDBm float64) float64 {
	budget := txDBm - rxDBm
	switch {
	case budget < m.ReferenceLoss:
		return 0
	case budget <= m.lossAt1():
		if m.Exponent0 == 0 {
			return m.Distance1
		}
		return m.Distance0 * math.Pow(10, (budget-m.ReferenceLoss)/(10*m.Exponent0))
	case budget <= m.lossAt2():
		if m.Exponent1 == 0 {
			return m.Distance2
		}
		return m.Distance1 * math.Pow(10, (budget-m.lossAt1())/(10*m.Exponent1))
	default:
		if m.Exponent2 == 0 {
			return math.Inf(1)
		}
		return m.Distance2 * math.Pow(10, (budget-m.lossAt2())/(10*m.Exponent2))
	}
}

// RxPower returns the reception power in dBm for a transmission at txDBm
// over distance d under model m.
func RxPower(m Model, txDBm, d float64) float64 { return txDBm - m.Loss(d) }

// TxPowerToReach returns the transmission power needed so that a receiver
// whose beacon (sent at beaconTxDBm) was received at beaconRxDBm hears us
// at targetRxDBm. This is AEDB's cross-layer power estimate: the channel
// loss is inferred from the beacon budget and assumed symmetric.
func TxPowerToReach(beaconTxDBm, beaconRxDBm, targetRxDBm float64) float64 {
	loss := beaconTxDBm - beaconRxDBm
	return targetRxDBm + loss
}

// ClampTxPower bounds a requested power to the radio's feasible interval
// [MinTxPowerDBm, maxDBm].
func ClampTxPower(p, maxDBm float64) float64 {
	if p > maxDBm {
		return maxDBm
	}
	if p < MinTxPowerDBm {
		return MinTxPowerDBm
	}
	return p
}

// TxEnergyMilliJoule returns the radiated energy in millijoules of a
// transmission at power dBm lasting duration seconds. (The paper's energy
// *objective* instead sums dBm levels — see internal/eval — but the
// physical account is kept for reporting.)
func TxEnergyMilliJoule(dbm, duration float64) float64 {
	return DBmToMilliwatt(dbm) * duration
}
