package radio_test

import (
	"fmt"

	"aedbmls/internal/radio"
)

// ExampleLogDistance reproduces the paper's link budget: ns-3's default
// log-distance model, the Table II transmission power and the 802.11b
// energy-detection threshold give a maximum radio range of about 150 m.
func ExampleLogDistance() {
	m := radio.NewLogDistanceDefault()
	fmt.Printf("loss at 1 m:   %.4f dB\n", m.Loss(1))
	fmt.Printf("loss at 100 m: %.4f dB\n", m.Loss(100))
	fmt.Printf("rx at 100 m:   %.4f dBm\n", radio.RxPower(m, radio.DefaultTxPowerDBm, 100))
	fmt.Printf("max range:     %.1f m\n", m.RangeFor(radio.DefaultTxPowerDBm, radio.DefaultSensitivityDBm))
	// Output:
	// loss at 1 m:   46.6777 dB
	// loss at 100 m: 106.6777 dB
	// rx at 100 m:   -90.6577 dBm
	// max range:     150.7 m
}

// ExampleKernel shows the fused fast path the simulation hot loop uses:
// reception powers computed straight from squared distances (no square
// root), a whole candidate slice per call, with the sensitivity cutoff
// precomputed as a d²-space threshold.
func ExampleKernel() {
	k := radio.NewKernel(radio.NewLogDistanceDefault())
	d2s := []float64{50 * 50, 100 * 100, 200 * 200}
	rxs := k.RxPowerInto(nil, radio.DefaultTxPowerDBm, d2s)
	cut := k.CutoffD2(radio.DefaultTxPowerDBm, radio.DefaultSensitivityDBm)
	for i, d2 := range d2s {
		fmt.Printf("d²=%6.0f m²: rx %8.4f dBm, in range: %v\n", d2, rxs[i], d2 <= cut)
	}
	// Output:
	// d²=  2500 m²: rx -81.6268 dBm, in range: true
	// d²= 10000 m²: rx -90.6577 dBm, in range: true
	// d²= 40000 m²: rx -99.6886 dBm, in range: false
}
