package radio

import (
	"math"
	"testing"

	"aedbmls/internal/rng"
)

// fourModels returns one default-configured instance of every path-loss
// model in the package.
func fourModels() []Model {
	return []Model{
		NewLogDistanceDefault(),
		NewFriis24GHz(),
		NewTwoRayGroundDefault(),
		NewThreeLogDistanceDefault(),
	}
}

// ulpScaledBound returns the comparison tolerance for the fused kernel
// against the reference physics: a few ULPs of the largest magnitude
// involved in the expression (the loss dominates the error budget, since
// both pipelines round it through one transcendental and two or three
// arithmetic ops).
func ulpScaledBound(vals ...float64) float64 {
	scale := 1.0
	for _, v := range vals {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	// Two error terms: ~8 ULPs of the dominant magnitude from the
	// arithmetic around the log10, plus an absolute term from the log's
	// argument rounding — a relative perturbation delta of the argument
	// shifts log10 by delta/ln10 regardless of the result's size, and the
	// d2-space slopes multiply it by up to ~40.
	return 8*scale*0x1p-52 + 1e-13
}

func TestKernelMatchesReferenceWithinULPs(t *testing.T) {
	r := rng.New(42)
	for _, m := range fourModels() {
		k := NewKernel(m)
		if k.Exact() {
			t.Fatalf("%T: NewKernel fell back to exact evaluation", m)
		}
		for i := 0; i < 20000; i++ {
			d := r.Range(0, 1000)
			if i%17 == 0 {
				d = r.Range(0, 0.5) // stress the clamped reference region
			}
			tx := r.Range(MinTxPowerDBm, DefaultTxPowerDBm)
			ref := RxPower(m, tx, d)
			got := k.RxPower2(tx, d*d)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("%T: non-finite kernel rx at d=%v tx=%v: %v", m, d, tx, got)
			}
			if diff := math.Abs(got - ref); diff > ulpScaledBound(ref, tx-ref, tx) {
				t.Fatalf("%T: kernel rx %v vs reference %v at d=%v tx=%v (diff %g)", m, got, ref, d, tx, diff)
			}
		}
	}
}

func TestExactKernelBitIdentical(t *testing.T) {
	r := rng.New(7)
	for _, m := range fourModels() {
		k := NewExactKernel(m)
		if !k.Exact() {
			t.Fatalf("%T: NewExactKernel not exact", m)
		}
		for i := 0; i < 5000; i++ {
			d2 := r.Range(0, 1e6)
			tx := r.Range(MinTxPowerDBm, DefaultTxPowerDBm)
			if got, want := k.RxPower2(tx, d2), RxPower(m, tx, math.Sqrt(d2)); got != want {
				t.Fatalf("%T: exact kernel %v != reference %v at d2=%v", m, got, want, d2)
			}
		}
		// The exact cutoff IS RangeFor squared, bit for bit.
		if got, want := k.CutoffD2(DefaultTxPowerDBm, DefaultSensitivityDBm),
			func() float64 { rr := m.RangeFor(DefaultTxPowerDBm, DefaultSensitivityDBm); return rr * rr }(); got != want {
			t.Fatalf("%T: exact CutoffD2 %v != RangeFor^2 %v", m, got, want)
		}
	}
}

func TestRxPowerIntoMatchesPerCall(t *testing.T) {
	r := rng.New(99)
	for _, m := range fourModels() {
		for _, k := range []Kernel{NewKernel(m), NewExactKernel(m)} {
			d2s := make([]float64, 257)
			for i := range d2s {
				d2s[i] = r.Range(0, 1e5)
			}
			var buf []float64
			buf = k.RxPowerInto(buf, DefaultTxPowerDBm, d2s)
			if len(buf) != len(d2s) {
				t.Fatalf("%T: RxPowerInto returned %d values for %d inputs", m, len(buf), len(d2s))
			}
			for i, d2 := range d2s {
				if want := k.RxPower2(DefaultTxPowerDBm, d2); buf[i] != want {
					t.Fatalf("%T exact=%v: batched rx %v != per-call %v at d2=%v", m, k.Exact(), buf[i], want, d2)
				}
			}
			// Buffer reuse: a second call into the same backing array.
			again := k.RxPowerInto(buf[:0], DefaultTxPowerDBm, d2s[:10])
			if &again[0] != &buf[0] {
				t.Fatalf("%T: RxPowerInto reallocated a sufficient buffer", m)
			}
		}
	}
}

func TestCutoffD2EdgeCases(t *testing.T) {
	ld := NewLogDistanceDefault()
	k := NewKernel(ld)
	// Budget below the reference loss: nothing is reachable.
	if got := k.CutoffD2(-96, -20); got != 0 {
		t.Fatalf("impossible budget cutoff = %v, want 0", got)
	}
	// Budget exactly the reference loss admits the clamped region.
	tx := DefaultSensitivityDBm + ld.ReferenceLoss
	if got, want := k.CutoffD2(tx, DefaultSensitivityDBm), ld.ReferenceDistance*ld.ReferenceDistance; got != want {
		t.Fatalf("reference-loss budget cutoff = %v, want %v", got, want)
	}
	// Friis semantics: a zero budget is unreachable.
	kf := NewKernel(NewFriis24GHz())
	if got := kf.CutoffD2(-96, -96); got != 0 {
		t.Fatalf("zero-budget Friis cutoff = %v, want 0", got)
	}
	// The cutoff brackets the kernel's own sensitivity boundary.
	for _, m := range fourModels() {
		k := NewKernel(m)
		cut := k.CutoffD2(DefaultTxPowerDBm, DefaultSensitivityDBm)
		if cut <= 0 || math.IsInf(cut, 0) {
			t.Fatalf("%T: degenerate cutoff %v", m, cut)
		}
		inside := k.RxPower2(DefaultTxPowerDBm, cut*(1-1e-12))
		outside := k.RxPower2(DefaultTxPowerDBm, cut*(1+1e-12))
		if inside < DefaultSensitivityDBm-1e-9 {
			t.Fatalf("%T: rx just inside the cutoff = %v, below sensitivity", m, inside)
		}
		if outside > DefaultSensitivityDBm+1e-9 {
			t.Fatalf("%T: rx just outside the cutoff = %v, above sensitivity", m, outside)
		}
	}
}

// TestCutoffNeverAdmitsBeyondReference is the admission property test of
// the d2-space cutoff: over random committees at every paper density
// (and every model), a candidate the fused kernel path admits — under
// the cutoff AND at or above the sensitivity per the kernel's own rx —
// must also be admitted by the reference path (RangeFor-squared
// pre-filter plus the reference rx check). The kernel may only ever
// REJECT a receiver the reference path would admit at the rounding
// boundary, never admit one it rejects; coverage can therefore never be
// inflated by the fast physics.
func TestCutoffNeverAdmitsBeyondReference(t *testing.T) {
	const arena = 500.0
	committees := map[int]int{100: 25, 200: 50, 300: 75}
	for _, m := range fourModels() {
		k := NewKernel(m)
		for density, nodes := range committees {
			for seed := uint64(1); seed <= 8; seed++ {
				r := rng.New(seed*1000 + uint64(density))
				xs := make([]float64, nodes)
				ys := make([]float64, nodes)
				for i := range xs {
					xs[i], ys[i] = r.Range(0, arena), r.Range(0, arena)
				}
				// Transmission powers as AEDB draws them: the default
				// power plus adapted reductions across the legal range.
				powers := []float64{DefaultTxPowerDBm, r.Range(MinTxPowerDBm, DefaultTxPowerDBm), r.Range(-10, 10)}
				for _, tx := range powers {
					cut := k.CutoffD2(tx, DefaultSensitivityDBm)
					reach := m.RangeFor(tx, DefaultSensitivityDBm)
					r2 := reach * reach
					for i := 0; i < nodes; i++ {
						for j := i + 1; j < nodes; j++ {
							dx, dy := xs[i]-xs[j], ys[i]-ys[j]
							d2 := dx*dx + dy*dy
							kernelAdmits := d2 <= cut && k.RxPower2(tx, d2) >= DefaultSensitivityDBm
							refAdmits := d2 <= r2 && RxPower(m, tx, math.Sqrt(d2)) >= DefaultSensitivityDBm
							if kernelAdmits && !refAdmits {
								t.Fatalf("%T d%d seed %d tx=%v: kernel admits d2=%v (cut %v) but reference rejects (r2 %v)",
									m, density, seed, tx, d2, cut, r2)
							}
						}
					}
				}
			}
		}
	}
}

// BenchmarkRxPowerKernel / BenchmarkRxPowerReference back the cutoff and
// fusion claims with numbers: the fused kernel converts a candidate slice
// without square roots, divisions or interface dispatch.
func BenchmarkRxPowerKernel(b *testing.B) {
	k := NewKernel(NewLogDistanceDefault())
	r := rng.New(1)
	d2s := make([]float64, 64)
	for i := range d2s {
		d2s[i] = r.Range(1, 150*150)
	}
	var buf []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = k.RxPowerInto(buf, DefaultTxPowerDBm, d2s)
	}
	if buf[0] > 0 {
		b.Fatal("unexpected rx")
	}
}

func BenchmarkRxPowerReference(b *testing.B) {
	m := Model(NewLogDistanceDefault())
	r := rng.New(1)
	d2s := make([]float64, 64)
	for i := range d2s {
		d2s[i] = r.Range(1, 150*150)
	}
	buf := make([]float64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, d2 := range d2s {
			buf[j] = RxPower(m, DefaultTxPowerDBm, math.Sqrt(d2))
		}
	}
	if buf[0] > 0 {
		b.Fatal("unexpected rx")
	}
}

func BenchmarkCutoffD2(b *testing.B) {
	k := NewKernel(NewLogDistanceDefault())
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += k.CutoffD2(DefaultTxPowerDBm, DefaultSensitivityDBm)
	}
	_ = sink
}

func BenchmarkRangeFor(b *testing.B) {
	m := Model(NewLogDistanceDefault())
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := m.RangeFor(DefaultTxPowerDBm, DefaultSensitivityDBm)
		sink += r * r
	}
	_ = sink
}
