package radio

import (
	"math"
	"testing"
)

// sanitizeFuzz maps raw fuzz floats into a physically meaningful
// parameter band (finite, positive where needed, ordered breakpoints).
// Returning ok=false skips inputs that cannot be normalised.
func sanitizeFuzz(v, lo, hi float64) (float64, bool) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, false
	}
	// Fold into [lo, hi] smoothly enough for the fuzzer to explore it.
	span := hi - lo
	f := math.Mod(math.Abs(v), span)
	return lo + f, true
}

// FuzzKernelVsReference is the differential wall of the fused physics
// kernel: for fuzzed model parameters, transmission powers and squared
// distances across ALL FOUR path-loss models, the fused RxPower2 must
// stay within a ULP-scaled bound of the reference sqrt+Loss pipeline,
// the batched RxPowerInto must match the per-call RxPower2 bit-for-bit,
// the exact kernel must match the reference bit-for-bit, and the
// d2-space cutoff must never admit a squared distance whose kernel rx
// falls below the floor by more than the same bound. (End-to-end metric
// equality of the two physics arms is held separately, on the golden
// corpus, by internal/eval's TestKernelPhysicsMatchesExactOnGoldenCorpus.)
func FuzzKernelVsReference(f *testing.F) {
	f.Add(3.0, 46.6777, 1.0, 0.125, 1.0, 16.02, 73.0*73.0)
	f.Add(2.7, 40.0, 2.0, 0.3, 0.5, -10.0, 1.0)
	f.Add(1.9, 46.6777, 1.0, 0.125, 2.0, 0.0, 250.0*250.0)
	f.Add(4.0, 80.0, 0.5, 0.05, 3.0, -40.0, 0.0)
	f.Add(3.0, 46.6777, 1.0, 0.125, 1.0, 16.02, 0.25)
	f.Fuzz(func(t *testing.T, exponent, refLoss, refDist, wavelength, height, txRaw, d2Raw float64) {
		exponent, ok1 := sanitizeFuzz(exponent, 0, 6)
		refLoss, ok2 := sanitizeFuzz(refLoss, 0, 120)
		refDist, ok3 := sanitizeFuzz(refDist, 0.05, 20)
		wavelength, ok4 := sanitizeFuzz(wavelength, 0.01, 2)
		height, ok5 := sanitizeFuzz(height, 0, 10)
		tx, ok6 := sanitizeFuzz(txRaw, MinTxPowerDBm, 30)
		d2, ok7 := sanitizeFuzz(d2Raw, 0, 1e7)
		if !(ok1 && ok2 && ok3 && ok4 && ok5 && ok6 && ok7) {
			t.Skip()
		}
		friis := Friis{WavelengthM: wavelength}
		models := []Model{
			LogDistance{Exponent: exponent, ReferenceLoss: refLoss, ReferenceDistance: refDist},
			friis,
			TwoRayGround{Friis: friis, Crossover: 4 * math.Pi * height * height / wavelength, HeightM: height},
			ThreeLogDistance{
				Exponent0: exponent, Exponent1: exponent * 1.5, Exponent2: exponent * 2,
				Distance0: refDist, Distance1: refDist * 50, Distance2: refDist * 200,
				ReferenceLoss: refLoss,
			},
		}
		for _, m := range models {
			ref := RxPower(m, tx, math.Sqrt(d2))
			fused := NewKernel(m)
			got := fused.RxPower2(tx, d2)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("%T: non-finite fused rx %v at tx=%v d2=%v", m, got, tx, d2)
			}
			loss := tx - ref
			if diff := math.Abs(got - ref); diff > ulpScaledBound(ref, loss, tx) {
				t.Fatalf("%T: fused rx %v vs reference %v (diff %g) at tx=%v d2=%v", m, got, ref, diff, tx, d2)
			}
			if batched := fused.RxPowerInto(nil, tx, []float64{d2}); batched[0] != got {
				t.Fatalf("%T: batched rx %v != per-call rx %v", m, batched[0], got)
			}
			exact := NewExactKernel(m)
			if ex := exact.RxPower2(tx, d2); ex != ref {
				t.Fatalf("%T: exact kernel %v != reference %v", m, ex, ref)
			}
			// Admission consistency: strictly under the cutoff the kernel
			// rx may fall below the floor only by boundary rounding. (At
			// the boundary itself — e.g. d2 = cut = 0 for an unreachable
			// budget — the caller's rx >= floor check decides, exactly as
			// it does on the reference path.)
			cut := fused.CutoffD2(tx, DefaultSensitivityDBm)
			if d2 < cut && got < DefaultSensitivityDBm {
				if diff := DefaultSensitivityDBm - got; diff > ulpScaledBound(got, loss, tx) {
					t.Fatalf("%T: cutoff %v admits d2=%v with rx %v well below the floor", m, cut, d2, got)
				}
			}
		}
	})
}
