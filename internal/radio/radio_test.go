package radio

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDBmMilliwattKnownValues(t *testing.T) {
	cases := []struct{ dbm, mw float64 }{
		{0, 1}, {10, 10}, {20, 100}, {-10, 0.1}, {30, 1000},
	}
	for _, c := range cases {
		if got := DBmToMilliwatt(c.dbm); math.Abs(got-c.mw) > 1e-9*c.mw {
			t.Errorf("DBmToMilliwatt(%v) = %v, want %v", c.dbm, got, c.mw)
		}
		if got := MilliwattToDBm(c.mw); math.Abs(got-c.dbm) > 1e-9 {
			t.Errorf("MilliwattToDBm(%v) = %v, want %v", c.mw, got, c.dbm)
		}
	}
}

func TestDBmRoundTrip(t *testing.T) {
	check := func(dbm float64) bool {
		if math.IsNaN(dbm) || math.Abs(dbm) > 200 {
			return true
		}
		back := MilliwattToDBm(DBmToMilliwatt(dbm))
		return math.Abs(back-dbm) < 1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMilliwattToDBmNonPositive(t *testing.T) {
	if !math.IsInf(MilliwattToDBm(0), -1) || !math.IsInf(MilliwattToDBm(-1), -1) {
		t.Fatal("non-positive power should map to -Inf dBm")
	}
}

func TestLogDistanceMonotone(t *testing.T) {
	m := NewLogDistanceDefault()
	prev := m.Loss(0.1)
	for d := 1.0; d < 1000; d *= 1.5 {
		cur := m.Loss(d)
		if cur < prev {
			t.Fatalf("loss decreased at d=%v", d)
		}
		prev = cur
	}
}

func TestLogDistanceReferenceRegion(t *testing.T) {
	m := NewLogDistanceDefault()
	if m.Loss(0.5) != m.ReferenceLoss || m.Loss(1) != m.ReferenceLoss {
		t.Fatal("loss below reference distance should equal reference loss")
	}
	// One decade beyond the reference adds 10*exponent dB.
	if got := m.Loss(10) - m.Loss(1); math.Abs(got-30) > 1e-9 {
		t.Fatalf("decade loss = %v, want 30", got)
	}
}

func TestDefaultRangeMatchesPaperEnvelope(t *testing.T) {
	// 16.02 dBm with the ns-3 default log-distance model and -96 dBm
	// sensitivity must give a usable MANET range (around 150 m), well
	// inside the 500 m arena.
	m := NewLogDistanceDefault()
	r := m.RangeFor(DefaultTxPowerDBm, DefaultSensitivityDBm)
	if r < 100 || r > 200 {
		t.Fatalf("default radio range = %.1f m, want within [100, 200]", r)
	}
}

// TestModelsFiniteAtShortRange pins the short-range clamping contract of
// all four models: at d=0 and anywhere below the model's reference
// distance, the loss is finite, non-negative and equal to the clamped
// reference-region value — no -Inf "gain" from the raw Friis formula, no
// NaN from degenerate two-ray geometry.
func TestModelsFiniteAtShortRange(t *testing.T) {
	cases := []struct {
		name    string
		m       Model
		refDist float64
		refLoss float64
	}{
		{"log-distance", NewLogDistanceDefault(), 1.0, 46.6777},
		{"friis", NewFriis24GHz(), NewFriis24GHz().ReferenceDistance(), 0},
		{"two-ray", NewTwoRayGroundDefault(), NewFriis24GHz().ReferenceDistance(), 0},
		{"three-log-distance", NewThreeLogDistanceDefault(), 1.0, 46.6777},
	}
	for _, c := range cases {
		for _, d := range []float64{0, c.refDist / 4, c.refDist / 2, c.refDist} {
			got := c.m.Loss(d)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Errorf("%s: Loss(%v) = %v, want finite", c.name, d, got)
			}
			if got != c.refLoss {
				t.Errorf("%s: Loss(%v) = %v, want clamped reference loss %v", c.name, d, got, c.refLoss)
			}
			if got < 0 {
				t.Errorf("%s: negative loss %v at d=%v (a short-range gain)", c.name, got, d)
			}
		}
	}
	// Degenerate two-ray geometry must stay finite everywhere, including
	// past the (collapsed) crossover.
	degenerate := TwoRayGround{Friis: NewFriis24GHz(), Crossover: 0, HeightM: 0}
	for _, d := range []float64{0, 0.001, 1, 100} {
		if got := degenerate.Loss(d); math.IsNaN(got) || math.IsInf(got, 0) || got < 0 {
			t.Errorf("degenerate two-ray: Loss(%v) = %v, want finite and non-negative", d, got)
		}
	}
}

func TestRangeForInvertsLoss(t *testing.T) {
	models := []Model{NewLogDistanceDefault(), NewFriis24GHz(), NewTwoRayGroundDefault(), NewThreeLogDistanceDefault()}
	for _, m := range models {
		for _, tx := range []float64{16.02, 0, -20} {
			d := m.RangeFor(tx, -96)
			if d <= 0 {
				continue
			}
			rx := RxPower(m, tx, d)
			if math.Abs(rx-(-96)) > 0.01 {
				t.Errorf("%T: rx at RangeFor distance = %v, want -96", m, rx)
			}
			// Slightly beyond the range the signal must be below threshold.
			if beyond := RxPower(m, tx, d*1.01); beyond > -96 {
				t.Errorf("%T: rx beyond range = %v, want < -96", m, beyond)
			}
		}
	}
}

func TestRangeForImpossibleBudget(t *testing.T) {
	m := NewLogDistanceDefault()
	if r := m.RangeFor(-96, -20); r != 0 {
		t.Fatalf("impossible budget should give range 0, got %v", r)
	}
}

func TestFriisKnownLoss(t *testing.T) {
	m := NewFriis24GHz()
	// At 1 m and lambda = 0.125 m: 20*log10(4*pi/0.125) = 40.05 dB.
	if got := m.Loss(1); math.Abs(got-40.05) > 0.01 {
		t.Fatalf("Friis loss at 1 m = %v, want approx 40.05", got)
	}
}

func TestTwoRayContinuityAtCrossover(t *testing.T) {
	m := NewTwoRayGroundDefault()
	below := m.Loss(m.Crossover * 0.999)
	above := m.Loss(m.Crossover * 1.001)
	if math.Abs(below-above) > 1.0 {
		t.Fatalf("two-ray discontinuity at crossover: %v vs %v", below, above)
	}
}

func TestTxPowerToReach(t *testing.T) {
	// A beacon sent at 16 dBm arriving at -80 dBm implies 96 dB loss;
	// delivering -96 dBm through the same channel needs 0 dBm.
	got := TxPowerToReach(16, -80, -96)
	if math.Abs(got-0) > 1e-9 {
		t.Fatalf("TxPowerToReach = %v, want 0", got)
	}
}

func TestTxPowerToReachRecoversBeaconPower(t *testing.T) {
	check := func(rx float64) bool {
		if math.IsNaN(rx) || rx < -96 || rx > 16 {
			return true
		}
		// Asking to reach the beacon's own rx level returns the beacon
		// power itself.
		return math.Abs(TxPowerToReach(16.02, rx, rx)-16.02) < 1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClampTxPower(t *testing.T) {
	if got := ClampTxPower(20, 16.02); got != 16.02 {
		t.Fatalf("over-max clamp = %v", got)
	}
	if got := ClampTxPower(-100, 16.02); got != MinTxPowerDBm {
		t.Fatalf("under-min clamp = %v", got)
	}
	if got := ClampTxPower(3, 16.02); got != 3 {
		t.Fatalf("in-range clamp = %v", got)
	}
}

func TestTxEnergy(t *testing.T) {
	// 10 dBm = 10 mW for 0.5 s -> 5 mJ.
	if got := TxEnergyMilliJoule(10, 0.5); math.Abs(got-5) > 1e-9 {
		t.Fatalf("TxEnergyMilliJoule = %v, want 5", got)
	}
	// Energy grows with power.
	if TxEnergyMilliJoule(16, 1) <= TxEnergyMilliJoule(0, 1) {
		t.Fatal("energy not monotone in power")
	}
}
