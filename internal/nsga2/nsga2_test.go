package nsga2

import (
	"math"
	"testing"

	"aedbmls/internal/benchproblems"
	"aedbmls/internal/indicators"
	"aedbmls/internal/moo"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.PopSize = 3
	if bad.Validate() == nil {
		t.Error("pop 3 accepted")
	}
	bad = DefaultConfig()
	bad.PopSize = 21
	if bad.Validate() == nil {
		t.Error("odd pop accepted")
	}
	bad = DefaultConfig()
	bad.Evaluations = 10
	if bad.Validate() == nil {
		t.Error("budget below pop accepted")
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.PopSize != 100 || cfg.Evaluations != 10000 {
		t.Fatalf("paper budget wrong: %+v", cfg)
	}
}

func TestOptimizeZDT1Converges(t *testing.T) {
	p := benchproblems.ZDT1(6)
	cfg := Config{PopSize: 40, Evaluations: 4000, Pc: 0.9, EtaC: 20, EtaM: 20, Seed: 1}
	res, err := Optimize(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	if res.Evaluations > int64(cfg.Evaluations) {
		t.Fatalf("overspent: %d > %d", res.Evaluations, cfg.Evaluations)
	}
	// Convergence: IGD to the true front must be small (raw units; the
	// ZDT1 front spans [0,1]^2).
	var pts [][]float64
	for _, s := range res.Front {
		pts = append(pts, s.F)
	}
	igd := indicators.IGD(pts, benchproblems.ZDT1Front(101))
	if igd > 0.05 {
		t.Fatalf("IGD = %v, want < 0.05 after 4000 evaluations", igd)
	}
}

func TestOptimizeConstrainedFrontFeasible(t *testing.T) {
	p := benchproblems.ConstrainedSchaffer()
	cfg := TestConfig()
	cfg.Evaluations = 600
	cfg.Seed = 2
	res, err := Optimize(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	for _, s := range res.Front {
		if !s.Feasible() {
			t.Fatalf("infeasible front member %v", s)
		}
		if s.X[0] < 0.5-1e-9 {
			t.Fatalf("front member violates constraint: x=%v", s.X[0])
		}
	}
}

func TestOptimizeDeterministic(t *testing.T) {
	p := benchproblems.Schaffer()
	cfg := TestConfig()
	cfg.Seed = 3
	r1, err := Optimize(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Optimize(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Front) != len(r2.Front) {
		t.Fatalf("front sizes differ: %d vs %d", len(r1.Front), len(r2.Front))
	}
	for i := range r1.Front {
		if !moo.EqualF(r1.Front[i], r2.Front[i]) {
			t.Fatal("same-seed runs diverged")
		}
	}
}

func TestSeedsProduceDifferentRuns(t *testing.T) {
	p := benchproblems.ZDT1(4)
	cfg := TestConfig()
	cfg.Seed = 4
	r1, _ := Optimize(p, cfg)
	cfg.Seed = 5
	r2, _ := Optimize(p, cfg)
	same := len(r1.Front) == len(r2.Front)
	if same {
		for i := range r1.Front {
			if !moo.EqualF(r1.Front[i], r2.Front[i]) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical fronts")
	}
}

func TestEnvironmentalSelection(t *testing.T) {
	mk := func(f0, f1 float64) *moo.Solution {
		return &moo.Solution{F: []float64{f0, f1}}
	}
	// Front 0: three points; front 1: two dominated points.
	merged := []*moo.Solution{
		mk(0, 1), mk(0.5, 0.5), mk(1, 0),
		mk(2, 2), mk(3, 3),
	}
	out := environmentalSelection(merged, 3)
	if len(out) != 3 {
		t.Fatalf("selected %d, want 3", len(out))
	}
	for _, s := range out {
		if s.F[0] > 1 {
			t.Fatal("dominated solution selected ahead of front 0")
		}
	}
	// Truncation keeps extremes: pick 2 of front 0.
	out = environmentalSelection(merged[:3], 2)
	hasLeft, hasRight := false, false
	for _, s := range out {
		if s.F[0] == 0 {
			hasLeft = true
		}
		if s.F[1] == 0 {
			hasRight = true
		}
	}
	if !hasLeft || !hasRight {
		t.Fatalf("crowding truncation lost an extreme: %v", out)
	}
}

func TestPopulationSizeStable(t *testing.T) {
	p := benchproblems.Fonseca(3)
	cfg := TestConfig()
	cfg.Seed = 6
	res, err := Optimize(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Population) != cfg.PopSize {
		t.Fatalf("final population %d, want %d", len(res.Population), cfg.PopSize)
	}
	if res.Generations < 2 {
		t.Fatalf("generations = %d", res.Generations)
	}
}

func TestFeasibleFront(t *testing.T) {
	pop := []*moo.Solution{
		{F: []float64{1, 1}, Violation: 0},
		{F: []float64{0, 0}, Violation: 1}, // infeasible, would dominate
		{F: []float64{2, 0.5}, Violation: 0},
	}
	front := FeasibleFront(pop)
	if len(front) != 2 {
		t.Fatalf("front size = %d, want 2", len(front))
	}
	for _, s := range front {
		if !s.Feasible() {
			t.Fatal("infeasible solution in feasible front")
		}
	}
}

func TestFrontSpreadOnZDT3(t *testing.T) {
	// ZDT3 has a disconnected front; NSGA-II should populate several
	// disconnected regions (f0 clusters).
	p := benchproblems.ZDT3(6)
	cfg := Config{PopSize: 40, Evaluations: 4000, Pc: 0.9, EtaC: 20, EtaM: 20, Seed: 7}
	res, err := Optimize(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	minF0, maxF0 := math.Inf(1), math.Inf(-1)
	for _, s := range res.Front {
		minF0 = math.Min(minF0, s.F[0])
		maxF0 = math.Max(maxF0, s.F[0])
	}
	if maxF0-minF0 < 0.5 {
		t.Fatalf("front collapsed: f0 span = %v", maxF0-minF0)
	}
}
