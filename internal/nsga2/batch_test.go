package nsga2

import (
	"testing"

	"aedbmls/internal/benchproblems"
	"aedbmls/internal/moo"
)

// batchCapable upgrades a problem to moo.BatchProblem by delegation,
// counting batch traffic.
type batchCapable struct {
	moo.Problem
	batches, vectors int
}

func (b *batchCapable) EvaluateBatch(xs [][]float64) []moo.BatchResult {
	b.batches++
	b.vectors += len(xs)
	out := make([]moo.BatchResult, len(xs))
	for i, x := range xs {
		f, v, aux := b.Evaluate(x)
		out[i] = moo.BatchResult{F: f, Violation: v, Aux: aux}
	}
	return out
}

// TestBatchEvaluationEquivalence: NSGA-II run on a batch-capable problem
// must reproduce the plain run exactly — whole populations and offspring
// generations are evaluated together, and that must be behaviour-neutral.
func TestBatchEvaluationEquivalence(t *testing.T) {
	cfg := TestConfig()
	cfg.Seed = 7
	plain, err := Optimize(benchproblems.ZDT1(6), cfg)
	if err != nil {
		t.Fatal(err)
	}
	wrapped := &batchCapable{Problem: benchproblems.ZDT1(6)}
	batched, err := Optimize(wrapped, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Evaluations != batched.Evaluations || plain.Generations != batched.Generations {
		t.Fatalf("budgets diverge: %d/%d vs %d/%d gens",
			plain.Evaluations, plain.Generations, batched.Evaluations, batched.Generations)
	}
	if len(plain.Population) != len(batched.Population) {
		t.Fatalf("population sizes %d vs %d", len(plain.Population), len(batched.Population))
	}
	for i := range plain.Population {
		if !moo.EqualF(plain.Population[i], batched.Population[i]) {
			t.Fatalf("population member %d differs", i)
		}
	}
	// One batch per generation plus the initial population.
	if want := plain.Generations + 1; wrapped.batches != want {
		t.Fatalf("batch calls = %d, want %d", wrapped.batches, want)
	}
	if wrapped.vectors != int(plain.Evaluations) {
		t.Fatalf("batched vectors = %d, want %d", wrapped.vectors, plain.Evaluations)
	}
}
