// Package nsga2 implements NSGA-II (Deb, Pratap, Agarwal, Meyarivan 2002),
// one of the two reference MOEAs the paper validates AEDB-MLS against.
//
// It is the canonical real-coded variant: binary tournament selection
// under constrained dominance with crowding-distance tie-breaks, simulated
// binary crossover, polynomial mutation, and (mu+lambda) environmental
// selection by non-dominated fronts truncated with crowding distance.
// Parameters default to the configuration of Ruiz et al. 2012, the source
// of the paper's MOEA results (population 100, 10 000 evaluations,
// pc = 0.9, pm = 1/n, eta_c = eta_m = 20).
package nsga2

import (
	"fmt"
	"math"
	"time"

	"aedbmls/internal/moo"
	"aedbmls/internal/operators"
	"aedbmls/internal/rng"
	"aedbmls/internal/study"
)

// AlgorithmName identifies NSGA-II checkpoints.
const AlgorithmName = "nsga2"

// Config parameterises NSGA-II.
type Config struct {
	PopSize     int
	Evaluations int // total evaluation budget (including the initial pop)
	Pc          float64
	EtaC        float64
	Pm          float64 // <= 0 means 1/dim
	EtaM        float64
	Seed        uint64
	// Checkpoint enables crash-safe checkpointing at generation
	// boundaries; Resume restores a matching checkpoint instead of
	// initialising; Stop requests cooperative interruption. See
	// internal/study for the shared protocol; resuming an interrupted run
	// reproduces the uninterrupted result bit for bit.
	Checkpoint *study.Controller
	Resume     *study.Checkpoint
	Stop       <-chan struct{}
}

// fingerprint identifies the study this config defines on problem p.
func (c Config) fingerprint(p moo.Problem) string {
	pm := c.Pm
	if pm <= 0 {
		pm = 1.0 / float64(p.Dim())
	}
	return study.Fingerprint(
		"nsga2-v1",
		fmt.Sprintf("pop=%d evals=%d pc=%x etac=%x pm=%x etam=%x seed=%d",
			c.PopSize, c.Evaluations, math.Float64bits(c.Pc), math.Float64bits(c.EtaC),
			math.Float64bits(pm), math.Float64bits(c.EtaM), c.Seed),
		study.ProblemFingerprint(p),
	)
}

// DefaultConfig returns the reference configuration used for the paper's
// comparison (10 000 evaluations: the paper notes AEDB-MLS performs 2.4x
// more evaluations than the EAs, and 24 000 / 2.4 = 10 000).
func DefaultConfig() Config {
	return Config{PopSize: 100, Evaluations: 10000, Pc: 0.9, EtaC: 20, Pm: 0, EtaM: 20, Seed: 1}
}

// TestConfig returns a reduced configuration for tests and benchmarks.
func TestConfig() Config {
	cfg := DefaultConfig()
	cfg.PopSize = 20
	cfg.Evaluations = 200
	return cfg
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.PopSize < 4 || c.PopSize%2 != 0:
		return fmt.Errorf("nsga2: PopSize must be an even number >= 4, got %d", c.PopSize)
	case c.Evaluations < c.PopSize:
		return fmt.Errorf("nsga2: Evaluations %d below PopSize %d", c.Evaluations, c.PopSize)
	case c.Pc < 0 || c.Pc > 1:
		return fmt.Errorf("nsga2: Pc out of [0,1]")
	}
	return nil
}

// Result is the outcome of one NSGA-II run.
type Result struct {
	// Front is the first non-dominated front of the final population
	// under constrained dominance: the feasible non-dominated subset
	// whenever any feasible solution exists, otherwise the
	// least-violating solutions.
	Front []*moo.Solution
	// Population is the full final population.
	Population []*moo.Solution
	// Evaluations actually spent.
	Evaluations int64
	// Duration is the wall-clock time.
	Duration time.Duration
	// Generations completed.
	Generations int
	// Interrupted is true when the run exited early because Config.Stop
	// was closed.
	Interrupted bool
}

// Optimize runs NSGA-II on p. Execution is sequential, as in the paper.
func Optimize(p moo.Problem, cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lo, hi := p.Bounds()
	pm := cfg.Pm
	if pm <= 0 {
		pm = 1.0 / float64(p.Dim())
	}
	start := time.Now()
	loop := &study.Loop{Ctrl: cfg.Checkpoint, Stop: cfg.Stop}
	interrupted := false
	var (
		r     *rng.Rand
		pop   []*moo.Solution
		evals int64
		gens  int
		done  bool // resumed from a Final checkpoint
	)

	// Whole generations are evaluated together: selection and variation
	// draw no randomness from evaluation, so generating every offspring
	// vector first and batching the evaluations (moo.BatchProblem, e.g.
	// eval's committee waves) is bit-identical to evaluating one by one.
	evaluateAll := func(xs [][]float64) []*moo.Solution {
		evals += int64(len(xs))
		return moo.EvaluateAll(p, xs)
	}

	if cp := cfg.Resume; cp != nil {
		if err := cp.Check(AlgorithmName, cfg.fingerprint(p)); err != nil {
			return nil, err
		}
		restored, err := study.DecodeSolutions(cp.Population, p.Dim(), p.NumObjectives())
		if err != nil {
			return nil, err
		}
		pop = restored
		r = cp.RNG.Rand()
		evals = cp.Evaluations
		gens = int(cp.Iteration)
		done = cp.Final
	} else {
		r = rng.New(cfg.Seed)
		xs := make([][]float64, cfg.PopSize)
		for i := range xs {
			xs[i] = operators.RandomVector(lo, hi, r)
		}
		pop = evaluateAll(xs)
		// Initial members are long-lived (the population must hold PopSize
		// real solutions), so ladder-screened cells are re-evaluated
		// serially at full fidelity instead of being dropped. Stop-abandoned
		// cells ARE dropped — the stop signal has fired, the next boundary
		// exits, and the reported front must not contain penalty points.
		for i, s := range pop {
			if s.Screened {
				pop[i] = moo.NewSolution(p, xs[i])
				evals++
			}
		}
		pop = moo.Admissible(pop)
	}
	cd := crowdingByFront(pop)

	// encode snapshots the generation boundary: the crowding distances are
	// a pure function of pop and come back via crowdingByFront on resume.
	encode := func() *study.Checkpoint {
		return &study.Checkpoint{
			Algorithm:   AlgorithmName,
			Fingerprint: cfg.fingerprint(p),
			Evaluations: evals,
			Iteration:   int64(gens),
			RNG:         study.StateOf(r),
			Population:  study.EncodeSolutions(pop),
		}
	}

	for !done && evals+int64(cfg.PopSize) <= int64(cfg.Evaluations) {
		if stopped, err := loop.Boundary(encode); err != nil {
			return nil, err
		} else if stopped {
			interrupted = true
			break
		}
		gens++
		xs := make([][]float64, 0, cfg.PopSize)
		for len(xs) < cfg.PopSize {
			p1 := operators.TournamentCD(pop, cd, r)
			p2 := operators.TournamentCD(pop, cd, r)
			c1, c2 := operators.SBX(p1.X, p2.X, cfg.Pc, cfg.EtaC, lo, hi, r)
			operators.PolynomialMutation(c1, pm, cfg.EtaM, lo, hi, r)
			operators.PolynomialMutation(c2, pm, cfg.EtaM, lo, hi, r)
			xs = append(xs, c1)
			if len(xs) < cfg.PopSize {
				xs = append(xs, c2)
			}
		}
		// Inadmissible offspring — stop-abandoned cells, ladder-screened
		// triage estimates — are dropped before the merge, so selection
		// (and therefore the final front) only ever sees completed
		// full-fidelity evaluations.
		pop = environmentalSelection(append(pop, moo.Admissible(evaluateAll(xs))...), cfg.PopSize)
		cd = crowdingByFront(pop)
	}
	if !done && !interrupted {
		if err := loop.Finish(encode); err != nil {
			return nil, err
		}
	}

	res := &Result{
		Population:  pop,
		Evaluations: evals,
		Duration:    time.Since(start),
		Generations: gens,
		Interrupted: interrupted,
	}
	// Constrained dominance makes ParetoFilter return the feasible
	// non-dominated subset when feasible solutions exist, and the
	// least-violating subset otherwise — the run never reports an empty
	// front on a non-empty population.
	res.Front = moo.ParetoFilter(pop)
	return res, nil
}

// environmentalSelection keeps the best n of the merged population:
// whole fronts in order, the splitting front truncated by descending
// crowding distance.
func environmentalSelection(merged []*moo.Solution, n int) []*moo.Solution {
	fronts := moo.FastNonDominatedSort(merged)
	out := make([]*moo.Solution, 0, n)
	for _, front := range fronts {
		if len(out)+len(front) <= n {
			for _, i := range front {
				out = append(out, merged[i])
			}
			continue
		}
		// Truncate this front by crowding distance.
		sols := make([]*moo.Solution, len(front))
		for k, i := range front {
			sols[k] = merged[i]
		}
		d := moo.CrowdingDistances(sols)
		idx := make([]int, len(sols))
		for i := range idx {
			idx[i] = i
		}
		// Selection sort by descending distance (fronts are small).
		for i := 0; i < len(idx) && len(out) < n; i++ {
			best := i
			for j := i + 1; j < len(idx); j++ {
				if d[idx[j]] > d[idx[best]] {
					best = j
				}
			}
			idx[i], idx[best] = idx[best], idx[i]
			out = append(out, sols[idx[i]])
		}
		break
	}
	return out
}

// crowdingByFront computes crowding distances front-by-front for the whole
// population (used for tournament tie-breaking).
func crowdingByFront(pop []*moo.Solution) []float64 {
	cd := make([]float64, len(pop))
	for _, front := range moo.FastNonDominatedSort(pop) {
		sols := make([]*moo.Solution, len(front))
		for k, i := range front {
			sols[k] = pop[i]
		}
		d := moo.CrowdingDistances(sols)
		for k, i := range front {
			cd[i] = d[k]
		}
	}
	return cd
}

// FeasibleFront extracts the feasible non-dominated subset of a
// population — the front an algorithm reports.
func FeasibleFront(pop []*moo.Solution) []*moo.Solution {
	var feasible []*moo.Solution
	for _, s := range pop {
		if s.Feasible() {
			feasible = append(feasible, s)
		}
	}
	return moo.ParetoFilter(feasible)
}
