// Package faultinject provides deterministic, seed-driven fault injection
// hooks for the robustness test wall. Production code plants named sites
// at evaluation and checkpoint boundaries (one atomic load when disarmed);
// tests — in-process or subprocess — arm rules that panic, return errors,
// delay, or SIGKILL the process at exact hit counts, so crash-safety
// properties ("a study killed mid-run resumes bit-identically") become
// reproducible assertions instead of flaky race hunts.
//
// Rules are configured programmatically (Configure) or through the
// AEDB_FAULTS environment variable (ConfigureFromEnv), which is how
// subprocess kill/resume tests arm their children. A rule spec is a
// whitespace-separated list of rules; each rule is a comma-separated list
// of key=value fields:
//
//	site=eval.scenario,kind=panic,after=100,times=1
//	site=study.save,kind=kill,after=3
//	site=eval.build,kind=error,every=2
//	site=eval.scenario,kind=delay,delay=50ms,prob=0.1,seed=7
//
// Fields: site (required), kind (panic|error|delay|kill, required), after
// (fire on the Nth hit and later), every (fire when hit%every==0), times
// (max fires, 0 = unlimited), delay (duration, kind=delay), prob + seed
// (fire with probability prob from a deterministic stream). A rule with
// neither after, every nor prob fires on every hit.
package faultinject

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"aedbmls/internal/rng"
)

// Site names one injection point. Sites are compile-time constants so the
// test wall and the production hooks cannot drift apart.
type Site string

// The planted sites.
const (
	// SiteEvalScenario is hit once per (candidate, scenario) evaluation,
	// inside the supervised scenario runner of internal/eval.
	SiteEvalScenario Site = "eval.scenario"
	// SiteEvalBuild is hit when a scenario network is constructed from
	// scratch (the no-snapshot fallback path of internal/eval).
	SiteEvalBuild Site = "eval.build"
	// SiteStudySave is hit by study.Save after the temporary checkpoint
	// file is written but before it is renamed into place — the window an
	// atomic checkpoint must survive a crash in.
	SiteStudySave Site = "study.save"
	// SiteManifestSave is the same window inside study.SaveManifest. It is
	// a separate site so kill rules aimed at checkpoint saves don't also
	// trip on the (much rarer) manifest writes, and vice versa.
	SiteManifestSave Site = "study.manifest"
)

// EnvVar is the environment variable ConfigureFromEnv reads.
const EnvVar = "AEDB_FAULTS"

// Kind is the effect a rule applies when it fires.
type Kind string

// The injectable effects.
const (
	KindPanic Kind = "panic" // panic(Fault{...})
	KindError Kind = "error" // Do returns Fault{...}
	KindDelay Kind = "delay" // sleep rule.delay, then continue
	KindKill  Kind = "kill"  // SIGKILL the current process
)

// Fault is the value injected panics carry and injected errors return, so
// supervisors and tests can tell an injection from an organic failure.
type Fault struct {
	Site Site
	Kind Kind
	Hit  int64 // the site hit count that triggered the rule
}

// Error implements error.
func (f Fault) Error() string {
	return fmt.Sprintf("faultinject: %s at %s (hit %d)", f.Kind, f.Site, f.Hit)
}

// rule is one armed injection.
type rule struct {
	site  Site
	kind  Kind
	after int64
	every int64
	times int64
	prob  float64
	r     *rng.Rand
	delay time.Duration
	fired int64
}

// armed guards the fast path: Do is a single atomic load per hit while no
// rules are configured.
var armed atomic.Bool

var (
	mu    sync.Mutex
	rules []*rule
	hits  = map[Site]*int64{}
)

// Active reports whether any rule is armed.
func Active() bool { return armed.Load() }

// Reset disarms every rule and zeroes all hit counters.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	rules = nil
	hits = map[Site]*int64{}
	armed.Store(false)
}

// Configure replaces the armed rule set with the parsed spec (see the
// package comment for the format). An empty spec disarms everything.
func Configure(spec string) error {
	parsed, err := parseSpec(spec)
	if err != nil {
		return err
	}
	mu.Lock()
	defer mu.Unlock()
	rules = parsed
	armed.Store(len(rules) > 0)
	return nil
}

// ConfigureFromEnv arms the spec in AEDB_FAULTS, reporting whether one was
// present. Subprocess tests use it to arm their children.
func ConfigureFromEnv() (bool, error) {
	spec, ok := os.LookupEnv(EnvVar)
	if !ok || strings.TrimSpace(spec) == "" {
		return false, nil
	}
	return true, Configure(spec)
}

// Hits returns how many times a site has been reached since the last
// Reset/Configure (counting starts when a rule set is armed).
func Hits(site Site) int64 {
	mu.Lock()
	defer mu.Unlock()
	if c := hits[site]; c != nil {
		return *c
	}
	return 0
}

// Do marks one hit of a site and applies any armed matching rules: it
// sleeps for delay rules, returns a Fault for error rules, panics with a
// Fault for panic rules, and SIGKILLs the process for kill rules. With no
// rules armed it is a single atomic load.
func Do(site Site) error {
	if !armed.Load() {
		return nil
	}
	return do(site)
}

func do(site Site) error {
	mu.Lock()
	c := hits[site]
	if c == nil {
		c = new(int64)
		hits[site] = c
	}
	*c++
	hit := *c
	var fire []*rule
	for _, r := range rules {
		if r.site != site {
			continue
		}
		if r.times > 0 && r.fired >= r.times {
			continue
		}
		if !r.due(hit) {
			continue
		}
		r.fired++
		fire = append(fire, r)
	}
	mu.Unlock()

	for _, r := range fire {
		switch r.kind {
		case KindDelay:
			time.Sleep(r.delay)
		case KindError:
			return Fault{Site: site, Kind: KindError, Hit: hit}
		case KindPanic:
			panic(Fault{Site: site, Kind: KindPanic, Hit: hit})
		case KindKill:
			kill()
		}
	}
	return nil
}

// due decides whether the rule fires on this hit. Callers hold mu (the
// probabilistic stream is not concurrency-safe on its own).
func (r *rule) due(hit int64) bool {
	if r.after > 0 && hit < r.after {
		return false
	}
	if r.every > 0 && hit%r.every != 0 {
		return false
	}
	if r.prob > 0 {
		return r.r.Bool(r.prob)
	}
	return true
}

// kill sends the process an uncatchable SIGKILL — the honest crash the
// kill/resume equivalence tests need (no deferred handlers, no
// checkpoint-on-exit).
func kill() {
	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		os.Exit(137)
	}
	_ = p.Kill()
	// Kill is asynchronous on some platforms; don't let execution continue
	// past the crash point.
	select {}
}

// parseSpec parses a whitespace-separated rule list.
func parseSpec(spec string) ([]*rule, error) {
	var out []*rule
	for _, rs := range strings.Fields(spec) {
		r := &rule{times: 0}
		var seed uint64 = 1
		for _, field := range strings.Split(rs, ",") {
			k, v, ok := strings.Cut(field, "=")
			if !ok {
				return nil, fmt.Errorf("faultinject: malformed field %q in rule %q", field, rs)
			}
			var err error
			switch k {
			case "site":
				r.site = Site(v)
			case "kind":
				switch Kind(v) {
				case KindPanic, KindError, KindDelay, KindKill:
					r.kind = Kind(v)
				default:
					err = fmt.Errorf("unknown kind %q", v)
				}
			case "after":
				r.after, err = strconv.ParseInt(v, 10, 64)
			case "every":
				r.every, err = strconv.ParseInt(v, 10, 64)
			case "times":
				r.times, err = strconv.ParseInt(v, 10, 64)
			case "prob":
				r.prob, err = strconv.ParseFloat(v, 64)
			case "seed":
				seed, err = strconv.ParseUint(v, 10, 64)
			case "delay":
				r.delay, err = time.ParseDuration(v)
			default:
				err = fmt.Errorf("unknown key %q", k)
			}
			if err != nil {
				return nil, fmt.Errorf("faultinject: rule %q: %v", rs, err)
			}
		}
		if r.site == "" {
			return nil, fmt.Errorf("faultinject: rule %q missing site", rs)
		}
		if r.kind == "" {
			return nil, fmt.Errorf("faultinject: rule %q missing kind", rs)
		}
		if r.prob < 0 || r.prob > 1 {
			return nil, fmt.Errorf("faultinject: rule %q: prob out of [0,1]", rs)
		}
		if r.prob > 0 {
			r.r = rng.New(seed)
		}
		out = append(out, r)
	}
	return out, nil
}
