package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestDisarmedIsNoop(t *testing.T) {
	Reset()
	if Active() {
		t.Fatal("Active with no rules")
	}
	if err := Do(SiteEvalScenario); err != nil {
		t.Fatalf("disarmed Do returned %v", err)
	}
	if n := Hits(SiteEvalScenario); n != 0 {
		t.Fatalf("disarmed Do counted a hit: %d", n)
	}
}

func TestErrorAfterTimes(t *testing.T) {
	Reset()
	defer Reset()
	if err := Configure("site=eval.build,kind=error,after=3,times=2"); err != nil {
		t.Fatal(err)
	}
	var got []int
	for i := 1; i <= 6; i++ {
		if err := Do(SiteEvalBuild); err != nil {
			var f Fault
			if !errors.As(err, &f) {
				t.Fatalf("hit %d: error is not a Fault: %v", i, err)
			}
			got = append(got, i)
		}
	}
	if len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("error fired on hits %v, want [3 4]", got)
	}
	if n := Hits(SiteEvalBuild); n != 6 {
		t.Fatalf("Hits = %d, want 6", n)
	}
}

func TestEvery(t *testing.T) {
	Reset()
	defer Reset()
	if err := Configure("site=eval.scenario,kind=error,every=3"); err != nil {
		t.Fatal(err)
	}
	fails := 0
	for i := 0; i < 9; i++ {
		if Do(SiteEvalScenario) != nil {
			fails++
		}
	}
	if fails != 3 {
		t.Fatalf("every=3 fired %d times over 9 hits, want 3", fails)
	}
}

func TestPanicCarriesFault(t *testing.T) {
	Reset()
	defer Reset()
	if err := Configure("site=eval.scenario,kind=panic,after=1,times=1"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		f, ok := r.(Fault)
		if !ok {
			t.Fatalf("panic value %v is not a Fault", r)
		}
		if f.Site != SiteEvalScenario || f.Kind != KindPanic || f.Hit != 1 {
			t.Fatalf("unexpected fault %+v", f)
		}
	}()
	_ = Do(SiteEvalScenario)
	t.Fatal("expected panic")
}

func TestDelay(t *testing.T) {
	Reset()
	defer Reset()
	if err := Configure("site=eval.scenario,kind=delay,delay=30ms,times=1"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Do(SiteEvalScenario); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("delay rule slept only %v", d)
	}
}

func TestProbabilisticIsDeterministic(t *testing.T) {
	Reset()
	defer Reset()
	run := func() []bool {
		if err := Configure("site=eval.scenario,kind=error,prob=0.5,seed=42"); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 32)
		for i := range out {
			out[i] = Do(SiteEvalScenario) != nil
		}
		return out
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("probabilistic firing pattern differs at hit %d", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("prob=0.5 fired %d/%d times; stream looks degenerate", fired, len(a))
	}
}

func TestSpecErrors(t *testing.T) {
	Reset()
	defer Reset()
	for _, spec := range []string{
		"kind=panic",                   // missing site
		"site=eval.scenario",           // missing kind
		"site=a,kind=nuke",             // unknown kind
		"site=a,kind=error,after=x",    // bad int
		"site=a,kind=error,prob=2",     // prob out of range
		"site=a,kind=error,bogus=1",    // unknown key
		"site=a,kind=delay,delay=fast", // bad duration
		"site=a,kind=error,times",      // malformed field
	} {
		if err := Configure(spec); err == nil {
			t.Errorf("Configure(%q) accepted a malformed spec", spec)
		}
	}
	if Active() {
		t.Fatal("failed Configure left rules armed")
	}
}

func TestConfigureFromEnv(t *testing.T) {
	Reset()
	defer Reset()
	t.Setenv(EnvVar, "site=eval.build,kind=error,times=1")
	ok, err := ConfigureFromEnv()
	if err != nil || !ok {
		t.Fatalf("ConfigureFromEnv = %v, %v", ok, err)
	}
	if Do(SiteEvalBuild) == nil {
		t.Fatal("env-armed rule did not fire")
	}
	t.Setenv(EnvVar, "")
	ok, err = ConfigureFromEnv()
	if err != nil || ok {
		t.Fatalf("empty env: ConfigureFromEnv = %v, %v", ok, err)
	}
}
