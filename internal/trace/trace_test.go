package trace

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"aedbmls/internal/manet"
)

// sample builds a trace exercising every field class: negative ints,
// NaN floats, an empty regime, a non-trivial decision mix.
func sample() *Trace {
	return &Trace{
		Header: Header{
			Protocol:     "aedb",
			Density:      100,
			NumNodes:     25,
			Seed:         7,
			Source:       0,
			ExactPhysics: true,
			Params:       [5]float64{0.1, 0.5, -80, 1, 10},
			Baseline: Summary{
				EnergyDBmSum: 123.456, Coverage: 24, Forwardings: 9,
				BroadcastTime: 0.8125, EnergyMJ: 0.0042, Collisions: 3,
			},
		},
		Decisions: []manet.Decision{
			{
				Kind: manet.DecisionOriginate, Node: 0, From: -1, MsgID: 0,
				Time: 30, RxPowerDBm: math.NaN(), PBestDBm: math.NaN(),
				BorderDBm: -80, BeaconRxDBm: math.NaN(), TxPowerDBm: 16.02,
			},
			{
				Kind: manet.DecisionArm, Node: 3, From: 0, MsgID: 0,
				Time: 30.001, RxPowerDBm: -85.5, PBestDBm: -85.5, BorderDBm: -80,
				DelayLo: 0.1, DelayHi: 0.5, Delay: 0.237, BeaconRxDBm: math.NaN(),
			},
			{
				Kind: manet.DecisionForward, Regime: manet.RegimeDense, Node: 3,
				From: -1, MsgID: 0, Potential: 12, Time: 30.238,
				RxPowerDBm: math.NaN(), PBestDBm: -85.5, BorderDBm: -80,
				NeighborsThreshold: 10, BeaconRxDBm: -81.25, TxPowerDBm: 14.7,
			},
		},
	}
}

// TestRoundTrip checks bit-exact encode/decode: re-encoding the decoded
// trace must reproduce the original bytes (byte comparison sidesteps
// NaN != NaN in struct equality while still proving every field,
// including NaN payloads, survived).
func TestRoundTrip(t *testing.T) {
	orig := sample()
	enc := orig.Encode()
	dec, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !bytes.Equal(dec.Encode(), enc) {
		t.Fatal("decode -> encode does not reproduce the original bytes")
	}
	if dec.Header != orig.Header {
		t.Fatalf("header mismatch:\n got %+v\nwant %+v", dec.Header, orig.Header)
	}
	if len(dec.Decisions) != len(orig.Decisions) {
		t.Fatalf("got %d decisions, want %d", len(dec.Decisions), len(orig.Decisions))
	}
	if d := dec.Decisions[2]; d.Kind != manet.DecisionForward || d.Regime != manet.RegimeDense ||
		d.Potential != 12 || d.TxPowerDBm != 14.7 {
		t.Fatalf("decision 2 corrupted: %+v", d)
	}
	if !math.IsNaN(dec.Decisions[0].RxPowerDBm) {
		t.Fatal("NaN field did not survive the round trip")
	}
}

// TestRoundTripEmpty checks a decision-free trace (e.g. a flooding run,
// which emits no AEDB decisions) round-trips.
func TestRoundTripEmpty(t *testing.T) {
	tr := &Trace{Header: sample().Header}
	dec, err := Decode(tr.Encode())
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(dec.Decisions) != 0 || dec.Header != tr.Header {
		t.Fatalf("empty trace corrupted: %+v", dec)
	}
}

// TestDecodeRefusesTruncation sweeps every prefix length: all must be
// refused (the checksum covers the whole payload).
func TestDecodeRefusesTruncation(t *testing.T) {
	enc := sample().Encode()
	for cut := 0; cut < len(enc); cut++ {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("truncation to %d/%d bytes was accepted", cut, len(enc))
		}
	}
}

// TestDecodeRefusesCorruption flips one bit at several offsets spanning
// magic, header, records and checksum.
func TestDecodeRefusesCorruption(t *testing.T) {
	enc := sample().Encode()
	for _, off := range []int{0, len(magic), len(magic) + 3, len(enc) / 2, len(enc) - 1} {
		bad := append([]byte(nil), enc...)
		bad[off] ^= 0x40
		if _, err := Decode(bad); err == nil {
			t.Fatalf("bit flip at offset %d was accepted", off)
		}
	}
}

// TestDecodeRefusesTrailingData mirrors study.Load's strictness: extra
// bytes after a valid file are an error, not ignored.
func TestDecodeRefusesTrailingData(t *testing.T) {
	enc := append(sample().Encode(), 0xFF)
	if _, err := Decode(enc); err == nil {
		t.Fatal("trailing byte was accepted")
	}
}

// TestDecodeRefusesFutureVersion crafts a structurally valid file with a
// bumped version varint and a recomputed checksum: the decoder must
// refuse it by version, not by checksum.
func TestDecodeRefusesFutureVersion(t *testing.T) {
	enc := sample().Encode()
	payload := append([]byte(nil), enc[:len(enc)-sha256.Size]...)
	// Version is the single-byte uvarint right after the magic.
	if v, n := binary.Uvarint(payload[len(magic):]); v != Version || n != 1 {
		t.Fatalf("test layout assumption broken: version varint = (%d, %d)", v, n)
	}
	payload[len(magic)] = Version + 1
	sum := sha256.Sum256(payload)
	if _, err := Decode(append(payload, sum[:]...)); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Fatalf("future version accepted or misreported: %v", err)
	}
}

// TestReadFileMissing keeps the file-level error path honest.
func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "absent.trc")); err == nil {
		t.Fatal("missing file was accepted")
	}
}

// TestWriteReadFile round-trips through the filesystem.
func TestWriteReadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.trc")
	orig := sample()
	if err := orig.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	dec, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !bytes.Equal(dec.Encode(), orig.Encode()) {
		t.Fatal("file round trip is not bit-identical")
	}
}

// TestCollectorRecords checks the hook shape appends in order.
func TestCollectorRecords(t *testing.T) {
	var c Collector
	c.Record(manet.Decision{Kind: manet.DecisionOriginate, Node: 0})
	c.Record(manet.Decision{Kind: manet.DecisionArm, Node: 5})
	if len(c.Decisions) != 2 || c.Decisions[1].Node != 5 {
		t.Fatalf("collector state: %+v", c.Decisions)
	}
}
