// Package trace records per-node AEDB forwarding decisions into a
// compact, versioned, checksummed binary file — the observability
// substrate behind `aedb-sim -trace` and the `aedb-trace` CLI.
//
// A trace is one recorded simulation run: a header that identifies the
// scenario precisely enough to rebuild it (node count, seed, source,
// physics arm, the five protocol parameters) plus the baseline metric
// outcome, followed by the stream of manet.Decision values the protocol
// emitted through Config.OnDecision. The file format mirrors the
// strictness of internal/study's checkpoint Load: a magic string, a
// version number, a trailing SHA-256 over everything before it, and a
// decoder that refuses short files, bad magic, unknown versions,
// checksum mismatches (truncation or corruption) and trailing bytes.
//
// Integers are varint-encoded; floats are stored as their exact IEEE 754
// bits, so a decoded trace is bit-identical to the recorded one
// (including NaN payloads in not-applicable fields).
package trace

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"os"

	"aedbmls/internal/aedb"
	"aedbmls/internal/manet"
)

// magic opens every trace file; the trailing 01 is the format family,
// not the version (which follows as a varint and is checked separately).
const magic = "AEDBTR01"

// Version is the trace schema version written by Encode; bump it when
// the layout changes incompatibly.
const Version = 1

// Summary is the metric outcome of the recorded run, embedded in the
// header so counterfactual comparisons need no side files. Fields mirror
// eval.Metrics in declaration order.
type Summary struct {
	EnergyDBmSum  float64
	Coverage      float64
	Forwardings   float64
	BroadcastTime float64
	EnergyMJ      float64
	Collisions    float64
}

// Header identifies the recorded scenario precisely enough for
// counterfactual replay to rebuild it: manet.DefaultScenario(NumNodes)
// with the recorded physics arm, warmed under Seed, broadcast from
// Source.
type Header struct {
	Protocol     string
	Density      int
	NumNodes     int
	Seed         uint64
	Source       int
	ExactPhysics bool
	Params       [aedb.NumParams]float64
	Baseline     Summary
}

// Trace is one recorded run: scenario identity plus the decision stream.
type Trace struct {
	Header
	Decisions []manet.Decision
}

// Collector accumulates decisions; wire it with
// cfg.OnDecision = collector.Record.
type Collector struct {
	Decisions []manet.Decision
}

// Record implements the manet.Config.OnDecision hook shape.
func (c *Collector) Record(d manet.Decision) { c.Decisions = append(c.Decisions, d) }

// Encode serializes the trace: magic, varint/float64-bits payload,
// trailing SHA-256 checksum.
func (t *Trace) Encode() []byte {
	var b bytes.Buffer
	b.WriteString(magic)
	putUvarint(&b, Version)
	putUvarint(&b, uint64(len(t.Protocol)))
	b.WriteString(t.Protocol)
	putVarint(&b, int64(t.Density))
	putUvarint(&b, uint64(t.NumNodes))
	putUvarint(&b, t.Seed)
	putVarint(&b, int64(t.Source))
	putBool(&b, t.ExactPhysics)
	for _, v := range t.Params {
		putF64(&b, v)
	}
	putF64(&b, t.Baseline.EnergyDBmSum)
	putF64(&b, t.Baseline.Coverage)
	putF64(&b, t.Baseline.Forwardings)
	putF64(&b, t.Baseline.BroadcastTime)
	putF64(&b, t.Baseline.EnergyMJ)
	putF64(&b, t.Baseline.Collisions)
	putUvarint(&b, uint64(len(t.Decisions)))
	for i := range t.Decisions {
		d := &t.Decisions[i]
		b.WriteByte(byte(d.Kind))
		b.WriteByte(d.Regime)
		putVarint(&b, int64(d.Node))
		putVarint(&b, int64(d.From))
		putVarint(&b, int64(d.MsgID))
		putVarint(&b, int64(d.Potential))
		putF64(&b, d.Time)
		putF64(&b, d.RxPowerDBm)
		putF64(&b, d.PBestDBm)
		putF64(&b, d.BorderDBm)
		putF64(&b, d.DelayLo)
		putF64(&b, d.DelayHi)
		putF64(&b, d.Delay)
		putF64(&b, d.NeighborsThreshold)
		putF64(&b, d.BeaconRxDBm)
		putF64(&b, d.TxPowerDBm)
	}
	sum := sha256.Sum256(b.Bytes())
	b.Write(sum[:])
	return b.Bytes()
}

// Decode parses an encoded trace, refusing anything structurally off:
// short files, bad magic, checksum mismatches (which is how truncation
// and bit corruption surface), unknown versions, and trailing data.
func Decode(data []byte) (*Trace, error) {
	if len(data) < len(magic)+sha256.Size {
		return nil, fmt.Errorf("trace: file too short (%d bytes) to be a trace", len(data))
	}
	payload, sum := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	if string(payload[:len(magic)]) != magic {
		return nil, fmt.Errorf("trace: bad magic %q (not a trace file)", payload[:len(magic)])
	}
	if want := sha256.Sum256(payload); !bytes.Equal(sum, want[:]) {
		return nil, fmt.Errorf("trace: checksum mismatch (file truncated or corrupt)")
	}
	r := &reader{data: payload, off: len(magic)}
	if v := r.uvarint(); v != Version {
		if r.err != nil {
			return nil, r.err
		}
		return nil, fmt.Errorf("trace: unsupported version %d (this build reads %d)", v, Version)
	}
	t := &Trace{}
	t.Protocol = r.str()
	t.Density = int(r.varint())
	t.NumNodes = int(r.uvarint())
	t.Seed = r.uvarint()
	t.Source = int(r.varint())
	t.ExactPhysics = r.bool()
	for i := range t.Params {
		t.Params[i] = r.f64()
	}
	t.Baseline.EnergyDBmSum = r.f64()
	t.Baseline.Coverage = r.f64()
	t.Baseline.Forwardings = r.f64()
	t.Baseline.BroadcastTime = r.f64()
	t.Baseline.EnergyMJ = r.f64()
	t.Baseline.Collisions = r.f64()
	n := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	const recordMin = 2 + 4 + 10*8 // kind+regime, four 1-byte-minimum varints, ten floats
	if n > uint64(len(payload)-r.off)/recordMin {
		return nil, fmt.Errorf("trace: decision count %d exceeds remaining payload", n)
	}
	t.Decisions = make([]manet.Decision, n)
	for i := range t.Decisions {
		d := &t.Decisions[i]
		d.Kind = manet.DecisionKind(r.byte())
		d.Regime = r.byte()
		d.Node = int32(r.varint())
		d.From = int32(r.varint())
		d.MsgID = int32(r.varint())
		d.Potential = int32(r.varint())
		d.Time = r.f64()
		d.RxPowerDBm = r.f64()
		d.PBestDBm = r.f64()
		d.BorderDBm = r.f64()
		d.DelayLo = r.f64()
		d.DelayHi = r.f64()
		d.Delay = r.f64()
		d.NeighborsThreshold = r.f64()
		d.BeaconRxDBm = r.f64()
		d.TxPowerDBm = r.f64()
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(payload) {
		return nil, fmt.Errorf("trace: %d bytes of trailing data after the decision stream", len(payload)-r.off)
	}
	return t, nil
}

// WriteFile encodes and writes the trace.
func (t *Trace) WriteFile(path string) error {
	return os.WriteFile(path, t.Encode(), 0o644)
}

// ReadFile loads and strictly decodes a trace file.
func ReadFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

func putUvarint(b *bytes.Buffer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	b.Write(buf[:binary.PutUvarint(buf[:], v)])
}

func putVarint(b *bytes.Buffer, v int64) {
	var buf [binary.MaxVarintLen64]byte
	b.Write(buf[:binary.PutVarint(buf[:], v)])
}

func putBool(b *bytes.Buffer, v bool) {
	if v {
		b.WriteByte(1)
	} else {
		b.WriteByte(0)
	}
}

func putF64(b *bytes.Buffer, v float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
	b.Write(buf[:])
}

// reader is a bounds-checked sequential decoder; the first failure
// sticks in err and every later read returns zero.
type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("trace: truncated or malformed payload at offset %d", r.off)
	}
}

func (r *reader) byte() byte {
	if r.err != nil || r.off >= len(r.data) {
		r.fail()
		return 0
	}
	v := r.data[r.off]
	r.off++
	return v
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *reader) bool() bool {
	switch r.byte() {
	case 0:
		return false
	case 1:
		return true
	default:
		if r.err == nil {
			r.err = fmt.Errorf("trace: malformed bool at offset %d", r.off-1)
		}
		return false
	}
}

func (r *reader) f64() float64 {
	if r.err != nil || r.off+8 > len(r.data) {
		r.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.off:]))
	r.off += 8
	return v
}

func (r *reader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.data)-r.off) {
		r.fail()
		return ""
	}
	s := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}
