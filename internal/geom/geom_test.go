package geom

import (
	"math"
	"testing"
	"testing/quick"

	"aedbmls/internal/rng"
)

func TestVecOps(t *testing.T) {
	a, b := Vec2{1, 2}, Vec2{3, -1}
	if got := a.Add(b); got != (Vec2{4, 1}) {
		t.Fatalf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec2{-2, 3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Vec2{2, 4}) {
		t.Fatalf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 1 {
		t.Fatalf("Dot = %v", got)
	}
	if got := (Vec2{3, 4}).Len(); got != 5 {
		t.Fatalf("Len = %v", got)
	}
	if got := a.Dist(a); got != 0 {
		t.Fatalf("Dist self = %v", got)
	}
}

func TestDist2MatchesDist(t *testing.T) {
	check := func(ax, ay, bx, by float64) bool {
		if anyBad(ax, ay, bx, by) {
			return true
		}
		a, b := Vec2{ax, ay}, Vec2{bx, by}
		d, d2 := a.Dist(b), a.Dist2(b)
		return math.Abs(d*d-d2) <= 1e-9*(1+d2)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func anyBad(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.Abs(v) > 1e8 {
			return true
		}
	}
	return false
}

func TestUnitLength(t *testing.T) {
	for theta := 0.0; theta < 7; theta += 0.1 {
		if d := math.Abs(Unit(theta).Len() - 1); d > 1e-12 {
			t.Fatalf("Unit(%f) length off by %g", theta, d)
		}
	}
}

func TestRectBasics(t *testing.T) {
	r := Square(100)
	if r.Width() != 100 || r.Height() != 100 {
		t.Fatalf("square dims: %v x %v", r.Width(), r.Height())
	}
	if !r.Contains(Vec2{50, 50}) || r.Contains(Vec2{-1, 50}) || r.Contains(Vec2{50, 101}) {
		t.Fatal("Contains misbehaves")
	}
	if got := r.Clamp(Vec2{-5, 120}); got != (Vec2{0, 100}) {
		t.Fatalf("Clamp = %v", got)
	}
}

func TestReflectStaysInBounds(t *testing.T) {
	r := Rect{10, 20, 110, 90}
	check := func(x, y float64) bool {
		if anyBad(x, y) {
			return true
		}
		p, _, _ := r.Reflect(Vec2{x, y})
		return r.Contains(p)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestReflectIdentityInside(t *testing.T) {
	r := Square(500)
	p, fx, fy := r.Reflect(Vec2{250, 100})
	if p != (Vec2{250, 100}) || fx || fy {
		t.Fatalf("inside point changed: %v %v %v", p, fx, fy)
	}
}

func TestReflectSingleMirror(t *testing.T) {
	r := Square(100)
	p, fx, _ := r.Reflect(Vec2{110, 50})
	if p.X != 90 || !fx {
		t.Fatalf("got %v fx=%v, want x=90 fx=true", p, fx)
	}
	p, fx, _ = r.Reflect(Vec2{-30, 50})
	if p.X != 30 || !fx {
		t.Fatalf("got %v fx=%v, want x=30 fx=true", p, fx)
	}
}

func TestReflectFastSlowAgree(t *testing.T) {
	// The fast single-mirror path must agree with the general sawtooth.
	slow := func(v, lo, hi float64) float64 {
		span := hi - lo
		u := math.Mod(v-lo, 2*span)
		if u < 0 {
			u += 2 * span
		}
		if u <= span {
			return lo + u
		}
		return hi - (u - span)
	}
	check := func(v float64) bool {
		if anyBad(v) {
			return true
		}
		got, _ := reflect1(v, 0, 500)
		want := slow(v, 0, 500)
		return math.Abs(got-want) < 1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestReflectDegenerateRect(t *testing.T) {
	r := Rect{5, 5, 5, 5}
	p, _, _ := r.Reflect(Vec2{99, -3})
	if p != (Vec2{5, 5}) {
		t.Fatalf("degenerate rect reflect = %v", p)
	}
}

func TestGridInsertQuery(t *testing.T) {
	g := NewGrid(Square(100), 10)
	g.Insert(0, Vec2{5, 5})
	g.Insert(1, Vec2{8, 5})
	g.Insert(2, Vec2{95, 95})
	got := g.WithinRadius(nil, Vec2{5, 5}, 5, -1)
	if len(got) != 2 {
		t.Fatalf("WithinRadius returned %v, want ids 0 and 1", got)
	}
	got = g.WithinRadius(nil, Vec2{5, 5}, 5, 0)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("exclusion failed: %v", got)
	}
}

func TestGridMoveAndRemove(t *testing.T) {
	g := NewGrid(Square(100), 10)
	g.Insert(7, Vec2{10, 10})
	g.Insert(7, Vec2{90, 90}) // move
	if got := g.WithinRadius(nil, Vec2{10, 10}, 15, -1); len(got) != 0 {
		t.Fatalf("stale position found: %v", got)
	}
	if got := g.WithinRadius(nil, Vec2{90, 90}, 5, -1); len(got) != 1 {
		t.Fatalf("moved position not found: %v", got)
	}
	g.Remove(7)
	if g.Len() != 0 {
		t.Fatalf("Len after remove = %d", g.Len())
	}
	g.Remove(7) // idempotent
}

func TestGridMatchesBruteForce(t *testing.T) {
	r := rng.New(99)
	bounds := Square(500)
	g := NewGrid(bounds, 140)
	pts := make([]Vec2, 200)
	for i := range pts {
		pts[i] = Vec2{r.Range(0, 500), r.Range(0, 500)}
		g.Insert(i, pts[i])
	}
	for trial := 0; trial < 100; trial++ {
		q := Vec2{r.Range(0, 500), r.Range(0, 500)}
		radius := r.Range(1, 250)
		got := g.WithinRadius(nil, q, radius, -1)
		want := map[int]bool{}
		for i, p := range pts {
			if p.Dist(q) <= radius {
				want[i] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: grid found %d, brute force %d", trial, len(got), len(want))
		}
		for _, id := range got {
			if !want[id] {
				t.Fatalf("trial %d: unexpected id %d", trial, id)
			}
		}
	}
}

func TestGridReset(t *testing.T) {
	g := NewGrid(Square(10), 1)
	g.Insert(1, Vec2{5, 5})
	g.Reset()
	if g.Len() != 0 {
		t.Fatal("Reset did not clear points")
	}
	if got := g.WithinRadius(nil, Vec2{5, 5}, 10, -1); len(got) != 0 {
		t.Fatalf("query after reset: %v", got)
	}
}

func TestGridPanicsOnBadCellSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGrid with cell size 0 did not panic")
		}
	}()
	NewGrid(Square(10), 0)
}

func TestFlatGridMatchesBruteForce(t *testing.T) {
	bounds := Square(1000)
	const n = 300
	pts := make([]Vec2, n)
	x := uint32(7)
	next := func() float64 {
		x = x*1664525 + 1013904223
		return float64(x%100000) / 100
	}
	for i := range pts {
		pts[i] = Vec2{X: next(), Y: next()}
	}
	g := NewFlatGrid(bounds, 150, n)
	g.Build(pts)
	for _, q := range []Vec2{{X: 0, Y: 0}, {X: 500, Y: 500}, {X: 999, Y: 1}, {X: 140, Y: 860}} {
		for _, radius := range []float64{10, 150, 400} {
			got := g.Query(nil, q, radius, -1)
			want := map[int32]bool{}
			for i, p := range pts {
				if p.Dist2(q) <= radius*radius {
					want[int32(i)] = true
				}
			}
			if len(got) != len(want) {
				t.Fatalf("q=%v r=%v: %d hits, want %d", q, radius, len(got), len(want))
			}
			for _, id := range got {
				if !want[id] {
					t.Fatalf("q=%v r=%v: spurious id %d", q, radius, id)
				}
			}
		}
	}
}

func TestFlatGridExclude(t *testing.T) {
	g := NewFlatGrid(Square(100), 50, 3)
	g.Build([]Vec2{{X: 10, Y: 10}, {X: 12, Y: 10}, {X: 90, Y: 90}})
	got := g.Query(nil, Vec2{X: 10, Y: 10}, 20, 0)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("exclude failed: %v", got)
	}
}

func TestFlatGridRebuildReusesStorage(t *testing.T) {
	g := NewFlatGrid(Square(100), 25, 50)
	pts := make([]Vec2, 50)
	for i := range pts {
		pts[i] = Vec2{X: float64(i * 2), Y: float64(i)}
	}
	g.Build(pts)
	allocs := testing.AllocsPerRun(50, func() { g.Build(pts) })
	if allocs > 0 {
		t.Fatalf("rebuild allocates %v per op, want 0", allocs)
	}
}

func TestFlatGridOutOfBoundsClamped(t *testing.T) {
	// Points slightly outside bounds (float drift) land in edge cells and
	// stay queryable.
	g := NewFlatGrid(Square(100), 30, 2)
	g.Build([]Vec2{{X: -3, Y: 50}, {X: 104, Y: 50}})
	if got := g.Query(nil, Vec2{X: 0, Y: 50}, 5, -1); len(got) != 1 || got[0] != 0 {
		t.Fatalf("clamped low point lost: %v", got)
	}
	if got := g.Query(nil, Vec2{X: 100, Y: 50}, 5, -1); len(got) != 1 || got[0] != 1 {
		t.Fatalf("clamped high point lost: %v", got)
	}
}
