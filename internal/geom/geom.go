// Package geom provides the small amount of 2-D geometry the MANET
// substrate needs: vectors, axis-aligned rectangles, and a uniform spatial
// hash grid for efficient radio range queries.
package geom

import "math"

// Vec2 is a point or displacement in the plane.
type Vec2 struct {
	X, Y float64
}

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by k.
func (v Vec2) Scale(k float64) Vec2 { return Vec2{v.X * k, v.Y * k} }

// Dot returns the dot product of v and w.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Len returns the Euclidean norm of v.
func (v Vec2) Len() float64 { return math.Hypot(v.X, v.Y) }

// Dist returns the Euclidean distance between v and w.
func (v Vec2) Dist(w Vec2) float64 { return v.Sub(w).Len() }

// Dist2 returns the squared Euclidean distance between v and w.
func (v Vec2) Dist2(w Vec2) float64 {
	d := v.Sub(w)
	return d.Dot(d)
}

// Unit returns the direction vector for angle theta (radians).
func Unit(theta float64) Vec2 { return Vec2{math.Cos(theta), math.Sin(theta)} }

// Rect is an axis-aligned rectangle [MinX,MaxX] x [MinY,MaxY].
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Square returns a square area of the given side with origin (0,0).
func Square(side float64) Rect { return Rect{0, 0, side, side} }

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Contains reports whether p lies inside r (inclusive).
func (r Rect) Contains(p Vec2) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Clamp returns p moved to the nearest point inside r.
func (r Rect) Clamp(p Vec2) Vec2 {
	return Vec2{math.Min(math.Max(p.X, r.MinX), r.MaxX),
		math.Min(math.Max(p.Y, r.MinY), r.MaxY)}
}

// Reflect folds point p back into r, mirror-reflecting at the borders, and
// reports which axes were flipped so callers can mirror a velocity vector.
// It handles displacements of arbitrary size.
func (r Rect) Reflect(p Vec2) (Vec2, bool, bool) {
	x, fx := reflect1(p.X, r.MinX, r.MaxX)
	y, fy := reflect1(p.Y, r.MinY, r.MaxY)
	return Vec2{x, y}, fx, fy
}

// reflect1 mirrors coordinate v into [lo, hi], reporting whether an odd
// number of reflections occurred.
func reflect1(v, lo, hi float64) (float64, bool) {
	if hi <= lo {
		return lo, false
	}
	// Fast paths: inside, or one mirror away (the common case for mobility
	// segments much shorter than the arena).
	if v >= lo {
		if v <= hi {
			return v, false
		}
		if m := 2*hi - v; m >= lo {
			return m, true
		}
	} else if m := 2*lo - v; m <= hi {
		return m, true
	}
	span := hi - lo
	// General case: map into a sawtooth of period 2*span.
	t := math.Mod(v-lo, 2*span)
	if t < 0 {
		t += 2 * span
	}
	if t <= span {
		return lo + t, false
	}
	return hi - (t - span), true
}

// Grid is a uniform spatial hash over a Rect. It answers "which points lie
// within radius R of q" in O(points in nearby cells) instead of O(n),
// which is the hot query of the broadcast medium (every transmission must
// find its potential receivers).
//
// The grid stores int IDs; callers keep the ID -> position mapping.
type Grid struct {
	bounds   Rect
	cellSize float64
	nx, ny   int
	cells    [][]int32
	pos      map[int32]Vec2
}

// NewGrid creates a grid over bounds with the given cell size (typically
// the maximum radio range, so a radius query touches at most 9 cells).
func NewGrid(bounds Rect, cellSize float64) *Grid {
	if cellSize <= 0 {
		panic("geom: NewGrid with non-positive cell size")
	}
	nx := int(math.Ceil(bounds.Width()/cellSize)) + 1
	ny := int(math.Ceil(bounds.Height()/cellSize)) + 1
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	return &Grid{
		bounds:   bounds,
		cellSize: cellSize,
		nx:       nx,
		ny:       ny,
		cells:    make([][]int32, nx*ny),
		pos:      make(map[int32]Vec2),
	}
}

func (g *Grid) cellIndex(p Vec2) int {
	cx := int((p.X - g.bounds.MinX) / g.cellSize)
	cy := int((p.Y - g.bounds.MinY) / g.cellSize)
	if cx < 0 {
		cx = 0
	}
	if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= g.ny {
		cy = g.ny - 1
	}
	return cy*g.nx + cx
}

// Reset removes all points, retaining allocated storage.
func (g *Grid) Reset() {
	for i := range g.cells {
		g.cells[i] = g.cells[i][:0]
	}
	clear(g.pos)
}

// Insert adds (or moves) point id at position p.
func (g *Grid) Insert(id int, p Vec2) {
	iid := int32(id)
	if old, ok := g.pos[iid]; ok {
		g.removeFromCell(iid, g.cellIndex(old))
	}
	g.pos[iid] = p
	ci := g.cellIndex(p)
	g.cells[ci] = append(g.cells[ci], iid)
}

// Remove deletes point id if present.
func (g *Grid) Remove(id int) {
	iid := int32(id)
	if old, ok := g.pos[iid]; ok {
		g.removeFromCell(iid, g.cellIndex(old))
		delete(g.pos, iid)
	}
}

func (g *Grid) removeFromCell(id int32, ci int) {
	cell := g.cells[ci]
	for i, v := range cell {
		if v == id {
			cell[i] = cell[len(cell)-1]
			g.cells[ci] = cell[:len(cell)-1]
			return
		}
	}
}

// Len returns the number of stored points.
func (g *Grid) Len() int { return len(g.pos) }

// Position returns the stored position of id.
func (g *Grid) Position(id int) (Vec2, bool) {
	p, ok := g.pos[int32(id)]
	return p, ok
}

// FlatGrid is an allocation-free uniform grid over a fixed population of n
// points with IDs 0..n-1, the shape of a MANET node set. Unlike Grid it
// stores cells in CSR layout (one flat id array plus per-cell offsets), so
// a full rebuild is a counting sort with zero allocations after the first
// Build, and membership queries never touch a map.
//
// The intended protocol: Build with every point's position at some instant
// t0, then Query with an inflated radius (true radius + how far points may
// have drifted since t0); the caller re-filters candidates against exact
// current positions. This is what lets the broadcast medium answer "who
// can hear this transmission" without an O(n) scan per frame.
type FlatGrid struct {
	bounds   Rect
	cellSize float64
	nx, ny   int
	starts   []int32 // len nx*ny+1; cell c occupies ids[starts[c]:starts[c+1]]
	ids      []int32 // len n, grouped by cell
	cellOf   []int32 // len n, cell index of each id at Build time
	counts   []int32 // scratch for the counting sort
	pos      []Vec2  // positions at Build time, indexed by id
}

// NewFlatGrid creates a grid over bounds for n points. cellSize is
// typically the maximum radio range so a range query touches few cells.
func NewFlatGrid(bounds Rect, cellSize float64, n int) *FlatGrid {
	if cellSize <= 0 {
		panic("geom: NewFlatGrid with non-positive cell size")
	}
	if n < 0 {
		panic("geom: NewFlatGrid with negative point count")
	}
	nx := int(math.Ceil(bounds.Width() / cellSize))
	ny := int(math.Ceil(bounds.Height() / cellSize))
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	return &FlatGrid{
		bounds:   bounds,
		cellSize: cellSize,
		nx:       nx,
		ny:       ny,
		starts:   make([]int32, nx*ny+1),
		ids:      make([]int32, n),
		cellOf:   make([]int32, n),
		counts:   make([]int32, nx*ny),
		pos:      make([]Vec2, n),
	}
}

func (g *FlatGrid) clampCell(p Vec2) (int, int) {
	cx := int((p.X - g.bounds.MinX) / g.cellSize)
	cy := int((p.Y - g.bounds.MinY) / g.cellSize)
	if cx < 0 {
		cx = 0
	} else if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.ny {
		cy = g.ny - 1
	}
	return cx, cy
}

// Build (re)indexes all n points from their positions. pos must have
// exactly the length the grid was created for. No allocations occur.
func (g *FlatGrid) Build(pos []Vec2) {
	if len(pos) != len(g.pos) {
		panic("geom: FlatGrid.Build with wrong point count")
	}
	copy(g.pos, pos)
	for i := range g.counts {
		g.counts[i] = 0
	}
	for i, p := range pos {
		cx, cy := g.clampCell(p)
		c := int32(cy*g.nx + cx)
		g.cellOf[i] = c
		g.counts[c]++
	}
	var acc int32
	for c, n := range g.counts {
		g.starts[c] = acc
		acc += n
		g.counts[c] = g.starts[c] // reuse as write cursor
	}
	g.starts[len(g.starts)-1] = acc
	for i := range pos {
		c := g.cellOf[i]
		g.ids[g.counts[c]] = int32(i)
		g.counts[c]++
	}
}

// Query appends to dst the IDs of all points whose Build-time position
// lies within radius of q (excluding exclude; pass a negative exclude to
// keep all) and returns the extended slice. IDs within a cell appear in
// ascending order, but cell visitation order is row-major, so callers
// needing a globally deterministic order should sort the result.
func (g *FlatGrid) Query(dst []int32, q Vec2, radius float64, exclude int) []int32 {
	r2 := radius * radius
	span := int(math.Ceil(radius / g.cellSize))
	cx, cy := g.clampCell(q)
	for dy := -span; dy <= span; dy++ {
		y := cy + dy
		if y < 0 || y >= g.ny {
			continue
		}
		for dx := -span; dx <= span; dx++ {
			x := cx + dx
			if x < 0 || x >= g.nx {
				continue
			}
			c := y*g.nx + x
			for _, id := range g.ids[g.starts[c]:g.starts[c+1]] {
				if int(id) == exclude {
					continue
				}
				if g.pos[id].Dist2(q) <= r2 {
					dst = append(dst, id)
				}
			}
		}
	}
	return dst
}

// Len returns the number of indexed points.
func (g *FlatGrid) Len() int { return len(g.pos) }

// Dims returns the grid dimensions in cells.
func (g *FlatGrid) Dims() (nx, ny int) { return g.nx, g.ny }

// CellSize returns the grid resolution.
func (g *FlatGrid) CellSize() float64 { return g.cellSize }

// Bounds returns the rectangle the grid was built over.
func (g *FlatGrid) Bounds() Rect { return g.bounds }

// WithinRadius appends to dst the IDs of all points within radius of q
// (excluding the point with ID exclude; pass a negative exclude to keep
// all) and returns the extended slice. Order is unspecified.
func (g *Grid) WithinRadius(dst []int, q Vec2, radius float64, exclude int) []int {
	r2 := radius * radius
	span := int(math.Ceil(radius / g.cellSize))
	cx := int((q.X - g.bounds.MinX) / g.cellSize)
	cy := int((q.Y - g.bounds.MinY) / g.cellSize)
	for dy := -span; dy <= span; dy++ {
		y := cy + dy
		if y < 0 || y >= g.ny {
			continue
		}
		for dx := -span; dx <= span; dx++ {
			x := cx + dx
			if x < 0 || x >= g.nx {
				continue
			}
			for _, id := range g.cells[y*g.nx+x] {
				if int(id) == exclude {
					continue
				}
				if g.pos[id].Dist2(q) <= r2 {
					dst = append(dst, int(id))
				}
			}
		}
	}
	return dst
}
