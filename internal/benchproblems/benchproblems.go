// Package benchproblems provides classic synthetic multi-objective
// benchmark problems (Schaffer, Fonseca-Fleming, ZDT1/2/3, DTLZ2 and a
// constrained variant). They give the optimisation algorithms fast,
// analytically understood targets for unit tests, property tests and
// ablation benchmarks, independently of the (much slower) AEDB simulation
// problem.
package benchproblems

import (
	"math"

	"aedbmls/internal/moo"
)

// Func wraps a plain function as a moo.Problem.
type Func struct {
	ProblemName string
	D, M        int
	LoV, HiV    []float64
	Eval        func(x []float64) (f []float64, violation float64)
}

var _ moo.Problem = (*Func)(nil)

// Name implements moo.Problem.
func (p *Func) Name() string { return p.ProblemName }

// Dim implements moo.Problem.
func (p *Func) Dim() int { return p.D }

// NumObjectives implements moo.Problem.
func (p *Func) NumObjectives() int { return p.M }

// Bounds implements moo.Problem.
func (p *Func) Bounds() (lo, hi []float64) { return p.LoV, p.HiV }

// Evaluate implements moo.Problem.
func (p *Func) Evaluate(x []float64) (f []float64, violation float64, aux any) {
	f, violation = p.Eval(x)
	return f, violation, nil
}

func uniformBounds(dim int, lo, hi float64) (l, h []float64) {
	l = make([]float64, dim)
	h = make([]float64, dim)
	for i := range l {
		l[i], h[i] = lo, hi
	}
	return l, h
}

// Schaffer returns the single-variable Schaffer problem: f1 = x^2,
// f2 = (x-2)^2; the Pareto set is x in [0, 2].
func Schaffer() *Func {
	lo, hi := uniformBounds(1, -4, 4)
	return &Func{
		ProblemName: "schaffer", D: 1, M: 2, LoV: lo, HiV: hi,
		Eval: func(x []float64) ([]float64, float64) {
			return []float64{x[0] * x[0], (x[0] - 2) * (x[0] - 2)}, 0
		},
	}
}

// Fonseca returns the Fonseca-Fleming two-objective problem in dim
// variables; the Pareto set is x_i identical in [-1/sqrt(n), 1/sqrt(n)].
func Fonseca(dim int) *Func {
	lo, hi := uniformBounds(dim, -4, 4)
	return &Func{
		ProblemName: "fonseca", D: dim, M: 2, LoV: lo, HiV: hi,
		Eval: func(x []float64) ([]float64, float64) {
			inv := 1 / math.Sqrt(float64(dim))
			var s1, s2 float64
			for _, v := range x {
				s1 += (v - inv) * (v - inv)
				s2 += (v + inv) * (v + inv)
			}
			return []float64{1 - math.Exp(-s1), 1 - math.Exp(-s2)}, 0
		},
	}
}

func zdtG(x []float64) float64 {
	var s float64
	for _, v := range x[1:] {
		s += v
	}
	return 1 + 9*s/float64(len(x)-1)
}

// ZDT1 returns the convex-front ZDT1 problem in dim variables (dim >= 2).
func ZDT1(dim int) *Func {
	lo, hi := uniformBounds(dim, 0, 1)
	return &Func{
		ProblemName: "zdt1", D: dim, M: 2, LoV: lo, HiV: hi,
		Eval: func(x []float64) ([]float64, float64) {
			g := zdtG(x)
			f1 := x[0]
			return []float64{f1, g * (1 - math.Sqrt(f1/g))}, 0
		},
	}
}

// ZDT2 returns the concave-front ZDT2 problem.
func ZDT2(dim int) *Func {
	lo, hi := uniformBounds(dim, 0, 1)
	return &Func{
		ProblemName: "zdt2", D: dim, M: 2, LoV: lo, HiV: hi,
		Eval: func(x []float64) ([]float64, float64) {
			g := zdtG(x)
			f1 := x[0]
			r := f1 / g
			return []float64{f1, g * (1 - r*r)}, 0
		},
	}
}

// ZDT3 returns the disconnected-front ZDT3 problem.
func ZDT3(dim int) *Func {
	lo, hi := uniformBounds(dim, 0, 1)
	return &Func{
		ProblemName: "zdt3", D: dim, M: 2, LoV: lo, HiV: hi,
		Eval: func(x []float64) ([]float64, float64) {
			g := zdtG(x)
			f1 := x[0]
			r := f1 / g
			return []float64{f1, g * (1 - math.Sqrt(r) - r*math.Sin(10*math.Pi*f1))}, 0
		},
	}
}

// DTLZ2 returns the three-objective DTLZ2 problem in dim variables
// (dim >= 3); the Pareto front is the unit-sphere octant.
func DTLZ2(dim int) *Func {
	lo, hi := uniformBounds(dim, 0, 1)
	return &Func{
		ProblemName: "dtlz2", D: dim, M: 3, LoV: lo, HiV: hi,
		Eval: func(x []float64) ([]float64, float64) {
			var g float64
			for _, v := range x[2:] {
				g += (v - 0.5) * (v - 0.5)
			}
			c1 := math.Cos(x[0] * math.Pi / 2)
			s1 := math.Sin(x[0] * math.Pi / 2)
			c2 := math.Cos(x[1] * math.Pi / 2)
			s2 := math.Sin(x[1] * math.Pi / 2)
			return []float64{(1 + g) * c1 * c2, (1 + g) * c1 * s2, (1 + g) * s1}, 0
		},
	}
}

// ConstrainedSchaffer returns Schaffer with the constraint x >= 0.5
// (violation = 0.5 - x when x < 0.5), exercising the constrained-dominance
// machinery with a known feasible Pareto set x in [0.5, 2].
func ConstrainedSchaffer() *Func {
	base := Schaffer()
	return &Func{
		ProblemName: "schaffer-constrained", D: 1, M: 2, LoV: base.LoV, HiV: base.HiV,
		Eval: func(x []float64) ([]float64, float64) {
			f, _ := base.Eval(x)
			viol := 0.5 - x[0]
			if viol < 0 {
				viol = 0
			}
			return f, viol
		},
	}
}

// ZDT1Front samples n points of ZDT1's true Pareto front (g = 1).
func ZDT1Front(n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		f1 := float64(i) / float64(n-1)
		out[i] = []float64{f1, 1 - math.Sqrt(f1)}
	}
	return out
}

// DTLZ2Front samples roughly n points of DTLZ2's true front (the unit
// sphere octant), on a lat-long grid.
func DTLZ2Front(n int) [][]float64 {
	side := int(math.Sqrt(float64(n)))
	if side < 2 {
		side = 2
	}
	var out [][]float64
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			t1 := float64(i) / float64(side-1) * math.Pi / 2
			t2 := float64(j) / float64(side-1) * math.Pi / 2
			out = append(out, []float64{
				math.Cos(t1) * math.Cos(t2),
				math.Cos(t1) * math.Sin(t2),
				math.Sin(t1),
			})
		}
	}
	return out
}
