package benchproblems

import (
	"math"
	"testing"
	"testing/quick"

	"aedbmls/internal/moo"
	"aedbmls/internal/rng"
)

func TestShapes(t *testing.T) {
	problems := []*Func{
		Schaffer(), Fonseca(3), ZDT1(5), ZDT2(5), ZDT3(5), DTLZ2(7), ConstrainedSchaffer(),
	}
	for _, p := range problems {
		lo, hi := p.Bounds()
		if len(lo) != p.Dim() || len(hi) != p.Dim() {
			t.Errorf("%s: bounds length mismatch", p.Name())
		}
		x := make([]float64, p.Dim())
		for i := range x {
			x[i] = (lo[i] + hi[i]) / 2
		}
		f, _, _ := p.Evaluate(x)
		if len(f) != p.NumObjectives() {
			t.Errorf("%s: objective arity %d, want %d", p.Name(), len(f), p.NumObjectives())
		}
		for _, v := range f {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: non-finite objective %v", p.Name(), f)
			}
		}
	}
}

func TestSchafferKnownValues(t *testing.T) {
	p := Schaffer()
	f, viol, _ := p.Evaluate([]float64{0})
	if f[0] != 0 || f[1] != 4 || viol != 0 {
		t.Fatalf("Schaffer(0) = %v", f)
	}
	f, _, _ = p.Evaluate([]float64{2})
	if f[0] != 4 || f[1] != 0 {
		t.Fatalf("Schaffer(2) = %v", f)
	}
}

func TestZDT1OptimalFront(t *testing.T) {
	p := ZDT1(6)
	// x1 free, the rest zero: on the optimal front f2 = 1 - sqrt(f1).
	for _, x1 := range []float64{0, 0.25, 1} {
		x := make([]float64, 6)
		x[0] = x1
		f, _, _ := p.Evaluate(x)
		want := 1 - math.Sqrt(x1)
		if math.Abs(f[1]-want) > 1e-12 {
			t.Fatalf("ZDT1 optimal point f2 = %v, want %v", f[1], want)
		}
	}
	// Nonzero tail variables worsen f2.
	x := make([]float64, 6)
	x[0] = 0.5
	x[3] = 0.9
	f, _, _ := p.Evaluate(x)
	if f[1] <= 1-math.Sqrt(0.5) {
		t.Fatal("ZDT1 g-penalty missing")
	}
}

func TestZDT2Concave(t *testing.T) {
	p := ZDT2(4)
	x := make([]float64, 4)
	x[0] = 0.5
	f, _, _ := p.Evaluate(x)
	if math.Abs(f[1]-(1-0.25)) > 1e-12 {
		t.Fatalf("ZDT2 optimal f2 = %v, want 0.75", f[1])
	}
}

func TestDTLZ2FrontOnSphere(t *testing.T) {
	p := DTLZ2(7)
	// Tail at 0.5 -> g = 0 -> points on the unit sphere.
	x := []float64{0.3, 0.7, 0.5, 0.5, 0.5, 0.5, 0.5}
	f, _, _ := p.Evaluate(x)
	norm := math.Sqrt(f[0]*f[0] + f[1]*f[1] + f[2]*f[2])
	if math.Abs(norm-1) > 1e-12 {
		t.Fatalf("DTLZ2 optimal point norm = %v, want 1", norm)
	}
}

func TestConstrainedSchafferViolation(t *testing.T) {
	p := ConstrainedSchaffer()
	_, viol, _ := p.Evaluate([]float64{0.2})
	if math.Abs(viol-0.3) > 1e-12 {
		t.Fatalf("violation at 0.2 = %v, want 0.3", viol)
	}
	_, viol, _ = p.Evaluate([]float64{0.6})
	if viol != 0 {
		t.Fatalf("violation at 0.6 = %v, want 0", viol)
	}
}

func TestReferenceFronts(t *testing.T) {
	zf := ZDT1Front(50)
	if len(zf) != 50 {
		t.Fatalf("ZDT1Front size = %d", len(zf))
	}
	for _, p := range zf {
		if math.Abs(p[1]-(1-math.Sqrt(p[0]))) > 1e-12 {
			t.Fatalf("ZDT1Front point off the front: %v", p)
		}
	}
	df := DTLZ2Front(100)
	for _, p := range df {
		norm := math.Sqrt(p[0]*p[0] + p[1]*p[1] + p[2]*p[2])
		if math.Abs(norm-1) > 1e-9 {
			t.Fatalf("DTLZ2Front point off the sphere: %v", p)
		}
	}
}

func TestEvaluateViaMooInterface(t *testing.T) {
	var p moo.Problem = ZDT3(4)
	r := rng.New(1)
	check := func() bool {
		lo, hi := p.Bounds()
		x := make([]float64, p.Dim())
		for i := range x {
			x[i] = r.Range(lo[i], hi[i])
		}
		s := moo.NewSolution(p, x)
		return len(s.F) == p.NumObjectives() && !math.IsNaN(s.F[0]) && !math.IsNaN(s.F[1])
	}
	if err := quick.Check(func() bool { return check() }, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
