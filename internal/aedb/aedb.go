// Package aedb implements the Adaptive Enhanced Distance-Based broadcasting
// protocol (AEDB, Ruiz & Bouvry 2010) exactly as specified by the
// pseudocode in Fig. 1 of the reproduced paper, plus two simpler baselines
// (blind flooding and non-adaptive distance-based broadcasting) used in
// examples and ablations.
//
// AEDB in one paragraph: a node receiving a broadcast message becomes a
// forwarding candidate only if the strongest copy it has heard arrived
// weaker than the border threshold (it sits in the "forwarding area", far
// from every known sender). Candidates wait a random delay, keep listening
// — additional copies update the strongest-power bookkeeping and may
// disqualify them — and, if still candidates when the timer fires, forward
// with a reduced transmission power estimated from beacon signal strengths:
// enough to reach the furthest neighbor (sparse regime) or, when more than
// neighbors-threshold devices sit in the forwarding area, only the
// forwarding-area neighbor closest to the sender (dense regime), plus a
// mobility safety margin.
package aedb

import (
	"fmt"
	"math"
	"sync"

	"aedbmls/internal/manet"
	"aedbmls/internal/radio"
)

// Parameter vector indices, shared with the optimisers.
const (
	IdxMinDelay = iota
	IdxMaxDelay
	IdxBorderThreshold
	IdxMarginThreshold
	IdxNeighborsThreshold
	NumParams
)

// ParamNames are the canonical parameter names, indexed by Idx constants.
var ParamNames = [NumParams]string{
	"min_delay", "max_delay", "border_threshold", "margin_threshold", "neighbors_threshold",
}

// Params is an AEDB configuration: the five tuned variables of the paper.
type Params struct {
	MinDelay           float64 // s, lower bound of the forwarding delay
	MaxDelay           float64 // s, upper bound of the forwarding delay
	BorderThresholdDBm float64 // forwarding-area limit on received power
	MarginDBm          float64 // mobility margin added to the power estimate
	NeighborsThreshold float64 // forwarding-area population that triggers the dense regime
}

// Vector returns the parameter vector in canonical order.
func (p Params) Vector() []float64 {
	return []float64{p.MinDelay, p.MaxDelay, p.BorderThresholdDBm, p.MarginDBm, p.NeighborsThreshold}
}

// FromVector builds Params from a canonical-order vector.
func FromVector(x []float64) Params {
	if len(x) != NumParams {
		panic(fmt.Sprintf("aedb: FromVector needs %d values, got %d", NumParams, len(x)))
	}
	return Params{
		MinDelay:           x[IdxMinDelay],
		MaxDelay:           x[IdxMaxDelay],
		BorderThresholdDBm: x[IdxBorderThreshold],
		MarginDBm:          x[IdxMarginThreshold],
		NeighborsThreshold: x[IdxNeighborsThreshold],
	}
}

// DelayInterval returns the normalised [lo, hi] waiting interval. The two
// delay variables are searched independently over different ranges (Table
// III), so MaxDelay may come out below MinDelay; the interval is the span
// between them.
func (p Params) DelayInterval() (lo, hi float64) {
	if p.MinDelay <= p.MaxDelay {
		return p.MinDelay, p.MaxDelay
	}
	return p.MaxDelay, p.MinDelay
}

// Domain is a box of valid parameter vectors.
type Domain struct {
	Lo, Hi [NumParams]float64
}

// DefaultDomain is the optimisation search space of Table III.
func DefaultDomain() Domain {
	return Domain{
		Lo: [NumParams]float64{0, 0, -95, 0, 0},
		Hi: [NumParams]float64{1, 5, -70, 3, 50},
	}
}

// SensitivityDomain is the wider box used for the Fast99 sensitivity
// analysis in Sect. III-B of the paper (delays up to 5 s, border threshold
// across the whole receivable band, margin up to 16.2 dBm, neighbors
// threshold up to 100).
func SensitivityDomain() Domain {
	return Domain{
		Lo: [NumParams]float64{0, 0, -95, 0, 0},
		Hi: [NumParams]float64{5, 5, 0, 16.2, 100},
	}
}

// Bounds returns the domain as slices (for the moo.Problem interface).
func (d Domain) Bounds() (lo, hi []float64) {
	lo = append(lo, d.Lo[:]...)
	hi = append(hi, d.Hi[:]...)
	return lo, hi
}

// Clamp returns p with every parameter clipped into the domain box.
func (d Domain) Clamp(p Params) Params {
	x := p.Vector()
	for i := range x {
		if x[i] < d.Lo[i] {
			x[i] = d.Lo[i]
		}
		if x[i] > d.Hi[i] {
			x[i] = d.Hi[i]
		}
	}
	return FromVector(x)
}

// Contains reports whether p lies inside the domain box.
func (d Domain) Contains(p Params) bool {
	x := p.Vector()
	for i := range x {
		if x[i] < d.Lo[i] || x[i] > d.Hi[i] {
			return false
		}
	}
	return true
}

// Validate reports structurally invalid parameters (negative delays or
// margin). Out-of-domain values are legal at the protocol level — Clamp is
// the optimiser's job.
func (p Params) Validate() error {
	if p.MinDelay < 0 || p.MaxDelay < 0 {
		return fmt.Errorf("aedb: negative delay (%g, %g)", p.MinDelay, p.MaxDelay)
	}
	if p.MarginDBm < 0 {
		return fmt.Errorf("aedb: negative margin %g", p.MarginDBm)
	}
	if p.NeighborsThreshold < 0 {
		return fmt.Errorf("aedb: negative neighbors threshold %g", p.NeighborsThreshold)
	}
	return nil
}

// msgState is the per-message state of the Fig. 1 pseudocode. pbest is the
// strongest received power observed for the message (the pseudocode's
// "pmin" variable: it is initialised at the first copy and raised whenever
// a stronger copy arrives, lines 2-3 and 11-14). heardFrom is the small
// set of senders the message arrived from, kept as a slice: a node hears
// a given broadcast from a handful of neighbors at most, and the
// evaluation loop creates one msgState per node per broadcast, so map
// allocation churn would dominate. msg pins the message for the timer
// callback, and timer is the tagged-timer handle (a plain value: arming
// the forwarding delay allocates nothing, see manet.Node.ScheduleTimer).
type msgState struct {
	pbest     float64
	waiting   bool
	done      bool
	msg       *manet.Message
	timer     manet.Timer
	heardFrom []int32
}

func (st *msgState) heard(id int) bool {
	for _, v := range st.heardFrom {
		if v == int32(id) {
			return true
		}
	}
	return false
}

func (st *msgState) addHeard(id int) {
	if !st.heard(id) {
		st.heardFrom = append(st.heardFrom, int32(id))
	}
}

// Protocol is one node's AEDB instance.
type Protocol struct {
	P    Params
	node *manet.Node

	// first holds the per-message state of the first message this node
	// observed, inline: an evaluation broadcast disseminates exactly one
	// message, so the common case allocates neither a map nor a state
	// object per node per simulation (the evaluation engine creates one
	// Protocol per node per candidate — at 75 nodes and thousands of
	// candidates, the map dominated the allocation profile). Additional
	// messages of multi-broadcast simulations spill into overflow.
	first     msgState
	firstID   int
	firstUsed bool
	overflow  map[int]*msgState

	// Forwards counts data transmissions triggered by the timer path.
	Forwards int
	// Drops counts messages discarded because pbest exceeded the border
	// threshold (either immediately or when the timer fired).
	Drops int
}

var _ manet.Protocol = (*Protocol)(nil)
var _ manet.ProtoRecycler = (*Protocol)(nil)

// protoPool recycles Protocol instances across simulations. The
// evaluation engine creates one instance per node per candidate —
// hundreds of thousands per optimisation batch — and before pooling,
// those instances plus their heardFrom slices were the two dominant
// allocation classes of the whole evaluator. Entries in the pool are
// always in the zero observable state (Recycle resets before Put), with
// the heardFrom slice and overflow map retaining their capacity, so a
// pooled instance behaves bit-identically to a fresh &Protocol{}.
// sync.Pool is safe for the concurrent factory calls of parallel
// batch waves.
var protoPool = sync.Pool{New: func() any { return new(Protocol) }}

// New returns a protocol factory for manet.New. Instances are drawn from
// a package-level pool and handed back when an evaluation arena
// invalidates the network that owned them (see manet.ProtoRecycler);
// non-arena simulations simply drop them for the garbage collector.
func New(p Params) func(*manet.Node) manet.Protocol {
	return func(*manet.Node) manet.Protocol {
		pr := protoPool.Get().(*Protocol)
		pr.P = p
		return pr
	}
}

// Recycle implements manet.ProtoRecycler: reset to the zero observable
// state — keeping the heardFrom capacity and the overflow map, whose
// reuse is exactly what makes pooling pay — and return to the pool. Only
// the arena instantiation path calls this, at the moment the instance's
// network is invalidated.
func (a *Protocol) Recycle() {
	heard := a.first.heardFrom[:0]
	overflow := a.overflow
	clear(overflow)
	*a = Protocol{overflow: overflow}
	a.first.heardFrom = heard
	protoPool.Put(a)
}

// state returns the message state for id, or nil if the node has not
// observed the message yet. The overflow map wins over the inline slot:
// re-registering an already-observed ID (Originate after a reception of
// the same message) must shadow the older state, exactly as the map
// overwrite of the pre-inline implementation did.
func (a *Protocol) state(id int) *msgState {
	if a.overflow != nil {
		if st := a.overflow[id]; st != nil {
			return st
		}
	}
	if a.firstUsed && a.firstID == id {
		return &a.first
	}
	return nil
}

// newState registers a fresh (zero) state for id and returns it: inline
// for the node's first message, via the overflow map afterwards.
func (a *Protocol) newState(id int) *msgState {
	if !a.firstUsed {
		a.firstUsed = true
		a.firstID = id
		a.first = msgState{heardFrom: a.first.heardFrom[:0]}
		return &a.first
	}
	if a.overflow == nil {
		a.overflow = make(map[int]*msgState)
	}
	st := &msgState{}
	a.overflow[id] = st
	return st
}

// Init implements manet.Protocol.
func (a *Protocol) Init(n *manet.Node) { a.node = n }

// Originate implements manet.Protocol: the source transmits at the default
// power (it has no reception information to adapt with).
func (a *Protocol) Originate(msg *manet.Message) {
	a.newState(msg.ID).done = true
	net := a.node.Network()
	if cb := net.Cfg.OnDecision; cb != nil {
		cb(manet.Decision{
			Kind: manet.DecisionOriginate, Node: int32(a.node.ID), From: -1,
			MsgID: int32(msg.ID), Time: net.Sim.Now(),
			RxPowerDBm: math.NaN(), PBestDBm: math.NaN(), BeaconRxDBm: math.NaN(),
			BorderDBm:  a.P.BorderThresholdDBm,
			TxPowerDBm: net.Cfg.DefaultTxPowerDBm,
		})
	}
	net.TransmitData(a.node, msg, net.Cfg.DefaultTxPowerDBm)
}

// decision assembles the fields every reception-triggered Decision
// shares; callers fill the kind-specific ones. Only called from inside
// an OnDecision nil-check, so disabled tracing never pays for it.
func (a *Protocol) decision(kind manet.DecisionKind, msgID, from int, rxPowerDBm float64, st *msgState) manet.Decision {
	return manet.Decision{
		Kind: kind, Node: int32(a.node.ID), From: int32(from), MsgID: int32(msgID),
		Time:       a.node.Network().Sim.Now(),
		RxPowerDBm: rxPowerDBm, PBestDBm: st.pbest, BorderDBm: a.P.BorderThresholdDBm,
		BeaconRxDBm: math.NaN(),
	}
}

// OnData implements manet.Protocol; it is the reception half of Fig. 1
// (lines 1-15).
func (a *Protocol) OnData(msg *manet.Message, from int, rxPowerDBm float64) {
	st := a.state(msg.ID)
	if st == nil {
		// First reception (lines 1-9).
		st = a.newState(msg.ID)
		st.pbest = rxPowerDBm
		st.addHeard(from)
		cb := a.node.Network().Cfg.OnDecision
		if rxPowerDBm > a.P.BorderThresholdDBm {
			// Too close to the sender: drop (lines 4-5).
			st.done = true
			a.Drops++
			if cb != nil {
				cb(a.decision(manet.DecisionDropClose, msg.ID, from, rxPowerDBm, st))
			}
			return
		}
		st.waiting = true
		st.msg = msg
		lo, hi := a.P.DelayInterval()
		delay := a.node.Rng.RangeClosed(lo, hi) // rand in [delay interval] (line 8)
		st.timer = a.node.ScheduleTimer(delay, int32(msg.ID))
		if cb != nil {
			d := a.decision(manet.DecisionArm, msg.ID, from, rxPowerDBm, st)
			d.DelayLo, d.DelayHi, d.Delay = lo, hi, delay
			cb(d)
		}
		return
	}
	if st.waiting {
		// Duplicate while waiting (lines 10-15): track the strongest copy
		// and remember the sender for the sparse-regime neighbor discard.
		st.addHeard(from)
		if rxPowerDBm > st.pbest {
			st.pbest = rxPowerDBm
		}
		cb := a.node.Network().Cfg.OnDecision
		if cb != nil {
			cb(a.decision(manet.DecisionDuplicate, msg.ID, from, rxPowerDBm, st))
		}
		if st.pbest > a.P.BorderThresholdDBm {
			// The node is disqualified for good: pbest only ever rises, so
			// the timer could now only drop. Resolving the drop here instead
			// of at expiry is observably identical (Fig. 1 re-checks pbest
			// at fire time) and disarms the timer early, which lets the
			// evaluation engine's quiescence detection stop the simulation
			// as soon as the last *live* forwarding decision is resolved.
			st.timer.Cancel()
			st.waiting = false
			st.done = true
			a.Drops++
			if cb != nil {
				cb(a.decision(manet.DecisionCancel, msg.ID, from, rxPowerDBm, st))
			}
		}
	}
}

// OnTimer implements manet.Protocol: the forwarding delay for message ID
// `tag` expired.
func (a *Protocol) OnTimer(tag int32) {
	st := a.state(int(tag))
	if st == nil || !st.waiting {
		return
	}
	a.fire(st.msg, st)
}

// fire is the timer half of Fig. 1 (lines 16-27).
func (a *Protocol) fire(msg *manet.Message, st *msgState) {
	st.waiting = false
	st.done = true
	cb := a.node.Network().Cfg.OnDecision
	if st.pbest > a.P.BorderThresholdDBm {
		// Disqualified by a copy heard during the wait (lines 16-17).
		a.Drops++
		if cb != nil {
			cb(a.decision(manet.DecisionExpireDrop, msg.ID, -1, math.NaN(), st))
		}
		return
	}
	a.Forwards++
	power, potential, regime, beaconRx := a.txPower(st)
	if cb != nil {
		d := a.decision(manet.DecisionForward, msg.ID, -1, math.NaN(), st)
		d.Potential = potential
		d.NeighborsThreshold = a.P.NeighborsThreshold
		d.Regime = regime
		d.BeaconRxDBm = beaconRx
		d.TxPowerDBm = power
		cb(d)
	}
	a.node.Network().TransmitData(a.node, msg, power)
}

// txPower computes the adapted transmission power (lines 19-24): the dense
// regime targets the forwarding-area neighbor closest to the border
// threshold (the nearest of the far nodes), the sparse regime targets the
// furthest neighbor after discarding the nodes the message was already
// heard from. The estimate inverts the beacon link budget and adds the
// mobility margin. The extra returns feed DecisionForward traces:
// potential is the forwarding-area neighbor count, regime the
// manet.Regime* branch taken, beaconRx the chosen link-budget beacon
// (NaN on fallback).
func (a *Protocol) txPower(st *msgState) (power float64, potential int32, regime uint8, beaconRx float64) {
	cfg := &a.node.Network().Cfg
	nbrs := a.node.Neighbors()

	inArea := 0
	bestDense := 0.0 // strongest beacon inside the forwarding area
	haveDense := false
	weakest := 0.0 // weakest beacon among non-discarded neighbors
	haveSparse := false
	for _, e := range nbrs {
		if e.RxPowerDBm <= a.P.BorderThresholdDBm {
			inArea++
			if !haveDense || e.RxPowerDBm > bestDense {
				bestDense, haveDense = e.RxPowerDBm, true
			}
		}
		if !st.heard(e.ID) {
			if !haveSparse || e.RxPowerDBm < weakest {
				weakest, haveSparse = e.RxPowerDBm, true
			}
		}
	}

	switch {
	case float64(inArea) > a.P.NeighborsThreshold && haveDense:
		beaconRx, regime = bestDense, manet.RegimeDense
	case haveSparse:
		beaconRx, regime = weakest, manet.RegimeSparse
	default:
		// Empty (or fully discarded) neighbor table: fall back to the
		// default power, the safe choice under total uncertainty.
		return cfg.DefaultTxPowerDBm, int32(inArea), manet.RegimeFallback, math.NaN()
	}
	need := radio.TxPowerToReach(cfg.DefaultTxPowerDBm, beaconRx, cfg.SensitivityDBm) + a.P.MarginDBm
	return radio.ClampTxPower(need, cfg.DefaultTxPowerDBm), int32(inArea), regime, beaconRx
}

// Flooding is the classic blind-flooding baseline: every node forwards the
// first copy it receives, at full power, after a short random delay drawn
// from the same interval AEDB would use.
type Flooding struct {
	MinDelay, MaxDelay float64
	node               *manet.Node
	seen               map[int]bool
	// pending holds the messages whose forwarding timer is armed, keyed
	// by the message ID the timer carries as its tag.
	pending map[int]*manet.Message
}

var _ manet.Protocol = (*Flooding)(nil)

// NewFlooding returns a flooding factory with the given delay interval.
func NewFlooding(minDelay, maxDelay float64) func(*manet.Node) manet.Protocol {
	return func(*manet.Node) manet.Protocol {
		return &Flooding{
			MinDelay: minDelay, MaxDelay: maxDelay,
			seen: make(map[int]bool), pending: make(map[int]*manet.Message),
		}
	}
}

// Init implements manet.Protocol.
func (f *Flooding) Init(n *manet.Node) { f.node = n }

// Originate implements manet.Protocol.
func (f *Flooding) Originate(msg *manet.Message) {
	f.seen[msg.ID] = true
	f.node.Network().TransmitData(f.node, msg, f.node.Network().Cfg.DefaultTxPowerDBm)
}

// OnData implements manet.Protocol.
func (f *Flooding) OnData(msg *manet.Message, _ int, _ float64) {
	if f.seen[msg.ID] {
		return
	}
	f.seen[msg.ID] = true
	lo, hi := f.MinDelay, f.MaxDelay
	if hi < lo {
		lo, hi = hi, lo
	}
	delay := f.node.Rng.RangeClosed(lo, hi)
	f.pending[msg.ID] = msg
	f.node.ScheduleTimer(delay, int32(msg.ID))
}

// OnTimer implements manet.Protocol: forward the delayed message at full
// power.
func (f *Flooding) OnTimer(tag int32) {
	msg := f.pending[int(tag)]
	if msg == nil {
		return
	}
	delete(f.pending, int(tag))
	f.node.Network().TransmitData(f.node, msg, f.node.Network().Cfg.DefaultTxPowerDBm)
}

// DistanceBroadcast is the enhanced distance-based baseline AEDB descends
// from: forwarding is gated by the border threshold (with the same
// listen-while-waiting disqualification), but the transmission power is
// never adapted — forwards go out at full power. Comparing it with AEDB
// isolates the value of the power-adaptation stage.
type DistanceBroadcast struct {
	MinDelay, MaxDelay float64
	BorderThresholdDBm float64
	node               *manet.Node
	states             map[int]*msgState
}

var _ manet.Protocol = (*DistanceBroadcast)(nil)

// NewDistanceBroadcast returns a distance-based broadcasting factory.
func NewDistanceBroadcast(minDelay, maxDelay, borderDBm float64) func(*manet.Node) manet.Protocol {
	return func(*manet.Node) manet.Protocol {
		return &DistanceBroadcast{
			MinDelay: minDelay, MaxDelay: maxDelay, BorderThresholdDBm: borderDBm,
			states: make(map[int]*msgState),
		}
	}
}

// Init implements manet.Protocol.
func (d *DistanceBroadcast) Init(n *manet.Node) { d.node = n }

// Originate implements manet.Protocol.
func (d *DistanceBroadcast) Originate(msg *manet.Message) {
	d.states[msg.ID] = &msgState{done: true}
	d.node.Network().TransmitData(d.node, msg, d.node.Network().Cfg.DefaultTxPowerDBm)
}

// OnData implements manet.Protocol.
func (d *DistanceBroadcast) OnData(msg *manet.Message, from int, rxPowerDBm float64) {
	st := d.states[msg.ID]
	if st == nil {
		st = &msgState{pbest: rxPowerDBm, heardFrom: []int32{int32(from)}}
		d.states[msg.ID] = st
		if rxPowerDBm > d.BorderThresholdDBm {
			st.done = true
			return
		}
		st.waiting = true
		st.msg = msg
		lo, hi := d.MinDelay, d.MaxDelay
		if hi < lo {
			lo, hi = hi, lo
		}
		st.timer = d.node.ScheduleTimer(d.node.Rng.RangeClosed(lo, hi), int32(msg.ID))
		return
	}
	if st.waiting && rxPowerDBm > st.pbest {
		st.pbest = rxPowerDBm
	}
}

// OnTimer implements manet.Protocol: the waiting period for message ID
// `tag` expired — forward at full power unless a copy above the border
// threshold disqualified the node meanwhile.
func (d *DistanceBroadcast) OnTimer(tag int32) {
	st := d.states[int(tag)]
	if st == nil || !st.waiting {
		return
	}
	st.waiting = false
	st.done = true
	if st.pbest <= d.BorderThresholdDBm {
		d.node.Network().TransmitData(d.node, st.msg, d.node.Network().Cfg.DefaultTxPowerDBm)
	}
}
