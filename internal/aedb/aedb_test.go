package aedb

import (
	"math"
	"testing"
	"testing/quick"

	"aedbmls/internal/geom"
	"aedbmls/internal/manet"
	"aedbmls/internal/mobility"
	"aedbmls/internal/radio"
	"aedbmls/internal/rng"
)

func TestParamsVectorRoundTrip(t *testing.T) {
	check := func(a, b, c, d, e float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) || math.IsNaN(d) || math.IsNaN(e) {
			return true
		}
		p := Params{a, b, c, d, e}
		return FromVector(p.Vector()) == p
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromVectorPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromVector with 3 values did not panic")
		}
	}()
	FromVector([]float64{1, 2, 3})
}

func TestDelayInterval(t *testing.T) {
	lo, hi := Params{MinDelay: 0.2, MaxDelay: 1.5}.DelayInterval()
	if lo != 0.2 || hi != 1.5 {
		t.Fatalf("interval = [%v, %v]", lo, hi)
	}
	// Swapped variables still give a valid interval (Table III allows
	// max_delay < min_delay).
	lo, hi = Params{MinDelay: 0.8, MaxDelay: 0.3}.DelayInterval()
	if lo != 0.3 || hi != 0.8 {
		t.Fatalf("swapped interval = [%v, %v]", lo, hi)
	}
}

func TestDomainClampContains(t *testing.T) {
	d := DefaultDomain()
	check := func(a, b, c, e, f float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) || math.IsNaN(e) || math.IsNaN(f) {
			return true
		}
		p := d.Clamp(Params{a, b, c, e, f})
		return d.Contains(p)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// Clamp is the identity inside the domain.
	in := Params{0.5, 2, -80, 1, 25}
	if got := d.Clamp(in); got != in {
		t.Fatalf("Clamp changed an in-domain point: %+v", got)
	}
}

func TestDomainsMatchPaperTables(t *testing.T) {
	d := DefaultDomain()
	wantLo := [NumParams]float64{0, 0, -95, 0, 0}
	wantHi := [NumParams]float64{1, 5, -70, 3, 50}
	if d.Lo != wantLo || d.Hi != wantHi {
		t.Fatalf("optimisation domain = %+v, want Table III", d)
	}
	s := SensitivityDomain()
	if s.Hi[IdxMinDelay] != 5 || s.Hi[IdxMarginThreshold] != 16.2 || s.Hi[IdxNeighborsThreshold] != 100 {
		t.Fatalf("sensitivity domain = %+v, want Sect. III-B ranges", s)
	}
}

func TestValidate(t *testing.T) {
	if err := (Params{0.1, 0.5, -80, 1, 10}).Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	if (Params{MinDelay: -1}).Validate() == nil {
		t.Error("negative delay accepted")
	}
	if (Params{MarginDBm: -1}).Validate() == nil {
		t.Error("negative margin accepted")
	}
	if (Params{NeighborsThreshold: -1}).Validate() == nil {
		t.Error("negative neighbors threshold accepted")
	}
}

// buildAEDBNet builds a static-topology network running AEDB on every node
// and retains the protocol instances for white-box inspection.
func buildAEDBNet(t *testing.T, positions []geom.Vec2, params Params, seed uint64, endTime float64) (*manet.Network, []*Protocol) {
	t.Helper()
	cfg := manet.DefaultScenario(len(positions))
	cfg.WarmupTime = 0
	cfg.EndTime = endTime
	cfg.MakeMobility = func(id int, _ *rng.Rand) mobility.Model {
		return &mobility.Static{P: positions[id]}
	}
	protos := make([]*Protocol, len(positions))
	net, err := manet.New(cfg, seed, func(n *manet.Node) manet.Protocol {
		p := &Protocol{P: params}
		protos[n.ID] = p
		return p
	})
	if err != nil {
		t.Fatal(err)
	}
	return net, protos
}

// rxAt returns the received power of a default-power transmission over d
// meters under the default scenario radio model.
func rxAt(d float64) float64 {
	return radio.RxPower(radio.NewLogDistanceDefault(), radio.DefaultTxPowerDBm, d)
}

// expectedAdaptedPower reproduces AEDB's power estimate for a target whose
// beacon arrived at beaconRx.
func expectedAdaptedPower(beaconRx, margin float64) float64 {
	return radio.TxPowerToReach(radio.DefaultTxPowerDBm, beaconRx, radio.DefaultSensitivityDBm) + margin
}

func TestSourceTransmitsAtDefaultPower(t *testing.T) {
	params := Params{MinDelay: 0.1, MaxDelay: 0.1, BorderThresholdDBm: -80, MarginDBm: 1, NeighborsThreshold: 10}
	net, _ := buildAEDBNet(t, []geom.Vec2{{X: 0, Y: 0}, {X: 400, Y: 0}}, params, 1, 4)
	st := net.StartBroadcast(0, 2)
	net.Run()
	if st.SourceSends != 1 {
		t.Fatalf("source sends = %d", st.SourceSends)
	}
	if math.Abs(st.TxPowerSumDBm-radio.DefaultTxPowerDBm) > 1e-9 {
		t.Fatalf("source power = %v, want default %v", st.TxPowerSumDBm, radio.DefaultTxPowerDBm)
	}
}

func TestCloseNodeDropsImmediately(t *testing.T) {
	// 30 m -> rx approx -75 dBm, stronger than the -80 border: line 4-5 of
	// the pseudocode drops the message without forwarding.
	params := Params{MinDelay: 0.05, MaxDelay: 0.05, BorderThresholdDBm: -80, MarginDBm: 1, NeighborsThreshold: 10}
	net, protos := buildAEDBNet(t, []geom.Vec2{{X: 0, Y: 0}, {X: 30, Y: 0}}, params, 2, 4)
	st := net.StartBroadcast(0, 2)
	net.Run()
	if st.Coverage() != 1 {
		t.Fatalf("coverage = %d, want 1 (message received, just not forwarded)", st.Coverage())
	}
	if st.Forwards != 0 {
		t.Fatalf("forwards = %d, want 0", st.Forwards)
	}
	if protos[1].Drops != 1 {
		t.Fatalf("drops = %d, want 1", protos[1].Drops)
	}
}

func TestBorderNodeForwardsAfterDelay(t *testing.T) {
	// 100 m -> rx approx -90.6 dBm, inside the forwarding area.
	params := Params{MinDelay: 0.2, MaxDelay: 0.2, BorderThresholdDBm: -80, MarginDBm: 1, NeighborsThreshold: 10}
	net, protos := buildAEDBNet(t, []geom.Vec2{{X: 0, Y: 0}, {X: 100, Y: 0}}, params, 3, 4)
	st := net.StartBroadcast(0, 2)
	net.Run()
	if st.Forwards != 1 || protos[1].Forwards != 1 {
		t.Fatalf("forwards = %d (proto %d), want 1", st.Forwards, protos[1].Forwards)
	}
}

func TestStrongDuplicateCancelsForwarding(t *testing.T) {
	params := Params{MinDelay: 0.5, MaxDelay: 0.5, BorderThresholdDBm: -80, MarginDBm: 1, NeighborsThreshold: 10}
	net, protos := buildAEDBNet(t, []geom.Vec2{{X: 0, Y: 0}, {X: 100, Y: 0}}, params, 4, 4)
	st := net.StartBroadcast(0, 2)
	// While node 1 waits, inject a strong duplicate (as if a nearby node
	// re-broadcast): pbest rises above the border and the timer drops.
	msg := &manet.Message{ID: st.MessageID, Origin: 0}
	net.Sim.At(2.2, func() { protos[1].OnData(msg, 99, -70) })
	net.Run()
	if st.Forwards != 0 {
		t.Fatalf("forwards = %d, want 0 (cancelled by strong duplicate)", st.Forwards)
	}
	if protos[1].Drops != 1 {
		t.Fatalf("drops = %d, want 1", protos[1].Drops)
	}
}

func TestWeakDuplicateDoesNotCancel(t *testing.T) {
	params := Params{MinDelay: 0.5, MaxDelay: 0.5, BorderThresholdDBm: -80, MarginDBm: 1, NeighborsThreshold: 10}
	net, protos := buildAEDBNet(t, []geom.Vec2{{X: 0, Y: 0}, {X: 100, Y: 0}}, params, 5, 4)
	st := net.StartBroadcast(0, 2)
	msg := &manet.Message{ID: st.MessageID, Origin: 0}
	net.Sim.At(2.2, func() { protos[1].OnData(msg, 99, -92) })
	net.Run()
	if st.Forwards != 1 {
		t.Fatalf("forwards = %d, want 1 (weak duplicate must not cancel)", st.Forwards)
	}
}

// denseSparseTopology: source S, forwarder F 120 m away, plus two
// neighbors of F that are out of S's radio range:
// N1 at 55 m from F (strong beacon), N2 at 110 m (weak beacon).
// All three of S, N1, N2 lie inside F's forwarding area for border -80.
func denseSparseTopology() []geom.Vec2 {
	return []geom.Vec2{
		{X: 0, Y: 0},     // S
		{X: 120, Y: 0},   // F
		{X: 175, Y: 0},   // N1: 55 m from F, 175 m from S (out of S's range)
		{X: 120, Y: 110}, // N2: 110 m from F, 162.8 m from S (out of range)
	}
}

func TestDenseRegimeTargetsClosestPotentialForwarder(t *testing.T) {
	// 3 potential forwarders > threshold 2: dense regime. The target is
	// the forwarding-area neighbor with the strongest beacon (N1).
	params := Params{MinDelay: 0.1, MaxDelay: 0.1, BorderThresholdDBm: -80, MarginDBm: 1, NeighborsThreshold: 2}
	net, _ := buildAEDBNet(t, denseSparseTopology(), params, 6, 2.15)
	st := net.StartBroadcast(0, 2)
	net.Run()
	if st.Forwards != 1 {
		t.Fatalf("forwards = %d, want 1", st.Forwards)
	}
	want := expectedAdaptedPower(rxAt(55), params.MarginDBm)
	got := st.TxPowerSumDBm - radio.DefaultTxPowerDBm
	if math.Abs(got-want) > 0.2 {
		t.Fatalf("dense adapted power = %.2f dBm, want approx %.2f (reach N1 at 55 m)", got, want)
	}
}

func TestSparseRegimeTargetsFurthestNeighborExcludingSender(t *testing.T) {
	// Same topology, threshold 10: 3 potential forwarders <= 10, sparse
	// regime. The sender S is discarded; the furthest remaining neighbor
	// is N2 at 110 m.
	params := Params{MinDelay: 0.1, MaxDelay: 0.1, BorderThresholdDBm: -80, MarginDBm: 1, NeighborsThreshold: 10}
	net, _ := buildAEDBNet(t, denseSparseTopology(), params, 7, 2.15)
	st := net.StartBroadcast(0, 2)
	net.Run()
	if st.Forwards != 1 {
		t.Fatalf("forwards = %d, want 1", st.Forwards)
	}
	want := expectedAdaptedPower(rxAt(110), params.MarginDBm)
	got := st.TxPowerSumDBm - radio.DefaultTxPowerDBm
	if math.Abs(got-want) > 0.2 {
		t.Fatalf("sparse adapted power = %.2f dBm, want approx %.2f (reach N2 at 110 m)", got, want)
	}
	// Sanity: the sparse power must exceed the dense one (110 m > 55 m).
	dense := expectedAdaptedPower(rxAt(55), params.MarginDBm)
	if want <= dense {
		t.Fatalf("test geometry broken: sparse %v <= dense %v", want, dense)
	}
}

func TestMarginIncreasesPower(t *testing.T) {
	base := Params{MinDelay: 0.1, MaxDelay: 0.1, BorderThresholdDBm: -80, MarginDBm: 0, NeighborsThreshold: 10}
	withMargin := base
	withMargin.MarginDBm = 3

	power := func(p Params, seed uint64) float64 {
		net, _ := buildAEDBNet(t, denseSparseTopology(), p, seed, 2.15)
		st := net.StartBroadcast(0, 2)
		net.Run()
		return st.TxPowerSumDBm - radio.DefaultTxPowerDBm
	}
	p0 := power(base, 8)
	p3 := power(withMargin, 8)
	if math.Abs((p3-p0)-3) > 0.2 {
		t.Fatalf("margin effect = %.2f dB, want approx 3", p3-p0)
	}
}

func TestEmptyNeighborTableFallsBackToDefaultPower(t *testing.T) {
	// Broadcast fires at t=0, before any beacon: the forwarder knows no
	// neighbors and transmits at the default power.
	params := Params{MinDelay: 0.001, MaxDelay: 0.001, BorderThresholdDBm: -80, MarginDBm: 1, NeighborsThreshold: 10}
	net, _ := buildAEDBNet(t, []geom.Vec2{{X: 0, Y: 0}, {X: 100, Y: 0}}, params, 9, 0.05)
	st := net.StartBroadcast(0, 0)
	net.Run()
	if st.Forwards != 1 {
		t.Fatalf("forwards = %d, want 1", st.Forwards)
	}
	got := st.TxPowerSumDBm - radio.DefaultTxPowerDBm
	if math.Abs(got-radio.DefaultTxPowerDBm) > 1e-9 {
		t.Fatalf("fallback power = %v, want default", got)
	}
}

func TestAdaptedPowerNeverExceedsDefault(t *testing.T) {
	// Even with a huge margin the power is clamped at the radio maximum.
	params := Params{MinDelay: 0.1, MaxDelay: 0.1, BorderThresholdDBm: -80, MarginDBm: 16.2, NeighborsThreshold: 0}
	net, _ := buildAEDBNet(t, denseSparseTopology(), params, 10, 2.15)
	st := net.StartBroadcast(0, 2)
	net.Run()
	if st.Forwards < 1 {
		t.Fatalf("forwards = %d", st.Forwards)
	}
	perForward := st.TxPowerSumDBm - radio.DefaultTxPowerDBm
	if perForward > radio.DefaultTxPowerDBm+1e-9 {
		t.Fatalf("adapted power %v exceeds the default", perForward)
	}
}

func TestDelayIntervalRespected(t *testing.T) {
	params := Params{MinDelay: 0.3, MaxDelay: 0.3, BorderThresholdDBm: -80, MarginDBm: 1, NeighborsThreshold: 10}
	net, _ := buildAEDBNet(t, []geom.Vec2{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 200, Y: 0}}, params, 11, 4)
	st := net.StartBroadcast(0, 2)
	net.Run()
	// Node 2 receives via node 1's forward, which happens 0.3 s after
	// node 1's reception.
	bt := st.BroadcastTime()
	if bt < 0.3 || bt > 0.35 {
		t.Fatalf("broadcast time = %v, want within [0.3, 0.35]", bt)
	}
}

func TestFloodingForwardsOnce(t *testing.T) {
	cfg := manet.DefaultScenario(3)
	cfg.WarmupTime = 0
	cfg.EndTime = 6
	positions := []geom.Vec2{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 200, Y: 0}}
	cfg.MakeMobility = func(id int, _ *rng.Rand) mobility.Model {
		return &mobility.Static{P: positions[id]}
	}
	net, err := manet.New(cfg, 12, NewFlooding(0.05, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	st := net.StartBroadcast(0, 1)
	net.Run()
	if st.Coverage() != 2 {
		t.Fatalf("coverage = %d, want 2", st.Coverage())
	}
	// Both non-source nodes forward exactly once, at full power.
	if st.Forwards != 2 {
		t.Fatalf("forwards = %d, want 2", st.Forwards)
	}
	want := 3 * radio.DefaultTxPowerDBm
	if math.Abs(st.TxPowerSumDBm-want) > 1e-9 {
		t.Fatalf("flooding energy = %v, want %v (all at default power)", st.TxPowerSumDBm, want)
	}
}

func TestDistanceBroadcastGatesOnBorderButKeepsFullPower(t *testing.T) {
	cfg := manet.DefaultScenario(3)
	cfg.WarmupTime = 0
	cfg.EndTime = 6
	// Node 1 too close (30 m: -75 dBm > -80), node 2 at 100 m forwards.
	positions := []geom.Vec2{{X: 0, Y: 0}, {X: 30, Y: 0}, {X: 100, Y: 0}}
	cfg.MakeMobility = func(id int, _ *rng.Rand) mobility.Model {
		return &mobility.Static{P: positions[id]}
	}
	net, err := manet.New(cfg, 13, NewDistanceBroadcast(0.05, 0.1, -80))
	if err != nil {
		t.Fatal(err)
	}
	st := net.StartBroadcast(0, 1)
	net.Run()
	if st.Forwards != 1 {
		t.Fatalf("forwards = %d, want 1 (only the border node)", st.Forwards)
	}
	want := 2 * radio.DefaultTxPowerDBm
	if math.Abs(st.TxPowerSumDBm-want) > 1e-9 {
		t.Fatalf("distance-broadcast energy = %v, want %v (no power adaptation)", st.TxPowerSumDBm, want)
	}
}

func TestAEDBSavesEnergyVersusFlooding(t *testing.T) {
	// On a realistic mobile network, AEDB must spend less energy and fewer
	// forwardings than blind flooding — the protocol's raison d'etre.
	cfg := manet.DefaultScenario(25)
	run := func(factory func(*manet.Node) manet.Protocol) (float64, int) {
		net, err := manet.New(cfg, 99, factory)
		if err != nil {
			t.Fatal(err)
		}
		st := net.StartBroadcast(0, cfg.WarmupTime)
		net.Run()
		return st.TxEnergyMJ, st.Forwards
	}
	params := Params{MinDelay: 0.05, MaxDelay: 0.3, BorderThresholdDBm: -82, MarginDBm: 1, NeighborsThreshold: 12}
	aedbMJ, aedbFwd := run(New(params))
	floodMJ, floodFwd := run(NewFlooding(0.05, 0.3))
	if aedbFwd >= floodFwd {
		t.Fatalf("AEDB forwards %d >= flooding %d", aedbFwd, floodFwd)
	}
	if aedbMJ >= floodMJ {
		t.Fatalf("AEDB energy %.4f mJ >= flooding %.4f mJ", aedbMJ, floodMJ)
	}
}
