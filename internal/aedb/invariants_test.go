package aedb

import (
	"math"
	"testing"

	"aedbmls/internal/geom"
	"aedbmls/internal/manet"
	"aedbmls/internal/mobility"
	"aedbmls/internal/radio"
	"aedbmls/internal/rng"
)

// randomParams samples a configuration uniformly from the optimisation
// domain.
func randomParams(r *rng.Rand) Params {
	d := DefaultDomain()
	x := make([]float64, NumParams)
	for i := range x {
		x[i] = r.Range(d.Lo[i], d.Hi[i])
	}
	return FromVector(x)
}

// TestProtocolInvariantsRandomised runs full mobile simulations under many
// random configurations and checks the structural invariants that must
// hold regardless of parameters:
//
//  1. every node forwards a message at most once;
//  2. the energy objective equals the sum of transmitted power levels;
//  3. coverage never exceeds the number of potential receivers;
//  4. the broadcast completes within the simulation window;
//  5. adapted powers never exceed the radio maximum;
//  6. per-protocol counters agree with the network-level stats.
func TestProtocolInvariantsRandomised(t *testing.T) {
	master := rng.New(2024)
	for trial := 0; trial < 25; trial++ {
		params := randomParams(master)
		nodes := 10 + master.Intn(30)
		seed := master.Uint64()

		cfg := manet.DefaultScenario(nodes)
		protos := make([]*Protocol, nodes)
		net, err := manet.New(cfg, seed, func(n *manet.Node) manet.Protocol {
			p := &Protocol{P: params}
			protos[n.ID] = p
			return p
		})
		if err != nil {
			t.Fatal(err)
		}
		source := master.Intn(nodes)
		st := net.StartBroadcast(source, cfg.WarmupTime)
		net.Run()

		// (1) + (6): protocol-level forward counters match the stats and
		// never exceed one per node.
		totalForwards := 0
		for id, p := range protos {
			if p.Forwards > 1 {
				t.Fatalf("trial %d: node %d forwarded %d times", trial, id, p.Forwards)
			}
			if id == source && p.Forwards > 0 {
				t.Fatalf("trial %d: source counted as forwarder", trial)
			}
			totalForwards += p.Forwards
		}
		if totalForwards != st.Forwards {
			t.Fatalf("trial %d: protocol forwards %d != stats %d", trial, totalForwards, st.Forwards)
		}

		// (2): the energy objective is a sum of per-transmission dBm
		// levels, each within the radio's feasible interval.
		nTx := st.Forwards + st.SourceSends
		if nTx > 0 {
			maxSum := float64(nTx) * cfg.DefaultTxPowerDBm
			minSum := float64(nTx) * radio.MinTxPowerDBm
			if st.TxPowerSumDBm > maxSum+1e-9 || st.TxPowerSumDBm < minSum-1e-9 {
				t.Fatalf("trial %d: energy %v outside [%v, %v] for %d transmissions",
					trial, st.TxPowerSumDBm, minSum, maxSum, nTx)
			}
		} else if st.TxPowerSumDBm != 0 {
			t.Fatalf("trial %d: energy %v with no transmissions", trial, st.TxPowerSumDBm)
		}

		// (3): coverage bounded by the other devices.
		if st.Coverage() < 0 || st.Coverage() > nodes-1 {
			t.Fatalf("trial %d: coverage %d with %d nodes", trial, st.Coverage(), nodes)
		}

		// (4): no reception after the simulation end; bt within window.
		bt := st.BroadcastTime()
		if bt < 0 || bt > cfg.EndTime-cfg.WarmupTime+1e-9 {
			t.Fatalf("trial %d: broadcast time %v outside window", trial, bt)
		}
		st.EachFirstRx(func(id int, rt float64) {
			if rt < st.SentAt || rt > cfg.EndTime {
				t.Fatalf("trial %d: node %d reception at %v outside [%v, %v]",
					trial, id, rt, st.SentAt, cfg.EndTime)
			}
		})

		// (5): physical energy consistent (strictly positive iff any
		// transmission happened).
		if (st.TxEnergyMJ > 0) != (nTx > 0) {
			t.Fatalf("trial %d: physical energy %v with %d transmissions", trial, st.TxEnergyMJ, nTx)
		}

		// Sanity on the source protocol state: it must not also process
		// the message as a receiver.
		if srcState := protos[source].state(st.MessageID); srcState == nil || !srcState.done {
			t.Fatalf("trial %d: source state corrupted", trial)
		}
	}
}

// TestForwardingMonotoneInBorderThreshold checks the protocol-level
// relation behind Table I: widening the forwarding area (raising the
// border threshold within the optimisation domain) cannot reduce the
// number of nodes eligible to forward on identical networks.
func TestForwardingMonotoneInBorderThreshold(t *testing.T) {
	base := Params{MinDelay: 0.1, MaxDelay: 0.3, MarginDBm: 1, NeighborsThreshold: 50}
	run := func(border float64, seed uint64) float64 {
		params := base
		params.BorderThresholdDBm = border
		cfg := manet.DefaultScenario(40)
		net, err := manet.New(cfg, seed, New(params))
		if err != nil {
			t.Fatal(err)
		}
		st := net.StartBroadcast(0, cfg.WarmupTime)
		net.Run()
		return float64(st.Forwards)
	}
	// Average over a few networks to smooth out topology noise.
	var narrow, wide float64
	for seed := uint64(1); seed <= 5; seed++ {
		narrow += run(-92, seed)
		wide += run(-72, seed)
	}
	if wide < narrow {
		t.Fatalf("wider forwarding area reduced forwards: %v -> %v", narrow, wide)
	}
}

// TestEnergyMonotoneInPowerBounds pins the power-adaptation relation on a
// controlled static topology: raising both power-bound genes together —
// the border threshold (which bounds who may forward and which beacon the
// dense regime targets) and the mobility margin (added to every adapted
// power) — with all other genes fixed must strictly raise the energy
// objective, as long as no adapted power hits the radio clamp.
//
// Topology: source(0,0) — relay(100,0) — leaf(200,0), all static. Only
// the relay adapts its power (the leaf's table offers no non-heard
// neighbor, so it falls back to the constant default power); the ladder
// keeps the relay a forwarding candidate at every rung, so energy is
// default + (adapted + margin) + default and must rise with each rung.
func TestEnergyMonotoneInPowerBounds(t *testing.T) {
	positions := []geom.Vec2{{X: 0, Y: 0}, {X: 100, Y: 0}, {X: 200, Y: 0}}
	run := func(borderDBm, marginDBm float64) float64 {
		cfg := manet.DefaultScenario(len(positions))
		cfg.WarmupTime = 3
		cfg.EndTime = 8
		cfg.MakeMobility = func(id int, _ *rng.Rand) mobility.Model {
			return &mobility.Static{P: positions[id]}
		}
		params := Params{
			MinDelay: 0.1, MaxDelay: 0.1,
			BorderThresholdDBm: borderDBm, MarginDBm: marginDBm,
			NeighborsThreshold: 50,
		}
		net, err := manet.New(cfg, 1, New(params))
		if err != nil {
			t.Fatal(err)
		}
		st := net.StartBroadcast(0, cfg.WarmupTime)
		net.Run()
		if st.Forwards != 2 {
			t.Fatalf("border %v margin %v: %d forwards, topology drifted from the 2-relay chain",
				borderDBm, marginDBm, st.Forwards)
		}
		return st.TxPowerSumDBm
	}
	prev := math.Inf(-1)
	for i := 0; i < 5; i++ {
		border := -90 + float64(i) // rises toward the domain ceiling
		margin := 0.2 + 0.4*float64(i)
		energy := run(border, margin)
		if energy <= prev {
			t.Fatalf("rung %d (border %v, margin %v): energy %v not strictly above %v",
				i, border, margin, energy, prev)
		}
		prev = energy
	}
}

// TestDelayShiftsBroadcastTime checks the headline sensitivity relation:
// scaling the delay interval up strictly increases the broadcast time on
// multi-hop networks.
func TestDelayShiftsBroadcastTime(t *testing.T) {
	run := func(minD, maxD float64, seed uint64) (float64, int) {
		params := Params{MinDelay: minD, MaxDelay: maxD, BorderThresholdDBm: -82, MarginDBm: 1, NeighborsThreshold: 12}
		cfg := manet.DefaultScenario(40)
		net, err := manet.New(cfg, seed, New(params))
		if err != nil {
			t.Fatal(err)
		}
		st := net.StartBroadcast(0, cfg.WarmupTime)
		net.Run()
		return st.BroadcastTime(), st.Forwards
	}
	var fast, slow float64
	counted := 0
	for seed := uint64(10); seed < 15; seed++ {
		fbt, ffwd := run(0.01, 0.05, seed)
		sbt, _ := run(0.8, 1.5, seed)
		if ffwd == 0 {
			continue // single-hop network: delays do not surface in bt
		}
		counted++
		fast += fbt
		slow += sbt
	}
	if counted == 0 {
		t.Skip("all sampled networks were single-hop")
	}
	if !(slow > fast) || math.Abs(slow-fast) < 1e-9 {
		t.Fatalf("longer delays did not increase broadcast time: fast=%v slow=%v", fast, slow)
	}
}
