// Package tuneserver is the tuning-as-a-service layer: a long-running
// server that accepts named studies (algorithm, density, scale knobs),
// shards each study's trials across a pool of worker goroutines, and
// folds the per-trial fronts into one merged Pareto archive per study
// through the mutex-free, channel-reduced archive.Merger.
//
// The service is deterministic by construction, not by option. Trial t
// of a study runs the sequential optimizer with the RNG stream
// eval.TrialSeed(studySeed, t) — a pure function of (study seed, trial
// id) — and the merger folds trial fronts strictly in trial-id order,
// so the final front of an N-worker study is bit-identical to the
// 1-worker study's and to any replay of a single trial for debugging.
//
// Durability rides on internal/study: study specs are registered in a
// checksummed manifest before the first trial starts, and study state is
// checkpointed through study.Save at merge boundaries. A SIGKILLed
// server restarts by replaying the manifest — finished studies come
// back terminal with their fronts intact, in-flight ones resume from the
// last merged boundary and re-run only their remaining trials, landing
// on the same final front as an uninterrupted run.
package tuneserver

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"aedbmls/internal/archive"
	"aedbmls/internal/core"
	"aedbmls/internal/eval"
	"aedbmls/internal/moo"
	"aedbmls/internal/nsga2"
	"aedbmls/internal/study"
)

// The study lifecycle states reported by Status.
const (
	StatusRunning     = "running"
	StatusPaused      = "paused"
	StatusStopped     = "stopped"     // user-requested stop; will not resume
	StatusDone        = "done"        // all trials merged
	StatusFailed      = "failed"      // a trial or checkpoint save errored
	StatusInterrupted = "interrupted" // server shut down; resumes on restart
)

// The supported study algorithms.
const (
	AlgMLS   = "mls"
	AlgNSGA2 = "nsga2"
)

// The request-classification errors, matched with errors.Is by the HTTP
// layer to pick status codes.
var (
	ErrSpec      = errors.New("invalid study spec")
	ErrDuplicate = errors.New("study already exists")
	ErrNotFound  = errors.New("no such study")
	ErrBadState  = errors.New("study not in a state that allows this")
)

// StudySpec is the client-facing description of a study. Zero-valued
// knobs take documented defaults; knobs belonging to the other algorithm
// must stay zero (a spec that sets both families is refused, so a typo'd
// knob cannot be silently ignored).
type StudySpec struct {
	// Name identifies the study in every endpoint and, suffixed
	// ".study.ckpt", on disk — so it must pass study.SanitizeName.
	Name string `json:"name"`
	// Algorithm is AlgMLS or AlgNSGA2.
	Algorithm string `json:"algorithm"`
	// Density is the network density in devices/km^2 (default 100).
	Density int `json:"density,omitempty"`
	// Seed is the study seed: it freezes the evaluation committee and
	// roots every trial's derived RNG stream.
	Seed uint64 `json:"seed,omitempty"`
	// Trials is the number of independent optimizer runs to shard
	// across the worker pool (default 1).
	Trials int `json:"trials,omitempty"`
	// Committee is the number of network scenarios per evaluation
	// (default 10, the paper's committee; capped at 64).
	Committee int `json:"committee,omitempty"`
	// ArchiveCapacity bounds the merged study archive: 0 keeps every
	// non-dominated solution, >0 uses adaptive grid archiving.
	ArchiveCapacity int `json:"archive_capacity,omitempty"`

	// AEDB-MLS knobs (defaults from core.DefaultConfig).
	Populations    int `json:"populations,omitempty"`
	PopWorkers     int `json:"pop_workers,omitempty"`
	EvalsPerWorker int `json:"evals_per_worker,omitempty"`
	ResetPeriod    int `json:"reset_period,omitempty"`

	// NSGA-II knobs (defaults from nsga2.DefaultConfig).
	PopSize     int `json:"pop_size,omitempty"`
	Evaluations int `json:"evaluations,omitempty"`

	// StartPaused creates the study paused: it holds trial dispatch
	// until the first resume. Not part of the study's identity and not
	// persisted (a restarted server resumes the study running).
	StartPaused bool `json:"start_paused,omitempty"`
}

// normalize validates the spec and fills defaults in place.
func (sp *StudySpec) normalize() error {
	if err := study.SanitizeName(sp.Name); err != nil {
		return fmt.Errorf("%w: %v", ErrSpec, err)
	}
	if sp.Density == 0 {
		sp.Density = 100
	}
	if sp.Density < 1 || sp.Density > 10000 {
		return fmt.Errorf("%w: density %d out of range [1,10000]", ErrSpec, sp.Density)
	}
	if sp.Trials == 0 {
		sp.Trials = 1
	}
	if sp.Trials < 1 || sp.Trials > 10000 {
		return fmt.Errorf("%w: trials %d out of range [1,10000]", ErrSpec, sp.Trials)
	}
	if sp.Committee == 0 {
		sp.Committee = 10
	}
	if sp.Committee < 1 || sp.Committee > 64 {
		return fmt.Errorf("%w: committee %d out of range [1,64]", ErrSpec, sp.Committee)
	}
	if sp.ArchiveCapacity < 0 {
		return fmt.Errorf("%w: archive_capacity %d negative", ErrSpec, sp.ArchiveCapacity)
	}
	mlsKnobs := sp.Populations != 0 || sp.PopWorkers != 0 || sp.EvalsPerWorker != 0 || sp.ResetPeriod != 0
	nsgaKnobs := sp.PopSize != 0 || sp.Evaluations != 0
	switch sp.Algorithm {
	case AlgMLS:
		if nsgaKnobs {
			return fmt.Errorf("%w: pop_size/evaluations are NSGA-II knobs, algorithm is %q", ErrSpec, sp.Algorithm)
		}
		def := core.DefaultConfig()
		if sp.Populations == 0 {
			sp.Populations = def.Populations
		}
		if sp.PopWorkers == 0 {
			sp.PopWorkers = def.Workers
		}
		if sp.EvalsPerWorker == 0 {
			sp.EvalsPerWorker = def.EvalsPerWorker
		}
		if sp.ResetPeriod == 0 {
			sp.ResetPeriod = def.ResetPeriod
		}
		if err := sp.mlsConfig(0, nil).Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrSpec, err)
		}
	case AlgNSGA2:
		if mlsKnobs {
			return fmt.Errorf("%w: populations/pop_workers/evals_per_worker/reset_period are MLS knobs, algorithm is %q", ErrSpec, sp.Algorithm)
		}
		def := nsga2.DefaultConfig()
		if sp.PopSize == 0 {
			sp.PopSize = def.PopSize
		}
		if sp.Evaluations == 0 {
			sp.Evaluations = def.Evaluations
		}
		if err := sp.nsga2Config(0, nil).Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrSpec, err)
		}
	case "":
		return fmt.Errorf("%w: missing algorithm", ErrSpec)
	default:
		return fmt.Errorf("%w: unknown algorithm %q (want %q or %q)", ErrSpec, sp.Algorithm, AlgMLS, AlgNSGA2)
	}
	return nil
}

// mlsConfig builds the per-trial MLS configuration (after normalize).
func (sp *StudySpec) mlsConfig(seed uint64, stop <-chan struct{}) core.Config {
	cfg := core.DefaultConfig()
	cfg.Populations = sp.Populations
	cfg.Workers = sp.PopWorkers
	cfg.EvalsPerWorker = sp.EvalsPerWorker
	cfg.ResetPeriod = sp.ResetPeriod
	cfg.Criteria = core.DefaultAEDBCriteria()
	cfg.Seed = seed
	cfg.Stop = stop
	return cfg
}

// nsga2Config builds the per-trial NSGA-II configuration (after normalize).
func (sp *StudySpec) nsga2Config(seed uint64, stop <-chan struct{}) nsga2.Config {
	cfg := nsga2.DefaultConfig()
	cfg.PopSize = sp.PopSize
	cfg.Evaluations = sp.Evaluations
	cfg.Seed = seed
	cfg.Stop = stop
	return cfg
}

// identity is the canonical identity string of a normalized spec: every
// field that changes the study's results, and nothing that doesn't
// (StartPaused and the server's worker count are excluded, so a resumed
// study may change parallelism and still match its checkpoint).
func (sp *StudySpec) identity() string {
	return fmt.Sprintf("name=%s alg=%s density=%d seed=%d trials=%d committee=%d cap=%d pops=%d popworkers=%d epw=%d reset=%d popsize=%d evals=%d",
		sp.Name, sp.Algorithm, sp.Density, sp.Seed, sp.Trials, sp.Committee, sp.ArchiveCapacity,
		sp.Populations, sp.PopWorkers, sp.EvalsPerWorker, sp.ResetPeriod, sp.PopSize, sp.Evaluations)
}

// parseSpec strictly decodes and normalizes a client-supplied spec.
// Unknown fields, trailing data and out-of-range knobs are all ErrSpec —
// a refused spec has had no side effects.
func parseSpec(r io.Reader) (*StudySpec, error) {
	sp := &StudySpec{}
	dec := json.NewDecoder(io.LimitReader(r, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(sp); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSpec, err)
	}
	var trailer json.RawMessage
	if err := dec.Decode(&trailer); err == nil || !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("%w: trailing data after spec", ErrSpec)
	}
	if err := sp.normalize(); err != nil {
		return nil, err
	}
	return sp, nil
}

// Options configures a Server.
type Options struct {
	// Dir is the checkpoint directory (manifest + per-study checkpoint
	// files). Empty disables persistence: studies live and die with the
	// process.
	Dir string
	// Workers is the per-study trial worker pool size (default
	// GOMAXPROCS). It changes wall-clock time only, never results.
	Workers int
	// SaveEvery is the checkpoint cadence in merged trials (default 1:
	// checkpoint after every merge). Ignored without Dir.
	SaveEvery int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.SaveEvery <= 0 {
		o.SaveEvery = 1
	}
	return o
}

// Server owns the study set. One Server instance backs one HTTP
// listener; New restores every study recorded in Options.Dir.
type Server struct {
	opts Options

	mu       sync.Mutex
	studies  map[string]*Study
	manifest *study.Manifest
	closed   bool
}

// New builds a Server, replaying the manifest in Options.Dir (when set):
// studies with a Final checkpoint or a Stopped manifest entry are
// restored terminal with their fronts; everything else resumes running
// from its last merged boundary.
func New(opts Options) (*Server, error) {
	s := &Server{opts: opts.withDefaults(), studies: make(map[string]*Study), manifest: study.NewManifest()}
	if s.opts.Dir == "" {
		return s, nil
	}
	m, err := study.LoadManifest(study.ManifestPath(s.opts.Dir))
	if err != nil {
		return nil, err
	}
	s.manifest = m
	names := make([]string, 0, len(m.Studies))
	for name := range m.Studies {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		entry := m.Studies[name]
		sp := &StudySpec{}
		dec := json.NewDecoder(bytes.NewReader(entry.Spec))
		dec.DisallowUnknownFields()
		if err := dec.Decode(sp); err != nil {
			return nil, fmt.Errorf("study %q: corrupt manifest spec: %v", name, err)
		}
		if err := sp.normalize(); err != nil {
			return nil, fmt.Errorf("study %q: %v", name, err)
		}
		if sp.Name != name {
			return nil, fmt.Errorf("study %q: manifest spec names %q", name, sp.Name)
		}
		st, err := s.newStudy(sp, entry.Stopped)
		if err != nil {
			return nil, fmt.Errorf("study %q: %v", name, err)
		}
		s.studies[name] = st
		st.start()
	}
	return s, nil
}

// Create registers and starts a new study from a raw JSON spec. The
// manifest entry is persisted before the study becomes visible, so a
// crash at any later point restarts the study; a refused spec has
// written nothing.
func (s *Server) Create(r io.Reader) (*Study, error) {
	sp, err := parseSpec(r)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("%w: server shutting down", ErrBadState)
	}
	if _, ok := s.studies[sp.Name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDuplicate, sp.Name)
	}
	st, err := s.newStudy(sp, false)
	if err != nil {
		return nil, err
	}
	if s.opts.Dir != "" {
		persist := *sp
		persist.StartPaused = false
		raw, err := json.Marshal(&persist)
		if err != nil {
			return nil, err
		}
		s.manifest.Studies[sp.Name] = study.ManifestEntry{Spec: raw}
		if err := study.SaveManifest(study.ManifestPath(s.opts.Dir), s.manifest); err != nil {
			delete(s.manifest.Studies, sp.Name)
			return nil, err
		}
	}
	s.studies[sp.Name] = st
	st.start()
	return st, nil
}

// Get returns a study by name.
func (s *Server) Get(name string) (*Study, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.studies[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return st, nil
}

// List returns every study, sorted by name.
func (s *Server) List() []*Study {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.studies))
	for name := range s.studies {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*Study, len(names))
	for i, name := range names {
		out[i] = s.studies[name]
	}
	return out
}

// Stop stops a study at its next merge boundary and returns the number
// of merged trials at that boundary. The stop is recorded in the
// manifest, so a restarted server restores the study terminal instead of
// resuming it.
func (s *Server) Stop(name string) (int, error) {
	st, err := s.Get(name)
	if err != nil {
		return 0, err
	}
	merged, err := st.stopUser()
	if err != nil {
		return 0, err
	}
	if s.opts.Dir != "" {
		s.mu.Lock()
		if entry, ok := s.manifest.Studies[name]; ok && !entry.Stopped {
			entry.Stopped = true
			s.manifest.Studies[name] = entry
			if serr := study.SaveManifest(study.ManifestPath(s.opts.Dir), s.manifest); serr != nil {
				entry.Stopped = false
				s.manifest.Studies[name] = entry
				s.mu.Unlock()
				return merged, serr
			}
		}
		s.mu.Unlock()
	}
	return merged, nil
}

// Close halts every non-terminal study at its next boundary (recorded as
// interrupted — restored servers resume them) and waits for all of them.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	studies := make([]*Study, 0, len(s.studies))
	for _, st := range s.studies {
		studies = append(studies, st)
	}
	s.mu.Unlock()
	for _, st := range studies {
		st.halt()
	}
	for _, st := range studies {
		<-st.Done()
	}
}

// Options returns the server's effective options.
func (s *Server) Options() Options { return s.opts }

// Internal stop intents, mapped to terminal statuses by finish.
const (
	stopNone = iota
	stopUser // explicit stop request: StatusStopped
	stopHalt // server shutdown: StatusInterrupted
)

// Study is one named study: a problem instance shared by all trials, a
// worker pool, and the merger that owns the study archive.
type Study struct {
	spec        StudySpec
	fp          string
	path        string // checkpoint file; "" when persistence is off
	saveEach    int
	trials      int
	workerCount int

	problem  *eval.Problem
	merger   *archive.Merger
	trialCh  chan int
	stopCh   chan struct{}
	stopOnce sync.Once
	doneCh   chan struct{}
	wg       sync.WaitGroup
	inflight atomic.Int64
	resumed  int // trials already merged when this process took over

	mu       sync.Mutex
	status   string
	err      error
	resumeCh chan struct{} // closed while running; fresh channel while paused
	stopKind int
	merged   int
	evals    int64
	front    []*moo.Solution // terminal front, set once doneCh closes
}

// newStudy builds the runtime for a normalized spec, restoring
// checkpointed state when the server is persistent. stopped marks a
// manifest-recorded user stop: the study is restored terminal.
// The caller starts it with start().
func (s *Server) newStudy(sp *StudySpec, stopped bool) (*Study, error) {
	st := &Study{
		spec:        *sp,
		saveEach:    s.opts.SaveEvery,
		trials:      sp.Trials,
		workerCount: s.opts.Workers,
		problem:     eval.NewProblem(sp.Density, sp.Seed, eval.WithCommittee(sp.Committee)),
		trialCh:     make(chan int),
		stopCh:      make(chan struct{}),
		doneCh:      make(chan struct{}),
		status:      StatusRunning,
		resumeCh:    closedChan(),
	}
	if err := st.problem.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSpec, err)
	}
	st.fp = study.Fingerprint("tune-study-v1", sp.identity(), st.problem.Fingerprint())

	var ar archive.Interface
	if sp.ArchiveCapacity > 0 {
		ar = archive.NewAGA(sp.ArchiveCapacity, 8)
	} else {
		ar = archive.NewUnbounded()
	}
	final := false
	if s.opts.Dir != "" {
		path, err := study.StudyPath(s.opts.Dir, sp.Name)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSpec, err)
		}
		st.path = path
		cp, err := study.Load(path)
		switch {
		case errors.Is(err, os.ErrNotExist):
			// No checkpoint yet: fresh study.
		case err != nil:
			return nil, err
		default:
			if cerr := cp.Check("tune-"+sp.Algorithm, st.fp); cerr != nil {
				return nil, cerr
			}
			ar, err = study.DecodeArchive(cp.Archive, st.problem.Dim(), st.problem.NumObjectives())
			if err != nil {
				return nil, err
			}
			st.merged = int(cp.Iteration)
			st.evals = cp.Evaluations
			final = cp.Final
		}
	}
	st.resumed = st.merged
	st.merger = archive.NewMerger(ar, st.merged, st.onMerge)

	if sp.StartPaused {
		st.status = StatusPaused
		st.resumeCh = make(chan struct{})
	}
	if final || stopped {
		st.status = StatusDone
		if stopped && !final {
			st.status = StatusStopped
		}
		front := st.merger.Snapshot()
		archive.SortByObjective(front, 0)
		st.front = front
		close(st.doneCh)
	}
	return st, nil
}

// start launches the dispatcher, workers and finisher. Terminal studies
// (restored done/stopped) have a closed doneCh and start is a no-op.
func (st *Study) start() {
	select {
	case <-st.doneCh:
		return
	default:
	}
	st.wg.Add(1 + st.workerCount)
	go st.dispatch()
	for i := 0; i < st.workerCount; i++ {
		go st.work()
	}
	go st.finish()
}

// dispatch feeds trial ids to the worker pool in ascending order,
// holding at the pause gate between trials.
func (st *Study) dispatch() {
	defer st.wg.Done()
	defer close(st.trialCh)
	for id := st.resumed; id < st.trials; id++ {
		st.mu.Lock()
		gate := st.resumeCh
		st.mu.Unlock()
		select {
		case <-gate:
		case <-st.stopCh:
			return
		}
		select {
		case st.trialCh <- id:
		case <-st.stopCh:
			return
		}
	}
}

// work runs trials until the dispatcher closes the feed.
func (st *Study) work() {
	defer st.wg.Done()
	for id := range st.trialCh {
		st.inflight.Add(1)
		front, evals, interrupted, err := st.runTrial(id)
		st.inflight.Add(-1)
		if err != nil {
			st.fail(fmt.Errorf("trial %d: %v", id, err))
			continue
		}
		if interrupted {
			continue // partial trial: the next life re-runs it from scratch
		}
		st.merger.Offer(id, front, evals)
	}
}

// runTrial executes one trial with its derived seed. Pure function of
// (spec, trial id): worker identity and scheduling never leak in.
func (st *Study) runTrial(id int) ([]*moo.Solution, int64, bool, error) {
	seed := eval.TrialSeed(st.spec.Seed, int64(id))
	switch st.spec.Algorithm {
	case AlgMLS:
		cfg := st.spec.mlsConfig(seed, st.stopCh)
		res, err := core.OptimizeSequential(st.problem, cfg, archive.NewAGA(cfg.ArchiveCapacity, cfg.GridDivisions))
		if err != nil {
			return nil, 0, false, err
		}
		return res.Front, res.Evaluations, res.Interrupted, nil
	case AlgNSGA2:
		cfg := st.spec.nsga2Config(seed, st.stopCh)
		res, err := nsga2.Optimize(st.problem, cfg)
		if err != nil {
			return nil, 0, false, err
		}
		return res.Front, res.Evaluations, res.Interrupted, nil
	}
	return nil, 0, false, fmt.Errorf("unknown algorithm %q", st.spec.Algorithm)
}

// onMerge runs on the merger goroutine after trial id folded in, with
// the archive quiescent: it advances the counters and checkpoints at the
// save cadence and at completion. A checkpoint therefore always captures
// a completed merge boundary — the unit the kill/resume wall replays.
func (st *Study) onMerge(id int, ar archive.Interface, aux any) {
	st.mu.Lock()
	st.merged = id + 1
	st.evals += aux.(int64)
	merged, evals := st.merged, st.evals
	st.mu.Unlock()
	if st.path == "" || (merged%st.saveEach != 0 && merged != st.trials) {
		return
	}
	arcState, err := study.EncodeArchive(ar)
	if err == nil {
		cp := &study.Checkpoint{
			Algorithm:   "tune-" + st.spec.Algorithm,
			Fingerprint: st.fp,
			Final:       merged == st.trials,
			Evaluations: evals,
			Iteration:   int64(merged),
			Counters:    map[string]int64{"merged": int64(merged), "trials": int64(st.trials)},
			Archive:     arcState,
		}
		err = study.Save(st.path, cp)
	}
	if err != nil {
		st.fail(fmt.Errorf("checkpoint at trial %d: %v", merged, err))
	}
}

// fail records the first error and stops the study.
func (st *Study) fail(err error) {
	st.mu.Lock()
	if st.err == nil {
		st.err = err
	}
	st.mu.Unlock()
	st.stop()
}

func (st *Study) stop() {
	st.stopOnce.Do(func() { close(st.stopCh) })
}

// finish waits for the pool, drains the merger and publishes the
// terminal state.
func (st *Study) finish() {
	st.wg.Wait()
	st.merger.Flush()
	front := st.merger.Snapshot()
	archive.SortByObjective(front, 0)
	st.mu.Lock()
	st.front = front
	switch {
	case st.err != nil:
		st.status = StatusFailed
	case st.merged == st.trials:
		st.status = StatusDone
	case st.stopKind == stopUser:
		st.status = StatusStopped
	default:
		st.status = StatusInterrupted
	}
	st.mu.Unlock()
	close(st.doneCh)
}

// Pause holds trial dispatch after the in-flight trials finish. Merged
// counters are untouched, so pause→resume is invisible in the results.
func (st *Study) Pause() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.status != StatusRunning {
		return fmt.Errorf("%w: %q is %s", ErrBadState, st.spec.Name, st.status)
	}
	st.status = StatusPaused
	st.resumeCh = make(chan struct{})
	return nil
}

// Resume reopens trial dispatch.
func (st *Study) Resume() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.status != StatusPaused {
		return fmt.Errorf("%w: %q is %s", ErrBadState, st.spec.Name, st.status)
	}
	st.status = StatusRunning
	close(st.resumeCh)
	return nil
}

// stopUser executes a user stop request: the study halts at its next
// boundary and the last completed (merged) boundary is returned.
func (st *Study) stopUser() (int, error) {
	st.mu.Lock()
	switch st.status {
	case StatusRunning, StatusPaused:
		st.stopKind = stopUser
		st.releaseGate() // the dispatcher must wake to observe the stop
		st.mu.Unlock()
	default:
		defer st.mu.Unlock()
		return st.merged, fmt.Errorf("%w: %q is %s", ErrBadState, st.spec.Name, st.status)
	}
	st.stop()
	<-st.doneCh
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.merged, nil
}

// halt is the server-shutdown stop: like stopUser but terminal status
// StatusInterrupted, which a restarted server resumes.
func (st *Study) halt() {
	st.mu.Lock()
	st.releaseGate()
	st.mu.Unlock()
	st.stop()
}

// releaseGate closes the pause gate if it is still open. Callers hold mu.
func (st *Study) releaseGate() {
	select {
	case <-st.resumeCh:
	default:
		close(st.resumeCh)
	}
}

// Done is closed when the study reaches a terminal status.
func (st *Study) Done() <-chan struct{} { return st.doneCh }

// Name returns the study name.
func (st *Study) Name() string { return st.spec.Name }

// Spec returns a copy of the normalized spec.
func (st *Study) Spec() StudySpec { return st.spec }

// Front returns the current merged front, sorted by the first objective.
// Terminal studies return their final front; live ones a snapshot at the
// latest merge boundary.
func (st *Study) Front() []*moo.Solution {
	select {
	case <-st.doneCh:
		st.mu.Lock()
		defer st.mu.Unlock()
		return append([]*moo.Solution(nil), st.front...)
	default:
	}
	front := st.merger.Snapshot()
	archive.SortByObjective(front, 0)
	return front
}

// StudyStatus is the wire form of a study's current state.
type StudyStatus struct {
	Name        string      `json:"name"`
	Algorithm   string      `json:"algorithm"`
	Density     int         `json:"density"`
	Seed        uint64      `json:"seed"`
	Trials      int         `json:"trials"`
	Status      string      `json:"status"`
	Merged      int         `json:"merged"`
	InFlight    int64       `json:"in_flight"`
	Pending     int         `json:"pending"`
	Evaluations int64       `json:"evaluations"`
	FrontSize   int         `json:"front_size"`
	Health      eval.Health `json:"health"`
	Error       string      `json:"error,omitempty"`
}

// Status reports the study's state. It flushes the merger first, so the
// counters reflect every trial completed at call time (not an arbitrary
// point in the merge queue).
func (st *Study) Status() StudyStatus {
	st.merger.Flush()
	ms := st.merger.State()
	front := st.Front()
	st.mu.Lock()
	out := StudyStatus{
		Name:        st.spec.Name,
		Algorithm:   st.spec.Algorithm,
		Density:     st.spec.Density,
		Seed:        st.spec.Seed,
		Trials:      st.trials,
		Status:      st.status,
		Merged:      st.merged,
		InFlight:    st.inflight.Load(),
		Pending:     ms.Pending,
		Evaluations: st.evals,
		FrontSize:   len(front),
		Health:      st.problem.Health(),
	}
	if st.err != nil {
		out.Error = st.err.Error()
	}
	st.mu.Unlock()
	return out
}

func closedChan() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}
