package tuneserver

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"aedbmls/internal/study"
)

// tinySpec is a fast-but-real MLS study used across the contract tests.
func tinySpec(name string, extra string) string {
	return fmt.Sprintf(`{"name":"%s","algorithm":"mls","density":100,"seed":3,"trials":3,"committee":2,
	 "populations":1,"pop_workers":2,"evals_per_worker":6,"reset_period":4%s}`, name, extra)
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() { hs.Close(); s.Close() })
	return s, hs
}

func doJSON(t *testing.T, method, url, body string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := map[string]any{}
	json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

func waitStatus(t *testing.T, url, want string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		code, body := doJSON(t, "GET", url, "")
		if code != http.StatusOK {
			t.Fatalf("GET %s: %d", url, code)
		}
		if body["status"] == want {
			return body
		}
		if time.Now().After(deadline) {
			t.Fatalf("study stuck in %v waiting for %s", body["status"], want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAPIRejectsBadSpecs: every malformed spec is a 4xx and writes no
// state — the study list stays empty and the checkpoint dir untouched.
func TestAPIRejectsBadSpecs(t *testing.T) {
	dir := t.TempDir()
	_, hs := newTestServer(t, Options{Dir: dir, Workers: 1})
	bad := []string{
		`{not json`,
		`{"algorithm":"mls"}`,                                            // no name
		`{"name":"x","algorithm":"spea2"}`,                               // unknown algorithm
		`{"name":"x"}`,                                                   // missing algorithm
		`{"name":"../evil","algorithm":"mls"}`,                           // path traversal
		`{"name":"a/b","algorithm":"mls"}`,                               // path separator
		`{"name":".hidden","algorithm":"mls"}`,                           // dotfile
		`{"name":"x","algorithm":"mls","bogus_knob":1}`,                  // unknown field
		`{"name":"x","algorithm":"mls","pop_size":8}`,                    // NSGA knob on MLS
		`{"name":"x","algorithm":"nsga2","populations":2}`,               // MLS knob on NSGA
		`{"name":"x","algorithm":"nsga2","pop_size":7}`,                  // odd population
		`{"name":"x","algorithm":"nsga2","pop_size":8,"evaluations":4}`,  // budget < pop
		`{"name":"x","algorithm":"mls","trials":-1}`,                     // negative trials
		`{"name":"x","algorithm":"mls","committee":65}`,                  // committee over cap
		`{"name":"x","algorithm":"mls","density":100000}`,                // density out of range
		`{"name":"x","algorithm":"mls"}{"name":"y","algorithm":"nsga2"}`, // trailing data
		`{"name":"` + strings.Repeat("x", 65) + `","algorithm":"mls"}`,   // name too long
	}
	for _, spec := range bad {
		code, body := doJSON(t, "POST", hs.URL+"/studies", spec)
		if code < 400 || code >= 500 {
			t.Errorf("spec %q: status %d (%v), want 4xx", spec, code, body)
		}
	}
	code, _ := doJSON(t, "GET", hs.URL+"/studies", "")
	if code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	var list []any
	resp, err := http.Get(hs.URL + "/studies")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if len(list) != 0 {
		t.Fatalf("refused specs created %d studies", len(list))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != study.ManifestFile {
			t.Fatalf("refused specs wrote %q to the checkpoint dir", e.Name())
		}
	}
	m, err := study.LoadManifest(study.ManifestPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Studies) != 0 {
		t.Fatalf("refused specs registered %d manifest entries", len(m.Studies))
	}
}

// TestAPIDuplicateRefused: a second study with the same name is a 409
// and does not disturb the first.
func TestAPIDuplicateRefused(t *testing.T) {
	_, hs := newTestServer(t, Options{Workers: 1})
	if code, body := doJSON(t, "POST", hs.URL+"/studies", tinySpec("dup", `,"start_paused":true`)); code != http.StatusCreated {
		t.Fatalf("first create: %d %v", code, body)
	}
	if code, _ := doJSON(t, "POST", hs.URL+"/studies", tinySpec("dup", "")); code != http.StatusConflict {
		t.Fatalf("duplicate create: %d, want 409", code)
	}
	code, body := doJSON(t, "GET", hs.URL+"/studies/dup", "")
	if code != http.StatusOK || body["status"] != StatusPaused {
		t.Fatalf("original study disturbed: %d %v", code, body)
	}
}

// TestAPIPauseResumeRoundTrip: pause holds dispatch with counters
// intact; resume finishes the study with the same front as a never-
// paused golden run.
func TestAPIPauseResumeRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trial study; skipped in -short")
	}
	goldenFront, _ := runStudy(t, tinySpec("golden", ""), 2)
	golden := hexFront(goldenFront)

	_, hs := newTestServer(t, Options{Workers: 2})
	if code, body := doJSON(t, "POST", hs.URL+"/studies", tinySpec("golden", `,"start_paused":true`)); code != http.StatusCreated {
		t.Fatalf("create: %d %v", code, body)
	}
	url := hs.URL + "/studies/golden"

	// Paused at creation: nothing dispatched, nothing merged.
	body := waitStatus(t, url, StatusPaused)
	if body["merged"].(float64) != 0 {
		t.Fatalf("paused study merged %v trials", body["merged"])
	}
	if code, _ := doJSON(t, "POST", url+"/pause", ""); code != http.StatusConflict {
		t.Fatalf("pause while paused: %d, want 409", code)
	}

	// Resume, let at least one trial complete, pause again: the merged
	// counter survives the round trip. A fast study may race to done
	// before the second pause lands — both interleavings are legal and
	// both must end on the golden front.
	if code, _ := doJSON(t, "POST", url+"/resume", ""); code != http.StatusOK {
		t.Fatalf("resume: %d", code)
	}
	deadline := time.Now().Add(60 * time.Second)
	var merged float64
	for {
		_, b := doJSON(t, "GET", url, "")
		merged = b["merged"].(float64)
		if merged >= 1 || b["status"] == StatusDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no trial merged in time: %v", b)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code, _ := doJSON(t, "POST", url+"/pause", ""); code == http.StatusOK {
		_, b := doJSON(t, "GET", url, "")
		if got := b["merged"].(float64); got < merged {
			t.Fatalf("merged counter went backwards across pause: %v -> %v", merged, got)
		}
		if code, _ := doJSON(t, "POST", url+"/resume", ""); code != http.StatusOK {
			// Legal only if the pre-pause trials drove the study to done.
			if _, b := doJSON(t, "GET", url, ""); b["status"] != StatusDone {
				t.Fatalf("resume after pause: %d, study %v", code, b["status"])
			}
		}
	}

	final := waitStatus(t, url, StatusDone)
	if final["merged"].(float64) != 3 {
		t.Fatalf("done study merged %v trials, want all 3", final["merged"])
	}
	if got := fetchFront(t, url+"/front"); got != golden {
		t.Errorf("front after pause/resume differs from unpaused golden run\ngolden:\n%s\ngot:\n%s", golden, got)
	}
}

// fetchFront reads the NDJSON front stream and re-renders it in the
// bit-exact hex format.
func fetchFront(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	var sols []study.Solution
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var s study.Solution
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("front line %q: %v", sc.Text(), err)
		}
		sols = append(sols, s)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	decoded, err := study.DecodeSolutions(sols, len(sols[0].X), len(sols[0].F))
	if err != nil {
		t.Fatal(err)
	}
	return hexFront(decoded)
}

// TestAPIStopBoundary: stop answers with the last completed merge
// boundary, the study lands in "stopped", and later pause/resume/stop
// are 409s.
func TestAPIStopBoundary(t *testing.T) {
	_, hs := newTestServer(t, Options{Workers: 1})
	if code, body := doJSON(t, "POST", hs.URL+"/studies", tinySpec("s", `,"start_paused":true`)); code != http.StatusCreated {
		t.Fatalf("create: %d %v", code, body)
	}
	url := hs.URL + "/studies/s"
	code, body := doJSON(t, "POST", url+"/stop", "")
	if code != http.StatusOK {
		t.Fatalf("stop: %d %v", code, body)
	}
	merged, ok := body["merged"].(float64)
	if !ok {
		t.Fatalf("stop reply has no merged boundary: %v", body)
	}
	st := waitStatus(t, url, StatusStopped)
	if st["merged"].(float64) != merged {
		t.Fatalf("stop reported boundary %v, status says %v", merged, st["merged"])
	}
	for _, action := range []string{"pause", "resume", "stop"} {
		if code, _ := doJSON(t, "POST", url+"/"+action, ""); code != http.StatusConflict {
			t.Errorf("%s on stopped study: %d, want 409", action, code)
		}
	}
}

// TestAPINotFound: every per-study endpoint 404s on unknown names.
func TestAPINotFound(t *testing.T) {
	_, hs := newTestServer(t, Options{Workers: 1})
	for _, req := range [][2]string{
		{"GET", "/studies/ghost"},
		{"GET", "/studies/ghost/front"},
		{"POST", "/studies/ghost/pause"},
		{"POST", "/studies/ghost/resume"},
		{"POST", "/studies/ghost/stop"},
	} {
		if code, _ := doJSON(t, req[0], hs.URL+req[1], ""); code != http.StatusNotFound {
			t.Errorf("%s %s: %d, want 404", req[0], req[1], code)
		}
	}
}

// TestAPIHealthz: the health endpoint surfaces per-study eval counters
// once a study has evaluated something.
func TestAPIHealthz(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a study; skipped in -short")
	}
	_, hs := newTestServer(t, Options{Workers: 1})
	if code, body := doJSON(t, "POST", hs.URL+"/studies", tinySpec("h", "")); code != http.StatusCreated {
		t.Fatalf("create: %d %v", code, body)
	}
	waitStatus(t, hs.URL+"/studies/h", StatusDone)
	code, body := doJSON(t, "GET", hs.URL+"/healthz", "")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	studies, ok := body["studies"].(map[string]any)
	if !ok || studies["h"] == nil {
		t.Fatalf("healthz missing study h: %v", body)
	}
	totals := body["totals"].(map[string]any)
	if totals["full_evals"].(float64) <= 0 {
		t.Fatalf("healthz totals report no full evaluations: %v", totals)
	}
}
