package tuneserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"aedbmls/internal/eval"
	"aedbmls/internal/study"
)

// Handler returns the HTTP API over the server:
//
//	POST /studies                create a study from a JSON StudySpec
//	GET  /studies                list study statuses
//	GET  /studies/{name}         one study's status
//	GET  /studies/{name}/front   stream the merged front as NDJSON
//	POST /studies/{name}/pause   hold trial dispatch
//	POST /studies/{name}/resume  reopen trial dispatch
//	POST /studies/{name}/stop    stop; body reports the merged boundary
//	GET  /healthz                evaluation-supervision counters
//
// Errors are JSON {"error": "..."}: ErrSpec 400, ErrNotFound 404,
// ErrDuplicate and ErrBadState 409, anything else 500.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /studies", s.handleCreate)
	mux.HandleFunc("GET /studies", s.handleList)
	mux.HandleFunc("GET /studies/{name}", s.handleGet)
	mux.HandleFunc("GET /studies/{name}/front", s.handleFront)
	mux.HandleFunc("POST /studies/{name}/pause", s.handlePause)
	mux.HandleFunc("POST /studies/{name}/resume", s.handleResume)
	mux.HandleFunc("POST /studies/{name}/stop", s.handleStop)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

func httpError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrSpec):
		code = http.StatusBadRequest
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrDuplicate), errors.Is(err, ErrBadState):
		code = http.StatusConflict
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	st, err := s.Create(r.Body)
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, st.Status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	studies := s.List()
	out := make([]StudyStatus, len(studies))
	for i, st := range studies {
		out[i] = st.Status()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	st, err := s.Get(r.PathValue("name"))
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st.Status())
}

// handleFront streams the merged front, one study.Solution JSON object
// per line (hex-float coordinates: the stream round-trips bit-exactly).
func (s *Server) handleFront(w http.ResponseWriter, r *http.Request) {
	st, err := s.Get(r.PathValue("name"))
	if err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	for _, sol := range st.Front() {
		if err := enc.Encode(study.EncodeSolution(sol)); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (s *Server) handlePause(w http.ResponseWriter, r *http.Request) {
	s.studyAction(w, r, func(st *Study) error { return st.Pause() })
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	s.studyAction(w, r, func(st *Study) error { return st.Resume() })
}

func (s *Server) studyAction(w http.ResponseWriter, r *http.Request, f func(*Study) error) {
	st, err := s.Get(r.PathValue("name"))
	if err != nil {
		httpError(w, err)
		return
	}
	if err := f(st); err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st.Status())
}

func (s *Server) handleStop(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	merged, err := s.Stop(name)
	if err != nil {
		httpError(w, err)
		return
	}
	st, gerr := s.Get(name)
	if gerr != nil {
		httpError(w, gerr)
		return
	}
	status := st.Status()
	writeJSON(w, http.StatusOK, map[string]any{"merged": merged, "status": status})
}

// healthReply is the GET /healthz body.
type healthReply struct {
	Studies map[string]eval.Health `json:"studies"`
	Totals  eval.Health            `json:"totals"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	out := healthReply{Studies: make(map[string]eval.Health)}
	for _, st := range s.List() {
		h := st.problem.Health()
		out.Studies[st.Name()] = h
		out.Totals.Panics += h.Panics
		out.Totals.Errors += h.Errors
		out.Totals.Retries += h.Retries
		out.Totals.Timeouts += h.Timeouts
		out.Totals.Failures += h.Failures
		out.Totals.SerialFallbacks += h.SerialFallbacks
		out.Totals.ScreenEvals += h.ScreenEvals
		out.Totals.Screened += h.Screened
		out.Totals.Promoted += h.Promoted
		out.Totals.FullEvals += h.FullEvals
	}
	writeJSON(w, http.StatusOK, out)
}

// Serve runs the tuning service on addr until stop closes, then shuts
// the listener down gracefully and halts every study (interrupted
// studies checkpoint their last merged boundary and resume on the next
// start). ready, when non-nil, is called with the bound address before
// serving — the hook -port-file publication hangs off.
func Serve(addr string, opts Options, stop <-chan struct{}, ready func(net.Addr)) error {
	srv, err := New(opts)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready(ln.Addr())
	}
	hs := &http.Server{Handler: srv.Handler()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-stop
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
	}()
	err = hs.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		err = nil
	}
	<-done
	srv.Close()
	if err != nil {
		return fmt.Errorf("tuneserver: %v", err)
	}
	return nil
}
