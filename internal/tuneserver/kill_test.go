package tuneserver

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"aedbmls/internal/cliutil"
	"aedbmls/internal/faultinject"
	"aedbmls/internal/study"
)

// The server kill/resume wall extends the PR 6 checkpoint wall from one
// optimizer process to the whole tuning service: a subprocess server is
// SIGKILLed inside study.Save's crash window while running two studies,
// the parent restarts the service on the same checkpoint directory, and
// every study's final front must be bit-identical to an uninterrupted
// golden run.

const (
	tunedHelperEnv = "AEDB_TUNED_HELPER" // checkpoint dir handed to the child
	tunedPortEnv   = "AEDB_TUNED_PORT"   // file the child publishes its address in
)

// The two studies the wall runs: one per algorithm, small enough that a
// full run is sub-second but checkpointing hits several boundaries.
func killWallSpecs() []string {
	return []string{
		`{"name":"mls-a","algorithm":"mls","density":100,"seed":11,"trials":4,"committee":2,
		  "populations":2,"pop_workers":2,"evals_per_worker":8,"reset_period":4%s}`,
		`{"name":"nsga-b","algorithm":"nsga2","density":100,"seed":12,"trials":4,"committee":2,
		  "pop_size":8,"evaluations":32%s}`,
	}
}

// TestHelperTunedServe is the subprocess body for
// TestServerKillResumeEquivalence: it serves a persistent tuning service
// until SIGKILLed by the armed fault rule.
func TestHelperTunedServe(t *testing.T) {
	dir := os.Getenv(tunedHelperEnv)
	if dir == "" {
		t.Skip("subprocess helper for TestServerKillResumeEquivalence")
	}
	if _, err := faultinject.ConfigureFromEnv(); err != nil {
		t.Fatal(err)
	}
	portFile := os.Getenv(tunedPortEnv)
	err := Serve("127.0.0.1:0", Options{Dir: dir, Workers: 2}, make(chan struct{}), func(addr net.Addr) {
		if werr := cliutil.WriteReadyFile(portFile, addr.String()); werr != nil {
			t.Errorf("publish address: %v", werr)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// startKillableServer launches the helper subprocess with a kill rule
// armed on the third checkpoint save and returns the base URL once the
// child has published its address.
func startKillableServer(t *testing.T, ctx context.Context, dir, portFile string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.CommandContext(ctx, os.Args[0], "-test.run=TestHelperTunedServe$")
	cmd.Env = append(os.Environ(),
		tunedHelperEnv+"="+dir,
		tunedPortEnv+"="+portFile,
		faultinject.EnvVar+"=site=study.save,kind=kill,after=3")
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if b, err := os.ReadFile(portFile); err == nil && len(b) > 0 {
			return cmd, "http://" + strings.TrimSpace(string(b))
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("helper server never published its address")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerKillResumeEquivalence: SIGKILL the server inside the
// checkpoint save window, restart on the same directory, and require
// every study's resumed front to match the uninterrupted golden run bit
// for bit.
func TestServerKillResumeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill/resume test")
	}

	// Golden runs: same specs, fresh in-memory service, no faults.
	goldens := make(map[string]string)
	for _, tmpl := range killWallSpecs() {
		spec := fmt.Sprintf(tmpl, "")
		front, status := runStudy(t, spec, 2)
		goldens[status.Name] = hexFront(front)
	}

	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	cmd, base := startKillableServer(t, ctx, dir, filepath.Join(t.TempDir(), "port"))

	// Register both studies paused, then release them. Creating before
	// resuming guarantees the manifest holds both studies before the
	// first checkpoint save can arm the kill window; once the kill
	// fires, later requests legitimately fail with connection errors.
	for _, tmpl := range killWallSpecs() {
		spec := fmt.Sprintf(tmpl, `,"start_paused":true`)
		resp, err := http.Post(base+"/studies", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatalf("create against live server: %v", err)
		}
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create: %d", resp.StatusCode)
		}
		resp.Body.Close()
	}
	for _, name := range []string{"mls-a", "nsga-b"} {
		resp, err := http.Post(base+"/studies/"+name+"/resume", "application/json", nil)
		if err != nil {
			break // server already died in the save window
		}
		resp.Body.Close()
	}

	// The child must die of the injected SIGKILL, not our timeout.
	err := cmd.Wait()
	if ctx.Err() != nil {
		t.Fatalf("helper hit the test timeout; the armed kill never fired (%v)", err)
	}
	if err == nil {
		t.Fatal("helper exited cleanly; the armed kill never fired")
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("running helper: %v", err)
	}
	if ws, ok := ee.Sys().(syscall.WaitStatus); !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("helper did not die of SIGKILL: %v", err)
	}

	// The crash must have left the directory mid-study: both studies
	// registered, at least one without a Final checkpoint, and no torn
	// files (every surviving checkpoint loads strictly).
	m, err := study.LoadManifest(study.ManifestPath(dir))
	if err != nil {
		t.Fatalf("manifest did not survive the kill: %v", err)
	}
	if len(m.Studies) != 2 {
		t.Fatalf("manifest lost studies: %d of 2", len(m.Studies))
	}
	finals := 0
	for name := range m.Studies {
		path, perr := study.StudyPath(dir, name)
		if perr != nil {
			t.Fatal(perr)
		}
		cp, lerr := study.Load(path)
		switch {
		case errors.Is(lerr, os.ErrNotExist):
			// Killed before this study's first save: resumes from scratch.
		case lerr != nil:
			t.Fatalf("study %s: surviving checkpoint is torn: %v", name, lerr)
		case cp.Final:
			finals++
		}
	}
	if finals == len(m.Studies) {
		t.Fatal("every study already finished; the kill fired too late to exercise resume")
	}

	// Restart the service in-process on the crashed directory and wait
	// for every study to finish its remaining trials.
	srv, err := New(Options{Dir: dir, Workers: 2})
	if err != nil {
		t.Fatalf("restart on crashed directory: %v", err)
	}
	defer srv.Close()
	for _, st := range srv.List() {
		select {
		case <-st.Done():
		case <-time.After(60 * time.Second):
			t.Fatalf("study %s did not finish after restart (status %s)", st.Name(), st.Status().Status)
		}
		status := st.Status()
		if status.Status != StatusDone {
			t.Fatalf("study %s resumed to %s (error %q), want done", st.Name(), status.Status, status.Error)
		}
		if got := hexFront(st.Front()); got != goldens[st.Name()] {
			t.Errorf("study %s: resumed front differs from uninterrupted golden run\ngolden:\n%s\nresumed:\n%s",
				st.Name(), goldens[st.Name()], got)
		}
	}
}
