package tuneserver

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"aedbmls/internal/moo"
)

// hexFront renders a front as hex floats, the repo's bit-exact
// comparison format: two fronts are equal iff these strings are equal.
func hexFront(front []*moo.Solution) string {
	var b strings.Builder
	for _, s := range front {
		for _, x := range s.X {
			fmt.Fprintf(&b, "%016x ", math.Float64bits(x))
		}
		b.WriteString("| ")
		for _, f := range s.F {
			fmt.Fprintf(&b, "%016x ", math.Float64bits(f))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// runStudy runs one study on a fresh in-memory server with the given
// worker count and returns its sorted final front and status.
func runStudy(t *testing.T, spec string, workers int) ([]*moo.Solution, StudyStatus) {
	t.Helper()
	s, err := New(Options{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Create(strings.NewReader(spec))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	<-st.Done()
	status := st.Status()
	if status.Status != StatusDone {
		t.Fatalf("study ended %s (error %q), want done", status.Status, status.Error)
	}
	return st.Front(), status
}

// TestWorkerCountEquivalence is the tentpole's determinism proof: the
// same study sharded across 1, 2 and 8 workers produces bit-identical
// final fronts and evaluation counts, for both algorithms at two
// densities. CI runs this under -race, so it is simultaneously the
// concurrency wall for the dispatcher/worker/merger machinery.
func TestWorkerCountEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trial studies; skipped in -short")
	}
	specs := []string{
		`{"name":"mls-d%d","algorithm":"mls","density":%d,"seed":7,"trials":4,"committee":2,
		  "populations":2,"pop_workers":2,"evals_per_worker":8,"reset_period":4}`,
		`{"name":"nsga-d%d","algorithm":"nsga2","density":%d,"seed":7,"trials":4,"committee":2,
		  "pop_size":8,"evaluations":32}`,
	}
	for _, tmpl := range specs {
		for _, density := range []int{100, 200} {
			spec := fmt.Sprintf(tmpl, density, density)
			var golden string
			var goldenEvals int64
			for _, workers := range []int{1, 2, 8} {
				front, status := runStudy(t, spec, workers)
				got := hexFront(front)
				if workers == 1 {
					golden, goldenEvals = got, status.Evaluations
					if len(front) == 0 {
						t.Fatalf("%s: empty golden front", spec)
					}
					continue
				}
				if got != golden {
					t.Errorf("density %d workers %d: front differs from 1-worker run\n1 worker:\n%s\n%d workers:\n%s",
						density, workers, golden, workers, got)
				}
				if status.Evaluations != goldenEvals {
					t.Errorf("density %d workers %d: %d evaluations, 1-worker run did %d",
						density, workers, status.Evaluations, goldenEvals)
				}
			}
		}
	}
}
