// Package rng provides a small, fast, deterministic pseudo-random number
// generator with splittable streams.
//
// All stochastic components in this repository draw from *rng.Rand instead
// of the global math/rand source so that every experiment is exactly
// reproducible from a single seed, including under parallel execution:
// each worker goroutine receives an independent stream via Split, and the
// stream assignment itself is deterministic.
//
// The generator is xoshiro256** (Blackman & Vigna) seeded through
// SplitMix64, which is also used to derive child streams.
package rng

import "math"

// Rand is a deterministic pseudo-random number generator. It is NOT safe
// for concurrent use; give each goroutine its own stream via Split.
type Rand struct {
	s [4]uint64
}

// splitmix64 advances *x and returns the next SplitMix64 output.
// It is used for seeding and for deriving child streams.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Distinct seeds yield
// independent-looking streams; the same seed always yields the same stream.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state as if it had been created by New(seed).
func (r *Rand) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro must not be seeded with the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Split returns a new generator whose stream is a deterministic function of
// the parent's current state but statistically independent from the
// parent's subsequent outputs. The parent is advanced once.
func (r *Rand) Split() *Rand {
	// Mix one parent output through SplitMix64 to decorrelate the child.
	x := r.Uint64() ^ 0xa3ec647659359acd
	child := &Rand{}
	for i := range child.s {
		child.s[i] = splitmix64(&x)
	}
	if child.s[0]|child.s[1]|child.s[2]|child.s[3] == 0 {
		child.s[0] = 1
	}
	return child
}

// Clone returns an exact copy of the generator: the clone and the
// original produce identical subsequent streams. It is the primitive the
// warm-start snapshot path uses to freeze and replay RNG state.
func (r *Rand) Clone() *Rand {
	c := *r
	return &c
}

// State returns the raw xoshiro256** state (for snapshot serialisation).
func (r *Rand) State() [4]uint64 { return r.s }

// SetState overwrites the generator state with a previously captured one.
// An all-zero state is replaced by a fixed non-zero constant, as in Seed.
func (r *Rand) SetState(s [4]uint64) {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		s[0] = 0x9e3779b97f4a7c15
	}
	r.s = s
}

// FromState builds a generator positioned at a previously captured state:
// FromState(r.State()) continues r's stream exactly. It is the
// deserialisation counterpart of State, used when resuming checkpoints.
func FromState(s [4]uint64) *Rand {
	r := &Rand{}
	r.SetState(s)
	return r
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * 0x1p-53
}

// Range returns a uniform float64 in the HALF-OPEN interval [lo, hi). It
// panics if hi < lo.
func (r *Rand) Range(lo, hi float64) float64 {
	if hi < lo {
		panic("rng: Range with hi < lo")
	}
	return lo + (hi-lo)*r.Float64()
}

// float64ClosedDenom is the largest value float64Closed's 53-bit draw can
// take, making the quotient span [0, 1] inclusive at both ends.
const float64ClosedDenom = float64(1<<53 - 1)

// RangeClosed returns a uniform float64 in the CLOSED interval [lo, hi]:
// the draw is a uniform point of a 2^53-point lattice whose first point is
// lo and whose last is hi (up to one final rounding of lo + (hi-lo)), and
// the result never lands outside [lo, hi]. It panics if hi < lo; lo == hi
// returns lo.
//
// This is the correct primitive for "draw a delay in [min, max]"-style
// protocol intervals. The historical idiom Range(lo, hi+1e-15) is wrong at
// both ends of the scale: for bounds >= ~1 s the constant 1e-15 is below
// one ULP of hi, so the addition rounds away to exactly hi and the result
// is silently the half-open Range(lo, hi); for sub-microsecond bounds the
// same constant is many ULPs wide and the draw can land strictly ABOVE hi.
// RangeClosed has neither failure mode at any magnitude.
func (r *Rand) RangeClosed(lo, hi float64) float64 {
	if hi < lo {
		panic("rng: RangeClosed with hi < lo")
	}
	f := float64(r.Uint64()>>11) / float64ClosedDenom // uniform in [0, 1], endpoints included
	v := lo + (hi-lo)*f
	if v > hi {
		// lo + (hi-lo) can round one ULP past hi; the interval is closed,
		// not half-open-plus-epsilon, so clamp the boundary draw back.
		return hi
	}
	return v
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	// Lemire's bounded rejection method.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomises the order of n elements using the provided swap
// function (Fisher-Yates).
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Pick returns a uniformly random index weighted by w (w must be
// non-negative and finite with a positive sum). Non-finite weights
// panic, matching the Range/Intn contract style: a NaN weight would
// slip past the sum guard (NaN <= 0 is false) and silently return the
// last index every call.
func (r *Rand) Pick(w []float64) int {
	var sum float64
	for _, v := range w {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			panic("rng: Pick with non-finite weight")
		}
		sum += v
	}
	if sum <= 0 {
		panic("rng: Pick with non-positive weight sum")
	}
	x := r.Float64() * sum
	for i, v := range w {
		x -= v
		if x < 0 {
			return i
		}
	}
	return len(w) - 1
}
