package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestSeedResets(t *testing.T) {
	r := New(7)
	first := make([]uint64, 10)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after re-seed, output %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(42)
	child := parent.Split()
	// Child and parent must not mirror each other.
	same := 0
	for i := 0; i < 200; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("parent and child matched %d times", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	c1 := New(42).Split()
	c2 := New(42).Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("same-seed splits diverged at %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	check := func(seed uint64) bool {
		v := r.Float64()
		return v >= 0 && v < 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10000}); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(9)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %.4f, want approx 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	check := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestIntnCoversAllValues(t *testing.T) {
	r := New(11)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		seen[r.Intn(7)] = true
	}
	for v := 0; v < 7; v++ {
		if !seen[v] {
			t.Fatalf("Intn(7) never produced %d in 1000 draws", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestRangeBounds(t *testing.T) {
	r := New(8)
	check := func(a, b float64) bool {
		// Skip inputs whose span overflows float64.
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 1e150 || math.Abs(b) > 1e150 {
			return true
		}
		lo, hi := a, b
		if hi < lo {
			lo, hi = hi, lo
		}
		v := r.Range(lo, hi)
		return v >= lo && (v < hi || lo == hi)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	check := func(n uint8) bool {
		m := int(n%50) + 1
		p := r.Perm(m)
		if len(p) != m {
			return false
		}
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(17)
	xs := []int{1, 2, 2, 3, 5, 8, 13}
	counts := map[int]int{}
	for _, v := range xs {
		counts[v]++
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, v := range xs {
		counts[v]--
	}
	for v, c := range counts {
		if c != 0 {
			t.Fatalf("value %d count changed by %d", v, c)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(23)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %.4f, want approx 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %.4f, want approx 1", variance)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(29)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %.4f", p)
	}
}

func TestPickWeighted(t *testing.T) {
	r := New(31)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[r.Pick(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight option picked %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight ratio = %.2f, want approx 3", ratio)
	}
}

func TestPickPanicsOnZeroSum(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pick with zero weights did not panic")
		}
	}()
	New(1).Pick([]float64{0, 0})
}

func TestUniformityChiSquare(t *testing.T) {
	// 16-bucket chi-square on Float64; loose bound (99.9% quantile of
	// chi2_15 is about 37.7).
	r := New(37)
	const n = 160000
	var buckets [16]int
	for i := 0; i < n; i++ {
		buckets[int(r.Float64()*16)]++
	}
	expected := float64(n) / 16
	var chi2 float64
	for _, c := range buckets {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 37.7 {
		t.Fatalf("chi-square = %.1f, distribution looks non-uniform", chi2)
	}
}

func TestCloneProducesIdenticalStream(t *testing.T) {
	r := New(42)
	for i := 0; i < 10; i++ {
		r.Uint64()
	}
	c := r.Clone()
	for i := 0; i < 100; i++ {
		if a, b := r.Uint64(), c.Uint64(); a != b {
			t.Fatalf("clone diverged at draw %d: %x vs %x", i, a, b)
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	r := New(1)
	c := r.Clone()
	r.Uint64() // advance original only
	a := c.Uint64()
	r2 := New(1)
	want := r2.Uint64()
	if a != want {
		t.Fatalf("advancing the original disturbed the clone")
	}
}

func TestStateRoundTrip(t *testing.T) {
	r := New(9)
	r.Uint64()
	st := r.State()
	want := r.Uint64()
	var r2 Rand
	r2.SetState(st)
	if got := r2.Uint64(); got != want {
		t.Fatalf("state round-trip: %x vs %x", got, want)
	}
	var z Rand
	z.SetState([4]uint64{})
	if z.Uint64() == 0 && z.Uint64() == 0 {
		t.Fatal("all-zero state not repaired")
	}
}

func TestRangeClosedBounds(t *testing.T) {
	r := New(8)
	check := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 1e150 || math.Abs(b) > 1e150 {
			return true
		}
		lo, hi := a, b
		if hi < lo {
			lo, hi = hi, lo
		}
		v := r.RangeClosed(lo, hi)
		return v >= lo && v <= hi
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestRangeClosedEndpointsReachable pins the property Range lacks and
// RangeClosed exists for: both interval endpoints are actual outcomes.
// The draw maps the 53-bit integer u to lo + (hi-lo)*(u/(2^53-1)), so
// u = 0 must yield exactly lo and u = 2^53-1 exactly hi. Rather than
// fishing for those raw draws, verify via the [0, 1] unit interval where
// the lattice is exact, plus a degenerate interval.
func TestRangeClosedEndpointsReachable(t *testing.T) {
	r := New(99)
	sawLow, sawHigh := false, false
	// On [0, 1] the draw is u/(2^53-1): strictly more than half the
	// lattice lies above 0.5, so a modest sample exercises both halves;
	// endpoint hits themselves are too rare to sample, so check the
	// algebra directly instead.
	if got := 0 + (1-0)*(float64(0)/float64ClosedDenom); got != 0 {
		t.Fatalf("u=0 maps to %g, want exactly 0", got)
	}
	if got := 0 + (1-0)*(float64(uint64(1<<53-1))/float64ClosedDenom); got != 1 {
		t.Fatalf("u=max maps to %g, want exactly 1", got)
	}
	for i := 0; i < 4096; i++ {
		v := r.RangeClosed(0, 1)
		if v < 0.5 {
			sawLow = true
		} else {
			sawHigh = true
		}
	}
	if !sawLow || !sawHigh {
		t.Fatalf("draws did not cover both halves of [0,1] (low=%t high=%t)", sawLow, sawHigh)
	}
	if v := r.RangeClosed(2.5, 2.5); v != 2.5 {
		t.Fatalf("degenerate interval returned %g, want 2.5", v)
	}
}

// TestRangeClosedNeverOvershoots drives the clamp branch: intervals whose
// lo + (hi-lo) rounds one ULP past hi must still return a value <= hi.
func TestRangeClosedNeverOvershoots(t *testing.T) {
	r := New(7)
	// lo = 1 - 2^-53 ulp-straddles 1.0: hi-lo computed in float64 then
	// re-added can overshoot. Hammer many such asymmetric intervals.
	cases := [][2]float64{
		{1 - 0x1p-53, 1 + 0x1p-52},
		{-1 - 0x1p-52, -1 + 0x1p-53},
		{0.1, 0.30000000000000004},
		{1e-9, 2.0000000000000004e-9},
	}
	for _, c := range cases {
		lo, hi := c[0], c[1]
		for i := 0; i < 20000; i++ {
			if v := r.RangeClosed(lo, hi); v < lo || v > hi {
				t.Fatalf("RangeClosed(%g, %g) = %g escaped the closed interval", lo, hi, v)
			}
		}
	}
}

// TestRangeClosedConsumesOneDraw pins the stream-consumption contract:
// RangeClosed advances the generator by exactly one Uint64, the same as
// Range, so swapping one for the other in protocol code perturbs no
// other draw of the simulation.
func TestRangeClosedConsumesOneDraw(t *testing.T) {
	a, b := New(321), New(321)
	for i := 0; i < 100; i++ {
		a.RangeClosed(0, 5)
		b.Uint64()
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at step %d: RangeClosed consumed != 1 draw", i)
		}
		a.Seed(uint64(i))
		b.Seed(uint64(i))
	}
}

func TestRangeClosedPanicsOnInvertedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RangeClosed(2, 1) did not panic")
		}
	}()
	New(1).RangeClosed(2, 1)
}

// TestPickPanicsOnNonFiniteWeight: a NaN weight slips past the
// non-positive-sum guard (NaN <= 0 is false) and used to make Pick
// silently return the last index on every call; non-finite weights are a
// caller bug and must panic like the other argument contracts here.
func TestPickPanicsOnNonFiniteWeight(t *testing.T) {
	for name, w := range map[string][]float64{
		"nan":     {1, math.NaN(), 1},
		"inf":     {1, math.Inf(1), 1},
		"neg-inf": {1, math.Inf(-1), 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Pick did not panic", name)
				}
			}()
			New(1).Pick(w)
		}()
	}
	// Finite weights keep working and land in range.
	r := New(7)
	for i := 0; i < 100; i++ {
		if got := r.Pick([]float64{1, 2, 3}); got < 0 || got > 2 {
			t.Fatalf("Pick out of range: %d", got)
		}
	}
}
