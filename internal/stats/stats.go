// Package stats provides the statistical machinery of the paper's results
// section: the Wilcoxon rank-sum (Mann-Whitney) test used for the pairwise
// algorithm comparison of Table IV, and descriptive statistics / boxplot
// summaries for the Fig. 7 distributions.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (NaN for n < 2).
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return math.Sqrt(s / float64(n-1))
}

// Quantile returns the q-quantile (0 <= q <= 1) using linear interpolation
// between order statistics (type-7, the R default). A sample containing
// NaN has no defined quantiles and returns NaN: sort.Float64s orders NaN
// first, so silently sorting would report a plausible-looking but wrong
// order statistic (historically, Wilcoxon's MedianA/MedianB did exactly
// that for NaN-containing indicator samples).
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 || hasNaN(xs) {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[n-1]
	}
	h := q * float64(n-1)
	i := int(h)
	frac := h - float64(i)
	if i+1 >= n {
		return s[n-1]
	}
	return s[i] + frac*(s[i+1]-s[i])
}

// Median returns the 0.5 quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Boxplot is the five-number summary plus Tukey whiskers used to render
// Fig. 7.
type Boxplot struct {
	Min, Q1, Median, Q3, Max float64
	WhiskerLo, WhiskerHi     float64
	Outliers                 []float64
}

// NewBoxplot summarises a sample (whiskers at 1.5 IQR).
func NewBoxplot(xs []float64) Boxplot {
	b := Boxplot{
		Min: Quantile(xs, 0), Q1: Quantile(xs, 0.25), Median: Median(xs),
		Q3: Quantile(xs, 0.75), Max: Quantile(xs, 1),
	}
	iqr := b.Q3 - b.Q1
	loFence, hiFence := b.Q1-1.5*iqr, b.Q3+1.5*iqr
	b.WhiskerLo, b.WhiskerHi = math.Inf(1), math.Inf(-1)
	for _, v := range xs {
		if v < loFence || v > hiFence {
			b.Outliers = append(b.Outliers, v)
			continue
		}
		if v < b.WhiskerLo {
			b.WhiskerLo = v
		}
		if v > b.WhiskerHi {
			b.WhiskerHi = v
		}
	}
	if math.IsInf(b.WhiskerLo, 1) {
		b.WhiskerLo, b.WhiskerHi = b.Min, b.Max
	}
	return b
}

// WilcoxonResult is the outcome of a two-sided rank-sum test.
type WilcoxonResult struct {
	U         float64 // Mann-Whitney U of the first sample
	Z         float64 // normal approximation score
	P         float64 // two-sided p-value
	NA, NB    int
	MedianA   float64
	MedianB   float64
	Direction int // -1: A tends smaller, +1: A tends larger, 0: no evidence
}

// Significant reports whether the test rejects equality at level alpha
// (the paper uses alpha = 0.05).
func (w WilcoxonResult) Significant(alpha float64) bool { return w.P < alpha }

// Wilcoxon performs the two-sided Wilcoxon rank-sum (Mann-Whitney U) test
// with mid-ranks for ties and a tie-corrected normal approximation with
// continuity correction — the unpaired test the paper applies to the
// 30-run indicator samples.
//
// Samples containing NaN observations (e.g. indicators of degenerate
// fronts) yield P = NaN: the comparison is undefined, never significant.
func Wilcoxon(a, b []float64) WilcoxonResult {
	na, nb := len(a), len(b)
	res := WilcoxonResult{NA: na, NB: nb, MedianA: Median(a), MedianB: Median(b)}
	if na == 0 || nb == 0 || hasNaN(a) || hasNaN(b) {
		res.P = math.NaN()
		return res
	}
	type obs struct {
		v     float64
		fromA bool
	}
	all := make([]obs, 0, na+nb)
	for _, v := range a {
		all = append(all, obs{v, true})
	}
	for _, v := range b {
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	n := na + nb
	ranks := make([]float64, n)
	var tieCorrection float64
	for i := 0; i < n; {
		j := i
		for j < n && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		tieCorrection += t*t*t - t
		i = j
	}
	var rankSumA float64
	for i, o := range all {
		if o.fromA {
			rankSumA += ranks[i]
		}
	}
	u := rankSumA - float64(na*(na+1))/2
	res.U = u

	mu := float64(na) * float64(nb) / 2
	nf := float64(n)
	sigma2 := float64(na) * float64(nb) / 12 * ((nf + 1) - tieCorrection/(nf*(nf-1)))
	if sigma2 <= 0 {
		// All observations identical: no evidence of difference.
		res.P = 1
		return res
	}
	sigma := math.Sqrt(sigma2)
	diff := u - mu
	// Continuity correction towards the null.
	var cc float64
	switch {
	case diff > 0.5:
		cc = -0.5
	case diff < -0.5:
		cc = 0.5
	}
	z := (diff + cc) / sigma
	res.Z = z
	res.P = 2 * normalSF(math.Abs(z))
	if res.P > 1 {
		res.P = 1
	}
	if diff > 0 {
		res.Direction = 1
	} else if diff < 0 {
		res.Direction = -1
	}
	return res
}

// normalSF is the standard normal survival function P(Z > z).
func normalSF(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

func hasNaN(xs []float64) bool {
	for _, v := range xs {
		if math.IsNaN(v) {
			return true
		}
	}
	return false
}
