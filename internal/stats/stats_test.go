package stats

import (
	"math"
	"testing"
	"time"

	"aedbmls/internal/rng"
)

func timeAfter() <-chan time.Time { return time.After(5 * time.Second) }

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("mean = %v", got)
	}
	// Sample std of this classic set is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if got := StdDev(xs); math.Abs(got-want) > 1e-12 {
		t.Fatalf("std = %v, want %v", got, want)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(StdDev([]float64{1})) {
		t.Fatal("degenerate inputs should give NaN")
	}
}

func TestQuantiles(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := map[float64]float64{0: 1, 0.25: 2, 0.5: 3, 0.75: 4, 1: 5}
	for q, want := range cases {
		if got := Quantile(xs, q); math.Abs(got-want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	// Interpolation between order statistics (type 7).
	if got := Quantile([]float64{1, 2, 3, 4}, 0.5); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("median of 4 = %v, want 2.5", got)
	}
	// Input must not be reordered.
	unsorted := []float64{3, 1, 2}
	Quantile(unsorted, 0.5)
	if unsorted[0] != 3 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestBoxplot(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 100}
	b := NewBoxplot(xs)
	if b.Median != 5 {
		t.Fatalf("median = %v", b.Median)
	}
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Fatalf("outliers = %v, want [100]", b.Outliers)
	}
	if b.WhiskerHi != 8 || b.WhiskerLo != 1 {
		t.Fatalf("whiskers = [%v, %v], want [1, 8]", b.WhiskerLo, b.WhiskerHi)
	}
	if b.Max != 100 || b.Min != 1 {
		t.Fatalf("min/max = %v/%v", b.Min, b.Max)
	}
}

func TestWilcoxonIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	w := Wilcoxon(a, a)
	if w.Significant(0.05) {
		t.Fatalf("identical samples significant: p=%v", w.P)
	}
	if w.P < 0.9 {
		t.Fatalf("identical samples p = %v, want near 1", w.P)
	}
}

func TestWilcoxonConstantSamples(t *testing.T) {
	a := []float64{3, 3, 3}
	b := []float64{3, 3, 3, 3}
	w := Wilcoxon(a, b)
	if w.P != 1 || w.Significant(0.05) {
		t.Fatalf("all-ties p = %v", w.P)
	}
}

func TestWilcoxonClearSeparation(t *testing.T) {
	r := rng.New(1)
	var a, b []float64
	for i := 0; i < 30; i++ {
		a = append(a, r.Range(0, 1))
		b = append(b, r.Range(10, 11))
	}
	w := Wilcoxon(a, b)
	if !w.Significant(0.01) {
		t.Fatalf("separated samples not significant: p=%v", w.P)
	}
	if w.Direction != -1 {
		t.Fatalf("direction = %d, want -1 (a smaller)", w.Direction)
	}
	// And the mirrored comparison flips.
	w2 := Wilcoxon(b, a)
	if w2.Direction != 1 {
		t.Fatalf("mirrored direction = %d, want 1", w2.Direction)
	}
	if math.Abs(w.P-w2.P) > 1e-9 {
		t.Fatalf("p not symmetric: %v vs %v", w.P, w2.P)
	}
}

func TestWilcoxonKnownValue(t *testing.T) {
	// Classic small example: A = {1,2,3}, B = {4,5,6}: U_A = 0,
	// two-sided exact p = 0.1; the normal approximation with continuity
	// correction gives approximately 0.0809.
	w := Wilcoxon([]float64{1, 2, 3}, []float64{4, 5, 6})
	if w.U != 0 {
		t.Fatalf("U = %v, want 0", w.U)
	}
	if w.P < 0.05 || w.P > 0.15 {
		t.Fatalf("p = %v, want near 0.08-0.10", w.P)
	}
}

func TestWilcoxonTiesHandled(t *testing.T) {
	a := []float64{1, 2, 2, 3}
	b := []float64{2, 3, 3, 4}
	w := Wilcoxon(a, b)
	if math.IsNaN(w.P) || w.P <= 0 || w.P > 1 {
		t.Fatalf("tied-sample p = %v", w.P)
	}
}

func TestWilcoxonOverlappingNotSignificant(t *testing.T) {
	r := rng.New(2)
	var a, b []float64
	for i := 0; i < 30; i++ {
		a = append(a, r.NormFloat64())
		b = append(b, r.NormFloat64())
	}
	w := Wilcoxon(a, b)
	if w.Significant(0.001) {
		t.Fatalf("same-distribution samples highly significant: p=%v", w.P)
	}
}

func TestWilcoxonPower(t *testing.T) {
	// With 30-vs-30 samples shifted by one standard deviation the test
	// should detect the difference nearly always (this mirrors the
	// paper's 30-run comparisons).
	r := rng.New(3)
	detected := 0
	for trial := 0; trial < 50; trial++ {
		var a, b []float64
		for i := 0; i < 30; i++ {
			a = append(a, r.NormFloat64())
			b = append(b, r.NormFloat64()+1)
		}
		if w := Wilcoxon(a, b); w.Significant(0.05) && w.Direction == -1 {
			detected++
		}
	}
	if detected < 45 {
		t.Fatalf("power too low: %d/50 detections", detected)
	}
}

func TestWilcoxonEmpty(t *testing.T) {
	if w := Wilcoxon(nil, []float64{1}); !math.IsNaN(w.P) {
		t.Fatalf("empty sample p = %v, want NaN", w.P)
	}
}

func TestWilcoxonNaNObservations(t *testing.T) {
	// NaN observations (indicators of degenerate fronts) must terminate
	// with an undefined, non-significant result — this regression
	// previously hung the tie-ranking loop.
	done := make(chan WilcoxonResult, 1)
	go func() {
		done <- Wilcoxon([]float64{1, math.NaN(), 3}, []float64{2, 4})
	}()
	select {
	case w := <-done:
		if !math.IsNaN(w.P) {
			t.Fatalf("NaN-sample p = %v, want NaN", w.P)
		}
		if w.Significant(0.05) {
			t.Fatal("NaN-sample comparison reported significant")
		}
	case <-timeAfter():
		t.Fatal("Wilcoxon hung on NaN input")
	}
}

// TestQuantileNaN pins the NaN contract: quantiles of a NaN-containing
// sample are undefined and must come back NaN instead of the silently
// wrong order statistic sort.Float64s' NaN-first ordering used to yield.
func TestQuantileNaN(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		xs   []float64
		q    float64
		want float64 // NaN means "expect NaN"
	}{
		{"nan-only", []float64{nan}, 0.5, nan},
		{"nan-first", []float64{nan, 1, 2, 3}, 0.5, nan},
		{"nan-last", []float64{1, 2, 3, nan}, 0.5, nan},
		{"nan-min", []float64{1, nan, 3}, 0, nan},
		{"nan-max", []float64{1, nan, 3}, 1, nan},
		{"clean-median-odd", []float64{3, 1, 2}, 0.5, 2},
		{"clean-median-even", []float64{4, 1, 3, 2}, 0.5, 2.5},
		{"clean-q1", []float64{1, 2, 3, 4, 5}, 0.25, 2},
		{"clean-min", []float64{2, 1, 3}, 0, 1},
		{"clean-max", []float64{2, 1, 3}, 1, 3},
		{"empty", nil, 0.5, nan},
	}
	for _, tc := range cases {
		got := Quantile(tc.xs, tc.q)
		if math.IsNaN(tc.want) {
			if !math.IsNaN(got) {
				t.Errorf("%s: Quantile = %v, want NaN", tc.name, got)
			}
		} else if got != tc.want {
			t.Errorf("%s: Quantile = %v, want %v", tc.name, got, tc.want)
		}
	}
	if !math.IsNaN(Median([]float64{1, nan})) {
		t.Error("Median with NaN input did not return NaN")
	}
}

// TestWilcoxonNaNMedians: the refusal result for NaN samples must not
// smuggle in misleading medians — before the Quantile fix, MedianA/B were
// computed by sorting NaN below everything.
func TestWilcoxonNaNMedians(t *testing.T) {
	w := Wilcoxon([]float64{1, math.NaN(), 3}, []float64{2, 4})
	if !math.IsNaN(w.MedianA) {
		t.Errorf("MedianA = %v, want NaN", w.MedianA)
	}
	if w.MedianB != 3 {
		t.Errorf("MedianB = %v, want 3 (clean sample keeps its median)", w.MedianB)
	}
}
