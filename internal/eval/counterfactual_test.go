package eval

import (
	"math"
	"testing"

	"aedbmls/internal/aedb"
	"aedbmls/internal/manet"
)

// metricsBits compares two Metrics values bit-for-bit (stricter than ==,
// which would conflate 0 and -0).
func metricsBits(t *testing.T, name string, got, want Metrics) {
	t.Helper()
	pairs := [][2]float64{
		{got.EnergyDBmSum, want.EnergyDBmSum},
		{got.Coverage, want.Coverage},
		{got.Forwardings, want.Forwardings},
		{got.BroadcastTime, want.BroadcastTime},
		{got.EnergyMJ, want.EnergyMJ},
		{got.Collisions, want.Collisions},
	}
	for i, p := range pairs {
		if math.Float64bits(p[0]) != math.Float64bits(p[1]) {
			t.Errorf("%s: metrics field %d not bit-identical: got %v (%#x), want %v (%#x)",
				name, i, p[0], math.Float64bits(p[0]), p[1], math.Float64bits(p[1]))
		}
	}
}

// TestCounterfactualBitIdenticalToFreshSimulation is the acceptance wall
// of the counterfactual replayer: for every golden-corpus (density,
// seed) pair, re-scoring scenario 0 under a perturbed gene vector via
// tape replay must reproduce — bit for bit — a fresh full simulation of
// that perturbed candidate on the same scenario (manet.New + full Run,
// no snapshot, no tape, no quiescence early-stop).
func TestCounterfactualBitIdenticalToFreshSimulation(t *testing.T) {
	// A perturbation off both golden parameter vectors: shorter delays,
	// shifted border, larger margin.
	perturbed := aedb.FromVector([]float64{0.07, 0.61, -82.5, 1.4, 13})
	for _, density := range []int{100, 200, 300} {
		for seed := uint64(1); seed <= 4; seed++ {
			p := NewProblem(density, seed, WithCommittee(1))
			cf, err := p.CounterfactualScenario(0)
			if err != nil {
				t.Fatalf("d%d seed %d: %v", density, seed, err)
			}
			got := cf.Score(perturbed)

			sc := p.scenarios[0]
			net, err := manet.New(p.cfg, sc.seed, aedb.New(perturbed))
			if err != nil {
				t.Fatalf("d%d seed %d: fresh build: %v", density, seed, err)
			}
			st := net.StartBroadcast(sc.source, p.cfg.WarmupTime)
			net.Run()
			want := scenarioTerm(st, net)

			metricsBits(t, t.Name(), got, want)
			if t.Failed() {
				t.Fatalf("d%d seed %d: counterfactual replay diverged from fresh simulation", density, seed)
			}
		}
	}
}

// TestCounterfactualScoreIsRepeatable guards the replay substrate
// against cross-call state leaks: scoring the same params twice on one
// Counterfactual must be bit-identical.
func TestCounterfactualScoreIsRepeatable(t *testing.T) {
	p := NewProblem(100, 3, WithCommittee(1))
	cf, err := p.CounterfactualScenario(0)
	if err != nil {
		t.Fatal(err)
	}
	params := aedb.FromVector([]float64{0.1, 0.5, -80, 1, 10})
	metricsBits(t, t.Name(), cf.Score(params), cf.Score(params))
}

// TestCounterfactualStripsHooks: a config carrying trace hooks (the shape
// aedb-sim -trace produces) must not leak them into replays, and must
// still be buildable.
func TestCounterfactualStripsHooks(t *testing.T) {
	cfg := manet.DefaultScenario(25)
	fired := false
	cfg.OnDecision = func(manet.Decision) { fired = true }
	cfg.OnDataTx = func(int, int, float64, float64) { fired = true }
	cf, err := NewCounterfactual(cfg, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	cf.Score(aedb.FromVector([]float64{0.1, 0.5, -80, 1, 10}))
	if fired {
		t.Fatal("counterfactual replay invoked a hook from the recording config")
	}
}

// TestCounterfactualRejectsBadInput covers the refusal paths.
func TestCounterfactualRejectsBadInput(t *testing.T) {
	cfg := manet.DefaultScenario(10)
	if _, err := NewCounterfactual(cfg, 1, 10); err == nil {
		t.Fatal("out-of-range source accepted")
	}
	if _, err := NewCounterfactual(cfg, 1, -1); err == nil {
		t.Fatal("negative source accepted")
	}
	p := NewProblem(100, 1, WithCommittee(2))
	if _, err := p.CounterfactualScenario(2); err == nil {
		t.Fatal("out-of-committee scenario accepted")
	}
}
