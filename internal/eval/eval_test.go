package eval

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"aedbmls/internal/aedb"
	"aedbmls/internal/moo"
)

// tinyProblem keeps test evaluations cheap (3 networks instead of 10).
func tinyProblem(density int, seed uint64) *Problem {
	return NewProblem(density, seed, WithCommittee(3))
}

func TestProblemShape(t *testing.T) {
	p := tinyProblem(100, 1)
	if p.Dim() != aedb.NumParams || p.NumObjectives() != 3 {
		t.Fatalf("dim=%d objectives=%d", p.Dim(), p.NumObjectives())
	}
	lo, hi := p.Bounds()
	if len(lo) != 5 || len(hi) != 5 {
		t.Fatalf("bounds lengths %d/%d", len(lo), len(hi))
	}
	if lo[aedb.IdxBorderThreshold] != -95 || hi[aedb.IdxBorderThreshold] != -70 {
		t.Fatalf("border bounds [%v, %v], want Table III", lo[2], hi[2])
	}
	if p.Nodes() != 25 {
		t.Fatalf("100 dev/km^2 -> %d nodes, want 25", p.Nodes())
	}
	if p.Committee() != 3 {
		t.Fatalf("committee = %d", p.Committee())
	}
}

func TestDensityNodeCounts(t *testing.T) {
	for density, want := range map[int]int{100: 25, 200: 50, 300: 75} {
		if got := NewProblem(density, 1).Nodes(); got != want {
			t.Errorf("density %d -> %d nodes, want %d", density, got, want)
		}
	}
}

func TestEvaluateObjectiveMapping(t *testing.T) {
	p := tinyProblem(100, 2)
	x := aedb.Params{MinDelay: 0.1, MaxDelay: 0.5, BorderThresholdDBm: -82, MarginDBm: 1, NeighborsThreshold: 10}.Vector()
	f, viol, aux := p.Evaluate(x)
	m := aux.(Metrics)
	if f[0] != m.EnergyDBmSum || f[1] != -m.Coverage || f[2] != m.Forwardings {
		t.Fatalf("objective mapping wrong: f=%v metrics=%+v", f, m)
	}
	if m.BroadcastTime < BroadcastTimeLimit && viol != 0 {
		t.Fatalf("violation %v for bt %v", viol, m.BroadcastTime)
	}
	if m.BroadcastTime >= BroadcastTimeLimit && viol != m.BroadcastTime-BroadcastTimeLimit {
		t.Fatalf("violation %v for bt %v", viol, m.BroadcastTime)
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	p := tinyProblem(100, 3)
	x := aedb.Params{MinDelay: 0.2, MaxDelay: 1, BorderThresholdDBm: -85, MarginDBm: 0.5, NeighborsThreshold: 20}.Vector()
	f1, v1, _ := p.Evaluate(x)
	f2, v2, _ := p.Evaluate(x)
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("objective %d differs across evaluations: %v vs %v", i, f1[i], f2[i])
		}
	}
	if v1 != v2 {
		t.Fatalf("violations differ: %v vs %v", v1, v2)
	}
}

func TestCommitteeFrozenAcrossProblemInstances(t *testing.T) {
	x := aedb.Params{MinDelay: 0.1, MaxDelay: 0.4, BorderThresholdDBm: -80, MarginDBm: 1, NeighborsThreshold: 15}.Vector()
	p1 := tinyProblem(100, 42)
	p2 := tinyProblem(100, 42)
	f1, _, _ := p1.Evaluate(x)
	f2, _, _ := p2.Evaluate(x)
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatal("same-seed problems disagree (committee not frozen)")
		}
	}
	p3 := tinyProblem(100, 43)
	f3, _, _ := p3.Evaluate(x)
	same := true
	for i := range f1 {
		if f1[i] != f3[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different-seed problems agree exactly (suspicious)")
	}
}

func TestHighDelayViolatesConstraint(t *testing.T) {
	// Delays near 5 s (the sensitivity domain) on a multi-hop network
	// must blow the 2 s broadcast-time budget.
	p := NewProblem(100, 4, WithCommittee(3), WithDomain(aedb.SensitivityDomain()))
	x := aedb.Params{MinDelay: 4.5, MaxDelay: 5, BorderThresholdDBm: -90, MarginDBm: 1, NeighborsThreshold: 45}.Vector()
	_, viol, aux := p.Evaluate(x)
	m := aux.(Metrics)
	if m.Coverage < 3 {
		t.Skipf("committee too sparse for multi-hop (coverage %v)", m.Coverage)
	}
	if viol <= 0 {
		t.Fatalf("5 s delays feasible? bt=%v viol=%v", m.BroadcastTime, viol)
	}
}

func TestEvalCounter(t *testing.T) {
	p := tinyProblem(100, 5)
	x := aedb.Params{MinDelay: 0.1, MaxDelay: 0.3, BorderThresholdDBm: -80, MarginDBm: 1, NeighborsThreshold: 10}.Vector()
	p.Evaluate(x)
	p.Evaluate(x)
	if got := p.Evaluations(); got != 2 {
		t.Fatalf("evaluations = %d, want 2", got)
	}
	p.ResetEvaluations()
	if p.Evaluations() != 0 {
		t.Fatal("reset failed")
	}
}

func TestConcurrentEvaluationsSafe(t *testing.T) {
	p := tinyProblem(100, 6)
	x := aedb.Params{MinDelay: 0.1, MaxDelay: 0.3, BorderThresholdDBm: -80, MarginDBm: 1, NeighborsThreshold: 10}.Vector()
	want, _, _ := p.Evaluate(x)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f, _, _ := p.Evaluate(x)
			for i := range f {
				if f[i] != want[i] {
					errs <- "concurrent evaluation diverged"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

func TestBorderThresholdMonotonicity(t *testing.T) {
	// A wider forwarding area (higher border threshold) must not reduce
	// coverage or forwardings on average — the sensitivity-analysis
	// relationship in Table I.
	p := tinyProblem(200, 7)
	base := aedb.Params{MinDelay: 0.1, MaxDelay: 0.4, MarginDBm: 1, NeighborsThreshold: 50}
	narrow := base
	narrow.BorderThresholdDBm = -93
	wide := base
	wide.BorderThresholdDBm = -72
	mN := p.Simulate(narrow)
	mW := p.Simulate(wide)
	if mW.Forwardings < mN.Forwardings {
		t.Fatalf("wider border reduced forwardings: %v -> %v", mN.Forwardings, mW.Forwardings)
	}
}

func TestMetricsOf(t *testing.T) {
	p := tinyProblem(100, 8)
	x := aedb.Params{MinDelay: 0.1, MaxDelay: 0.3, BorderThresholdDBm: -80, MarginDBm: 1, NeighborsThreshold: 10}.Vector()
	s := moo.NewSolution(p, x)
	m, ok := MetricsOf(s)
	if !ok {
		t.Fatal("MetricsOf failed on an eval-produced solution")
	}
	if math.Abs(s.F[1]+m.Coverage) > 1e-12 {
		t.Fatal("solution objectives inconsistent with attached metrics")
	}
	if _, ok := MetricsOf(&moo.Solution{}); ok {
		t.Fatal("MetricsOf accepted a foreign solution")
	}
}

func TestSimulateProtocolMatchesSimulateForAEDB(t *testing.T) {
	p := tinyProblem(100, 9)
	params := aedb.Params{MinDelay: 0.1, MaxDelay: 0.3, BorderThresholdDBm: -80, MarginDBm: 1, NeighborsThreshold: 10}
	m1 := p.Simulate(params)
	m2 := p.SimulateProtocol(aedb.New(params))
	if m1.Coverage != m2.Coverage || m1.EnergyDBmSum != m2.EnergyDBmSum {
		t.Fatalf("Simulate and SimulateProtocol disagree: %+v vs %+v", m1, m2)
	}
}

func TestCustomDensityFallback(t *testing.T) {
	p := NewProblem(40, 10, WithCommittee(2)) // 40 dev/km^2 -> 10 nodes
	if p.Nodes() != 10 {
		t.Fatalf("nodes = %d, want 10", p.Nodes())
	}
}

// TestWarmStartBitIdentical is the central equivalence table test: across
// densities and committee seeds, the warm-start snapshot path must return
// bit-identical metrics (all six fields) to the from-scratch path.
func TestWarmStartBitIdentical(t *testing.T) {
	params := aedb.Params{MinDelay: 0.05, MaxDelay: 0.4, BorderThresholdDBm: -83, MarginDBm: 1.2, NeighborsThreshold: 12}
	for _, density := range []int{100, 200, 300} {
		for seed := uint64(1); seed <= 3; seed++ {
			warm := NewProblem(density, seed, WithCommittee(3))
			cold := NewProblem(density, seed, WithCommittee(3), WithWarmStart(false))
			mw := warm.Simulate(params)
			mc := cold.Simulate(params)
			if mw != mc {
				t.Errorf("density %d seed %d: warm %+v != cold %+v", density, seed, mw, mc)
			}
			// SimulateProtocol covers the sixth field (Collisions) too.
			pw := warm.SimulateProtocol(aedb.New(params))
			pc := cold.SimulateProtocol(aedb.New(params))
			if pw != pc {
				t.Errorf("density %d seed %d: protocol warm %+v != cold %+v", density, seed, pw, pc)
			}
		}
	}
}

// TestWarmStartDeterministic: two same-seed problems evaluating through
// snapshots agree exactly, and repeated evaluations on one problem agree
// with the first.
func TestWarmStartDeterministic(t *testing.T) {
	params := aedb.Params{MinDelay: 0.1, MaxDelay: 0.6, BorderThresholdDBm: -87, MarginDBm: 0.8, NeighborsThreshold: 25}
	p1 := NewProblem(200, 99, WithCommittee(3))
	p2 := NewProblem(200, 99, WithCommittee(3))
	a1 := p1.Simulate(params)
	a2 := p1.Simulate(params)
	b1 := p2.Simulate(params)
	if a1 != a2 {
		t.Fatalf("repeated warm evaluations diverged: %+v vs %+v", a1, a2)
	}
	if a1 != b1 {
		t.Fatalf("same-seed problems diverged: %+v vs %+v", a1, b1)
	}
}

// TestLargeCommittee: committees beyond DefaultCommittee draw additional
// frozen scenarios instead of silently truncating, and extend (not
// reshuffle) the default committee.
func TestLargeCommittee(t *testing.T) {
	p := NewProblem(100, 5, WithCommittee(15))
	if p.Committee() != 15 {
		t.Fatalf("committee = %d, want 15", p.Committee())
	}
	small := NewProblem(100, 5, WithCommittee(4))
	big := NewProblem(100, 5, WithCommittee(12))
	for i := 0; i < 4; i++ {
		if small.scenarios[i] != big.scenarios[i] {
			t.Fatalf("scenario %d differs across committee sizes: %+v vs %+v", i, small.scenarios[i], big.scenarios[i])
		}
	}
	def := NewProblem(100, 5)
	for i := 0; i < DefaultCommittee; i++ {
		if def.scenarios[i] != big.scenarios[i] {
			t.Fatalf("default committee scenario %d not a prefix of the larger committee", i)
		}
	}
	// A degenerate request clamps to one scenario.
	if got := NewProblem(100, 5, WithCommittee(0)).Committee(); got != 1 {
		t.Fatalf("committee(0) = %d, want 1", got)
	}
}

// TestWarmStartConcurrent exercises the lazy snapshot build under
// concurrent first use.
func TestWarmStartConcurrent(t *testing.T) {
	p := NewProblem(100, 31, WithCommittee(3))
	x := aedb.Params{MinDelay: 0.1, MaxDelay: 0.3, BorderThresholdDBm: -80, MarginDBm: 1, NeighborsThreshold: 10}.Vector()
	ref := NewProblem(100, 31, WithCommittee(3), WithWarmStart(false))
	want, _, _ := ref.Evaluate(x)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f, _, _ := p.Evaluate(x)
			for i := range f {
				if f[i] != want[i] {
					errs <- "concurrent warm-start evaluation diverged from cold reference"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

func TestWarmStartErrorSurfaced(t *testing.T) {
	p := tinyProblem(100, 77)
	if err := p.WarmStartError(); err != nil {
		t.Fatalf("error before any build: %v", err)
	}
	x := aedb.Params{MinDelay: 0.1, MaxDelay: 0.3, BorderThresholdDBm: -80, MarginDBm: 1, NeighborsThreshold: 10}.Vector()
	p.Evaluate(x)
	if err := p.WarmStartError(); err != nil {
		t.Fatalf("healthy warm start reports error: %v", err)
	}
	// Force a build failure and confirm it surfaces.
	p.snaps[0].err = fmt.Errorf("synthetic failure")
	if err := p.WarmStartError(); err == nil {
		t.Fatal("failed snapshot build not surfaced")
	}
}
