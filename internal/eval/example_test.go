package eval_test

import (
	"fmt"

	"aedbmls/internal/eval"
)

// ExampleProblem_EvaluateBatch evaluates a small candidate set through
// the batched engine and shows the batch/serial equivalence contract:
// EvaluateBatch(xs)[i] carries exactly what Evaluate(xs[i]) returns, bit
// for bit, while paying the per-scenario setup (snapshot, beacon tape,
// arena) once per committee wave instead of once per candidate.
func ExampleProblem_EvaluateBatch() {
	p := eval.NewProblem(100, 1, eval.WithCommittee(2))
	xs := [][]float64{
		{0.1, 0.5, -80, 1, 10}, // minDelay, maxDelay, border, margin, neighbors
		{0.05, 0.3, -85, 2, 20},
	}
	results := p.EvaluateBatch(xs)
	identical := true
	for i, x := range xs {
		f, viol, _ := p.Evaluate(x)
		for j := range f {
			if f[j] != results[i].F[j] {
				identical = false
			}
		}
		if viol != results[i].Violation {
			identical = false
		}
	}
	fmt.Println("batch size:", len(results))
	fmt.Println("bit-identical to serial Evaluate:", identical)
	// Output:
	// batch size: 2
	// bit-identical to serial Evaluate: true
}
