package eval

import (
	"crypto/sha256"
	"encoding/binary"
)

// TrialSeed derives the RNG seed of one trial within a study from the
// study seed and the trial id, by stable hashing (SHA-256 over a domain
// tag and the two values, big-endian). The derivation is a pure function
// of (study seed, trial id): which worker runs the trial, in which
// process, after how many other trials, never changes the stream — the
// property the tuning service's deterministic sharding is built on (an
// N-worker study replays the exact per-trial randomness of the 1-worker
// study, so the merged fronts are bit-identical).
//
// The domain tag separates trial seeds from every other seed family in
// the repository: TrialSeed(s, 0) is unrelated to s itself, so a study's
// committee (frozen from the study seed) never shares a stream with any
// of its trials.
func TrialSeed(studySeed uint64, trial int64) uint64 {
	h := sha256.New()
	var buf [8]byte
	h.Write([]byte("aedb-trial-seed-v1"))
	binary.BigEndian.PutUint64(buf[:], studySeed)
	h.Write(buf[:])
	binary.BigEndian.PutUint64(buf[:], uint64(trial))
	h.Write(buf[:])
	return binary.BigEndian.Uint64(h.Sum(nil)[:8])
}
