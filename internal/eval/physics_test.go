package eval

import (
	"fmt"
	"math"
	"testing"
)

// TestKernelPhysicsMatchesExactOnGoldenCorpus is the end-to-end half of
// the kernel's differential wall (radio.FuzzKernelVsReference is the
// per-call half): across the whole golden corpus, the fused-kernel arm
// and the exact-physics arm must agree EXACTLY on every discrete metric
// — coverage, forwardings, collisions and broadcast time, none of which
// may move on a last-bit rounding difference of a reception power — and
// within a tight relative bound on the two continuous energy sums, which
// accumulate the ULP-level differences of the adapted transmission
// powers.
func TestKernelPhysicsMatchesExactOnGoldenCorpus(t *testing.T) {
	entries := loadGoldenEntries(t)
	const relTol = 1e-9
	for _, e := range entries {
		name := fmt.Sprintf("d%d/seed%d", e.Density, e.Seed)
		kern := simulateCase(e.goldenCase)
		exact := simulateCase(e.goldenCase, WithExactPhysics(true))
		if kern.Coverage != exact.Coverage {
			t.Errorf("%s: coverage diverged across physics arms: kernel %v, exact %v", name, kern.Coverage, exact.Coverage)
		}
		if kern.Forwardings != exact.Forwardings {
			t.Errorf("%s: forwardings diverged across physics arms: kernel %v, exact %v", name, kern.Forwardings, exact.Forwardings)
		}
		if kern.Collisions != exact.Collisions {
			t.Errorf("%s: collisions diverged across physics arms: kernel %v, exact %v", name, kern.Collisions, exact.Collisions)
		}
		if kern.BroadcastTime != exact.BroadcastTime {
			t.Errorf("%s: broadcast time diverged across physics arms: kernel %v, exact %v", name, kern.BroadcastTime, exact.BroadcastTime)
		}
		for field, pair := range map[string][2]float64{
			"energy_dbm_sum": {kern.EnergyDBmSum, exact.EnergyDBmSum},
			"energy_mj":      {kern.EnergyMJ, exact.EnergyMJ},
		} {
			scale := math.Max(math.Abs(pair[1]), 1)
			if diff := math.Abs(pair[0] - pair[1]); diff > relTol*scale {
				t.Errorf("%s: %s drifted beyond the rounding band: kernel %v, exact %v (diff %g)",
					name, field, pair[0], pair[1], diff)
			}
		}
	}
}

// TestExactPhysicsSeparatesSharedCaches pins the fingerprint rule: the
// two physics arms must never share a beacon tape — a tape records
// pre-converted reception powers, so serving one arm's recording to the
// other would silently mix kernels.
func TestExactPhysicsSeparatesSharedCaches(t *testing.T) {
	const seed = 424242
	x := []float64{0.1, 0.5, -80, 1, 10}
	pk := NewProblem(100, seed, WithCommittee(1))
	pe := NewProblem(100, seed, WithCommittee(1), WithExactPhysics(true))
	if !pe.ExactPhysics() || pk.ExactPhysics() {
		t.Fatal("ExactPhysics accessor does not reflect the option")
	}
	pk.Evaluate(x)
	pe.Evaluate(x)
	tk, te := pk.tapes[0].tape, pe.tapes[0].tape
	if tk == nil || te == nil {
		t.Fatalf("tapes not built (%p, %p)", tk, te)
	}
	if tk == te {
		t.Fatal("fused-kernel and exact-physics Problems share one beacon tape")
	}
	// Within one arm the cache still shares.
	pe2 := NewProblem(100, seed, WithCommittee(1), WithExactPhysics(true))
	pe2.Evaluate(x)
	if pe2.tapes[0].tape != te {
		t.Fatal("same-arm Problems no longer share the tape cache")
	}
}
