package eval

import (
	"math"
	"testing"

	"aedbmls/internal/aedb"
	"aedbmls/internal/rng"
)

// TestMetricsPhysicalBounds is the randomised property wall over the
// default engine: whatever the parameter vector, the committee-averaged
// metrics must respect the physics of the scenario — coverage within
// [0, nodes-1] (the source cannot cover itself), forwardings within
// [0, nodes], broadcast time inside the simulation window, and
// non-negative energies and collision counts.
func TestMetricsPhysicalBounds(t *testing.T) {
	master := rng.New(777)
	lo, hi := aedb.DefaultDomain().Bounds()
	for _, density := range []int{100, 200} {
		p := NewProblem(density, 11, WithCommittee(2))
		nodes := float64(p.Nodes())
		window := p.cfg.EndTime - p.cfg.WarmupTime
		for trial := 0; trial < 12; trial++ {
			x := make([]float64, len(lo))
			for k := range x {
				x[k] = master.Range(lo[k], hi[k])
			}
			f, viol, aux := p.Evaluate(x)
			m := aux.(Metrics)
			if m.Coverage < 0 || m.Coverage > nodes-1 {
				t.Fatalf("d%d trial %d: coverage %v outside [0, %v]", density, trial, m.Coverage, nodes-1)
			}
			if m.Forwardings < 0 || m.Forwardings > nodes {
				t.Fatalf("d%d trial %d: forwardings %v outside [0, %v]", density, trial, m.Forwardings, nodes)
			}
			if m.BroadcastTime < 0 || m.BroadcastTime > window+1e-9 {
				t.Fatalf("d%d trial %d: broadcast time %v outside [0, %v]", density, trial, m.BroadcastTime, window)
			}
			if m.EnergyMJ < 0 || m.Collisions < 0 {
				t.Fatalf("d%d trial %d: negative energy/collisions %+v", density, trial, m)
			}
			if math.IsInf(m.EnergyDBmSum, 0) || math.IsNaN(m.EnergyDBmSum) {
				t.Fatalf("d%d trial %d: non-finite energy %v", density, trial, m.EnergyDBmSum)
			}
			if f[1] != -m.Coverage || f[2] != m.Forwardings {
				t.Fatalf("d%d trial %d: objective mapping inconsistent", density, trial)
			}
			if wantViol := math.Max(0, m.BroadcastTime-BroadcastTimeLimit); viol != wantViol {
				t.Fatalf("d%d trial %d: violation %v, want %v", density, trial, viol, wantViol)
			}
		}
	}
}

// TestReduceCommitteePermutationInvariant: the committee average is a
// mean, so permuting the reduction inputs must not change any metric
// beyond floating-point reassociation noise (and the term multiset is
// preserved exactly by construction).
func TestReduceCommitteePermutationInvariant(t *testing.T) {
	master := rng.New(42)
	for trial := 0; trial < 20; trial++ {
		n := 2 + master.Intn(9)
		terms := make([]Metrics, n)
		for i := range terms {
			terms[i] = Metrics{
				EnergyDBmSum:  master.Range(0, 2000),
				Coverage:      master.Range(0, 75),
				Forwardings:   master.Range(0, 75),
				BroadcastTime: master.Range(0, 10),
				EnergyMJ:      master.Range(0, 5),
				Collisions:    master.Range(0, 40),
			}
		}
		want := reduceCommittee(terms)
		perm := make([]Metrics, n)
		for i, j := range master.Perm(n) {
			perm[i] = terms[j]
		}
		got := reduceCommittee(perm)
		close := func(a, b float64) bool {
			return math.Abs(a-b) <= 1e-9*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
		}
		if !close(got.EnergyDBmSum, want.EnergyDBmSum) || !close(got.Coverage, want.Coverage) ||
			!close(got.Forwardings, want.Forwardings) || !close(got.BroadcastTime, want.BroadcastTime) ||
			!close(got.EnergyMJ, want.EnergyMJ) || !close(got.Collisions, want.Collisions) {
			t.Fatalf("trial %d: permuted reduction diverged:\n%+v\n%+v", trial, want, got)
		}
	}
}

// TestCommitteePermutationMetamorphic: permuting the committee order of a
// live Problem (scenario list reversed before first evaluation) must
// leave every metric invariant up to reassociation noise — the committee
// is a set, the ordered reduction only pins the bit pattern.
func TestCommitteePermutationMetamorphic(t *testing.T) {
	params := aedb.Params{MinDelay: 0.06, MaxDelay: 0.4, BorderThresholdDBm: -82, MarginDBm: 1.3, NeighborsThreshold: 18}
	for _, density := range []int{100, 300} {
		p1 := NewProblem(density, 5, WithCommittee(4))
		p2 := NewProblem(density, 5, WithCommittee(4))
		for i, j := 0, len(p2.scenarios)-1; i < j; i, j = i+1, j-1 {
			p2.scenarios[i], p2.scenarios[j] = p2.scenarios[j], p2.scenarios[i]
		}
		a := p1.Simulate(params)
		b := p2.Simulate(params)
		close := func(x, y float64) bool {
			return math.Abs(x-y) <= 1e-9*math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
		}
		if !close(a.EnergyDBmSum, b.EnergyDBmSum) || !close(a.Coverage, b.Coverage) ||
			!close(a.Forwardings, b.Forwardings) || !close(a.BroadcastTime, b.BroadcastTime) ||
			!close(a.EnergyMJ, b.EnergyMJ) || !close(a.Collisions, b.Collisions) {
			t.Fatalf("d%d: committee permutation changed the metrics:\n%+v\n%+v", density, a, b)
		}
	}
}
