package eval

import (
	"testing"
	"time"

	"aedbmls/internal/aedb"
	"aedbmls/internal/moo"
)

// TestRetryDelay pins the backoff clamp: exponential growth from the
// configured base, saturating at maxRetryBackoff, with no overflow at
// large attempt counts (the bug this replaced: base << (attempt-1)
// overflowed past attempt 63 and produced negative sleeps).
func TestRetryDelay(t *testing.T) {
	cases := []struct {
		base    time.Duration
		attempt int
		want    time.Duration
	}{
		{0, 1, 0},
		{-time.Millisecond, 3, 0},
		{time.Millisecond, 0, 0},
		{time.Millisecond, -5, 0},
		{time.Millisecond, 1, time.Millisecond},
		{time.Millisecond, 2, 2 * time.Millisecond},
		{time.Millisecond, 8, 128 * time.Millisecond},
		{time.Millisecond, 9, 256 * time.Millisecond},
		// 1ms << 9 = 512ms crosses the cap.
		{time.Millisecond, 10, maxRetryBackoff},
		{time.Millisecond, 20, maxRetryBackoff},
		// The old code's overflow region: shift >= 63.
		{time.Millisecond, 63, maxRetryBackoff},
		{time.Millisecond, 64, maxRetryBackoff},
		{time.Nanosecond, 1 << 30, maxRetryBackoff},
		{time.Second, 1, maxRetryBackoff},
		{maxRetryBackoff, 1, maxRetryBackoff},
		{maxRetryBackoff - 1, 1, maxRetryBackoff - 1},
		{maxRetryBackoff - 1, 2, maxRetryBackoff},
	}
	for _, c := range cases {
		got := retryDelay(c.base, c.attempt)
		if got != c.want {
			t.Errorf("retryDelay(%v, %d) = %v, want %v", c.base, c.attempt, got, c.want)
		}
		if got < 0 || got > maxRetryBackoff {
			t.Errorf("retryDelay(%v, %d) = %v outside [0, %v]", c.base, c.attempt, got, maxRetryBackoff)
		}
	}
}

// TestParseFidelity pins the CLI rung syntax.
func TestParseFidelity(t *testing.T) {
	ok := []struct {
		in   string
		want Fidelity
	}{
		{"", Fidelity{}},
		{"0", Fidelity{}},
		{"off", Fidelity{}},
		{" off ", Fidelity{}},
		{"3", Fidelity{Committee: 3}},
		{"3:0.5", Fidelity{Committee: 3, Horizon: 0.5}},
		{"1:1", Fidelity{Committee: 1, Horizon: 1}},
	}
	for _, c := range ok {
		got, err := ParseFidelity(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseFidelity(%q) = %+v, %v; want %+v", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"x", "-1", "3:", "3:0", "3:-0.5", "3:1.5", "3:x", "1:0.5:2"} {
		if f, err := ParseFidelity(bad); err == nil {
			t.Errorf("ParseFidelity(%q) = %+v, want error", bad, f)
		}
	}
	// String round-trips through ParseFidelity.
	for _, f := range []Fidelity{{}, {Committee: 3}, {Committee: 2, Horizon: 0.25}} {
		got, err := ParseFidelity(f.String())
		if err != nil || got != f {
			t.Errorf("round-trip %+v -> %q -> %+v, %v", f, f.String(), got, err)
		}
	}
}

// TestLadderGate unit-tests the reference front and its epsilon gate on
// synthetic points: empty front promotes everything, dominated points
// are triaged only past the margin, feasibility slack follows epsViol.
func TestLadderGate(t *testing.T) {
	const eps = 0.1
	epsViol := eps * BroadcastTimeLimit
	var l ladderState
	if l.triaged([]float64{1, 1, 1}, 0, eps) {
		t.Fatal("empty front triaged a candidate")
	}

	// Two non-dominated feasible points. At eps = 0.1 the margin of
	// point (10, 10, 10) is 1 per objective (relative to its own
	// magnitude).
	l.observe([]float64{10, 10, 10}, 0)
	l.observe([]float64{30, 5, 30}, 0)
	if len(l.front) != 2 {
		t.Fatalf("front size %d, want 2", len(l.front))
	}
	// Candidate worse than (10,10,10) by exactly the margin:
	// q.f[k] + eps|q.f[k]| <= f[k] holds, triaged.
	if !l.triaged([]float64{11, 11, 11}, 0, eps) {
		t.Fatal("candidate worse by the full margin in every objective not triaged")
	}
	// Within the margin in one objective: promoted.
	if l.triaged([]float64{10.5, 11, 11}, 0, eps) {
		t.Fatal("candidate within epsilon of the front triaged")
	}
	// Non-dominated candidate (better somewhere): promoted.
	if l.triaged([]float64{5, 50, 50}, 0, eps) {
		t.Fatal("non-dominated candidate triaged")
	}
	// Negative objectives (the committee's -coverage) keep the margin
	// direction: q.f[k] = -20 with eps = 0.1 gives margin 2.
	var neg ladderState
	neg.observe([]float64{-20, -20, -20}, 0)
	if !neg.triaged([]float64{-18, -18, -18}, 0, eps) {
		t.Fatal("candidate worse than a negative front point by the margin not triaged")
	}
	if neg.triaged([]float64{-19, -18, -18}, 0, eps) {
		t.Fatal("candidate within the negative-objective margin triaged")
	}
	// Feasibility slack: a feasible front point triages an infeasible
	// candidate only past eps times the broadcast-time limit.
	if l.triaged([]float64{50, 50, 50}, epsViol/2, eps) {
		t.Fatal("candidate within the violation slack triaged")
	}
	if !l.triaged([]float64{50, 50, 50}, 2*epsViol, eps) {
		t.Fatal("clearly infeasible candidate not triaged by a feasible front")
	}

	// A dominated observation must not grow the front; a dominating one
	// replaces what it dominates.
	l.observe([]float64{11, 11, 11}, 0)
	if len(l.front) != 2 {
		t.Fatalf("dominated observation grew the front to %d", len(l.front))
	}
	l.observe([]float64{-1, -1, -1}, 0)
	if len(l.front) != 1 {
		t.Fatalf("dominating observation left front size %d, want 1", len(l.front))
	}
	// Duplicates are not re-recorded.
	l.observe([]float64{-1, -1, -1}, 0)
	if len(l.front) != 1 {
		t.Fatalf("duplicate observation grew the front to %d", len(l.front))
	}
}

// TestLadderScreensAndPromotes drives the real batch path: a fresh
// ladder-enabled Problem promotes its first batch (empty front), the
// serial Evaluate of a strong configuration seeds the front, and a batch
// repeating a clearly dominated candidate is then screened out while the
// counters account for every rung.
func TestLadderScreensAndPromotes(t *testing.T) {
	good := aedb.Params{MinDelay: 0.1, MaxDelay: 0.6, BorderThresholdDBm: -85, MarginDBm: 2, NeighborsThreshold: 10}.Vector()
	bad := aedb.Params{MinDelay: 0.95, MaxDelay: 4.9, BorderThresholdDBm: -70, MarginDBm: 3, NeighborsThreshold: 49}.Vector()

	p := NewProblem(100, 7, WithCommittee(3),
		WithFidelity(Fidelity{Committee: 1, Horizon: 0.5}))
	if !p.ladderActive() {
		t.Fatal("ladder not active")
	}

	// Empty front: everything promotes, results are full fidelity.
	out := p.EvaluateBatch([][]float64{good, bad})
	for i, r := range out {
		if r.Screened || r.Stopped {
			t.Fatalf("empty-front cell %d not promoted: %+v", i, r)
		}
	}
	h := p.Health()
	if h.ScreenEvals != 2 || h.Promoted != 2 || h.FullEvals != 2 || h.Screened != 0 {
		t.Fatalf("after bootstrap batch: %+v", h)
	}
	if p.FrontSize() == 0 {
		t.Fatal("promoted full evaluations did not seed the front")
	}

	// The serial path also feeds the front.
	before := p.FrontSize()
	if _, _, aux := p.Evaluate(good); aux == nil {
		t.Fatal("serial evaluation failed")
	}
	if p.FrontSize() < before {
		t.Fatalf("serial evaluation shrank the front: %d -> %d", before, p.FrontSize())
	}

	// A utopian front point with zero slack triages every candidate: the
	// screening estimates come back marked, inadmissible, and NO full
	// evaluation is spent on the batch.
	p2 := NewProblem(100, 7, WithCommittee(3),
		WithFidelity(Fidelity{Committee: 1, Horizon: 0.5}), WithPromoteEpsilon(0))
	p2.ladder.mu.Lock()
	p2.ladder.observe([]float64{-1e9, -1e9, -1e9}, 0)
	p2.ladder.mu.Unlock()
	out = p2.EvaluateBatch([][]float64{good, bad})
	for i, r := range out {
		if !r.Screened || r.Stopped {
			t.Fatalf("utopian front did not screen cell %d: %+v", i, r)
		}
		s := moo.Solution{Stopped: r.Stopped, Screened: r.Screened}
		if s.Admissible() {
			t.Fatal("screened solution reported admissible")
		}
	}
	h2 := p2.Health()
	if h2.ScreenEvals != 2 || h2.Screened != 2 || h2.Promoted != 0 || h2.FullEvals != 0 {
		t.Fatalf("fully triaged batch counters: %+v", h2)
	}

	// A hopeless front point (worst objectives AND massively infeasible —
	// it epsilon-dominates nothing under Deb's rule) promotes everything
	// even though the front is non-empty.
	p3 := NewProblem(100, 7, WithCommittee(3),
		WithFidelity(Fidelity{Committee: 1, Horizon: 0.5}), WithPromoteEpsilon(0))
	p3.ladder.mu.Lock()
	p3.ladder.observe([]float64{1e9, 1e9, 1e9}, 1e9)
	p3.ladder.mu.Unlock()
	out = p3.EvaluateBatch([][]float64{good, bad})
	for i, r := range out {
		if r.Screened || r.Stopped {
			t.Fatalf("hopeless front screened cell %d: %+v", i, r)
		}
	}
	if h3 := p3.Health(); h3.Promoted != 2 || h3.FullEvals != 2 {
		t.Fatalf("promote-all counters: %+v", h3)
	}
}
