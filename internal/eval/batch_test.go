package eval

import (
	"sync"
	"testing"

	"aedbmls/internal/aedb"
	"aedbmls/internal/moo"
	"aedbmls/internal/rng"
)

// neighborhood builds a deterministic set of n in-domain parameter
// vectors spread over the Table III box — the shape of an MLS
// neighborhood or a MOEA offspring generation.
func neighborhood(n int, seed uint64) [][]float64 {
	r := rng.New(seed)
	lo, hi := aedb.DefaultDomain().Bounds()
	xs := make([][]float64, n)
	for i := range xs {
		x := make([]float64, len(lo))
		for k := range x {
			x[k] = lo[k] + r.Float64()*(hi[k]-lo[k])
		}
		xs[i] = x
	}
	return xs
}

func assertBatchMatchesSerial(t *testing.T, name string, p *Problem, ref *Problem, xs [][]float64) {
	t.Helper()
	got := p.EvaluateBatch(xs)
	if len(got) != len(xs) {
		t.Fatalf("%s: %d results for %d vectors", name, len(got), len(xs))
	}
	for j, x := range xs {
		f, viol, aux := ref.Evaluate(x)
		for k := range f {
			if got[j].F[k] != f[k] {
				t.Fatalf("%s: vector %d objective %d: batch %v != serial %v", name, j, k, got[j].F[k], f[k])
			}
		}
		if got[j].Violation != viol {
			t.Fatalf("%s: vector %d violation: batch %v != serial %v", name, j, got[j].Violation, viol)
		}
		if got[j].Aux.(Metrics) != aux.(Metrics) {
			t.Fatalf("%s: vector %d metrics: batch %+v != serial %+v", name, j, got[j].Aux, aux)
		}
	}
}

// TestEvaluateBatchBitIdentical is the central equivalence table of this
// PR: across densities, committee seeds and committee sizes, the batched
// fast path (beacon-tape replay + quiescence early stop) must return
// bit-identical objectives, violations and Metrics to serial Evaluate.
func TestEvaluateBatchBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		density, committee int
		seed               uint64
	}{
		{100, 1, 1}, {100, 3, 1}, {100, 3, 2}, {100, 10, 3},
		{200, 3, 1}, {200, 5, 2},
		{300, 3, 1}, {300, 3, 7},
	} {
		xs := neighborhood(4, tc.seed*101)
		p := NewProblem(tc.density, tc.seed, WithCommittee(tc.committee))
		ref := NewProblem(tc.density, tc.seed, WithCommittee(tc.committee))
		assertBatchMatchesSerial(t, "fast", p, ref, xs)
		// The same problem must serve mixed Evaluate/EvaluateBatch calls
		// consistently (batch after the serial reference warmed the cache).
		assertBatchMatchesSerial(t, "fast-mixed", ref, ref, xs)
	}
}

// TestEvaluateBatchPathVariants: every engine configuration — fast path
// off, serial waves, parallel waves, cold (no warm start) — agrees with
// serial Evaluate exactly.
func TestEvaluateBatchPathVariants(t *testing.T) {
	xs := neighborhood(5, 9)
	ref := NewProblem(100, 11, WithCommittee(3))
	for name, opts := range map[string][]Option{
		"reference-path":  {WithReferencePath(true)},
		"serial-waves":    {WithBatchWorkers(1)},
		"parallel-waves":  {WithBatchWorkers(8)},
		"cold":            {WithWarmStart(false)},
		"cold-reference":  {WithWarmStart(false), WithReferencePath(true)},
		"no-buffer-reuse": {WithBufferReuse(false)},
		"no-sharing":      {WithSharedWarmups(false)},
		"no-sharing-ref":  {WithSharedWarmups(false), WithReferencePath(true)},
	} {
		p := NewProblem(100, 11, append([]Option{WithCommittee(3)}, opts...)...)
		assertBatchMatchesSerial(t, name, p, ref, xs)
	}
}

// TestScenarioWorkersBitIdentical: committee-parallel evaluation must be
// bit-identical to serial evaluation for any worker count, on all three
// entry points.
func TestScenarioWorkersBitIdentical(t *testing.T) {
	params := aedb.Params{MinDelay: 0.08, MaxDelay: 0.45, BorderThresholdDBm: -84, MarginDBm: 1.1, NeighborsThreshold: 14}
	x := params.Vector()
	for _, density := range []int{100, 300} {
		serial := NewProblem(density, 5, WithCommittee(4))
		wantF, wantV, _ := serial.Evaluate(x)
		wantM := serial.Simulate(params)
		wantP := serial.SimulateProtocol(aedb.NewFlooding(0.05, 0.2))
		for _, workers := range []int{2, 4, 16} {
			p := NewProblem(density, 5, WithCommittee(4), WithScenarioWorkers(workers))
			f, v, _ := p.Evaluate(x)
			for k := range f {
				if f[k] != wantF[k] {
					t.Fatalf("density %d workers %d: objective %d %v != %v", density, workers, k, f[k], wantF[k])
				}
			}
			if v != wantV {
				t.Fatalf("density %d workers %d: violation %v != %v", density, workers, v, wantV)
			}
			if m := p.Simulate(params); m != wantM {
				t.Fatalf("density %d workers %d: Simulate %+v != %+v", density, workers, m, wantM)
			}
			if m := p.SimulateProtocol(aedb.NewFlooding(0.05, 0.2)); m != wantP {
				t.Fatalf("density %d workers %d: SimulateProtocol %+v != %+v", density, workers, m, wantP)
			}
		}
	}
}

// TestEvaluateBatchFrameBeacons: the frame-level beacon medium cannot
// record tapes; the batch engine must fall back and still match serial.
func TestEvaluateBatchFrameBeacons(t *testing.T) {
	cfg := func() Option {
		c := NewProblem(100, 1).cfg // default Table II scenario
		c.FastBeacons = false
		return WithConfig(c)
	}()
	p := NewProblem(100, 13, WithCommittee(2), cfg)
	ref := NewProblem(100, 13, WithCommittee(2), cfg)
	assertBatchMatchesSerial(t, "frame-beacons", p, ref, neighborhood(3, 21))
}

func TestEvaluateBatchCountsEvaluations(t *testing.T) {
	p := NewProblem(100, 17, WithCommittee(2))
	xs := neighborhood(6, 3)
	p.EvaluateBatch(xs)
	if got := p.Evaluations(); got != int64(len(xs)) {
		t.Fatalf("evaluations = %d, want %d", got, len(xs))
	}
	if out := p.EvaluateBatch(nil); out != nil {
		t.Fatalf("empty batch returned %v", out)
	}
	if got := p.Evaluations(); got != int64(len(xs)) {
		t.Fatalf("empty batch changed the counter to %d", got)
	}
}

// TestEvaluateAllUsesEvalBatch: the moo-level helper must route an eval
// problem through the batch engine and produce solutions identical to
// serial construction.
func TestEvaluateAllUsesEvalBatch(t *testing.T) {
	p := NewProblem(100, 23, WithCommittee(2))
	xs := neighborhood(4, 5)
	sols := moo.EvaluateAll(p, xs)
	for j, x := range xs {
		want := moo.NewSolution(p, x)
		if !moo.EqualF(sols[j], want) {
			t.Fatalf("solution %d: %v != %v", j, sols[j], want)
		}
		if _, ok := MetricsOf(sols[j]); !ok {
			t.Fatalf("solution %d lost its Metrics aux", j)
		}
	}
}

// TestWaveArenaConcurrentStress is the concurrency gate of the wave
// arena: one shared Problem with buffer reuse ON (the default) is hit by
// concurrent Evaluate and EvaluateBatch callers — so arenas circulate
// through the pool across goroutines while snapshot, tape and masked
// warm-up builds race on first use — and every result must equal the
// serial reference engine's. Run under -race this doubles as the data-race
// detector for the arena recycling.
func TestWaveArenaConcurrentStress(t *testing.T) {
	xs := neighborhood(5, 61)
	ref := NewProblem(100, 53, WithCommittee(3), WithReferencePath(true))
	want := make([]Metrics, len(xs))
	for j, x := range xs {
		_, _, aux := ref.Evaluate(x)
		want[j] = aux.(Metrics)
	}

	p := NewProblem(100, 53, WithCommittee(3), WithBatchWorkers(4), WithScenarioWorkers(2))
	if !p.bufferReuse {
		t.Fatal("buffer reuse must default on — this stress test covers the wave arena")
	}
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 3; iter++ {
				if w%2 == 0 {
					for j, r := range p.EvaluateBatch(xs) {
						if r.Aux.(Metrics) != want[j] {
							errs <- "arena EvaluateBatch diverged from the reference engine"
							return
						}
					}
				} else {
					for j, x := range xs {
						_, _, aux := p.Evaluate(x)
						if aux.(Metrics) != want[j] {
							errs <- "arena Evaluate diverged from the reference engine"
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}

// TestConcurrentBatchAndEvaluateStress hammers one Problem with
// concurrent EvaluateBatch and Evaluate calls (first use, so snapshot and
// tape builds race too) and requires every result to equal the serial
// reference. Run under -race this is the concurrency-safety gate of the
// evaluation engine.
func TestConcurrentBatchAndEvaluateStress(t *testing.T) {
	xs := neighborhood(4, 31)
	ref := NewProblem(100, 37, WithCommittee(3))
	want := make([]Metrics, len(xs))
	for j, x := range xs {
		_, _, aux := ref.Evaluate(x)
		want[j] = aux.(Metrics)
	}

	p := NewProblem(100, 37, WithCommittee(3), WithBatchWorkers(4), WithScenarioWorkers(2))
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 3; iter++ {
				if w%2 == 0 {
					for j, r := range p.EvaluateBatch(xs) {
						if r.Aux.(Metrics) != want[j] {
							errs <- "concurrent EvaluateBatch diverged"
							return
						}
					}
				} else {
					for j, x := range xs {
						_, _, aux := p.Evaluate(x)
						if aux.(Metrics) != want[j] {
							errs <- "concurrent Evaluate diverged"
							return
						}
					}
				}
				if err := p.WarmStartError(); err != nil {
					errs <- err.Error()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}
