package eval

import "testing"

// TestTrialSeedStable pins two derived seeds: TrialSeed is part of the
// tuning service's checkpoint identity (a resumed study re-runs its
// remaining trials from these seeds), so silently changing the hash
// would break bit-identical resume of existing studies.
func TestTrialSeedStable(t *testing.T) {
	if a, b := TrialSeed(1, 0), TrialSeed(1, 0); a != b {
		t.Fatalf("TrialSeed not deterministic: %d vs %d", a, b)
	}
	got0 := TrialSeed(1, 0)
	got1 := TrialSeed(1, 1)
	if got0 == got1 {
		t.Fatalf("adjacent trials collide: %d", got0)
	}
	// Golden values: recompute only on a deliberate, documented format bump.
	const want0, want1 uint64 = 0x2b21a73e55ff6f36, 0xfe48b472c8bf4aeb
	if got0 != want0 || got1 != want1 {
		t.Fatalf("TrialSeed(1,0)=%#x TrialSeed(1,1)=%#x, want %#x and %#x (derivation changed?)",
			got0, got1, want0, want1)
	}
}

// TestTrialSeedSpread checks the derived seeds behave like independent
// draws: no collisions across a study-sized block of trials, and
// different study seeds produce disjoint blocks.
func TestTrialSeedSpread(t *testing.T) {
	seen := make(map[uint64]string)
	for _, study := range []uint64{0, 1, 2, 1 << 63} {
		for trial := int64(0); trial < 1000; trial++ {
			s := TrialSeed(study, trial)
			if prev, ok := seen[s]; ok {
				t.Fatalf("seed collision: study %d trial %d repeats %s", study, trial, prev)
			}
			seen[s] = "earlier trial"
		}
	}
}
