package eval

import (
	"math"
	"testing"
	"time"

	"aedbmls/internal/faultinject"
)

// robustProblem builds a small, fast problem for supervision tests.
func robustProblem(opts ...Option) *Problem {
	base := []Option{WithCommittee(2)}
	return NewProblem(100, 424242, append(base, opts...)...)
}

var robustX = []float64{0.5, 0.5, 0.5, 0.5, 0.5}

func sameF(t *testing.T, want, got []float64) {
	t.Helper()
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("objective %d differs: %v vs %v", i, want, got)
		}
	}
}

// TestTransientPanicIsInvisible is the core supervision property: a fault
// that panics one scenario attempt once is absorbed by retry, and the
// evaluation result is bit-identical to an undisturbed run.
func TestTransientPanicIsInvisible(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()

	baseline, bviol, _ := robustProblem().Evaluate(robustX)

	if err := faultinject.Configure("site=eval.scenario,kind=panic,after=1,times=1"); err != nil {
		t.Fatal(err)
	}
	p := robustProblem()
	f, viol, _ := p.Evaluate(robustX)
	sameF(t, baseline, f)
	if math.Float64bits(bviol) != math.Float64bits(viol) {
		t.Fatalf("violation differs: %v vs %v", bviol, viol)
	}
	h := p.Health()
	if h.Panics != 1 || h.Retries != 1 || h.Failures != 0 {
		t.Fatalf("health after transient panic: %+v", h)
	}
	if err := p.Err(); err != nil {
		t.Fatalf("transient fault left a sticky error: %v", err)
	}
}

// TestPermanentFaultDegradesCandidate: a fault that fires on every attempt
// exhausts retries and the candidate gets the finite penalty outcome —
// the process survives and the failure is surfaced through Health and Err.
func TestPermanentFaultDegradesCandidate(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	if err := faultinject.Configure("site=eval.scenario,kind=error"); err != nil {
		t.Fatal(err)
	}
	p := robustProblem()
	f, viol, aux := p.Evaluate(robustX)
	want := FailedMetrics()
	if f[0] != want.EnergyDBmSum || f[1] != -want.Coverage || f[2] != want.Forwardings {
		t.Fatalf("degraded objectives %v, want penalty", f)
	}
	if viol < failedPenalty/2 {
		t.Fatalf("degraded candidate not infeasible: violation %v", viol)
	}
	if m, ok := aux.(Metrics); !ok || m != want {
		t.Fatalf("degraded Aux = %#v, want FailedMetrics", aux)
	}
	for i := range f {
		if math.IsInf(f[i], 0) || math.IsNaN(f[i]) {
			t.Fatalf("penalty objective %d is not finite: %v", i, f[i])
		}
	}
	h := p.Health()
	if h.Failures == 0 || h.Errors == 0 {
		t.Fatalf("health after permanent fault: %+v", h)
	}
	if p.Err() == nil {
		t.Fatal("Err() nil after degradation")
	}
}

// TestConstructionErrorDegrades exercises the former panic site: with warm
// start off, scenario construction runs on every evaluation, and a failure
// there (injected at the exact boundary) degrades the candidate instead of
// killing the process.
func TestConstructionErrorDegrades(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	if err := faultinject.Configure("site=eval.build,kind=error"); err != nil {
		t.Fatal(err)
	}
	p := robustProblem(WithWarmStart(false))
	f, _, _ := p.Evaluate(robustX)
	if f[0] != failedPenalty {
		t.Fatalf("construction failure did not degrade: %v", f)
	}
	if p.Health().Failures == 0 {
		t.Fatalf("health: %+v", p.Health())
	}
}

// TestEvalTimeoutDegrades: an attempt stuck past the per-evaluation
// timeout is abandoned and counts as a failure.
func TestEvalTimeoutDegrades(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	if err := faultinject.Configure("site=eval.scenario,kind=delay,delay=200ms"); err != nil {
		t.Fatal(err)
	}
	p := robustProblem(WithEvalTimeout(10*time.Millisecond), WithMaxRetries(0))
	f, _, _ := p.Evaluate(robustX)
	if f[0] != failedPenalty {
		t.Fatalf("timed-out evaluation did not degrade: %v", f)
	}
	if h := p.Health(); h.Timeouts == 0 {
		t.Fatalf("health: %+v", h)
	}
}

// TestBatchDegradesOnlyFailedCandidate: in a batch, a permanently failing
// cell penalises its candidate and leaves the others bit-identical.
func TestBatchDegradesOnlyFailedCandidate(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()

	other := []float64{0.2, 0.8, 0.3, 0.6, 0.4}
	baseline, _, _ := robustProblem().Evaluate(other)

	// Serial batch (workers=1, no fallback pass): cells run in order
	// c0s0, c1s0, c0s1, c1s1; candidate 0's first cell gets the fault on
	// its first attempt (hit 1) and its retry (hit 2), exhausting
	// maxRetries=1.
	if err := faultinject.Configure("site=eval.scenario,kind=error,after=1,times=2"); err != nil {
		t.Fatal(err)
	}
	p := robustProblem(WithBatchWorkers(1))
	out := p.EvaluateBatch([][]float64{robustX, other})
	if out[0].F[0] != failedPenalty {
		t.Fatalf("candidate 0 not degraded: %v", out[0].F)
	}
	sameF(t, baseline, out[1].F)
	if h := p.Health(); h.Failures != 1 {
		t.Fatalf("health: %+v", h)
	}
}

// TestSerialFallbackRecoversParallelFailures: cells that fail inside a
// parallel wave (retries disabled, two one-shot faults) are re-attempted
// serially and the batch result is bit-identical to an undisturbed run.
func TestSerialFallbackRecoversParallelFailures(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()

	b0, _, _ := robustProblem().Evaluate(robustX)
	other := []float64{0.2, 0.8, 0.3, 0.6, 0.4}
	b1, _, _ := robustProblem().Evaluate(other)

	if err := faultinject.Configure("site=eval.scenario,kind=error,times=2"); err != nil {
		t.Fatal(err)
	}
	p := robustProblem(WithBatchWorkers(2), WithMaxRetries(0))
	out := p.EvaluateBatch([][]float64{robustX, other})
	sameF(t, b0, out[0].F)
	sameF(t, b1, out[1].F)
	h := p.Health()
	if h.SerialFallbacks != 2 || h.Failures != 0 {
		t.Fatalf("health: %+v", h)
	}
}

// TestStopAbandonsEvaluation: a closed stop channel makes evaluations
// return immediately with the penalty outcome, without counting failures.
// Batched results additionally carry the explicit Stopped marker so
// callers discard them instead of aliasing the penalty point into
// populations or archives (the bug this pins down: stop-abandoned cells
// used to be indistinguishable from genuine evaluations).
func TestStopAbandonsEvaluation(t *testing.T) {
	faultinject.Reset()
	stop := make(chan struct{})
	close(stop)
	p := robustProblem(WithStop(stop))
	f, _, _ := p.Evaluate(robustX)
	if f[0] != failedPenalty {
		t.Fatalf("stopped evaluation returned %v", f)
	}
	out := p.EvaluateBatch([][]float64{robustX, robustX})
	for i, r := range out {
		if r.F[0] != failedPenalty {
			t.Fatalf("stopped batch cell %d returned %v", i, r.F)
		}
		if !r.Stopped {
			t.Fatalf("stopped batch cell %d not marked Stopped: %+v", i, r)
		}
		if r.Screened {
			t.Fatalf("stopped batch cell %d marked Screened: %+v", i, r)
		}
	}
	if h := p.Health(); h.Failures != 0 {
		t.Fatalf("stop counted as failure: %+v", h)
	}
	if err := p.Err(); err != nil {
		t.Fatalf("stop left sticky error: %v", err)
	}
}

// TestStopAbandonsLadderScreening: the stop contract holds on the
// screening rung too — a ladder-enabled batch under a closed stop channel
// marks every cell Stopped (not Screened) and touches no failure or
// promotion counters.
func TestStopAbandonsLadderScreening(t *testing.T) {
	faultinject.Reset()
	stop := make(chan struct{})
	close(stop)
	p := robustProblem(WithStop(stop), WithFidelity(Fidelity{Committee: 1}))
	out := p.EvaluateBatch([][]float64{robustX, robustX})
	for i, r := range out {
		if !r.Stopped || r.Screened {
			t.Fatalf("ladder stop cell %d: %+v", i, r)
		}
	}
	h := p.Health()
	if h.Failures != 0 || h.Screened != 0 || h.Promoted != 0 {
		t.Fatalf("ladder stop touched counters: %+v", h)
	}
}

// TestFingerprintIdentity: equal studies fingerprint equally; identity
// changes (density, seed, committee, physics arm, domain) all move the
// fingerprint; perf knobs do not.
func TestFingerprintIdentity(t *testing.T) {
	base := NewProblem(100, 7, WithCommittee(3)).Fingerprint()
	if got := NewProblem(100, 7, WithCommittee(3)).Fingerprint(); got != base {
		t.Fatal("identical problems fingerprint differently")
	}
	perf := NewProblem(100, 7, WithCommittee(3),
		WithScenarioWorkers(4), WithBatchWorkers(2), WithSharedTapes(false),
		WithSharedWarmups(false), WithBufferReuse(false), WithMaxRetries(5)).Fingerprint()
	if perf != base {
		t.Fatal("perf knobs moved the fingerprint")
	}
	// A disabled fidelity ladder must leave the fingerprint byte-identical
	// (old checkpoints keep resuming); an enabled one must move it, and so
	// must changing its rung or its promotion slack mid-study.
	if got := NewProblem(100, 7, WithCommittee(3), WithFidelity(Fidelity{})).Fingerprint(); got != base {
		t.Fatal("disabled fidelity ladder moved the fingerprint")
	}
	ladder := NewProblem(100, 7, WithCommittee(3), WithFidelity(Fidelity{Committee: 2})).Fingerprint()
	if ladder == base {
		t.Fatal("enabled fidelity ladder did not move the fingerprint")
	}
	for name, p := range map[string]*Problem{
		"density":   NewProblem(200, 7, WithCommittee(3)),
		"seed":      NewProblem(100, 8, WithCommittee(3)),
		"committee": NewProblem(100, 7, WithCommittee(4)),
		"physics":   NewProblem(100, 7, WithCommittee(3), WithExactPhysics(true)),
		"rung": NewProblem(100, 7, WithCommittee(3),
			WithFidelity(Fidelity{Committee: 2, Horizon: 0.5})),
		"eps": NewProblem(100, 7, WithCommittee(3),
			WithFidelity(Fidelity{Committee: 2}), WithPromoteEpsilon(0.1)),
	} {
		if p.Fingerprint() == base {
			t.Errorf("%s change did not move the fingerprint", name)
		}
	}
	for name, p := range map[string]*Problem{
		"rung": NewProblem(100, 7, WithCommittee(3),
			WithFidelity(Fidelity{Committee: 2, Horizon: 0.5})),
		"eps": NewProblem(100, 7, WithCommittee(3),
			WithFidelity(Fidelity{Committee: 2}), WithPromoteEpsilon(0.1)),
	} {
		if p.Fingerprint() == ladder {
			t.Errorf("ladder %s change did not move the fingerprint", name)
		}
	}
}
