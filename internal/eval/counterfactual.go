package eval

import (
	"fmt"

	"aedbmls/internal/aedb"
	"aedbmls/internal/manet"
)

// Counterfactual re-scores one recorded scenario under perturbed AEDB
// parameter vectors without re-simulating its mobility or beaconing: the
// scenario's warm-up is captured once as a snapshot and its neighbor
// dynamics once as a beacon tape, then every Score call replays the tape
// under a fresh protocol population. This is the "what would this
// candidate have done on the exact network the trace recorded" primitive
// behind `aedb-trace counterfactual`: by the snapshot/tape equivalence
// contract (see internal/manet and the golden-corpus wall), the returned
// metrics are bit-identical to a fresh full simulation of the perturbed
// candidate on the same (seed, source) scenario.
//
// Trace hooks in cfg are stripped: a counterfactual is metrics-only, and
// leaking a recorded run's collector into replays would corrupt it.
type Counterfactual struct {
	cfg    manet.Config
	seed   uint64
	source int
	snap   *manet.Snapshot
	tape   *manet.BeaconTape // nil when the config cannot be taped (FastBeacons off)
}

// NewCounterfactual captures the scenario (cfg warmed under seed,
// broadcast from source) for repeated re-scoring. Building pays one
// warm-up simulation plus one tape recording; each Score afterwards
// costs only the broadcast cascade.
func NewCounterfactual(cfg manet.Config, seed uint64, source int) (*Counterfactual, error) {
	cfg.OnDataTx, cfg.OnDataRx, cfg.OnDataLost, cfg.OnDecision = nil, nil, nil, nil
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("eval: counterfactual config: %w", err)
	}
	if source < 0 || source >= cfg.NumNodes {
		return nil, fmt.Errorf("eval: counterfactual source %d outside [0, %d)", source, cfg.NumNodes)
	}
	snap, err := manet.BuildSnapshot(cfg, seed, cfg.WarmupTime)
	if err != nil {
		return nil, fmt.Errorf("eval: counterfactual warm-up: %w", err)
	}
	c := &Counterfactual{cfg: cfg, seed: seed, source: source, snap: snap}
	if cfg.FastBeacons {
		tape, err := snap.RecordBeaconTape(cfg.EndTime)
		if err != nil {
			return nil, fmt.Errorf("eval: counterfactual tape: %w", err)
		}
		c.tape = tape
	}
	return c, nil
}

// Seed returns the recorded scenario seed.
func (c *Counterfactual) Seed() uint64 { return c.seed }

// Source returns the recorded broadcast source node.
func (c *Counterfactual) Source() int { return c.source }

// Score replays the recorded scenario under params and returns its
// single-scenario metrics (one committee term, not an average). Safe for
// concurrent calls: each replay instantiates its own network from the
// shared immutable snapshot and tape.
func (c *Counterfactual) Score(params aedb.Params) Metrics {
	factory := aedb.New(params)
	var net *manet.Network
	var st *manet.BroadcastStats
	if c.tape != nil {
		net, st = c.snap.InstantiateReplay(factory, c.source, c.cfg.WarmupTime, c.tape)
		net.RunToQuiescence()
	} else {
		// No tape (accurate beacon contention): replay from the snapshot
		// with live beaconing, full tail.
		net, st = c.snap.Instantiate(factory, c.source, c.cfg.WarmupTime)
		net.Run()
	}
	return scenarioTerm(st, net)
}

// ScoreVector is Score on a canonical-order gene vector.
func (c *Counterfactual) ScoreVector(x []float64) Metrics { return c.Score(aedb.FromVector(x)) }

// CounterfactualScenario builds the replayer for committee scenario i of
// this problem — the bridge from a tuning study ("candidate X regressed
// on scenario 3") to decision-level forensics.
func (p *Problem) CounterfactualScenario(i int) (*Counterfactual, error) {
	if i < 0 || i >= len(p.scenarios) {
		return nil, fmt.Errorf("eval: scenario %d outside committee [0, %d)", i, len(p.scenarios))
	}
	sc := p.scenarios[i]
	return NewCounterfactual(p.cfg, sc.seed, sc.source)
}
