package eval

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strconv"
	"sync"
	"testing"

	"aedbmls/internal/aedb"
)

// loadGoldenEntries reads the committed golden-metrics corpus (shared
// with TestGoldenMetrics).
func loadGoldenEntries(t *testing.T) []goldenEntry {
	t.Helper()
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden corpus missing (generate with -update): %v", err)
	}
	var file goldenFile
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatalf("corrupt golden corpus: %v", err)
	}
	return file.Entries
}

// assertGoldenMetrics requires the simulated metrics to match the given
// recorded arm bit-for-bit on every field.
func assertGoldenMetrics(t *testing.T, name string, want goldenMetrics, m Metrics) {
	t.Helper()
	got := metricsFields(m)
	for field, wantHex := range want.Hex {
		w, err := strconv.ParseFloat(wantHex, 64)
		if err != nil {
			t.Fatalf("%s: bad hex float %q: %v", name, wantHex, err)
		}
		if gv := got[field]; gv != w || math.Signbit(gv) != math.Signbit(w) {
			t.Errorf("%s: %s drifted: got %s (%v), want %s (%v)",
				name, field, strconv.FormatFloat(gv, 'x', -1, 64), gv, wantHex, w)
		}
	}
}

// TestGoldenMetricsOptOutMatrix replays the golden corpus under EVERY
// combination of the five engine opt-outs — shared tapes, shared
// warm-ups, buffer reuse, reference path, exact physics (32 combos) — so
// no flag combination can drift numerically unnoticed: whatever subset
// of the caches, fast paths and physics arms a caller ends up on, the
// metrics must still be the committed bit-exact ones for that physics
// arm. Under -short the corpus is thinned to one seed per density (the
// full matrix runs in the regular suite).
func TestGoldenMetricsOptOutMatrix(t *testing.T) {
	entries := loadGoldenEntries(t)
	if testing.Short() {
		var thin []goldenEntry
		seen := map[int]bool{}
		for _, e := range entries {
			if !seen[e.Density] {
				seen[e.Density] = true
				thin = append(thin, e)
			}
		}
		entries = thin
	}
	for _, ladder := range []bool{false, true} {
		for _, tapes := range []bool{true, false} {
			for _, warmups := range []bool{true, false} {
				for _, arena := range []bool{true, false} {
					for _, ref := range []bool{false, true} {
						for _, exact := range []bool{false, true} {
							combo := fmt.Sprintf("ladder=%v/tapes=%v/warmups=%v/arena=%v/ref=%v/exact=%v", ladder, tapes, warmups, arena, ref, exact)
							opts := []Option{
								WithSharedTapes(tapes),
								WithSharedWarmups(warmups),
								WithBufferReuse(arena),
								WithReferencePath(ref),
								WithExactPhysics(exact),
							}
							if ladder {
								// The ladder is a batch-triage policy: the
								// serial Simulate/Evaluate path must stay
								// bit-identical with the harshest rung on.
								opts = append(opts,
									WithFidelity(Fidelity{Committee: 1, Horizon: 0.5}),
									WithPromoteEpsilon(0.01))
							}
							for _, e := range entries {
								name := fmt.Sprintf("%s d%d/seed%d", combo, e.Density, e.Seed)
								assertGoldenMetrics(t, name, e.want(exact), simulateCase(e.goldenCase, opts...))
							}
						}
					}
				}
			}
		}
	}
}

// TestGoldenMetricsLadderPromotion pins the other half of the ladder's
// exactness contract: a candidate PROMOTED through the screening rung
// (here guaranteed — a fresh Problem's reference front is empty, so the
// gate promotes everything) must come back with full-fidelity metrics
// bit-identical to the committed golden corpus and to a direct serial
// Evaluate on a ladder-free Problem.
func TestGoldenMetricsLadderPromotion(t *testing.T) {
	entries := loadGoldenEntries(t)
	if testing.Short() && len(entries) > 3 {
		entries = entries[:3]
	}
	for _, e := range entries {
		name := fmt.Sprintf("d%d/seed%d", e.Density, e.Seed)
		p := NewProblem(e.Density, e.Seed, WithCommittee(goldenCommittee),
			WithFidelity(Fidelity{Committee: 1, Horizon: 0.5}))
		out := p.EvaluateBatch([][]float64{e.Params})
		r := out[0]
		if r.Screened || r.Stopped {
			t.Fatalf("%s: empty-front candidate not promoted: %+v", name, r)
		}
		m, ok := r.Aux.(Metrics)
		if !ok {
			t.Fatalf("%s: promoted result carries no Metrics", name)
		}
		assertGoldenMetrics(t, "promoted "+name, e.want(false), m)
		f, viol, _ := NewProblem(e.Density, e.Seed, WithCommittee(goldenCommittee)).Evaluate(e.Params)
		for k := range f {
			if f[k] != r.F[k] {
				t.Fatalf("%s: promoted F[%d]=%x, serial Evaluate %x", name, k, r.F[k], f[k])
			}
		}
		if viol != r.Violation {
			t.Fatalf("%s: promoted violation %x, serial %x", name, r.Violation, viol)
		}
		h := p.Health()
		if h.ScreenEvals != 1 || h.Promoted != 1 || h.FullEvals != 1 || h.Screened != 0 {
			t.Fatalf("%s: ladder counters %+v", name, h)
		}
	}
}

// TestSharedTapesOneRecordingPerScenario pins the sharing itself, not
// just its numerics: two default-configured Problems over the same
// (seed, density) must end up replaying the SAME tape object per
// scenario (one process-wide recording), two densities of one seed must
// share the parent recording through masked derivation, and the
// WithSharedTapes(false) opt-out must record privately.
func TestSharedTapesOneRecordingPerScenario(t *testing.T) {
	const seed = 98765
	x := aedb.Params{MinDelay: 0.1, MaxDelay: 0.4, BorderThresholdDBm: -81, MarginDBm: 1, NeighborsThreshold: 12}.Vector()
	force := func(p *Problem) {
		if _, _, aux := p.Evaluate(x); aux == nil {
			t.Fatal("evaluation returned no metrics")
		}
	}
	p1 := NewProblem(100, seed, WithCommittee(2))
	p2 := NewProblem(100, seed, WithCommittee(2))
	force(p1)
	force(p2)
	for i := range p1.tapes {
		ta, tb := p1.tapes[i].tape, p2.tapes[i].tape
		if ta == nil || tb == nil {
			t.Fatalf("scenario %d: tape not built (%p, %p)", i, ta, tb)
		}
		if ta != tb {
			t.Fatalf("scenario %d: same-density Problems recorded separate tapes", i)
		}
		if ta.NumNodes() != p1.Nodes() {
			t.Fatalf("scenario %d: tape for %d nodes serving a %d-node problem", i, ta.NumNodes(), p1.Nodes())
		}
	}
	// Opt-out: a private recording, not the shared one.
	p3 := NewProblem(100, seed, WithCommittee(2), WithSharedTapes(false))
	force(p3)
	for i := range p3.tapes {
		if p3.tapes[i].tape == p1.tapes[i].tape {
			t.Fatalf("scenario %d: opted-out Problem replays the shared tape", i)
		}
	}
	// Cross-density: the d300 problem replays the parent recording the
	// d100 mask was derived from (same scenario seeds, same cache key up
	// to node count).
	p4 := NewProblem(300, seed, WithCommittee(2))
	force(p4)
	for i := range p4.tapes {
		tape := p4.tapes[i].tape
		if tape == nil {
			t.Fatalf("scenario %d: d300 tape not built", i)
		}
		if tape.NumNodes() != p4.Nodes() {
			t.Fatalf("scenario %d: d300 tape has %d nodes, want %d", i, tape.NumNodes(), p4.Nodes())
		}
		key, ok := sharedCfgKeyOf(p4.cfg)
		if !ok {
			t.Fatal("default config not share-eligible")
		}
		parent, err := sharedTape(key, p4.cfg, p4.scenarios[i].seed, maskParentNodes)
		if err != nil {
			t.Fatalf("scenario %d: parent tape lookup: %v", i, err)
		}
		if parent != tape {
			t.Fatalf("scenario %d: d300 problem does not replay the cached parent recording", i)
		}
	}
}

// TestSharedTapeCacheFullNotMemoized: a transient cache-capacity refusal
// must degrade to local recording WITHOUT freezing the error into a
// capped slot — once capacity is back, later Problems over the same
// scenario share again.
func TestSharedTapeCacheFullNotMemoized(t *testing.T) {
	const seed = 31337001
	x := aedb.Params{MinDelay: 0.1, MaxDelay: 0.4, BorderThresholdDBm: -81, MarginDBm: 1, NeighborsThreshold: 12}.Vector()
	// Inflate the entry counter so the child slot is created but its
	// recursive parent lookup hits the cap (count == max-1 at the child
	// check, == max at the parent check).
	inflate := int64(maxSharedTapes-1) - sharedTapeCount.Load()
	sharedTapeCount.Add(inflate)
	p := NewProblem(100, seed, WithCommittee(1))
	p.Evaluate(x)
	local := p.tapes[0].tape
	if local == nil {
		t.Fatal("cap-full fallback did not record a local tape")
	}
	key, ok := sharedCfgKeyOf(p.cfg)
	if !ok {
		t.Fatal("default config not share-eligible")
	}
	childKey := tapeKey{cfg: key, seed: p.scenarios[0].seed, nodes: p.cfg.NumNodes}
	if _, held := sharedTapeCache.Load(childKey); held {
		t.Fatal("transient cache-full error memoized into a capped slot")
	}
	if got := sharedTapeCount.Load(); got != int64(maxSharedTapes-1) {
		t.Fatalf("slot release leaked the entry count: %d, want %d", got, maxSharedTapes-1)
	}
	sharedTapeCount.Add(-inflate)
	// Capacity restored: the same scenario shares again.
	p2 := NewProblem(100, seed, WithCommittee(1))
	p3 := NewProblem(100, seed, WithCommittee(1))
	p2.Evaluate(x)
	p3.Evaluate(x)
	if p2.tapes[0].tape == nil || p2.tapes[0].tape != p3.tapes[0].tape {
		t.Fatal("sharing did not resume after capacity returned")
	}
	if p2.tapes[0].tape == local {
		t.Fatal("shared slot served the private fallback recording")
	}
}

// TestCrossProblemSharedCachesBitIdentical is the cross-Problem
// determinism gate of the process-wide caches: N Problems built and
// evaluated CONCURRENTLY over the same scenario configuration — so
// first-use tape recordings, masked derivations and warm-up builds race
// on the shared caches — must produce metrics bit-identical to isolated
// Problems (sharing disabled) evaluated serially. Run under -race this
// doubles as the data-race detector for the shared tape cache.
func TestCrossProblemSharedCachesBitIdentical(t *testing.T) {
	const seed = 1357911
	xs := neighborhood(3, 17)
	densities := []int{100, 200, 300}
	want := map[int][]Metrics{}
	for _, d := range densities {
		iso := NewProblem(d, seed, WithCommittee(3),
			WithSharedTapes(false), WithSharedWarmups(false))
		ms := make([]Metrics, len(xs))
		for j, x := range xs {
			_, _, aux := iso.Evaluate(x)
			ms[j] = aux.(Metrics)
		}
		want[d] = ms
	}

	const rounds = 3 // N = 9 concurrent Problems, three per density
	var wg sync.WaitGroup
	errs := make(chan string, rounds*len(densities))
	for r := 0; r < rounds; r++ {
		for _, d := range densities {
			wg.Add(1)
			go func(d int) {
				defer wg.Done()
				p := NewProblem(d, seed, WithCommittee(3))
				for j, x := range xs {
					_, _, aux := p.Evaluate(x)
					if aux.(Metrics) != want[d][j] {
						errs <- fmt.Sprintf("density %d vector %d: shared-cache metrics diverged from isolated problem", d, j)
						return
					}
				}
				if err := p.WarmStartError(); err != nil {
					errs <- err.Error()
				}
			}(d)
		}
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
}
