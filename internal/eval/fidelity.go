// Multi-fidelity evaluation ladder.
//
// The ladder exploits two structural facts of the committee evaluation:
// the frozen scenarios NEST (scenario i is identical for every committee
// size >= i+1, see NewProblem), so a committee subset is a prefix rather
// than a reshuffle; and every simulation exposes a bounded-run primitive
// (sim.StepUntil), so the broadcast phase can be truncated at a fraction
// of its horizon. A batched candidate is therefore first SCREENED on a
// cheap rung — a committee prefix at a truncated horizon — and only
// promoted to the full-fidelity rung when its screening estimate is
// within epsilon of the Problem's reference front under constrained
// dominance. Candidates the gate triages out are returned with the
// screening estimate marked moo.BatchResult.Screened; the optimizers
// discard them at their evaluation boundary, so ONLY full-fidelity
// results ever reach an incumbent, a population slot or an archive, and
// the paper metrics stay exact.
//
// The ladder sits ABOVE the caching layers: screening and full-fidelity
// passes replay the same shared warm-up snapshots and beacon tapes (a
// truncated replay simply stops consuming the tape earlier), so enabling
// it changes which simulations run, never how any simulation runs. The
// serial Evaluate/Simulate path is always full fidelity — the ladder is a
// batch-triage policy, not an evaluation mode — which keeps the golden
// corpus, MLS initialisation and per-cell CellDE sweeps bit-identical
// with the ladder on or off.
//
// The reference front the gate compares against is the non-dominated set
// of every full-fidelity outcome this Problem has produced — a
// conservative over-approximation of any optimizer archive front built
// from those evaluations. It starts empty (the first batch promotes
// everything, bootstrapping the front from full evaluations) and is
// process-local: it is deliberately NOT part of checkpoints, so a
// resumed ladder-enabled study is a legitimate continuation but not a
// bit-identical replay of the uninterrupted run. Fingerprint folds the
// ladder configuration in whenever it is enabled, so a resume can never
// silently change rungs mid-study.
package eval

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"

	"aedbmls/internal/manet"
	"aedbmls/internal/moo"
)

// Fidelity describes the screening rung of the evaluation ladder.
// The zero value disables the ladder.
type Fidelity struct {
	// Committee is the number of committee scenarios the screening rung
	// evaluates — a prefix of the frozen committee, since scenarios nest.
	// <= 0 means the full committee.
	Committee int
	// Horizon is the fraction (0,1] of the broadcast window
	// (EndTime - WarmupTime) the screening simulations run before being
	// truncated; quiescence still ends them early. <= 0 or >= 1 means the
	// full horizon.
	Horizon float64
}

// Enabled reports whether f asks for any reduction at all. Whether the
// ladder actually engages also depends on the Problem (a screening
// committee >= the full committee at full horizon is a no-op); see
// Problem.ladderActive.
func (f Fidelity) Enabled() bool {
	return f.Committee > 0 || (f.Horizon > 0 && f.Horizon < 1)
}

// String renders the rung in the CLI's "C:H" form.
func (f Fidelity) String() string {
	if !f.Enabled() {
		return "off"
	}
	if f.Horizon > 0 && f.Horizon < 1 {
		return fmt.Sprintf("%d:%g", f.Committee, f.Horizon)
	}
	return strconv.Itoa(f.Committee)
}

// ParseFidelity parses the CLI form of a screening rung: "C" (committee
// prefix size at full horizon) or "C:H" (prefix size plus horizon
// fraction in (0,1]). "" and "0" disable the ladder.
func ParseFidelity(s string) (Fidelity, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "0" || s == "off" {
		return Fidelity{}, nil
	}
	cs, hs, hasH := strings.Cut(s, ":")
	c, err := strconv.Atoi(cs)
	if err != nil || c < 0 {
		return Fidelity{}, fmt.Errorf("eval: bad fidelity committee %q (want \"C\" or \"C:H\")", s)
	}
	f := Fidelity{Committee: c}
	if hasH {
		h, err := strconv.ParseFloat(hs, 64)
		if err != nil || h <= 0 || h > 1 {
			return Fidelity{}, fmt.Errorf("eval: bad fidelity horizon %q (want a fraction in (0,1])", s)
		}
		f.Horizon = h
	}
	return f, nil
}

// DefaultPromoteEps is the promotion slack when the ladder is enabled
// without an explicit WithPromoteEpsilon. The default is 0 — pure
// weak-dominance racing: a screening estimate is triaged exactly when a
// reference-front point is at least as good everywhere. This is the
// right default for committee-averaged objectives, whose coarse
// granularity (counts averaged over a handful of scenarios) produces
// exact ties that any positive margin would shield from triage,
// collapsing the ladder's throughput win; a positive slack remains the
// conservative opt-in when screening estimates are too noisy to race.
const DefaultPromoteEps = 0

// WithFidelity enables the multi-fidelity ladder on batched evaluations:
// EvaluateBatch screens every candidate on the given rung first and
// re-evaluates only gate survivors at full fidelity (see the package
// comment at the top of fidelity.go). Serial Evaluate/Simulate calls are
// always full fidelity. The zero Fidelity (or one requesting no
// reduction) leaves every path bit-identical to a ladder-free Problem.
func WithFidelity(f Fidelity) Option { return func(p *Problem) { p.fidelity = f } }

// WithPromoteEpsilon sets the promotion slack of the ladder gate
// (default DefaultPromoteEps): a screened candidate is triaged out only
// when some reference-front point is better by at least eps RELATIVE TO
// THAT POINT'S OWN MAGNITUDE in EVERY objective (with eps times the
// broadcast-time limit as the slack of the feasibility comparison).
// Larger eps promotes more candidates — safer, slower; eps = 0 triages
// everything the front weakly dominates.
func WithPromoteEpsilon(eps float64) Option {
	return func(p *Problem) {
		if eps < 0 {
			eps = 0
		}
		p.promoteEps = eps
		p.promoteEpsSet = true
	}
}

// Fidelity returns the configured screening rung (zero when the ladder
// is disabled).
func (p *Problem) Fidelity() Fidelity { return p.fidelity }

// PromoteEpsilon returns the promotion slack the ladder gate applies.
func (p *Problem) PromoteEpsilon() float64 {
	if p.promoteEpsSet {
		return p.promoteEps
	}
	return DefaultPromoteEps
}

// ladderActive reports whether EvaluateBatch should screen: the
// configured rung must reduce SOMETHING relative to this Problem's
// committee and horizon.
func (p *Problem) ladderActive() bool {
	if !p.fidelity.Enabled() {
		return false
	}
	return p.screenCommittee() < len(p.scenarios) || p.screenHorizon() < 1
}

// screenCommittee resolves the screening prefix size against the actual
// committee.
func (p *Problem) screenCommittee() int {
	c := p.fidelity.Committee
	if c <= 0 || c > len(p.scenarios) {
		return len(p.scenarios)
	}
	return c
}

// screenHorizon resolves the screening horizon fraction.
func (p *Problem) screenHorizon() float64 {
	h := p.fidelity.Horizon
	if h <= 0 || h >= 1 {
		return 1
	}
	return h
}

// screenBound converts the horizon fraction into an absolute simulation
// end time for the screening rung (0 = run to the configured EndTime).
func (p *Problem) screenBound() float64 {
	h := p.screenHorizon()
	if h >= 1 {
		return 0
	}
	return p.cfg.WarmupTime + h*(p.cfg.EndTime-p.cfg.WarmupTime)
}

// ladderState is the Problem's reference front: the non-dominated set
// (under Deb's constrained dominance) of every full-fidelity outcome the
// Problem has produced, against which screening estimates are gated.
type ladderState struct {
	mu    sync.Mutex
	front []frontEntry
}

// frontEntry is one reference-front point.
type frontEntry struct {
	f    []float64
	viol float64
}

// maxLadderFront caps the reference front so the gate stays O(front) per
// candidate with bounded memory. Optimizer archives in this repository
// hold <= ~100 points; past the cap new non-dominated points are simply
// not recorded (the gate stays conservative: a smaller front triages
// less, never more full evaluations than the archive warrants).
const maxLadderFront = 256

// entryDominates applies Deb's constrained-dominance rule to two
// reference-front points (mirrors moo.Dominates without allocating
// Solutions).
func entryDominates(a, b frontEntry) bool {
	af, bf := a.viol <= 0, b.viol <= 0
	switch {
	case af && !bf:
		return true
	case !af && bf:
		return false
	case !af && !bf:
		return a.viol < b.viol
	default:
		return moo.ParetoDominates(a.f, b.f)
	}
}

// observe folds one full-fidelity outcome into the reference front.
// Callers hold l.mu.
func (l *ladderState) observe(f []float64, viol float64) {
	e := frontEntry{f: append([]float64(nil), f...), viol: viol}
	for _, q := range l.front {
		if entryDominates(q, e) || (q.viol == e.viol && equalVec(q.f, e.f)) {
			return
		}
	}
	keep := l.front[:0]
	for _, q := range l.front {
		if !entryDominates(e, q) {
			keep = append(keep, q)
		}
	}
	l.front = keep
	if len(l.front) < maxLadderFront {
		l.front = append(l.front, e)
	}
}

func equalVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// triaged reports whether a screening estimate (f, viol) should be
// triaged out: some reference-front point epsilon-dominates it — beats
// it by at least the relative margin in every objective under Deb's
// rule. A candidate within epsilon of the front (in particular any
// candidate the front does not dominate at all) is promoted. Callers
// hold l.mu.
func (l *ladderState) triaged(f []float64, viol float64, eps float64) bool {
	for _, q := range l.front {
		if entryEpsDominates(q, f, viol, eps) {
			return true
		}
	}
	return false
}

// entryEpsDominates reports whether front point q dominates the
// candidate (f, viol) with slack: feasible q dominates a candidate whose
// violation exceeds eps times the broadcast-time limit; between two
// infeasible points the candidate must violate by that much more;
// between feasible points q must be better by eps RELATIVE to its own
// magnitude — q.f[k] + eps|q.f[k]| <= f[k] — in every objective k. The
// margin is point-relative rather than front-range-relative so one
// wide-spanning objective (the energy sum spans orders of magnitude
// across a front) cannot inflate every margin and disable the gate.
func entryEpsDominates(q frontEntry, f []float64, viol float64, eps float64) bool {
	epsViol := eps * BroadcastTimeLimit
	qf, cf := q.viol <= 0, viol <= 0
	switch {
	case qf && !cf:
		return viol > epsViol
	case !qf && cf:
		return false
	case !qf && !cf:
		return viol > q.viol+epsViol
	}
	for k := range f {
		if v := q.f[k]; v+eps*math.Abs(v) > f[k] {
			return false
		}
	}
	return true
}

// FrontSize returns the current size of the ladder's reference front
// (0 when the ladder is disabled or nothing full-fidelity has been
// observed yet).
func (p *Problem) FrontSize() int {
	p.ladder.mu.Lock()
	defer p.ladder.mu.Unlock()
	return len(p.ladder.front)
}

// observeFull records a completed full-fidelity outcome in the reference
// front, skipping penalty outcomes (a degraded candidate carries no
// information about the objective landscape).
func (p *Problem) observeFull(f []float64, viol float64) {
	if !p.ladderActive() {
		return
	}
	if len(f) > 0 && f[0] >= failedPenalty {
		return
	}
	p.ladder.mu.Lock()
	p.ladder.observe(f, viol)
	p.ladder.mu.Unlock()
}

// ladderBatch is EvaluateBatch's screening path: one cheap wave pass
// over the whole batch, the promotion gate, and a full-fidelity pass
// over the survivors.
//
// The gate triages a candidate when its screening estimate is
// epsilon-dominated by EITHER reference set:
//
//   - the full-fidelity front (every full outcome this Problem has
//     produced) — a cross-fidelity comparison, deliberately biased
//     toward promotion because truncated estimates under-count energy
//     and forwardings;
//   - the screening front (the non-dominated set of past screening
//     estimates at this same rung) — the like-for-like racing
//     comparison, which is what actually triages at depth: an estimate
//     epsilon-dominated by the best estimates ever seen has, with
//     margin, never turned into an archive entry.
//
// Gate decisions within one batch are all taken against the pre-batch
// fronts — deterministic and order-independent — and both fronts are
// grown afterwards (screen front from the promoted estimates, full
// front from the promoted full-fidelity results).
func (p *Problem) ladderBatch(factories []func(*manet.Node) manet.Protocol) []moo.BatchResult {
	n := len(factories)
	sm, sstop := p.runWaves(factories, p.screenCommittee(), p.screenBound())
	p.health.screenEvals.Add(int64(n))

	out := make([]moo.BatchResult, n)
	eps := p.PromoteEpsilon()
	cut := make([]bool, n)
	p.ladder.mu.Lock()
	for j := range factories {
		if sstop[j] {
			continue
		}
		r := batchResultOf(sm[j], false, false)
		cut[j] = p.ladder.triaged(r.F, r.Violation, eps)
	}
	p.ladder.mu.Unlock()

	promote := make([]int, 0, n)
	triaged := 0
	p.screenFront.mu.Lock()
	for j := range factories {
		if sstop[j] {
			out[j] = batchResultOf(sm[j], true, false)
			continue
		}
		r := batchResultOf(sm[j], false, false)
		if cut[j] || p.screenFront.triaged(r.F, r.Violation, eps) {
			r.Screened = true
			out[j] = r
			triaged++
			continue
		}
		promote = append(promote, j)
	}
	// Every valid estimate grows the screening front — after all of this
	// batch's gate decisions, so ordering within the batch cannot matter.
	for j := range factories {
		if sstop[j] {
			continue
		}
		r := batchResultOf(sm[j], false, false)
		if r.F[0] < failedPenalty {
			p.screenFront.observe(r.F, r.Violation)
		}
	}
	p.screenFront.mu.Unlock()
	p.health.screened.Add(int64(triaged))

	if len(promote) == 0 {
		return out
	}
	sub := make([]func(*manet.Node) manet.Protocol, len(promote))
	for k, j := range promote {
		sub[k] = factories[j]
	}
	fm, fstop := p.runWaves(sub, len(p.scenarios), 0)
	p.health.promoted.Add(int64(len(promote)))
	p.health.fullEvals.Add(int64(len(promote)))
	for k, j := range promote {
		out[j] = batchResultOf(fm[k], fstop[k], false)
		if !fstop[k] {
			p.observeFull(out[j].F, out[j].Violation)
		}
	}
	return out
}
