// Package eval defines the AEDB tuning problem of the paper: evaluating a
// five-parameter AEDB configuration means simulating one broadcast on each
// of ten fixed networks and averaging the observed metrics (Eq. 1).
//
// Objectives (all minimised, per the moo convention):
//
//	f0 = energy      — sum of data-transmission power levels in dBm
//	f1 = -coverage   — devices reached (negated: the paper maximises it)
//	f2 = forwardings — non-source data transmissions
//
// subject to the broadcast-time constraint bt < 2 s. The ten networks are
// frozen per density (derived deterministically from the problem seed), so
// every candidate configuration is judged on exactly the same scenarios,
// as in the paper.
package eval

import (
	"fmt"
	"sync/atomic"

	"aedbmls/internal/aedb"
	"aedbmls/internal/manet"
	"aedbmls/internal/moo"
	"aedbmls/internal/rng"
)

// BroadcastTimeLimit is the feasibility constraint of Eq. 1.
const BroadcastTimeLimit = 2.0

// DefaultCommittee is the number of fixed networks per evaluation.
const DefaultCommittee = 10

// Density labels used throughout the paper (devices/km^2 -> nodes in the
// 0.25 km^2 arena).
var DensityNodes = map[int]int{100: 25, 200: 50, 300: 75}

// Metrics is the raw (pre-negation) averaged outcome of one evaluation.
type Metrics struct {
	EnergyDBmSum  float64 // paper's energy objective
	Coverage      float64 // devices reached, source excluded
	Forwardings   float64
	BroadcastTime float64
	EnergyMJ      float64 // physical radiated energy (reporting only)
	Collisions    float64
}

// String renders the metrics in paper units.
func (m Metrics) String() string {
	return fmt.Sprintf("energy=%.2f coverage=%.2f forwardings=%.2f bt=%.3fs",
		m.EnergyDBmSum, m.Coverage, m.Forwardings, m.BroadcastTime)
}

// scenario is one frozen network of the committee.
type scenario struct {
	seed   uint64
	source int
}

// Problem is the AEDB tuning problem for one network density. It is safe
// for concurrent Evaluate calls; each call builds its simulations from the
// frozen seeds.
type Problem struct {
	cfg       manet.Config
	domain    aedb.Domain
	scenarios []scenario
	density   int
	evals     atomic.Int64
}

// Option customises a Problem.
type Option func(*Problem)

// WithDomain overrides the decision-space box (e.g. the wider sensitivity
// domain).
func WithDomain(d aedb.Domain) Option { return func(p *Problem) { p.domain = d } }

// WithCommittee overrides the number of frozen networks (default 10).
func WithCommittee(n int) Option {
	return func(p *Problem) { p.scenarios = p.scenarios[:min(n, len(p.scenarios))] }
}

// WithConfig overrides the manet scenario (node count is preserved from
// the density unless the config sets it).
func WithConfig(cfg manet.Config) Option { return func(p *Problem) { p.cfg = cfg } }

// NewProblem builds the tuning problem for a density in devices/km^2
// (100, 200 or 300 in the paper; other values scale by area). The seed
// freezes the network committee.
func NewProblem(density int, seed uint64, opts ...Option) *Problem {
	nodes, ok := DensityNodes[density]
	if !ok {
		nodes = manet.NodesForDensity(manet.DefaultScenario(1).Area, float64(density))
		if nodes < 2 {
			nodes = 2
		}
	}
	p := &Problem{
		cfg:     manet.DefaultScenario(nodes),
		domain:  aedb.DefaultDomain(),
		density: density,
	}
	// Freeze the committee: DefaultCommittee seeds and source nodes drawn
	// from a master stream that depends only on (seed, density).
	master := rng.New(seed ^ (uint64(density) * 0x9e3779b97f4a7c15))
	for i := 0; i < DefaultCommittee; i++ {
		p.scenarios = append(p.scenarios, scenario{
			seed:   master.Uint64(),
			source: master.Intn(nodes),
		})
	}
	for _, o := range opts {
		o(p)
	}
	if p.cfg.NumNodes <= 0 {
		p.cfg.NumNodes = nodes
	}
	// Re-bound sources in case an option changed the node count.
	for i := range p.scenarios {
		p.scenarios[i].source %= p.cfg.NumNodes
	}
	return p
}

// Name implements moo.Problem.
func (p *Problem) Name() string { return fmt.Sprintf("aedb-tuning-%ddev", p.density) }

// Density returns the density label (devices/km^2).
func (p *Problem) Density() int { return p.density }

// Nodes returns the number of devices per network.
func (p *Problem) Nodes() int { return p.cfg.NumNodes }

// Committee returns the number of frozen networks per evaluation.
func (p *Problem) Committee() int { return len(p.scenarios) }

// Dim implements moo.Problem.
func (p *Problem) Dim() int { return aedb.NumParams }

// NumObjectives implements moo.Problem.
func (p *Problem) NumObjectives() int { return 3 }

// Bounds implements moo.Problem.
func (p *Problem) Bounds() (lo, hi []float64) { return p.domain.Bounds() }

// Evaluations returns the number of Evaluate calls served so far.
func (p *Problem) Evaluations() int64 { return p.evals.Load() }

// ResetEvaluations zeroes the evaluation counter.
func (p *Problem) ResetEvaluations() { p.evals.Store(0) }

// Evaluate implements moo.Problem.
func (p *Problem) Evaluate(x []float64) (f []float64, violation float64, aux any) {
	m := p.Simulate(aedb.FromVector(x))
	f = []float64{m.EnergyDBmSum, -m.Coverage, m.Forwardings}
	violation = m.BroadcastTime - BroadcastTimeLimit
	if violation < 0 {
		violation = 0
	}
	return f, violation, m
}

// Simulate runs the committee for a configuration and returns the averaged
// raw metrics. It is the fitness function of Eq. 1 before negation.
func (p *Problem) Simulate(params aedb.Params) Metrics {
	p.evals.Add(1)
	var sum Metrics
	for _, sc := range p.scenarios {
		st := p.runOne(params, sc)
		sum.EnergyDBmSum += st.TxPowerSumDBm
		sum.Coverage += float64(st.Coverage())
		sum.Forwardings += float64(st.Forwards)
		sum.BroadcastTime += st.BroadcastTime()
		sum.EnergyMJ += st.TxEnergyMJ
	}
	n := float64(len(p.scenarios))
	sum.EnergyDBmSum /= n
	sum.Coverage /= n
	sum.Forwardings /= n
	sum.BroadcastTime /= n
	sum.EnergyMJ /= n
	return sum
}

// runOne simulates a single committee network.
func (p *Problem) runOne(params aedb.Params, sc scenario) *manet.BroadcastStats {
	net, err := manet.New(p.cfg, sc.seed, aedb.New(params))
	if err != nil {
		panic(fmt.Sprintf("eval: scenario construction failed: %v", err))
	}
	st := net.StartBroadcast(sc.source, p.cfg.WarmupTime)
	net.Run()
	return st
}

// SimulateProtocol runs the committee with an arbitrary protocol factory
// (used by examples comparing AEDB against flooding and distance-based
// baselines) and returns the averaged metrics.
func (p *Problem) SimulateProtocol(factory func(*manet.Node) manet.Protocol) Metrics {
	var sum Metrics
	for _, sc := range p.scenarios {
		net, err := manet.New(p.cfg, sc.seed, factory)
		if err != nil {
			panic(fmt.Sprintf("eval: scenario construction failed: %v", err))
		}
		st := net.StartBroadcast(sc.source, p.cfg.WarmupTime)
		net.Run()
		sum.EnergyDBmSum += st.TxPowerSumDBm
		sum.Coverage += float64(st.Coverage())
		sum.Forwardings += float64(st.Forwards)
		sum.BroadcastTime += st.BroadcastTime()
		sum.EnergyMJ += st.TxEnergyMJ
		sum.Collisions += float64(net.Collisions)
	}
	n := float64(len(p.scenarios))
	sum.EnergyDBmSum /= n
	sum.Coverage /= n
	sum.Forwardings /= n
	sum.BroadcastTime /= n
	sum.EnergyMJ /= n
	sum.Collisions /= n
	return sum
}

// MetricsOf extracts the raw metrics attached to a solution evaluated on a
// Problem. ok is false if the solution was produced by another problem.
func MetricsOf(s *moo.Solution) (Metrics, bool) {
	m, ok := s.Aux.(Metrics)
	return m, ok
}
