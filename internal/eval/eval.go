// Package eval defines the AEDB tuning problem of the paper: evaluating a
// five-parameter AEDB configuration means simulating one broadcast on each
// of ten fixed networks and averaging the observed metrics (Eq. 1).
//
// Objectives (all minimised, per the moo convention):
//
//	f0 = energy      — sum of data-transmission power levels in dBm
//	f1 = -coverage   — devices reached (negated: the paper maximises it)
//	f2 = forwardings — non-source data transmissions
//
// subject to the broadcast-time constraint bt < 2 s. The ten networks are
// frozen per density (derived deterministically from the problem seed), so
// every candidate configuration is judged on exactly the same scenarios,
// as in the paper.
//
// # Warm-start evaluation
//
// The warm-up phase of each committee scenario (mobility + beaconing from
// t=0 to WarmupTime) depends only on the frozen scenario seed, never on
// the parameter vector under evaluation. The problem therefore builds one
// manet.Snapshot per scenario on first use and every Evaluate clones from
// it, simulating only the broadcast phase. The snapshot path is
// bit-identical to a from-scratch simulation (see manet/snapshot.go for
// the determinism contract); WithWarmStart(false) forces the from-scratch
// path, which the equivalence tests compare against.
package eval

import (
	"fmt"
	"sync"
	"sync/atomic"

	"aedbmls/internal/aedb"
	"aedbmls/internal/manet"
	"aedbmls/internal/moo"
	"aedbmls/internal/rng"
)

// BroadcastTimeLimit is the feasibility constraint of Eq. 1.
const BroadcastTimeLimit = 2.0

// DefaultCommittee is the number of fixed networks per evaluation.
const DefaultCommittee = 10

// Density labels used throughout the paper (devices/km^2 -> nodes in the
// 0.25 km^2 arena).
var DensityNodes = map[int]int{100: 25, 200: 50, 300: 75}

// Metrics is the raw (pre-negation) averaged outcome of one evaluation.
type Metrics struct {
	EnergyDBmSum  float64 // paper's energy objective
	Coverage      float64 // devices reached, source excluded
	Forwardings   float64
	BroadcastTime float64
	EnergyMJ      float64 // physical radiated energy (reporting only)
	Collisions    float64
}

// String renders the metrics in paper units.
func (m Metrics) String() string {
	return fmt.Sprintf("energy=%.2f coverage=%.2f forwardings=%.2f bt=%.3fs",
		m.EnergyDBmSum, m.Coverage, m.Forwardings, m.BroadcastTime)
}

// scenario is one frozen network of the committee.
type scenario struct {
	seed   uint64
	source int
}

// warmSlot lazily holds one scenario's warm-start snapshot, or the error
// that prevented building it. done flips (atomically, after snap/err are
// written) when the build has completed, so readers outside the once can
// inspect err without racing an in-flight build.
type warmSlot struct {
	once sync.Once
	snap *manet.Snapshot
	err  error
	done atomic.Bool
}

// Problem is the AEDB tuning problem for one network density. It is safe
// for concurrent Evaluate calls; each call builds its simulations from the
// frozen seeds (via the shared warm-start snapshots, or from scratch).
type Problem struct {
	cfg       manet.Config
	domain    aedb.Domain
	committee int
	scenarios []scenario
	density   int
	warmStart bool
	snaps     []warmSlot
	evals     atomic.Int64
}

// Option customises a Problem.
type Option func(*Problem)

// WithDomain overrides the decision-space box (e.g. the wider sensitivity
// domain).
func WithDomain(d aedb.Domain) Option { return func(p *Problem) { p.domain = d } }

// WithCommittee overrides the number of frozen networks (default 10).
// Committees larger than the default draw additional frozen scenarios
// from the same master stream, so a larger committee extends — rather
// than reshuffles — a smaller one with the same problem seed.
func WithCommittee(n int) Option {
	return func(p *Problem) {
		if n < 1 {
			n = 1
		}
		p.committee = n
	}
}

// WithConfig overrides the manet scenario (node count is preserved from
// the density unless the config sets it).
func WithConfig(cfg manet.Config) Option { return func(p *Problem) { p.cfg = cfg } }

// WithWarmStart toggles the warm-start snapshot path (default on). With
// it off, every evaluation re-simulates each scenario's warm-up phase
// from t=0; the two paths produce bit-identical metrics.
func WithWarmStart(enabled bool) Option { return func(p *Problem) { p.warmStart = enabled } }

// NewProblem builds the tuning problem for a density in devices/km^2
// (100, 200 or 300 in the paper; other values scale by area). The seed
// freezes the network committee.
func NewProblem(density int, seed uint64, opts ...Option) *Problem {
	nodes, ok := DensityNodes[density]
	if !ok {
		nodes = manet.NodesForDensity(manet.DefaultScenario(1).Area, float64(density))
		if nodes < 2 {
			nodes = 2
		}
	}
	p := &Problem{
		cfg:       manet.DefaultScenario(nodes),
		domain:    aedb.DefaultDomain(),
		committee: DefaultCommittee,
		density:   density,
		warmStart: true,
	}
	for _, o := range opts {
		o(p)
	}
	if p.cfg.NumNodes <= 0 {
		p.cfg.NumNodes = nodes
	}
	// Freeze the committee: seeds and source nodes drawn from a master
	// stream that depends only on (seed, density). Scenario i is the same
	// for every committee size >= i+1.
	master := rng.New(seed ^ (uint64(density) * 0x9e3779b97f4a7c15))
	for i := 0; i < p.committee; i++ {
		p.scenarios = append(p.scenarios, scenario{
			seed:   master.Uint64(),
			source: master.Intn(nodes) % p.cfg.NumNodes,
		})
	}
	p.snaps = make([]warmSlot, len(p.scenarios))
	return p
}

// Name implements moo.Problem.
func (p *Problem) Name() string { return fmt.Sprintf("aedb-tuning-%ddev", p.density) }

// Density returns the density label (devices/km^2).
func (p *Problem) Density() int { return p.density }

// Nodes returns the number of devices per network.
func (p *Problem) Nodes() int { return p.cfg.NumNodes }

// Committee returns the number of frozen networks per evaluation.
func (p *Problem) Committee() int { return len(p.scenarios) }

// Dim implements moo.Problem.
func (p *Problem) Dim() int { return aedb.NumParams }

// NumObjectives implements moo.Problem.
func (p *Problem) NumObjectives() int { return 3 }

// Bounds implements moo.Problem.
func (p *Problem) Bounds() (lo, hi []float64) { return p.domain.Bounds() }

// Evaluations returns the number of Evaluate calls served so far.
func (p *Problem) Evaluations() int64 { return p.evals.Load() }

// ResetEvaluations zeroes the evaluation counter.
func (p *Problem) ResetEvaluations() { p.evals.Store(0) }

// Evaluate implements moo.Problem.
func (p *Problem) Evaluate(x []float64) (f []float64, violation float64, aux any) {
	m := p.Simulate(aedb.FromVector(x))
	f = []float64{m.EnergyDBmSum, -m.Coverage, m.Forwardings}
	violation = m.BroadcastTime - BroadcastTimeLimit
	if violation < 0 {
		violation = 0
	}
	return f, violation, m
}

// Simulate runs the committee for a configuration and returns the averaged
// raw metrics. It is the fitness function of Eq. 1 before negation.
func (p *Problem) Simulate(params aedb.Params) Metrics {
	p.evals.Add(1)
	factory := aedb.New(params)
	var sum Metrics
	for i := range p.scenarios {
		st, _ := p.runScenario(factory, i)
		sum.EnergyDBmSum += st.TxPowerSumDBm
		sum.Coverage += float64(st.Coverage())
		sum.Forwardings += float64(st.Forwards)
		sum.BroadcastTime += st.BroadcastTime()
		sum.EnergyMJ += st.TxEnergyMJ
	}
	n := float64(len(p.scenarios))
	sum.EnergyDBmSum /= n
	sum.Coverage /= n
	sum.Forwardings /= n
	sum.BroadcastTime /= n
	sum.EnergyMJ /= n
	return sum
}

// snapshot lazily builds (once, thread-safely) the warm-start snapshot of
// committee scenario i. It returns nil when snapshotting is unavailable
// for the configuration, in which case callers fall back to from-scratch
// simulation; the cause is retained and reported by WarmStartError.
func (p *Problem) snapshot(i int) *manet.Snapshot {
	slot := &p.snaps[i]
	slot.once.Do(func() {
		slot.snap, slot.err = manet.BuildSnapshot(p.cfg, p.scenarios[i].seed, p.cfg.WarmupTime)
		slot.done.Store(true)
	})
	return slot.snap
}

// WarmStartError reports why warm-start evaluation is degraded, if it is:
// non-nil means at least one scenario snapshot failed to build and every
// evaluation of that scenario silently re-simulates its warm-up from
// scratch (correct, but ~4x slower). Nil if warm start is disabled, no
// snapshot has been attempted yet, or all attempted builds succeeded.
func (p *Problem) WarmStartError() error {
	for i := range p.snaps {
		if !p.snaps[i].done.Load() {
			continue
		}
		if err := p.snaps[i].err; err != nil {
			return fmt.Errorf("eval: scenario %d warm-start disabled: %w", i, err)
		}
	}
	return nil
}

// runScenario simulates a single committee network under the given
// protocol factory, via the warm-start snapshot when available.
func (p *Problem) runScenario(factory func(*manet.Node) manet.Protocol, i int) (*manet.BroadcastStats, *manet.Network) {
	sc := p.scenarios[i]
	if p.warmStart {
		if snap := p.snapshot(i); snap != nil {
			net, st := snap.Instantiate(factory, sc.source, p.cfg.WarmupTime)
			net.Run()
			return st, net
		}
	}
	net, err := manet.New(p.cfg, sc.seed, factory)
	if err != nil {
		panic(fmt.Sprintf("eval: scenario construction failed: %v", err))
	}
	st := net.StartBroadcast(sc.source, p.cfg.WarmupTime)
	net.Run()
	return st, net
}

// SimulateProtocol runs the committee with an arbitrary protocol factory
// (used by examples comparing AEDB against flooding and distance-based
// baselines) and returns the averaged metrics.
func (p *Problem) SimulateProtocol(factory func(*manet.Node) manet.Protocol) Metrics {
	var sum Metrics
	for i := range p.scenarios {
		st, net := p.runScenario(factory, i)
		sum.EnergyDBmSum += st.TxPowerSumDBm
		sum.Coverage += float64(st.Coverage())
		sum.Forwardings += float64(st.Forwards)
		sum.BroadcastTime += st.BroadcastTime()
		sum.EnergyMJ += st.TxEnergyMJ
		sum.Collisions += float64(net.Collisions)
	}
	n := float64(len(p.scenarios))
	sum.EnergyDBmSum /= n
	sum.Coverage /= n
	sum.Forwardings /= n
	sum.BroadcastTime /= n
	sum.EnergyMJ /= n
	sum.Collisions /= n
	return sum
}

// MetricsOf extracts the raw metrics attached to a solution evaluated on a
// Problem. ok is false if the solution was produced by another problem.
func MetricsOf(s *moo.Solution) (Metrics, bool) {
	m, ok := s.Aux.(Metrics)
	return m, ok
}
