// Package eval defines the AEDB tuning problem of the paper: evaluating a
// five-parameter AEDB configuration means simulating one broadcast on each
// of ten fixed networks and averaging the observed metrics (Eq. 1).
//
// Objectives (all minimised, per the moo convention):
//
//	f0 = energy      — sum of data-transmission power levels in dBm
//	f1 = -coverage   — devices reached (negated: the paper maximises it)
//	f2 = forwardings — non-source data transmissions
//
// subject to the broadcast-time constraint bt < 2 s. The ten networks are
// frozen per density (derived deterministically from the problem seed), so
// every candidate configuration is judged on exactly the same scenarios,
// as in the paper.
//
// # Warm-start evaluation
//
// The warm-up phase of each committee scenario (mobility + beaconing from
// t=0 to WarmupTime) depends only on the frozen scenario seed, never on
// the parameter vector under evaluation. The problem therefore builds one
// manet.Snapshot per scenario on first use and every Evaluate clones from
// it, simulating only the broadcast phase. The snapshot path is
// bit-identical to a from-scratch simulation (see manet/snapshot.go for
// the determinism contract); WithWarmStart(false) forces the from-scratch
// path, which the equivalence tests compare against.
//
// # The default fast path, and the reference path
//
// Every evaluation path — serial Evaluate, committee-parallel Evaluate,
// EvaluateBatch — defaults to the throughput engine: beacon-tape replay
// (the scenario's protocol-independent beacon evolution is recorded once
// and served lazily to every simulation, see manet/tape.go) plus
// broadcast-quiescence early stop (each simulation ends the moment the
// last live forwarding decision is resolved, see manet.RunToQuiescence),
// with instantiation buffers recycled through per-goroutine arenas
// (manet.Arena). Objectives, violations and Metrics are bit-identical to
// the reference engine; per-node frame accounting inside the simulations
// is not (the dead tail of each simulation is skipped and beacon traffic
// is replayed, not re-simulated).
//
// WithReferencePath(true) opts a Problem out: every simulation then runs
// the full-tail reference engine with complete per-node accounting. The
// golden-metrics corpus and the equivalence tables hold the two engines
// bit-identical at the Metrics level.
//
// # Cross-density warm-up sharing
//
// The committee scenarios are frozen from the problem seed alone — not
// the density — so the same scenario seed instantiates the 25-, 50- and
// 75-node committees of densities 100/200/300 as nested prefixes of one
// node population. The warm-up snapshot of each scenario is therefore
// built once at the largest paper committee size and masked down
// (manet.Snapshot.Mask) for smaller densities, through a process-wide
// cache shared by every Problem with a shareable (default-shaped)
// configuration. WithSharedWarmups(false) opts out; masked and directly
// built snapshots are bit-identical on every metric.
//
// # Process-wide beacon-tape sharing
//
// Beacon tapes get the same treatment: for share-eligible configurations
// the tape of each committee scenario is recorded once per process at the
// largest paper committee size (from the shared warm-up parent) and keyed
// by (config fingerprint, scenario seed, node count), so concurrent and
// sequential Problems over the same scenario generator replay one
// recording, and each smaller density's tape is derived from the parent
// as a masked prefix (manet.BeaconTape.Mask) instead of re-recorded.
// WithSharedTapes(false) opts out; shared/masked and per-Problem-recorded
// tapes are bit-identical on every metric.
//
// # Batched and committee-parallel evaluation
//
//   - EvaluateBatch (the moo.BatchProblem implementation) evaluates a
//     whole set of parameter vectors — an MLS neighborhood, a MOEA
//     offspring generation — scenario-major: one snapshot-clone wave per
//     committee scenario streams every candidate through that scenario,
//     reusing one arena per wave, and waves fan out across up to
//     WithBatchWorkers goroutines.
//   - WithScenarioWorkers(n) fans the committee of every single
//     Evaluate/Simulate/SimulateProtocol call across goroutines,
//     reducing single-evaluation latency on idle cores.
//
// Every path accumulates the committee average through the same ordered
// reduction (reduceCommittee), so results are bit-identical across all of
// them for any worker count.
package eval

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"aedbmls/internal/aedb"
	"aedbmls/internal/faultinject"
	"aedbmls/internal/geom"
	"aedbmls/internal/manet"
	"aedbmls/internal/moo"
	"aedbmls/internal/radio"
	"aedbmls/internal/rng"
)

// BroadcastTimeLimit is the feasibility constraint of Eq. 1.
const BroadcastTimeLimit = 2.0

// DefaultCommittee is the number of fixed networks per evaluation.
const DefaultCommittee = 10

// Density labels used throughout the paper (devices/km^2 -> nodes in the
// 0.25 km^2 arena).
var DensityNodes = map[int]int{100: 25, 200: 50, 300: 75}

// Metrics is the raw (pre-negation) averaged outcome of one evaluation.
type Metrics struct {
	EnergyDBmSum  float64 // paper's energy objective
	Coverage      float64 // devices reached, source excluded
	Forwardings   float64
	BroadcastTime float64
	EnergyMJ      float64 // physical radiated energy (reporting only)
	Collisions    float64
}

// String renders the metrics in paper units.
func (m Metrics) String() string {
	return fmt.Sprintf("energy=%.2f coverage=%.2f forwardings=%.2f bt=%.3fs",
		m.EnergyDBmSum, m.Coverage, m.Forwardings, m.BroadcastTime)
}

// scenario is one frozen network of the committee.
type scenario struct {
	seed   uint64
	source int
}

// warmSlot lazily holds one scenario's warm-start snapshot, or the error
// that prevented building it. done flips (atomically, after snap/err are
// written) when the build has completed, so readers outside the once can
// inspect err without racing an in-flight build.
type warmSlot struct {
	once sync.Once
	snap *manet.Snapshot
	err  error
	done atomic.Bool
}

// tapeSlot lazily holds one scenario's beacon tape for the batch fast
// path (nil when recording is unavailable for the configuration).
type tapeSlot struct {
	once sync.Once
	tape *manet.BeaconTape
}

// Problem is the AEDB tuning problem for one network density. It is safe
// for concurrent Evaluate and EvaluateBatch calls; each call builds its
// simulations from the frozen seeds (via the shared warm-start snapshots,
// or from scratch).
type Problem struct {
	cfg             manet.Config
	domain          aedb.Domain
	committee       int
	scenarios       []scenario
	density         int
	warmStart       bool
	scenarioWorkers int
	batchWorkers    int
	referencePath   bool
	sharedWarmups   bool
	sharedTapes     bool
	bufferReuse     bool
	exactPhysics    bool
	maxRetries      int
	retryBackoff    time.Duration
	evalTimeout     time.Duration
	stop            <-chan struct{}
	fidelity        Fidelity
	promoteEps      float64
	promoteEpsSet   bool
	ladder          ladderState
	screenFront     ladderState
	snaps           []warmSlot
	tapes           []tapeSlot
	arenas          sync.Pool
	evals           atomic.Int64
	health          health
}

// health is the Problem's supervision counter block (see Health).
type health struct {
	panics          atomic.Int64
	errors          atomic.Int64
	retries         atomic.Int64
	timeouts        atomic.Int64
	failures        atomic.Int64
	serialFallbacks atomic.Int64
	screenEvals     atomic.Int64
	screened        atomic.Int64
	promoted        atomic.Int64
	fullEvals       atomic.Int64
	lastErr         atomic.Value // error
}

// Health is a snapshot of a Problem's evaluation-supervision counters.
// A long-running study surfaces it so operators can distinguish "clean
// run" from "run that survived N worker faults". The JSON field names
// are part of the tuning service's /healthz wire format.
type Health struct {
	// Panics counts simulation panics recovered into errors.
	Panics int64 `json:"panics"`
	// Errors counts non-panic evaluation errors (scenario construction
	// failures, injected faults).
	Errors int64 `json:"errors"`
	// Retries counts supervised re-attempts after a failure.
	Retries int64 `json:"retries"`
	// Timeouts counts attempts abandoned at the per-evaluation timeout.
	Timeouts int64 `json:"timeouts"`
	// Failures counts candidate evaluations degraded to FailedMetrics
	// after every retry (and the serial fallback) was exhausted.
	Failures int64 `json:"failures"`
	// SerialFallbacks counts scenario cells that failed inside a parallel
	// wave and were re-attempted serially.
	SerialFallbacks int64 `json:"serial_fallbacks"`
	// ScreenEvals counts candidates evaluated on the ladder's cheap
	// screening rung (committee prefix, truncated horizon).
	ScreenEvals int64 `json:"screen_evals"`
	// Screened counts candidates the promotion gate triaged out: their
	// screening estimate was epsilon-dominated by the reference front, so
	// they were never evaluated at full fidelity.
	Screened int64 `json:"screened"`
	// Promoted counts screened candidates that passed the gate and were
	// re-evaluated at full fidelity.
	Promoted int64 `json:"promoted"`
	// FullEvals counts full-fidelity committee evaluations across every
	// path (serial, ladder-off batches, ladder promotions). The ladder's
	// throughput win is this counter dropping relative to a ladder-off
	// run of the same budget.
	FullEvals int64 `json:"full_evals"`
}

// Health returns the current supervision counters.
func (p *Problem) Health() Health {
	return Health{
		Panics:          p.health.panics.Load(),
		Errors:          p.health.errors.Load(),
		Retries:         p.health.retries.Load(),
		Timeouts:        p.health.timeouts.Load(),
		Failures:        p.health.failures.Load(),
		SerialFallbacks: p.health.serialFallbacks.Load(),
		ScreenEvals:     p.health.screenEvals.Load(),
		Screened:        p.health.screened.Load(),
		Promoted:        p.health.promoted.Load(),
		FullEvals:       p.health.fullEvals.Load(),
	}
}

// Err returns the most recent evaluation failure that degraded a
// candidate, or nil if every evaluation so far succeeded.
func (p *Problem) Err() error {
	if e, ok := p.health.lastErr.Load().(error); ok {
		return e
	}
	return nil
}

// ErrStopped marks an evaluation abandoned because the Problem's stop
// channel (WithStop) closed. Results of the interrupted call are
// unspecified and must be discarded by the caller; optimizers do so by
// checking their own stop signal before applying evaluation results.
var ErrStopped = errors.New("eval: stopped")

// failedPenalty is the objective value of a degraded candidate. It is a
// large FINITE number, not Inf/NaN: the penalty must push the candidate
// behind every real one under constrained dominance (the huge
// BroadcastTime makes it maximally infeasible) without poisoning
// crowding-distance normalisation, which divides by objective ranges and
// would turn an Inf range into NaN sort keys.
const failedPenalty = 1e18

// FailedMetrics is the deterministic penalty outcome a candidate receives
// when its committee evaluation failed permanently (after retries and the
// serial fallback): worst-possible on every objective and hugely
// infeasible, so selection discards it against any genuine evaluation.
func FailedMetrics() Metrics {
	return Metrics{
		EnergyDBmSum:  failedPenalty,
		Coverage:      -failedPenalty, // objective is -Coverage: minimised, so this is worst
		Forwardings:   failedPenalty,
		BroadcastTime: failedPenalty,
	}
}

// Option customises a Problem.
type Option func(*Problem)

// WithDomain overrides the decision-space box (e.g. the wider sensitivity
// domain).
func WithDomain(d aedb.Domain) Option { return func(p *Problem) { p.domain = d } }

// WithCommittee overrides the number of frozen networks (default 10).
// Committees larger than the default draw additional frozen scenarios
// from the same master stream, so a larger committee extends — rather
// than reshuffles — a smaller one with the same problem seed.
func WithCommittee(n int) Option {
	return func(p *Problem) {
		if n < 1 {
			n = 1
		}
		p.committee = n
	}
}

// WithConfig overrides the manet scenario (node count is preserved from
// the density unless the config sets it).
func WithConfig(cfg manet.Config) Option { return func(p *Problem) { p.cfg = cfg } }

// WithWarmStart toggles the warm-start snapshot path (default on). With
// it off, every evaluation re-simulates each scenario's warm-up phase
// from t=0; the two paths produce bit-identical metrics.
func WithWarmStart(enabled bool) Option { return func(p *Problem) { p.warmStart = enabled } }

// WithScenarioWorkers fans the committee of every Evaluate, Simulate and
// SimulateProtocol call across up to n goroutines (committee-parallel
// evaluation). Per-scenario results are reduced in committee order, so
// metrics are bit-identical to the serial path for any n. n <= 1 (the
// default) keeps each evaluation on its calling goroutine, which is right
// whenever the optimiser above already saturates the cores.
func WithScenarioWorkers(n int) Option { return func(p *Problem) { p.scenarioWorkers = n } }

// WithBatchWorkers caps the goroutines an EvaluateBatch call fans its
// scenario waves across. 0 (the default) uses GOMAXPROCS; 1 keeps the
// batch on the calling goroutine.
func WithBatchWorkers(n int) Option { return func(p *Problem) { p.batchWorkers = n } }

// WithReferencePath selects the reference evaluation engine (default
// off): full-tail simulations with complete per-node frame accounting,
// no beacon-tape replay and directly built (never masked) warm-up
// snapshots, on every path — serial Evaluate as well as EvaluateBatch. The default engine (quiescence early stop + beacon-tape
// replay + arena buffer reuse) is bit-identical at the Metrics, objective
// and violation level; the reference engine is the comparison arm of the
// golden-metrics corpus and the equivalence tests, and the right choice
// when per-node Tx/Rx/Lost accounting of the full timeline matters.
//
// It replaces the batch-only WithBatchFastPath of the previous engine
// generation: the fast path is no longer a batch privilege, and the
// opt-out governs both entry points symmetrically.
func WithReferencePath(enabled bool) Option { return func(p *Problem) { p.referencePath = enabled } }

// WithSharedWarmups toggles the process-wide warm-up snapshot cache
// (default on): committee scenarios of share-eligible configurations
// (the default Table II scenario shape, fast beacons, no trace hooks)
// build their warm-up once at the largest paper committee size and mask
// it down per density, so densities 100/200/300 of one seed share one
// warm-up simulation per scenario. Disabled, every Problem builds its
// own snapshots at its own node count. Both paths are bit-identical.
//
// The opt-out governs where THIS Problem's snapshots come from, not the
// other process-wide caches: the shared tape cache records its parent
// tapes from the shared warm-up cache regardless, so a caller bounding
// process-wide memory should disable WithSharedTapes as well.
func WithSharedWarmups(enabled bool) Option { return func(p *Problem) { p.sharedWarmups = enabled } }

// WithSharedTapes toggles the process-wide beacon-tape cache (default
// on): committee scenarios of share-eligible configurations record their
// beacon tape once at the largest paper committee size — through the same
// shared warm-up parent the snapshot cache uses — and every Problem with
// the same (config fingerprint, scenario seed, node count) replays that
// one recording, with smaller densities deriving their tape from the
// parent as a masked prefix (manet.BeaconTape.Mask) instead of
// re-recording. Disabled, every Problem records its own tapes from its
// own snapshots. Masked/shared and locally recorded tapes are
// bit-identical on every metric (FuzzTapeMask, the golden corpus and the
// opt-out matrix hold them to that).
func WithSharedTapes(enabled bool) Option { return func(p *Problem) { p.sharedTapes = enabled } }

// WithExactPhysics selects the reference per-call path-loss physics
// (default off): every reception power is then computed as
// radio.RxPower — a square root plus an interface Model.Loss call per
// candidate receiver — instead of the fused d2-space kernel
// (radio.NewKernel) the default engine runs. The two physics arms agree
// within a ULP-scaled bound on every reception power
// (radio.FuzzKernelVsReference) and produce identical discrete metrics
// (coverage, forwardings, collisions, broadcast time) on the golden
// corpus; the continuous energy sums differ in the last bits, which is
// why the golden corpus records both arms and why the flag is folded
// into the shared-cache config fingerprint — tapes and warm-up snapshots
// recorded under one physics arm are never served to the other.
//
// Set it for paper-exact reproduction runs that must extend a corpus of
// previously recorded reference-physics results bit-for-bit; leave it
// off for throughput.
func WithExactPhysics(enabled bool) Option { return func(p *Problem) { p.exactPhysics = enabled } }

// WithBufferReuse toggles the instantiation arenas of the default engine
// (default on): node/RNG blocks, the O(N^2) neighbor index, the event
// heap, the spatial grid and the neighbor tables are recycled across the
// simulations of a wave (and across serial Evaluate calls) instead of
// being reallocated per candidate. Bit-identical; disable to A/B the
// allocation behaviour. The reference path never uses arenas.
func WithBufferReuse(enabled bool) Option { return func(p *Problem) { p.bufferReuse = enabled } }

// WithMaxRetries sets how many times a failed scenario attempt (panic,
// construction error, timeout) is retried with backoff before the
// candidate degrades to FailedMetrics (default 1; 0 disables retries).
// Deterministic simulations fail deterministically, so retries exist for
// environmental failures — resource exhaustion, injected faults — not
// logic errors.
func WithMaxRetries(n int) Option {
	return func(p *Problem) {
		if n < 0 {
			n = 0
		}
		p.maxRetries = n
	}
}

// WithEvalTimeout bounds each supervised scenario attempt (default 0: no
// timeout). A timed-out attempt counts as a failure (retried, then
// degraded); its goroutine is abandoned and its arena is never returned
// to the pool, so a wedged simulation cannot corrupt later evaluations.
func WithEvalTimeout(d time.Duration) Option { return func(p *Problem) { p.evalTimeout = d } }

// WithStop threads a cancellation signal into the Problem: once the
// channel closes, committee and batch evaluations abandon their remaining
// scenarios and return immediately. Results of interrupted calls are
// garbage by contract — the optimizer checks the same signal at its own
// boundaries and discards them (see ErrStopped).
func WithStop(stop <-chan struct{}) Option { return func(p *Problem) { p.stop = stop } }

// NewProblem builds the tuning problem for a density in devices/km^2
// (100, 200 or 300 in the paper; other values scale by area). The seed
// freezes the network committee.
func NewProblem(density int, seed uint64, opts ...Option) *Problem {
	nodes, ok := DensityNodes[density]
	if !ok {
		nodes = manet.NodesForDensity(manet.DefaultScenario(1).Area, float64(density))
		if nodes < 2 {
			nodes = 2
		}
	}
	p := &Problem{
		cfg:           manet.DefaultScenario(nodes),
		domain:        aedb.DefaultDomain(),
		committee:     DefaultCommittee,
		density:       density,
		warmStart:     true,
		sharedWarmups: true,
		sharedTapes:   true,
		bufferReuse:   true,
		maxRetries:    1,
		retryBackoff:  5 * time.Millisecond,
	}
	for _, o := range opts {
		o(p)
	}
	if p.cfg.NumNodes <= 0 {
		p.cfg.NumNodes = nodes
	}
	// WithExactPhysics and a WithConfig carrying ExactPhysics both opt
	// into the reference physics arm; neither can silently opt the other
	// out.
	p.cfg.ExactPhysics = p.cfg.ExactPhysics || p.exactPhysics
	p.exactPhysics = p.cfg.ExactPhysics
	// Freeze the committee: scenario seeds and source draws come from a
	// master stream that depends only on the problem seed — NOT the
	// density — so scenario i of every density is the same node
	// population at a different prefix size (the cross-density warm-up
	// sharing contract; see Snapshot.Mask). Scenario i is also the same
	// for every committee size >= i+1, so larger committees extend
	// smaller ones.
	master := rng.New(seed)
	for i := 0; i < p.committee; i++ {
		sSeed := master.Uint64()
		srcDraw := master.Uint64()
		p.scenarios = append(p.scenarios, scenario{
			seed:   sSeed,
			source: int(srcDraw % uint64(p.cfg.NumNodes)),
		})
	}
	p.snaps = make([]warmSlot, len(p.scenarios))
	p.tapes = make([]tapeSlot, len(p.scenarios))
	p.arenas.New = func() any { return manet.NewArena() }
	return p
}

// Name implements moo.Problem.
func (p *Problem) Name() string { return fmt.Sprintf("aedb-tuning-%ddev", p.density) }

// Density returns the density label (devices/km^2).
func (p *Problem) Density() int { return p.density }

// Nodes returns the number of devices per network.
func (p *Problem) Nodes() int { return p.cfg.NumNodes }

// Committee returns the number of frozen networks per evaluation.
func (p *Problem) Committee() int { return len(p.scenarios) }

// ExactPhysics reports whether the problem evaluates the reference
// per-call path-loss physics (WithExactPhysics) instead of the fused
// d2-space kernel.
func (p *Problem) ExactPhysics() bool { return p.exactPhysics }

// Dim implements moo.Problem.
func (p *Problem) Dim() int { return aedb.NumParams }

// NumObjectives implements moo.Problem.
func (p *Problem) NumObjectives() int { return 3 }

// Bounds implements moo.Problem.
func (p *Problem) Bounds() (lo, hi []float64) { return p.domain.Bounds() }

// Evaluations returns the number of Evaluate calls served so far.
func (p *Problem) Evaluations() int64 { return p.evals.Load() }

// ResetEvaluations zeroes the evaluation counter.
func (p *Problem) ResetEvaluations() { p.evals.Store(0) }

// Evaluate implements moo.Problem. It is always full fidelity — the
// ladder (WithFidelity) only screens batched evaluations — and its
// outcome feeds the ladder's reference front when the ladder is enabled.
func (p *Problem) Evaluate(x []float64) (f []float64, violation float64, aux any) {
	m := p.Simulate(aedb.FromVector(x))
	f = []float64{m.EnergyDBmSum, -m.Coverage, m.Forwardings}
	violation = m.BroadcastTime - BroadcastTimeLimit
	if violation < 0 {
		violation = 0
	}
	p.observeFull(f, violation)
	return f, violation, m
}

// Simulate runs the committee for a configuration and returns the averaged
// raw metrics. It is the fitness function of Eq. 1 before negation.
func (p *Problem) Simulate(params aedb.Params) Metrics {
	p.evals.Add(1)
	return p.runCommittee(aedb.New(params))
}

// scenarioTerm converts one scenario outcome into its term of the
// committee average.
func scenarioTerm(st *manet.BroadcastStats, net *manet.Network) Metrics {
	return Metrics{
		EnergyDBmSum:  st.TxPowerSumDBm,
		Coverage:      float64(st.Coverage()),
		Forwardings:   float64(st.Forwards),
		BroadcastTime: st.BroadcastTime(),
		EnergyMJ:      st.TxEnergyMJ,
		Collisions:    float64(net.Collisions),
	}
}

// reduceCommittee averages per-scenario terms in committee order. It is
// the single definition of the committee average's floating-point op
// order: every evaluation path (serial, committee-parallel, batched)
// funnels through it, which is what makes their results bit-identical.
func reduceCommittee(terms []Metrics) Metrics {
	var sum Metrics
	for _, t := range terms {
		sum.EnergyDBmSum += t.EnergyDBmSum
		sum.Coverage += t.Coverage
		sum.Forwardings += t.Forwardings
		sum.BroadcastTime += t.BroadcastTime
		sum.EnergyMJ += t.EnergyMJ
		sum.Collisions += t.Collisions
	}
	n := float64(len(terms))
	sum.EnergyDBmSum /= n
	sum.Coverage /= n
	sum.Forwardings /= n
	sum.BroadcastTime /= n
	sum.EnergyMJ /= n
	sum.Collisions /= n
	return sum
}

// runCommittee evaluates the factory on every committee scenario, fanning
// across scenario workers when configured. A committee whose scenarios
// cannot all be evaluated — even after supervised retries and the serial
// fallback — degrades to FailedMetrics instead of taking down the run.
func (p *Problem) runCommittee(factory func(*manet.Node) manet.Protocol) Metrics {
	p.health.fullEvals.Add(1)
	terms := make([]Metrics, len(p.scenarios))
	errs := make([]error, len(p.scenarios))
	p.forEachScenario(len(p.scenarios), p.scenarioWorkers, func(i int) {
		terms[i], errs[i] = p.supervisedScenario(factory, i, 0)
	})
	if err := p.settleCommittee(factory, terms, errs, p.scenarioWorkers > 1, 0); err != nil {
		return FailedMetrics()
	}
	return reduceCommittee(terms)
}

// settleCommittee resolves per-scenario failures after a committee pass:
// cells that failed inside a parallel wave get one serial re-attempt
// (resource-pressure failures often clear once the other workers are
// quiet), and any still-failed cell degrades the whole committee. The
// first surviving error is recorded in the health block and returned.
// A stop-induced abandonment is returned without touching the failure
// counters — the caller is discarding the result anyway.
func (p *Problem) settleCommittee(factory func(*manet.Node) manet.Protocol, terms []Metrics, errs []error, wasParallel bool, bound float64) error {
	for i, err := range errs {
		if err == nil || errors.Is(err, ErrStopped) {
			continue
		}
		if wasParallel {
			p.health.serialFallbacks.Add(1)
			terms[i], errs[i] = p.supervisedScenario(factory, i, bound)
		}
	}
	for _, err := range errs {
		if errors.Is(err, ErrStopped) {
			return err
		}
	}
	for i, err := range errs {
		if err != nil {
			p.health.failures.Add(1)
			p.health.lastErr.Store(fmt.Errorf("eval: committee degraded at scenario %d: %w", i, err))
			return err
		}
	}
	return nil
}

// maxRetryBackoff caps the exponential retry backoff: retries exist for
// transient environmental failures, and half a second is already far
// beyond any resource-pressure recovery window a simulation worker
// needs. Without the cap the shift grows without bound — WithMaxRetries
// (20) would sleep ~44 minutes on its last attempt, and shifts >= 63
// overflow time.Duration into a negative (no-op) sleep.
const maxRetryBackoff = 500 * time.Millisecond

// retryDelay returns the clamped exponential backoff before retry
// attempt (1-based): base << (attempt-1), saturating at maxRetryBackoff.
func retryDelay(base time.Duration, attempt int) time.Duration {
	if base <= 0 || attempt < 1 {
		return 0
	}
	if base >= maxRetryBackoff {
		return maxRetryBackoff
	}
	shift := uint(attempt - 1)
	// base < maxRetryBackoff here, so the quotient below is >= 1 and the
	// comparison saturates before base << shift could ever overflow.
	if shift >= 63 || base > maxRetryBackoff>>shift {
		return maxRetryBackoff
	}
	return base << shift
}

// supervisedScenario runs one (candidate, scenario) cell under the
// supervisor: panics recover into errors, each failed attempt is retried
// up to maxRetries times with clamped exponential backoff, and attempts
// are bounded by the per-evaluation timeout when one is configured.
// A positive bound truncates the simulation at that absolute time (the
// ladder's screening rung); 0 runs the full horizon.
func (p *Problem) supervisedScenario(factory func(*manet.Node) manet.Protocol, i int, bound float64) (Metrics, error) {
	var lastErr error
	for attempt := 0; attempt <= p.maxRetries; attempt++ {
		if stopRequested(p.stop) {
			return Metrics{}, ErrStopped
		}
		if attempt > 0 {
			p.health.retries.Add(1)
			time.Sleep(retryDelay(p.retryBackoff, attempt))
		}
		m, err := p.attemptScenario(factory, i, bound)
		if err == nil {
			return m, nil
		}
		if errors.Is(err, ErrStopped) {
			return Metrics{}, err
		}
		p.health.errors.Add(1)
		lastErr = err
	}
	return Metrics{}, lastErr
}

// attemptScenario is one bounded attempt of a cell. With no timeout it
// runs inline; with one it runs in a goroutine that is abandoned (along
// with its arena) when the deadline passes.
func (p *Problem) attemptScenario(factory func(*manet.Node) manet.Protocol, i int, bound float64) (Metrics, error) {
	if p.evalTimeout <= 0 {
		return p.recoverScenario(factory, i, bound)
	}
	type outcome struct {
		m   Metrics
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		m, err := p.recoverScenario(factory, i, bound)
		ch <- outcome{m, err}
	}()
	timer := time.NewTimer(p.evalTimeout)
	defer timer.Stop()
	select {
	case o := <-ch:
		return o.m, o.err
	case <-timer.C:
		p.health.timeouts.Add(1)
		return Metrics{}, fmt.Errorf("eval: scenario %d attempt exceeded %v", i, p.evalTimeout)
	}
}

// recoverScenario runs the raw cell with panic recovery. The arena is
// acquired inside the attempt and only returned to the pool on full
// success: a panicked, failed or timed-out attempt abandons its arena,
// so a partially mutated buffer set can never serve a later simulation.
func (p *Problem) recoverScenario(factory func(*manet.Node) manet.Protocol, i int, bound float64) (m Metrics, err error) {
	defer func() {
		if r := recover(); r != nil {
			p.health.panics.Add(1)
			if e, ok := r.(error); ok {
				err = fmt.Errorf("eval: scenario %d panicked: %w", i, e)
			} else {
				err = fmt.Errorf("eval: scenario %d panicked: %v", i, r)
			}
		}
	}()
	var snap *manet.Snapshot
	var tape *manet.BeaconTape
	if p.warmStart {
		snap = p.snapshot(i)
		if snap != nil && !p.referencePath {
			tape = p.tapeFor(i, snap)
		}
	}
	var arena *manet.Arena
	if snap != nil && !p.referencePath {
		arena = p.getArena()
	}
	m, err = p.simulateScenario(factory, i, snap, tape, arena, bound)
	if err == nil {
		p.putArena(arena)
	}
	return m, err
}

// stopRequested reports whether a stop channel has closed (nil: never).
func stopRequested(stop <-chan struct{}) bool {
	select {
	case <-stop:
		return true
	default:
		return false
	}
}

// forEachScenario runs fn(i) for the first n committee scenario indices,
// across up to workers goroutines (inline when workers <= 1).
func (p *Problem) forEachScenario(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// snapshot lazily builds (once, thread-safely) the warm-start snapshot of
// committee scenario i. It returns nil when snapshotting is unavailable
// for the configuration, in which case callers fall back to from-scratch
// simulation; the cause is retained and reported by WarmStartError.
func (p *Problem) snapshot(i int) *manet.Snapshot {
	slot := &p.snaps[i]
	slot.once.Do(func() {
		slot.snap, slot.err = p.buildSnapshot(i)
		slot.done.Store(true)
	})
	return slot.snap
}

// buildSnapshot builds scenario i's warm-start snapshot, through the
// process-wide masked-parent cache when the configuration is eligible and
// falling back to a direct per-density build otherwise (or on any sharing
// failure — sharing is an optimisation, never a correctness gate). The
// reference path always builds directly: a masked snapshot inherits the
// parent's warm-up RxFrames accounting (see Snapshot.Mask), and complete
// per-node accounting is exactly what WithReferencePath promises.
func (p *Problem) buildSnapshot(i int) (*manet.Snapshot, error) {
	sc := p.scenarios[i]
	if p.sharedWarmups && !p.referencePath && p.cfg.NumNodes <= maskParentNodes {
		if key, ok := sharedCfgKeyOf(p.cfg); ok {
			if parent, err := sharedWarmup(key, p.cfg, sc.seed); err == nil {
				if snap, err := parent.Mask(p.cfg.NumNodes); err == nil {
					return snap, nil
				}
			}
		}
	}
	return manet.BuildSnapshot(p.cfg, sc.seed, p.cfg.WarmupTime)
}

// maskParentNodes is the node count the shared warm-up parents are built
// at: the largest paper committee (density 300, 75 nodes). Densities at
// or below it mask the parent down to their own size.
var maskParentNodes = func() int {
	max := 0
	for _, n := range DensityNodes {
		if n > max {
			max = n
		}
	}
	return max
}()

// sharedCfgKey is the comparable fingerprint of a share-eligible
// manet.Config, with NumNodes excluded (that is the mask size). Two
// Problems whose configs collapse to the same key run identical warm-up
// physics, so their scenario snapshots may come from one parent.
type sharedCfgKey struct {
	area                               geom.Rect
	speedMin, speedMax, changeInterval float64
	pathLoss                           radio.Model
	defaultTxPowerDBm, sensitivityDBm  float64
	captureThresholdDB                 float64
	bitRateBps, propagationSpeed       float64
	beaconInterval, neighborTimeout    float64
	beaconBytes, dataBytes             int
	warmupTime, endTime                float64
	// exactPhysics separates the two physics arms: a beacon tape records
	// pre-converted reception powers, so a tape (or snapshot) recorded
	// under the fused kernel must never be served to an exact-physics
	// Problem, and vice versa.
	exactPhysics bool
}

// sharedCfgKeyOf fingerprints cfg, reporting false when the configuration
// is not share-eligible: masking requires fast beacons, and per-scenario
// callbacks or mobility factories cannot be compared (or shared) safely.
func sharedCfgKeyOf(cfg manet.Config) (sharedCfgKey, bool) {
	if !cfg.FastBeacons || cfg.MakeMobility != nil ||
		cfg.OnDataTx != nil || cfg.OnDataRx != nil || cfg.OnDataLost != nil ||
		cfg.OnDecision != nil {
		return sharedCfgKey{}, false
	}
	if cfg.PathLoss == nil || !reflect.TypeOf(cfg.PathLoss).Comparable() {
		return sharedCfgKey{}, false
	}
	return sharedCfgKey{
		area:               cfg.Area,
		speedMin:           cfg.SpeedMin,
		speedMax:           cfg.SpeedMax,
		changeInterval:     cfg.ChangeInterval,
		pathLoss:           cfg.PathLoss,
		defaultTxPowerDBm:  cfg.DefaultTxPowerDBm,
		sensitivityDBm:     cfg.SensitivityDBm,
		captureThresholdDB: cfg.CaptureThresholdDB,
		bitRateBps:         cfg.BitRateBps,
		propagationSpeed:   cfg.PropagationSpeed,
		beaconInterval:     cfg.BeaconInterval,
		neighborTimeout:    cfg.NeighborTimeout,
		beaconBytes:        cfg.BeaconBytes,
		dataBytes:          cfg.DataBytes,
		warmupTime:         cfg.WarmupTime,
		endTime:            cfg.EndTime,
		exactPhysics:       cfg.ExactPhysics,
	}, true
}

// warmupKey identifies one shared parent warm-up simulation.
type warmupKey struct {
	cfg  sharedCfgKey
	seed uint64
}

// sharedWarmupSlot lazily holds one parent snapshot.
type sharedWarmupSlot struct {
	once sync.Once
	snap *manet.Snapshot
	err  error
}

// sharedWarmups caches parent snapshots process-wide: one entry per
// (eligible config, scenario seed), built at maskParentNodes nodes. The
// entry count is capped: a seed-sweeping process would otherwise
// accumulate parent snapshots without bound, and past the cap new
// scenarios simply build directly (correct, just unshared).
var (
	sharedWarmupCache sync.Map
	sharedWarmupCount atomic.Int64
)

// maxSharedWarmups bounds the cache: committees are 10 scenarios, so the
// cap comfortably covers dozens of concurrently useful (config, seed)
// combinations while keeping worst-case memory at a few hundred 75-node
// snapshots.
const maxSharedWarmups = 512

// errSharedCacheFull marks a transient capacity refusal of one of the
// process-wide caches — a property of the moment, not of the key, so it
// must never be memoized into a cache slot.
var errSharedCacheFull = fmt.Errorf("eval: shared cache full")

// sharedWarmup returns (building once per process) the parent warm-up
// snapshot for a scenario seed under an eligible configuration.
func sharedWarmup(key sharedCfgKey, cfg manet.Config, seed uint64) (*manet.Snapshot, error) {
	k := warmupKey{cfg: key, seed: seed}
	slotAny, ok := sharedWarmupCache.Load(k)
	if !ok {
		if sharedWarmupCount.Load() >= maxSharedWarmups {
			return nil, errSharedCacheFull
		}
		var loaded bool
		slotAny, loaded = sharedWarmupCache.LoadOrStore(k, &sharedWarmupSlot{})
		if !loaded {
			sharedWarmupCount.Add(1)
		}
	}
	slot := slotAny.(*sharedWarmupSlot)
	slot.once.Do(func() {
		pcfg := cfg
		pcfg.NumNodes = maskParentNodes
		pcfg.MakeMobility = nil
		pcfg.OnDataTx, pcfg.OnDataRx, pcfg.OnDataLost, pcfg.OnDecision = nil, nil, nil, nil
		slot.snap, slot.err = manet.BuildSnapshot(pcfg, seed, pcfg.WarmupTime)
	})
	return slot.snap, slot.err
}

// tapeKey identifies one shared beacon-tape recording: the scenario
// fingerprint of the warm-up cache plus the node count the tape serves.
// The maskParentNodes entry is the actual recording; smaller node counts
// are masked prefixes derived from it.
type tapeKey struct {
	cfg   sharedCfgKey
	seed  uint64
	nodes int
}

// sharedTapeSlot lazily holds one shared tape (parent recording or masked
// child).
type sharedTapeSlot struct {
	once sync.Once
	tape *manet.BeaconTape
	err  error
}

// sharedTapeCache caches beacon tapes process-wide: one entry per
// (eligible config, scenario seed, node count). Like the warm-up cache it
// is capped; past the cap new scenarios record locally (correct, just
// unshared).
var (
	sharedTapeCache sync.Map
	sharedTapeCount atomic.Int64
)

// maxSharedTapes bounds the tape cache. Each (config, seed) pair holds at
// most one parent recording plus one masked child per in-use density, so
// the cap covers the same working set maxSharedWarmups does.
const maxSharedTapes = 1024

// sharedTape returns (building once per process) the beacon tape for a
// scenario seed under an eligible configuration at the given node count.
// The parent entry (nodes == maskParentNodes) records from the shared
// warm-up snapshot; smaller entries mask the parent down, so N Problems
// across any mix of densities share one recording per scenario.
func sharedTape(key sharedCfgKey, cfg manet.Config, seed uint64, nodes int) (*manet.BeaconTape, error) {
	k := tapeKey{cfg: key, seed: seed, nodes: nodes}
	slotAny, ok := sharedTapeCache.Load(k)
	if !ok {
		if sharedTapeCount.Load() >= maxSharedTapes {
			return nil, errSharedCacheFull
		}
		var loaded bool
		slotAny, loaded = sharedTapeCache.LoadOrStore(k, &sharedTapeSlot{})
		if !loaded {
			sharedTapeCount.Add(1)
		}
	}
	slot := slotAny.(*sharedTapeSlot)
	slot.once.Do(func() {
		if nodes == maskParentNodes {
			parent, err := sharedWarmup(key, cfg, seed)
			if err != nil {
				slot.err = err
			} else {
				slot.tape, slot.err = parent.RecordBeaconTape(cfg.EndTime)
			}
		} else {
			parent, err := sharedTape(key, cfg, seed, maskParentNodes)
			if err != nil {
				slot.err = err
			} else {
				slot.tape, slot.err = parent.Mask(nodes)
			}
		}
		if errors.Is(slot.err, errSharedCacheFull) {
			// A dependency hit a cache cap: the refusal is transient, so
			// release this slot instead of memoizing the error into one of
			// the capped entries (goroutines already holding the slot see
			// the error and record locally; a later Problem retries with a
			// fresh slot).
			sharedTapeCache.Delete(k)
			sharedTapeCount.Add(-1)
		}
	})
	return slot.tape, slot.err
}

// WarmStartError reports why warm-start evaluation is degraded, if it is:
// non-nil means at least one scenario snapshot failed to build and every
// evaluation of that scenario silently re-simulates its warm-up from
// scratch (correct, but ~4x slower). Nil if warm start is disabled, no
// snapshot has been attempted yet, or all attempted builds succeeded.
func (p *Problem) WarmStartError() error {
	for i := range p.snaps {
		if !p.snaps[i].done.Load() {
			continue
		}
		if err := p.snaps[i].err; err != nil {
			return fmt.Errorf("eval: scenario %d warm-start disabled: %w", i, err)
		}
	}
	return nil
}

// simulateScenario simulates a single committee network under the given
// protocol factory and returns its term of the committee average. The
// default engine replays the scenario's beacon tape into an arena-backed
// instantiation and stops at broadcast quiescence; the reference engine
// (WithReferencePath) runs the allocating full-tail simulation; with no
// usable snapshot the scenario is rebuilt from scratch, and a
// construction failure is returned as an error (degrading that candidate)
// rather than panicking the process. The faultinject sites let the
// robustness tests stand in for organic failures at both boundaries.
//
// A positive bound truncates the run at that absolute simulation time
// instead of cfg.EndTime — the ladder's screening rung. Truncation only
// changes when the event loop stops; snapshots, tapes and arenas are the
// full-horizon ones (a tape replay simply stops consuming the tape), so
// screening shares every cache with full-fidelity evaluation.
func (p *Problem) simulateScenario(factory func(*manet.Node) manet.Protocol, i int, snap *manet.Snapshot, tape *manet.BeaconTape, arena *manet.Arena, bound float64) (Metrics, error) {
	if err := faultinject.Do(faultinject.SiteEvalScenario); err != nil {
		return Metrics{}, err
	}
	end := p.cfg.EndTime
	if bound > 0 && bound < end {
		end = bound
	}
	sc := p.scenarios[i]
	var net *manet.Network
	var st *manet.BroadcastStats
	switch {
	case tape != nil:
		net, st = snap.InstantiateReplayInto(arena, factory, sc.source, p.cfg.WarmupTime, tape)
		runToQuiescenceUntil(net, end)
	case snap != nil && p.referencePath:
		net, st = snap.Instantiate(factory, sc.source, p.cfg.WarmupTime)
		net.Sim.RunUntil(end)
	case snap != nil:
		net, st = snap.InstantiateInto(arena, factory, sc.source, p.cfg.WarmupTime)
		runToQuiescenceUntil(net, end)
	default:
		if err := faultinject.Do(faultinject.SiteEvalBuild); err != nil {
			return Metrics{}, err
		}
		var err error
		net, err = manet.New(p.cfg, sc.seed, factory)
		if err != nil {
			return Metrics{}, fmt.Errorf("eval: scenario %d construction failed: %w", i, err)
		}
		st = net.StartBroadcast(sc.source, p.cfg.WarmupTime)
		if p.referencePath {
			net.Sim.RunUntil(end)
		} else {
			runToQuiescenceUntil(net, end)
		}
	}
	return scenarioTerm(st, net), nil
}

// runToQuiescenceUntil is manet.Network.RunToQuiescence with an explicit
// end time: it executes the event loop until end, stopping early at
// broadcast quiescence. With end == cfg.EndTime it is exactly
// RunToQuiescence (and Sim.RunUntil(end) is exactly Run), which is what
// keeps full-fidelity paths bit-identical whether or not the ladder is
// compiled into the call chain.
func runToQuiescenceUntil(net *manet.Network, end float64) {
	for !net.Quiescent() {
		if !net.Sim.StepUntil(end) {
			return
		}
	}
}

// getArena checks an instantiation arena out of the Problem's pool (nil
// when buffer reuse is disabled: the manet layer treats a nil arena as a
// fresh one-shot buffer set, i.e. the plain allocating path).
func (p *Problem) getArena() *manet.Arena {
	if !p.bufferReuse {
		return nil
	}
	return p.arenas.Get().(*manet.Arena)
}

// putArena returns an arena to the pool. The caller must have extracted
// everything it needs from the last instantiation first.
func (p *Problem) putArena(a *manet.Arena) {
	if a != nil {
		p.arenas.Put(a)
	}
}

// SimulateProtocol runs the committee with an arbitrary protocol factory
// (used by examples comparing AEDB against flooding and distance-based
// baselines) and returns the averaged metrics.
func (p *Problem) SimulateProtocol(factory func(*manet.Node) manet.Protocol) Metrics {
	return p.runCommittee(factory)
}

// EvaluateBatch implements moo.BatchProblem: it evaluates every parameter
// vector of xs against the frozen committee and returns per-vector
// objectives, violations and Metrics (as Aux) bit-identical to what
// Evaluate returns for each vector — the equivalence tests hold both
// paths to that.
//
// Execution is scenario-major: each committee scenario becomes one wave
// that streams all candidates through that scenario's warm snapshot, so
// the per-scenario setup (snapshot build, beacon-tape recording, cache
// residency) is paid once per wave instead of once per candidate. Waves
// fan out across WithBatchWorkers goroutines; the committee average is
// reduced in committee order regardless of schedule.
//
// With the multi-fidelity ladder enabled (WithFidelity), the batch is
// first screened on the cheap rung and only promotion-gate survivors
// reach the full-fidelity waves; triaged candidates come back marked
// Screened with their screening estimate (see fidelity.go). Promoted
// results are bit-identical to what a ladder-free batch — or serial
// Evaluate — returns for the same vector.
func (p *Problem) EvaluateBatch(xs [][]float64) []moo.BatchResult {
	n := len(xs)
	if n == 0 {
		return nil
	}
	p.evals.Add(int64(n))
	factories := make([]func(*manet.Node) manet.Protocol, n)
	for j, x := range xs {
		factories[j] = aedb.New(aedb.FromVector(x))
	}
	if p.ladderActive() {
		return p.ladderBatch(factories)
	}
	p.health.fullEvals.Add(int64(n))
	ms, stopped := p.runWaves(factories, len(p.scenarios), 0)
	out := make([]moo.BatchResult, n)
	for j := range out {
		out[j] = batchResultOf(ms[j], stopped[j], false)
	}
	return out
}

// runWaves is the wave engine shared by every batch rung: it streams all
// candidates through the first nsc committee scenarios (bounded at the
// given absolute simulation time; 0 = full horizon), settles per-cell
// failures candidate by candidate — failed cells from parallel waves get
// one serial re-attempt, a candidate with any cell still failing degrades
// to the penalty outcome — and reduces each candidate's committee average.
// The returned stopped markers flag candidates abandoned because the
// Problem's stop signal fired; their metrics are the penalty outcome but
// carry no information, and they are never counted as failures.
func (p *Problem) runWaves(factories []func(*manet.Node) manet.Protocol, nsc int, bound float64) ([]Metrics, []bool) {
	n := len(factories)
	terms := make([]Metrics, n*nsc) // terms[j*nsc+i]: candidate j, scenario i
	errs := make([]error, n*nsc)
	workers := p.batchWorkerCount()
	p.forEachScenario(nsc, workers, func(i int) { p.batchWave(factories, i, nsc, bound, terms, errs) })

	ms := make([]Metrics, n)
	stopped := make([]bool, n)
	for j := 0; j < n; j++ {
		err := p.settleCommittee(factories[j], terms[j*nsc:(j+1)*nsc], errs[j*nsc:(j+1)*nsc], workers > 1, bound)
		switch {
		case errors.Is(err, ErrStopped):
			ms[j] = FailedMetrics()
			stopped[j] = true
		case err != nil:
			ms[j] = FailedMetrics()
		default:
			ms[j] = reduceCommittee(terms[j*nsc : (j+1)*nsc])
		}
	}
	return ms, stopped
}

// batchResultOf wraps a committee outcome as a moo.BatchResult — the one
// definition of the Metrics -> (objectives, violation) mapping on the
// batch path, shared by every rung.
func batchResultOf(m Metrics, stopped, screened bool) moo.BatchResult {
	viol := m.BroadcastTime - BroadcastTimeLimit
	if viol < 0 {
		viol = 0
	}
	return moo.BatchResult{
		F:         []float64{m.EnergyDBmSum, -m.Coverage, m.Forwardings},
		Violation: viol,
		Aux:       m,
		Stopped:   stopped,
		Screened:  screened,
	}
}

// batchWorkerCount resolves the wave-level parallelism of one
// EvaluateBatch call.
func (p *Problem) batchWorkerCount() int {
	w := p.batchWorkers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// batchWave streams every candidate of the batch through committee
// scenario i — one snapshot-clone wave. On the default engine the wave
// resolves (once, cached on the Problem) the scenario's warm snapshot and
// beacon tape, instantiates replay networks into pool-recycled arenas and
// stops each simulation at broadcast quiescence; the reference engine
// runs every candidate through the allocating full-tail path. Every cell
// runs under the supervisor, so one candidate's failure is recorded in
// errs and the wave moves on (a failed cell's arena is abandoned, never
// re-pooled — see recoverScenario).
func (p *Problem) batchWave(factories []func(*manet.Node) manet.Protocol, i, nsc int, bound float64, terms []Metrics, errs []error) {
	for j, factory := range factories {
		if stopRequested(p.stop) {
			errs[j*nsc+i] = ErrStopped
			continue
		}
		terms[j*nsc+i], errs[j*nsc+i] = p.supervisedScenario(factory, i, bound)
	}
}

// tapeFor lazily resolves (once, thread-safely) the beacon tape of
// committee scenario i: through the process-wide shared cache when the
// configuration is eligible — sharing the recording (and, across
// densities, the masked derivation) with every other Problem of the same
// scenario fingerprint — and by recording from the Problem's own snapshot
// otherwise, or on any sharing failure (sharing is an optimisation, never
// a correctness gate). A nil result (frame-level beacons cannot be taped)
// sends the caller down the plain snapshot path.
func (p *Problem) tapeFor(i int, snap *manet.Snapshot) *manet.BeaconTape {
	if !p.cfg.FastBeacons {
		return nil
	}
	slot := &p.tapes[i]
	slot.once.Do(func() {
		if p.sharedTapes && !p.referencePath && p.cfg.NumNodes <= maskParentNodes {
			if key, ok := sharedCfgKeyOf(p.cfg); ok {
				if tape, err := sharedTape(key, p.cfg, p.scenarios[i].seed, p.cfg.NumNodes); err == nil {
					slot.tape = tape
					return
				}
			}
		}
		slot.tape, _ = snap.RecordBeaconTape(p.cfg.EndTime)
	})
	return slot.tape
}

// Fingerprint returns a stable hex digest of the Problem's evaluation
// identity: density, node count, committee scenarios (seeds and sources),
// decision-space bounds, the physics arm, and the share-eligible config
// fields (the same set sharedCfgKey compares, so two Problems with equal
// fingerprints never mix incompatible caches). Performance knobs — worker
// counts, cache sharing, buffer reuse, the reference path — are
// deliberately excluded: they are all bit-identical at the Metrics level,
// so a resumed study may legally change its parallelism. Configs carrying
// per-scenario callbacks cannot be fingerprinted stably; their hook
// presence is folded in and consistency across resume is on the caller.
//
// The multi-fidelity ladder is folded in ONLY when it actually engages:
// ladder-off fingerprints are byte-identical to previous releases (old
// checkpoints keep resuming), while a ladder-enabled study refuses a
// mid-study change of rung or promotion epsilon — screening alters which
// candidates are evaluated at full fidelity, so it is part of the study's
// identity, not a performance knob.
func (p *Problem) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	put := func(s string) {
		binary.BigEndian.PutUint64(buf[:], uint64(len(s)))
		h.Write(buf[:])
		h.Write([]byte(s))
	}
	put("aedb-eval-v1")
	put(fmt.Sprintf("density=%d nodes=%d committee=%d exact=%t",
		p.density, p.cfg.NumNodes, len(p.scenarios), p.exactPhysics))
	for _, sc := range p.scenarios {
		put(fmt.Sprintf("seed=%d source=%d", sc.seed, sc.source))
	}
	lo, hi := p.domain.Bounds()
	put(fmt.Sprintf("lo=%v hi=%v", lo, hi))
	if p.ladderActive() {
		put(fmt.Sprintf("fidelity=[committee=%d horizon=%g eps=%g]",
			p.screenCommittee(), p.screenHorizon(), p.PromoteEpsilon()))
	}
	cfg := p.cfg
	put(fmt.Sprintf(
		"area=%v speed=[%v,%v,%v] radio=[%T %+v tx=%v sens=%v capt=%v rate=%v prop=%v] "+
			"beacon=[%v to=%v fast=%t] bytes=[%d,%d] time=[%v,%v] hooks=[%t,%t,%t,%t,%t]",
		cfg.Area, cfg.SpeedMin, cfg.SpeedMax, cfg.ChangeInterval,
		cfg.PathLoss, cfg.PathLoss, cfg.DefaultTxPowerDBm, cfg.SensitivityDBm,
		cfg.CaptureThresholdDB, cfg.BitRateBps, cfg.PropagationSpeed,
		cfg.BeaconInterval, cfg.NeighborTimeout, cfg.FastBeacons,
		cfg.BeaconBytes, cfg.DataBytes, cfg.WarmupTime, cfg.EndTime,
		cfg.MakeMobility != nil, cfg.OnDataTx != nil, cfg.OnDataRx != nil, cfg.OnDataLost != nil,
		cfg.OnDecision != nil))
	return hex.EncodeToString(h.Sum(nil))
}

// MetricsOf extracts the raw metrics attached to a solution evaluated on a
// Problem. ok is false if the solution was produced by another problem.
func MetricsOf(s *moo.Solution) (Metrics, bool) {
	m, ok := s.Aux.(Metrics)
	return m, ok
}

// BatchResult is the per-vector outcome of EvaluateBatch; its Aux field
// carries the Metrics. The alias keeps eval's batch API interchangeable
// with the moo.BatchProblem vocabulary.
type BatchResult = moo.BatchResult

// Problem batches evaluations for any moo-level consumer.
var _ moo.BatchProblem = (*Problem)(nil)
