package eval

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"aedbmls/internal/aedb"
)

// updateGolden regenerates the golden-metrics corpus:
//
//	go test ./internal/eval -run TestGoldenMetrics -update
//
// Regeneration is a deliberate act: any bit drift in the evaluation
// engine fails the table test below until the corpus is re-recorded and
// the change justified in review.
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_metrics.json from the current engine")

const goldenPath = "testdata/golden_metrics.json"

// goldenCase enumerates the corpus axes: every paper density, several
// committee seeds, two parameter vectors (a mid-domain incumbent and a
// low-delay/wide-area one).
type goldenCase struct {
	Density int       `json:"density"`
	Seed    uint64    `json:"seed"`
	Params  []float64 `json:"params"`
}

// goldenMetrics carries one Metrics value twice: hex float64 strings are
// the authoritative bit-exact record, the plain floats are the
// human-readable rendering (Go's JSON float64 round-trip is also exact,
// but hex makes bit-identity auditable at a glance).
type goldenMetrics struct {
	Hex      map[string]string  `json:"hex"`
	Readable map[string]float64 `json:"readable"`
}

// goldenEntry records one corpus case under BOTH physics arms: Metrics is
// the reference (ExactPhysics) arm and MetricsKernel is the fused
// d2-space kernel arm the default engine runs since the fast physics
// kernel landed. The arms agree bit-for-bit on every discrete field
// (coverage, forwardings, collisions, broadcast time); only the
// continuous energy sums differ, in the last units of the mantissa (see
// TestKernelPhysicsMatchesExactOnGoldenCorpus).
//
// Regeneration history. The corpus was re-recorded ONCE since the fast
// kernel landed, when the protocol delay draw moved from the historical
// Rng.Range(lo, hi+1e-15) inclusive-upper-bound hack to the correct
// Rng.RangeClosed(lo, hi) (see that function's doc: the old epsilon is a
// silent no-op for bounds >= ~1 s and widens sub-microsecond intervals
// past hi). The fix perturbs each forwarding delay by a few ULPs — the
// old draw was lo + (hi+1e-15-lo)*u on the half-open [0,1) lattice, the
// new one spans the closed [lo, hi] lattice — so broadcast_time shifted
// in the last 1-2 mantissa digits on both arms while every other field
// (coverage, forwardings, collisions, both energy sums) reproduced the
// previous corpus bit-for-bit. That confirmed the change affected
// nothing beyond the delay draw itself, and the corpus was re-recorded
// to the corrected bits.
type goldenEntry struct {
	goldenCase
	Committee     int           `json:"committee"`
	Metrics       goldenMetrics `json:"metrics"`
	MetricsKernel goldenMetrics `json:"metrics_kernel"`
}

// want selects the recorded arm for a physics mode.
func (e goldenEntry) want(exactPhysics bool) goldenMetrics {
	if exactPhysics {
		return e.Metrics
	}
	return e.MetricsKernel
}

type goldenFile struct {
	Comment string        `json:"comment"`
	Entries []goldenEntry `json:"entries"`
}

// goldenCommittee keeps corpus generation and verification fast while
// still exercising multi-scenario reduction.
const goldenCommittee = 3

func goldenCases() []goldenCase {
	mid := []float64{0.1, 0.5, -80, 1, 10}
	wide := []float64{0.02, 0.25, -73, 2.2, 35}
	var cases []goldenCase
	for _, density := range []int{100, 200, 300} {
		for seed := uint64(1); seed <= 4; seed++ {
			params := mid
			if seed%2 == 0 {
				params = wide
			}
			cases = append(cases, goldenCase{Density: density, Seed: seed, Params: params})
		}
	}
	return cases
}

func metricsFields(m Metrics) map[string]float64 {
	return map[string]float64{
		"energy_dbm_sum": m.EnergyDBmSum,
		"coverage":       m.Coverage,
		"forwardings":    m.Forwardings,
		"broadcast_time": m.BroadcastTime,
		"energy_mj":      m.EnergyMJ,
		"collisions":     m.Collisions,
	}
}

func encodeGolden(m Metrics) goldenMetrics {
	fields := metricsFields(m)
	g := goldenMetrics{Hex: map[string]string{}, Readable: map[string]float64{}}
	for name, v := range fields {
		g.Hex[name] = strconv.FormatFloat(v, 'x', -1, 64)
		g.Readable[name] = v
	}
	return g
}

func simulateCase(c goldenCase, opts ...Option) Metrics {
	p := NewProblem(c.Density, c.Seed, append([]Option{WithCommittee(goldenCommittee)}, opts...)...)
	return p.Simulate(aedb.FromVector(c.Params))
}

// TestGoldenMetrics is the anti-drift wall of the evaluation engine:
// every committed corpus entry must be reproduced bit-for-bit by BOTH
// engines — the default fast path (beacon-tape replay, quiescence early
// stop, arena reuse, shared masked warm-ups) and the reference path —
// under BOTH physics arms (the fused d2-space kernel, and the reference
// per-call physics of WithExactPhysics), across all paper densities and
// several committee seeds. A failure means a numeric path silently
// drifted; regenerate with -update only for a change whose numeric
// effect is understood and intended.
func TestGoldenMetrics(t *testing.T) {
	if *updateGolden {
		writeGolden(t)
	}
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden corpus missing (generate with -update): %v", err)
	}
	var file goldenFile
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatalf("corrupt golden corpus: %v", err)
	}
	if len(file.Entries) < 12 {
		t.Fatalf("golden corpus has %d entries, want >= 12", len(file.Entries))
	}
	for _, e := range file.Entries {
		name := fmt.Sprintf("d%d/seed%d", e.Density, e.Seed)
		if e.Committee != goldenCommittee {
			t.Fatalf("%s: corpus committee %d does not match test committee %d", name, e.Committee, goldenCommittee)
		}
		for pathName, m := range map[string]Metrics{
			"default":         simulateCase(e.goldenCase),
			"reference":       simulateCase(e.goldenCase, WithReferencePath(true)),
			"unshared":        simulateCase(e.goldenCase, WithSharedWarmups(false), WithBufferReuse(false)),
			"exact":           simulateCase(e.goldenCase, WithExactPhysics(true)),
			"exact-reference": simulateCase(e.goldenCase, WithExactPhysics(true), WithReferencePath(true)),
		} {
			exact := pathName == "exact" || pathName == "exact-reference"
			assertGoldenMetrics(t, fmt.Sprintf("%s [%s path]", name, pathName), e.want(exact), m)
		}
	}
}

func writeGolden(t *testing.T) {
	t.Helper()
	file := goldenFile{
		Comment: "Bit-exact committee metrics of the evaluation engine (committee " +
			strconv.Itoa(goldenCommittee) + "), recorded under both physics arms: 'metrics' is the reference " +
			"(ExactPhysics) arm, 'metrics_kernel' the fused d2-space kernel arm the default engine runs. " +
			"Regenerate deliberately with: go test ./internal/eval -run TestGoldenMetrics -update",
	}
	for _, c := range goldenCases() {
		kern := simulateCase(c)
		kernRef := simulateCase(c, WithReferencePath(true))
		if kern != kernRef {
			t.Fatalf("refusing to record corpus: default and reference engines disagree on d%d seed %d (kernel arm):\n%+v\n%+v",
				c.Density, c.Seed, kern, kernRef)
		}
		exact := simulateCase(c, WithExactPhysics(true))
		exactRef := simulateCase(c, WithExactPhysics(true), WithReferencePath(true))
		if exact != exactRef {
			t.Fatalf("refusing to record corpus: default and reference engines disagree on d%d seed %d (exact arm):\n%+v\n%+v",
				c.Density, c.Seed, exact, exactRef)
		}
		// Cross-arm sanity: the physics arms must agree exactly on every
		// discrete field; only the energy sums may round differently.
		if kern.Coverage != exact.Coverage || kern.Forwardings != exact.Forwardings ||
			kern.Collisions != exact.Collisions || kern.BroadcastTime != exact.BroadcastTime {
			t.Fatalf("refusing to record corpus: physics arms disagree on a discrete metric at d%d seed %d:\nkernel %+v\nexact  %+v",
				c.Density, c.Seed, kern, exact)
		}
		file.Entries = append(file.Entries, goldenEntry{
			goldenCase: c, Committee: goldenCommittee,
			Metrics: encodeGolden(exact), MetricsKernel: encodeGolden(kern),
		})
	}
	out, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenPath, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d entries)", goldenPath, len(file.Entries))
}
