package eval

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"aedbmls/internal/aedb"
)

// updateGolden regenerates the golden-metrics corpus:
//
//	go test ./internal/eval -run TestGoldenMetrics -update
//
// Regeneration is a deliberate act: any bit drift in the evaluation
// engine fails the table test below until the corpus is re-recorded and
// the change justified in review.
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_metrics.json from the current engine")

const goldenPath = "testdata/golden_metrics.json"

// goldenCase enumerates the corpus axes: every paper density, several
// committee seeds, two parameter vectors (a mid-domain incumbent and a
// low-delay/wide-area one).
type goldenCase struct {
	Density int       `json:"density"`
	Seed    uint64    `json:"seed"`
	Params  []float64 `json:"params"`
}

// goldenMetrics carries one Metrics value twice: hex float64 strings are
// the authoritative bit-exact record, the plain floats are the
// human-readable rendering (Go's JSON float64 round-trip is also exact,
// but hex makes bit-identity auditable at a glance).
type goldenMetrics struct {
	Hex      map[string]string  `json:"hex"`
	Readable map[string]float64 `json:"readable"`
}

type goldenEntry struct {
	goldenCase
	Committee int           `json:"committee"`
	Metrics   goldenMetrics `json:"metrics"`
}

type goldenFile struct {
	Comment string        `json:"comment"`
	Entries []goldenEntry `json:"entries"`
}

// goldenCommittee keeps corpus generation and verification fast while
// still exercising multi-scenario reduction.
const goldenCommittee = 3

func goldenCases() []goldenCase {
	mid := []float64{0.1, 0.5, -80, 1, 10}
	wide := []float64{0.02, 0.25, -73, 2.2, 35}
	var cases []goldenCase
	for _, density := range []int{100, 200, 300} {
		for seed := uint64(1); seed <= 4; seed++ {
			params := mid
			if seed%2 == 0 {
				params = wide
			}
			cases = append(cases, goldenCase{Density: density, Seed: seed, Params: params})
		}
	}
	return cases
}

func metricsFields(m Metrics) map[string]float64 {
	return map[string]float64{
		"energy_dbm_sum": m.EnergyDBmSum,
		"coverage":       m.Coverage,
		"forwardings":    m.Forwardings,
		"broadcast_time": m.BroadcastTime,
		"energy_mj":      m.EnergyMJ,
		"collisions":     m.Collisions,
	}
}

func encodeGolden(m Metrics) goldenMetrics {
	fields := metricsFields(m)
	g := goldenMetrics{Hex: map[string]string{}, Readable: map[string]float64{}}
	for name, v := range fields {
		g.Hex[name] = strconv.FormatFloat(v, 'x', -1, 64)
		g.Readable[name] = v
	}
	return g
}

func simulateCase(c goldenCase, opts ...Option) Metrics {
	p := NewProblem(c.Density, c.Seed, append([]Option{WithCommittee(goldenCommittee)}, opts...)...)
	return p.Simulate(aedb.FromVector(c.Params))
}

// TestGoldenMetrics is the anti-drift wall of the evaluation engine:
// every committed corpus entry must be reproduced bit-for-bit by BOTH
// engines — the default fast path (beacon-tape replay, quiescence early
// stop, arena reuse, shared masked warm-ups) and the reference path —
// across all paper densities and several committee seeds. A failure means
// the default numeric path silently drifted; regenerate with -update only
// for a change whose numeric effect is understood and intended.
func TestGoldenMetrics(t *testing.T) {
	if *updateGolden {
		writeGolden(t)
	}
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden corpus missing (generate with -update): %v", err)
	}
	var file goldenFile
	if err := json.Unmarshal(raw, &file); err != nil {
		t.Fatalf("corrupt golden corpus: %v", err)
	}
	if len(file.Entries) < 12 {
		t.Fatalf("golden corpus has %d entries, want >= 12", len(file.Entries))
	}
	for _, e := range file.Entries {
		name := fmt.Sprintf("d%d/seed%d", e.Density, e.Seed)
		if e.Committee != goldenCommittee {
			t.Fatalf("%s: corpus committee %d does not match test committee %d", name, e.Committee, goldenCommittee)
		}
		for pathName, m := range map[string]Metrics{
			"default":   simulateCase(e.goldenCase),
			"reference": simulateCase(e.goldenCase, WithReferencePath(true)),
			"unshared":  simulateCase(e.goldenCase, WithSharedWarmups(false), WithBufferReuse(false)),
		} {
			got := metricsFields(m)
			for field, wantHex := range e.Metrics.Hex {
				want, err := strconv.ParseFloat(wantHex, 64)
				if err != nil {
					t.Fatalf("%s: bad hex float %q: %v", name, wantHex, err)
				}
				if gv := got[field]; gv != want || math.Signbit(gv) != math.Signbit(want) {
					t.Errorf("%s [%s path]: %s drifted: got %s (%v), want %s (%v)",
						name, pathName, field, strconv.FormatFloat(gv, 'x', -1, 64), gv, wantHex, want)
				}
			}
		}
	}
}

func writeGolden(t *testing.T) {
	t.Helper()
	file := goldenFile{
		Comment: "Bit-exact committee metrics of the evaluation engine (committee " +
			strconv.Itoa(goldenCommittee) + "). Regenerate deliberately with: go test ./internal/eval -run TestGoldenMetrics -update",
	}
	for _, c := range goldenCases() {
		def := simulateCase(c)
		ref := simulateCase(c, WithReferencePath(true))
		if def != ref {
			t.Fatalf("refusing to record corpus: default and reference engines disagree on d%d seed %d:\n%+v\n%+v",
				c.Density, c.Seed, def, ref)
		}
		file.Entries = append(file.Entries, goldenEntry{goldenCase: c, Committee: goldenCommittee, Metrics: encodeGolden(def)})
	}
	out, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenPath, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d entries)", goldenPath, len(file.Entries))
}
