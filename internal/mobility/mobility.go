// Package mobility provides node mobility models for the MANET substrate.
//
// The paper's evaluation uses the random-walk model (Table II): each node
// picks a uniform direction and a uniform speed in [0, 2] m/s and keeps
// them for 20 s, reflecting off the borders of the 500 m x 500 m arena.
// RandomWaypoint and Static models are provided as extras for tests and
// ablations.
//
// Models expose an analytic Position(t); trajectories are piecewise linear
// so the simulator does not need per-tick position updates. NextChange
// tells the event engine when the trajectory changes shape.
package mobility

import (
	"math"

	"aedbmls/internal/geom"
	"aedbmls/internal/rng"
)

// Model yields a node trajectory. Implementations are deterministic given
// their RNG stream.
type Model interface {
	// Position returns the node position at time t. t must be
	// non-decreasing across calls interleaved with Advance. Trajectories
	// must be continuous: |Position(t2)-Position(t1)| <= MaxSpeed*(t2-t1)
	// even across Advance calls, a bound the spatial index relies on.
	Position(t float64) geom.Vec2
	// NextChange returns the time of the next trajectory change
	// (+Inf if the trajectory never changes).
	NextChange() float64
	// Advance recomputes the trajectory at its NextChange time. The
	// engine calls it exactly once per change event.
	Advance()
	// Clone returns an independent deep copy of the model, including its
	// RNG stream: the clone replays exactly the trajectory the original
	// would have produced. Snapshots use it to freeze mobility state.
	Clone() Model
	// CloneInto is Clone recycling dst's storage when dst is an instance
	// of the same concrete type: the receiver's state (RNG stream
	// included) is copied into dst, which is returned. Any other dst —
	// nil included — falls back to a fresh Clone. The evaluation arena
	// uses it to re-instantiate a snapshot's trajectories without one
	// allocation per node per candidate.
	CloneInto(dst Model) Model
	// MaxSpeed returns an upper bound on the node speed in m/s, or +Inf
	// when no bound is known (disables stale spatial-index queries).
	MaxSpeed() float64
}

// reuseRng fills dst's recycled RNG storage (allocating only when dst is
// nil) with a copy of src's stream — the shared piece of every
// CloneInto: grab the destination's storage before the struct copy
// overwrites the pointer, then restore it.
func reuseRng(dst, src *rng.Rand) *rng.Rand {
	if dst == nil {
		dst = new(rng.Rand)
	}
	*dst = *src
	return dst
}

// RandomWalk implements the random-walk (random direction) model of the
// paper: uniform direction in [0, 2*pi), uniform speed in [SpeedMin,
// SpeedMax], redrawn every Interval seconds; reflective borders.
type RandomWalk struct {
	Bounds   geom.Rect
	SpeedMin float64
	SpeedMax float64
	Interval float64

	rng      *rng.Rand
	origin   geom.Vec2 // position at segStart
	velocity geom.Vec2
	segStart float64
	segEnd   float64
}

// NewRandomWalk creates a walker starting at a uniform position in bounds.
func NewRandomWalk(bounds geom.Rect, speedMin, speedMax, interval float64, r *rng.Rand) *RandomWalk {
	w := &RandomWalk{
		Bounds:   bounds,
		SpeedMin: speedMin,
		SpeedMax: speedMax,
		Interval: interval,
		rng:      r,
		origin:   geom.Vec2{X: r.Range(bounds.MinX, bounds.MaxX), Y: r.Range(bounds.MinY, bounds.MaxY)},
	}
	w.redraw(0)
	return w
}

func (w *RandomWalk) redraw(t float64) {
	theta := w.rng.Range(0, 2*math.Pi)
	speed := w.rng.Range(w.SpeedMin, w.SpeedMax)
	w.velocity = geom.Unit(theta).Scale(speed)
	w.segStart = t
	w.segEnd = t + w.Interval
}

// Position implements Model. Reflection is applied analytically, so the
// position is exact for any t within the current segment.
func (w *RandomWalk) Position(t float64) geom.Vec2 {
	dt := t - w.segStart
	if dt < 0 {
		dt = 0
	}
	raw := w.origin.Add(w.velocity.Scale(dt))
	p, _, _ := w.Bounds.Reflect(raw)
	return p
}

// NextChange implements Model.
func (w *RandomWalk) NextChange() float64 { return w.segEnd }

// Advance implements Model.
func (w *RandomWalk) Advance() {
	// Fold the end-of-segment position (and the velocity orientation that
	// reflections imply) into a fresh origin, then redraw.
	raw := w.origin.Add(w.velocity.Scale(w.segEnd - w.segStart))
	p, _, _ := w.Bounds.Reflect(raw)
	w.origin = p
	w.redraw(w.segEnd)
}

// Clone implements Model.
func (w *RandomWalk) Clone() Model {
	c := *w
	c.rng = w.rng.Clone()
	return &c
}

// CloneInto implements Model.
func (w *RandomWalk) CloneInto(dst Model) Model {
	d, ok := dst.(*RandomWalk)
	if !ok || d == nil {
		return w.Clone()
	}
	r := reuseRng(d.rng, w.rng)
	*d = *w
	d.rng = r
	return d
}

// MaxSpeed implements Model.
func (w *RandomWalk) MaxSpeed() float64 { return w.SpeedMax }

// RandomWaypoint implements the classic random-waypoint model: pick a
// uniform destination, travel at uniform speed, optionally pause, repeat.
type RandomWaypoint struct {
	Bounds   geom.Rect
	SpeedMin float64
	SpeedMax float64
	Pause    float64

	rng      *rng.Rand
	from, to geom.Vec2
	segStart float64
	arrive   float64
	segEnd   float64 // arrive + pause
}

// NewRandomWaypoint creates a waypoint walker starting at a uniform
// position.
func NewRandomWaypoint(bounds geom.Rect, speedMin, speedMax, pause float64, r *rng.Rand) *RandomWaypoint {
	w := &RandomWaypoint{Bounds: bounds, SpeedMin: speedMin, SpeedMax: speedMax, Pause: pause, rng: r}
	w.from = geom.Vec2{X: r.Range(bounds.MinX, bounds.MaxX), Y: r.Range(bounds.MinY, bounds.MaxY)}
	w.pickLeg(0)
	return w
}

func (w *RandomWaypoint) pickLeg(t float64) {
	w.to = geom.Vec2{X: w.rng.Range(w.Bounds.MinX, w.Bounds.MaxX), Y: w.rng.Range(w.Bounds.MinY, w.Bounds.MaxY)}
	speed := w.rng.Range(w.SpeedMin, w.SpeedMax)
	if speed <= 0 {
		speed = 1e-9
	}
	w.segStart = t
	w.arrive = t + w.from.Dist(w.to)/speed
	w.segEnd = w.arrive + w.Pause
}

// Position implements Model.
func (w *RandomWaypoint) Position(t float64) geom.Vec2 {
	if t >= w.arrive {
		return w.to
	}
	if t <= w.segStart {
		return w.from
	}
	frac := (t - w.segStart) / (w.arrive - w.segStart)
	return w.from.Add(w.to.Sub(w.from).Scale(frac))
}

// NextChange implements Model.
func (w *RandomWaypoint) NextChange() float64 { return w.segEnd }

// Advance implements Model.
func (w *RandomWaypoint) Advance() {
	w.from = w.to
	w.pickLeg(w.segEnd)
}

// Clone implements Model.
func (w *RandomWaypoint) Clone() Model {
	c := *w
	c.rng = w.rng.Clone()
	return &c
}

// CloneInto implements Model.
func (w *RandomWaypoint) CloneInto(dst Model) Model {
	d, ok := dst.(*RandomWaypoint)
	if !ok || d == nil {
		return w.Clone()
	}
	r := reuseRng(d.rng, w.rng)
	*d = *w
	d.rng = r
	return d
}

// MaxSpeed implements Model.
func (w *RandomWaypoint) MaxSpeed() float64 { return w.SpeedMax }

// Static is a motionless node, useful for unit tests and the MEB-style
// static-network ablations.
type Static struct {
	P geom.Vec2
}

// Position implements Model.
func (s *Static) Position(float64) geom.Vec2 { return s.P }

// NextChange implements Model.
func (s *Static) NextChange() float64 { return math.Inf(1) }

// Advance implements Model.
func (s *Static) Advance() {}

// Clone implements Model.
func (s *Static) Clone() Model {
	c := *s
	return &c
}

// CloneInto implements Model.
func (s *Static) CloneInto(dst Model) Model {
	d, ok := dst.(*Static)
	if !ok || d == nil {
		return s.Clone()
	}
	*d = *s
	return d
}

// MaxSpeed implements Model.
func (s *Static) MaxSpeed() float64 { return 0 }
