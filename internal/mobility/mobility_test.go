package mobility

import (
	"math"
	"testing"
	"testing/quick"

	"aedbmls/internal/geom"
	"aedbmls/internal/rng"
)

// drive advances a model through its change events up to time end,
// sampling positions at step intervals and calling check on each.
func drive(m Model, end, step float64, check func(t float64, p geom.Vec2)) {
	next := m.NextChange()
	for t := 0.0; t <= end; t += step {
		for t >= next {
			m.Advance()
			next = m.NextChange()
		}
		check(t, m.Position(t))
	}
}

func TestRandomWalkStaysInBounds(t *testing.T) {
	bounds := geom.Square(500)
	check := func(seed uint64) bool {
		w := NewRandomWalk(bounds, 0, 2, 20, rng.New(seed))
		ok := true
		drive(w, 200, 0.5, func(_ float64, p geom.Vec2) {
			if !bounds.Contains(p) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomWalkSpeedBounded(t *testing.T) {
	bounds := geom.Square(500)
	w := NewRandomWalk(bounds, 0.5, 2, 20, rng.New(7))
	var prev geom.Vec2
	first := true
	const dt = 0.25
	drive(w, 100, dt, func(_ float64, p geom.Vec2) {
		if !first {
			// Reflection can only shorten apparent displacement, so the
			// upper bound holds strictly.
			if speed := prev.Dist(p) / dt; speed > 2.0001 {
				t.Fatalf("instantaneous speed %.3f exceeds max 2", speed)
			}
		}
		prev, first = p, false
	})
}

func TestRandomWalkChangesEvery20s(t *testing.T) {
	w := NewRandomWalk(geom.Square(500), 0, 2, 20, rng.New(3))
	if w.NextChange() != 20 {
		t.Fatalf("first change at %v, want 20", w.NextChange())
	}
	w.Advance()
	if w.NextChange() != 40 {
		t.Fatalf("second change at %v, want 40", w.NextChange())
	}
}

func TestRandomWalkDeterministic(t *testing.T) {
	a := NewRandomWalk(geom.Square(500), 0, 2, 20, rng.New(11))
	b := NewRandomWalk(geom.Square(500), 0, 2, 20, rng.New(11))
	for i := 0; i < 5; i++ {
		ta := float64(i) * 7.5
		if a.Position(ta) != b.Position(ta) {
			t.Fatalf("same-seed walkers diverged at t=%v", ta)
		}
		if ta >= a.NextChange() {
			a.Advance()
			b.Advance()
		}
	}
}

func TestRandomWalkContinuousAcrossAdvance(t *testing.T) {
	w := NewRandomWalk(geom.Square(500), 1, 2, 20, rng.New(5))
	before := w.Position(20)
	w.Advance()
	after := w.Position(20)
	if before.Dist(after) > 1e-9 {
		t.Fatalf("position jumped across Advance: %v -> %v", before, after)
	}
}

func TestRandomWaypointStaysInBounds(t *testing.T) {
	bounds := geom.Square(300)
	check := func(seed uint64) bool {
		w := NewRandomWaypoint(bounds, 0.5, 2, 1, rng.New(seed))
		ok := true
		drive(w, 300, 1, func(_ float64, p geom.Vec2) {
			if !bounds.Contains(p) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomWaypointReachesDestination(t *testing.T) {
	w := NewRandomWaypoint(geom.Square(300), 1, 1, 0.5, rng.New(9))
	dest := w.to
	arrival := w.arrive
	if got := w.Position(arrival + 0.1); got != dest {
		t.Fatalf("position after arrival = %v, want %v", got, dest)
	}
	// During the pause the node stays put.
	if got := w.Position(w.segEnd - 1e-6); got != dest {
		t.Fatalf("position during pause = %v, want %v", got, dest)
	}
}

func TestRandomWaypointAdvanceStartsFromDestination(t *testing.T) {
	w := NewRandomWaypoint(geom.Square(300), 1, 1, 0, rng.New(13))
	dest := w.to
	w.Advance()
	if w.from != dest {
		t.Fatalf("new leg starts at %v, want previous destination %v", w.from, dest)
	}
}

func TestStatic(t *testing.T) {
	s := &Static{P: geom.Vec2{X: 3, Y: 4}}
	if s.Position(0) != s.Position(1e9) {
		t.Fatal("static node moved")
	}
	if !math.IsInf(s.NextChange(), 1) {
		t.Fatal("static NextChange should be +Inf")
	}
	s.Advance() // must not panic
}

func TestWalkersDiffer(t *testing.T) {
	a := NewRandomWalk(geom.Square(500), 0, 2, 20, rng.New(1))
	b := NewRandomWalk(geom.Square(500), 0, 2, 20, rng.New(2))
	if a.Position(0) == b.Position(0) {
		t.Fatal("different seeds placed nodes identically (suspicious)")
	}
}

func TestGaussMarkovStaysInBounds(t *testing.T) {
	bounds := geom.Square(500)
	check := func(seed uint64) bool {
		g := NewGaussMarkov(bounds, 0.75, 1.5, 1, rng.New(seed))
		ok := true
		drive(g, 300, 0.5, func(_ float64, p geom.Vec2) {
			if !bounds.Contains(p) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGaussMarkovMemoryExtremes(t *testing.T) {
	bounds := geom.Square(1e6) // effectively unbounded: no edge steering
	// Memory 1: direction and speed never change.
	g := NewGaussMarkov(bounds, 1, 2, 1, rng.New(3))
	d0, s0 := g.dir, g.speed
	for i := 0; i < 10; i++ {
		g.Advance()
	}
	if g.dir != d0 || g.speed != s0 {
		t.Fatalf("memory=1 trajectory changed: dir %v->%v speed %v->%v", d0, g.dir, s0, g.speed)
	}
	// Memory 0: direction decorrelates quickly.
	g0 := NewGaussMarkov(bounds, 0, 2, 1, rng.New(4))
	changed := false
	d0 = g0.dir
	for i := 0; i < 5; i++ {
		g0.Advance()
		if g0.dir != d0 {
			changed = true
		}
	}
	if !changed {
		t.Fatal("memory=0 direction froze")
	}
}

func TestGaussMarkovMeanSpeedTracked(t *testing.T) {
	bounds := geom.Square(1e6)
	g := NewGaussMarkov(bounds, 0.6, 2, 1, rng.New(5))
	var sum float64
	const n = 5000
	for i := 0; i < n; i++ {
		g.Advance()
		sum += g.speed
	}
	mean := sum / n
	if mean < 1.6 || mean > 2.4 {
		t.Fatalf("long-run mean speed = %v, want approx 2", mean)
	}
}

func TestGaussMarkovSmootherThanRandomWalk(t *testing.T) {
	// With high memory, consecutive direction changes must be smaller on
	// average than the random walk's uniform redraws.
	bounds := geom.Square(1e6)
	g := NewGaussMarkov(bounds, 0.9, 2, 1, rng.New(6))
	var gmDelta float64
	prev := g.dir
	const n = 2000
	for i := 0; i < n; i++ {
		g.Advance()
		gmDelta += math.Abs(angleDiff(g.dir, prev))
		prev = g.dir
	}
	gmDelta /= n
	// Uniform redraw expected |delta| is pi/2 on a circle.
	if gmDelta > 1.0 {
		t.Fatalf("gauss-markov mean direction change %v rad, want well below uniform redraw", gmDelta)
	}
}

func angleDiff(a, b float64) float64 {
	d := math.Mod(a-b, 2*math.Pi)
	if d > math.Pi {
		d -= 2 * math.Pi
	}
	if d < -math.Pi {
		d += 2 * math.Pi
	}
	return d
}

func TestGaussMarkovDeterministic(t *testing.T) {
	bounds := geom.Square(500)
	a := NewGaussMarkov(bounds, 0.7, 1.5, 1, rng.New(7))
	b := NewGaussMarkov(bounds, 0.7, 1.5, 1, rng.New(7))
	for i := 0; i < 50; i++ {
		a.Advance()
		b.Advance()
		if a.Position(a.segStart) != b.Position(b.segStart) {
			t.Fatalf("same-seed Gauss-Markov walkers diverged at step %d", i)
		}
	}
}

func TestCloneReplaysTrajectory(t *testing.T) {
	bounds := geom.Square(500)
	models := map[string]func() Model{
		"random-walk":     func() Model { return NewRandomWalk(bounds, 0, 2, 20, rng.New(5)) },
		"random-waypoint": func() Model { return NewRandomWaypoint(bounds, 0.5, 2, 1, rng.New(6)) },
		"gauss-markov":    func() Model { return NewGaussMarkov(bounds, 0.7, 1.5, 5, rng.New(7)) },
		"static":          func() Model { return &Static{P: geom.Vec2{X: 3, Y: 4}} },
	}
	for name, mk := range models {
		orig := mk()
		// Advance the original through a few segments first, so the clone
		// captures mid-trajectory state.
		for i := 0; i < 3; i++ {
			if nc := orig.NextChange(); nc < math.Inf(1) {
				orig.Advance()
			}
		}
		clone := orig.Clone()
		t0 := orig.NextChange()
		if t0 == math.Inf(1) {
			t0 = 100
		}
		for k := 0; k < 5; k++ {
			tt := t0 + float64(k)*3.3
			if orig.NextChange() <= tt {
				orig.Advance()
				clone.Advance()
			}
			a, b := orig.Position(tt), clone.Position(tt)
			if a != b {
				t.Fatalf("%s: clone diverged at t=%v: %v vs %v", name, tt, a, b)
			}
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	w := NewRandomWalk(geom.Square(100), 0, 2, 1, rng.New(1))
	c := w.Clone().(*RandomWalk)
	// Advancing the original must not disturb the clone's stream.
	before := c.Position(0.5)
	w.Advance()
	w.Advance()
	if got := c.Position(0.5); got != before {
		t.Fatalf("advancing the original moved the clone: %v vs %v", got, before)
	}
}

func TestMaxSpeedBounds(t *testing.T) {
	bounds := geom.Square(500)
	if s := NewRandomWalk(bounds, 0, 2, 20, rng.New(1)).MaxSpeed(); s != 2 {
		t.Fatalf("random walk MaxSpeed = %v", s)
	}
	if s := NewRandomWaypoint(bounds, 0, 3, 1, rng.New(1)).MaxSpeed(); s != 3 {
		t.Fatalf("waypoint MaxSpeed = %v", s)
	}
	if s := (&Static{}).MaxSpeed(); s != 0 {
		t.Fatalf("static MaxSpeed = %v", s)
	}
	if s := NewGaussMarkov(bounds, 0.5, 2, 5, rng.New(1)).MaxSpeed(); !math.IsInf(s, 1) {
		t.Fatalf("gauss-markov MaxSpeed = %v, want +Inf (unbounded)", s)
	}
}

// TestPositionLipschitz verifies the drift bound the spatial index relies
// on: |Position(t2)-Position(t1)| <= MaxSpeed*(t2-t1), across Advance.
func TestPositionLipschitz(t *testing.T) {
	w := NewRandomWalk(geom.Square(200), 0, 2, 5, rng.New(11))
	prevT := 0.0
	prev := w.Position(0)
	for step := 1; step <= 200; step++ {
		tt := float64(step) * 0.7
		for w.NextChange() <= tt {
			w.Advance()
		}
		p := w.Position(tt)
		if d := p.Dist(prev); d > w.MaxSpeed()*(tt-prevT)+1e-9 {
			t.Fatalf("drift %v over %v s exceeds MaxSpeed bound", d, tt-prevT)
		}
		prev, prevT = p, tt
	}
}
