package mobility

import (
	"math"

	"aedbmls/internal/geom"
	"aedbmls/internal/rng"
)

// GaussMarkov implements the Gauss-Markov mobility model (Liang & Haas):
// at fixed update intervals, speed and direction evolve as first-order
// autoregressive processes
//
//	s_t = a*s_{t-1} + (1-a)*meanSpeed + sqrt(1-a^2) * sigmaS * N(0,1)
//	d_t = a*d_{t-1} + (1-a)*meanDir   + sqrt(1-a^2) * sigmaD * N(0,1)
//
// where a in [0,1] is the memory level: a = 1 is straight-line motion,
// a = 0 is memoryless (Brownian-like). Near the arena borders the mean
// direction is steered towards the centre, the standard edge treatment
// keeping trajectories inside without hard reflections.
//
// The model complements the paper's random walk for mobility-sensitivity
// ablations: it produces smoother, temporally correlated movement at the
// same average speed.
type GaussMarkov struct {
	Bounds    geom.Rect
	Memory    float64 // a
	MeanSpeed float64
	SigmaS    float64
	SigmaD    float64 // radians
	Interval  float64

	rng      *rng.Rand
	pos      geom.Vec2
	speed    float64
	dir      float64
	meanDir  float64
	segStart float64
}

// NewGaussMarkov creates a walker at a uniform position with the given
// memory level (0..1) and mean speed.
func NewGaussMarkov(bounds geom.Rect, memory, meanSpeed, interval float64, r *rng.Rand) *GaussMarkov {
	if memory < 0 {
		memory = 0
	}
	if memory > 1 {
		memory = 1
	}
	g := &GaussMarkov{
		Bounds:    bounds,
		Memory:    memory,
		MeanSpeed: meanSpeed,
		SigmaS:    meanSpeed / 4,
		SigmaD:    math.Pi / 4,
		Interval:  interval,
		rng:       r,
		pos:       geom.Vec2{X: r.Range(bounds.MinX, bounds.MaxX), Y: r.Range(bounds.MinY, bounds.MaxY)},
		speed:     meanSpeed,
		dir:       r.Range(0, 2*math.Pi),
	}
	g.meanDir = g.dir
	return g
}

// Position implements Model.
func (g *GaussMarkov) Position(t float64) geom.Vec2 {
	dt := t - g.segStart
	if dt < 0 {
		dt = 0
	}
	raw := g.pos.Add(geom.Unit(g.dir).Scale(g.speed * dt))
	p, _, _ := g.Bounds.Reflect(raw)
	return p
}

// NextChange implements Model.
func (g *GaussMarkov) NextChange() float64 { return g.segStart + g.Interval }

// Advance implements Model: one autoregressive update of speed and
// direction.
func (g *GaussMarkov) Advance() {
	end := g.segStart + g.Interval
	g.pos = g.Position(end)
	g.segStart = end

	// Border steering: inside the margin, pull the mean direction to the
	// arena centre.
	margin := 0.1 * math.Min(g.Bounds.Width(), g.Bounds.Height())
	centre := geom.Vec2{X: (g.Bounds.MinX + g.Bounds.MaxX) / 2, Y: (g.Bounds.MinY + g.Bounds.MaxY) / 2}
	nearEdge := g.pos.X < g.Bounds.MinX+margin || g.pos.X > g.Bounds.MaxX-margin ||
		g.pos.Y < g.Bounds.MinY+margin || g.pos.Y > g.Bounds.MaxY-margin
	if nearEdge {
		to := centre.Sub(g.pos)
		g.meanDir = math.Atan2(to.Y, to.X)
	}

	a := g.Memory
	noise := math.Sqrt(1 - a*a)
	g.speed = a*g.speed + (1-a)*g.MeanSpeed + noise*g.SigmaS*g.rng.NormFloat64()
	if g.speed < 0 {
		g.speed = 0
	}
	g.dir = a*g.dir + (1-a)*g.meanDir + noise*g.SigmaD*g.rng.NormFloat64()
}

// Clone implements Model.
func (g *GaussMarkov) Clone() Model {
	c := *g
	c.rng = g.rng.Clone()
	return &c
}

// CloneInto implements Model.
func (g *GaussMarkov) CloneInto(dst Model) Model {
	d, ok := dst.(*GaussMarkov)
	if !ok || d == nil {
		return g.Clone()
	}
	r := reuseRng(d.rng, g.rng)
	*d = *g
	d.rng = r
	return d
}

// MaxSpeed implements Model: the autoregressive speed process has
// unbounded Gaussian noise, so no finite speed bound exists.
func (g *GaussMarkov) MaxSpeed() float64 { return math.Inf(1) }
