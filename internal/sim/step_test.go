package sim

import "testing"

func TestPendingClosuresCounting(t *testing.T) {
	s := New()
	if s.PendingClosures() != 0 {
		t.Fatal("fresh simulator reports pending closures")
	}
	s.Schedule(1, func() {})
	s.AtTagged(2, 1, 0, 0)
	ev := s.At(3, func() {})
	if got := s.PendingClosures(); got != 2 {
		t.Fatalf("PendingClosures = %d, want 2 (tagged events must not count)", got)
	}
	ev.Cancel()
	if got := s.PendingClosures(); got != 1 {
		t.Fatalf("PendingClosures = %d after Cancel, want 1 (cancelled closures stop counting)", got)
	}
	ev.Cancel() // double cancel must not decrement twice
	if got := s.PendingClosures(); got != 1 {
		t.Fatalf("PendingClosures = %d after double Cancel, want 1", got)
	}
	s.SetHandler(func(uint16, int32, int32) {})
	s.RunUntil(2.5)
	if got := s.PendingClosures(); got != 0 {
		t.Fatalf("PendingClosures = %d after running to 2.5, want 0 (live closure fired, cancelled one is dead)", got)
	}
	s.Run()
	if got := s.PendingClosures(); got != 0 {
		t.Fatalf("PendingClosures = %d after draining, want 0", got)
	}
}

func TestPendingClosuresAtFront(t *testing.T) {
	s := New()
	s.AtFront(1, func() {})
	if got := s.PendingClosures(); got != 1 {
		t.Fatalf("PendingClosures = %d after AtFront, want 1", got)
	}
	s.Run()
	if got := s.PendingClosures(); got != 0 {
		t.Fatalf("PendingClosures = %d after Run, want 0", got)
	}
}

func TestStepUntil(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(1, func() { order = append(order, 1) })
	s.Schedule(2, func() { order = append(order, 2) })
	s.Schedule(4, func() { order = append(order, 4) })

	if !s.StepUntil(3) {
		t.Fatal("first step refused")
	}
	if s.Now() != 1 || len(order) != 1 {
		t.Fatalf("after one step: now=%v order=%v", s.Now(), order)
	}
	if !s.StepUntil(3) {
		t.Fatal("second step refused")
	}
	if s.StepUntil(3) {
		t.Fatal("stepped past the time limit")
	}
	if s.Now() != 2 {
		t.Fatalf("clock advanced past last executed event: %v", s.Now())
	}
	if !s.StepUntil(10) || len(order) != 3 {
		t.Fatalf("final step failed: order=%v", order)
	}
	if s.StepUntil(10) {
		t.Fatal("stepped on an empty event list")
	}
}

func TestStepUntilDrainsCancelled(t *testing.T) {
	s := New()
	ev := s.Schedule(1, func() { t.Fatal("cancelled closure fired") })
	ev.Cancel()
	if s.PendingClosures() != 0 {
		t.Fatal("cancelled closure still counted as pending")
	}
	if !s.StepUntil(5) {
		t.Fatal("cancelled closure did not count as a drained step")
	}
	if s.Now() != 0 {
		t.Fatalf("draining a cancelled closure moved the clock to %v", s.Now())
	}
}

// TestStepUntilMatchesRunUntil pins the equivalence the quiescence loop
// relies on: stepping one event at a time executes the exact schedule
// RunUntil would.
func TestStepUntilMatchesRunUntil(t *testing.T) {
	build := func() (*Simulator, *[]float64) {
		s := New()
		var log []float64
		s.SetHandler(func(kind uint16, a, b int32) { log = append(log, s.Now()) })
		for i := 0; i < 5; i++ {
			tt := float64(i%3) + 0.5
			s.AtTagged(tt, 1, int32(i), 0)
			s.At(tt, func() { log = append(log, -s.Now()) })
		}
		return s, &log
	}
	a, alog := build()
	a.RunUntil(10)
	b, blog := build()
	for b.StepUntil(10) {
	}
	if len(*alog) != len(*blog) {
		t.Fatalf("schedules diverge: %v vs %v", *alog, *blog)
	}
	for i := range *alog {
		if (*alog)[i] != (*blog)[i] {
			t.Fatalf("schedules diverge at %d: %v vs %v", i, *alog, *blog)
		}
	}
}
