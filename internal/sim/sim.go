// Package sim implements a minimal discrete-event simulation engine: a
// future event list ordered by time with deterministic tie-breaking, and
// cancellable events.
//
// It plays the role ns-3's scheduler plays in the paper: the MANET
// substrate (beacons, frame receptions, protocol timers, mobility waypoint
// changes) is expressed entirely as events against this engine, so a whole
// network simulation is a single goroutine and is bit-for-bit reproducible.
package sim

import "container/heap"

// Event is a scheduled callback. Events are created by Simulator.Schedule
// and may be cancelled before they fire.
type Event struct {
	time      float64
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

// Time returns the simulation time at which the event fires (or would have
// fired, if cancelled).
func (e *Event) Time() float64 { return e.time }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() { e.cancelled = true }

// Cancelled reports whether Cancel was called.
func (e *Event) Cancelled() bool { return e.cancelled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq // FIFO among simultaneous events
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Simulator owns the simulation clock and the future event list. It is not
// safe for concurrent use; one simulation runs on one goroutine (many
// simulations run in parallel at a higher level).
type Simulator struct {
	now     float64
	seq     uint64
	events  eventHeap
	stopped bool
	fired   uint64
}

// New returns an empty simulator with the clock at 0.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current simulation time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// Fired returns the number of events executed so far (useful for
// instrumentation and benchmarks).
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of scheduled, not-yet-fired events, including
// cancelled events that have not been drained yet.
func (s *Simulator) Pending() int { return len(s.events) }

// Schedule runs fn after delay seconds of simulated time. A negative delay
// is treated as zero. Events scheduled for the same instant fire in
// scheduling order.
func (s *Simulator) Schedule(delay float64, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return s.At(s.now+delay, fn)
}

// At runs fn at absolute simulation time t. If t is in the past, the event
// fires at the current time (never before already-scheduled same-time
// events).
func (s *Simulator) At(t float64, fn func()) *Event {
	if t < s.now {
		t = s.now
	}
	e := &Event{time: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, e)
	return e
}

// Stop makes Run return after the currently executing event completes.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events until the event list is empty or Stop is called.
func (s *Simulator) Run() {
	s.RunUntil(-1)
}

// RunUntil executes events with time <= until (all events if until < 0).
// The clock is left at the time of the last executed event, or advanced to
// until if that is later and until >= 0.
func (s *Simulator) RunUntil(until float64) {
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		next := s.events[0]
		if until >= 0 && next.time > until {
			break
		}
		heap.Pop(&s.events)
		if next.cancelled {
			continue
		}
		s.now = next.time
		s.fired++
		next.fn()
	}
	if until >= 0 && s.now < until {
		s.now = until
	}
}
