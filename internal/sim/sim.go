// Package sim implements a minimal discrete-event simulation engine: a
// future event list ordered by time with deterministic tie-breaking, and
// cancellable events.
//
// It plays the role ns-3's scheduler plays in the paper: the MANET
// substrate (beacons, frame receptions, protocol timers, mobility waypoint
// changes) is expressed entirely as events against this engine, so a whole
// network simulation is a single goroutine and is bit-for-bit reproducible.
//
// The engine offers two scheduling flavours:
//
//   - Closure events (Schedule/At) carry an arbitrary func() and return a
//     cancellable *Event handle. They allocate, and are meant for
//     low-frequency work such as protocol timers.
//   - Tagged events (ScheduleTagged/AtTagged) carry only a small integer
//     payload (kind, a, b) dispatched through the simulator's handler.
//     They live inline in the heap — scheduling one performs zero heap
//     allocations — and, because their payload is plain data, a pending
//     tagged-event schedule can be captured into a snapshot and replayed
//     in a fresh simulator (see SnapshotEvents/Restore). The MANET hot
//     path (beacons, mobility changes, frame boundaries) uses these.
package sim

import "sort"

// Event is the handle of a scheduled closure callback. Events are created
// by Schedule/At and may be cancelled before they fire.
type Event struct {
	time      float64
	fn        func()
	sim       *Simulator
	cancelled bool
	popped    bool
}

// Time returns the simulation time at which the event fires (or would have
// fired, if cancelled).
func (e *Event) Time() float64 { return e.time }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. A cancelled closure immediately
// stops counting towards PendingClosures: it can never run code, so
// quiescence detection may ignore it even though its heap slot drains
// only when its firing time passes.
func (e *Event) Cancel() {
	if e.cancelled || e.popped {
		return
	}
	e.cancelled = true
	e.sim.closures--
}

// Cancelled reports whether Cancel was called.
func (e *Event) Cancelled() bool { return e.cancelled }

// TaggedEvent is the serialisable form of one pending tagged event, as
// captured by SnapshotEvents and replayed by Restore.
type TaggedEvent struct {
	Time float64
	Kind uint16
	A, B int32
}

// entry is one future-event-list slot. Closure events point at their
// *Event handle; tagged events keep their payload inline and ev nil.
type entry struct {
	time float64
	seq  uint64
	ev   *Event
	a, b int32
	kind uint16
}

// before is the event ordering: by time, then FIFO among simultaneous
// events via the scheduling sequence number.
func (e entry) before(o entry) bool {
	if e.time != o.time {
		return e.time < o.time
	}
	return e.seq < o.seq
}

// Simulator owns the simulation clock and the future event list. It is not
// safe for concurrent use; one simulation runs on one goroutine (many
// simulations run in parallel at a higher level).
//
// The future event list has two tiers. Events scheduled at runtime live
// in a small min-heap; a schedule restored by Reset/Restore — already
// sorted in firing order by SnapshotEvents — is kept as-is and consumed
// through a cursor instead of being fed through the heap. The earliest
// pending event is the smaller of the two heads under the same (time,
// seq) total order, so the pop sequence is identical to a single heap —
// but a replay simulation's heap only ever holds the handful of
// in-flight frame/timer events, not the whole restored schedule.
// The third tier is the monotone FIFO lane: tagged events whose firing
// times arrive in non-decreasing order (frame-end events, whose time is
// the enqueue time plus a constant frame duration, and pre-sorted
// reception batches) are appended to a plain slice and consumed through
// a cursor, skipping the heap's O(log n) sift entirely. Entries carry
// ordinary sequence numbers, so the three-way head comparison in
// peek/pop yields exactly the (time, seq) total order a single heap
// would — the lane is a pure constant-factor optimisation.
type Simulator struct {
	now      float64
	seq      uint64
	heap     []entry // runtime-scheduled events (min-heap)
	sched    []entry // restored schedule, sorted; consumed from schedIdx
	schedIdx int
	lane     []entry // monotone FIFO lane, sorted by construction; consumed from laneIdx
	laneIdx  int

	stopped   bool
	fired     uint64
	frontUsed bool
	closures  int
	handler   func(kind uint16, a, b int32)
}

// New returns an empty simulator with the clock at 0. Sequence numbers
// start at 1; sequence 0 is reserved for the single AtFront slot.
func New() *Simulator {
	return &Simulator{seq: 1}
}

// Restore builds a simulator whose clock is at now and whose future event
// list holds exactly the given tagged events, which must be sorted in
// their intended firing order (as returned by SnapshotEvents). Relative
// order among same-time events is preserved. The restored sequence
// counter leaves sequence number 0 free for a single AtFront call.
func Restore(now float64, events []TaggedEvent) *Simulator {
	s := &Simulator{}
	s.Reset(now, events)
	return s
}

// Reset rewinds the simulator to the state Restore(now, events) would
// build, reusing the existing heap storage. It is the allocation-free
// Restore for callers (the wave-level instantiation arena) that run many
// short simulations from the same captured schedule. Any previously
// pending events are discarded; the handler must be re-installed with
// SetHandler before a tagged event fires.
func (s *Simulator) Reset(now float64, events []TaggedEvent) {
	// Zero abandoned heap slots so stale *Event references from an
	// early-stopped run are released. (The restored schedule holds only
	// tagged events — no pointers — so it needs no such clearing.)
	for i := range s.heap {
		s.heap[i] = entry{}
	}
	s.heap = s.heap[:0]
	if cap(s.sched) < len(events) {
		s.sched = make([]entry, len(events))
	} else {
		s.sched = s.sched[:len(events)]
	}
	for i, ev := range events {
		s.sched[i] = entry{time: ev.Time, seq: uint64(i) + 1, kind: ev.Kind, a: ev.A, b: ev.B}
	}
	s.schedIdx = 0
	s.lane = s.lane[:0] // tagged entries only: nothing to release
	s.laneIdx = 0
	s.now = now
	s.seq = uint64(len(events)) + 1
	s.stopped = false
	s.fired = 0
	s.frontUsed = false
	s.closures = 0
	s.handler = nil
}

// SetHandler installs the dispatch function for tagged events. It must be
// set before any tagged event fires.
func (s *Simulator) SetHandler(h func(kind uint16, a, b int32)) { s.handler = h }

// Now returns the current simulation time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// Fired returns the number of events executed so far (useful for
// instrumentation and benchmarks).
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of scheduled, not-yet-fired events, including
// cancelled events that have not been drained yet.
func (s *Simulator) Pending() int {
	return len(s.heap) + len(s.sched) - s.schedIdx + len(s.lane) - s.laneIdx
}

// PendingClosures returns the number of live (not cancelled, not yet
// fired) closure events in the event list. Tagged events never count.
//
// The quiescence rule of the MANET layer builds on this: when no closure
// is pending (and no data frame is in flight) the remaining tagged events
// cannot run protocol code, so broadcast metrics are final.
func (s *Simulator) PendingClosures() int { return s.closures }

// heapArity is the branching factor of the future event list. A 4-ary
// layout halves the sift-down depth of the classic binary heap and keeps
// a node's children within two cache lines — pop dominates the replay
// engine's profile, so the constant factor matters. The event ordering is
// a strict total order (time, then unique sequence number), so the pop
// sequence — and therefore every simulation — is bit-identical for any
// correct heap shape.
const heapArity = 4

// push inserts e and restores the heap invariant (hole sift-up: parents
// move down into the hole and e is stored once, instead of swapping the
// 40-byte entries at every level).
func (s *Simulator) push(e entry) {
	h := append(s.heap, entry{})
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / heapArity
		if !e.before(h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = e
	s.heap = h
}

// peek returns the earliest pending entry without removing it: the
// smallest of the restored-schedule head, the FIFO-lane head and the
// heap top under the (time, seq) total order.
func (s *Simulator) peek() (entry, bool) {
	var best entry
	have := false
	if s.schedIdx < len(s.sched) {
		best, have = s.sched[s.schedIdx], true
	}
	if s.laneIdx < len(s.lane) {
		if e := s.lane[s.laneIdx]; !have || e.before(best) {
			best, have = e, true
		}
	}
	if len(s.heap) > 0 {
		if e := s.heap[0]; !have || e.before(best) {
			best, have = e, true
		}
	}
	return best, have
}

// pop removes and returns the earliest entry, consuming the restored
// schedule and the FIFO lane through their cursors and the heap
// otherwise. Sequence numbers are unique, so before() is a strict total
// order and exactly one source holds the minimum.
func (s *Simulator) pop() entry {
	hasLane := s.laneIdx < len(s.lane)
	if s.schedIdx < len(s.sched) {
		e := s.sched[s.schedIdx]
		if (!hasLane || e.before(s.lane[s.laneIdx])) && (len(s.heap) == 0 || e.before(s.heap[0])) {
			s.schedIdx++
			return e // restored entries are tagged: no closure accounting
		}
	}
	if hasLane {
		if e := s.lane[s.laneIdx]; len(s.heap) == 0 || e.before(s.heap[0]) {
			s.laneIdx++
			if s.laneIdx == len(s.lane) {
				// Drained: rewind so the storage is reused, not regrown.
				s.lane, s.laneIdx = s.lane[:0], 0
			}
			return e // lane entries are tagged: no closure accounting
		}
	}
	return s.popHeap()
}

// popHeap removes and returns the earliest heap entry (hole sift-down of
// the displaced last element).
func (s *Simulator) popHeap() entry {
	h := s.heap
	top := h[0]
	if top.ev != nil {
		if !top.ev.cancelled {
			s.closures--
		}
		top.ev.popped = true
	}
	n := len(h) - 1
	last := h[n]
	h[n] = entry{} // release any *Event reference
	h = h[:n]
	s.heap = h
	if n > 0 {
		i := 0
		for {
			c := heapArity*i + 1
			if c >= n {
				break
			}
			end := c + heapArity
			if end > n {
				end = n
			}
			m := c
			for j := c + 1; j < end; j++ {
				if h[j].before(h[m]) {
					m = j
				}
			}
			if !h[m].before(last) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	return top
}

// Schedule runs fn after delay seconds of simulated time. A negative delay
// is treated as zero. Events scheduled for the same instant fire in
// scheduling order.
func (s *Simulator) Schedule(delay float64, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return s.At(s.now+delay, fn)
}

// At runs fn at absolute simulation time t. If t is in the past, the event
// fires at the current time (never before already-scheduled same-time
// events).
func (s *Simulator) At(t float64, fn func()) *Event {
	if t < s.now {
		t = s.now
	}
	e := &Event{time: t, fn: fn, sim: s}
	s.push(entry{time: t, seq: s.seq, ev: e})
	s.seq++
	s.closures++
	return e
}

// AtFront schedules fn at absolute time t ordered BEFORE every
// already-pending event at the same time. It is the restore-path
// primitive: after Restore, the broadcast origination must fire ahead of
// warm-up events that happen to share its instant, exactly as it would
// have in a from-scratch run (where it was scheduled first). Sequence
// number 0 is reserved for this single slot; a second AtFront call on
// the same simulator panics, since two zero-sequence events at one
// instant would tie arbitrarily and break reproducibility.
func (s *Simulator) AtFront(t float64, fn func()) *Event {
	if s.frontUsed {
		panic("sim: AtFront called twice on one simulator")
	}
	s.frontUsed = true
	if t < s.now {
		t = s.now
	}
	e := &Event{time: t, fn: fn, sim: s}
	s.push(entry{time: t, seq: 0, ev: e})
	s.closures++
	return e
}

// ScheduleTagged schedules a tagged event after delay seconds. A negative
// delay is treated as zero. No allocation occurs.
func (s *Simulator) ScheduleTagged(delay float64, kind uint16, a, b int32) {
	if delay < 0 {
		delay = 0
	}
	s.AtTagged(s.now+delay, kind, a, b)
}

// AtTagged schedules a tagged event at absolute time t (clamped to the
// present, like At). No allocation occurs.
func (s *Simulator) AtTagged(t float64, kind uint16, a, b int32) {
	if t < s.now {
		t = s.now
	}
	s.push(entry{time: t, seq: s.seq, kind: kind, a: a, b: b})
	s.seq++
}

// AtTaggedMonotone schedules a tagged event at absolute time t through
// the FIFO lane when the event sorts at or after the current lane tail,
// and falls back to an ordinary heap insertion otherwise. Callers whose
// firing times are non-decreasing by construction — frame-end events at
// enqueue time plus a constant duration, reception batches pre-sorted by
// arrival — get O(1) scheduling and O(1) removal in place of two heap
// sifts; out-of-order stragglers (overlapping transmissions) silently
// take the heap, so the call is always legal. Firing order is identical
// to AtTagged in every case: lane entries consume the same sequence
// counter and the pop path merges all tiers under the (time, seq) total
// order.
func (s *Simulator) AtTaggedMonotone(t float64, kind uint16, a, b int32) {
	if t < s.now {
		t = s.now
	}
	e := entry{time: t, seq: s.seq, kind: kind, a: a, b: b}
	s.seq++
	if n := len(s.lane); n == s.laneIdx || !e.before(s.lane[n-1]) {
		if s.laneIdx == len(s.lane) {
			s.lane, s.laneIdx = s.lane[:0], 0
		}
		s.lane = append(s.lane, e)
		return
	}
	s.push(e)
}

// SnapshotEvents returns every pending tagged event, sorted in firing
// order. ok is false if a live (non-cancelled) closure event is pending:
// closures cannot be serialised, so such a simulator is not snapshottable.
// Cancelled closure events are ignored.
func (s *Simulator) SnapshotEvents() (events []TaggedEvent, ok bool) {
	pending := make([]entry, 0, s.Pending())
	pending = append(pending, s.sched[s.schedIdx:]...)
	pending = append(pending, s.lane[s.laneIdx:]...)
	for _, e := range s.heap {
		if e.ev != nil {
			if e.ev.cancelled {
				continue
			}
			return nil, false
		}
		pending = append(pending, e)
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i].before(pending[j]) })
	events = make([]TaggedEvent, len(pending))
	for i, e := range pending {
		events[i] = TaggedEvent{Time: e.time, Kind: e.kind, A: e.a, B: e.b}
	}
	return events, true
}

// Stop makes Run return after the currently executing event completes.
func (s *Simulator) Stop() { s.stopped = true }

// Run executes events until the event list is empty or Stop is called.
func (s *Simulator) Run() {
	s.RunUntil(-1)
}

// RunUntil executes events with time <= until (all events if until < 0).
// The clock is left at the time of the last executed event, or advanced to
// until if that is later and until >= 0.
func (s *Simulator) RunUntil(until float64) {
	s.stopped = false
	for !s.stopped {
		head, ok := s.peek()
		if !ok || (until >= 0 && head.time > until) {
			break
		}
		next := s.pop()
		if next.ev != nil && next.ev.cancelled {
			continue
		}
		s.now = next.time
		s.fired++
		if next.ev != nil {
			next.ev.fn()
		} else {
			s.handler(next.kind, next.a, next.b)
		}
	}
	if until >= 0 && s.now < until {
		s.now = until
	}
}

// StepUntil executes the single earliest pending event whose time is at
// most until and reports whether one was executed. A popped cancelled
// closure counts as an executed step (its slot drains, nothing runs).
// Unlike RunUntil, the clock is never advanced past the last executed
// event, so callers interleaving StepUntil with state inspection observe
// exactly the event-loop schedule.
func (s *Simulator) StepUntil(until float64) bool {
	head, ok := s.peek()
	if !ok || (until >= 0 && head.time > until) {
		return false
	}
	next := s.pop()
	if next.ev != nil && next.ev.cancelled {
		return true
	}
	s.now = next.time
	s.fired++
	if next.ev != nil {
		next.ev.fn()
	} else {
		s.handler(next.kind, next.a, next.b)
	}
	return true
}

// RunBefore executes every event with time strictly less than cut and
// leaves the clock at the last executed event (it does NOT advance the
// clock to cut). This is the warm-up primitive: running before the
// broadcast start time yields exactly the state a from-scratch simulation
// has when the origination event fires.
func (s *Simulator) RunBefore(cut float64) {
	s.stopped = false
	for !s.stopped {
		head, ok := s.peek()
		if !ok || head.time >= cut {
			break
		}
		next := s.pop()
		if next.ev != nil && next.ev.cancelled {
			continue
		}
		s.now = next.time
		s.fired++
		if next.ev != nil {
			next.ev.fn()
		} else {
			s.handler(next.kind, next.a, next.b)
		}
	}
}
