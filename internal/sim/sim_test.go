package sim

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(3, func() { order = append(order, 3) })
	s.Schedule(1, func() { order = append(order, 1) })
	s.Schedule(2, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events out of scheduling order: %v", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	s := New()
	var at1, at2 float64
	s.Schedule(1.5, func() { at1 = s.Now() })
	s.Schedule(4.25, func() { at2 = s.Now() })
	s.Run()
	if at1 != 1.5 || at2 != 4.25 {
		t.Fatalf("times = %v, %v", at1, at2)
	}
	if s.Now() != 4.25 {
		t.Fatalf("final clock = %v", s.Now())
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.Schedule(1, func() { fired = true })
	e.Cancel()
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("Cancelled() = false")
	}
}

func TestCancelFromEarlierEvent(t *testing.T) {
	s := New()
	fired := false
	late := s.Schedule(2, func() { fired = true })
	s.Schedule(1, func() { late.Cancel() })
	s.Run()
	if fired {
		t.Fatal("event cancelled mid-run still fired")
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var hits []float64
	s.Schedule(1, func() {
		hits = append(hits, s.Now())
		s.Schedule(1, func() {
			hits = append(hits, s.Now())
		})
	})
	s.Run()
	if len(hits) != 2 || hits[0] != 1 || hits[1] != 2 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []float64
	for _, tt := range []float64{1, 2, 3, 4} {
		tt := tt
		s.At(tt, func() { fired = append(fired, tt) })
	}
	s.RunUntil(2.5)
	if len(fired) != 2 {
		t.Fatalf("fired %v before t=2.5", fired)
	}
	if s.Now() != 2.5 {
		t.Fatalf("clock = %v, want 2.5", s.Now())
	}
	s.RunUntil(10)
	if len(fired) != 4 {
		t.Fatalf("fired %v after resume", fired)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	s := New()
	s.RunUntil(42)
	if s.Now() != 42 {
		t.Fatalf("clock = %v, want 42", s.Now())
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 0; i < 10; i++ {
		s.Schedule(float64(i), func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("executed %d events after Stop at 3", count)
	}
	// Run resumes after a Stop.
	s.Run()
	if count != 10 {
		t.Fatalf("executed %d events total, want 10", count)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	s := New()
	s.Schedule(5, func() {})
	s.RunUntil(5)
	var at float64 = -1
	s.Schedule(-3, func() { at = s.Now() })
	s.Run()
	if at != 5 {
		t.Fatalf("negative-delay event fired at %v, want now (5)", at)
	}
}

func TestAtPastClamped(t *testing.T) {
	s := New()
	s.Schedule(5, func() {})
	s.RunUntil(5)
	var at float64 = -1
	s.At(1, func() { at = s.Now() })
	s.Run()
	if at != 5 {
		t.Fatalf("past event fired at %v, want 5", at)
	}
}

func TestFiredAndPending(t *testing.T) {
	s := New()
	s.Schedule(1, func() {})
	s.Schedule(2, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d", s.Pending())
	}
	s.Run()
	if s.Fired() != 2 || s.Pending() != 0 {
		t.Fatalf("Fired=%d Pending=%d", s.Fired(), s.Pending())
	}
}

func TestManyEventsStaySorted(t *testing.T) {
	s := New()
	// Pseudo-random times via a small LCG; verify the engine visits them
	// in non-decreasing order.
	x := uint32(12345)
	last := -1.0
	ok := true
	for i := 0; i < 5000; i++ {
		x = x*1664525 + 1013904223
		tt := float64(x%100000) / 100
		s.At(tt, func() {
			if s.Now() < last {
				ok = false
			}
			last = s.Now()
		})
	}
	s.Run()
	if !ok {
		t.Fatal("events fired out of time order")
	}
	if s.Fired() != 5000 {
		t.Fatalf("Fired = %d", s.Fired())
	}
}

func TestTaggedEventsDispatch(t *testing.T) {
	s := New()
	type hit struct {
		kind uint16
		a, b int32
		at   float64
	}
	var hits []hit
	s.SetHandler(func(kind uint16, a, b int32) {
		hits = append(hits, hit{kind, a, b, s.Now()})
	})
	s.ScheduleTagged(2, 7, 1, 2)
	s.AtTagged(1, 9, 3, 4)
	s.Run()
	if len(hits) != 2 {
		t.Fatalf("hits = %d", len(hits))
	}
	if hits[0] != (hit{9, 3, 4, 1}) || hits[1] != (hit{7, 1, 2, 2}) {
		t.Fatalf("hits = %+v", hits)
	}
}

func TestTaggedAndClosureInterleave(t *testing.T) {
	s := New()
	var order []string
	s.SetHandler(func(kind uint16, a, b int32) { order = append(order, "tagged") })
	s.At(1, func() { order = append(order, "closure") })
	s.AtTagged(1, 1, 0, 0)
	s.At(1, func() { order = append(order, "closure2") })
	s.Run()
	want := []string{"closure", "tagged", "closure2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (FIFO across flavours)", order, want)
		}
	}
}

func TestRunBefore(t *testing.T) {
	s := New()
	var fired []float64
	for _, tt := range []float64{1, 2, 3, 4} {
		tt := tt
		s.At(tt, func() { fired = append(fired, tt) })
	}
	s.RunBefore(3)
	if len(fired) != 2 {
		t.Fatalf("RunBefore(3) fired %v, want events strictly before 3", fired)
	}
	if s.Now() != 2 {
		t.Fatalf("clock = %v, want last executed event time 2", s.Now())
	}
	s.Run()
	if len(fired) != 4 {
		t.Fatalf("resume after RunBefore fired %v", fired)
	}
}

func TestSnapshotEventsAndRestore(t *testing.T) {
	s := New()
	s.SetHandler(func(uint16, int32, int32) {})
	s.AtTagged(5, 1, 10, 0)
	s.AtTagged(3, 2, 20, 0)
	s.AtTagged(5, 3, 30, 0)
	events, ok := s.SnapshotEvents()
	if !ok {
		t.Fatal("tagged-only simulator not snapshottable")
	}
	if len(events) != 3 || events[0].Kind != 2 || events[1].Kind != 1 || events[2].Kind != 3 {
		t.Fatalf("events = %+v, want firing order 2,1,3", events)
	}

	r := Restore(1.5, events)
	var kinds []uint16
	r.SetHandler(func(kind uint16, a, b int32) { kinds = append(kinds, kind) })
	if r.Now() != 1.5 {
		t.Fatalf("restored clock = %v", r.Now())
	}
	r.Run()
	if len(kinds) != 3 || kinds[0] != 2 || kinds[1] != 1 || kinds[2] != 3 {
		t.Fatalf("restored firing order = %v", kinds)
	}
}

func TestSnapshotEventsRejectsClosures(t *testing.T) {
	s := New()
	s.At(1, func() {})
	if _, ok := s.SnapshotEvents(); ok {
		t.Fatal("closure event accepted by SnapshotEvents")
	}
	// A cancelled closure is ignorable.
	s2 := New()
	s2.At(1, func() {}).Cancel()
	s2.AtTagged(2, 1, 0, 0)
	events, ok := s2.SnapshotEvents()
	if !ok || len(events) != 1 {
		t.Fatalf("cancelled closure blocked snapshot: ok=%v events=%d", ok, len(events))
	}
}

func TestAtFrontOrdersBeforeSameTimePending(t *testing.T) {
	s := New()
	s.SetHandler(func(uint16, int32, int32) {})
	s.AtTagged(5, 1, 0, 0)
	s.AtTagged(5, 2, 0, 0)
	events, _ := s.SnapshotEvents()

	r := Restore(0, events)
	var order []string
	r.SetHandler(func(kind uint16, a, b int32) { order = append(order, "pending") })
	r.AtFront(5, func() { order = append(order, "front") })
	// A regular At at the same time goes after the pending events.
	r.At(5, func() { order = append(order, "late") })
	r.Run()
	want := []string{"front", "pending", "pending", "late"}
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTaggedSchedulingDoesNotAllocate(t *testing.T) {
	s := New()
	s.SetHandler(func(kind uint16, a, b int32) {
		if kind == 1 && a < 1000 {
			s.ScheduleTagged(1, 1, a+1, 0)
		}
	})
	s.AtTagged(0, 1, 0, 0)
	// Warm the heap storage, then measure steady-state allocations.
	s.RunUntil(100)
	allocs := testing.AllocsPerRun(100, func() {
		s.ScheduleTagged(0.5, 2, 0, 0)
		s.RunUntil(s.Now() + 0.6)
	})
	if allocs > 0 {
		t.Fatalf("tagged event path allocates %v per op, want 0", allocs)
	}
}

func TestAtFrontSingleUse(t *testing.T) {
	s := Restore(0, nil)
	s.AtFront(1, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("second AtFront did not panic")
		}
	}()
	s.AtFront(1, func() {})
}

func TestAtFrontOnFreshSimulatorBeatsFirstAt(t *testing.T) {
	// Regular sequence numbers start at 1, so the reserved front slot
	// orders first even against the very first At event.
	s := New()
	var order []string
	s.At(5, func() { order = append(order, "at") })
	s.AtFront(5, func() { order = append(order, "front") })
	s.Run()
	if len(order) != 2 || order[0] != "front" || order[1] != "at" {
		t.Fatalf("order = %v, want front before the first At event", order)
	}
}
