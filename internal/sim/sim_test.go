package sim

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(3, func() { order = append(order, 3) })
	s.Schedule(1, func() { order = append(order, 1) })
	s.Schedule(2, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events out of scheduling order: %v", order)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	s := New()
	var at1, at2 float64
	s.Schedule(1.5, func() { at1 = s.Now() })
	s.Schedule(4.25, func() { at2 = s.Now() })
	s.Run()
	if at1 != 1.5 || at2 != 4.25 {
		t.Fatalf("times = %v, %v", at1, at2)
	}
	if s.Now() != 4.25 {
		t.Fatalf("final clock = %v", s.Now())
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.Schedule(1, func() { fired = true })
	e.Cancel()
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("Cancelled() = false")
	}
}

func TestCancelFromEarlierEvent(t *testing.T) {
	s := New()
	fired := false
	late := s.Schedule(2, func() { fired = true })
	s.Schedule(1, func() { late.Cancel() })
	s.Run()
	if fired {
		t.Fatal("event cancelled mid-run still fired")
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var hits []float64
	s.Schedule(1, func() {
		hits = append(hits, s.Now())
		s.Schedule(1, func() {
			hits = append(hits, s.Now())
		})
	})
	s.Run()
	if len(hits) != 2 || hits[0] != 1 || hits[1] != 2 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []float64
	for _, tt := range []float64{1, 2, 3, 4} {
		tt := tt
		s.At(tt, func() { fired = append(fired, tt) })
	}
	s.RunUntil(2.5)
	if len(fired) != 2 {
		t.Fatalf("fired %v before t=2.5", fired)
	}
	if s.Now() != 2.5 {
		t.Fatalf("clock = %v, want 2.5", s.Now())
	}
	s.RunUntil(10)
	if len(fired) != 4 {
		t.Fatalf("fired %v after resume", fired)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	s := New()
	s.RunUntil(42)
	if s.Now() != 42 {
		t.Fatalf("clock = %v, want 42", s.Now())
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 0; i < 10; i++ {
		s.Schedule(float64(i), func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("executed %d events after Stop at 3", count)
	}
	// Run resumes after a Stop.
	s.Run()
	if count != 10 {
		t.Fatalf("executed %d events total, want 10", count)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	s := New()
	s.Schedule(5, func() {})
	s.RunUntil(5)
	var at float64 = -1
	s.Schedule(-3, func() { at = s.Now() })
	s.Run()
	if at != 5 {
		t.Fatalf("negative-delay event fired at %v, want now (5)", at)
	}
}

func TestAtPastClamped(t *testing.T) {
	s := New()
	s.Schedule(5, func() {})
	s.RunUntil(5)
	var at float64 = -1
	s.At(1, func() { at = s.Now() })
	s.Run()
	if at != 5 {
		t.Fatalf("past event fired at %v, want 5", at)
	}
}

func TestFiredAndPending(t *testing.T) {
	s := New()
	s.Schedule(1, func() {})
	s.Schedule(2, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d", s.Pending())
	}
	s.Run()
	if s.Fired() != 2 || s.Pending() != 0 {
		t.Fatalf("Fired=%d Pending=%d", s.Fired(), s.Pending())
	}
}

func TestManyEventsStaySorted(t *testing.T) {
	s := New()
	// Pseudo-random times via a small LCG; verify the engine visits them
	// in non-decreasing order.
	x := uint32(12345)
	last := -1.0
	ok := true
	for i := 0; i < 5000; i++ {
		x = x*1664525 + 1013904223
		tt := float64(x%100000) / 100
		s.At(tt, func() {
			if s.Now() < last {
				ok = false
			}
			last = s.Now()
		})
	}
	s.Run()
	if !ok {
		t.Fatal("events fired out of time order")
	}
	if s.Fired() != 5000 {
		t.Fatalf("Fired = %d", s.Fired())
	}
}
