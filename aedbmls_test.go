package aedbmls

import (
	"testing"
)

func tinyTuneConfig() Config {
	return Config{
		Density:     100,
		Seed:        5,
		Populations: 2, Workers: 2, EvalsPerWorker: 15,
		ResetPeriod: 6,
		Committee:   3,
	}
}

func TestTune(t *testing.T) {
	res, err := Tune(tinyTuneConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Configs) == 0 {
		t.Fatal("empty front")
	}
	if res.Evaluations == 0 || res.Duration <= 0 {
		t.Fatalf("bookkeeping: evals=%d duration=%v", res.Evaluations, res.Duration)
	}
	for i, c := range res.Configs {
		if c.BroadcastTime >= 2.0 {
			t.Fatalf("config %d violates the broadcast-time constraint: %v", i, c.BroadcastTime)
		}
		if c.BorderThresholdDBm < -95 || c.BorderThresholdDBm > -70 {
			t.Fatalf("config %d outside Table III domain: border=%v", i, c.BorderThresholdDBm)
		}
		if i > 0 && c.Energy < res.Configs[i-1].Energy {
			t.Fatal("front not sorted by energy")
		}
	}
}

func TestTuneRejectsBadDensity(t *testing.T) {
	if _, err := Tune(Config{}); err == nil {
		t.Fatal("zero density accepted")
	}
}

func TestTuneDeterministicMode(t *testing.T) {
	cfg := tinyTuneConfig()
	cfg.Deterministic = true
	r1, err := Tune(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Tune(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Configs) != len(r2.Configs) {
		t.Fatalf("deterministic runs differ in front size: %d vs %d", len(r1.Configs), len(r2.Configs))
	}
	for i := range r1.Configs {
		if r1.Configs[i] != r2.Configs[i] {
			t.Fatalf("deterministic runs differ at config %d", i)
		}
	}
}

func TestSimulateMatchesTunedMetrics(t *testing.T) {
	cfg := tinyTuneConfig()
	cfg.Deterministic = true
	res, err := Tune(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Re-simulating a tuned config on the same committee must reproduce
	// its metrics exactly. (Tune used a 3-network committee; Simulate's
	// default is 10, so rebuild the comparison at the same committee via
	// the exported API: use the full-committee re-simulation only for
	// shape.)
	pc := res.Configs[0]
	got, err := Simulate(cfg.Density, cfg.Seed, pc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Coverage < 0 || got.BroadcastTime < 0 {
		t.Fatalf("degenerate re-simulation: %+v", got)
	}
	// Parameters must be untouched by Simulate.
	if got.MinDelay != pc.MinDelay || got.BorderThresholdDBm != pc.BorderThresholdDBm {
		t.Fatal("Simulate modified the configuration parameters")
	}
}

func TestSimulateRejectsBadDensity(t *testing.T) {
	if _, err := Simulate(0, 1, ProtocolConfig{}); err == nil {
		t.Fatal("zero density accepted")
	}
}
