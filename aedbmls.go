package aedbmls

import (
	"fmt"
	"time"

	"aedbmls/internal/aedb"
	"aedbmls/internal/core"
	"aedbmls/internal/eval"
)

// Config tunes the AEDB protocol for one network density with AEDB-MLS.
// Zero-valued fields take the paper's defaults (8 populations x 12 workers
// x 250 evaluations, alpha 0.2, reset every 50 iterations, a 100-solution
// AGA archive and a 10-network evaluation committee).
type Config struct {
	// Density is the network density in devices/km^2 (the paper studies
	// 100, 200 and 300; other values scale by the 0.25 km^2 arena).
	Density int
	// Seed drives the frozen network committee and all randomness.
	Seed uint64
	// Populations, Workers and EvalsPerWorker shape the parallel budget.
	Populations, Workers, EvalsPerWorker int
	// Alpha is the BLX-α perturbation magnitude in (0, 1).
	Alpha float64
	// ResetPeriod is the number of local-search iterations between
	// population re-initialisations from the elite archive.
	ResetPeriod int
	// Committee is the number of frozen networks per evaluation.
	Committee int
	// NeighborhoodSize batches the local search: each iteration generates
	// this many candidate moves and evaluates them as one committee wave
	// through the batched evaluation engine. 0 or 1 is the paper's
	// single-candidate step.
	NeighborhoodSize int
	// ScenarioWorkers fans each evaluation's committee across up to this
	// many goroutines (committee-parallel evaluation, bit-identical
	// metrics). 0 or 1 evaluates the committee serially, which is right
	// when Populations x Workers already saturates the cores.
	ScenarioWorkers int
	// BatchWorkers caps the goroutines of one batched evaluation wave set
	// (0 = GOMAXPROCS).
	BatchWorkers int
	// ReferencePath opts every evaluation out of the default fast engine
	// (beacon-tape replay, broadcast-quiescence early stop, buffer-reuse
	// arenas, shared masked warm-ups) and into the full-tail reference
	// simulations. Metrics are bit-identical either way — the golden
	// corpus and equivalence tests of internal/eval hold the engines to
	// that — so this knob trades speed for complete per-node accounting
	// and is primarily the comparison arm of soak runs.
	ReferencePath bool
	// UnsharedTapes opts this run's evaluation problem out of the
	// process-wide beacon-tape cache (eval.WithSharedTapes): every
	// committee scenario then records its own tape instead of replaying
	// the shared cross-Problem, cross-density recording. Metrics are
	// bit-identical either way; the opt-out exists for cache-pressure
	// control and as the comparison arm of the sharing tests.
	UnsharedTapes bool
	// ExactPhysics evaluates every reception power through the reference
	// per-call path-loss physics (eval.WithExactPhysics) instead of the
	// default fused d2-space kernel. The arms agree within a ULP-scaled
	// bound per reception power and on every discrete metric; the
	// continuous energy sums differ in the last bits, so runs that must
	// extend previously recorded reference-physics results bit-for-bit
	// set this and pay the per-candidate square root back.
	ExactPhysics bool
	// Fidelity enables the multi-fidelity evaluation ladder
	// (eval.WithFidelity): batched neighborhood evaluations are first
	// screened on a cheap committee prefix (Fidelity.Committee scenarios,
	// optionally truncated at Fidelity.Horizon of the broadcast window)
	// and only candidates within PromoteEps of the current reference
	// front are re-evaluated at full fidelity. Screened-out candidates
	// never enter the archive, so reported fronts remain exact
	// full-committee metrics. The zero value keeps every evaluation at
	// full fidelity (bit-identical to previous releases).
	Fidelity eval.Fidelity
	// PromoteEps overrides the ladder's promotion slack
	// (eval.WithPromoteEpsilon); 0 keeps eval.DefaultPromoteEps. Only
	// meaningful when Fidelity is enabled.
	PromoteEps float64
	// Deterministic selects the bit-reproducible round-robin execution
	// instead of the threaded one.
	Deterministic bool
}

// ProtocolConfig is one tuned AEDB parameter set together with the
// averaged metrics it achieved on the evaluation committee.
type ProtocolConfig struct {
	// The five AEDB parameters (Table III domains).
	MinDelay           float64 // s
	MaxDelay           float64 // s
	BorderThresholdDBm float64
	MarginDBm          float64
	NeighborsThreshold float64

	// Committee-averaged metrics.
	Energy        float64 // sum of forwarding TX powers, dBm
	Coverage      float64 // devices reached
	Forwardings   float64
	BroadcastTime float64 // s
}

// Result is the outcome of Tune: the Pareto front of protocol
// configurations, ordered by ascending energy.
type Result struct {
	Configs     []ProtocolConfig
	Evaluations int64
	Duration    time.Duration
}

// Tune runs the paper's parallel multi-objective local search and returns
// the trade-off front of AEDB configurations for the given density:
// minimal energy and forwardings, maximal coverage, broadcast time under
// two seconds. Pick the row matching your deployment priorities.
func Tune(cfg Config) (*Result, error) {
	if cfg.Density <= 0 {
		return nil, fmt.Errorf("aedbmls: Density must be positive, got %d", cfg.Density)
	}
	mls := core.DefaultConfig()
	if cfg.Populations > 0 {
		mls.Populations = cfg.Populations
	}
	if cfg.Workers > 0 {
		mls.Workers = cfg.Workers
	}
	if cfg.EvalsPerWorker > 0 {
		mls.EvalsPerWorker = cfg.EvalsPerWorker
	}
	if cfg.Alpha > 0 {
		mls.Alpha = cfg.Alpha
	}
	if cfg.ResetPeriod > 0 {
		mls.ResetPeriod = cfg.ResetPeriod
	}
	mls.Seed = cfg.Seed
	mls.Criteria = core.DefaultAEDBCriteria()
	mls.NeighborhoodSize = cfg.NeighborhoodSize

	var opts []eval.Option
	if cfg.Committee > 0 {
		opts = append(opts, eval.WithCommittee(cfg.Committee))
	}
	if cfg.ScenarioWorkers > 1 {
		opts = append(opts, eval.WithScenarioWorkers(cfg.ScenarioWorkers))
	}
	if cfg.BatchWorkers > 0 {
		opts = append(opts, eval.WithBatchWorkers(cfg.BatchWorkers))
	}
	if cfg.ReferencePath {
		opts = append(opts, eval.WithReferencePath(true))
	}
	if cfg.UnsharedTapes {
		opts = append(opts, eval.WithSharedTapes(false))
	}
	if cfg.ExactPhysics {
		opts = append(opts, eval.WithExactPhysics(true))
	}
	if cfg.Fidelity.Enabled() {
		opts = append(opts, eval.WithFidelity(cfg.Fidelity))
		if cfg.PromoteEps > 0 {
			opts = append(opts, eval.WithPromoteEpsilon(cfg.PromoteEps))
		}
	}
	problem := eval.NewProblem(cfg.Density, cfg.Seed, opts...)

	optimize := core.Optimize
	if cfg.Deterministic {
		optimize = core.OptimizeSequential
	}
	res, err := optimize(problem, mls, nil)
	if err != nil {
		return nil, err
	}

	out := &Result{Evaluations: res.Evaluations, Duration: res.Duration}
	for _, s := range res.Front {
		p := aedb.FromVector(s.X)
		m, _ := eval.MetricsOf(s)
		out.Configs = append(out.Configs, ProtocolConfig{
			MinDelay:           p.MinDelay,
			MaxDelay:           p.MaxDelay,
			BorderThresholdDBm: p.BorderThresholdDBm,
			MarginDBm:          p.MarginDBm,
			NeighborsThreshold: p.NeighborsThreshold,
			Energy:             m.EnergyDBmSum,
			Coverage:           m.Coverage,
			Forwardings:        m.Forwardings,
			BroadcastTime:      m.BroadcastTime,
		})
	}
	return out, nil
}

// Simulate runs one broadcast dissemination of the given configuration on
// the density's frozen network committee and returns the averaged
// metrics — a quick way to check a configuration without optimising.
func Simulate(density int, seed uint64, pc ProtocolConfig) (ProtocolConfig, error) {
	if density <= 0 {
		return pc, fmt.Errorf("aedbmls: density must be positive, got %d", density)
	}
	problem := eval.NewProblem(density, seed)
	m := problem.Simulate(aedb.Params{
		MinDelay:           pc.MinDelay,
		MaxDelay:           pc.MaxDelay,
		BorderThresholdDBm: pc.BorderThresholdDBm,
		MarginDBm:          pc.MarginDBm,
		NeighborsThreshold: pc.NeighborsThreshold,
	})
	pc.Energy = m.EnergyDBmSum
	pc.Coverage = m.Coverage
	pc.Forwardings = m.Forwardings
	pc.BroadcastTime = m.BroadcastTime
	return pc, nil
}
