// Package aedbmls reproduces "A Parallel Multi-objective Local Search for
// AEDB Protocol Tuning" (Iturriaga, Ruiz, Nesmachnow, Dorronsoro, Bouvry —
// IPDPS Workshops 2013).
//
// The repository contains, built from scratch on the standard library:
//
//   - a discrete-event MANET simulator (internal/sim, internal/manet,
//     internal/mobility, internal/radio) standing in for ns-3;
//   - the AEDB energy-aware broadcasting protocol (internal/aedb) plus
//     flooding and distance-based baselines;
//   - the five-parameter tuning problem evaluated on a fixed committee of
//     ten networks (internal/eval);
//   - a multi-objective optimisation toolkit: constrained Pareto dominance,
//     Adaptive Grid Archiving, quality indicators, Wilcoxon tests
//     (internal/moo, internal/archive, internal/indicators, internal/stats);
//   - the paper's contribution, the parallel multi-objective local search
//     AEDB-MLS (internal/core), and the two reference MOEAs NSGA-II
//     (internal/nsga2) and CellDE (internal/cellde);
//   - the Fast99 extended-FAST sensitivity analysis used to design the
//     local-search operators (internal/fast99);
//   - experiment drivers regenerating every table and figure of the paper
//     (internal/experiments, cmd/aedb-experiments, bench_test.go).
//
// See README.md for a quickstart and DESIGN.md for the full system
// inventory and per-experiment index.
package aedbmls
