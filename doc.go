// Package aedbmls reproduces "A Parallel Multi-objective Local Search for
// AEDB Protocol Tuning" (Iturriaga, Ruiz, Nesmachnow, Dorronsoro, Bouvry —
// IPDPS Workshops 2013).
//
// The repository contains, built from scratch on the standard library:
//
//   - a discrete-event MANET simulator (internal/sim, internal/manet,
//     internal/mobility, internal/radio) standing in for ns-3;
//   - the AEDB energy-aware broadcasting protocol (internal/aedb) plus
//     flooding and distance-based baselines;
//   - the five-parameter tuning problem evaluated on a fixed committee of
//     ten networks (internal/eval);
//   - a multi-objective optimisation toolkit: constrained Pareto dominance,
//     Adaptive Grid Archiving, quality indicators, Wilcoxon tests
//     (internal/moo, internal/archive, internal/indicators, internal/stats);
//   - the paper's contribution, the parallel multi-objective local search
//     AEDB-MLS (internal/core), and the two reference MOEAs NSGA-II
//     (internal/nsga2) and CellDE (internal/cellde);
//   - the Fast99 extended-FAST sensitivity analysis used to design the
//     local-search operators (internal/fast99);
//   - experiment drivers regenerating every table and figure of the paper
//     (internal/experiments, cmd/aedb-experiments, bench_test.go).
//
// # Warm-start evaluation architecture
//
// The binding cost of every optimiser in this repository is the fitness
// function: one evaluation simulates ten committee networks from t=0 to
// t=40 s, and an AEDB-MLS run spends 24,000 evaluations. The first 30
// simulated seconds of each network (warm-up: mobility walks plus hello
// beaconing that fills neighbor tables) depend only on the frozen scenario
// seed — never on the AEDB parameter vector under evaluation — so the
// evaluation engine simulates each scenario's warm-up once, captures a
// manet.Snapshot (mobility-model state, RNG streams, neighbor tables, the
// pending beacon/mobility event schedule, in-flight beacon frames), and
// every subsequent evaluation clones the snapshot and simulates only the
// 10-second broadcast phase.
//
// Determinism contract: the snapshot path is bit-for-bit identical to a
// from-scratch simulation — the same metrics, the same event order, the
// same RNG draws. This is load-bearing (the paper's committee design
// requires every candidate to be judged on exactly the same scenarios) and
// is enforced by equivalence tests across densities and seeds; see
// internal/manet/snapshot.go for the mechanism and PERF.md for the
// numbers. The event engine backing it schedules the simulation hot path
// (beacons, mobility changes, frame boundaries) as allocation-free tagged
// events against a value-indexed heap, and the broadcast medium resolves
// "who hears this transmission" through a uniform-grid spatial index
// rather than an O(N) node scan, which is what lets scenarios scale past
// 1,000 nodes.
//
// # The evaluation engine: fast by default, reference on demand
//
// Every evaluation path — serial eval.Problem.Evaluate, the
// committee-parallel variant, and the batched EvaluateBatch — runs one
// throughput engine by default (promoted from the batch-only fast path
// of PR 2 after its soak period):
//
//   - the beacon evolution of each committee scenario is recorded once
//     PER PROCESS into a manet.BeaconTape — keyed by (config
//     fingerprint, scenario seed, node count), so every Problem over the
//     same scenario generator replays one recording, and smaller
//     densities derive their tape from the largest-committee parent as a
//     masked prefix (manet.BeaconTape.Mask) — and shared by every
//     simulation of that scenario, which then strips beacon events from
//     its schedule entirely (eval.WithSharedTapes /
//     aedbmls.Config.UnsharedTapes / -unshared-tapes opts out);
//   - each simulation stops at broadcast quiescence (no pending protocol
//     timer, no data frame in flight) instead of running its
//     protocol-independent tail;
//   - instantiation buffers — node and RNG blocks, mobility-model
//     state, the O(N^2) neighbor index, the event heap, the spatial
//     grid, neighbor tables, first-reception buffers — are recycled
//     through manet.Arena instead of being reallocated per simulation;
//   - warm-up snapshots are shared across densities: the committee is
//     frozen density-independently, one largest-committee warm-up is
//     built per scenario seed and masked down per density
//     (manet.Snapshot.Mask);
//   - the data cascade's path-loss physics runs through a fused
//     d2-space kernel (radio.Kernel): reception powers computed
//     directly from squared distances — no square root, no interface
//     dispatch, whole candidate slices per call — with the sensitivity
//     cutoff precomputed as a d2-space threshold.
//
// eval.WithReferencePath(true) (aedbmls.Config.ReferencePath,
// experiments.Scale.ReferencePath, the CLIs' -reference-path flag) opts
// into the full-tail reference engine with complete per-node accounting.
// The two engines are bit-identical on every objective, violation and
// Metrics field — pinned by the golden-metrics corpus
// (internal/eval/testdata/golden_metrics.json), equivalence tables,
// property and fuzz tests (manet.FuzzSnapshotRoundTrip), and e2e Tune
// determinism tests, plus a -race CI job.
//
// eval.WithExactPhysics(true) (aedbmls.Config.ExactPhysics,
// experiments.Scale.ExactPhysics, the CLIs' -exact-physics flag) is the
// physics exactness gate: it swaps the fused kernel for the reference
// per-call path-loss evaluation. The two physics arms agree within a
// ULP-scaled bound per reception power (radio.FuzzKernelVsReference)
// and exactly on every discrete metric; the continuous energy sums
// differ in the last mantissa bits, so the golden corpus records both
// arms and the shared caches fingerprint the flag. See ARCHITECTURE.md
// for the full caching-layer and knob guide.
//
// EvaluateBatch additionally evaluates whole candidate sets
// scenario-major — one arena-backed wave per committee scenario streams
// every candidate — and every optimiser detects the capability through
// moo.BatchProblem: the MLS batched neighborhood step
// (core.Config.NeighborhoodSize, aedbmls.Config.NeighborhoodSize),
// core.ImproveBatch, and whole-generation evaluation in NSGA-II, SPEA2
// and CellDE's initial grid. eval.WithScenarioWorkers(n) fans the
// ten-network committee of a single Evaluate across goroutines
// (aedbmls.Config.ScenarioWorkers, -scenario-workers), cutting
// evaluation latency when optimiser-level parallelism leaves cores idle.
// All paths reduce the committee average in committee order, so results
// are bit-identical for any worker count.
//
// See README.md for a quickstart and DESIGN.md for the full system
// inventory and per-experiment index.
package aedbmls
