// Package aedbmls reproduces "A Parallel Multi-objective Local Search for
// AEDB Protocol Tuning" (Iturriaga, Ruiz, Nesmachnow, Dorronsoro, Bouvry —
// IPDPS Workshops 2013).
//
// The repository contains, built from scratch on the standard library:
//
//   - a discrete-event MANET simulator (internal/sim, internal/manet,
//     internal/mobility, internal/radio) standing in for ns-3;
//   - the AEDB energy-aware broadcasting protocol (internal/aedb) plus
//     flooding and distance-based baselines;
//   - the five-parameter tuning problem evaluated on a fixed committee of
//     ten networks (internal/eval);
//   - a multi-objective optimisation toolkit: constrained Pareto dominance,
//     Adaptive Grid Archiving, quality indicators, Wilcoxon tests
//     (internal/moo, internal/archive, internal/indicators, internal/stats);
//   - the paper's contribution, the parallel multi-objective local search
//     AEDB-MLS (internal/core), and the two reference MOEAs NSGA-II
//     (internal/nsga2) and CellDE (internal/cellde);
//   - the Fast99 extended-FAST sensitivity analysis used to design the
//     local-search operators (internal/fast99);
//   - experiment drivers regenerating every table and figure of the paper
//     (internal/experiments, cmd/aedb-experiments, bench_test.go).
//
// # Warm-start evaluation architecture
//
// The binding cost of every optimiser in this repository is the fitness
// function: one evaluation simulates ten committee networks from t=0 to
// t=40 s, and an AEDB-MLS run spends 24,000 evaluations. The first 30
// simulated seconds of each network (warm-up: mobility walks plus hello
// beaconing that fills neighbor tables) depend only on the frozen scenario
// seed — never on the AEDB parameter vector under evaluation — so the
// evaluation engine simulates each scenario's warm-up once, captures a
// manet.Snapshot (mobility-model state, RNG streams, neighbor tables, the
// pending beacon/mobility event schedule, in-flight beacon frames), and
// every subsequent evaluation clones the snapshot and simulates only the
// 10-second broadcast phase.
//
// Determinism contract: the snapshot path is bit-for-bit identical to a
// from-scratch simulation — the same metrics, the same event order, the
// same RNG draws. This is load-bearing (the paper's committee design
// requires every candidate to be judged on exactly the same scenarios) and
// is enforced by equivalence tests across densities and seeds; see
// internal/manet/snapshot.go for the mechanism and PERF.md for the
// numbers. The event engine backing it schedules the simulation hot path
// (beacons, mobility changes, frame boundaries) as allocation-free tagged
// events against a value-indexed heap, and the broadcast medium resolves
// "who hears this transmission" through a uniform-grid spatial index
// rather than an O(N) node scan, which is what lets scenarios scale past
// 1,000 nodes.
//
// # Batched and committee-parallel evaluation
//
// On top of the warm-start substrate sit two throughput engines (PR 2):
//
//   - eval.(*Problem).EvaluateBatch evaluates a whole set of parameter
//     vectors scenario-major — one snapshot-clone wave per committee
//     scenario streams every candidate — with the beacon evolution of
//     each scenario recorded once into a manet.BeaconTape and shared by
//     all candidates, and each simulation stopped at broadcast
//     quiescence (no pending protocol timer, no data frame in flight)
//     instead of running its protocol-independent tail. Objectives and
//     Metrics are bit-identical to serial Evaluate; the 64-candidate
//     neighborhood benchmark runs 4.05x faster than 64 serial calls at
//     density 300 on one core (BENCH_PR2.json). Every optimiser detects
//     the capability
//     through moo.BatchProblem: the MLS batched neighborhood step
//     (core.Config.NeighborhoodSize, aedbmls.Config.NeighborhoodSize),
//     core.ImproveBatch, and whole-generation evaluation in NSGA-II,
//     SPEA2 and CellDE's initial grid.
//   - eval.WithScenarioWorkers(n) fans the ten-network committee of a
//     single Evaluate across goroutines (aedbmls.Config.ScenarioWorkers,
//     aedb-mls/aedb-experiments -scenario-workers), cutting evaluation
//     latency when optimiser-level parallelism leaves cores idle.
//
// Both engines reduce the committee average in committee order, so their
// results are bit-identical to the serial reference path for any worker
// count — pinned by equivalence tests from internal/eval up to
// aedbmls.Tune, and by a -race CI job.
//
// See README.md for a quickstart and DESIGN.md for the full system
// inventory and per-experiment index.
package aedbmls
