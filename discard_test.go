// Admissibility contract across every optimizer: batched evaluation
// results marked Stopped (abandoned under a stop signal) or Screened
// (fidelity-ladder triage estimates) must be DISCARDED at the evaluation
// boundary — they may never become an incumbent, a population member or
// an archive entry. The fake problem below poisons marked results with
// utopian objectives, so any optimizer that forgets the check would
// proudly report the poison on its front.
package aedbmls_test

import (
	"sync"
	"testing"

	"aedbmls/internal/archive"
	"aedbmls/internal/cellde"
	"aedbmls/internal/core"
	"aedbmls/internal/moo"
	"aedbmls/internal/nsga2"
	"aedbmls/internal/spea2"
)

// poisonF is the utopian objective value carried by inadmissible fakes:
// it dominates every genuine solution, so leakage is loud.
const poisonF = -1e9

// markerProblem is a moo.BatchProblem whose batches mark a deterministic
// third of their results Stopped and another third Screened, both with
// poisoned objectives. Serial evaluations are always genuine (matching
// eval.Problem, whose serial path is never screened or abandoned here).
type markerProblem struct {
	mu       sync.Mutex
	batched  int // results returned through EvaluateBatch
	stopped  int // ... marked Stopped
	screened int // ... marked Screened
}

func (m *markerProblem) Name() string       { return "marker" }
func (m *markerProblem) Dim() int           { return 5 }
func (m *markerProblem) NumObjectives() int { return 3 }
func (m *markerProblem) Bounds() (lo, hi []float64) {
	return []float64{0, 0, 0, 0, 0}, []float64{1, 1, 1, 1, 1}
}

func (m *markerProblem) Evaluate(x []float64) (f []float64, violation float64, aux any) {
	return []float64{x[0], x[1], x[2]}, 0, nil
}

func (m *markerProblem) EvaluateBatch(xs [][]float64) []moo.BatchResult {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]moo.BatchResult, len(xs))
	for i, x := range xs {
		f, viol, _ := m.Evaluate(x)
		r := moo.BatchResult{F: f, Violation: viol}
		switch (m.batched + i) % 3 {
		case 0:
			r.Stopped = true
			r.F = []float64{poisonF, poisonF, poisonF}
			m.stopped++
		case 1:
			r.Screened = true
			r.F = []float64{poisonF, poisonF, poisonF}
			m.screened++
		}
		out[i] = r
	}
	m.batched += len(xs)
	return out
}

// assertClean fails if any reported solution is inadmissible or carries
// the poison objectives.
func assertClean(t *testing.T, alg string, sols []*moo.Solution) {
	t.Helper()
	for _, s := range sols {
		if s == nil {
			t.Fatalf("%s: nil solution reported", alg)
		}
		if !s.Admissible() {
			t.Fatalf("%s: inadmissible solution reported (Stopped=%v Screened=%v)", alg, s.Stopped, s.Screened)
		}
		if s.F[0] == poisonF {
			t.Fatalf("%s: poisoned objectives leaked into the results: %v", alg, s.F)
		}
	}
}

// TestOptimizersDiscardInadmissibleResults runs all four optimizers on
// the marking problem and checks no Stopped or Screened batch result
// survives into any reported front or population.
func TestOptimizersDiscardInadmissibleResults(t *testing.T) {
	t.Run("mls", func(t *testing.T) {
		m := &markerProblem{}
		cfg := core.DefaultConfig()
		cfg.Populations = 2
		cfg.Workers = 2
		cfg.EvalsPerWorker = 20
		cfg.ResetPeriod = 6
		cfg.NeighborhoodSize = 3 // route through ImproveBatch
		cfg.Seed = 1
		res, err := core.Optimize(m, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		assertClean(t, "mls", res.Front)
		requireMarked(t, m)
	})
	t.Run("mls-sequential", func(t *testing.T) {
		m := &markerProblem{}
		cfg := core.DefaultConfig()
		cfg.Populations = 2
		cfg.Workers = 2
		cfg.EvalsPerWorker = 20
		cfg.ResetPeriod = 6
		cfg.NeighborhoodSize = 3
		cfg.Seed = 1
		res, err := core.OptimizeSequential(m, cfg, archive.NewAGA(40, 5))
		if err != nil {
			t.Fatal(err)
		}
		assertClean(t, "mls-sequential", res.Front)
		requireMarked(t, m)
	})
	t.Run("nsga2", func(t *testing.T) {
		m := &markerProblem{}
		cfg := nsga2.TestConfig()
		cfg.PopSize = 12
		cfg.Evaluations = 120
		res, err := nsga2.Optimize(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertClean(t, "nsga2 front", res.Front)
		assertClean(t, "nsga2 population", res.Population)
		requireMarked(t, m)
	})
	t.Run("spea2", func(t *testing.T) {
		m := &markerProblem{}
		cfg := spea2.DefaultConfig()
		cfg.PopSize = 12
		cfg.ArchiveSize = 12
		cfg.Evaluations = 120
		cfg.Seed = 1
		res, err := spea2.Optimize(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertClean(t, "spea2 front", res.Front)
		requireMarked(t, m)
	})
	t.Run("cellde", func(t *testing.T) {
		m := &markerProblem{}
		cfg := cellde.DefaultConfig()
		cfg.PopSize = 9
		cfg.Evaluations = 90
		cfg.Feedback = 2
		cfg.Seed = 1
		res, err := cellde.Optimize(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assertClean(t, "cellde front", res.Front)
		requireMarked(t, m)
	})
}

// requireMarked guards the test's own premise: the optimizer must have
// gone through EvaluateBatch and received marked results, otherwise the
// discard contract was never exercised.
func requireMarked(t *testing.T, m *markerProblem) {
	t.Helper()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.batched == 0 || m.stopped == 0 || m.screened == 0 {
		t.Fatalf("premise not exercised: batched=%d stopped=%d screened=%d",
			m.batched, m.stopped, m.screened)
	}
}
