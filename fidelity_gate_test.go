// Regret gate for the multi-fidelity evaluation ladder (ISSUE 9
// acceptance): for AEDB-MLS and NSGA-II at densities 100 and 300,
// ladder-enabled runs must land within the run-to-run noise band of the
// full-fidelity baseline on hypervolume and spread (paired over five
// seeds), report fronts holding ONLY full-fidelity metrics, and spend at
// least 2x fewer full-committee evaluations. Fidelity-off bit-identity
// to the golden corpus is enforced separately by the eval package's
// TestGoldenMetricsOptOutMatrix.
package aedbmls_test

import (
	"math"
	"testing"

	"aedbmls/internal/core"
	"aedbmls/internal/eval"
	"aedbmls/internal/indicators"
	"aedbmls/internal/moo"
	"aedbmls/internal/nsga2"
)

// gateFidelity is the screening rung the gate runs: a one-scenario
// committee prefix at half the broadcast horizon.
var gateFidelity = eval.Fidelity{Committee: 1, Horizon: 0.5}

// gateProblemSeed freezes the committee; optimizer seeds vary per run.
const gateProblemSeed = 42

// gateRun executes one optimizer run and returns its front and the
// problem's full-fidelity evaluation count.
func gateRun(t *testing.T, alg string, density int, seed uint64, ladder bool) ([]*moo.Solution, int64) {
	t.Helper()
	opts := []eval.Option{eval.WithCommittee(3)}
	if ladder {
		opts = append(opts, eval.WithFidelity(gateFidelity))
	}
	p := eval.NewProblem(density, gateProblemSeed, opts...)
	var front []*moo.Solution
	switch alg {
	case "mls":
		cfg := core.DefaultConfig()
		cfg.Populations, cfg.Workers, cfg.EvalsPerWorker = 2, 2, 30
		cfg.ResetPeriod, cfg.NeighborhoodSize = 6, 4
		cfg.Criteria = core.DefaultAEDBCriteria()
		cfg.Seed = seed
		res, err := core.OptimizeSequential(p, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		front = res.Front
	case "nsga2":
		cfg := nsga2.DefaultConfig()
		cfg.PopSize, cfg.Evaluations, cfg.Seed = 8, 96, seed
		res, err := nsga2.Optimize(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		front = res.Front
	default:
		t.Fatalf("unknown algorithm %q", alg)
	}
	return front, p.Health().FullEvals
}

func points(front []*moo.Solution) []indicators.Point {
	pts := make([]indicators.Point, 0, len(front))
	for _, s := range front {
		pts = append(pts, append([]float64(nil), s.F...))
	}
	return pts
}

func minMaxMean(v []float64) (lo, hi, mean float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range v {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
		mean += x
	}
	return lo, hi, mean / float64(len(v))
}

// assertFullFidelityFront checks every reported solution is admissible
// and that a fresh ladder-free serial evaluation of its gene vector
// reproduces its objectives and violation bit for bit — the "final
// archive contains only full-fidelity metrics" invariant.
func assertFullFidelityFront(t *testing.T, name string, density int, front []*moo.Solution) {
	t.Helper()
	p := eval.NewProblem(density, gateProblemSeed, eval.WithCommittee(3))
	for i, s := range front {
		if !s.Admissible() {
			t.Fatalf("%s: front[%d] inadmissible (Stopped=%v Screened=%v)", name, i, s.Stopped, s.Screened)
		}
		f, viol, _ := p.Evaluate(s.X)
		for k := range f {
			if f[k] != s.F[k] {
				t.Fatalf("%s: front[%d].F[%d] = %x, full-fidelity re-evaluation %x — a screening estimate leaked into the front",
					name, i, k, s.F[k], f[k])
			}
		}
		if viol != s.Violation {
			t.Fatalf("%s: front[%d] violation %x, full-fidelity re-evaluation %x", name, i, s.Violation, viol)
		}
	}
}

// TestFidelityLadderRegretGate is the committed acceptance gate; see the
// file comment. The noise band is the baseline's observed cross-seed
// [min, max] widened by half its range plus a 0.05 floor — a ladder mean
// outside that band is a real regression, not seed noise.
func TestFidelityLadderRegretGate(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5}
	densities := []int{100, 300}
	algs := []string{"mls", "nsga2"}
	if testing.Short() {
		densities = []int{100}
		algs = []string{"mls"}
	}
	for _, alg := range algs {
		for _, density := range densities {
			var fullBase, fullLadder int64
			var baseFronts, ladderFronts [][]indicators.Point
			var all []indicators.Point
			for _, seed := range seeds {
				bf, bn := gateRun(t, alg, density, seed, false)
				lf, ln := gateRun(t, alg, density, seed, true)
				name := alg
				assertFullFidelityFront(t, name+"-ladder", density, lf)
				fullBase += bn
				fullLadder += ln
				baseFronts = append(baseFronts, points(bf))
				ladderFronts = append(ladderFronts, points(lf))
				all = append(all, points(bf)...)
				all = append(all, points(lf)...)
			}

			// Throughput: >= 2x fewer full-committee evaluations.
			if fullLadder*2 > fullBase {
				t.Errorf("%s d%d: full-committee evaluations %d -> %d (%.2fx), want >= 2x",
					alg, density, fullBase, fullLadder, float64(fullBase)/float64(fullLadder))
			}

			// Quality: paired indicator means inside the baseline band.
			var hvB, hvL, spB, spL []float64
			for i := range baseFronts {
				hvB = append(hvB, indicators.HypervolumeNormalized(baseFronts[i], all))
				hvL = append(hvL, indicators.HypervolumeNormalized(ladderFronts[i], all))
				spB = append(spB, indicators.Spread(baseFronts[i], all))
				spL = append(spL, indicators.Spread(ladderFronts[i], all))
			}
			check := func(kind string, base, ladder []float64) {
				lo, hi, _ := minMaxMean(base)
				_, _, got := minMaxMean(ladder)
				w := (hi-lo)/2 + 0.05
				if got < lo-w || got > hi+w {
					t.Errorf("%s d%d: ladder mean %s %.4f outside baseline noise band [%.4f, %.4f] (runs %v vs %v)",
						alg, density, kind, got, lo-w, hi+w, base, ladder)
				}
			}
			check("hypervolume", hvB, hvL)
			check("spread", spB, spL)
			t.Logf("%s d%d: full evals %d -> %d (%.2fx)", alg, density, fullBase, fullLadder,
				float64(fullBase)/float64(fullLadder))
		}
	}
}

// TestFidelityLadderSmoke is the quick single-seed d300 MLS arm
// scripts/bench.sh --smoke runs: it reports the full-committee
// evaluation ratio in a greppable line and gates only on "measurably
// fewer" (>= 1.3x), leaving the aggregate >= 2x bound to
// TestFidelityLadderRegretGate.
func TestFidelityLadderSmoke(t *testing.T) {
	_, base := gateRun(t, "mls", 300, 1, false)
	front, ladder := gateRun(t, "mls", 300, 1, true)
	assertFullFidelityFront(t, "smoke-ladder", 300, front)
	ratio := float64(base) / float64(ladder)
	t.Logf("fidelity-ladder-ratio: %.2f (full-committee evaluations %d -> %d, d300 MLS)", ratio, base, ladder)
	if ratio < 1.3 {
		t.Errorf("ladder saved too little: ratio %.2f < 1.3", ratio)
	}
}
