// Sensitivity analysis example: which AEDB parameters actually matter?
//
// Reproduces a reduced version of the paper's Fig. 2 / Table I: a Fast99
// variance decomposition of the four broadcast metrics over the five
// protocol parameters. The headline findings — delays drive the broadcast
// time, border/neighbors thresholds drive energy and forwardings, the
// margin barely matters — come out of the analysis and justify the
// AEDB-MLS search criteria.
//
// Run with:
//
//	go run ./examples/sensitivity
package main

import (
	"fmt"
	"log"

	"aedbmls/internal/experiments"
)

func main() {
	sc := experiments.TinyScale()
	sc.SensitivityN = 65 // smallest valid Fast99 layout (M=4)
	sc.Committee = 5

	res, err := experiments.Sensitivity(sc, 100, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.RenderFigure2())
	fmt.Println(res.RenderTableI())

	factor, total := res.MostInfluential("broadcast_time")
	fmt.Printf("\nmost influential factor on broadcast time: %s (total-order index %.2f)\n", factor, total)
	fmt.Println("these findings define the three AEDB-MLS search criteria (core.DefaultAEDBCriteria).")
}
