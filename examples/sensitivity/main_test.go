package main

import (
	"testing"

	"aedbmls/internal/smoketest"
)

func TestMainSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("example sensitivity run is too slow for -short")
	}
	smoketest.Run(t, []string{"sensitivity"}, main)
}
