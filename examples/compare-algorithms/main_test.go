package main

import (
	"testing"

	"aedbmls/internal/smoketest"
)

func TestMainSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("three-algorithm comparison is too slow for -short")
	}
	smoketest.Run(t, []string{"compare-algorithms"}, main)
}
