// Algorithm comparison: AEDB-MLS against the two reference MOEAs
// (NSGA-II and CellDE) on the same tuning problem, scored with the
// paper's indicators (spread, IGD, hypervolume) and wall-clock time —
// a single-density miniature of the paper's Sect. VI study.
//
// Run with:
//
//	go run ./examples/compare-algorithms
package main

import (
	"fmt"
	"log"
	"os"

	"aedbmls/internal/experiments"
)

func main() {
	sc := experiments.TinyScale()
	sc.Runs = 3

	logf := func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }
	rs, err := experiments.RunAll(sc, 100, logf)
	if err != nil {
		log.Fatal(err)
	}

	fronts := experiments.BuildFronts(rs, 100)
	fmt.Println(fronts.RenderFigure6())

	metrics := experiments.ComputeMetrics(rs)
	fmt.Println(metrics.RenderFigure7())
	fmt.Println(experiments.RenderTableIV([]*experiments.MetricsResult{metrics}))

	timing := experiments.ComputeTiming(sc, rs)
	fmt.Println(timing.Render())
}
