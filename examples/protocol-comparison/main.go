// Protocol comparison: the scenario that motivates AEDB — blind flooding
// covers the network but wastes energy and floods the medium; plain
// distance-based broadcasting prunes forwarders but still transmits at
// full power; AEDB adapts the transmission power per hop and saves energy
// at comparable coverage.
//
// The example replays the same 10 frozen networks (the paper's evaluation
// committee) under all three protocols for each density.
//
// Run with:
//
//	go run ./examples/protocol-comparison
package main

import (
	"fmt"

	"aedbmls/internal/aedb"
	"aedbmls/internal/eval"
	"aedbmls/internal/manet"
)

func main() {
	params := aedb.Params{
		MinDelay: 0.05, MaxDelay: 0.4,
		BorderThresholdDBm: -82, MarginDBm: 1.0, NeighborsThreshold: 12,
	}
	fmt.Printf("AEDB parameters: %+v\n\n", params)
	fmt.Printf("%-8s %-10s %-10s %-10s %-12s %-10s %-10s\n",
		"density", "protocol", "coverage", "forwards", "energy(dBm)", "mJ", "bt(s)")

	for _, density := range []int{100, 200, 300} {
		problem := eval.NewProblem(density, 7)
		protocols := []struct {
			name    string
			factory func(*manet.Node) manet.Protocol
		}{
			{"flooding", aedb.NewFlooding(params.MinDelay, params.MaxDelay)},
			{"distance", aedb.NewDistanceBroadcast(params.MinDelay, params.MaxDelay, params.BorderThresholdDBm)},
			{"aedb", aedb.New(params)},
		}
		for _, p := range protocols {
			m := problem.SimulateProtocol(p.factory)
			fmt.Printf("%-8d %-10s %-10.1f %-10.1f %-12.1f %-10.4f %-10.3f\n",
				density, p.name, m.Coverage, m.Forwardings, m.EnergyDBmSum, m.EnergyMJ, m.BroadcastTime)
		}
		fmt.Println()
	}
	fmt.Println("AEDB trades a little coverage for large energy and forwarding savings —")
	fmt.Println("the trade-off the paper tunes with multi-objective search.")
}
