// Custom problem: the optimisation stack is not tied to AEDB. Any type
// implementing moo.Problem can be optimised with AEDB-MLS, NSGA-II or
// CellDE. This example defines a small constrained two-objective design
// problem — a welded-beam-style cost/deflection trade-off — and solves it
// with all three algorithms.
//
// Run with:
//
//	go run ./examples/custom-problem
package main

import (
	"fmt"
	"log"
	"math"

	"aedbmls/internal/cellde"
	"aedbmls/internal/core"
	"aedbmls/internal/moo"
	"aedbmls/internal/nsga2"
)

// beam is a toy structural design problem: x0 is the beam height, x1 the
// width. Minimise material cost and tip deflection subject to a stress
// limit.
type beam struct{}

func (beam) Name() string               { return "beam-design" }
func (beam) Dim() int                   { return 2 }
func (beam) NumObjectives() int         { return 2 }
func (beam) Bounds() (lo, hi []float64) { return []float64{0.1, 0.1}, []float64{5, 5} }
func (beam) Evaluate(x []float64) (f []float64, violation float64, aux any) {
	h, w := x[0], x[1]
	cost := h * w                      // material area
	deflection := 1 / (w * h * h * h)  // ~ 1/I
	stress := 6 / (w * h * h)          // bending stress for unit load
	violation = math.Max(0, stress-10) // sigma_max = 10
	return []float64{cost, deflection}, violation, nil
}

func main() {
	p := beam{}

	mlsCfg := core.TestConfig()
	mlsCfg.EvalsPerWorker = 200
	mlsCfg.Seed = 3
	mls, err := core.Optimize(p, mlsCfg, nil)
	if err != nil {
		log.Fatal(err)
	}

	nsgaCfg := nsga2.TestConfig()
	nsgaCfg.Evaluations = 1200
	nsgaCfg.Seed = 3
	nsga, err := nsga2.Optimize(p, nsgaCfg)
	if err != nil {
		log.Fatal(err)
	}

	cellCfg := cellde.TestConfig()
	cellCfg.Evaluations = 1200
	cellCfg.Seed = 3
	cell, err := cellde.Optimize(p, cellCfg)
	if err != nil {
		log.Fatal(err)
	}

	show := func(name string, front []*moo.Solution) {
		fmt.Printf("%s: %d non-dominated designs\n", name, len(front))
		for i, s := range front {
			if i >= 5 {
				fmt.Printf("  ... (%d more)\n", len(front)-5)
				break
			}
			fmt.Printf("  h=%.3f w=%.3f -> cost=%.3f deflection=%.4f\n", s.X[0], s.X[1], s.F[0], s.F[1])
		}
		fmt.Println()
	}
	show("AEDB-MLS", mls.Front)
	show("NSGA-II", nsga.Front)
	show("CellDE", cell.Front)
	fmt.Println("all three optimisers run against the same moo.Problem interface;")
	fmt.Println("AEDB-MLS used generic per-dimension search criteria here.")
}
