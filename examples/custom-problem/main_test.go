package main

import (
	"testing"

	"aedbmls/internal/smoketest"
)

func TestMainSmoke(t *testing.T) {
	smoketest.Run(t, []string{"custom-problem"}, main)
}
