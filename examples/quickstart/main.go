// Quickstart: tune the AEDB broadcasting protocol for a 100 devices/km^2
// MANET with the paper's parallel multi-objective local search, then print
// the resulting energy/coverage/forwardings trade-off front.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"aedbmls/internal/aedb"
	"aedbmls/internal/core"
	"aedbmls/internal/eval"
)

func main() {
	// The tuning problem: every candidate configuration is simulated on
	// the same 10 frozen networks and judged by the averaged metrics.
	problem := eval.NewProblem(100, 42)

	// A small AEDB-MLS budget: 2 populations x 3 workers x 40 evaluations.
	cfg := core.DefaultConfig()
	cfg.Populations = 2
	cfg.Workers = 3
	cfg.EvalsPerWorker = 40
	cfg.ResetPeriod = 15
	cfg.Seed = 42
	cfg.Criteria = core.DefaultAEDBCriteria()

	start := time.Now()
	res, err := core.Optimize(problem, cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuned AEDB in %s (%d simulated evaluations)\n",
		time.Since(start).Round(time.Millisecond), res.Evaluations)
	fmt.Printf("Pareto front (%d trade-off configurations):\n\n", len(res.Front))
	fmt.Printf("%-12s %-9s %-9s %-7s  configuration\n", "energy(dBm)", "coverage", "forwards", "bt(s)")
	for _, s := range res.Front {
		m, _ := eval.MetricsOf(s)
		p := aedb.FromVector(s.X)
		fmt.Printf("%-12.2f %-9.1f %-9.1f %-7.3f  delay=[%.2f,%.2f]s border=%.1fdBm margin=%.2fdBm neighThr=%.1f\n",
			m.EnergyDBmSum, m.Coverage, m.Forwardings, m.BroadcastTime,
			p.MinDelay, p.MaxDelay, p.BorderThresholdDBm, p.MarginDBm, p.NeighborsThreshold)
	}
	fmt.Println("\npick the row matching your coverage/energy priorities and deploy those parameters.")
}
