package main

import (
	"testing"

	"aedbmls/internal/smoketest"
)

// TestMainSmoke runs a miniature tuning end to end, exercising the new
// batched-neighborhood and committee-parallel flags.
func TestMainSmoke(t *testing.T) {
	smoketest.Run(t, []string{"aedb-mls",
		"-density", "100", "-seed", "1",
		"-pops", "1", "-workers", "2", "-evals", "6", "-reset", "3",
		"-committee", "2", "-neighborhood", "2", "-scenario-workers", "2",
	}, main)
}
